// Benchmarks regenerating the shape of every complexity claim in the
// paper's results — one benchmark per experiment of EXPERIMENTS.md. Run
// with:
//
//	go test -bench=. -benchmem
package fspnet_test

import (
	"fmt"
	"testing"

	"fspnet/internal/bench"
	"fspnet/internal/explore"
	"fspnet/internal/fsp"
	"fspnet/internal/game"
	"fspnet/internal/game/belief"
	"fspnet/internal/linear"
	"fspnet/internal/network"
	"fspnet/internal/poss"
	"fspnet/internal/reduce"
	"fspnet/internal/sat"
	"fspnet/internal/success"
	"fspnet/internal/treesolve"
	"fspnet/internal/unary"
)

// mustGen returns an unwrapper for workload-generator results, so
// benchmark setup can stay a one-liner: n := mustGen(b)(bench.X(...)).
func mustGen(b *testing.B) func(*network.Network, error) *network.Network {
	return func(n *network.Network, err error) *network.Network {
		b.Helper()
		if err != nil {
			b.Fatal(err)
		}
		return n
	}
}

// BenchmarkE1LinearNetworks measures Proposition 1's near-linear decision
// on growing all-linear chains.
func BenchmarkE1LinearNetworks(b *testing.B) {
	for _, m := range []int{10, 100, 1000} {
		n := mustGen(b)(bench.LinearChain(m, 2))
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := linear.Analyze(n, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE2SatGadgetCase1 measures the reference S_c decision on the
// Theorem 1 case (1) gadgets as the formula grows (exponential shape).
func BenchmarkE2SatGadgetCase1(b *testing.B) {
	for _, vars := range []int{2, 4, 6, 8} {
		f := bench.SatInstance(int64(1000+vars), vars)
		n, err := reduce.SatGadgetCase1(f)
		if err != nil {
			b.Fatal(err)
		}
		q, err := n.Context(0, false)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("vars=%d", vars), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := success.CollaborationAcyclic(n.Process(0), q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3SatGadgetCase2 is E2 for the all-O(1)-trees gadget.
func BenchmarkE3SatGadgetCase2(b *testing.B) {
	for _, vars := range []int{2, 4, 6} {
		f := bench.SatInstance(int64(1000+vars), vars)
		n, err := reduce.SatGadgetCase2(f)
		if err != nil {
			b.Fatal(err)
		}
		q, err := n.Context(0, false)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("vars=%d", vars), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := success.CollaborationAcyclic(n.Process(0), q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4QbfGadget measures the belief-set game on the Theorem 2
// gadgets (PSPACE shape).
func BenchmarkE4QbfGadget(b *testing.B) {
	for _, vars := range []int{2, 3, 4, 5} {
		q := bench.QbfInstance(int64(2000+vars), vars)
		n, err := reduce.QbfGadget(q)
		if err != nil {
			b.Fatal(err)
		}
		ctx, err := n.Context(0, false)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("vars=%d", vars), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := game.SolveAcyclic(n.Process(0), ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5TreeSolveVsGlobal compares the Theorem 3 normal-form solver
// with the global reference on the same tree networks.
func BenchmarkE5TreeSolveVsGlobal(b *testing.B) {
	for _, m := range []int{3, 5, 7, 9} {
		n := mustGen(b)(bench.TreeNetwork(int64(3000+m), m))
		b.Run(fmt.Sprintf("treesolve/m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := treesolve.Analyze(n, 0, treesolve.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("reference/m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := success.AnalyzeAcyclic(n, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6RingNetworks measures the Figure 8a k-tree front end.
func BenchmarkE6RingNetworks(b *testing.B) {
	for _, m := range []int{4, 6, 8} {
		n := mustGen(b)(bench.RingNetwork(int64(4000+m), m))
		partition := network.RingPartition(m)
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := treesolve.AnalyzeKTree(n, 0, partition, treesolve.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7CyclicReference measures the Section 4 cyclic analysis on
// dining-philosopher rings (the dⁿ shape of Proposition 2).
func BenchmarkE7CyclicReference(b *testing.B) {
	for _, m := range []int{2, 3, 4} {
		n := mustGen(b)(bench.Philosophers(m))
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := success.AnalyzeCyclic(n, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8UnaryChains measures Theorem 4's numeric reduction on
// multiply-by-2 chains whose budgets need binary coding.
func BenchmarkE8UnaryChains(b *testing.B) {
	for _, m := range []int{2, 8, 32} {
		n := mustGen(b)(bench.DoublingChain(m, 3, false))
		b.Run(fmt.Sprintf("unary/m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := unary.Collaboration(n, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// The explicit composition for contrast, small sizes only.
	for _, m := range []int{2, 4} {
		n := mustGen(b)(bench.DoublingChain(m, 3, false))
		q, err := n.Context(0, true)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("reference/m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := success.CollaborationCyclic(n.Process(0), q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE9NormalForm measures possibility enumeration plus normal-form
// construction (the Theorem 3 inner loop).
func BenchmarkE9NormalForm(b *testing.B) {
	for _, maxStates := range []int{4, 8, 16} {
		_, q := bench.RandomAcyclicPair(int64(5000+maxStates), maxStates)
		b.Run(fmt.Sprintf("states<=%d", maxStates), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				set, err := poss.Of(q, poss.DefaultBudget)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := poss.NormalForm("NF", set); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE11Engine compares the on-the-fly joint-vector engine with
// the compose-then-explore reference on the same networks (acyclic trees
// and philosopher rings).
func BenchmarkE11Engine(b *testing.B) {
	for _, m := range []int{8, 12, 16} {
		n := mustGen(b)(bench.TreeNetwork(int64(7000+m), m))
		b.Run(fmt.Sprintf("engine/tree/m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := explore.AnalyzeAcyclic(n, 0, explore.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, m := range []int{8, 12} {
		n := mustGen(b)(bench.TreeNetwork(int64(7000+m), m))
		b.Run(fmt.Sprintf("reference/tree/m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v, err := success.AnalyzeAcyclicOpts(n, 0, success.Options{Backend: success.BackendCompose})
				if err != nil {
					b.Fatal(err)
				}
				_ = v
			}
		})
	}
	for _, m := range []int{4, 6, 8} {
		n := mustGen(b)(bench.Philosophers(m))
		b.Run(fmt.Sprintf("engine/phil/m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := explore.AnalyzeCyclic(n, 0, explore.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE12BeliefGame compares the compose-free bitset belief engine
// with the compose-then-recurse S_a reference on the E11 families. The
// reference rows stop at the sizes whose context fold still fits in
// memory; the belief rows keep going.
func BenchmarkE12BeliefGame(b *testing.B) {
	for _, m := range []int{8, 12, 16} {
		n := mustGen(b)(bench.TreeNetwork(int64(7000+m), m))
		b.Run(fmt.Sprintf("belief/tree/m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := belief.SolveAcyclic(n, 0, game.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, m := range []int{8, 12} {
		n := mustGen(b)(bench.TreeNetwork(int64(7000+m), m))
		b.Run(fmt.Sprintf("reference/tree/m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q, err := n.Context(0, false)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := game.SolveAcyclic(n.Process(0), q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, m := range []int{4, 6, 8, 10} {
		n := mustGen(b)(bench.Philosophers(m))
		b.Run(fmt.Sprintf("belief/phil/m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := belief.SolveCyclic(n, 0, game.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// Tuning sweep: antichain pruning on/off crossed with sweep worker
	// counts, on the ring whose game is big enough to separate them.
	for _, tc := range []struct {
		name string
		tune belief.Tuning
	}{
		{"antichain=on/workers=1", belief.Tuning{Workers: 1}},
		{"antichain=on/workers=4", belief.Tuning{Workers: 4}},
		{"antichain=off/workers=1", belief.Tuning{NoAntichain: true, Workers: 1}},
		{"antichain=off/workers=4", belief.Tuning{NoAntichain: true, Workers: 4}},
	} {
		n := mustGen(b)(bench.Philosophers(8))
		b.Run("tuning/phil/m=8/"+tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := belief.SolveCyclicTuned(n, 0, game.Options{}, tc.tune); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, m := range []int{4, 6} {
		n := mustGen(b)(bench.Philosophers(m))
		b.Run(fmt.Sprintf("reference/phil/m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q, err := n.Context(0, true)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := game.SolveCyclic(n.Process(0), q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE13Symmetry measures the orbit-canonical state interning on
// the philosophers10 ring: the quotiented explore engine (probe off, so
// the C_10 quotient is genuinely enumerated) against the unreduced
// engine, plus the default probe-first configuration across both
// engines. The quotient and probe rows assert their machinery actually
// fired — `make bench-smoke` runs every benchmark once, so a
// silently-disabled reduction fails CI here.
func BenchmarkE13Symmetry(b *testing.B) {
	n := mustGen(b)(bench.Philosophers(10))
	b.Run("quotient/phil/m=10", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := explore.AnalyzeCyclic(n, 0, explore.Options{Tune: explore.Tuning{NoProbe: true}})
			if err != nil {
				b.Fatal(err)
			}
			if res.Stats.GroupOrder < 10 || res.Stats.OrbitHits == 0 || res.Stats.SymStates == 0 {
				b.Fatalf("symmetry reduction inactive on philosophers10: %+v", res.Stats)
			}
			if i == 0 {
				b.ReportMetric(float64(res.Stats.States), "states")
				b.ReportMetric(float64(res.Stats.SymStates), "collapsed-states")
			}
		}
	})
	b.Run("raw/phil/m=10", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := explore.AnalyzeCyclic(n, 0, explore.Options{Tune: explore.Tuning{NoSymmetry: true, NoProbe: true}})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(res.Stats.States), "states")
			}
		}
	})
	b.Run("probe/phil/m=10", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := explore.AnalyzeCyclic(n, 0, explore.Options{})
			if err != nil {
				b.Fatal(err)
			}
			sa, st, err := belief.SolveCyclic(n, 0, game.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if res.Su || sa || !res.Sc {
				b.Fatalf("verdict (Su=%v Sa=%v Sc=%v), want (false,false,true)", res.Su, sa, res.Sc)
			}
			if res.Stats.ProbeStates == 0 || st.ProbeStates == 0 {
				b.Fatalf("probes inactive: explore %+v, belief %+v", res.Stats, st)
			}
		}
	})
}

// BenchmarkCompose measures the composition operator itself.
func BenchmarkCompose(b *testing.B) {
	p, q := bench.RandomAcyclicPair(42, 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = fsp.Compose(p, q)
	}
}

// BenchmarkDPLL measures the SAT oracle on restricted 3SAT instances.
func BenchmarkDPLL(b *testing.B) {
	f := bench.SatInstance(77, 12)
	for i := 0; i < b.N; i++ {
		_, _ = sat.Solve(f)
	}
}
