package fspnet_test

// Cross-decider integration fuzz: every algorithm that claims to decide a
// predicate must agree with every other one on the networks in its
// domain, and every boolean verdict must be backed by (or refuted by) its
// witness artifact. This is the whole-repository consistency net on top
// of the per-package tests.

import (
	"math/rand"
	"testing"

	"fspnet"
	"fspnet/internal/bench"
	"fspnet/internal/fsptest"
	"fspnet/internal/network"
)

func TestIntegrationTreeNetworksAllDeciders(t *testing.T) {
	r := rand.New(rand.NewSource(1201))
	for i := 0; i < 80; i++ {
		cfg := fsptest.NetConfig{
			Procs:          2 + r.Intn(4),
			ActionsPerEdge: 1,
			MaxStates:      4,
			TauProb:        0.2,
		}
		n := fsptest.TreeNetwork(r, cfg)

		ref, err := fspnet.AnalyzeAcyclic(n, 0)
		if err != nil {
			t.Fatalf("iter %d: reference: %v", i, err)
		}
		tree, err := fspnet.AnalyzeTree(n, 0, fspnet.TreeOptions{})
		if err != nil {
			t.Fatalf("iter %d: treesolve: %v", i, err)
		}
		if ref != tree {
			t.Fatalf("iter %d: reference %v vs treesolve %v", i, ref, tree)
		}

		// Per-predicate entry points must agree with the bundle.
		su, err := fspnet.Unavoidable(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := fspnet.Collaboration(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		sa, err := fspnet.Adversity(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		if su != ref.Su || sc != ref.Sc || sa != ref.Sa {
			t.Fatalf("iter %d: per-predicate (%v,%v,%v) vs bundle %v", i, su, sa, sc, ref)
		}

		// Witness artifacts must back the booleans.
		_, haveSchedule, err := fspnet.CollaborationWitness(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		if haveSchedule != ref.Sc {
			t.Fatalf("iter %d: schedule=%v but S_c=%v", i, haveSchedule, ref.Sc)
		}
		_, blocked, err := fspnet.BlockingWitness(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		if blocked == ref.Su {
			t.Fatalf("iter %d: blocking witness=%v but S_u=%v", i, blocked, ref.Su)
		}
		win, strat, err := fspnet.WinningStrategy(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		if win != ref.Sa {
			t.Fatalf("iter %d: strategy win=%v but S_a=%v", i, win, ref.Sa)
		}
		if win && !n.Process(0).IsLeaf(n.Process(0).Start()) && len(strat) == 0 &&
			len(n.Process(0).Alphabet()) > 0 {
			t.Fatalf("iter %d: winning but empty strategy", i)
		}

		// The singleton group analysis must agree on S_u and S_c.
		gv, err := fspnet.AnalyzeGroup(n, []int{0}, false)
		if err != nil {
			t.Fatal(err)
		}
		if gv.Su != ref.Su || gv.Sc != ref.Sc {
			t.Fatalf("iter %d: group %v vs %v", i, gv, ref)
		}
	}
}

func TestIntegrationUnaryVsCyclicReference(t *testing.T) {
	// Doubling chains at sizes where the explicit composition is feasible.
	for m := 0; m <= 6; m++ {
		for _, inf := range []bool{false, true} {
			n, err := bench.DoublingChain(m, 2, inf)
			if err != nil {
				t.Fatal(err)
			}
			fast, err := fspnet.UnaryCollaboration(n, 0)
			if err != nil {
				t.Fatalf("m=%d inf=%v: unary: %v", m, inf, err)
			}
			slow, err := fspnet.CollaborationCyclic(n, 0)
			if err != nil {
				t.Fatalf("m=%d inf=%v: reference: %v", m, inf, err)
			}
			if fast != slow {
				t.Fatalf("m=%d inf=%v: unary=%v reference=%v", m, inf, fast, slow)
			}
			if fast != inf {
				t.Fatalf("m=%d: S_c=%v, want %v (finite budgets end the loop)", m, fast, inf)
			}
		}
	}
}

func TestIntegrationRingFoldings(t *testing.T) {
	r := rand.New(rand.NewSource(1203))
	for i := 0; i < 20; i++ {
		m := 4 + r.Intn(4)
		n, err := bench.RingNetwork(int64(777+i), m)
		if err != nil {
			t.Fatal(err)
		}
		folded, err := fspnet.AnalyzeKTree(n, 0, network.RingPartition(m), fspnet.TreeOptions{})
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		ref, err := fspnet.AnalyzeAcyclic(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		if folded != ref {
			t.Fatalf("iter %d (m=%d): folded %v vs reference %v", i, m, folded, ref)
		}
	}
}

func TestIntegrationFsplangRoundTripPreservesVerdicts(t *testing.T) {
	r := rand.New(rand.NewSource(1207))
	for i := 0; i < 30; i++ {
		cfg := fsptest.NetConfig{
			Procs: 2 + r.Intn(3), ActionsPerEdge: 1, MaxStates: 4, TauProb: 0.2,
		}
		n := fsptest.TreeNetwork(r, cfg)
		src := fspnet.FormatNetwork(n)
		n2, err := fspnet.ParseNetworkString(src)
		if err != nil {
			t.Fatalf("iter %d: re-parse: %v\n%s", i, err, src)
		}
		v1, err := fspnet.AnalyzeAcyclic(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := fspnet.AnalyzeAcyclic(n2, 0)
		if err != nil {
			t.Fatal(err)
		}
		if v1 != v2 {
			t.Fatalf("iter %d: verdict changed across round trip: %v vs %v", i, v1, v2)
		}
	}
}
