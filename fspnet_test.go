package fspnet_test

import (
	"context"
	"strings"
	"testing"

	"fspnet"
)

func TestPublicQuickStart(t *testing.T) {
	p := fspnet.Linear("P", "a")
	b := fspnet.NewBuilder("Q")
	q1, q2, q3 := b.State("1"), b.State("2"), b.State("3")
	b.Add(q1, "a", q2)
	b.AddTau(q1, q3)
	n, err := fspnet.NewNetwork(p, b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	v, err := fspnet.AnalyzeAcyclic(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "S_u=false S_a=false S_c=true" {
		t.Errorf("verdict = %v", v)
	}
}

func TestPublicComposition(t *testing.T) {
	p := fspnet.Linear("P", "a", "b")
	q := fspnet.Linear("Q", "a", "c")
	if got := fspnet.Product(p, q).NumStates(); got != 9 {
		t.Errorf("Product states = %d, want 9", got)
	}
	if fspnet.Compose(p, q).HasAction("a") {
		t.Error("Compose must hide the shared action")
	}
	if !fspnet.Intersect(p, q).HasAction("a") {
		t.Error("Intersect must keep the shared action visible")
	}
}

func TestPublicPossAndNormalForm(t *testing.T) {
	p := fspnet.TreeFromPaths("P", []fspnet.Action{"a", "b"}, []fspnet.Action{"a", "c"})
	set, err := fspnet.Poss(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	nf, err := fspnet.NormalForm("NF", set)
	if err != nil {
		t.Fatal(err)
	}
	if !fspnet.PossEquivalent(p, nf) {
		t.Error("normal form must be possibility-equivalent")
	}
	if !fspnet.LangEquivalent(p, nf) {
		t.Error("normal form must be language-equivalent")
	}
}

func TestPublicParseFormat(t *testing.T) {
	src := "process P { start s0; s0 a s1 } process Q { start t0; t0 a t1 }"
	n, err := fspnet.ParseNetworkString(src)
	if err != nil {
		t.Fatal(err)
	}
	out := fspnet.FormatNetwork(n)
	if !strings.Contains(out, "process P {") {
		t.Errorf("Format output:\n%s", out)
	}
	n2, err := fspnet.ParseNetwork(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if n2.Len() != 2 {
		t.Error("round trip lost processes")
	}
}

func TestPublicTreeAndLinear(t *testing.T) {
	n, err := fspnet.ParseNetworkString(
		"process P0 { start a0; a0 x a1 } " +
			"process P1 { start b0; b0 x b1; b1 y b2 } " +
			"process P2 { start c0; c0 y c1 }")
	if err != nil {
		t.Fatal(err)
	}
	ok, err := fspnet.AnalyzeLinear(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("chain must succeed")
	}
	v, err := fspnet.AnalyzeTree(n, 0, fspnet.TreeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Su || !v.Sa || !v.Sc {
		t.Errorf("tree verdict = %v", v)
	}
}

func TestPublicGadgetsAndSolvers(t *testing.T) {
	f := &fspnet.CNF{Vars: 2, Clauses: []fspnet.Clause{{1, -2}, {-1, 2}}}
	satisfiable, _ := fspnet.SolveSAT(f)
	if !satisfiable {
		t.Fatal("formula is satisfiable")
	}
	n, err := fspnet.SatGadgetCase1(f)
	if err != nil {
		t.Fatal(err)
	}
	v, err := fspnet.AnalyzeAcyclic(n, 1) // clause counter view is cheap
	if err != nil {
		t.Fatal(err)
	}
	_ = v
	q := &fspnet.QBF{
		Prefix: []fspnet.Quantifier{fspnet.ForAll, fspnet.Exists},
		Matrix: *f,
	}
	valid, err := fspnet.SolveQBF(q)
	if err != nil {
		t.Fatal(err)
	}
	if !valid {
		t.Error("∀x∃y (x∨¬y)∧(¬x∨y) is valid")
	}
	if _, err := fspnet.QbfGadget(q); err != nil {
		t.Fatal(err)
	}
	if _, err := fspnet.SatGadgetCase2(f); err != nil {
		t.Fatal(err)
	}
	if _, err := fspnet.BlockingGadgetCase1(f); err != nil {
		t.Fatal(err)
	}
	if _, err := fspnet.BlockingGadgetCase2(f); err != nil {
		t.Fatal(err)
	}
}

func TestPublicCyclicAndUnary(t *testing.T) {
	src := "process P { start s0; s0 x s0 } process Q { start t0; t0 x t0 }"
	n, err := fspnet.ParseNetworkString(src)
	if err != nil {
		t.Fatal(err)
	}
	v, err := fspnet.AnalyzeCyclic(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Su || !v.Sa || !v.Sc {
		t.Errorf("cyclic verdict = %v", v)
	}
	sc, err := fspnet.UnaryCollaboration(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sc {
		t.Error("unary S_c must hold")
	}
	iface, err := fspnet.UnaryInterface(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := iface["x"]; !got.Inf {
		t.Errorf("interface = %v, want ∞", got)
	}
}

func TestPublicRingPartition(t *testing.T) {
	parts := fspnet.RingPartition(5)
	if len(parts) != 3 {
		t.Errorf("RingPartition(5) = %v", parts)
	}
}

func TestPublicClasses(t *testing.T) {
	if fspnet.Linear("L", "a").Classify() != fspnet.ClassLinear {
		t.Error("class constants broken")
	}
	if fspnet.Tau != "τ" {
		t.Error("Tau constant broken")
	}
}

func TestPublicWitnessAndStrategy(t *testing.T) {
	n, err := fspnet.ParseNetworkString(
		"process P { start s1; s1 a s2 } process Q { start t1; t1 a t2; t1 tau t3 }")
	if err != nil {
		t.Fatal(err)
	}
	tr, ok, err := fspnet.CollaborationWitness(n, 0)
	if err != nil || !ok {
		t.Fatalf("witness: ok=%v err=%v", ok, err)
	}
	if got := tr.Actions(); len(got) != 1 || got[0] != "a" {
		t.Errorf("witness actions = %v", got)
	}
	btr, blocked, err := fspnet.BlockingWitness(n, 0)
	if err != nil || !blocked || len(btr) != 1 {
		t.Fatalf("blocking witness: %v %v %v", btr, blocked, err)
	}
	win, _, err := fspnet.WinningStrategy(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if win {
		t.Error("Figure 3's P loses the game")
	}
}

func TestPublicAnalyzeAll(t *testing.T) {
	n, err := fspnet.ParseNetworkString(
		"process P0 { start a0; a0 x a1 } process P1 { start b0; b0 x b1 }")
	if err != nil {
		t.Fatal(err)
	}
	results, err := fspnet.AnalyzeAll(context.Background(), n, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Err != nil || results[1].Err != nil {
		t.Fatalf("results = %+v", results)
	}
}

func TestPublicGroupAnalysis(t *testing.T) {
	n, err := fspnet.ParseNetworkString(
		"process P0 { start a0; a0 x a1 } " +
			"process P1 { start b0; b0 x b1; b1 y b2 } " +
			"process P2 { start c0; c0 y c1 }")
	if err != nil {
		t.Fatal(err)
	}
	v, err := fspnet.AnalyzeGroup(n, []int{0, 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Su || !v.Sc {
		t.Errorf("group verdict = %v", v)
	}
	win, err := fspnet.JointAdversity(n, []int{0, 2})
	if err != nil || !win {
		t.Errorf("joint adversity: %v %v", win, err)
	}
}

func TestPublicBisimulation(t *testing.T) {
	p := fspnet.Linear("P", "a", "b")
	q := fspnet.Linear("Q", "a", "b")
	if !fspnet.StronglyBisimilar(p, q) || !fspnet.WeaklyBisimilar(p, q) {
		t.Error("identical chains are bisimilar")
	}
	r := fspnet.Linear("R", "a", "c")
	if fspnet.StronglyBisimilar(p, r) || fspnet.WeaklyBisimilar(p, r) {
		t.Error("different chains are not bisimilar")
	}
}

func TestPublicCyclicExtras(t *testing.T) {
	// Mutual loop: everything succeeds forever.
	n, err := fspnet.ParseNetworkString(
		"process P { start s0; s0 x s0 } process Q { start t0; t0 x t0 }")
	if err != nil {
		t.Fatal(err)
	}
	su, err := fspnet.UnavoidableCyclic(n, 0)
	if err != nil || !su {
		t.Errorf("S_u = %v, %v", su, err)
	}
	sa, err := fspnet.AdversityCyclic(n, 0)
	if err != nil || !sa {
		t.Errorf("S_a = %v, %v", sa, err)
	}
	_, blocked, err := fspnet.BlockingWitnessCyclic(n, 0)
	if err != nil || blocked {
		t.Errorf("blocked = %v, %v", blocked, err)
	}
	win, strat, err := fspnet.WinningStrategyCyclic(n, 0)
	if err != nil || !win || len(strat) == 0 {
		t.Errorf("cyclic strategy: win=%v |strat|=%d err=%v", win, len(strat), err)
	}
	// The Section 4 composition at the public surface.
	p := n.Process(0)
	q := n.Process(1)
	comp := fspnet.ComposeCyclic(p, q)
	if len(comp.Leaves()) != 1 {
		t.Errorf("cyclic composition must add the divergence leaf, got %v", comp.Leaves())
	}
}
