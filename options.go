package fspnet

import (
	"context"
	"time"

	"fspnet/internal/guard"
	"fspnet/internal/success"
)

// Options govern a reference analysis end to end. The zero value means
// ungoverned: no cancellation, no deadline, no joint budget, default
// parallelism. When any of Context, Deadline, or Budget is set, the run
// is checked at every BFS level barrier, game stride, and pass boundary;
// exhaustion surfaces as a *LimitErr whose Partial verdict reports how
// far the run got and any predicate it had already decided.
type Options struct {
	// Context supplies cancellation (and, if it carries one, a deadline).
	Context context.Context
	// Deadline is an absolute wall-clock bound; zero means none.
	Deadline time.Time
	// Budget bounds the joint states/steps interned across every pass of
	// the analysis; 0 or negative means unlimited.
	Budget int
	// Workers bounds the explore engine's frontier parallelism (≤ 0:
	// GOMAXPROCS). Verdicts never depend on it.
	Workers int
	// MaxStates is the explore engine's own joint-state budget (≤ 0:
	// the engine default).
	MaxStates int
}

// Governed runtime vocabulary, re-exported so callers can match the
// typed error and inspect partial verdicts without importing internals.
type (
	// LimitErr is the typed error a governed analysis returns on
	// exhaustion; match it with errors.As.
	LimitErr = guard.LimitErr
	// PartialVerdict is what a truncated analysis still proved.
	PartialVerdict = guard.Partial
	// Bound is a three-valued predicate answer inside a PartialVerdict.
	Bound = guard.Bound
)

// Stop reasons, matchable with errors.Is on any governed error.
var (
	// ErrBudget reports an exhausted state/step budget.
	ErrBudget = guard.ErrBudget
	// ErrCanceled reports that Options.Context was canceled.
	ErrCanceled = guard.ErrCanceled
	// ErrDeadline reports an expired deadline.
	ErrDeadline = guard.ErrDeadline
	// ErrPanic reports a worker panic recovered at a level barrier.
	ErrPanic = guard.ErrPanic
)

// Bound values.
const (
	BoundUnknown = guard.Unknown
	BoundFalse   = guard.False
	BoundTrue    = guard.True
)

// successOptions lowers the public Options onto the internal analysis
// options, building a governor only when one of the governing fields is
// set.
func (o Options) successOptions() success.Options {
	s := success.Options{Workers: o.Workers, MaxStates: o.MaxStates}
	if o.Context != nil || !o.Deadline.IsZero() || o.Budget > 0 {
		s.Guard = guard.New(guard.Config{Context: o.Context, Deadline: o.Deadline, Budget: o.Budget})
	}
	return s
}

// AnalyzeAcyclicOpts is AnalyzeAcyclic under the given Options.
func AnalyzeAcyclicOpts(n *Network, i int, o Options) (Verdict, error) {
	return success.AnalyzeAcyclicOpts(n, i, o.successOptions())
}

// AnalyzeCyclicOpts is AnalyzeCyclic under the given Options.
func AnalyzeCyclicOpts(n *Network, i int, o Options) (Verdict, error) {
	return success.AnalyzeCyclicOpts(n, i, o.successOptions())
}

// AnalyzeAllOpts is AnalyzeAll under the given Options; the governor
// (and its joint budget, if any) is shared by every per-process
// analysis. Options.Context both cancels the dispatch loop and stops
// in-flight per-process analyses at their next barrier.
func AnalyzeAllOpts(n *Network, cyclic bool, workers int, o Options) ([]Result, error) {
	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}
	return success.AnalyzeAllOpts(ctx, n, cyclic, workers, o.successOptions())
}
