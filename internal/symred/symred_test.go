package symred_test

import (
	"fmt"
	"math/rand"
	"testing"

	"fspnet/internal/bench"
	"fspnet/internal/fsp"
	"fspnet/internal/network"
	"fspnet/internal/symred"
)

// clique builds the hub-and-spoke family inline: a distinguished process
// P talking to a hub, and k interchangeable leaves each talking only to
// the hub over leaf-specific actions. Its automorphism group is the
// symmetric group on the leaves.
func clique(t *testing.T, k int) *network.Network {
	t.Helper()
	var procs []*fsp.FSP
	bp := fsp.NewBuilder("P")
	a0, a1 := bp.State("a"), bp.State("b")
	bp.Add(a0, "req", a1)
	bp.Add(a1, "req", a1) // extra self-loop: makes P's shape distinct from a leaf's
	bp.Add(a1, "ack", a0)
	procs = append(procs, bp.MustBuild())
	bh := fsp.NewBuilder("Hub")
	idle := bh.State("idle")
	r := bh.State("r")
	bh.Add(idle, "req", r)
	bh.Add(r, "req", r)
	bh.Add(r, "ack", idle)
	for i := 0; i < k; i++ {
		s := bh.State(fmt.Sprintf("serve%d", i))
		bh.Add(idle, fsp.Action(fmt.Sprintf("ask%d", i)), s)
		bh.Add(s, fsp.Action(fmt.Sprintf("done%d", i)), idle)
	}
	procs = append(procs, bh.MustBuild())
	for i := 0; i < k; i++ {
		bl := fsp.NewBuilder(fmt.Sprintf("Leaf%d", i))
		l0, l1 := bl.State("idle"), bl.State("wait")
		bl.Add(l0, fsp.Action(fmt.Sprintf("ask%d", i)), l1)
		bl.Add(l1, fsp.Action(fmt.Sprintf("done%d", i)), l0)
		procs = append(procs, bl.MustBuild())
	}
	n, err := network.New(procs...)
	if err != nil {
		t.Fatalf("clique(%d): %v", k, err)
	}
	return n
}

func philosophers(t *testing.T, m int) *network.Network {
	t.Helper()
	n, err := bench.Philosophers(m)
	if err != nil {
		t.Fatalf("Philosophers(%d): %v", m, err)
	}
	return n
}

// applyElem returns e·vec, for cross-checking the canonizer.
func applyElem(e *symred.Elem, vec []uint32) []uint32 {
	out := make([]uint32, len(vec))
	for j := range vec {
		out[e.Proc[j]] = uint32(e.State[j][vec[j]])
	}
	return out
}

func TestPhilosophersRotationGroup(t *testing.T) {
	for _, m := range []int{3, 5, 6, 10} {
		n := philosophers(t, m)
		g := symred.Discover(n)
		// The left-first asymmetry of the family kills reflections: the
		// group is exactly the cyclic group C_m of ring rotations.
		if g.Order() != m {
			t.Fatalf("m=%d: Order=%d, want %d (rotations only)", m, g.Order(), m)
		}
		orb := g.Orbit(0)
		if len(orb) != m {
			t.Fatalf("m=%d: |Orbit(phil0)|=%d, want %d", m, len(orb), m)
		}
		orb = g.Orbit(m) // fork 0
		if len(orb) != m || int(orb[0]) != m {
			t.Fatalf("m=%d: Orbit(fork0)=%v, want the %d forks", m, orb, m)
		}
	}
}

func TestPhilosophersPoliteTrivial(t *testing.T) {
	n, err := bench.PhilosophersPolite(6)
	if err != nil {
		t.Fatal(err)
	}
	g := symred.Discover(n)
	if !g.Trivial() {
		t.Fatalf("polite ring: Order=%d, want trivial (philosopher 0 is asymmetric)", g.Order())
	}
	cz := g.NewCanonizer()
	vec := []uint32{0, 1, 2, 3, 0, 1, 0, 1, 0, 1, 0, 1}
	dst := make([]uint32, len(vec))
	if cz.Canon(vec, dst) {
		t.Fatal("trivial group changed a vector")
	}
	if cz.OrbitSize(vec) != 1 {
		t.Fatalf("trivial group OrbitSize=%d", cz.OrbitSize(vec))
	}
}

func TestCliqueSwapGroup(t *testing.T) {
	k := 5
	n := clique(t, k)
	g := symred.Discover(n)
	// All k(k−1)/2 leaf transpositions are discovered as elements.
	if want := k*(k-1)/2 + 1; g.Order() != want {
		t.Fatalf("clique(%d): Order=%d, want %d", k, g.Order(), want)
	}
	if len(g.Orbit(2)) != k {
		t.Fatalf("leaf orbit %v, want all %d leaves", g.Orbit(2), k)
	}
	if len(g.Orbit(0)) != 1 || len(g.Orbit(1)) != 1 {
		t.Fatal("P and Hub must be fixed points")
	}
	// Every element fixes P and P's actions, so the dist-subgroup for
	// dist=0 keeps the whole group.
	sub := g.DistSubgroup(0)
	if sub.Order() != g.Order() {
		t.Fatalf("DistSubgroup(0): Order=%d, want %d", sub.Order(), g.Order())
	}
	// Canonicalization sorts the interchangeable leaf block: vectors
	// that differ only by a leaf permutation collapse.
	cz := g.NewCanonizer()
	a := []uint32{0, 0, 1, 0, 0, 1, 0}
	b := []uint32{0, 0, 0, 0, 1, 0, 1}
	ca, cb := make([]uint32, len(a)), make([]uint32, len(b))
	cz.Canon(a, ca)
	cz.Canon(b, cb)
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("leaf-permuted vectors canonicalize differently: %v vs %v", ca, cb)
		}
	}
	// OrbitSize counts single-application images: from {leaf0, leaf3}
	// waiting, one transposition reaches {x,3} and {0,x} for the three
	// other leaves, plus the set itself — 7 distinct images.
	if got := cz.OrbitSize(a); got != 7 {
		t.Fatalf("OrbitSize=%d, want 7", got)
	}
}

func TestPhilosophersDistSubgroupTrivial(t *testing.T) {
	n := philosophers(t, 6)
	g := symred.Discover(n)
	// Every rotation moves philosopher 0, so the S_a subgroup is trivial
	// on rings — the belief quotient only bites on hub-and-spoke shapes.
	if sub := g.DistSubgroup(0); !sub.Trivial() {
		t.Fatalf("ring DistSubgroup(0): Order=%d, want trivial", sub.Order())
	}
}

func TestCanonOrbitInvariance(t *testing.T) {
	n := philosophers(t, 7)
	g := symred.Discover(n)
	cz := g.NewCanonizer()
	m := n.Len()
	sizes := make([]uint32, m)
	for j := 0; j < m; j++ {
		sizes[j] = uint32(n.Process(j).NumStates())
	}
	rng := rand.New(rand.NewSource(42))
	vec := make([]uint32, m)
	dst := make([]uint32, m)
	dst2 := make([]uint32, m)
	for trial := 0; trial < 200; trial++ {
		for j := range vec {
			vec[j] = uint32(rng.Intn(int(sizes[j])))
		}
		cz.Canon(vec, dst)
		// Canon is constant on the orbit: every element image of vec must
		// canonicalize to the same representative, and the representative
		// itself is a fixpoint (idempotence).
		cz.Canon(dst, dst2)
		for i := range dst {
			if dst[i] != dst2[i] {
				t.Fatalf("canon not idempotent: %v then %v", dst, dst2)
			}
		}
		for ei := 0; ei < g.Order()-1; ei++ {
			img := applyElem(elemAt(t, g, ei), vec)
			cz.Canon(img, dst2)
			for i := range dst {
				if dst[i] != dst2[i] {
					t.Fatalf("canon(%v)=%v but canon(g·vec=%v)=%v", vec, dst, img, dst2)
				}
			}
		}
	}
}

func TestCanonPermTracksComponents(t *testing.T) {
	n := philosophers(t, 8)
	g := symred.Discover(n)
	cz := g.NewCanonizer()
	m := n.Len()
	rng := rand.New(rand.NewSource(7))
	vec, dst := make([]uint32, m), make([]uint32, m)
	pi := make([]int32, m)
	for trial := 0; trial < 100; trial++ {
		for j := 0; j < 8; j++ {
			vec[j] = uint32(rng.Intn(4))
			vec[8+j] = uint32(rng.Intn(3))
		}
		cz.CanonPerm(vec, dst, pi)
		seen := make([]bool, m)
		for j := range pi {
			if pi[j] < 0 || int(pi[j]) >= m || seen[pi[j]] {
				t.Fatalf("pi not a permutation: %v", pi)
			}
			seen[pi[j]] = true
			// Rotations have identity σ on the shared state shapes, so the
			// component j of vec must reappear verbatim at dst[pi[j]].
			if dst[pi[j]] != vec[j] {
				t.Fatalf("dst[pi[%d]]=%d, want vec[%d]=%d (pi=%v)", j, dst[pi[j]], j, vec[j], pi)
			}
		}
	}
}

func elemAt(t *testing.T, g *symred.Group, ei int) *symred.Elem {
	t.Helper()
	es := g.Elems()
	if ei >= len(es) {
		t.Fatalf("element %d out of range %d", ei, len(es))
	}
	return &es[ei]
}
