// Package symred discovers automorphisms of a closed network — process
// permutations π combined with an action relabeling α and per-process
// state bijections σ that together preserve every start state, every
// transition, and the action-ownership map of Definition 2 — and
// canonicalizes joint state vectors to orbit representatives under the
// discovered element set.
//
// The three success predicates are invariant under such an automorphism
// (it is an isomorphism of the reachable joint graph that maps the
// distinguished process's role along π), so engines may explore one
// representative per orbit instead of the whole orbit. The target
// classes are the ones the fixture families instantiate: ring rotations
// (philosophers) and interchangeable-member swaps (hub-and-spoke
// cliques, generated E-series families).
//
// Discovery is heuristic, verification exact: candidate elements are
// grown by constraint propagation from a seed assignment (π(0)=t for
// every structurally plausible t, plus every same-class transposition),
// matching states breadth-first and relabeling actions first-fit under
// the ownership constraint; every completed candidate is then checked
// exactly — bijectivity, start preservation, transition-set image
// equality, ownership equivariance — and discarded on any mismatch. A
// missed automorphism therefore only costs reduction, never soundness.
//
// Canonicalization is the O(rounds·|elems|·m) iterated-minimization
// scheme: repeatedly apply any element that lexicographically decreases
// the vector until none does. When the discovered element set happens to
// be the whole group (rings and swap classes — every rotation and every
// transposition is found as its own element), the fixpoint is the exact
// orbit minimum; in general it is some orbit member, which is all the
// quotient construction needs (canon(v) ∈ orbit(v), deterministically).
package symred

import (
	"encoding/binary"
	"sort"

	"fspnet/internal/fsp"
	"fspnet/internal/network"
)

// maxElems caps the verified elements kept per group; seeds beyond it are
// not tried. Rings contribute m−1 rotations and a swap class of k members
// k(k−1)/2 transpositions, so realistic networks sit far below the cap.
const maxElems = 512

// maxDense bounds the per-process state and action counts discovery will
// compile into its packed transition keys; larger networks get a trivial
// group (no reduction) rather than a wrong one.
const maxDense = 1 << 20

// Elem is one verified automorphism. Proc is the process permutation π
// (Inv its inverse), State[j][s] the state of process Proc[j] matching
// state s of process j, and Act the action relabeling over the group's
// dense action ids (the sorted union of the member alphabets).
type Elem struct {
	Proc  []int32
	Inv   []int32
	State [][]int32
	Act   []int32
}

// Group is a set of verified automorphisms of one network, closed only
// implicitly (compositions are applied iteratively, never materialized).
// The zero-element group is the trivial group: canonicalization is the
// identity.
type Group struct {
	m     int
	acts  []fsp.Action
	ownA  []int32
	ownB  []int32
	elems []Elem
}

// Trivial reports whether the group has no non-identity elements.
func (g *Group) Trivial() bool { return g == nil || len(g.elems) == 0 }

// Elems returns the verified non-identity elements. The slice and its
// contents must not be modified.
func (g *Group) Elems() []Elem {
	if g == nil {
		return nil
	}
	return g.elems
}

// Order returns the number of discovered elements including the
// identity — a lower bound on the order of the full automorphism group.
func (g *Group) Order() int {
	if g == nil {
		return 1
	}
	return len(g.elems) + 1
}

// Orbit returns the sorted orbit of process index j under the element
// set (closure over both directions of every element).
func (g *Group) Orbit(j int) []int32 {
	out := []int32{int32(j)}
	if g == nil || len(g.elems) == 0 {
		return out
	}
	seen := make([]bool, g.m)
	seen[j] = true
	for i := 0; i < len(out); i++ {
		for ei := range g.elems {
			for _, f := range [2]int32{g.elems[ei].Proc[out[i]], g.elems[ei].Inv[out[i]]} {
				if !seen[f] {
					seen[f] = true
					out = append(out, f)
				}
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// DistSubgroup returns the elements fixing process dist and every action
// it owns. Applying such an element to a reachable joint vector fixes
// the dist component and commutes with every observation the belief
// game makes (offers, steps, stability), so the S_a context space may be
// quotiented by it. Compositions of stabilizing elements stabilize, so
// iterated minimization over the subset stays inside the stabilizer.
func (g *Group) DistSubgroup(dist int) *Group {
	sub := &Group{m: g.m, acts: g.acts, ownA: g.ownA, ownB: g.ownB}
	if g.Trivial() {
		return sub
	}
	for ei := range g.elems {
		e := &g.elems[ei]
		if e.Proc[dist] != int32(dist) {
			continue
		}
		ok := true
		for a := range g.acts {
			if (g.ownA[a] == int32(dist) || g.ownB[a] == int32(dist)) && e.Act[a] != int32(a) {
				ok = false
				break
			}
		}
		if ok {
			sub.elems = append(sub.elems, *e)
		}
	}
	return sub
}

// Canonizer carries the per-caller scratch buffers of the
// canonicalization loop; each concurrent canonicalizing worker needs its
// own. The Group itself is immutable after Discover and shared freely.
type Canonizer struct {
	g   *Group
	tmp []uint32
	pc  []int32
}

// NewCanonizer returns a fresh scratch-carrying canonicalizer for g.
func (g *Group) NewCanonizer() *Canonizer {
	m := 0
	if g != nil {
		m = g.m
	}
	return &Canonizer{g: g, tmp: make([]uint32, m), pc: make([]int32, m)}
}

// Canon writes the canonical image of vec into dst and reports whether
// it differs from vec. vec and dst must not overlap. The image is the
// iterated-minimization fixpoint: no single element application
// decreases it lexicographically. Deterministic in (group, vec).
func (cz *Canonizer) Canon(vec, dst []uint32) bool { return cz.canon(vec, dst, nil) }

// CanonPerm is Canon additionally filling pi with the process
// permutation of the applied (composed) element g, so dst = g·vec and
// pi[j] is the component of dst that carries vec's component j.
func (cz *Canonizer) CanonPerm(vec, dst []uint32, pi []int32) bool { return cz.canon(vec, dst, pi) }

func (cz *Canonizer) canon(vec, dst []uint32, pi []int32) bool {
	g := cz.g
	copy(dst, vec)
	if pi != nil {
		for i := range pi {
			pi[i] = int32(i)
		}
	}
	if g == nil || len(g.elems) == 0 {
		return false
	}
	changed := false
	for {
		improved := false
		for ei := range g.elems {
			e := &g.elems[ei]
			tmp := cz.tmp
			for j := 0; j < g.m; j++ {
				tmp[e.Proc[j]] = uint32(e.State[j][dst[j]])
			}
			if lessVec(tmp, dst) {
				copy(dst, tmp)
				if pi != nil {
					pc := cz.pc
					for j := range pi {
						pc[j] = e.Proc[pi[j]]
					}
					copy(pi, pc)
				}
				improved, changed = true, true
			}
		}
		if !improved {
			return changed
		}
	}
}

// OrbitSize counts the distinct single-application images of vec under
// the element set (including vec itself) — the exact orbit size whenever
// the element set is the full group, a lower bound otherwise.
func (cz *Canonizer) OrbitSize(vec []uint32) int {
	g := cz.g
	if g == nil || len(g.elems) == 0 {
		return 1
	}
	seen := make(map[string]struct{}, len(g.elems)+1)
	kb := make([]byte, 4*g.m)
	pack := func(v []uint32) {
		for i, x := range v {
			binary.LittleEndian.PutUint32(kb[i*4:], x)
		}
		seen[string(kb)] = struct{}{}
	}
	pack(vec)
	for ei := range g.elems {
		e := &g.elems[ei]
		tmp := cz.tmp
		for j := 0; j < g.m; j++ {
			tmp[e.Proc[j]] = uint32(e.State[j][vec[j]])
		}
		pack(tmp)
	}
	return len(seen)
}

func lessVec(a, b []uint32) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// ---------- discovery ----------

type vtrans struct{ aid, to int32 }

// dproc is one member compiled for discovery: dense action ids, sorted
// move tables, and a cheap structural fingerprint gating candidate
// images (exact verification is the real filter).
type dproc struct {
	ns     int
	start  int32
	tau    [][]int32
	vis    [][]vtrans
	ntrans int
	key    string
	tset   map[uint64]bool
}

type disc struct {
	m     int
	procs []dproc
	acts  []fsp.Action
	ownA  []int32
	ownB  []int32
}

func tkey(s int32, aid int32, to int32) uint64 {
	return uint64(uint32(s))<<42 | uint64(uint32(aid+1))<<21 | uint64(uint32(to))
}

// Discover compiles n and searches for automorphism elements. The
// result is deterministic in n: seeds are tried in index order and
// every verified element appended in discovery order.
func Discover(n *network.Network) *Group {
	m := n.Len()
	g := &Group{m: m}
	if m < 2 {
		return g
	}
	procs := n.Processes()
	var acts []fsp.Action
	for _, p := range procs {
		acts = append(acts, p.Alphabet()...)
	}
	sort.Slice(acts, func(i, j int) bool { return acts[i] < acts[j] })
	w := 0
	for i, a := range acts {
		if i == 0 || a != acts[w-1] {
			acts[w] = a
			w++
		}
	}
	acts = acts[:w]
	if len(acts) >= maxDense {
		return g
	}
	aid := make(map[fsp.Action]int32, len(acts))
	for i, a := range acts {
		aid[a] = int32(i)
	}
	d := &disc{m: m, acts: acts, ownA: make([]int32, len(acts)), ownB: make([]int32, len(acts))}
	for i := range d.ownA {
		d.ownA[i], d.ownB[i] = -1, -1
	}
	for j, p := range procs {
		for _, a := range p.Alphabet() {
			id := aid[a]
			if d.ownA[id] < 0 {
				d.ownA[id] = int32(j)
			} else if d.ownB[id] < 0 {
				d.ownB[id] = int32(j)
			} else {
				return g // not a Definition 2 network; nothing to do here
			}
		}
	}
	d.procs = make([]dproc, m)
	for j, p := range procs {
		dp := &d.procs[j]
		dp.ns = p.NumStates()
		if dp.ns >= maxDense {
			return g
		}
		dp.start = int32(p.Start())
		dp.tau = make([][]int32, dp.ns)
		dp.vis = make([][]vtrans, dp.ns)
		dp.tset = make(map[uint64]bool)
		tauCnt := 0
		for s := 0; s < dp.ns; s++ {
			for _, t := range p.Out(fsp.State(s)) {
				if t.Label == fsp.Tau {
					dp.tau[s] = append(dp.tau[s], int32(t.To))
					dp.tset[tkey(int32(s), -1, int32(t.To))] = true
					tauCnt++
				} else {
					dp.vis[s] = append(dp.vis[s], vtrans{aid: aid[t.Label], to: int32(t.To)})
					dp.tset[tkey(int32(s), aid[t.Label], int32(t.To))] = true
				}
				dp.ntrans++
			}
			ts := dp.tau[s]
			sort.Slice(ts, func(a, b int) bool { return ts[a] < ts[b] })
			vs := dp.vis[s]
			sort.Slice(vs, func(a, b int) bool {
				return vs[a].aid < vs[b].aid || (vs[a].aid == vs[b].aid && vs[a].to < vs[b].to)
			})
		}
		dp.key = fpKey(dp.ns, dp.ntrans, tauCnt, len(p.Alphabet()))
	}
	g.acts, g.ownA, g.ownB = d.acts, d.ownA, d.ownB
	seen := make(map[string]bool)
	add := func(e *Elem, ok bool) {
		if !ok || e == nil || len(g.elems) >= maxElems {
			return
		}
		k := elemKey(e)
		if seen[k] {
			return
		}
		seen[k] = true
		g.elems = append(g.elems, *e)
	}
	// Seed class (a): move process 0 onto every plausible image and let
	// constraint propagation force the rest — rings yield one rotation
	// per image this way.
	for t := 1; t < m; t++ {
		if d.procs[t].key != d.procs[0].key {
			continue
		}
		add(d.try(func(c *cand) bool { return d.setPi(c, 0, int32(t)) }))
	}
	// Seed class (b): every same-class transposition with all other
	// processes pinned — interchangeable members yield one element per
	// pair. (Propagation from seed (a) only finds automorphisms moving
	// process 0.)
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			if d.procs[i].key != d.procs[j].key {
				continue
			}
			add(d.try(func(c *cand) bool {
				if !d.setPi(c, int32(i), int32(j)) || !d.setPi(c, int32(j), int32(i)) {
					return false
				}
				for k := 0; k < m; k++ {
					if k != i && k != j && !d.setPi(c, int32(k), int32(k)) {
						return false
					}
				}
				return true
			}))
		}
	}
	return g
}

func fpKey(ns, ntrans, ntau, nacts int) string {
	var b [16]byte
	binary.LittleEndian.PutUint32(b[0:], uint32(ns))
	binary.LittleEndian.PutUint32(b[4:], uint32(ntrans))
	binary.LittleEndian.PutUint32(b[8:], uint32(ntau))
	binary.LittleEndian.PutUint32(b[12:], uint32(nacts))
	return string(b[:])
}

func elemKey(e *Elem) string {
	buf := make([]byte, 0, 4*len(e.Proc)*4)
	var w [4]byte
	for _, v := range e.Proc {
		binary.LittleEndian.PutUint32(w[:], uint32(v))
		buf = append(buf, w[:]...)
	}
	for _, sg := range e.State {
		for _, v := range sg {
			binary.LittleEndian.PutUint32(w[:], uint32(v))
			buf = append(buf, w[:]...)
		}
	}
	return string(buf)
}

// cand is an in-progress candidate: partial π (with inverse), partial α
// (with inverse), per-process state maps, and the queue of processes
// whose image is fixed but whose states are not yet matched.
type cand struct {
	pi, pinv    []int32
	alpha, ainv []int32
	sigma       [][]int32
	queue       []int32
}

func (d *disc) newCand() *cand {
	c := &cand{
		pi:    make([]int32, d.m),
		pinv:  make([]int32, d.m),
		alpha: make([]int32, len(d.acts)),
		ainv:  make([]int32, len(d.acts)),
		sigma: make([][]int32, d.m),
	}
	for i := range c.pi {
		c.pi[i], c.pinv[i] = -1, -1
	}
	for i := range c.alpha {
		c.alpha[i], c.ainv[i] = -1, -1
	}
	return c
}

// setPi fixes π(j)=jj, failing on conflicts or a fingerprint mismatch,
// and enqueues j for state matching.
func (d *disc) setPi(c *cand, j, jj int32) bool {
	if c.pi[j] >= 0 {
		return c.pi[j] == jj
	}
	if c.pinv[jj] >= 0 {
		return false
	}
	if d.procs[j].key != d.procs[jj].key {
		return false
	}
	c.pi[j], c.pinv[jj] = jj, j
	c.queue = append(c.queue, j)
	return true
}

func (d *disc) setAlpha(c *cand, a, b int32) bool {
	if c.alpha[a] >= 0 {
		return c.alpha[a] == b
	}
	if c.ainv[b] >= 0 {
		return false
	}
	c.alpha[a], c.ainv[b] = b, a
	return true
}

// other returns the owner of action a besides process j.
func (d *disc) other(a, j int32) int32 {
	if d.ownA[a] == j {
		return d.ownB[a]
	}
	return d.ownA[a]
}

// try grows a candidate from seed, completes unknowns with the identity,
// and verifies it exactly. A nil result means the seed admits no
// (discoverable) automorphism.
func (d *disc) try(seed func(c *cand) bool) (*Elem, bool) {
	c := d.newCand()
	if !seed(c) {
		return nil, false
	}
	for len(c.queue) > 0 {
		j := c.queue[0]
		c.queue = c.queue[1:]
		if !d.matchProc(c, j) {
			return nil, false
		}
	}
	for j := int32(0); j < int32(d.m); j++ {
		if c.pi[j] >= 0 {
			continue
		}
		if c.pinv[j] >= 0 {
			return nil, false
		}
		c.pi[j], c.pinv[j] = j, j
	}
	for a := range c.alpha {
		if c.alpha[a] >= 0 {
			continue
		}
		if c.ainv[a] >= 0 {
			return nil, false
		}
		c.alpha[a], c.ainv[a] = int32(a), int32(a)
	}
	return d.verify(c)
}

// matchProc pairs the states of process j with those of π(j) by a
// breadth-first walk from the paired starts, relabeling actions
// first-fit under the ownership constraint as it goes.
func (d *disc) matchProc(c *cand, j int32) bool {
	jj := c.pi[j]
	pj, pjj := &d.procs[j], &d.procs[jj]
	if pj.ns != pjj.ns || pj.ntrans != pjj.ntrans {
		return false
	}
	sg := make([]int32, pj.ns)
	used := make([]bool, pj.ns)
	for i := range sg {
		sg[i] = -1
	}
	c.sigma[j] = sg
	type pair struct{ s, ss int32 }
	var work []pair
	assign := func(s, ss int32) bool {
		if sg[s] >= 0 {
			return sg[s] == ss
		}
		if used[ss] {
			return false
		}
		sg[s], used[ss] = ss, true
		work = append(work, pair{s, ss})
		return true
	}
	if !assign(pj.start, pjj.start) {
		return false
	}
	for len(work) > 0 {
		pr := work[len(work)-1]
		work = work[:len(work)-1]
		s, ss := pr.s, pr.ss
		tj, tjj := pj.tau[s], pjj.tau[ss]
		if len(tj) != len(tjj) {
			return false
		}
		for i := range tj {
			if !assign(tj[i], tjj[i]) {
				return false
			}
		}
		gj := aidGroups(pj.vis[s])
		gjj := aidGroups(pjj.vis[ss])
		if len(gj) != len(gjj) {
			return false
		}
		claimed := make([]bool, len(gjj))
		for _, grp := range gj {
			a := grp.aid
			tgt := -1
			if b := c.alpha[a]; b >= 0 {
				for q := range gjj {
					if gjj[q].aid == b {
						tgt = q
						break
					}
				}
				if tgt < 0 || claimed[tgt] || gjj[tgt].hi-gjj[tgt].lo != grp.hi-grp.lo {
					return false
				}
			} else {
				for q := range gjj {
					if claimed[q] {
						continue
					}
					b := gjj[q].aid
					if c.ainv[b] >= 0 || gjj[q].hi-gjj[q].lo != grp.hi-grp.lo {
						continue
					}
					k, kk := d.other(a, j), d.other(b, jj)
					if c.pi[k] >= 0 {
						if c.pi[k] != kk {
							continue
						}
					} else if c.pinv[kk] >= 0 || d.procs[k].key != d.procs[kk].key {
						continue
					}
					tgt = q
					break
				}
				if tgt < 0 {
					return false
				}
				if !d.setAlpha(c, a, gjj[tgt].aid) {
					return false
				}
			}
			claimed[tgt] = true
			b := gjj[tgt].aid
			if !d.setPi(c, d.other(a, j), d.other(b, jj)) {
				return false
			}
			ga := pj.vis[s][grp.lo:grp.hi]
			gb := pjj.vis[ss][gjj[tgt].lo:gjj[tgt].hi]
			for i := range ga {
				if !assign(ga[i].to, gb[i].to) {
					return false
				}
			}
		}
	}
	for _, ss := range sg {
		if ss < 0 {
			return false // unreachable states: give up on this seed
		}
	}
	return true
}

type aidGroup struct {
	aid    int32
	lo, hi int
}

func aidGroups(vs []vtrans) []aidGroup {
	var out []aidGroup
	for x := 0; x < len(vs); {
		xe := x + 1
		for xe < len(vs) && vs[xe].aid == vs[x].aid {
			xe++
		}
		out = append(out, aidGroup{aid: vs[x].aid, lo: x, hi: xe})
		x = xe
	}
	return out
}

// verify checks a completed candidate exactly: ownership equivariance
// and, per process, transition-set image containment (with equal counts
// and injective maps this is set equality). Returns nil for the
// identity.
func (d *disc) verify(c *cand) (*Elem, bool) {
	for a := range d.acts {
		b := c.alpha[a]
		x, y := c.pi[d.ownA[a]], c.pi[d.ownB[a]]
		if x > y {
			x, y = y, x
		}
		if x != d.ownA[b] || y != d.ownB[b] {
			return nil, false
		}
	}
	identity := true
	for j := int32(0); j < int32(d.m); j++ {
		jj := c.pi[j]
		if jj != j {
			identity = false
		}
		pj, pjj := &d.procs[j], &d.procs[jj]
		if pj.ns != pjj.ns || pj.ntrans != pjj.ntrans {
			return nil, false
		}
		sg := c.sigma[j]
		img := func(s int32) int32 {
			if sg == nil {
				return s
			}
			return sg[s]
		}
		if img(pj.start) != pjj.start {
			return nil, false
		}
		for s := 0; s < pj.ns; s++ {
			if sg != nil && sg[s] != int32(s) {
				identity = false
			}
			for _, t := range pj.tau[s] {
				if !pjj.tset[tkey(img(int32(s)), -1, img(t))] {
					return nil, false
				}
			}
			for _, t := range pj.vis[s] {
				if !pjj.tset[tkey(img(int32(s)), c.alpha[t.aid], img(t.to))] {
					return nil, false
				}
			}
		}
	}
	if identity {
		return nil, false
	}
	e := &Elem{
		Proc:  append([]int32(nil), c.pi...),
		Inv:   append([]int32(nil), c.pinv...),
		State: make([][]int32, d.m),
		Act:   append([]int32(nil), c.alpha...),
	}
	for j := 0; j < d.m; j++ {
		if sg := c.sigma[j]; sg != nil {
			e.State[j] = append([]int32(nil), sg...)
		} else {
			id := make([]int32, d.procs[j].ns)
			for s := range id {
				id[s] = int32(s)
			}
			e.State[j] = id
		}
	}
	return e, true
}
