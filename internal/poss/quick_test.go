package poss

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"fspnet/internal/fsp"
	"fspnet/internal/fsptest"
	"fspnet/internal/lang"
)

// genAcyclic draws a random acyclic FSP for quick.Check.
type genAcyclic struct {
	P *fsp.FSP
}

// Generate implements quick.Generator.
func (genAcyclic) Generate(r *rand.Rand, size int) reflect.Value {
	cfg := fsptest.DefaultConfig()
	cfg.MaxStates = 2 + size%6
	return reflect.ValueOf(genAcyclic{P: fsptest.Acyclic(r, "G", cfg)})
}

var quickCfg = &quick.Config{MaxCount: 80}

// TestQuickPossNonEmpty: an acyclic process always has at least one
// possibility per language string — in particular Poss ≠ ∅ (Section 2.2).
func TestQuickPossNonEmpty(t *testing.T) {
	f := func(g genAcyclic) bool {
		set := MustOf(g.P)
		if set.Len() == 0 {
			return false
		}
		// Every possibility string is in the language and vice versa:
		// strings of the set, being prefixes of Lang, must be accepted.
		for _, s := range set.Strings() {
			if !g.P.Accepts(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickPossDeterminesLang: the possibility strings generate exactly
// Lang(P) for acyclic P (every Lang string carries a possibility).
func TestQuickPossDeterminesLang(t *testing.T) {
	f := func(g genAcyclic) bool {
		set := MustOf(g.P)
		nf, err := NormalForm("NF", set)
		if err != nil {
			return false
		}
		return lang.LangEquivalent(g.P, nf)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickMarkerEquivalenceReflexiveAndStable: the marker-DFA
// equivalence is reflexive and invariant under normal-forming.
func TestQuickMarkerEquivalence(t *testing.T) {
	f := func(g genAcyclic) bool {
		if !Equivalent(g.P, g.P) {
			return false
		}
		nf, err := NormalForm("NF", MustOf(g.P))
		if err != nil {
			return false
		}
		return Equivalent(g.P, nf) && Equivalent(nf, g.P)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickNormalFormIdempotent: NF(Poss(NF(Poss(P)))) has the same
// possibility set — normal-forming is idempotent up to set equality.
func TestQuickNormalFormIdempotent(t *testing.T) {
	f := func(g genAcyclic) bool {
		set := MustOf(g.P)
		nf1, err := NormalForm("NF1", set)
		if err != nil {
			return false
		}
		nf2, err := NormalForm("NF2", MustOf(nf1))
		if err != nil {
			return false
		}
		return MustOf(nf2).Equal(set)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickFailDownwardClosed: failures are downward closed — dropping a
// refused action keeps the pair in Fail (HBR axiom).
func TestQuickFailDownwardClosed(t *testing.T) {
	f := func(g genAcyclic, pick uint8) bool {
		set := MustOf(g.P)
		items := set.Items()
		it := items[int(pick)%len(items)]
		sigma := g.P.Alphabet()
		var complement []fsp.Action
		for _, a := range sigma {
			if !containsAction(it.Z, a) {
				complement = append(complement, a)
			}
		}
		if !InFail(g.P, it.S, complement) {
			return false
		}
		// Every subset obtained by dropping one element stays in Fail.
		for drop := range complement {
			sub := append(append([]fsp.Action(nil), complement[:drop]...), complement[drop+1:]...)
			if !InFail(g.P, it.S, sub) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickCongruenceUnderRelabeling: possibility equivalence is stable
// under consistent action relabeling.
func TestQuickCongruenceUnderRelabeling(t *testing.T) {
	f := func(g genAcyclic) bool {
		m := map[fsp.Action]fsp.Action{"a": "a2", "b": "b2", "c": "c2"}
		p2, err := g.P.RelabelActions(m)
		if err != nil {
			return false
		}
		back := map[fsp.Action]fsp.Action{"a2": "a", "b2": "b", "c2": "c"}
		p3, err := p2.RelabelActions(back)
		if err != nil {
			return false
		}
		return Equivalent(g.P, p3)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}
