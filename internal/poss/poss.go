// Package poss implements the possibility calculus of Kanellakis & Smolka:
// Poss(P), Lang(P) and Fail(P) of Definition 4, possibility equivalence
// (the paper's refinement of HBR failure equivalence), and the
// possibility-preserving normal form at the core of Theorem 3.
//
// A possibility (s, Z) records that the string s can drive the process to a
// stable state (no outgoing τ) whose outgoing action set is exactly Z.
package poss

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"fspnet/internal/fsp"
	"fspnet/internal/guard"
)

var (
	// ErrCyclic reports that possibility enumeration was asked for a
	// process with a directed cycle, whose possibility set may be infinite.
	ErrCyclic = errors.New("poss: process is cyclic")
	// ErrBudget reports that enumeration exceeded the caller's budget. For
	// general acyclic processes the possibility set can be exponential in
	// the process size — this is exactly the hardness source of Theorem 1,
	// surfaced in the API rather than hidden. It wraps guard.ErrBudget,
	// the unified budget sentinel.
	ErrBudget = fmt.Errorf("poss: enumeration budget exhausted: %w", guard.ErrBudget)
)

// pollStride amortizes governor polls: one Poll per stride of enumeration
// work units.
const pollStride = 1024

// DefaultBudget bounds possibility enumeration when callers have no better
// estimate. Tree processes never get near it (|Poss| ≤ |K|).
const DefaultBudget = 1 << 20

// Possibility is a pair (s, Z) of Definition 4.
type Possibility struct {
	S []fsp.Action // the driving string
	Z []fsp.Action // the exact outgoing action set of the stable state, sorted
}

// String renders the possibility as "(a·b, {x,y})".
func (p Possibility) String() string {
	return "(" + StringOfActions(p.S) + ", " + fsp.ActionSetString(p.Z) + ")"
}

// StringOfActions renders an action string as "a·b·c" ("ε" when empty).
func StringOfActions(s []fsp.Action) string {
	if len(s) == 0 {
		return "ε"
	}
	parts := make([]string, len(s))
	for i, a := range s {
		parts[i] = string(a)
	}
	return strings.Join(parts, "·")
}

// Set is a canonical (sorted, duplicate-free) set of possibilities.
type Set struct {
	items []Possibility
}

// Items returns the possibilities in canonical order. The slice is shared
// and must not be modified.
func (s *Set) Items() []Possibility { return s.items }

// Len returns the number of possibilities.
func (s *Set) Len() int { return len(s.items) }

// String renders the whole set.
func (s *Set) String() string {
	parts := make([]string, len(s.items))
	for i, p := range s.items {
		parts[i] = p.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Equal reports set equality — possibility equivalence when both sets were
// fully enumerated.
func (s *Set) Equal(t *Set) bool {
	if len(s.items) != len(t.items) {
		return false
	}
	for i := range s.items {
		if !equalActions(s.items[i].S, t.items[i].S) || !equalActions(s.items[i].Z, t.items[i].Z) {
			return false
		}
	}
	return true
}

// Strings returns the distinct driving strings of the set in canonical
// order; for a complete set this is Lang restricted to possibility strings.
func (s *Set) Strings() [][]fsp.Action {
	var out [][]fsp.Action
	for i, p := range s.items {
		if i == 0 || !equalActions(p.S, s.items[i-1].S) {
			out = append(out, p.S)
		}
	}
	return out
}

// At returns the action sets Z with (s, Z) in the set.
func (s *Set) At(str []fsp.Action) [][]fsp.Action {
	var out [][]fsp.Action
	for _, p := range s.items {
		if equalActions(p.S, str) {
			out = append(out, p.Z)
		}
	}
	return out
}

// NewSet canonicalizes the given possibilities into a Set.
func NewSet(items []Possibility) *Set {
	cp := make([]Possibility, len(items))
	copy(cp, items)
	sortPossibilities(cp)
	w := 0
	for i, p := range cp {
		if i == 0 || !equalActions(p.S, cp[w-1].S) || !equalActions(p.Z, cp[w-1].Z) {
			cp[w] = p
			w++
		}
	}
	return &Set{items: cp[:w]}
}

// Of enumerates Poss(p) for an acyclic process. budget bounds the total
// number of enumerated strings plus possibilities; use DefaultBudget when
// in doubt. Returns ErrCyclic for cyclic processes and ErrBudget when the
// bound is exceeded.
func Of(p *fsp.FSP, budget int) (*Set, error) {
	return OfGuarded(p, budget, nil)
}

// OfGuarded is Of under a governor: cancellation and deadlines are polled
// every pollStride work units, each unit is charged against the joint
// budget, and every exhaustion path returns a *guard.LimitErr counting
// the work done. A nil governor makes it identical to Of.
func OfGuarded(p *fsp.FSP, budget int, g *guard.G) (*Set, error) {
	if !p.IsAcyclic() {
		return nil, fmt.Errorf("%s: %w", p.Name(), ErrCyclic)
	}
	var (
		items []Possibility
		work  int
	)
	limit := func(reason error) error {
		return g.Limit(reason, guard.Partial{States: work, Pass: "poss"})
	}
	step := func() error {
		work++
		if work > budget {
			return limit(fmt.Errorf("%s: %w", p.Name(), ErrBudget))
		}
		if work%pollStride == 0 {
			if err := g.Poll("poss", work/pollStride); err != nil {
				return limit(fmt.Errorf("%s: %w", p.Name(), err))
			}
		}
		if err := g.Charge(1); err != nil {
			return limit(fmt.Errorf("%s: %w", p.Name(), err))
		}
		return nil
	}
	var walk func(s []fsp.Action, set []fsp.State) error
	walk = func(s []fsp.Action, set []fsp.State) error {
		if err := step(); err != nil {
			return err
		}
		seenZ := make(map[string]bool)
		for _, q := range set {
			if !p.IsStable(q) {
				continue
			}
			z := p.ActionsAt(q)
			key := fsp.ActionSetString(z)
			if seenZ[key] {
				continue
			}
			seenZ[key] = true
			items = append(items, Possibility{S: append([]fsp.Action(nil), s...), Z: z})
			if err := step(); err != nil {
				return err
			}
		}
		for _, a := range availableActions(p, set) {
			next := p.Step(set, a)
			if len(next) == 0 {
				continue
			}
			if err := walk(append(s, a), next); err != nil {
				return err
			}
		}
		return nil
	}
	start := p.TauClosure([]fsp.State{p.Start()})
	if err := walk(nil, start); err != nil {
		return nil, err
	}
	return NewSet(items), nil
}

// MustOf is Of with DefaultBudget for processes known to be small; it
// panics on error and is intended for tests and examples.
func MustOf(p *fsp.FSP) *Set {
	s, err := Of(p, DefaultBudget)
	if err != nil {
		panic(err)
	}
	return s
}

// availableActions returns the sorted non-τ actions leaving any state of
// the (τ-closed) set.
func availableActions(p *fsp.FSP, set []fsp.State) []fsp.Action {
	seen := make(map[fsp.Action]bool)
	var out []fsp.Action
	for _, q := range set {
		for _, t := range p.Out(q) {
			if t.Label != fsp.Tau && !seen[t.Label] {
				seen[t.Label] = true
				out = append(out, t.Label)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortPossibilities(ps []Possibility) {
	sort.Slice(ps, func(i, j int) bool {
		c := compareActions(ps[i].S, ps[j].S)
		if c != 0 {
			return c < 0
		}
		return compareActions(ps[i].Z, ps[j].Z) < 0
	})
}

func compareActions(a, b []fsp.Action) int {
	// Shortlex: length first, then lexicographic. Keeps prefixes before
	// extensions, which the normal-form builder relies on.
	if len(a) != len(b) {
		if len(a) < len(b) {
			return -1
		}
		return 1
	}
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

func equalActions(a, b []fsp.Action) bool { return compareActions(a, b) == 0 }
