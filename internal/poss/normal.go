package poss

import (
	"errors"
	"fmt"
	"sort"

	"fspnet/internal/fsp"
)

// ErrIncoherent reports that a possibility set cannot come from any acyclic
// FSP and therefore has no normal form: either some prefix of a possibility
// string carries no possibility of its own, or some possibility offers an
// action whose extension string is absent.
var ErrIncoherent = errors.New("poss: possibility set is not coherent")

// NormalForm realizes a possibility set as an FSP N with Poss(N) equal to
// the set — the normal-form step of Theorem 3. The construction is a trie
// over the possibility strings: the node for s is unstable, holding one
// τ-edge per distinct (s, Z) to a stable state whose outgoing set is
// exactly Z, each z ∈ Z re-entering the trie at s·z. Its size is linear in
// the total length of the set, so for tree processes the normal form is no
// larger than the original (the paper's size bound).
func NormalForm(name string, set *Set) (*fsp.FSP, error) {
	b := fsp.NewBuilder(name)

	// Trie over all prefixes of possibility strings.
	type nodeKey = string
	trie := make(map[nodeKey]fsp.State)
	hasPoss := make(map[nodeKey]bool)
	root := b.State("ε")
	trie[StringOfActions(nil)] = root

	ensure := func(s []fsp.Action) fsp.State {
		cur := root
		for i := range s {
			key := StringOfActions(s[:i+1])
			next, ok := trie[key]
			if !ok {
				next = b.State(key)
				trie[key] = next
				parentKey := StringOfActions(s[:i])
				b.Add(trie[parentKey], s[i], next)
			}
			cur = next
		}
		return cur
	}

	// First pass: trie skeleton.
	for _, p := range set.Items() {
		ensure(p.S)
		hasPoss[StringOfActions(p.S)] = true
	}

	// Coherence: every trie node must itself carry at least one
	// possibility (prefixes of Lang strings are Lang strings with
	// possibilities, for acyclic sources). Collect and sort the offenders
	// so the reported prefix does not depend on map iteration order.
	var incoherent []string
	for key := range trie {
		if !hasPoss[key] {
			incoherent = append(incoherent, key)
		}
	}
	sort.Strings(incoherent)
	if len(incoherent) > 0 {
		return nil, fmt.Errorf("prefix %s has no possibility: %w", incoherent[0], ErrIncoherent)
	}

	// Second pass: one stable state per possibility.
	for _, p := range set.Items() {
		node := ensure(p.S)
		stable := b.State(p.String())
		b.AddTau(node, stable)
		for _, z := range p.Z {
			extKey := StringOfActions(append(append([]fsp.Action(nil), p.S...), z))
			target, ok := trie[extKey]
			if !ok {
				return nil, fmt.Errorf("possibility %s offers %q but %s is not in the set: %w",
					p, z, extKey, ErrIncoherent)
			}
			b.Add(stable, z, target)
		}
	}

	nf, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("poss: normal form: %w", err)
	}
	return nf, nil
}
