package poss

import (
	"errors"
	"math/rand"
	"testing"

	"fspnet/internal/fsp"
	"fspnet/internal/fsptest"
)

func acts(ss ...string) []fsp.Action {
	out := make([]fsp.Action, len(ss))
	for i, s := range ss {
		out[i] = fsp.Action(s)
	}
	return out
}

func TestOfLinear(t *testing.T) {
	p := fsp.Linear("P", "a", "b")
	set := MustOf(p)
	want := NewSet([]Possibility{
		{S: nil, Z: acts("a")},
		{S: acts("a"), Z: acts("b")},
		{S: acts("a", "b"), Z: nil},
	})
	if !set.Equal(want) {
		t.Errorf("Poss = %v, want %v", set, want)
	}
}

func TestOfWithTau(t *testing.T) {
	// 0 -τ-> 1 -a-> 2, 0 -b-> 3. State 0 is unstable; possibilities at ε
	// come only from stable state 1.
	b := fsp.NewBuilder("P")
	s0, s1, s2, s3 := b.State("0"), b.State("1"), b.State("2"), b.State("3")
	b.AddTau(s0, s1)
	b.Add(s1, "a", s2)
	b.Add(s0, "b", s3)
	p := b.MustBuild()
	set := MustOf(p)
	want := NewSet([]Possibility{
		{S: nil, Z: acts("a")},
		{S: acts("a"), Z: nil},
		{S: acts("b"), Z: nil},
	})
	if !set.Equal(want) {
		t.Errorf("Poss = %v, want %v", set, want)
	}
}

func TestOfCyclicRejected(t *testing.T) {
	b := fsp.NewBuilder("C")
	s0 := b.State("0")
	b.Add(s0, "a", s0)
	if _, err := Of(b.MustBuild(), DefaultBudget); !errors.Is(err, ErrCyclic) {
		t.Errorf("err = %v, want ErrCyclic", err)
	}
}

func TestOfBudget(t *testing.T) {
	p := fsp.Linear("P", "a", "b", "c", "d")
	if _, err := Of(p, 2); !errors.Is(err, ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

func TestPossImpliesLangAndFail(t *testing.T) {
	// (s, Z) ∈ Poss(P) implies s ∈ Lang(P) and (s, Σ−Z) ∈ Fail(P)
	// (Section 2.2).
	r := rand.New(rand.NewSource(21))
	cfg := fsptest.DefaultConfig()
	for i := 0; i < 40; i++ {
		p := fsptest.Acyclic(r, "P", cfg)
		set := MustOf(p)
		sigma := p.Alphabet()
		for _, item := range set.Items() {
			if !p.Accepts(item.S) {
				t.Fatalf("iter %d: possibility string %v not in Lang", i, item.S)
			}
			var complement []fsp.Action
			for _, a := range sigma {
				if !containsAction(item.Z, a) {
					complement = append(complement, a)
				}
			}
			if !InFail(p, item.S, complement) {
				t.Fatalf("iter %d: (s, Σ−Z) ∉ Fail for %v", i, item)
			}
		}
	}
}

func containsAction(zs []fsp.Action, a fsp.Action) bool {
	for _, z := range zs {
		if z == a {
			return true
		}
	}
	return false
}

// TestFigure2 reproduces the paper's Figure 2(b) phenomenon: two processes
// with equal failure sets but different possibility sets, witnessing that
// possibility equivalence strictly refines failure equivalence.
func TestFigure2(t *testing.T) {
	// P: ε -τ-> {b-branch}, ε -τ-> {c-branch}, ε -τ-> {b,c-branch}.
	bp := fsp.NewBuilder("P")
	p0 := bp.State("0")
	pb, pc, pbc := bp.State("b!"), bp.State("c!"), bp.State("bc!")
	bp.AddTau(p0, pb)
	bp.AddTau(p0, pc)
	bp.AddTau(p0, pbc)
	pEnd := bp.State("end")
	bp.Add(pb, "b", pEnd)
	bp.Add(pc, "c", pEnd)
	pEnd2 := bp.State("end2")
	bp.Add(pbc, "b", pEnd2)
	bp.Add(pbc, "c", pEnd2)
	p := bp.MustBuild()

	// Q: same but without the {b,c} branch.
	bq := fsp.NewBuilder("Q")
	q0 := bq.State("0")
	qb, qc := bq.State("b!"), bq.State("c!")
	bq.AddTau(q0, qb)
	bq.AddTau(q0, qc)
	qEnd := bq.State("end")
	bq.Add(qb, "b", qEnd)
	bq.Add(qc, "c", qEnd)
	q := bq.MustBuild()

	failEq, err := FailEquivalent(p, q, DefaultBudget)
	if err != nil {
		t.Fatalf("FailEquivalent: %v", err)
	}
	if !failEq {
		t.Error("Fail(P) must equal Fail(Q)")
	}
	if Equivalent(p, q) {
		t.Error("Poss(P) must differ from Poss(Q)")
	}
	// The distinguishing possibility is (ε, {b,c}).
	setP, setQ := MustOf(p), MustOf(q)
	if len(setP.At(nil)) != 3 || len(setQ.At(nil)) != 2 {
		t.Errorf("possibilities at ε: P=%v Q=%v", setP.At(nil), setQ.At(nil))
	}
}

func TestPossEquivalenceRefinesFailEquivalence(t *testing.T) {
	// Poss(P) = Poss(Q) implies Fail(P) = Fail(Q) for acyclic FSPs
	// (Section 2.2).
	r := rand.New(rand.NewSource(33))
	cfg := fsptest.DefaultConfig()
	for i := 0; i < 40; i++ {
		p := fsptest.Acyclic(r, "P", cfg)
		q := fsptest.Acyclic(r, "Q", cfg)
		if Equivalent(p, q) {
			eq, err := FailEquivalent(p, q, DefaultBudget)
			if err != nil {
				t.Fatal(err)
			}
			if !eq {
				t.Fatalf("iter %d: Poss equal but Fail differs", i)
			}
		}
	}
}

func TestEquivalentMarkerVsSets(t *testing.T) {
	// The marker-DFA equivalence must agree with explicit set equality on
	// acyclic processes.
	r := rand.New(rand.NewSource(17))
	cfg := fsptest.DefaultConfig()
	for i := 0; i < 60; i++ {
		p := fsptest.Acyclic(r, "P", cfg)
		q := fsptest.Acyclic(r, "Q", cfg)
		setEq := MustOf(p).Equal(MustOf(q))
		markEq := Equivalent(p, q)
		if setEq != markEq {
			t.Fatalf("iter %d: set equality %v, marker equality %v\nP=%v\nQ=%v",
				i, setEq, markEq, MustOf(p), MustOf(q))
		}
	}
}

func TestEquivalentCyclic(t *testing.T) {
	// Two unrollings of the same cycle are possibility-equivalent.
	b1 := fsp.NewBuilder("R1")
	s0 := b1.State("0")
	b1.Add(s0, "a", s0)
	r1 := b1.MustBuild()
	b2 := fsp.NewBuilder("R2")
	t0, t1 := b2.State("0"), b2.State("1")
	b2.Add(t0, "a", t1)
	b2.Add(t1, "a", t0)
	r2 := b2.MustBuild()
	if !Equivalent(r1, r2) {
		t.Error("unrolled a-loops must be possibility-equivalent")
	}
	b3 := fsp.NewBuilder("R3")
	u0, u1 := b3.State("0"), b3.State("1")
	b3.Add(u0, "a", u1)
	b3.Add(u1, "b", u0)
	r3 := b3.MustBuild()
	if Equivalent(r1, r3) {
		t.Error("a-loop vs ab-loop must differ")
	}
}

func TestNormalFormRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	cfg := fsptest.DefaultConfig()
	for i := 0; i < 80; i++ {
		p := fsptest.Acyclic(r, "P", cfg)
		set := MustOf(p)
		nf, err := NormalForm("NF", set)
		if err != nil {
			t.Fatalf("iter %d: NormalForm: %v\nset=%v", i, err, set)
		}
		if !MustOf(nf).Equal(set) {
			t.Fatalf("iter %d: Poss(NF) = %v, want %v", i, MustOf(nf), set)
		}
		if !Equivalent(p, nf) {
			t.Fatalf("iter %d: NF not possibility-equivalent to source", i)
		}
		if !LangEquivalent(p, nf) {
			t.Fatalf("iter %d: NF changed the language", i)
		}
	}
}

func TestNormalFormSizeBoundForTrees(t *testing.T) {
	// For tree processes the normal form must stay linear in the source
	// size (Theorem 3's reduction-step bound). The trie has at most one
	// node per source state plus one stable state per possibility.
	r := rand.New(rand.NewSource(43))
	cfg := fsptest.DefaultConfig()
	cfg.MaxStates = 12
	for i := 0; i < 60; i++ {
		p := fsptest.Tree(r, "P", cfg)
		set := MustOf(p)
		nf, err := NormalForm("NF", set)
		if err != nil {
			t.Fatal(err)
		}
		if nf.NumStates() > 2*p.NumStates()+1 {
			t.Fatalf("iter %d: normal form size %d exceeds 2·|P|+1 = %d",
				i, nf.NumStates(), 2*p.NumStates()+1)
		}
	}
}

func TestNormalFormIncoherent(t *testing.T) {
	// Offering an action with no extension string is incoherent.
	bad := NewSet([]Possibility{{S: nil, Z: acts("a")}})
	if _, err := NormalForm("NF", bad); !errors.Is(err, ErrIncoherent) {
		t.Errorf("err = %v, want ErrIncoherent", err)
	}
	// A prefix without its own possibility is incoherent.
	bad2 := NewSet([]Possibility{
		{S: nil, Z: acts("a")},
		{S: acts("a", "b"), Z: nil},
	})
	if _, err := NormalForm("NF", bad2); !errors.Is(err, ErrIncoherent) {
		t.Errorf("err = %v, want ErrIncoherent", err)
	}
}

// TestLemma2Congruence checks the congruence property of Lemma 2:
// Poss(P1) = Poss(P2) implies Poss(P‖P1) = Poss(P‖P2), instantiated with
// P2 = NormalForm(Poss(P1)), which is possibility-equal by construction.
func TestLemma2Congruence(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	cfg := fsptest.DefaultConfig()
	for i := 0; i < 60; i++ {
		p := fsptest.Acyclic(r, "P", cfg)
		p1 := fsptest.Acyclic(r, "P1", cfg)
		p2, err := NormalForm("P2", MustOf(p1))
		if err != nil {
			t.Fatal(err)
		}
		left := fsp.Compose(p, p1)
		right := fsp.Compose(p, p2)
		if !Equivalent(left, right) {
			t.Fatalf("iter %d: Lemma 2 violated:\nPoss(P‖P1)=%v\nPoss(P‖P2)=%v",
				i, MustOf(left), MustOf(right))
		}
		if !LangEquivalent(left, right) {
			t.Fatalf("iter %d: Lemma 2 (language half) violated", i)
		}
	}
}

// TestLemma2PrimeCongruence checks Lemma 2′: the cyclic composition
// preserves possibility equivalence for cyclic operands.
func TestLemma2PrimeCongruence(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	cfg := fsptest.DefaultConfig()
	cfg.Cyclic = true
	cfg.TauProb = 0 // Section 4 assumes network processes have no τ-moves
	for i := 0; i < 40; i++ {
		p := fsptest.Cyclic(r, "P", cfg)
		// Equivalent unrolling of r1: duplicate every state.
		r1 := fsptest.Cyclic(r, "R1", cfg)
		r2 := unroll2(r1)
		if !Equivalent(r1, r2) {
			continue // unrolling should always be equivalent; skip defensively
		}
		left := fsp.ComposeCyclic(p, r1)
		right := fsp.ComposeCyclic(p, r2)
		if !Equivalent(left, right) {
			t.Fatalf("iter %d: Lemma 2′ violated", i)
		}
		if !LangEquivalent(left, right) {
			t.Fatalf("iter %d: Lemma 2′ (language half) violated", i)
		}
	}
}

// unroll2 duplicates the state space of p: states (s, parity), flipping
// parity on every transition. The result is language- and
// possibility-equivalent to p.
func unroll2(p *fsp.FSP) *fsp.FSP {
	b := fsp.NewBuilder(p.Name() + "×2").AllowUnreachable()
	n := p.NumStates()
	for par := 0; par < 2; par++ {
		for s := 0; s < n; s++ {
			b.State(p.StateName(fsp.State(s)))
		}
	}
	b.SetStart(p.Start())
	for _, t := range p.Transitions() {
		b.Add(t.From, t.Label, fsp.State(n+int(t.To)))
		b.Add(fsp.State(n+int(t.From)), t.Label, t.To)
	}
	return b.MustBuild().Trim()
}

func TestSetAccessors(t *testing.T) {
	set := NewSet([]Possibility{
		{S: acts("a"), Z: acts("b")},
		{S: acts("a"), Z: acts("c")},
		{S: nil, Z: acts("a")},
		{S: nil, Z: acts("a")}, // duplicate
	})
	if set.Len() != 3 {
		t.Errorf("Len = %d, want 3 (dedup)", set.Len())
	}
	if got := set.Strings(); len(got) != 2 {
		t.Errorf("Strings = %v, want 2 distinct", got)
	}
	if got := set.At(acts("a")); len(got) != 2 {
		t.Errorf("At(a) = %v, want 2 sets", got)
	}
	if s := set.String(); s == "" {
		t.Error("String must render")
	}
}

func TestParseMarker(t *testing.T) {
	z, ok := ParseMarker(Marker(acts("a", "b")))
	if !ok || len(z) != 2 || z[0] != "a" || z[1] != "b" {
		t.Errorf("ParseMarker round trip = %v %v", z, ok)
	}
	if z, ok := ParseMarker(Marker(nil)); !ok || len(z) != 0 {
		t.Errorf("empty marker = %v %v", z, ok)
	}
	if _, ok := ParseMarker("a"); ok {
		t.Error("ordinary action must not parse as marker")
	}
}
