package poss

import (
	"fmt"
	"sort"

	"fspnet/internal/fsp"
)

// InFail reports (s, Z) ∈ Fail(p): some state reachable via s refuses every
// action of Z (Section 2.1, after [HBR]).
func InFail(p *fsp.FSP, s []fsp.Action, z []fsp.Action) bool {
	states := p.ReachableVia(s)
	for _, q := range states {
		refusesAll := true
		for _, a := range z {
			if !p.Dead(q, a) {
				refusesAll = false
				break
			}
		}
		if refusesAll {
			return true
		}
	}
	return false
}

// MaxRefusals returns, for each state reachable via s, its maximal refusal
// set over the alphabet sigma, deduplicated and sorted. Fail(p) restricted
// to string s is the downward closure of this family.
func MaxRefusals(p *fsp.FSP, s []fsp.Action, sigma []fsp.Action) [][]fsp.Action {
	states := p.ReachableVia(s)
	seen := make(map[string]bool)
	var out [][]fsp.Action
	for _, q := range states {
		var ref []fsp.Action
		for _, a := range sigma {
			if p.Dead(q, a) {
				ref = append(ref, a)
			}
		}
		key := fsp.ActionSetString(ref)
		if !seen[key] {
			seen[key] = true
			out = append(out, ref)
		}
	}
	sort.Slice(out, func(i, j int) bool { return compareActions(out[i], out[j]) < 0 })
	return out
}

// FailEquivalent reports Fail(p) = Fail(q) for acyclic processes by
// comparing, string by string, the downward closures of maximal refusal
// families over the union alphabet. budget bounds the number of strings
// examined (strings of acyclic processes are finitely many but possibly
// exponentially so).
func FailEquivalent(p, q *fsp.FSP, budget int) (bool, error) {
	if !p.IsAcyclic() || !q.IsAcyclic() {
		return false, fmt.Errorf("FailEquivalent(%s, %s): %w", p.Name(), q.Name(), ErrCyclic)
	}
	sigma := unionActions(p.Alphabet(), q.Alphabet())
	strs, err := allStrings(p, budget)
	if err != nil {
		return false, err
	}
	strsQ, err := allStrings(q, budget)
	if err != nil {
		return false, err
	}
	strs = append(strs, strsQ...)
	seen := make(map[string]bool)
	for _, s := range strs {
		key := StringOfActions(s)
		if seen[key] {
			continue
		}
		seen[key] = true
		if p.Accepts(s) != q.Accepts(s) {
			return false, nil // (s, ∅) in one Fail set only
		}
		if !p.Accepts(s) {
			continue
		}
		if !refusalFamiliesEqual(MaxRefusals(p, s, sigma), MaxRefusals(q, s, sigma)) {
			return false, nil
		}
	}
	return true, nil
}

// refusalFamiliesEqual compares downward closures: every maximal refusal of
// one family must be contained in some refusal of the other, both ways.
func refusalFamiliesEqual(a, b [][]fsp.Action) bool {
	return coveredBy(a, b) && coveredBy(b, a)
}

func coveredBy(a, b [][]fsp.Action) bool {
	for _, x := range a {
		ok := false
		for _, y := range b {
			if subsetActions(x, y) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

func subsetActions(x, y []fsp.Action) bool {
	i := 0
	for _, a := range x {
		for i < len(y) && y[i] < a {
			i++
		}
		if i >= len(y) || y[i] != a {
			return false
		}
	}
	return true
}

// allStrings enumerates Lang(p) for acyclic p up to the budget.
func allStrings(p *fsp.FSP, budget int) ([][]fsp.Action, error) {
	var (
		out  [][]fsp.Action
		work int
	)
	var walk func(s []fsp.Action, set []fsp.State) error
	walk = func(s []fsp.Action, set []fsp.State) error {
		work++
		if work > budget {
			return fmt.Errorf("%s: %w", p.Name(), ErrBudget)
		}
		out = append(out, append([]fsp.Action(nil), s...))
		for _, a := range availableActions(p, set) {
			next := p.Step(set, a)
			if len(next) == 0 {
				continue
			}
			if err := walk(append(s, a), next); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(nil, p.TauClosure([]fsp.State{p.Start()})); err != nil {
		return nil, err
	}
	return out, nil
}

func unionActions(a, b []fsp.Action) []fsp.Action {
	out := append(append([]fsp.Action(nil), a...), b...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 0
	for i, x := range out {
		if i == 0 || x != out[w-1] {
			out[w] = x
			w++
		}
	}
	return out[:w]
}
