package poss

import (
	"strings"

	"fspnet/internal/fsp"
	"fspnet/internal/lang"
)

// markerPrefix starts every synthetic marker action; real alphabets must
// not use it.
const markerPrefix = "⟨"

// Marker returns the synthetic action encoding a stable state's outgoing
// set Z, e.g. ⟨a,b⟩.
func Marker(z []fsp.Action) fsp.Action {
	parts := make([]string, len(z))
	for i, a := range z {
		parts[i] = string(a)
	}
	return fsp.Action(markerPrefix + strings.Join(parts, ",") + "⟩")
}

// markedFSP returns p extended with, for every stable state q, a
// Marker(act(q))-labeled transition to a fresh sink, plus the predicate
// accepting exactly the sink. The accepted language of the marked automaton
// is { s·Marker(Z) : (s, Z) ∈ Poss(p) }.
func markedFSP(p *fsp.FSP) (*fsp.FSP, func(fsp.State) bool) {
	b := fsp.NewBuilder(p.Name() + "#marked")
	for s := 0; s < p.NumStates(); s++ {
		b.State(p.StateName(fsp.State(s)))
	}
	sink := b.State("#poss")
	b.SetStart(p.Start())
	for _, t := range p.Transitions() {
		b.Add(t.From, t.Label, t.To)
	}
	for s := 0; s < p.NumStates(); s++ {
		st := fsp.State(s)
		if p.IsStable(st) {
			b.Add(st, Marker(p.ActionsAt(st)), sink)
		}
	}
	return b.MustBuild(), func(s fsp.State) bool { return s == sink }
}

// PossDFA returns a DFA whose language is the marker encoding of Poss(p).
// It is defined for every FSP, including cyclic ones, where the possibility
// set itself may be infinite.
func PossDFA(p *fsp.FSP) *lang.DFA {
	m, accept := markedFSP(p)
	return lang.Determinize(m, accept)
}

// Equivalent reports Poss(p) = Poss(q) for arbitrary FSPs via the marker
// encoding. The problem is PSPACE-complete for cyclic processes [KS], so
// worst-case cost is exponential; it is intended as a specification-level
// oracle and for moderate inputs.
func Equivalent(p, q *fsp.FSP) bool {
	return lang.Equivalent(PossDFA(p), PossDFA(q))
}

// LangEquivalent reports Lang(p) = Lang(q) (re-exported here for symmetry
// with the paper's Lemma 2 statement).
func LangEquivalent(p, q *fsp.FSP) bool { return lang.LangEquivalent(p, q) }

// ParseMarker decodes a synthetic marker action back into its sorted
// action set; ok is false for ordinary actions.
func ParseMarker(a fsp.Action) (z []fsp.Action, ok bool) {
	s := string(a)
	if !strings.HasPrefix(s, markerPrefix) || !strings.HasSuffix(s, "⟩") {
		return nil, false
	}
	body := strings.TrimSuffix(strings.TrimPrefix(s, markerPrefix), "⟩")
	if body == "" {
		return nil, true
	}
	for _, part := range strings.Split(body, ",") {
		z = append(z, fsp.Action(part))
	}
	return z, true
}
