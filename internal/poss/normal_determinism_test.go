package poss

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"fspnet/internal/fsp"
	"fspnet/internal/fsptest"
)

// TestNormalFormEncodingDeterministic locks in the invariant the mapiter
// analyzer polices: the normal form is a canonical object, so its full
// encoding (DOT rendering, which serializes every state name and
// transition) must be byte-identical across repeated constructions. The
// construction walks Go maps (the trie of NormalForm), so any unsorted
// iteration feeding the output flips bytes between runs.
func TestNormalFormEncodingDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		p := fsptest.Tree(r, "T", fsptest.Config{
			Actions:   []fsp.Action{"a", "b", "c"},
			MaxStates: 12,
		})
		set := MustOf(p)

		var reference []byte
		for run := 0; run < 100; run++ {
			nf, err := NormalForm("N", set)
			if err != nil {
				t.Fatalf("trial %d: NormalForm: %v", trial, err)
			}
			var buf bytes.Buffer
			if err := nf.WriteDOT(&buf); err != nil {
				t.Fatalf("trial %d: WriteDOT: %v", trial, err)
			}
			if run == 0 {
				reference = buf.Bytes()
				continue
			}
			if !bytes.Equal(reference, buf.Bytes()) {
				t.Fatalf("trial %d run %d: normal-form encoding differs between runs:\n--- first\n%s\n--- now\n%s",
					trial, run, reference, buf.Bytes())
			}
		}
	}
}

// TestNormalFormIncoherentErrorDeterministic pins the companion fix: when
// several prefixes lack possibilities, the reported one is the
// lexicographically smallest, not whichever the map yields first.
func TestNormalFormIncoherentErrorDeterministic(t *testing.T) {
	// Possibilities for strings "ab" and "cd" only: the prefixes "a",
	// "c", and ε all lack possibilities of their own, so the set is
	// incoherent with multiple witnesses.
	set := NewSet([]Possibility{
		{S: []fsp.Action{"a", "b"}, Z: nil},
		{S: []fsp.Action{"c", "d"}, Z: nil},
	})
	var reference string
	for run := 0; run < 100; run++ {
		_, err := NormalForm("N", set)
		if !errors.Is(err, ErrIncoherent) {
			t.Fatalf("run %d: err = %v, want ErrIncoherent", run, err)
		}
		if run == 0 {
			reference = err.Error()
			continue
		}
		if err.Error() != reference {
			t.Fatalf("run %d: error message changed between runs:\n first: %s\n   now: %s",
				run, reference, err.Error())
		}
	}
}
