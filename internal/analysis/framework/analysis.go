// Package framework is a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary, built entirely on the standard
// library (go/ast, go/types, go/importer). It exists because fspnet keeps a
// zero-dependency go.mod: the fsplint analyzers (mapiter, frozenfsp,
// detrand) are written against this API, which mirrors x/tools closely
// enough that porting them to the upstream framework is a mechanical
// rename.
//
// The framework has three moving parts:
//
//   - Analyzer / Pass / Diagnostic — the x/tools-shaped checker API
//     (this file);
//   - the loader (load.go), which resolves package patterns with
//     `go list -export` and type-checks source against compiler export
//     data, so analyzers always see fully typed syntax trees;
//   - two drivers: Run (run.go) for the standalone multichecker, and
//     Unitchecker (unitchecker.go) speaking the `go vet -vettool`
//     config-file protocol.
//
// Diagnostics can be silenced per line with a directive comment:
//
//	//fsplint:ignore mapiter reason for the exception
//
// placed on, or on the line immediately above, the offending statement.
// See docs/ANALYSIS.md for the analyzer catalogue.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check: a name for diagnostics and
// suppression directives, documentation, and the Run function applied to
// each package.
type Analyzer struct {
	// Name identifies the analyzer in output and in
	// //fsplint:ignore directives. It must be a valid identifier.
	Name string

	// Doc is the analyzer's documentation: a one-line summary,
	// optionally followed by a blank line and details.
	Doc string

	// Run applies the check to a single type-checked package,
	// reporting findings through pass.Report.
	Run func(pass *Pass) error
}

// Pass presents one type-checked package to an analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report records a finding. It may be called concurrently only
	// from a single goroutine (analyzers here are synchronous).
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding of an analyzer.
type Diagnostic struct {
	Pos     token.Pos
	Message string

	// Analyzer is filled in by the driver.
	Analyzer string
}

// Finding is a positioned diagnostic as produced by a driver, ready for
// printing and for suppression filtering.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Position, f.Analyzer, f.Message)
}

// sortFindings orders findings by (file, line, column, analyzer, message)
// so driver output is deterministic — the same property the analyzers
// themselves police.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
