package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestLoadTypesCorePackage loads a real module package through the
// go list -export pipeline and checks the syntax trees arrive fully typed.
func TestLoadTypesCorePackage(t *testing.T) {
	pkgs, err := Load(".", "fspnet/internal/fsp")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load returned %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.ImportPath != "fspnet/internal/fsp" {
		t.Errorf("ImportPath = %q", pkg.ImportPath)
	}
	if pkg.Pkg == nil || pkg.Pkg.Scope().Lookup("FSP") == nil {
		t.Fatalf("type information missing: FSP not in package scope")
	}
	if len(pkg.TypesInfo.Defs) == 0 || len(pkg.TypesInfo.Selections) == 0 {
		t.Errorf("TypesInfo sparsely populated: %d defs, %d selections",
			len(pkg.TypesInfo.Defs), len(pkg.TypesInfo.Selections))
	}
}

// TestRunDeterministicOrder runs a trivial analyzer twice and checks the
// findings arrive identically ordered — the driver must practice what the
// analyzers preach.
func TestRunDeterministicOrder(t *testing.T) {
	reportAll := &Analyzer{
		Name: "reportall",
		Doc:  "reports every file once",
		Run: func(pass *Pass) error {
			for _, f := range pass.Files {
				pass.Reportf(f.Package, "package %s", pass.Pkg.Name())
			}
			return nil
		},
	}
	var prev []Finding
	for i := 0; i < 3; i++ {
		fs, err := Run(".", []*Analyzer{reportAll}, "fspnet/internal/fsp", "fspnet/internal/poss")
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if len(fs) == 0 {
			t.Fatal("no findings from reportall")
		}
		if i > 0 {
			if len(fs) != len(prev) {
				t.Fatalf("run %d: %d findings, previously %d", i, len(fs), len(prev))
			}
			for j := range fs {
				if fs[j] != prev[j] {
					t.Fatalf("run %d: finding %d differs: %v vs %v", i, j, fs[j], prev[j])
				}
			}
		}
		prev = fs
	}
}

// TestSuppressions checks the //fsplint:ignore directive grammar: single
// names, comma lists, "all", same-line and line-above placement.
func TestSuppressions(t *testing.T) {
	src := `package p

//fsplint:ignore mapiter reason
var a = 1
var b = 2 //fsplint:ignore detrand,frozenfsp another reason
//fsplint:ignore all
var c = 3
//fsplint:ignorenospace is not a directive
var d = 4
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sup := collectSuppressions(fset, []*ast.File{f})
	cases := []struct {
		line     int
		analyzer string
		want     bool
	}{
		{4, "mapiter", true},   // directive on line above
		{4, "detrand", false},  // wrong analyzer
		{5, "detrand", true},   // same-line, comma list
		{5, "frozenfsp", true}, // same-line, comma list
		{5, "mapiter", false},
		{7, "mapiter", true}, // "all" silences everything
		{9, "mapiter", false},
	}
	for _, c := range cases {
		pos := token.Position{Filename: "p.go", Line: c.line, Column: 1}
		if got := sup.suppressed(pos, c.analyzer); got != c.want {
			t.Errorf("line %d analyzer %s: suppressed=%t, want %t", c.line, c.analyzer, got, c.want)
		}
	}
}

// TestFindingString pins the file:line:col: analyzer: message format other
// tooling (CI annotations, editors) parses.
func TestFindingString(t *testing.T) {
	f := Finding{
		Position: token.Position{Filename: "x.go", Line: 3, Column: 7},
		Analyzer: "mapiter",
		Message:  "boom",
	}
	if got := f.String(); !strings.HasPrefix(got, "x.go:3:7: mapiter: boom") {
		t.Errorf("Finding.String() = %q", got)
	}
}
