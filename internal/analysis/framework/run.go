package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"strings"
)

// IgnoreDirective is the comment prefix that silences a finding on its own
// line or the line below: //fsplint:ignore name1,name2 optional reason.
// The special name "all" silences every analyzer.
const IgnoreDirective = "//fsplint:ignore"

// Run loads the packages matched by patterns under dir and applies every
// analyzer to each, returning the surviving findings in deterministic
// order. Findings silenced by //fsplint:ignore directives are dropped.
func Run(dir string, analyzers []*Analyzer, patterns ...string) ([]Finding, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var all []Finding
	for _, pkg := range pkgs {
		fs, err := RunPackage(analyzers, pkg)
		if err != nil {
			return nil, err
		}
		all = append(all, fs...)
	}
	sortFindings(all)
	return all, nil
}

// RunPackage applies the analyzers to a single loaded package and filters
// the results through the package's suppression directives.
func RunPackage(analyzers []*Analyzer, pkg *Package) ([]Finding, error) {
	sup := collectSuppressions(pkg.Fset, pkg.Files)
	var out []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.TypesInfo,
		}
		var diags []Diagnostic
		pass.Report = func(d Diagnostic) {
			d.Analyzer = a.Name
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("framework: %s on %s: %v", a.Name, pkg.ImportPath, err)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			if sup.suppressed(pos, a.Name) {
				continue
			}
			out = append(out, Finding{Position: pos, Analyzer: a.Name, Message: d.Message})
		}
	}
	sortFindings(out)
	return out, nil
}

// Print writes findings one per line in file:line:col: analyzer: message
// form and reports whether any were written.
func Print(w io.Writer, fs []Finding) bool {
	for _, f := range fs {
		fmt.Fprintln(w, f)
	}
	return len(fs) > 0
}

// suppressions maps (file, line) to the set of analyzer names silenced
// there. A directive on line n silences findings on lines n and n+1, so it
// can sit on the offending line or immediately above it.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) suppressed(pos token.Position, analyzer string) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		if names := lines[line]; names != nil && (names[analyzer] || names["all"]) {
			return true
		}
	}
	return false
}

func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	s := make(suppressions)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, IgnoreDirective)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := s[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					s[pos.Filename] = lines
				}
				names := lines[pos.Line]
				if names == nil {
					names = make(map[string]bool)
					lines[pos.Line] = names
				}
				for _, name := range strings.Split(fields[0], ",") {
					names[name] = true
				}
			}
		}
	}
	return s
}
