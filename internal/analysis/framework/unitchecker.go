package framework

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// VetConfig is the JSON configuration the go command hands a vet tool for
// each package when invoked as `go vet -vettool=fsplint`. The field set
// mirrors the (stable since Go 1.12) cmd/go <-> unitchecker protocol;
// fields fsplint does not consume are retained so decoding stays strict
// about nothing and forward-compatible.
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Unitchecker implements the `go vet -vettool` protocol for a single
// package: it reads the JSON config, type-checks the package against the
// export data the go command already built, runs the analyzers, prints
// findings to stderr, and exits non-zero if any survive suppression.
// It never returns.
//
// The go command invokes the tool in three ways, all handled here:
//
//	fsplint -V=full        # version fingerprint for the build cache
//	fsplint -flags         # flag schema query (fsplint has none)
//	fsplint <pkg>.cfg      # analyze one package
func Unitchecker(analyzers []*Analyzer, cfgFile string) {
	code, err := unitcheck(os.Stderr, analyzers, cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(code)
}

// PrintVersion answers -V=full with the executable's content hash, the
// fingerprint the go command folds into its build cache key.
func PrintVersion(w io.Writer) {
	progname := filepath.Base(os.Args[0])
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Fprintf(w, "%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
}

// PrintFlagDefs answers -flags: the JSON schema of tool flags the go
// command may forward. fsplint keeps zero per-analyzer flags.
func PrintFlagDefs(w io.Writer) {
	fmt.Fprintln(w, "[]")
}

func unitcheck(w io.Writer, analyzers []*Analyzer, cfgFile string) (int, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return 0, fmt.Errorf("fsplint: reading vet config: %v", err)
	}
	var cfg VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("fsplint: parsing vet config %s: %v", cfgFile, err)
	}
	if cfg.Compiler != "" && cfg.Compiler != "gc" {
		return 0, fmt.Errorf("fsplint: unsupported compiler %q", cfg.Compiler)
	}

	// The go command requires the facts file to exist after every run,
	// including VetxOnly (facts-gathering) runs on dependencies. fsplint's
	// analyzers export no facts, so the file is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return 0, fmt.Errorf("fsplint: writing %s: %v", cfg.VetxOutput, err)
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, cfg.PackageFile, cfg.ImportMap)
	var names []string
	for _, f := range cfg.GoFiles {
		if strings.HasSuffix(f, ".go") {
			names = append(names, f)
		}
	}
	pkg, err := checkPackage(fset, cfg.ImportPath, cfg.GoVersion, names, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, err
	}
	findings, err := RunPackage(analyzers, pkg)
	if err != nil {
		return 0, err
	}
	if Print(w, findings) {
		return 2, nil
	}
	return 0, nil
}
