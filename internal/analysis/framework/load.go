package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath      string
	Dir             string
	Name            string
	Standard        bool
	DepOnly         bool
	Export          string
	GoFiles         []string
	CompiledGoFiles []string
	ImportMap       map[string]string
	Error           *struct{ Err string }
}

// Load resolves the given package patterns (e.g. "./...") in dir with the
// go command and type-checks each matched package from source, resolving
// imports through the compiler export data that `go list -export` produces.
// This keeps the loader free of external dependencies: the go toolchain is
// the only requirement.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goListExport(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)   // import path -> export data file
	importMap := make(map[string]string) // as-written path -> canonical path
	var targets []*listPackage
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		for from, to := range lp.ImportMap {
			importMap[from] = to
		}
		if !lp.DepOnly && !lp.Standard {
			targets = append(targets, lp)
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports, importMap)
	var pkgs []*Package
	for _, lp := range targets {
		files := lp.CompiledGoFiles
		if len(files) == 0 {
			files = lp.GoFiles
		}
		var names []string
		for _, f := range files {
			if !strings.HasSuffix(f, ".go") {
				continue // cgo-generated artifacts; fspnet has none
			}
			if !filepath.IsAbs(f) {
				f = filepath.Join(lp.Dir, f)
			}
			names = append(names, f)
		}
		pkg, err := checkPackage(fset, lp.ImportPath, "", names, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goListExport runs `go list -export -json -deps` in dir and decodes the
// package stream.
func goListExport(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-export", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("framework: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var listed []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("framework: decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("framework: go list %s: %s", lp.ImportPath, lp.Error.Err)
		}
		listed = append(listed, &lp)
	}
	return listed, nil
}

// ListExports resolves the given import paths (run from dir, which must lie
// inside the module) and returns the transitive import path -> export data
// file map. It lets callers type-check ad-hoc file sets — the analysistest
// harness uses it to load testdata packages that import real packages.
func ListExports(dir string, imports []string) (map[string]string, error) {
	exports := make(map[string]string)
	if len(imports) == 0 {
		return exports, nil
	}
	listed, err := goListExport(dir, imports)
	if err != nil {
		return nil, err
	}
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	return exports, nil
}

// CheckFiles parses and type-checks one ad-hoc package (not necessarily
// part of any module) under the given import path, resolving its imports
// through the exports map as produced by ListExports.
func CheckFiles(importPath string, filenames []string, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports, nil)
	return checkPackage(fset, importPath, "", filenames, imp)
}

// exportImporter returns a types.Importer that reads gc export data files
// from the given import-path -> file map, honoring the vendor import map.
func exportImporter(fset *token.FileSet, exports, importMap map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("framework: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// NewTypesInfo returns a types.Info with every map analyzers consume.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// checkPackage parses and type-checks one package from its source files.
// goVersion, when non-empty, pins the language version (vet protocol).
func checkPackage(fset *token.FileSet, importPath, goVersion string, filenames []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("framework: parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: imp, GoVersion: goVersion}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("framework: typecheck %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
	}, nil
}
