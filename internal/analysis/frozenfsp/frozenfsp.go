// Package frozenfsp enforces the freeze-after-build contract of
// fspnet/internal/fsp.FSP: once Builder.Build returns, an FSP is immutable.
// The composition cache, bisimulation checker, and possibility-set
// machinery all hash and share built processes, so a single post-build
// write silently corrupts every analysis that later touches the process.
//
// Two mutation vectors are flagged:
//
//   - writes to FSP struct internals through a pointer — these can only
//     appear inside package internal/fsp (the fields are unexported), and
//     are legal only in builder.go, where the value is still under
//     construction;
//   - writes through the aliasing accessor (*FSP).Out, whose returned
//     slice is documented as read-only, from any package.
package frozenfsp

import (
	"go/ast"
	"go/types"
	"path/filepath"

	"fspnet/internal/analysis/framework"
)

// FSPPath is the package whose FSP type is protected.
const FSPPath = "fspnet/internal/fsp"

// builderFile is the single file inside FSPPath allowed to write FSP
// internals: it holds Builder.Build, where the process is not yet frozen.
const builderFile = "builder.go"

// Analyzer is the frozenfsp check.
var Analyzer = &framework.Analyzer{
	Name: "frozenfsp",
	Doc:  "flags writes to fsp.FSP internals after construction",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		inBuilder := pass.Pkg.Path() == FSPPath &&
			filepath.Base(pass.Fset.Position(file.Pos()).Filename) == builderFile
		if inBuilder {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					checkWrite(pass, lhs)
				}
			case *ast.IncDecStmt:
				checkWrite(pass, n.X)
			}
			return true
		})
	}
	return nil
}

// checkWrite walks the LHS expression chain of a write and reports if the
// written location lives inside a frozen FSP.
func checkWrite(pass *framework.Pass, lhs ast.Expr) {
	// deep records whether the write path already passed through an index
	// or dereference: a deep write into an FSP field mutates shared
	// backing storage even when the FSP itself was copied by value.
	deep := false
	pos := lhs.Pos()
	for {
		switch e := ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr:
			if sel, ok := pass.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal && isFSP(sel.Recv()) {
				// Writing a scalar field of a local *value* copy
				// (q := *p; q.name = ...) is safe; anything through a
				// pointer, or deeper than one level, is not.
				if isPointer(sel.Recv()) || deep {
					pass.Reportf(pos,
						"write to fsp.FSP internals outside the builder; FSP values are immutable once built")
				}
				return
			}
			lhs = e.X
		case *ast.IndexExpr:
			// p.Out(s)[i] = ... or p.Out(s)[i].To = ...: mutation through
			// the documented-read-only accessor slice.
			if call, ok := ast.Unparen(e.X).(*ast.CallExpr); ok && isOutCall(pass, call) {
				pass.Reportf(pos,
					"write through (*fsp.FSP).Out's returned slice, which is documented read-only; copy it before modifying")
				return
			}
			deep = true
			lhs = e.X
		case *ast.StarExpr:
			deep = true
			lhs = e.X
		default:
			return
		}
	}
}

// isOutCall reports whether call invokes the Out method of fsp.FSP.
func isOutCall(pass *framework.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Out" {
		return false
	}
	s, ok := pass.TypesInfo.Selections[sel]
	return ok && s.Kind() == types.MethodVal && isFSP(s.Recv())
}

// isFSP reports whether t is fsp.FSP or *fsp.FSP.
func isFSP(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == FSPPath && named.Obj().Name() == "FSP"
}

func isPointer(t types.Type) bool {
	_, ok := t.(*types.Pointer)
	return ok
}
