package frozenfsp_test

import (
	"testing"

	"fspnet/internal/analysis/analysistest"
	"fspnet/internal/analysis/frozenfsp"
)

func TestFrozenFSP(t *testing.T) {
	analysistest.Run(t, analysistest.TestDataPath(t), frozenfsp.Analyzer, "a", "b", "fspinternal")
}
