// Package a mutates a real fsp.FSP through its aliasing accessor.
package a

import "fspnet/internal/fsp"

func clobberTransition(p *fsp.FSP, s fsp.State) {
	p.Out(s)[0] = fsp.Transition{} // want `read-only`
}

func retarget(p *fsp.FSP, s fsp.State) {
	p.Out(s)[0].To = 1 // want `read-only`
}

// read-only traversal is fine.
func fanout(p *fsp.FSP, s fsp.State) int {
	return len(p.Out(s))
}
