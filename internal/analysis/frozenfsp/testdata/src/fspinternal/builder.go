package fsp

// builder.go is the one file where FSP internals may be written: the
// process is still under construction here.
func build(name string) *FSP {
	p := &FSP{name: name}
	p.out = append(p.out, nil)
	p.name = name
	return p
}
