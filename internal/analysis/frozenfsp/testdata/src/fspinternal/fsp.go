//fsplint:testpath fspnet/internal/fsp

// Package fsp is a shape-mirror of the real internal/fsp, type-checked
// under its import path so frozenfsp's in-package rules can be tested
// hermetically: pointer writes outside builder.go are flagged, scalar
// writes to value copies are not.
package fsp

// Transition mirrors the real arc type.
type Transition struct {
	From  int
	Label string
	To    int
}

// FSP mirrors the real process type's shape.
type FSP struct {
	name string
	out  [][]Transition
}

// Rename-style value-copy write of a scalar field: allowed.
func (p *FSP) Rename(name string) *FSP {
	q := *p
	q.name = name
	return &q
}

// Post-build pointer writes outside builder.go: flagged.
func (p *FSP) setName(name string) {
	p.name = name // want `outside the builder`
}

func (p *FSP) clobber(s int) {
	p.out[s] = nil // want `outside the builder`
}

// A deep write through a value copy still aliases the backing array.
func sneaky(p FSP) {
	p.out[0][0].To = 2 // want `outside the builder`
}
