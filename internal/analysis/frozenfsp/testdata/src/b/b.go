// Package b holds the clean patterns frozenfsp must accept: reads,
// copies, and writes to copies.
package b

import "fspnet/internal/fsp"

func inspect(p *fsp.FSP) int {
	n := 0
	for _, t := range p.Transitions() {
		if t.Label != fsp.Tau {
			n++
		}
	}
	return n
}

// copyThenEdit duplicates the accessor's slice before modifying it.
func copyThenEdit(p *fsp.FSP) []fsp.Transition {
	ts := append([]fsp.Transition(nil), p.Out(p.Start())...)
	if len(ts) > 0 {
		ts[0].To = 0
	}
	return ts
}

// rebuild goes through the builder, the sanctioned mutation path.
func rebuild(p *fsp.FSP) (*fsp.FSP, error) {
	b := fsp.NewBuilder(p.Name())
	for s := 0; s < p.NumStates(); s++ {
		b.State(p.StateName(fsp.State(s)))
	}
	b.SetStart(p.Start())
	for _, t := range p.Transitions() {
		b.Add(t.From, t.Label, t.To)
	}
	return b.Build()
}
