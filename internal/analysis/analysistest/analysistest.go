// Package analysistest runs framework analyzers over testdata packages and
// checks reported diagnostics against expectations declared in the sources
// themselves, mirroring golang.org/x/tools/go/analysis/analysistest:
//
//	m[k] = v // want `mapiter: .*unsorted`
//
// Each `// want` comment carries one or more Go-quoted regular expressions;
// every diagnostic on that line must match one of them, and every
// expectation must be matched by exactly one diagnostic. Testdata packages
// live under testdata/src/<name> and may import standard-library and
// fspnet packages (resolved through the real build cache). A file comment
//
//	//fsplint:testpath fspnet/internal/fsp
//
// overrides the package's import path, so analyzers whose behavior depends
// on where code lives (frozenfsp's in-package builder allowance) can be
// exercised hermetically.
package analysistest

import (
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"fspnet/internal/analysis/framework"
)

// TestDataPath returns the absolute path of the package's testdata dir.
func TestDataPath(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatalf("analysistest: resolving testdata: %v", err)
	}
	return abs
}

// Run applies the analyzer to each named package under testdata/src and
// verifies its diagnostics against the packages' want expectations.
// Suppression directives are honored, so testdata can also pin the
// //fsplint:ignore mechanism.
func Run(t *testing.T, testdata string, a *framework.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		t.Run(pkg, func(t *testing.T) {
			runOne(t, filepath.Join(testdata, "src", pkg), pkg, a)
		})
	}
}

func runOne(t *testing.T, dir, defaultPath string, a *framework.Analyzer) {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("analysistest: no Go files in %s (%v)", dir, err)
	}

	// Collect imports and the optional testpath directive by pre-parsing.
	fset := token.NewFileSet()
	importPath := defaultPath
	importSet := make(map[string]bool)
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("analysistest: parse %s: %v", name, err)
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err == nil {
				importSet[p] = true
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if rest, ok := strings.CutPrefix(c.Text, "//fsplint:testpath"); ok {
					importPath = strings.TrimSpace(rest)
				}
			}
		}
	}
	var imports []string
	for p := range importSet {
		imports = append(imports, p)
	}
	sort.Strings(imports)

	exports, err := framework.ListExports(dir, imports)
	if err != nil {
		t.Fatalf("analysistest: resolving imports of %s: %v", dir, err)
	}
	pkg, err := framework.CheckFiles(importPath, names, exports)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	findings, err := framework.RunPackage([]*framework.Analyzer{a}, pkg)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	wants := collectWants(t, pkg)
	for _, f := range findings {
		key := lineKey{f.Position.Filename, f.Position.Line}
		if !wants.match(key, f.Message) {
			t.Errorf("%s: unexpected diagnostic: %s: %s", f.Position, f.Analyzer, f.Message)
		}
	}
	wants.reportUnmatched(t)
}

type lineKey struct {
	file string
	line int
}

type want struct {
	pos     token.Position
	re      *regexp.Regexp
	matched bool
}

type wantMap map[lineKey][]*want

func (m wantMap) match(key lineKey, message string) bool {
	for _, w := range m[key] {
		if !w.matched && w.re.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

func (m wantMap) reportUnmatched(t *testing.T) {
	t.Helper()
	for _, ws := range m {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", w.pos, w.re)
			}
		}
	}
}

var wantRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"` + "|`[^`]*`")

// collectWants extracts // want expectations from the package's comments.
func collectWants(t *testing.T, pkg *framework.Package) wantMap {
	t.Helper()
	wants := make(wantMap)
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range wantRE.FindAllString(rest, -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: malformed want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					key := lineKey{pos.Filename, pos.Line}
					wants[key] = append(wants[key], &want{pos: pos, re: re})
				}
			}
		}
	}
	return wants
}
