// Package mapiter flags range statements over maps — or over the
// maps.Keys / maps.Values iterators, which visit in the same randomized
// order — whose body feeds an order-sensitive sink: string building,
// formatting, or slice appends that are never sorted, without an
// intervening canonicalization step. Slices collected straight off a map
// iterator with slices.Collect are held to the same bar; collect with
// slices.Sorted (or sort afterwards) instead.
//
// fspnet's algorithms depend on canonical encodings: possibility sets,
// failure sets, and normal forms (paper Lemmas 2–5) are compared as sorted
// strings, so any output derived from Go's randomized map iteration order
// silently breaks possibility equivalence. The analyzer accepts the
// standard idiom of collecting keys into a slice that is sorted before
// use, and the //fsplint:ignore mapiter directive for deliberate
// exceptions.
package mapiter

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"fspnet/internal/analysis/framework"
)

// Analyzer is the mapiter check.
var Analyzer = &framework.Analyzer{
	Name: "mapiter",
	Doc:  "flags map iteration feeding ordered output without sorting",
	Run:  run,
}

// canonicalizerRE matches callee names that impose an order on a slice, or
// otherwise canonicalize it, after collection.
var canonicalizerRE = regexp.MustCompile(`(?i)(sort|dedup|canon|order|normal|uniq)`)

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		for _, body := range functionBodies(file) {
			checkBody(pass, body)
		}
	}
	return nil
}

// functionBodies returns every function body in the file, top-level and
// literal alike. Each body is analyzed as its own scope.
func functionBodies(file *ast.File) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				bodies = append(bodies, n.Body)
			}
		case *ast.FuncLit:
			bodies = append(bodies, n.Body)
		}
		return true
	})
	return bodies
}

// checkBody inspects one function body for map ranges (and map-iterator
// ranges and collections) with ordered sinks.
func checkBody(pass *framework.Pass, body *ast.BlockStmt) {
	walkSkippingFuncLits(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if isMapRangeOperand(pass, n.X) {
				checkMapRange(pass, body, n)
			}
		case *ast.AssignStmt:
			checkIterCollect(pass, body, n)
		}
	})
}

// isMapRangeOperand reports whether ranging over x visits elements in
// randomized map order: x is a map, or a maps.Keys / maps.Values
// iterator (which range in the same non-deterministic order).
func isMapRangeOperand(pass *framework.Pass, x ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[x]
	if ok && tv.Type != nil {
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			return true
		}
	}
	return mapsIterCall(pass, x) != nil
}

// mapsIterCall returns the call expression when x is a call to maps.Keys
// or maps.Values from the standard maps package, nil otherwise.
func mapsIterCall(pass *framework.Pass, x ast.Expr) *ast.CallExpr {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if pkg, fn := packageFunc(pass, sel); pkg == "maps" && (fn == "Keys" || fn == "Values") {
		return call
	}
	return nil
}

// checkIterCollect flags x := slices.Collect(maps.Keys(m)) — and the
// Values variant — when x is never canonicalized afterwards: the
// collected slice is the map's randomized order made durable.
func checkIterCollect(pass *framework.Pass, enclosing *ast.BlockStmt, assign *ast.AssignStmt) {
	if len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if pkg, fn := packageFunc(pass, sel); pkg != "slices" || fn != "Collect" {
		return
	}
	inner := mapsIterCall(pass, call.Args[0])
	if inner == nil {
		return
	}
	if !canonicalizedAfter(pass, enclosing, assign.End(), assign.Lhs[0]) {
		pass.Reportf(assign.Pos(),
			"%s collects a map iterator into %s, which is never sorted afterwards; use slices.Sorted or sort the result",
			types.ExprString(call.Fun), types.ExprString(assign.Lhs[0]))
	}
}

// walkSkippingFuncLits visits nodes of stmt without descending into nested
// function literals, whose statements belong to a different scope.
func walkSkippingFuncLits(stmt ast.Node, visit func(ast.Node)) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != stmt {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

func checkMapRange(pass *framework.Pass, enclosing *ast.BlockStmt, rng *ast.RangeStmt) {
	loopVars := rangeVarObjects(pass, rng)
	var appendTargets []ast.Expr

	walkSkippingFuncLits(rng.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// s += expr on strings builds output in iteration order.
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(pass, n.Lhs[0]) {
				pass.Reportf(rng.For,
					"map iteration feeds string concatenation %s; iteration order is randomized — sort the keys first",
					types.ExprString(n.Lhs[0]))
				return
			}
			// x = append(x, ...) collects in iteration order; fine only
			// if x is canonicalized later in the same function.
			if call := appendCall(n); call != nil && len(n.Lhs) == 1 {
				appendTargets = append(appendTargets, n.Lhs[0])
			}
		case *ast.CallExpr:
			checkCallSink(pass, rng, loopVars, n)
		}
	})

	for _, target := range appendTargets {
		if !canonicalizedAfter(pass, enclosing, rng.End(), target) {
			pass.Reportf(rng.For,
				"map iteration appends to %s, which is never sorted afterwards; iteration order is randomized — sort before it feeds ordered output",
				types.ExprString(target))
		}
	}
}

// appendCall returns the append CallExpr if the assignment's sole RHS is a
// call to the append builtin.
func appendCall(n *ast.AssignStmt) *ast.CallExpr {
	if len(n.Rhs) != 1 {
		return nil
	}
	call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
		return call
	}
	return nil
}

// checkCallSink flags calls inside the loop body that serialize data in
// iteration order: writes to strings.Builder / bytes.Buffer (directly or
// via fmt.Fprint*), and fmt string formatting of the loop variables.
func checkCallSink(pass *framework.Pass, rng *ast.RangeStmt, loopVars map[types.Object]bool, call *ast.CallExpr) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.MethodVal {
			if isWriteMethod(sel.Sel.Name) && isOrderedWriter(s.Recv()) {
				pass.Reportf(rng.For,
					"map iteration writes to %s via %s; iteration order is randomized — sort the keys first",
					typeString(s.Recv()), sel.Sel.Name)
			}
			return
		}
		// Package-level function: check for fmt sinks.
		pkgName, fn := packageFunc(pass, sel)
		if pkgName != "fmt" {
			return
		}
		switch fn {
		case "Fprint", "Fprintf", "Fprintln":
			if len(call.Args) > 0 && isOrderedWriter(pass.TypesInfo.Types[call.Args[0]].Type) {
				pass.Reportf(rng.For,
					"map iteration writes formatted output to %s; iteration order is randomized — sort the keys first",
					types.ExprString(call.Args[0]))
			}
		case "Sprint", "Sprintf", "Sprintln", "Errorf":
			if referencesAny(pass, call, loopVars) {
				pass.Reportf(rng.For,
					"map iteration formats the loop variable with fmt.%s; which element is rendered depends on randomized map order — iterate sorted keys instead",
					fn)
			}
		}
	}
}

func isWriteMethod(name string) bool {
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		return true
	}
	return false
}

// isOrderedWriter reports whether t is (a pointer to) strings.Builder or
// bytes.Buffer — the append-only text sinks used for canonical encodings.
func isOrderedWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return (path == "strings" && name == "Builder") || (path == "bytes" && name == "Buffer")
}

func typeString(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// packageFunc resolves sel as pkgname.Func and returns the package name
// and function name, or "", "".
func packageFunc(pass *framework.Pass, sel *ast.SelectorExpr) (string, string) {
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// rangeVarObjects returns the types.Objects of the range statement's key
// and value variables.
func rangeVarObjects(pass *framework.Pass, rng *ast.RangeStmt) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				vars[obj] = true
			}
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				vars[obj] = true
			}
		}
	}
	return vars
}

// referencesAny reports whether the expression mentions any of the objects.
func referencesAny(pass *framework.Pass, e ast.Node, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// canonicalizedAfter reports whether target is passed, after position
// after, to a call that sorts or otherwise canonicalizes it — either a
// sort/slices package function or a callee whose name says it imposes
// order (sortX, dedupX, canonicalize, ...).
func canonicalizedAfter(pass *framework.Pass, enclosing *ast.BlockStmt, after token.Pos, target ast.Expr) bool {
	want := types.ExprString(target)
	found := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after {
			return true
		}
		if !isCanonicalizer(pass, call.Fun) {
			return true
		}
		for _, arg := range call.Args {
			if types.ExprString(arg) == want {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isCanonicalizer(pass *framework.Pass, fun ast.Expr) bool {
	switch f := ast.Unparen(fun).(type) {
	case *ast.Ident:
		return canonicalizerRE.MatchString(f.Name)
	case *ast.SelectorExpr:
		if pkg, _ := packageFunc(pass, f); pkg == "sort" || pkg == "slices" {
			return true
		}
		return canonicalizerRE.MatchString(f.Sel.Name)
	}
	return false
}

func isString(pass *framework.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}
