package mapiter_test

import (
	"testing"

	"fspnet/internal/analysis/analysistest"
	"fspnet/internal/analysis/mapiter"
)

func TestMapIter(t *testing.T) {
	analysistest.Run(t, analysistest.TestDataPath(t), mapiter.Analyzer, "a", "b")
}
