// Package b holds the clean idioms mapiter must accept.
package b

import (
	"fmt"
	"sort"
	"strings"
)

// sortedKeys is the canonical collect-sort-use idiom.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// render iterates the sorted keys, not the map.
func render(m map[string]int) string {
	var sb strings.Builder
	for _, k := range sortedKeys(m) {
		fmt.Fprintf(&sb, "%s=%d,", k, m[k])
	}
	return sb.String()
}

// count does not observe order at all.
func count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// transfer feeds another map, an order-insensitive sink.
func transfer(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
