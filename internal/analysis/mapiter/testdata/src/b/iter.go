package b

import (
	"maps"
	"slices"
)

// slices.Sorted over a map iterator is the one-call canonical idiom.
func sortedIter(m map[string]int) []string {
	return slices.Sorted(maps.Keys(m))
}

// Collect followed by an explicit sort is equally canonical.
func collectThenSort(m map[string]int) []string {
	keys := slices.Collect(maps.Keys(m))
	slices.Sort(keys)
	return keys
}

// An iterator loop that only aggregates (no ordered sink) is fine.
func sumValues(m map[string]int) int {
	total := 0
	for v := range maps.Values(m) {
		total += v
	}
	return total
}

// Collecting and then sorting through a named canonicalizer helper.
func collectThenCanon(m map[string]int) []string {
	keys := slices.Collect(maps.Keys(m))
	sortKeys(keys)
	return keys
}

func sortKeys(keys []string) { slices.Sort(keys) }
