// Package a exercises every mapiter ordered-sink class.
package a

import (
	"fmt"
	"strings"
)

func concat(m map[string]int) string {
	s := ""
	for k := range m { // want `feeds string concatenation`
		s += k
	}
	return s
}

func builder(m map[string]int) string {
	var sb strings.Builder
	for k := range m { // want `writes to strings.Builder`
		sb.WriteString(k)
	}
	return sb.String()
}

func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `never sorted afterwards`
		keys = append(keys, k)
	}
	return keys
}

func firstError(m map[string]bool) error {
	for k, ok := range m { // want `fmt.Errorf`
		if !ok {
			return fmt.Errorf("bad key %q", k)
		}
	}
	return nil
}

func fprint(m map[string]int) string {
	var sb strings.Builder
	for k, v := range m { // want `writes formatted output`
		fmt.Fprintf(&sb, "%s=%d,", k, v)
	}
	return sb.String()
}

func suppressed(m map[string]int) []string {
	var keys []string
	//fsplint:ignore mapiter order genuinely irrelevant here
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
