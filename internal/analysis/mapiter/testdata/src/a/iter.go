package a

import (
	"fmt"
	"maps"
	"slices"
	"strings"
)

// Ranging a maps.Keys iterator is the map's randomized order with
// different syntax; the same sinks are flagged.
func iterConcat(m map[string]int) string {
	s := ""
	for k := range maps.Keys(m) { // want `feeds string concatenation`
		s += k
	}
	return s
}

func iterBuilder(m map[string]int) string {
	var sb strings.Builder
	for v := range maps.Values(m) { // want `writes formatted output to &sb`
		fmt.Fprintf(&sb, "%d,", v)
	}
	return sb.String()
}

func iterAppendNoSort(m map[string]int) []string {
	var keys []string
	for k := range maps.Keys(m) { // want `never sorted afterwards`
		keys = append(keys, k)
	}
	return keys
}

// slices.Collect makes the randomized order durable; without a sort it
// is the appendNoSort case in one call.
func collectNoSort(m map[string]int) []string {
	keys := slices.Collect(maps.Keys(m)) // want `never sorted afterwards`
	return keys
}

func collectValuesNoSort(m map[string]int) []int {
	vals := slices.Collect(maps.Values(m)) // want `never sorted afterwards`
	return vals
}
