// Package a is a library package: global randomness and the wall clock
// are both off limits.
package a

import (
	"math/rand"
	"time"
)

func jitter() int {
	return rand.Intn(10) // want `process-global random source`
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `process-global random source`
}

func stamp() time.Time {
	return time.Now() // want `wall clock`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall clock`
}

func measured() time.Time {
	return time.Now() //fsplint:ignore detrand deliberate: measurement only
}
