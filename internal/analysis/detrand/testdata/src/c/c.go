// Command c shows the exemption: package main binaries may seed
// themselves from the clock.
package main

import (
	"math/rand"
	"time"
)

func main() {
	r := rand.New(rand.NewSource(time.Now().UnixNano()))
	_ = r.Intn(3)
	_ = rand.Intn(3)
}
