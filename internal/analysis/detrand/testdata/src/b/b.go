// Package b holds the sanctioned patterns: explicitly seeded generators
// threaded through the API, and clock values injected by the caller.
package b

import (
	"math/rand"
	"time"
)

func perm(seed int64, n int) []int {
	r := rand.New(rand.NewSource(seed))
	return r.Perm(n)
}

func pick(r *rand.Rand, xs []string) string {
	return xs[r.Intn(len(xs))]
}

func format(now time.Time) string {
	return now.Format(time.RFC3339)
}
