// Package detrand keeps fspnet's library packages deterministic: every
// experiment table in EXPERIMENTS.md must be reproducible run-to-run, so
// randomness in library code must flow through an explicitly seeded
// *rand.Rand supplied by the caller (the internal/fsptest and
// internal/bench convention), never the process-global generator or the
// wall clock.
//
// The analyzer flags, in non-main packages outside fspnet/cmd:
//
//   - calls to package-level math/rand and math/rand/v2 functions
//     (rand.Intn, rand.Shuffle, ...), which draw from the global source;
//   - calls to time.Now and time.Since, which make results depend on the
//     wall clock.
//
// Methods on an explicit *rand.Rand are always allowed, as are the
// constructors rand.New / rand.NewSource / rand.NewPCG / rand.NewChaCha8.
// Deliberate wall-clock uses (e.g. measuring elapsed time for a report)
// are silenced with //fsplint:ignore detrand and a reason.
package detrand

import (
	"go/ast"
	"go/types"
	"strings"

	"fspnet/internal/analysis/framework"
)

// Analyzer is the detrand check.
var Analyzer = &framework.Analyzer{
	Name: "detrand",
	Doc:  "flags global math/rand and wall-clock use in library packages",
	Run:  run,
}

// allowedRandFuncs are math/rand functions that construct explicit
// generators rather than drawing from the global source.
var allowedRandFuncs = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func run(pass *framework.Pass) error {
	if pass.Pkg.Name() == "main" || strings.HasPrefix(pass.Pkg.Path(), "fspnet/cmd/") {
		return nil // binaries may seed themselves however they like
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, fn := packageFunc(pass, sel)
			switch pkg {
			case "math/rand", "math/rand/v2":
				if !allowedRandFuncs[fn] {
					pass.Reportf(call.Pos(),
						"call to %s.%s uses the process-global random source; thread an explicitly seeded *rand.Rand through the API instead",
						pkg, fn)
				}
			case "time":
				if fn == "Now" || fn == "Since" {
					pass.Reportf(call.Pos(),
						"time.%s makes library output depend on the wall clock; inject the value from the caller (or //fsplint:ignore detrand with a reason for pure measurement)",
						fn)
				}
			}
			return true
		})
	}
	return nil
}

// packageFunc resolves sel as pkgname.Func, returning the imported package
// path and function name, or "", "" when sel is not a package selector.
func packageFunc(pass *framework.Pass, sel *ast.SelectorExpr) (string, string) {
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}
