package detrand_test

import (
	"testing"

	"fspnet/internal/analysis/analysistest"
	"fspnet/internal/analysis/detrand"
)

func TestDetRand(t *testing.T) {
	analysistest.Run(t, analysistest.TestDataPath(t), detrand.Analyzer, "a", "b", "c")
}
