package guardpoll_test

import (
	"testing"

	"fspnet/internal/analysis/analysistest"
	"fspnet/internal/analysis/guardpoll"
)

func TestGuardpoll(t *testing.T) {
	analysistest.Run(t, analysistest.TestDataPath(t), guardpoll.Analyzer, "solver", "other")
}
