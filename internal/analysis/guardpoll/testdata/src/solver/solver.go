//fsplint:testpath fspnet/internal/treesolve

// Package solver exercises guardpoll's worklist classification under a
// solver package path.
package solver

import "fspnet/internal/guard"

// Unpolled worklist: grows the slice it drains, never touches the
// governor.
func unpolled(start int, succ func(int) []int) []int {
	order := []int{start}
	for len(order) > 0 { // want `worklist loop over order never polls the governor`
		v := order[len(order)-1]
		order = order[:len(order)-1]
		order = append(order, succ(v)...)
	}
	return order
}

// Index-style sweep over a growing list, unpolled.
func unpolledSweep(g *guard.G, succ func(int) []int) int {
	list := []int{0}
	for u := 0; u < len(list); u++ { // want `worklist loop over list never polls the governor`
		list = append(list, succ(list[u])...)
	}
	return len(list)
}

// Direct poll in the body: fine.
func polled(g *guard.G, succ func(int) []int) error {
	work := []int{0}
	for len(work) > 0 {
		if err := g.Poll("pass", len(work)); err != nil {
			return err
		}
		v := work[len(work)-1]
		work = work[:len(work)-1]
		work = append(work, succ(v)...)
	}
	return nil
}

// Charge counts as governor access too (budget exhaustion stops the
// loop).
func charged(g *guard.G, succ func(int) []int) error {
	work := []int{0}
	for len(work) > 0 {
		if err := g.Charge(1); err != nil {
			return err
		}
		work = append(work[:len(work)-1], succ(work[len(work)-1])...)
	}
	return nil
}

// Growth and governor access both live in a local closure (the
// belief-solver idiom): fine.
func closurePolled(g *guard.G, succ func(int) []int) error {
	var work []int
	var failed error
	add := func(v int) {
		if err := g.Charge(1); err != nil {
			failed = err
			return
		}
		work = append(work, v)
	}
	add(0)
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range succ(v) {
			add(s)
		}
		if failed != nil {
			return failed
		}
	}
	return nil
}

// Growth through a closure that never polls: flagged.
func closureUnpolled(succ func(int) []int) int {
	var work []int
	push := func(v int) { work = append(work, v) }
	push(0)
	n := 0
	for len(work) > 0 { // want `worklist loop over work never polls the governor`
		v := work[len(work)-1]
		work = work[:len(work)-1]
		n++
		for _, s := range succ(v) {
			push(s)
		}
	}
	return n
}

// Governor access through a helper method (the sv.poll idiom): fine.
type sweeper struct {
	g *guard.G
	n int
}

func (s *sweeper) poll() error {
	if s.n%1024 != 0 {
		return nil
	}
	return s.g.Poll("sweep", s.n/1024)
}

func (s *sweeper) run(succ func(int) []int) error {
	work := []int{0}
	for len(work) > 0 {
		if err := s.poll(); err != nil {
			return err
		}
		s.n++
		v := work[len(work)-1]
		work = work[:len(work)-1]
		work = append(work, succ(v)...)
	}
	return nil
}

// Wholesale frontier replacement is growth; without a poll it is
// flagged.
func frontierUnpolled(succ func([]int) []int) int {
	frontier := []int{0}
	depth := 0
	for len(frontier) > 0 { // want `worklist loop over frontier never polls the governor`
		frontier = succ(frontier)
		depth++
	}
	return depth
}

// Pure drain (pops only): bounded by the initial contents, not a
// worklist — not flagged.
func drain(work []int) int {
	n := 0
	for len(work) > 0 {
		work = work[:len(work)-1]
		n++
	}
	return n
}

// Fixed-bound loop without len() in the condition: not a worklist.
func fixed(k int, succ func(int) []int) int {
	var out []int
	for i := 0; i < k; i++ {
		out = append(out, succ(i)...)
	}
	return len(out)
}

// A justified bound can be waived; the framework suppression applies.
func waived(start int, succ func(int) []int) []int {
	order := []int{start}
	//fsplint:ignore guardpoll bounded by member count, not state count
	for len(order) > 0 {
		v := order[len(order)-1]
		order = order[:len(order)-1]
		order = append(order, succ(v)...)
	}
	return order
}

// Parallel-worker worklist (the belief cyclic-sweep idiom): the level
// loop replaces the wave wholesale, and the governor polls happen
// inside the goroutine-closure chunk workers. The analyzer descends
// into FuncLits, so the inner poll keeps the loop clean.
func workerPolled(g *guard.G, chunks func([]int) [][]int, succ func(int) []int) error {
	wave := []int{0}
	errs := make([]error, 2)
	for len(wave) > 0 {
		parts := chunks(wave)
		done := make(chan struct{}, len(parts))
		next := make([][]int, len(parts))
		for w, part := range parts {
			go func(w int, part []int) {
				defer func() { done <- struct{}{} }()
				for k, v := range part {
					if k%64 == 0 {
						if err := g.Poll("worker", k); err != nil {
							errs[w] = err
							return
						}
					}
					next[w] = append(next[w], succ(v)...)
				}
			}(w, part)
		}
		for range parts {
			<-done
		}
		for _, e := range errs {
			if e != nil {
				return e
			}
		}
		wave = wave[:0]
		for _, buf := range next {
			wave = append(wave, buf...)
		}
	}
	return nil
}

// Orbit-canonical interning loop (the explore BFS idiom): every
// successor is canonicalized and routed through an intern method before
// it may join the frontier, so both the growth and the governor access
// are two method hops away from the loop. The analyzer expands
// same-package methods, so the amortized poll inside intern keeps the
// loop clean.
type interner struct {
	g        *guard.G
	frontier []int
	seen     map[int]bool
}

// canon stands in for the orbit-minimization step: map the state to its
// orbit representative.
func (ix *interner) canon(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func (ix *interner) intern(v int) error {
	if len(ix.seen)%512 == 0 {
		if err := ix.g.Poll("bfs", len(ix.seen)/512); err != nil {
			return err
		}
	}
	rep := ix.canon(v)
	if !ix.seen[rep] {
		ix.seen[rep] = true
		ix.frontier = append(ix.frontier, rep)
	}
	return nil
}

func canonPolled(g *guard.G, succ func(int) []int) error {
	ix := &interner{g: g, seen: map[int]bool{0: true}}
	ix.frontier = []int{0}
	frontier := ix.frontier
	for len(frontier) > 0 {
		v := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, s := range succ(v) {
			if err := ix.intern(s); err != nil {
				return err
			}
		}
		frontier = append(frontier, ix.frontier...)
		ix.frontier = ix.frontier[:0]
	}
	return nil
}

// The same interning shape with a representative cache but no governor:
// the canonicalization does not bound the orbit count, so the loop is
// still an ungoverned worklist — flagged.
type freeInterner struct {
	frontier []int
	seen     map[int]bool
}

func (ix *freeInterner) canon(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func (ix *freeInterner) intern(v int) {
	rep := ix.canon(v)
	if !ix.seen[rep] {
		ix.seen[rep] = true
		ix.frontier = append(ix.frontier, rep)
	}
}

func canonUnpolled(succ func(int) []int) int {
	ix := &freeInterner{seen: map[int]bool{0: true}}
	frontier := []int{0}
	states := 0
	for len(frontier) > 0 { // want `worklist loop over frontier never polls the governor`
		v := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		states++
		for _, s := range succ(v) {
			ix.intern(s)
		}
		frontier = append(frontier, ix.frontier...)
		ix.frontier = ix.frontier[:0]
	}
	return states
}

// The same sharded shape with workers that never touch the governor:
// still a worklist, still flagged.
func workerUnpolled(chunks func([]int) [][]int, succ func(int) []int) int {
	wave := []int{0}
	rounds := 0
	for len(wave) > 0 { // want `worklist loop over wave never polls the governor`
		parts := chunks(wave)
		done := make(chan struct{}, len(parts))
		next := make([][]int, len(parts))
		for w, part := range parts {
			go func(w int, part []int) {
				defer func() { done <- struct{}{} }()
				for _, v := range part {
					next[w] = append(next[w], succ(v)...)
				}
			}(w, part)
		}
		for range parts {
			<-done
		}
		wave = wave[:0]
		for _, buf := range next {
			wave = append(wave, buf...)
		}
		rounds++
	}
	return rounds
}
