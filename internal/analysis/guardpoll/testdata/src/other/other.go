// Package other is outside the solver allowlist: the same unpolled
// worklist that is flagged in a solver package draws no report here.
package other

func unpolled(start int, succ func(int) []int) []int {
	order := []int{start}
	for len(order) > 0 {
		v := order[len(order)-1]
		order = order[:len(order)-1]
		order = append(order, succ(v)...)
	}
	return order
}
