// Package guardpoll enforces the governor invariant the solver packages
// established by hand: every worklist loop — a loop whose condition
// watches the length of a slice the body keeps feeding — must consult
// the resource governor (guard.Poll or guard.Charge) somewhere on its
// barrier path. The paper's hardness results mean these loops can
// legitimately run forever-sized; one that never polls cannot be
// canceled, deadlined, or budgeted, and a single such loop makes the
// whole analysis ungovernable.
//
// A loop qualifies as a worklist when its condition mentions len(X) of a
// slice-typed variable and the loop body — expanded through calls to
// local closures and to same-package functions and methods — assigns X
// from append or replaces it wholesale (a new frontier); pure shrinks
// (X = X[:len(X)-1] pops) do not count, so bounded drain loops are not
// flagged. The poll requirement is satisfied by any call that reaches
// (*guard.G).Poll or (*guard.G).Charge through the same expansion, which
// accepts both direct polls and the amortized helpers the solvers use
// (sv.poll, sv.chargePos).
//
// The check is scoped to the solver packages; a loop with a justified
// bound (for example, one bounded by member count rather than state
// count) is waived with an //fsplint:ignore guardpoll comment naming the
// bound.
package guardpoll

import (
	"go/ast"
	"go/types"

	"fspnet/internal/analysis/framework"
)

// GuardPath is the package whose G type is the governor.
const GuardPath = "fspnet/internal/guard"

// SolverPackages are the import paths the invariant applies to: the
// packages whose loops walk state spaces of potentially unbounded size.
var SolverPackages = []string{
	"fspnet/internal/explore",
	"fspnet/internal/game/belief",
	"fspnet/internal/treesolve",
}

// Analyzer is the guardpoll check.
var Analyzer = &framework.Analyzer{
	Name: "guardpoll",
	Doc:  "flags solver worklist loops that never poll the resource governor",
	Run:  run,
}

func run(pass *framework.Pass) error {
	if !isSolverPackage(pass.Pkg.Path()) {
		return nil
	}
	px := newPkgIndex(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fx := &funcIndex{pkg: px, closures: collectClosures(pass, fd.Body)}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				loop, ok := n.(*ast.ForStmt)
				if !ok || loop.Cond == nil {
					return true
				}
				checkLoop(pass, fx, loop)
				return true
			})
		}
	}
	return nil
}

func isSolverPackage(path string) bool {
	for _, p := range SolverPackages {
		if path == p {
			return true
		}
	}
	return false
}

// checkLoop classifies one conditional for-loop and reports it when it
// is a growing worklist with no governor access on its barrier path.
func checkLoop(pass *framework.Pass, fx *funcIndex, loop *ast.ForStmt) {
	for _, obj := range lenOperands(pass, loop.Cond) {
		if !fx.grows(pass, loop.Body, obj, nil) {
			continue
		}
		if !fx.reachesGuard(pass, loop.Body, nil) {
			pass.Reportf(loop.For,
				"worklist loop over %s never polls the governor: no guard.Poll or guard.Charge on its barrier path", obj.Name())
		}
		return // one report per loop, however many worklist slices it watches
	}
}

// lenOperands returns the slice-typed variables X whose len(X) appears
// in the loop condition.
func lenOperands(pass *framework.Pass, cond ast.Expr) []types.Object {
	var out []types.Object
	seen := make(map[types.Object]bool)
	ast.Inspect(cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || fun.Name != "len" {
			return true
		}
		if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); !ok || b.Name() != "len" {
			return true
		}
		arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[arg]
		if obj == nil || seen[obj] {
			return true
		}
		if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
			seen[obj] = true
			out = append(out, obj)
		}
		return true
	})
	return out
}

// pkgIndex resolves same-package callees and memoizes which ones reach a
// governor call.
type pkgIndex struct {
	decls   map[*types.Func]*ast.FuncDecl
	reaches map[*ast.FuncDecl]bool
}

func newPkgIndex(pass *framework.Pass) *pkgIndex {
	px := &pkgIndex{
		decls:   make(map[*types.Func]*ast.FuncDecl),
		reaches: make(map[*ast.FuncDecl]bool),
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				px.decls[fn] = fd
			}
		}
	}
	return px
}

// funcIndex is the per-enclosing-function view: the closure bindings in
// scope plus the package index.
type funcIndex struct {
	pkg      *pkgIndex
	closures map[types.Object]*ast.FuncLit
}

// collectClosures maps local variables to the function literals bound to
// them anywhere in the enclosing body, so calls through those variables
// can be expanded. A variable rebound to several literals keeps the last
// one — good enough for the defined-once closure idiom the solvers use.
func collectClosures(pass *framework.Pass, body *ast.BlockStmt) map[types.Object]*ast.FuncLit {
	closures := make(map[types.Object]*ast.FuncLit)
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, lhs := range assign.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			lit, ok := ast.Unparen(assign.Rhs[i]).(*ast.FuncLit)
			if !ok {
				continue
			}
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				closures[obj] = lit
			}
		}
		return true
	})
	return closures
}

// grows reports whether region (expanded through local closures) assigns
// slice obj in a way that can add elements: an append, or a wholesale
// replacement. Shrinking reslices of obj itself do not count.
func (fx *funcIndex) grows(pass *framework.Pass, region ast.Node, obj types.Object, seen map[*ast.FuncLit]bool) bool {
	found := false
	ast.Inspect(region, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if growsAssign(pass, n, obj) {
				found = true
				return false
			}
		case *ast.CallExpr:
			if lit := fx.calleeClosure(pass, n); lit != nil {
				if seen == nil {
					seen = make(map[*ast.FuncLit]bool)
				}
				if !seen[lit] {
					seen[lit] = true
					if fx.grows(pass, lit.Body, obj, seen) {
						found = true
						return false
					}
				}
			}
		}
		return true
	})
	return found
}

// growsAssign reports whether one assignment statement grows obj.
func growsAssign(pass *framework.Pass, assign *ast.AssignStmt, obj types.Object) bool {
	for i, lhs := range assign.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || pass.TypesInfo.ObjectOf(id) != obj {
			continue
		}
		if len(assign.Lhs) != len(assign.Rhs) {
			return true // tuple assignment: assume it can grow
		}
		rhs := ast.Unparen(assign.Rhs[i])
		if slice, ok := rhs.(*ast.SliceExpr); ok {
			if base, ok := ast.Unparen(slice.X).(*ast.Ident); ok && pass.TypesInfo.ObjectOf(base) == obj {
				continue // X = X[a:b]: a shrink (or at most a window), never growth
			}
		}
		return true // append(...) or a wholesale replacement
	}
	return false
}

// reachesGuard reports whether region contains, transitively through
// local closures and same-package functions and methods, a call to
// (*guard.G).Poll or (*guard.G).Charge.
func (fx *funcIndex) reachesGuard(pass *framework.Pass, region ast.Node, seen map[any]bool) bool {
	found := false
	ast.Inspect(region, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isGuardCall(pass, call) {
			found = true
			return false
		}
		if seen == nil {
			seen = make(map[any]bool)
		}
		if lit := fx.calleeClosure(pass, call); lit != nil {
			if !seen[lit] {
				seen[lit] = true
				if fx.reachesGuard(pass, lit.Body, seen) {
					found = true
					return false
				}
			}
			return true
		}
		if fd := fx.calleeDecl(pass, call); fd != nil {
			if !seen[fd] {
				seen[fd] = true
				// A package-level callee has its own closure bindings.
				sub := &funcIndex{pkg: fx.pkg, closures: collectClosures(pass, fd.Body)}
				if sub.reachesGuard(pass, fd.Body, seen) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// calleeClosure resolves a call through a local closure variable, or an
// immediately-invoked function literal, to the literal's body.
func (fx *funcIndex) calleeClosure(pass *framework.Pass, call *ast.CallExpr) *ast.FuncLit {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return fun
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[fun]; obj != nil {
			return fx.closures[obj]
		}
	}
	return nil
}

// calleeDecl resolves a call to a function or method declared in the
// package under analysis.
func (fx *funcIndex) calleeDecl(pass *framework.Pass, call *ast.CallExpr) *ast.FuncDecl {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return fx.pkg.decls[fn]
}

// isGuardCall reports whether call invokes Poll or Charge on guard.G.
func isGuardCall(pass *framework.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Poll" && sel.Sel.Name != "Charge") {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == GuardPath && named.Obj().Name() == "G"
}
