// Package frozenbits enforces the aliasing contract of the interned
// bitset arenas: the slices returned by the belief arena's set accessor
// and the explore index's vec/Vec accessors alias the arena's backing
// storage and are documented read-only. The arenas deduplicate by
// content — the belief arena keys its id map on the byte image of the
// words — so a single write through an escaped slice corrupts the
// interned value for every other holder of the same id and silently
// desynchronizes the id map from the data it indexes.
//
// Two mutation vectors are flagged:
//
//   - an element write straight through the accessor call,
//     ar.set(bid)[w] |= mask;
//   - an element write through a local variable bound to an accessor
//     result, cur := sv.ar.set(bid); … cur[w] = x — the escaped-alias
//     case. A variable later rebound to a non-accessor source is given
//     the benefit of the doubt and not tracked.
package frozenbits

import (
	"go/ast"
	"go/types"

	"fspnet/internal/analysis/framework"
)

// accessor names one read-only aliasing accessor method.
type accessor struct {
	pkg    string // package path of the receiver's named type
	recv   string // receiver type name
	method string
}

// Accessors are the protected methods. The unexported ones can only be
// called inside their own package; Vec is explore's public re-export.
var Accessors = []accessor{
	{"fspnet/internal/game/belief", "arena", "set"},
	{"fspnet/internal/explore", "index", "vec"},
	{"fspnet/internal/explore", "Index", "Vec"},
}

// Analyzer is the frozenbits check.
var Analyzer = &framework.Analyzer{
	Name: "frozenbits",
	Doc:  "flags writes to interned belief/vector bitsets after they escape the arena",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

// checkFunc flags arena-aliased writes within one function body.
// Tracking is per-function and flow-insensitive: a variable counts as
// arena-aliased if every value ever assigned to it in this body comes
// from an accessor call.
func checkFunc(pass *framework.Pass, body *ast.BlockStmt) {
	aliased := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, lhs := range assign.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.ObjectOf(id)
			if obj == nil {
				continue
			}
			if isAccessorCall(pass, assign.Rhs[i]) {
				if _, tainted := aliased[obj]; !tainted {
					aliased[obj] = true
				}
			} else {
				aliased[obj] = false // rebound elsewhere: benefit of the doubt
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkWrite(pass, aliased, lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(pass, aliased, n.X)
		}
		return true
	})
}

// checkWrite reports when the written location is an element of an
// arena-aliased slice.
func checkWrite(pass *framework.Pass, aliased map[types.Object]bool, lhs ast.Expr) {
	idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return
	}
	switch base := ast.Unparen(idx.X).(type) {
	case *ast.CallExpr:
		if isAccessorCall(pass, base) {
			pass.Reportf(lhs.Pos(),
				"write through an interned-bitset accessor slice, which is documented read-only; the arena deduplicates by content, so this corrupts every holder of the id")
		}
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[base]; obj != nil && aliased[obj] {
			pass.Reportf(lhs.Pos(),
				"write to %s, which aliases interned arena storage (documented read-only); copy the slice before modifying", base.Name)
		}
	}
}

// isAccessorCall reports whether expr is a call to one of the protected
// aliasing accessors.
func isAccessorCall(pass *framework.Pass, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	for _, a := range Accessors {
		if named.Obj().Pkg().Path() == a.pkg && named.Obj().Name() == a.recv && fn.Name() == a.method {
			return true
		}
	}
	return false
}
