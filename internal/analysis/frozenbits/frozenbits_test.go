package frozenbits_test

import (
	"testing"

	"fspnet/internal/analysis/analysistest"
	"fspnet/internal/analysis/frozenbits"
)

func TestFrozenbits(t *testing.T) {
	analysistest.Run(t, analysistest.TestDataPath(t), frozenbits.Analyzer,
		"beliefmirror", "exploremirror", "a")
}
