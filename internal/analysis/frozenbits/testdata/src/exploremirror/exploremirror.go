//fsplint:testpath fspnet/internal/explore

// Package exploremirror mirrors the explore package's vec/Vec accessors
// over the interned context-vector arena.
package exploremirror

type index struct {
	vecs []uint32
	w    int
}

func (ix *index) vec(gid int32) []uint32 {
	off := int(gid) * ix.w
	return ix.vecs[off : off+ix.w]
}

type Index struct {
	ix *index
}

func (ix *Index) Vec(gid int32) []uint32 {
	return ix.ix.vec(gid)
}

func unexported(ix *index, gid int32) {
	ix.vec(gid)[0] = 7 // want `write through an interned-bitset accessor slice`
}

func exported(ix *Index, gid int32) {
	v := ix.Vec(gid)
	v[0] = 7 // want `write to v, which aliases interned arena storage`
}

func readOnly(ix *Index, gid int32) uint32 {
	var sum uint32
	for _, w := range ix.Vec(gid) {
		sum += w
	}
	return sum
}
