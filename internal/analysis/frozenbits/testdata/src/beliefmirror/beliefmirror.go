//fsplint:testpath fspnet/internal/game/belief

// Package beliefmirror mirrors the shape of the belief arena's set
// accessor so frozenbits can be exercised against the protected method
// set without importing the real (unexported) type from outside its
// package.
package beliefmirror

type arena struct {
	words []uint64
	w     int
}

func (ar *arena) set(bid int32) []uint64 {
	off := int(bid) * ar.w
	return ar.words[off : off+ar.w]
}

// Direct write through the accessor call: flagged.
func direct(ar *arena, bid int32) {
	ar.set(bid)[0] = 1 // want `write through an interned-bitset accessor slice`
}

// Write through a variable bound to the accessor result: flagged.
func viaVar(ar *arena, bid int32) {
	cur := ar.set(bid)
	cur[0] |= 1 // want `write to cur, which aliases interned arena storage`
}

// Compound-assignment and inc/dec forms count as writes too.
func forms(ar *arena, bid int32) {
	ws := ar.set(bid)
	ws[1]++ // want `write to ws, which aliases interned arena storage`
	ar.set(bid)[2] ^= 4 // want `write through an interned-bitset accessor slice`
}

// Reading through the alias is the documented use: clean.
func read(ar *arena, a, b int32) bool {
	x, y := ar.set(a), ar.set(b)
	for i := range x {
		if x[i]&^y[i] != 0 {
			return false
		}
	}
	return true
}

// A variable also assigned from a non-accessor source is not tracked:
// the copy-then-mutate idiom stays clean.
func copied(ar *arena, bid int32) []uint64 {
	cur := ar.set(bid)
	cur = append([]uint64(nil), cur...)
	cur[0] |= 1
	return cur
}
