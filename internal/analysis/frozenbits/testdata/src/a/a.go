// Package a writes through the real explore.Index.Vec accessor,
// proving the check fires on the actual exported API, not just the
// shape mirrors.
package a

import "fspnet/internal/explore"

func mutate(ix *explore.Index, gid int) {
	ix.Vec(gid)[0] = 1 // want `write through an interned-bitset accessor slice`
}

func sum(ix *explore.Index, gid int) uint32 {
	var s uint32
	for _, w := range ix.Vec(gid) {
		s += w
	}
	return s
}
