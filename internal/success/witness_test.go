package success

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"fspnet/internal/fsp"
	"fspnet/internal/fsptest"
)

func TestCollaborationWitnessFigure3(t *testing.T) {
	p, q := figure3()
	tr, ok, err := CollaborationWitness(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("S_c holds, a witness must exist")
	}
	acts := tr.Actions()
	if len(acts) != 1 || acts[0] != "a" {
		t.Errorf("witness string = %v, want [a]", acts)
	}
	if !strings.Contains(tr.String(), "P⇄Q: a") {
		t.Errorf("trace rendering:\n%s", tr)
	}
}

func TestBlockingWitnessFigure3(t *testing.T) {
	p, q := figure3()
	tr, ok, err := BlockingWitness(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("¬S_u holds, a blocking trace must exist")
	}
	// The blocking run is Q's silent defection: one τ-step of Q.
	if len(tr) != 1 || tr[0].Kind != StepTauQ {
		t.Errorf("blocking trace = %v", tr)
	}
}

func TestBlockingWitnessAbsent(t *testing.T) {
	// Perfectly matched chain has no blocking trace.
	p := fsp.Linear("P", "a")
	q := fsp.Linear("Q", "a")
	_, ok, err := BlockingWitness(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("no blocking trace expected")
	}
	tr, ok, err := CollaborationWitness(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || len(tr) != 1 {
		t.Errorf("collaboration trace = %v ok=%v", tr, ok)
	}
}

// TestWitnessAgreesWithPredicates: a witness exists exactly when the
// corresponding predicate says so, on random closed pairs.
func TestWitnessAgreesWithPredicates(t *testing.T) {
	r := rand.New(rand.NewSource(811))
	cfg := fsptest.DefaultConfig()
	for i := 0; i < 60; i++ {
		p, q := fsptest.TwoProcessClosed(r, cfg)
		sc, err := CollaborationAcyclic(p, q)
		if err != nil {
			t.Fatal(err)
		}
		_, ok, err := CollaborationWitness(p, q)
		if err != nil {
			t.Fatal(err)
		}
		if ok != sc {
			t.Fatalf("iter %d: witness=%v but S_c=%v", i, ok, sc)
		}
		su, err := UnavoidableAcyclic(p, q)
		if err != nil {
			t.Fatal(err)
		}
		_, blocked, err := BlockingWitness(p, q)
		if err != nil {
			t.Fatal(err)
		}
		if blocked == su {
			t.Fatalf("iter %d: blocking witness=%v but S_u=%v", i, blocked, su)
		}
	}
}

// TestWitnessTraceReplays: the returned trace replays step by step on the
// two machines.
func TestWitnessTraceReplays(t *testing.T) {
	r := rand.New(rand.NewSource(821))
	cfg := fsptest.DefaultConfig()
	for i := 0; i < 40; i++ {
		p, q := fsptest.TwoProcessClosed(r, cfg)
		tr, ok, err := CollaborationWitness(p, q)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		pp, qq := p.Start(), q.Start()
		for k, st := range tr {
			moved := false
			switch st.Kind {
			case StepTauP:
				for _, tp := range p.Out(pp) {
					if tp.Label == fsp.Tau && p.StateName(tp.To) == st.PState {
						pp = tp.To
						moved = true
						break
					}
				}
			case StepTauQ:
				for _, tq := range q.Out(qq) {
					if tq.Label == fsp.Tau && q.StateName(tq.To) == st.QState {
						qq = tq.To
						moved = true
						break
					}
				}
			case StepHandshake:
				for _, tp := range p.Out(pp) {
					if tp.Label != st.Label || p.StateName(tp.To) != st.PState {
						continue
					}
					for _, tq := range q.Out(qq) {
						if tq.Label == st.Label && q.StateName(tq.To) == st.QState {
							pp, qq = tp.To, tq.To
							moved = true
							break
						}
					}
					if moved {
						break
					}
				}
			}
			if !moved {
				t.Fatalf("iter %d: step %d (%v) does not replay", i, k, st)
			}
		}
		if !p.IsLeaf(pp) {
			t.Fatalf("iter %d: replayed trace does not end at a P leaf", i)
		}
	}
}

func TestBlockingWitnessCyclic(t *testing.T) {
	p := aLoop("P")
	b := fsp.NewBuilder("Q")
	q0, q1 := b.State("0"), b.State("1")
	b.Add(q0, "a", q0)
	b.AddTau(q0, q1)
	q := b.MustBuild()
	tr, ok, err := BlockingWitnessCyclic(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("blocking witness must exist")
	}
	if len(tr) != 1 || tr[0].Kind != StepTauQ {
		t.Errorf("trace = %v", tr)
	}
	// The happy loop has no blocking witness.
	_, ok, err = BlockingWitnessCyclic(p, aLoop("Q"))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("mutual loop must have no blocking witness")
	}
}

func TestWitnessShapeErrors(t *testing.T) {
	b := fsp.NewBuilder("C")
	s0 := b.State("0")
	b.Add(s0, "a", s0)
	cyc := b.MustBuild()
	lin := fsp.Linear("L", "a")
	if _, _, err := CollaborationWitness(cyc, lin); !errors.Is(err, ErrShape) {
		t.Errorf("err = %v, want ErrShape", err)
	}
	if _, _, err := BlockingWitness(lin, cyc); !errors.Is(err, ErrShape) {
		t.Errorf("err = %v, want ErrShape", err)
	}
	tauP := func() *fsp.FSP {
		b := fsp.NewBuilder("T")
		s0, s1 := b.State("0"), b.State("1")
		b.AddTau(s0, s1)
		b.Add(s1, "a", s0)
		return b.MustBuild()
	}()
	if _, _, err := BlockingWitnessCyclic(tauP, cyc); !errors.Is(err, ErrShape) {
		t.Errorf("err = %v, want ErrShape", err)
	}
}
