package success

import (
	"errors"
	"math/rand"
	"testing"

	"fspnet/internal/fsp"
	"fspnet/internal/fsptest"
	"fspnet/internal/game"
	"fspnet/internal/network"
	"fspnet/internal/poss"
)

// figure3 builds the two-process network of Figure 3:
// P: 1 -a-> 2 and Q: 1 -a-> 2, 1 -τ-> 3.
func figure3() (*fsp.FSP, *fsp.FSP) {
	p := fsp.Linear("P", "a")
	b := fsp.NewBuilder("Q")
	q1, q2, q3 := b.State("1"), b.State("2"), b.State("3")
	b.Add(q1, "a", q2)
	b.AddTau(q1, q3)
	return p, b.MustBuild()
}

func TestFigure3(t *testing.T) {
	p, q := figure3()
	su, err := UnavoidableAcyclic(p, q)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := CollaborationAcyclic(p, q)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := AdversityAcyclic(p, q)
	if err != nil {
		t.Fatal(err)
	}
	// Q may silently go to state 3 leaving P stuck at a non-leaf, so S_u and
	// even S_a fail; cooperation (the a-handshake) succeeds.
	if su {
		t.Error("S_u must be false: Q can τ-escape and block P")
	}
	if sa {
		t.Error("S_a must be false: adversarial Q always τ-escapes")
	}
	if !sc {
		t.Error("S_c must be true: the a-handshake drives P to its leaf")
	}
}

// figure9Network reproduces the example printed above Section 4 in the
// paper: S_u = false (a context process makes a τ-move and P left-branches
// on a), S_a = true (P right-branches on a), S_c = true.
func figure9Network() (*fsp.FSP, *fsp.FSP) {
	// P: root with two a-branches; the left one still needs b, the right
	// one is a leaf.
	bp := fsp.NewBuilder("P")
	root, left, right, done := bp.State("r"), bp.State("l"), bp.State("rr"), bp.State("done")
	bp.Add(root, "a", left)
	bp.Add(root, "a", right)
	bp.Add(left, "b", done)
	p := bp.MustBuild()
	// Q offers a, then either offers b or τ-moves to a state without b.
	bq := fsp.NewBuilder("Q")
	q0, q1, q2, q3 := bq.State("0"), bq.State("1"), bq.State("2"), bq.State("3")
	bq.Add(q0, "a", q1)
	bq.Add(q1, "b", q2)
	bq.AddTau(q1, q3)
	return p, bq.MustBuild()
}

func TestFigure9SuccessValues(t *testing.T) {
	p, q := figure9Network()
	su, err := UnavoidableAcyclic(p, q)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := AdversityAcyclic(p, q)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := CollaborationAcyclic(p, q)
	if err != nil {
		t.Fatal(err)
	}
	v := Verdict{Su: su, Sa: sa, Sc: sc}
	want := Verdict{Su: false, Sa: true, Sc: true}
	if v != want {
		t.Errorf("verdict = %v, want %v", v, want)
	}
	if !v.Consistent() {
		t.Error("verdict violates S_u ⇒ S_a ⇒ S_c")
	}
}

func TestImplicationChainAcyclic(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	cfg := fsptest.DefaultConfig()
	for i := 0; i < 80; i++ {
		p, q := fsptest.TwoProcessClosed(r, cfg)
		su, err := UnavoidableAcyclic(p, q)
		if err != nil {
			t.Fatal(err)
		}
		sa, err := AdversityAcyclic(p, q)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := CollaborationAcyclic(p, q)
		if err != nil {
			t.Fatal(err)
		}
		v := Verdict{Su: su, Sa: sa, Sc: sc}
		if !v.Consistent() {
			t.Fatalf("iter %d: %v violates S_u ⇒ S_a ⇒ S_c\nP=%s\nQ=%s",
				i, v, p.DOT(), q.DOT())
		}
	}
}

// TestLemma3 checks S_c(P,Q) ⇔ ∃s. s ∈ Lang(Q) ∧ (s, ∅) ∈ Poss(P) on
// random closed pairs.
func TestLemma3(t *testing.T) {
	r := rand.New(rand.NewSource(103))
	cfg := fsptest.DefaultConfig()
	for i := 0; i < 80; i++ {
		p, q := fsptest.TwoProcessClosed(r, cfg)
		sc, err := CollaborationAcyclic(p, q)
		if err != nil {
			t.Fatal(err)
		}
		want := false
		for _, item := range poss.MustOf(p).Items() {
			if len(item.Z) == 0 && q.Accepts(item.S) {
				want = true
				break
			}
		}
		if sc != want {
			t.Fatalf("iter %d: S_c=%v but Lemma 3 witness=%v\nP=%s\nQ=%s",
				i, sc, want, p.DOT(), q.DOT())
		}
	}
}

// TestLemma4 checks ¬S_u(P,Q) ⇔ ∃s,X,Y. (s,X) ∈ Poss(P) ∧ (s,Y) ∈ Poss(Q)
// ∧ X ≠ ∅ ∧ X ∩ Y = ∅ on random closed pairs.
func TestLemma4(t *testing.T) {
	r := rand.New(rand.NewSource(107))
	cfg := fsptest.DefaultConfig()
	for i := 0; i < 80; i++ {
		p, q := fsptest.TwoProcessClosed(r, cfg)
		su, err := UnavoidableAcyclic(p, q)
		if err != nil {
			t.Fatal(err)
		}
		blocked := false
		possQ := poss.MustOf(q)
		for _, ip := range poss.MustOf(p).Items() {
			if len(ip.Z) == 0 {
				continue
			}
			for _, zq := range possQ.At(ip.S) {
				if !actionsIntersect(ip.Z, zq) {
					blocked = true
				}
			}
		}
		if su == blocked {
			t.Fatalf("iter %d: S_u=%v but Lemma 4 blocking witness=%v\nP=%s\nQ=%s",
				i, su, blocked, p.DOT(), q.DOT())
		}
	}
}

// TestLemma5 checks that S_a depends on Q only through Poss(Q): replacing
// Q by the normal form of its possibility set must not change the verdict.
func TestLemma5(t *testing.T) {
	r := rand.New(rand.NewSource(109))
	cfg := fsptest.DefaultConfig()
	for i := 0; i < 60; i++ {
		p, q := fsptest.TwoProcessClosed(r, cfg)
		qn, err := poss.NormalForm("Qn", poss.MustOf(q))
		if err != nil {
			t.Fatal(err)
		}
		sa1, err := AdversityAcyclic(p, q)
		if err != nil {
			t.Fatal(err)
		}
		sa2, err := AdversityAcyclic(p, qn)
		if err != nil {
			t.Fatal(err)
		}
		if sa1 != sa2 {
			t.Fatalf("iter %d: S_a(P,Q)=%v but S_a(P,NF(Q))=%v\nP=%s\nQ=%s",
				i, sa1, sa2, p.DOT(), q.DOT())
		}
	}
}

func TestGameRejectsTauP(t *testing.T) {
	b := fsp.NewBuilder("P")
	s0, s1 := b.State("0"), b.State("1")
	b.AddTau(s0, s1)
	p := b.MustBuild()
	q := fsp.Linear("Q", "a")
	if _, err := AdversityAcyclic(p, q); !errors.Is(err, game.ErrTauMoves) {
		t.Errorf("err = %v, want ErrTauMoves", err)
	}
}

func TestAcyclicShapeErrors(t *testing.T) {
	b := fsp.NewBuilder("C")
	s0 := b.State("0")
	b.Add(s0, "a", s0)
	cyc := b.MustBuild()
	lin := fsp.Linear("L", "a")
	if _, err := UnavoidableAcyclic(cyc, lin); !errors.Is(err, ErrShape) {
		t.Errorf("UnavoidableAcyclic err = %v, want ErrShape", err)
	}
	if _, err := CollaborationAcyclic(lin, cyc); !errors.Is(err, ErrShape) {
		t.Errorf("CollaborationAcyclic err = %v, want ErrShape", err)
	}
}

func TestAnalyzeAcyclicNetwork(t *testing.T) {
	// Three-process chain: P0 -x- P1 -y- P2 where all want one handshake.
	p0 := fsp.Linear("P0", "x")
	p1 := fsp.Linear("P1", "x", "y")
	p2 := fsp.Linear("P2", "y")
	n := network.MustNew(p0, p1, p2)
	v, err := AnalyzeAcyclic(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := Verdict{Su: true, Sa: true, Sc: true}
	if v != want {
		t.Errorf("verdict = %v, want %v", v, want)
	}
	// P2 also succeeds unavoidably.
	v2, err := AnalyzeAcyclic(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v2 != want {
		t.Errorf("P2 verdict = %v, want %v", v2, want)
	}
}

func TestVerdictString(t *testing.T) {
	v := Verdict{Su: true, Sa: true, Sc: true}
	if v.String() != "S_u=true S_a=true S_c=true" {
		t.Errorf("String = %q", v.String())
	}
}
