package success

import (
	"context"
	"testing"

	"fspnet/internal/fsp"
	"fspnet/internal/network"
)

func TestAnalyzeAll(t *testing.T) {
	n := network.MustNew(
		fsp.Linear("P0", "x"),
		fsp.Linear("P1", "x", "y"),
		fsp.Linear("P2", "y"),
	)
	results, err := AnalyzeAll(context.Background(), n, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3", len(results))
	}
	for i, r := range results {
		if r.Index != i || r.Err != nil {
			t.Errorf("result %d: %+v", i, r)
		}
		if r.Verdict != (Verdict{Su: true, Sa: true, Sc: true}) {
			t.Errorf("result %d verdict = %v", i, r.Verdict)
		}
		if r.Name != n.Process(i).Name() {
			t.Errorf("result %d name = %q", i, r.Name)
		}
	}
}

func TestAnalyzeAllPerProcessErrors(t *testing.T) {
	// P0 has a τ-move, so its game analysis fails; P1's must still run.
	b := fsp.NewBuilder("P0")
	s0, s1, s2 := b.State("0"), b.State("1"), b.State("2")
	b.AddTau(s0, s1)
	b.Add(s1, "x", s2)
	n := network.MustNew(b.MustBuild(), fsp.Linear("P1", "x"))
	results, err := AnalyzeAll(context.Background(), n, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil {
		t.Error("τ-ful and cyclic P0 must report an analysis error")
	}
	if results[1].Err != nil {
		t.Errorf("P1 analysis failed: %v", results[1].Err)
	}
}

func TestAnalyzeAllCyclic(t *testing.T) {
	bp := fsp.NewBuilder("P")
	p0 := bp.State("0")
	bp.Add(p0, "a", p0)
	bq := fsp.NewBuilder("Q")
	q0 := bq.State("0")
	bq.Add(q0, "a", q0)
	n := network.MustNew(bp.MustBuild(), bq.MustBuild())
	results, err := AnalyzeAll(context.Background(), n, true, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil || r.Verdict != (Verdict{Su: true, Sa: true, Sc: true}) {
			t.Errorf("result %+v", r)
		}
	}
}

func TestAnalyzeAllCancellation(t *testing.T) {
	n := network.MustNew(
		fsp.Linear("P0", "x"),
		fsp.Linear("P1", "x"),
	)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := AnalyzeAll(ctx, n, false, 1); err == nil {
		t.Error("cancelled context should abort the run")
	}
}
