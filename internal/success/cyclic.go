package success

import (
	"fmt"

	"fspnet/internal/fsp"
	"fspnet/internal/game"
	"fspnet/internal/lang"
	"fspnet/internal/network"
	"fspnet/internal/queue"
)

// UnavoidableCyclic decides S_u(P, Q) for the cyclic setting of
// Section 4.1: potential blocking holds iff some common string s admits
// (s, X) ∈ Poss(P) and (s, Y) ∈ Poss(Q) with X ∩ Y = ∅. Q should be the
// cyclic composition of the context, so its silent-divergence options
// appear as possibilities (s, ∅).
//
// Operationally the predicate is a reachability question on the P×Q
// product synchronized on the shared alphabet, with Q's τ-moves free:
// blocking ⇔ some reachable pair has both components stable and offering
// disjoint action sets.
func UnavoidableCyclic(p, q *fsp.FSP) (bool, error) {
	if err := checkSection4P(p); err != nil {
		return false, err
	}
	start := pair{p.Start(), q.Start()}
	seen := map[pair]bool{start: true}
	var work queue.Queue[pair]
	work.Push(start)
	for {
		cur, ok := work.Pop()
		if !ok {
			break
		}
		if p.IsStable(cur.p) && q.IsStable(cur.q) &&
			!actionsIntersect(p.ActionsAt(cur.p), q.ActionsAt(cur.q)) {
			return false, nil // potential blocking: ¬S_u
		}
		visit := func(np pair) {
			if !seen[np] {
				seen[np] = true
				work.Push(np)
			}
		}
		for _, t := range p.Out(cur.p) {
			if t.Label == fsp.Tau {
				visit(pair{t.To, cur.q})
			}
		}
		for _, t := range q.Out(cur.q) {
			if t.Label == fsp.Tau {
				visit(pair{cur.p, t.To})
			}
		}
		for _, tp := range p.Out(cur.p) {
			if tp.Label == fsp.Tau {
				continue
			}
			for _, tq := range q.Out(cur.q) {
				if tq.Label == tp.Label {
					visit(pair{tp.To, tq.To})
				}
			}
		}
	}
	return true, nil
}

// CollaborationCyclic decides S_c(P, Q) for the cyclic setting:
// Lang(P) ∩ Lang(Q) is infinite, i.e. P and Q can cooperate to exchange
// unboundedly many handshakes.
func CollaborationCyclic(p, q *fsp.FSP) (bool, error) {
	if err := checkSection4P(p); err != nil {
		return false, err
	}
	return lang.LangIntersectionInfinite(p, q), nil
}

// AdversityCyclic decides S_a(P, Q) for the cyclic setting by solving the
// infinite game: P wins iff it can keep moving forever (Proposition 2's
// exponential-time upper bound).
func AdversityCyclic(p, q *fsp.FSP) (bool, error) {
	return game.SolveCyclic(p, q)
}

// AnalyzeCyclic decides all three predicates for the distinguished process
// i of a cyclic network under the Section 4 semantics (silent divergence
// of the context defeats S_u). S_u and S_c come from the on-the-fly
// joint-vector engine (internal/explore); the context is composed with
// the cyclic ‖ only for the S_a game. Use AnalyzeCyclicOpts with
// BackendCompose for the original compose-then-explore path.
func AnalyzeCyclic(n *network.Network, i int) (Verdict, error) {
	return AnalyzeCyclicOpts(n, i, Options{})
}

// analyzeCyclicCompose is the compose-then-explore reference path. The
// governor is polled at each stage boundary (composition and the three
// predicates); the stages themselves are the uninterruptible oracle.
func analyzeCyclicCompose(n *network.Network, i int, o Options) (Verdict, error) {
	if err := composePoll(o.Guard, 0); err != nil {
		return Verdict{}, err
	}
	p := n.Process(i)
	q, err := n.Context(i, true)
	if err != nil {
		return Verdict{}, err
	}
	var v Verdict
	if err := composePoll(o.Guard, 1); err != nil {
		return Verdict{}, err
	}
	if v.Su, err = UnavoidableCyclic(p, q); err != nil {
		return Verdict{}, err
	}
	if err := composePoll(o.Guard, 2); err != nil {
		return Verdict{}, err
	}
	if v.Sc, err = CollaborationCyclic(p, q); err != nil {
		return Verdict{}, err
	}
	if err := composePoll(o.Guard, 3); err != nil {
		return Verdict{}, err
	}
	if v.Sa, err = game.SolveCyclicOpts(p, q, gameOpts(o)); err != nil {
		return Verdict{}, enrichGameLimit(err, v.Su, v.Sc)
	}
	return v, nil
}

// checkSection4P validates the Section 4 simplifying assumptions on the
// distinguished process: no τ-moves (its choices are all visible).
func checkSection4P(p *fsp.FSP) error {
	for _, t := range p.Transitions() {
		if t.Label == fsp.Tau {
			return fmt.Errorf("%s has τ-moves: %w", p.Name(), ErrShape)
		}
	}
	return nil
}

func actionsIntersect(xs, ys []fsp.Action) bool {
	i, j := 0, 0
	for i < len(xs) && j < len(ys) {
		switch {
		case xs[i] == ys[j]:
			return true
		case xs[i] < ys[j]:
			i++
		default:
			j++
		}
	}
	return false
}
