// Package success implements the reference decision procedures for the
// three notions of success of Section 3.1 (acyclic) and Section 4.1
// (cyclic): unavoidable success S_u, success in adversity S_a, and success
// with collaboration S_c, for a distinguished process P in a context Q.
//
// These are the "analyze the global process" algorithms the paper calls
// standard but inefficient: explicit reachability over the P×Q pair space
// and the belief-set game of package game. They serve as ground truth for
// the efficient algorithms of packages linear, treesolve, and unary.
package success

import (
	"errors"
	"fmt"

	"fspnet/internal/fsp"
	"fspnet/internal/game"
	"fspnet/internal/network"
	"fspnet/internal/queue"
)

// ErrShape reports inputs outside a procedure's domain (e.g. cyclic
// processes passed to an acyclic analysis).
var ErrShape = errors.New("success: input outside procedure domain")

// Verdict carries the three predicates for one distinguished process.
// The implications S_u ⇒ S_a ⇒ S_c always hold.
type Verdict struct {
	Su bool // unavoidable success: every maximal run drives P to a leaf
	Sa bool // success in adversity: P wins Game(P, Q)
	Sc bool // success with collaboration: some run drives P to a leaf
}

// String renders the verdict compactly.
func (v Verdict) String() string {
	return fmt.Sprintf("S_u=%t S_a=%t S_c=%t", v.Su, v.Sa, v.Sc)
}

// Consistent reports whether the verdict respects S_u ⇒ S_a ⇒ S_c.
func (v Verdict) Consistent() bool {
	return (!v.Su || v.Sa) && (!v.Sa || v.Sc)
}

// pair is a joint state of the P×Q system.
type pair struct {
	p, q fsp.State
}

// stuckInfo is the result of exploring the joint system.
type stuckInfo struct {
	stuckAtLeaf    bool // some reachable stuck pair has P at a leaf
	stuckAtNonLeaf bool // some reachable stuck pair has P off-leaf
}

// exploreStuck walks the reachable P×Q pair graph under the closed-network
// moves and classifies the stuck pairs — the leaves of the global process
// G. In a closed network every non-τ action is a handshake between P and
// its context (Definition 2 gives each action exactly two owners), so the
// joint moves are P's τ, Q's τ, and simultaneous moves on equal labels;
// an action the other side can never match simply never fires.
func exploreStuck(p, q *fsp.FSP) stuckInfo {
	var info stuckInfo
	start := pair{p.Start(), q.Start()}
	seen := map[pair]bool{start: true}
	var work queue.Queue[pair]
	work.Push(start)
	for {
		cur, ok := work.Pop()
		if !ok {
			break
		}
		moved := false
		visit := func(np pair) {
			moved = true
			if !seen[np] {
				seen[np] = true
				work.Push(np)
			}
		}
		for _, t := range p.Out(cur.p) {
			if t.Label == fsp.Tau {
				visit(pair{t.To, cur.q})
			}
		}
		for _, t := range q.Out(cur.q) {
			if t.Label == fsp.Tau {
				visit(pair{cur.p, t.To})
			}
		}
		for _, tp := range p.Out(cur.p) {
			if tp.Label == fsp.Tau {
				continue
			}
			for _, tq := range q.Out(cur.q) {
				if tq.Label == tp.Label {
					visit(pair{tp.To, tq.To})
				}
			}
		}
		if !moved {
			if p.IsLeaf(cur.p) {
				info.stuckAtLeaf = true
			} else {
				info.stuckAtNonLeaf = true
			}
			if info.stuckAtLeaf && info.stuckAtNonLeaf {
				return info
			}
		}
	}
	return info
}

// UnavoidableAcyclic decides S_u(P, Q) for acyclic P and Q: under the
// continuity rule every maximal run of the global process must leave P at
// one of its leaves, i.e. no reachable stuck pair has P off-leaf.
func UnavoidableAcyclic(p, q *fsp.FSP) (bool, error) {
	if !p.IsAcyclic() || !q.IsAcyclic() {
		return false, fmt.Errorf("UnavoidableAcyclic(%s, %s): %w", p.Name(), q.Name(), ErrShape)
	}
	return !exploreStuck(p, q).stuckAtNonLeaf, nil
}

// CollaborationAcyclic decides S_c(P, Q) for acyclic P and Q: some
// reachable stuck pair (leaf of G) has P at a leaf.
func CollaborationAcyclic(p, q *fsp.FSP) (bool, error) {
	if !p.IsAcyclic() || !q.IsAcyclic() {
		return false, fmt.Errorf("CollaborationAcyclic(%s, %s): %w", p.Name(), q.Name(), ErrShape)
	}
	return exploreStuck(p, q).stuckAtLeaf, nil
}

// AdversityAcyclic decides S_a(P, Q) by solving the acyclic Game(P, Q).
// P must be τ-free (Figure 4 assumption).
func AdversityAcyclic(p, q *fsp.FSP) (bool, error) {
	return game.SolveAcyclic(p, q)
}

// AnalyzeAcyclic decides all three predicates for the distinguished
// process i of an acyclic network. S_u and S_c come from the on-the-fly
// joint-vector engine (internal/explore); the context Q is composed with
// ‖ only for the S_a game. Use AnalyzeAcyclicOpts with BackendCompose
// for the original compose-then-explore path.
func AnalyzeAcyclic(n *network.Network, i int) (Verdict, error) {
	return AnalyzeAcyclicOpts(n, i, Options{})
}

// analyzeAcyclicCompose is the compose-then-explore reference path. The
// governor is polled at each stage boundary (composition and the three
// predicates); the stages themselves are the uninterruptible oracle.
func analyzeAcyclicCompose(n *network.Network, i int, o Options) (Verdict, error) {
	if err := composePoll(o.Guard, 0); err != nil {
		return Verdict{}, err
	}
	p := n.Process(i)
	q, err := n.Context(i, false)
	if err != nil {
		return Verdict{}, err
	}
	var v Verdict
	if err := composePoll(o.Guard, 1); err != nil {
		return Verdict{}, err
	}
	if v.Su, err = UnavoidableAcyclic(p, q); err != nil {
		return Verdict{}, err
	}
	if err := composePoll(o.Guard, 2); err != nil {
		return Verdict{}, err
	}
	if v.Sc, err = CollaborationAcyclic(p, q); err != nil {
		return Verdict{}, err
	}
	if err := composePoll(o.Guard, 3); err != nil {
		return Verdict{}, err
	}
	if v.Sa, err = game.SolveAcyclicOpts(p, q, gameOpts(o)); err != nil {
		return Verdict{}, enrichGameLimit(err, v.Su, v.Sc)
	}
	return v, nil
}
