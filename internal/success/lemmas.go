package success

import (
	"fspnet/internal/fsp"
	"fspnet/internal/lang"
	"fspnet/internal/poss"
)

// This file makes Lemmas 3 and 4 directly executable: the success
// predicates phrased purely in terms of Lang(·) and Poss(·), as the
// Theorem 3 machinery uses them. They agree with the operational
// procedures (property-tested) and serve as specification-level oracles;
// their cost is driven by possibility enumeration, so they shine on tree
// processes and degrade on wide DAGs exactly as the paper predicts.

// CollaborationLemma3 decides S_c(P, Q) via Lemma 3:
// ∃s. s ∈ Lang(Q) ∧ (s, ∅) ∈ Poss(P). budget bounds the possibility
// enumeration of P (≤ 0 means the default).
func CollaborationLemma3(p, q *fsp.FSP, budget int) (bool, error) {
	if budget <= 0 {
		budget = poss.DefaultBudget
	}
	set, err := poss.Of(p, budget)
	if err != nil {
		return false, err
	}
	qLang := lang.LangDFA(q)
	for _, item := range set.Items() {
		if len(item.Z) == 0 && qLang.Accepts(item.S) {
			return true, nil
		}
	}
	return false, nil
}

// UnavoidableLemma4 decides S_u(P, Q) via Lemma 4: potential blocking
// holds iff ∃s, X, Y. (s, X) ∈ Poss(P) ∧ (s, Y) ∈ Poss(Q) ∧ X ≠ ∅ ∧
// X ∩ Y = ∅. budget bounds both possibility enumerations.
func UnavoidableLemma4(p, q *fsp.FSP, budget int) (bool, error) {
	if budget <= 0 {
		budget = poss.DefaultBudget
	}
	setP, err := poss.Of(p, budget)
	if err != nil {
		return false, err
	}
	setQ, err := poss.Of(q, budget)
	if err != nil {
		return false, err
	}
	for _, ip := range setP.Items() {
		if len(ip.Z) == 0 {
			continue
		}
		for _, zq := range setQ.At(ip.S) {
			if !actionsIntersect(ip.Z, zq) {
				return false, nil // blocking witness found: ¬S_u
			}
		}
	}
	return true, nil
}

// Lemma4Witness returns a blocking witness (s, X, Y) of Lemma 4, or
// ok=false when S_u holds. It is the possibility-level counterpart of
// BlockingWitness's operational trace.
func Lemma4Witness(p, q *fsp.FSP, budget int) (s []fsp.Action, x, y []fsp.Action, ok bool, err error) {
	if budget <= 0 {
		budget = poss.DefaultBudget
	}
	setP, err := poss.Of(p, budget)
	if err != nil {
		return nil, nil, nil, false, err
	}
	setQ, err := poss.Of(q, budget)
	if err != nil {
		return nil, nil, nil, false, err
	}
	for _, ip := range setP.Items() {
		if len(ip.Z) == 0 {
			continue
		}
		for _, zq := range setQ.At(ip.S) {
			if !actionsIntersect(ip.Z, zq) {
				return ip.S, ip.Z, zq, true, nil
			}
		}
	}
	return nil, nil, nil, false, nil
}
