package success

import (
	"errors"
	"math/rand"
	"testing"

	"fspnet/internal/fsp"
	"fspnet/internal/fsptest"
	"fspnet/internal/poss"
)

func TestLemmaDecidersMatchOperational(t *testing.T) {
	r := rand.New(rand.NewSource(1301))
	cfg := fsptest.DefaultConfig()
	for i := 0; i < 80; i++ {
		p, q := fsptest.TwoProcessClosed(r, cfg)
		scOp, err := CollaborationAcyclic(p, q)
		if err != nil {
			t.Fatal(err)
		}
		scLm, err := CollaborationLemma3(p, q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if scOp != scLm {
			t.Fatalf("iter %d: operational S_c=%v, Lemma 3 S_c=%v", i, scOp, scLm)
		}
		suOp, err := UnavoidableAcyclic(p, q)
		if err != nil {
			t.Fatal(err)
		}
		suLm, err := UnavoidableLemma4(p, q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if suOp != suLm {
			t.Fatalf("iter %d: operational S_u=%v, Lemma 4 S_u=%v", i, suOp, suLm)
		}
	}
}

func TestLemma4WitnessMatchesVerdict(t *testing.T) {
	r := rand.New(rand.NewSource(1303))
	cfg := fsptest.DefaultConfig()
	for i := 0; i < 50; i++ {
		p, q := fsptest.TwoProcessClosed(r, cfg)
		su, err := UnavoidableLemma4(p, q, 0)
		if err != nil {
			t.Fatal(err)
		}
		s, x, y, ok, err := Lemma4Witness(p, q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ok == su {
			t.Fatalf("iter %d: witness ok=%v but S_u=%v", i, ok, su)
		}
		if !ok {
			continue
		}
		// Verify the witness: (s, X) ∈ Poss(P), (s, Y) ∈ Poss(Q), X ≠ ∅,
		// X ∩ Y = ∅.
		if len(x) == 0 {
			t.Fatalf("iter %d: empty X in witness", i)
		}
		if actionsIntersect(x, y) {
			t.Fatalf("iter %d: X ∩ Y ≠ ∅ in witness", i)
		}
		checkPoss := func(m *fsp.FSP, z []fsp.Action) bool {
			for _, zz := range poss.MustOf(m).At(s) {
				if len(zz) == len(z) {
					same := true
					for k := range z {
						if z[k] != zz[k] {
							same = false
							break
						}
					}
					if same {
						return true
					}
				}
			}
			return false
		}
		if !checkPoss(p, x) || !checkPoss(q, y) {
			t.Fatalf("iter %d: witness not in possibility sets", i)
		}
	}
}

func TestLemmaDecidersBudget(t *testing.T) {
	p := fsp.Linear("P", "a", "b", "c", "d", "e")
	q := fsp.Linear("Q", "a", "b", "c", "d", "e")
	if _, err := CollaborationLemma3(p, q, 2); !errors.Is(err, poss.ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
	if _, err := UnavoidableLemma4(p, q, 2); !errors.Is(err, poss.ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
	if _, _, _, _, err := Lemma4Witness(p, q, 2); !errors.Is(err, poss.ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}
