package success

import (
	"fmt"
	"strings"

	"fspnet/internal/fsp"
	"fspnet/internal/queue"
)

// StepKind classifies one move of the two-party global system.
type StepKind int

const (
	// StepTauP is an internal move of the distinguished process.
	StepTauP StepKind = iota + 1
	// StepTauQ is an internal move of the context (a hidden handshake or
	// τ-move inside Q).
	StepTauQ
	// StepHandshake is a P–Q handshake on a shared action.
	StepHandshake
)

// Step is one transition of a witness trace, recorded with the states the
// system is in after the move.
type Step struct {
	Kind   StepKind
	Label  fsp.Action // the handshake action; fsp.Tau for internal moves
	PState string     // P's state name after the step
	QState string     // Q's state name after the step
}

// Trace is a run of the global system from its start state.
type Trace []Step

// String renders the trace one step per line.
func (tr Trace) String() string {
	var sb strings.Builder
	for i, s := range tr {
		var what string
		switch s.Kind {
		case StepTauP:
			what = "P: τ"
		case StepTauQ:
			what = "Q: τ"
		case StepHandshake:
			what = "P⇄Q: " + string(s.Label)
		}
		fmt.Fprintf(&sb, "%3d. %-12s → (%s, %s)\n", i+1, what, s.PState, s.QState)
	}
	return sb.String()
}

// Actions returns the handshake labels of the trace in order — the common
// string s the trace witnesses.
func (tr Trace) Actions() []fsp.Action {
	var out []fsp.Action
	for _, s := range tr {
		if s.Kind == StepHandshake {
			out = append(out, s.Label)
		}
	}
	return out
}

// CollaborationWitness returns a run of the closed two-party system
// ending in a stuck state with P at a leaf — a schedule certifying
// S_c(P, Q) — or ok=false when none exists.
func CollaborationWitness(p, q *fsp.FSP) (trace Trace, ok bool, err error) {
	if !p.IsAcyclic() || !q.IsAcyclic() {
		return nil, false, fmt.Errorf("CollaborationWitness(%s, %s): %w", p.Name(), q.Name(), ErrShape)
	}
	return witnessSearch(p, q, func(pp, qq fsp.State) bool { return p.IsLeaf(pp) })
}

// BlockingWitness returns a run ending in a stuck state with P off a leaf
// — a deadlock trace certifying ¬S_u(P, Q) — or ok=false when the network
// is blocking-free.
func BlockingWitness(p, q *fsp.FSP) (trace Trace, ok bool, err error) {
	if !p.IsAcyclic() || !q.IsAcyclic() {
		return nil, false, fmt.Errorf("BlockingWitness(%s, %s): %w", p.Name(), q.Name(), ErrShape)
	}
	return witnessSearch(p, q, func(pp, qq fsp.State) bool { return !p.IsLeaf(pp) })
}

// BlockingWitnessCyclic returns a run reaching a jointly stable pair
// offering disjoint action sets — the Section 4 blocking witness — or
// ok=false when S_u holds. Q should be the cyclic composition of the
// context. The distinguished process must be τ-free.
func BlockingWitnessCyclic(p, q *fsp.FSP) (trace Trace, ok bool, err error) {
	if err := checkSection4P(p); err != nil {
		return nil, false, err
	}
	start := pairNode{p.Start(), q.Start()}
	parent := map[pairNode]pairEdge{start: {}}
	var work queue.Queue[pairNode]
	work.Push(start)
	var goal *pairNode
	for goal == nil {
		cur, ok := work.Pop()
		if !ok {
			break
		}
		if p.IsStable(cur.pp) && q.IsStable(cur.qq) &&
			!actionsIntersect(p.ActionsAt(cur.pp), q.ActionsAt(cur.qq)) {
			c := cur
			goal = &c
			break
		}
		push := func(nxt pairNode, st Step) {
			if _, seen := parent[nxt]; !seen {
				parent[nxt] = pairEdge{from: cur, step: st}
				work.Push(nxt)
			}
		}
		for _, t := range q.Out(cur.qq) {
			if t.Label == fsp.Tau {
				push(pairNode{cur.pp, t.To}, Step{Kind: StepTauQ, Label: fsp.Tau,
					PState: p.StateName(cur.pp), QState: q.StateName(t.To)})
			}
		}
		for _, tp := range p.Out(cur.pp) {
			for _, tq := range q.Out(cur.qq) {
				if tq.Label == tp.Label {
					push(pairNode{tp.To, tq.To}, Step{Kind: StepHandshake, Label: tp.Label,
						PState: p.StateName(tp.To), QState: q.StateName(tq.To)})
				}
			}
		}
	}
	if goal == nil {
		return nil, false, nil
	}
	return unwind(parent, start, *goal), true, nil
}

func unwind(parent map[pairNode]pairEdge, start, goal pairNode) Trace {
	var rev Trace
	cur := goal
	for cur != start {
		e := parent[cur]
		rev = append(rev, e.step)
		cur = e.from
	}
	// Reverse.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// pairNode is a joint state of the two-party system; pairEdge records how
// the BFS reached it.
type pairNode struct{ pp, qq fsp.State }

type pairEdge struct {
	from pairNode
	step Step
}

// witnessSearch BFSes the closed two-party pair graph for a stuck state
// matching goal and unwinds the parent chain into a trace.
func witnessSearch(p, q *fsp.FSP, goal func(pp, qq fsp.State) bool) (Trace, bool, error) {
	start := pairNode{p.Start(), q.Start()}
	parent := map[pairNode]pairEdge{start: {}}
	var work queue.Queue[pairNode]
	work.Push(start)
	for {
		cur, ok := work.Pop()
		if !ok {
			break
		}
		moved := false
		push := func(nxt pairNode, st Step) {
			moved = true
			if _, seen := parent[nxt]; !seen {
				parent[nxt] = pairEdge{from: cur, step: st}
				work.Push(nxt)
			}
		}
		for _, t := range p.Out(cur.pp) {
			if t.Label == fsp.Tau {
				push(pairNode{t.To, cur.qq}, Step{Kind: StepTauP, Label: fsp.Tau,
					PState: p.StateName(t.To), QState: q.StateName(cur.qq)})
			}
		}
		for _, t := range q.Out(cur.qq) {
			if t.Label == fsp.Tau {
				push(pairNode{cur.pp, t.To}, Step{Kind: StepTauQ, Label: fsp.Tau,
					PState: p.StateName(cur.pp), QState: q.StateName(t.To)})
			}
		}
		for _, tp := range p.Out(cur.pp) {
			if tp.Label == fsp.Tau {
				continue
			}
			for _, tq := range q.Out(cur.qq) {
				if tq.Label == tp.Label {
					push(pairNode{tp.To, tq.To}, Step{Kind: StepHandshake, Label: tp.Label,
						PState: p.StateName(tp.To), QState: q.StateName(tq.To)})
				}
			}
		}
		if !moved && goal(cur.pp, cur.qq) {
			return unwind(parent, start, cur), true, nil
		}
	}
	return nil, false, nil
}
