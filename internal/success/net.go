package success

import "fspnet/internal/network"

// Network-level entry points: each predicate individually. They exist
// because AnalyzeAcyclic/AnalyzeCyclic decide all three predicates and
// therefore inherit the game's τ-free requirement on P, while S_u and S_c
// alone tolerate τ-moves in the distinguished process. The S_u/S_c
// wrappers run on the explore engine by default (see the *Opts variants
// for backend choice); the S_a and witness wrappers compose the context —
// the game and the trace unwinding operate on it directly.

// UnavoidableAcyclicNet decides S_u for process i of an acyclic network.
func UnavoidableAcyclicNet(n *network.Network, i int) (bool, error) {
	return UnavoidableAcyclicNetOpts(n, i, Options{})
}

func unavoidableAcyclicNetCompose(n *network.Network, i int, o Options) (bool, error) {
	if err := composePoll(o.Guard, 0); err != nil {
		return false, err
	}
	q, err := n.Context(i, false)
	if err != nil {
		return false, err
	}
	return UnavoidableAcyclic(n.Process(i), q)
}

// CollaborationAcyclicNet decides S_c for process i of an acyclic network.
func CollaborationAcyclicNet(n *network.Network, i int) (bool, error) {
	return CollaborationAcyclicNetOpts(n, i, Options{})
}

func collaborationAcyclicNetCompose(n *network.Network, i int, o Options) (bool, error) {
	if err := composePoll(o.Guard, 0); err != nil {
		return false, err
	}
	q, err := n.Context(i, false)
	if err != nil {
		return false, err
	}
	return CollaborationAcyclic(n.Process(i), q)
}

// AdversityAcyclicNet decides S_a for process i of an acyclic network;
// the process must be τ-free.
func AdversityAcyclicNet(n *network.Network, i int) (bool, error) {
	q, err := n.Context(i, false)
	if err != nil {
		return false, err
	}
	return AdversityAcyclic(n.Process(i), q)
}

// UnavoidableCyclicNet decides the Section 4 S_u for process i.
func UnavoidableCyclicNet(n *network.Network, i int) (bool, error) {
	return UnavoidableCyclicNetOpts(n, i, Options{})
}

func unavoidableCyclicNetCompose(n *network.Network, i int, o Options) (bool, error) {
	if err := composePoll(o.Guard, 0); err != nil {
		return false, err
	}
	q, err := n.Context(i, true)
	if err != nil {
		return false, err
	}
	return UnavoidableCyclic(n.Process(i), q)
}

// CollaborationCyclicNet decides the Section 4 S_c for process i.
func CollaborationCyclicNet(n *network.Network, i int) (bool, error) {
	return CollaborationCyclicNetOpts(n, i, Options{})
}

func collaborationCyclicNetCompose(n *network.Network, i int, o Options) (bool, error) {
	if err := composePoll(o.Guard, 0); err != nil {
		return false, err
	}
	q, err := n.Context(i, true)
	if err != nil {
		return false, err
	}
	return CollaborationCyclic(n.Process(i), q)
}

// AdversityCyclicNet decides the Section 4 S_a for process i.
func AdversityCyclicNet(n *network.Network, i int) (bool, error) {
	q, err := n.Context(i, true)
	if err != nil {
		return false, err
	}
	return AdversityCyclic(n.Process(i), q)
}

// CollaborationWitnessNet returns a schedule certifying S_c for process i
// of an acyclic network (ok=false when S_c fails).
func CollaborationWitnessNet(n *network.Network, i int) (Trace, bool, error) {
	q, err := n.Context(i, false)
	if err != nil {
		return nil, false, err
	}
	return CollaborationWitness(n.Process(i), q)
}

// BlockingWitnessNet returns a deadlock trace certifying ¬S_u for process
// i of an acyclic network (ok=false when the network is blocking-free).
func BlockingWitnessNet(n *network.Network, i int) (Trace, bool, error) {
	q, err := n.Context(i, false)
	if err != nil {
		return nil, false, err
	}
	return BlockingWitness(n.Process(i), q)
}

// BlockingWitnessCyclicNet is BlockingWitnessNet under the Section 4
// semantics (the context is composed with the cyclic ‖).
func BlockingWitnessCyclicNet(n *network.Network, i int) (Trace, bool, error) {
	q, err := n.Context(i, true)
	if err != nil {
		return nil, false, err
	}
	return BlockingWitnessCyclic(n.Process(i), q)
}
