package success

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"fspnet/internal/guard"
	"fspnet/internal/network"
)

// Result is the analysis outcome for one process of a network.
type Result struct {
	Index   int
	Name    string
	Verdict Verdict
	Err     error
}

// AnalyzeAll analyzes every process of the network as the distinguished
// one, concurrently. cyclic selects the Section 4 semantics. workers
// bounds concurrency (≤ 0 means GOMAXPROCS). The returned slice is
// indexed by process; per-process failures (e.g. a τ-ful process hitting
// the game's restriction) are reported in Result.Err rather than aborting
// the whole run. The context cancels outstanding work between processes.
func AnalyzeAll(ctx context.Context, n *network.Network, cyclic bool, workers int) ([]Result, error) {
	return analyzeAll(ctx, n, cyclic, workers, Options{})
}

func analyzeAll(ctx context.Context, n *network.Network, cyclic bool, workers int, o Options) ([]Result, error) {
	// Cancellation used to be observed only between processes; deriving a
	// governor from the context lets it also stop a per-process analysis
	// at its next BFS level barrier or game stride. The governor is
	// shared: its atomic budget (if any) is joint across processes.
	if o.Guard == nil && ctx != nil {
		o.Guard = guard.New(guard.Config{Context: ctx})
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n.Len() {
		workers = n.Len()
	}
	results := make([]Result, n.Len())
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = analyzeOne(n, i, cyclic, o)
			}
		}()
	}
	err := func() error {
		defer close(jobs)
		for i := 0; i < n.Len(); i++ {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("success: AnalyzeAll: %w", err)
			}
			select {
			case jobs <- i:
			case <-ctx.Done():
				return fmt.Errorf("success: AnalyzeAll: %w", ctx.Err())
			}
		}
		return nil
	}()
	wg.Wait()
	if err != nil {
		return nil, err
	}
	return results, nil
}

func analyzeOne(n *network.Network, i int, cyclic bool, o Options) Result {
	res := Result{Index: i, Name: n.Process(i).Name()}
	if cyclic {
		res.Verdict, res.Err = AnalyzeCyclicOpts(n, i, o)
	} else {
		res.Verdict, res.Err = AnalyzeAcyclicOpts(n, i, o)
	}
	return res
}
