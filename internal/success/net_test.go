package success

import (
	"testing"

	"fspnet/internal/fsp"
	"fspnet/internal/network"
)

func TestNetWrappersAcyclic(t *testing.T) {
	n := network.MustNew(
		fsp.Linear("P0", "x"),
		fsp.Linear("P1", "x"),
	)
	su, err := UnavoidableAcyclicNet(n, 0)
	if err != nil || !su {
		t.Errorf("S_u = %v, %v", su, err)
	}
	sc, err := CollaborationAcyclicNet(n, 0)
	if err != nil || !sc {
		t.Errorf("S_c = %v, %v", sc, err)
	}
	sa, err := AdversityAcyclicNet(n, 0)
	if err != nil || !sa {
		t.Errorf("S_a = %v, %v", sa, err)
	}
	tr, ok, err := CollaborationWitnessNet(n, 0)
	if err != nil || !ok || len(tr) != 1 {
		t.Errorf("witness: %v %v %v", tr, ok, err)
	}
	_, blocked, err := BlockingWitnessNet(n, 0)
	if err != nil || blocked {
		t.Errorf("blocking: %v %v", blocked, err)
	}
	// Out-of-range index errors propagate from Context.
	if _, err := UnavoidableAcyclicNet(n, 7); err == nil {
		t.Error("bad index must fail")
	}
	if _, err := CollaborationAcyclicNet(n, -1); err == nil {
		t.Error("bad index must fail")
	}
	if _, err := AdversityAcyclicNet(n, 7); err == nil {
		t.Error("bad index must fail")
	}
	if _, _, err := CollaborationWitnessNet(n, 7); err == nil {
		t.Error("bad index must fail")
	}
	if _, _, err := BlockingWitnessNet(n, 7); err == nil {
		t.Error("bad index must fail")
	}
}

func TestNetWrappersCyclic(t *testing.T) {
	mk := func(name string) *fsp.FSP {
		b := fsp.NewBuilder(name)
		s0 := b.State("0")
		b.Add(s0, "x", s0)
		return b.MustBuild()
	}
	n := network.MustNew(mk("P0"), mk("P1"))
	su, err := UnavoidableCyclicNet(n, 0)
	if err != nil || !su {
		t.Errorf("S_u = %v, %v", su, err)
	}
	sc, err := CollaborationCyclicNet(n, 0)
	if err != nil || !sc {
		t.Errorf("S_c = %v, %v", sc, err)
	}
	sa, err := AdversityCyclicNet(n, 0)
	if err != nil || !sa {
		t.Errorf("S_a = %v, %v", sa, err)
	}
	_, blocked, err := BlockingWitnessCyclicNet(n, 0)
	if err != nil || blocked {
		t.Errorf("blocking: %v %v", blocked, err)
	}
	if _, err := UnavoidableCyclicNet(n, 7); err == nil {
		t.Error("bad index must fail")
	}
	if _, err := CollaborationCyclicNet(n, 7); err == nil {
		t.Error("bad index must fail")
	}
	if _, err := AdversityCyclicNet(n, 7); err == nil {
		t.Error("bad index must fail")
	}
	if _, _, err := BlockingWitnessCyclicNet(n, 7); err == nil {
		t.Error("bad index must fail")
	}
}

func TestAnalyzeBundleErrorPaths(t *testing.T) {
	// Cyclic process in an "acyclic" analysis propagates ErrShape; a τ-ful
	// distinguished process fails the cyclic bundle at the τ-free check.
	b := fsp.NewBuilder("P0")
	s0, s1 := b.State("0"), b.State("1")
	b.AddTau(s0, s1)
	b.Add(s1, "x", s0)
	n := network.MustNew(b.MustBuild(), fsp.Linear("P1", "x"))
	if _, err := AnalyzeAcyclic(n, 0); err == nil {
		t.Error("cyclic P0 must fail the acyclic bundle")
	}
	if _, err := AnalyzeCyclic(n, 0); err == nil {
		t.Error("τ-ful P0 must fail the cyclic bundle")
	}
}
