package success

import (
	"context"
	"errors"
	"fmt"

	"fspnet/internal/explore"
	"fspnet/internal/game"
	"fspnet/internal/game/belief"
	"fspnet/internal/guard"
	"fspnet/internal/network"
)

// Backend selects how the network-level analyses decide S_u and S_c.
type Backend int

const (
	// BackendExplore — the default — never composes the context: S_u and
	// S_c come from the on-the-fly joint-vector engine of
	// internal/explore, and S_a from internal/game/belief, which plays
	// the Figure 4 game directly against the context as joint state
	// vectors with bitset beliefs over the reachable context space.
	BackendExplore Backend = iota
	// BackendCompose materializes the context with ‖ and runs the
	// original pairwise procedures — the compose-then-explore path, kept
	// as the cross-check oracle.
	BackendCompose
)

// Options configure the network-level analyses.
type Options struct {
	Backend   Backend
	Workers   int // explore frontier parallelism (≤ 0: GOMAXPROCS); verdicts never depend on it
	MaxStates int // explore joint-state budget (≤ 0: explore.DefaultMaxStates)
	// Guard, when non-nil, governs the analysis end to end: the explore
	// engine polls it at BFS level barriers, the S_a game every stride of
	// positions, and the compose backend at stage boundaries. Exhaustion
	// surfaces as a *guard.LimitErr whose partial verdict carries any
	// predicate already decided.
	Guard *guard.G
	// BeliefStats, when non-nil, receives the S_a belief-engine counters
	// of the run (context states, beliefs, positions, antichain activity,
	// sweep workers, symmetry quotient, probe). The compose backend never
	// touches it.
	BeliefStats *belief.Stats
	// ExploreStats, when non-nil, receives the S_u/S_c explore-engine
	// counters of the last engine run (states, moves, symmetry group
	// order, orbit hits, probe). The compose backend never touches it.
	ExploreStats *explore.Stats
	// NoSymmetry disables orbit-canonical state interning in both the
	// explore engine and the belief engine's context quotient, and the
	// witness probes with it — the unreduced differential oracle. It
	// changes only how verdicts are computed, never the verdicts.
	NoSymmetry bool
}

func engineOpts(o Options) explore.Options {
	return explore.Options{Workers: o.Workers, MaxStates: o.MaxStates, Guard: o.Guard,
		Tune: explore.Tuning{NoSymmetry: o.NoSymmetry, NoProbe: o.NoSymmetry}}
}

func gameOpts(o Options) game.Options {
	return game.Options{Guard: o.Guard}
}

func beliefTuning(o Options) belief.Tuning {
	return belief.Tuning{NoSymmetry: o.NoSymmetry, NoProbe: o.NoSymmetry}
}

// recordExplore copies the engine counters out for callers that asked
// for them.
func recordExplore(o Options, st explore.Stats) {
	if o.ExploreStats != nil {
		*o.ExploreStats = st
	}
}

// composePoll is the compose-path governor check: one poll per stage
// boundary (composition, then each predicate). The composed stages
// themselves are the oracle path and stay uninterruptible inside.
func composePoll(g *guard.G, level int) error {
	if err := g.Poll("compose", level); err != nil {
		return g.Limit(fmt.Errorf("success: compose backend: %w", err), guard.Partial{Pass: "compose"})
	}
	return nil
}

// enrichGameLimit copies the engine-decided S_u/S_c verdicts into a
// *guard.LimitErr produced by the S_a game, so the partial verdict
// reports everything the run had already proved.
func enrichGameLimit(err error, su, sc bool) error {
	var le *guard.LimitErr
	if errors.As(err, &le) {
		le.Partial.Su = guard.Of(su)
		le.Partial.Sc = guard.Of(sc)
	}
	return err
}

// wrapEngineErr keeps the package's error contract across backends: a
// domain violation reported by the engine also satisfies
// errors.Is(err, success.ErrShape). Other engine errors (budget, bad
// index) pass through with their own sentinels.
func wrapEngineErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, explore.ErrShape) {
		return fmt.Errorf("%w: %w", ErrShape, err)
	}
	return err
}

// AnalyzeAcyclicOpts is AnalyzeAcyclic with an explicit backend choice.
func AnalyzeAcyclicOpts(n *network.Network, i int, o Options) (Verdict, error) {
	if o.Backend == BackendCompose {
		return analyzeAcyclicCompose(n, i, o)
	}
	res, err := explore.AnalyzeAcyclic(n, i, engineOpts(o))
	if err != nil {
		return Verdict{}, wrapEngineErr(err)
	}
	recordExplore(o, res.Stats)
	v := Verdict{Su: res.Su, Sc: res.Sc}
	var st belief.Stats
	if v.Sa, st, err = belief.SolveAcyclicTuned(n, i, gameOpts(o), beliefTuning(o)); err != nil {
		return Verdict{}, enrichGameLimit(err, v.Su, v.Sc)
	}
	if o.BeliefStats != nil {
		*o.BeliefStats = st
	}
	return v, nil
}

// AnalyzeCyclicOpts is AnalyzeCyclic with an explicit backend choice.
func AnalyzeCyclicOpts(n *network.Network, i int, o Options) (Verdict, error) {
	if o.Backend == BackendCompose {
		return analyzeCyclicCompose(n, i, o)
	}
	res, err := explore.AnalyzeCyclic(n, i, engineOpts(o))
	if err != nil {
		return Verdict{}, wrapEngineErr(err)
	}
	recordExplore(o, res.Stats)
	v := Verdict{Su: res.Su, Sc: res.Sc}
	var st belief.Stats
	if v.Sa, st, err = belief.SolveCyclicTuned(n, i, gameOpts(o), beliefTuning(o)); err != nil {
		return Verdict{}, enrichGameLimit(err, v.Su, v.Sc)
	}
	if o.BeliefStats != nil {
		*o.BeliefStats = st
	}
	return v, nil
}

// UnavoidableAcyclicNetOpts is UnavoidableAcyclicNet with an explicit
// backend choice.
func UnavoidableAcyclicNetOpts(n *network.Network, i int, o Options) (bool, error) {
	if o.Backend == BackendCompose {
		return unavoidableAcyclicNetCompose(n, i, o)
	}
	su, st, err := explore.UnavoidableAcyclic(n, i, engineOpts(o))
	recordExplore(o, st)
	return su, wrapEngineErr(err)
}

// CollaborationAcyclicNetOpts is CollaborationAcyclicNet with an explicit
// backend choice.
func CollaborationAcyclicNetOpts(n *network.Network, i int, o Options) (bool, error) {
	if o.Backend == BackendCompose {
		return collaborationAcyclicNetCompose(n, i, o)
	}
	sc, st, err := explore.CollaborationAcyclic(n, i, engineOpts(o))
	recordExplore(o, st)
	return sc, wrapEngineErr(err)
}

// UnavoidableCyclicNetOpts is UnavoidableCyclicNet with an explicit
// backend choice.
func UnavoidableCyclicNetOpts(n *network.Network, i int, o Options) (bool, error) {
	if o.Backend == BackendCompose {
		return unavoidableCyclicNetCompose(n, i, o)
	}
	su, st, err := explore.UnavoidableCyclic(n, i, engineOpts(o))
	recordExplore(o, st)
	return su, wrapEngineErr(err)
}

// CollaborationCyclicNetOpts is CollaborationCyclicNet with an explicit
// backend choice.
func CollaborationCyclicNetOpts(n *network.Network, i int, o Options) (bool, error) {
	if o.Backend == BackendCompose {
		return collaborationCyclicNetCompose(n, i, o)
	}
	sc, st, err := explore.CollaborationCyclic(n, i, engineOpts(o))
	recordExplore(o, st)
	return sc, wrapEngineErr(err)
}

// AnalyzeAllOpts is AnalyzeAll with an explicit backend choice threaded
// into every per-process analysis.
func AnalyzeAllOpts(ctx context.Context, n *network.Network, cyclic bool, workers int, o Options) ([]Result, error) {
	return analyzeAll(ctx, n, cyclic, workers, o)
}
