package success

import (
	"context"
	"errors"
	"fmt"

	"fspnet/internal/explore"
	"fspnet/internal/network"
)

// Backend selects how the network-level analyses decide S_u and S_c.
type Backend int

const (
	// BackendExplore — the default — decides S_u and S_c with the
	// on-the-fly joint-vector engine of internal/explore, never composing
	// the context for those two predicates. S_a still solves the
	// belief-set game on the composed context: the game's knowledge sets
	// genuinely range over context states, so composition is intrinsic
	// there.
	BackendExplore Backend = iota
	// BackendCompose materializes the context with ‖ and runs the
	// original pairwise procedures — the compose-then-explore path, kept
	// as the cross-check oracle.
	BackendCompose
)

// Options configure the network-level analyses.
type Options struct {
	Backend   Backend
	Workers   int // explore frontier parallelism (≤ 0: GOMAXPROCS); verdicts never depend on it
	MaxStates int // explore joint-state budget (≤ 0: explore.DefaultMaxStates)
}

func engineOpts(o Options) explore.Options {
	return explore.Options{Workers: o.Workers, MaxStates: o.MaxStates}
}

// wrapEngineErr keeps the package's error contract across backends: a
// domain violation reported by the engine also satisfies
// errors.Is(err, success.ErrShape). Other engine errors (budget, bad
// index) pass through with their own sentinels.
func wrapEngineErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, explore.ErrShape) {
		return fmt.Errorf("%w: %w", ErrShape, err)
	}
	return err
}

// AnalyzeAcyclicOpts is AnalyzeAcyclic with an explicit backend choice.
func AnalyzeAcyclicOpts(n *network.Network, i int, o Options) (Verdict, error) {
	if o.Backend == BackendCompose {
		return analyzeAcyclicCompose(n, i)
	}
	res, err := explore.AnalyzeAcyclic(n, i, engineOpts(o))
	if err != nil {
		return Verdict{}, wrapEngineErr(err)
	}
	v := Verdict{Su: res.Su, Sc: res.Sc}
	q, err := n.Context(i, false)
	if err != nil {
		return Verdict{}, err
	}
	if v.Sa, err = AdversityAcyclic(n.Process(i), q); err != nil {
		return Verdict{}, err
	}
	return v, nil
}

// AnalyzeCyclicOpts is AnalyzeCyclic with an explicit backend choice.
func AnalyzeCyclicOpts(n *network.Network, i int, o Options) (Verdict, error) {
	if o.Backend == BackendCompose {
		return analyzeCyclicCompose(n, i)
	}
	res, err := explore.AnalyzeCyclic(n, i, engineOpts(o))
	if err != nil {
		return Verdict{}, wrapEngineErr(err)
	}
	v := Verdict{Su: res.Su, Sc: res.Sc}
	q, err := n.Context(i, true)
	if err != nil {
		return Verdict{}, err
	}
	if v.Sa, err = AdversityCyclic(n.Process(i), q); err != nil {
		return Verdict{}, err
	}
	return v, nil
}

// UnavoidableAcyclicNetOpts is UnavoidableAcyclicNet with an explicit
// backend choice.
func UnavoidableAcyclicNetOpts(n *network.Network, i int, o Options) (bool, error) {
	if o.Backend == BackendCompose {
		return unavoidableAcyclicNetCompose(n, i)
	}
	su, _, err := explore.UnavoidableAcyclic(n, i, engineOpts(o))
	return su, wrapEngineErr(err)
}

// CollaborationAcyclicNetOpts is CollaborationAcyclicNet with an explicit
// backend choice.
func CollaborationAcyclicNetOpts(n *network.Network, i int, o Options) (bool, error) {
	if o.Backend == BackendCompose {
		return collaborationAcyclicNetCompose(n, i)
	}
	sc, _, err := explore.CollaborationAcyclic(n, i, engineOpts(o))
	return sc, wrapEngineErr(err)
}

// UnavoidableCyclicNetOpts is UnavoidableCyclicNet with an explicit
// backend choice.
func UnavoidableCyclicNetOpts(n *network.Network, i int, o Options) (bool, error) {
	if o.Backend == BackendCompose {
		return unavoidableCyclicNetCompose(n, i)
	}
	su, _, err := explore.UnavoidableCyclic(n, i, engineOpts(o))
	return su, wrapEngineErr(err)
}

// CollaborationCyclicNetOpts is CollaborationCyclicNet with an explicit
// backend choice.
func CollaborationCyclicNetOpts(n *network.Network, i int, o Options) (bool, error) {
	if o.Backend == BackendCompose {
		return collaborationCyclicNetCompose(n, i)
	}
	sc, _, err := explore.CollaborationCyclic(n, i, engineOpts(o))
	return sc, wrapEngineErr(err)
}

// AnalyzeAllOpts is AnalyzeAll with an explicit backend choice threaded
// into every per-process analysis.
func AnalyzeAllOpts(ctx context.Context, n *network.Network, cyclic bool, workers int, o Options) ([]Result, error) {
	return analyzeAll(ctx, n, cyclic, workers, o)
}
