package success

import (
	"math/rand"
	"testing"

	"fspnet/internal/fsp"
	"fspnet/internal/fsptest"
	"fspnet/internal/network"
	"fspnet/internal/poss"
)

func aLoop(name string) *fsp.FSP {
	b := fsp.NewBuilder(name)
	s0 := b.State("0")
	b.Add(s0, "a", s0)
	return b.MustBuild()
}

func TestCyclicHappyLoop(t *testing.T) {
	// P and Q handshake on a forever: all three predicates hold.
	p, q := aLoop("P"), aLoop("Q")
	su, err := UnavoidableCyclic(p, q)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := AdversityCyclic(p, q)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := CollaborationCyclic(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if v := (Verdict{Su: su, Sa: sa, Sc: sc}); v != (Verdict{Su: true, Sa: true, Sc: true}) {
		t.Errorf("verdict = %v, want all true", v)
	}
}

func TestCyclicEscapingContext(t *testing.T) {
	// Q can defect to a leaf: blocking is possible, the adversary uses it,
	// but collaboration still yields infinitely many handshakes.
	p := aLoop("P")
	b := fsp.NewBuilder("Q")
	q0, q1 := b.State("0"), b.State("1")
	b.Add(q0, "a", q0)
	b.AddTau(q0, q1)
	q := b.MustBuild()

	su, err := UnavoidableCyclic(p, q)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := AdversityCyclic(p, q)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := CollaborationCyclic(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if v := (Verdict{Su: su, Sa: sa, Sc: sc}); v != (Verdict{Su: false, Sa: false, Sc: true}) {
		t.Errorf("verdict = %v, want S_u=false S_a=false S_c=true", v)
	}
}

func TestCyclicDivergentContext(t *testing.T) {
	// The raw context τ-loops; composed with the Section 4 ‖, the loop
	// becomes a defection leaf and blocks P.
	p := aLoop("P")
	b := fsp.NewBuilder("Q")
	q0, q1 := b.State("0"), b.State("1")
	b.Add(q0, "a", q0)
	b.AddTau(q0, q1)
	b.AddTau(q1, q1) // τ-loop: silent divergence
	q := fsp.AddDivergenceLeaf(b.MustBuild())

	su, err := UnavoidableCyclic(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if su {
		t.Error("S_u must fail: Q may diverge silently")
	}
	sc, err := CollaborationCyclic(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if !sc {
		t.Error("S_c must hold: cooperative Q keeps handshaking")
	}
}

func TestCyclicImplicationChain(t *testing.T) {
	r := rand.New(rand.NewSource(211))
	cfg := fsptest.DefaultConfig()
	cfg.MaxStates = 4
	for i := 0; i < 60; i++ {
		p, q := fsptest.TwoProcessClosedCyclic(r, cfg)
		q = fsp.AddDivergenceLeaf(q)
		su, err := UnavoidableCyclic(p, q)
		if err != nil {
			t.Fatal(err)
		}
		sa, err := AdversityCyclic(p, q)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := CollaborationCyclic(p, q)
		if err != nil {
			t.Fatal(err)
		}
		v := Verdict{Su: su, Sa: sa, Sc: sc}
		if !v.Consistent() {
			t.Fatalf("iter %d: %v violates S_u ⇒ S_a ⇒ S_c\nP=%s\nQ=%s",
				i, v, p.DOT(), q.DOT())
		}
	}
}

func TestAnalyzeCyclicNetwork(t *testing.T) {
	// Two processes handshaking on x and y alternately, forever.
	bp := fsp.NewBuilder("P")
	p0, p1 := bp.State("0"), bp.State("1")
	bp.Add(p0, "x", p1)
	bp.Add(p1, "y", p0)
	bq := fsp.NewBuilder("Q")
	q0, q1 := bq.State("0"), bq.State("1")
	bq.Add(q0, "x", q1)
	bq.Add(q1, "y", q0)
	n := network.MustNew(bp.MustBuild(), bq.MustBuild())
	v, err := AnalyzeCyclic(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v != (Verdict{Su: true, Sa: true, Sc: true}) {
		t.Errorf("verdict = %v, want all true", v)
	}
}

func TestCyclicRejectsTauP(t *testing.T) {
	b := fsp.NewBuilder("P")
	s0 := b.State("0")
	b.AddTau(s0, s0)
	b.Add(s0, "a", s0)
	p := b.MustBuild()
	q := aLoop("Q")
	if _, err := UnavoidableCyclic(p, q); err == nil {
		t.Error("τ-ful P must be rejected by the Section 4 analysis")
	}
	if _, err := CollaborationCyclic(p, q); err == nil {
		t.Error("τ-ful P must be rejected by the Section 4 analysis")
	}
}

// cyclicBlockingViaMarkers is an independent oracle for potential blocking
// in the cyclic setting, computed on the marker automata of package poss:
// blocking ⇔ some common string s admits markers ⟨X⟩ in P's and ⟨Y⟩ in Q's
// possibility DFA with X ∩ Y = ∅.
func cyclicBlockingViaMarkers(p, q *fsp.FSP) bool {
	dp, dq := poss.PossDFA(p), poss.PossDFA(q)
	// Shared real alphabet (markers excluded).
	var shared []fsp.Action
	for _, a := range dp.Alphabet() {
		if _, isMarker := poss.ParseMarker(a); isMarker {
			continue
		}
		for _, b := range dq.Alphabet() {
			if a == b {
				shared = append(shared, a)
			}
		}
	}
	type pair struct{ x, y int }
	start := pair{dp.Start(), dq.Start()}
	seen := map[pair]bool{start: true}
	queue := []pair{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		// Marker pairs with disjoint sets reachable here?
		for _, ma := range dp.Alphabet() {
			x, ok := poss.ParseMarker(ma)
			if !ok {
				continue
			}
			nx := dp.Step(cur.x, ma)
			if nx < 0 || !dp.Accepting(nx) {
				continue
			}
			for _, mb := range dq.Alphabet() {
				y, ok := poss.ParseMarker(mb)
				if !ok {
					continue
				}
				ny := dq.Step(cur.y, mb)
				if ny < 0 || !dq.Accepting(ny) {
					continue
				}
				if !actionsIntersect(x, y) {
					return true
				}
			}
		}
		for _, a := range shared {
			nx, ny := dp.Step(cur.x, a), dq.Step(cur.y, a)
			if nx < 0 || ny < 0 {
				continue
			}
			np := pair{nx, ny}
			if !seen[np] {
				seen[np] = true
				queue = append(queue, np)
			}
		}
	}
	return false
}

// TestUnavoidableCyclicMatchesMarkerOracle: the operational pair search
// must agree with the possibility-DFA formulation of the Section 4
// blocking definition.
func TestUnavoidableCyclicMatchesMarkerOracle(t *testing.T) {
	r := rand.New(rand.NewSource(1701))
	cfg := fsptest.DefaultConfig()
	cfg.MaxStates = 4
	for i := 0; i < 60; i++ {
		p, q := fsptest.TwoProcessClosedCyclic(r, cfg)
		q = fsp.AddDivergenceLeaf(q)
		su, err := UnavoidableCyclic(p, q)
		if err != nil {
			t.Fatal(err)
		}
		blocked := cyclicBlockingViaMarkers(p, q)
		if su == blocked {
			t.Fatalf("iter %d: operational S_u=%v but marker oracle blocking=%v\nP=%s\nQ=%s",
				i, su, blocked, p.DOT(), q.DOT())
		}
	}
}
