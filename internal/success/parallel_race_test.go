package success

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"fspnet/internal/fsptest"
)

// TestAnalyzeAllParallelRace exercises the concurrent success-predicate
// evaluator the way `make test-race` needs it exercised: one shared
// 8-process generated network, analyzed simultaneously from several
// t.Parallel subtests, each of which fans out its own worker pool. Any
// hidden write to shared FSP or network state — exactly what the
// frozenfsp analyzer polices statically — shows up here dynamically under
// the race detector. Each run must also reproduce the sequential verdicts:
// worker scheduling may not leak into results.
func TestAnalyzeAllParallelRace(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	n := fsptest.TreeNetwork(r, fsptest.NetConfig{
		Procs:          8,
		ActionsPerEdge: 2,
		MaxStates:      4,
		TauProb:        0.2,
	})
	if n.Len() != 8 {
		t.Fatalf("generated network has %d processes, want 8", n.Len())
	}

	baseline, err := AnalyzeAll(context.Background(), n, false, 1)
	if err != nil {
		t.Fatalf("sequential AnalyzeAll: %v", err)
	}

	for w := 0; w < 4; w++ {
		workers := w + 2
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			t.Parallel()
			results, err := AnalyzeAll(context.Background(), n, false, workers)
			if err != nil {
				t.Fatalf("AnalyzeAll(workers=%d): %v", workers, err)
			}
			if len(results) != len(baseline) {
				t.Fatalf("got %d results, want %d", len(results), len(baseline))
			}
			for i, res := range results {
				want := baseline[i]
				if res.Index != want.Index || res.Name != want.Name || res.Verdict != want.Verdict ||
					fmt.Sprint(res.Err) != fmt.Sprint(want.Err) {
					t.Errorf("process %d: parallel result %+v != sequential %+v", i, res, want)
				}
			}
		})
	}
}

// TestAnalyzeAllCancelRace races cancellation against the worker pool: the
// evaluator must drain cleanly without leaking goroutines writing results
// after return.
func TestAnalyzeAllCancelRace(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	n := fsptest.TreeNetwork(r, fsptest.NetConfig{
		Procs:          8,
		ActionsPerEdge: 2,
		MaxStates:      4,
		TauProb:        0.2,
	})
	for i := 0; i < 8; i++ {
		t.Run(fmt.Sprintf("cancel%d", i), func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if _, err := AnalyzeAll(ctx, n, false, 3); err == nil {
				t.Error("AnalyzeAll with canceled context returned nil error")
			}
		})
	}
}
