package success

import (
	"errors"
	"math/rand"
	"testing"

	"fspnet/internal/fsptest"
)

// TestBackendsAgreeAcyclic cross-checks the joint-vector engine against
// the compose-then-explore path on a corpus of random acyclic networks:
// both backends must return identical verdicts for every distinguished
// process.
func TestBackendsAgreeAcyclic(t *testing.T) {
	r := rand.New(rand.NewSource(601))
	for iter := 0; iter < 60; iter++ {
		cfg := fsptest.NetConfig{
			Procs:          1 + r.Intn(5),
			ActionsPerEdge: 1 + r.Intn(2),
			MaxStates:      3 + r.Intn(3),
			TauProb:        0.25,
		}
		n := fsptest.TreeNetwork(r, cfg)
		for i := 0; i < n.Len(); i++ {
			ve, errE := AnalyzeAcyclicOpts(n, i, Options{Backend: BackendExplore, Workers: 1 + iter%3})
			vc, errC := AnalyzeAcyclicOpts(n, i, Options{Backend: BackendCompose})
			// A distinguished process with τ-moves fails the S_a game's
			// Figure 4 assumption on both backends alike.
			if (errE == nil) != (errC == nil) {
				t.Fatalf("iter %d dist %d: explore err=%v compose err=%v", iter, i, errE, errC)
			}
			if errE != nil {
				continue
			}
			if ve != vc {
				t.Fatalf("iter %d dist %d: explore=%v compose=%v", iter, i, ve, vc)
			}
		}
	}
}

// TestBackendsAgreeCyclic does the same for cyclic networks under the
// Section 4 semantics, including error-kind agreement when the
// distinguished process violates the τ-free assumption.
func TestBackendsAgreeCyclic(t *testing.T) {
	r := rand.New(rand.NewSource(602))
	for iter := 0; iter < 60; iter++ {
		cfg := fsptest.NetConfig{
			Procs:          2 + r.Intn(4),
			ActionsPerEdge: 1 + r.Intn(2),
			MaxStates:      3 + r.Intn(3),
			TauProb:        0.3,
			Cyclic:         true,
		}
		n := fsptest.TreeNetwork(r, cfg)
		for i := 0; i < n.Len(); i++ {
			ve, errE := AnalyzeCyclicOpts(n, i, Options{Backend: BackendExplore, Workers: 1 + iter%3})
			vc, errC := AnalyzeCyclicOpts(n, i, Options{Backend: BackendCompose})
			if (errE == nil) != (errC == nil) {
				t.Fatalf("iter %d dist %d: explore err=%v compose err=%v", iter, i, errE, errC)
			}
			if errE != nil {
				if !errors.Is(errE, ErrShape) || !errors.Is(errC, ErrShape) {
					t.Fatalf("iter %d dist %d: error kinds differ: %v vs %v", iter, i, errE, errC)
				}
				continue
			}
			if ve != vc {
				t.Fatalf("iter %d dist %d: explore=%v compose=%v", iter, i, ve, vc)
			}
		}
	}
}
