// Package network implements networks of communicating FSPs
// (Definition 2): closed systems in which every action symbol is owned by
// exactly two processes, together with the communication graph C_N and its
// structural analysis (trees, rings, k-trees, biconnected components).
package network

import (
	"errors"
	"fmt"
	"sort"

	"fspnet/internal/fsp"
)

var (
	// ErrEmpty reports a network with no processes.
	ErrEmpty = errors.New("network: no processes")
	// ErrActionOwners reports an action not shared by exactly two
	// processes, violating Definition 2.
	ErrActionOwners = errors.New("network: action must belong to exactly two processes")
	// ErrBadPartition reports a partition that is not a valid k-tree
	// decomposition of the communication graph.
	ErrBadPartition = errors.New("network: invalid k-tree partition")
	// ErrBadIndex reports a process index out of range.
	ErrBadIndex = errors.New("network: process index out of range")
)

// Network is a closed system of communicating FSPs.
type Network struct {
	procs []*fsp.FSP
}

// New validates Definition 2 and returns the network: at least one process,
// and every action owned by exactly two processes.
func New(procs ...*fsp.FSP) (*Network, error) {
	if len(procs) == 0 {
		return nil, ErrEmpty
	}
	owners := make(map[fsp.Action][]int)
	for i, p := range procs {
		for _, a := range p.Alphabet() {
			owners[a] = append(owners[a], i)
		}
	}
	var actions []fsp.Action
	for a := range owners {
		actions = append(actions, a)
	}
	sort.Slice(actions, func(i, j int) bool { return actions[i] < actions[j] })
	for _, a := range actions {
		if len(owners[a]) != 2 {
			names := make([]string, len(owners[a]))
			for i, idx := range owners[a] {
				names[i] = procs[idx].Name()
			}
			return nil, fmt.Errorf("action %q owned by %v: %w", a, names, ErrActionOwners)
		}
	}
	return &Network{procs: append([]*fsp.FSP(nil), procs...)}, nil
}

// MustNew is New for static fixtures whose validity is established by the
// source text itself (tests, examples); it panics on error. Code paths
// that build networks from runtime inputs — generators, parsers, anything
// reachable from a CLI — must use New and return the error instead.
func MustNew(procs ...*fsp.FSP) *Network {
	n, err := New(procs...)
	if err != nil {
		panic(fmt.Sprintf("network.MustNew on a non-static definition (use New): %v", err))
	}
	return n
}

// Len returns the number of processes m.
func (n *Network) Len() int { return len(n.procs) }

// Process returns the i-th process.
func (n *Network) Process(i int) *fsp.FSP { return n.procs[i] }

// Processes returns a copy of the process list.
func (n *Network) Processes() []*fsp.FSP {
	return append([]*fsp.FSP(nil), n.procs...)
}

// Size returns Σᵢ |Kᵢ| + |Δᵢ|, the network size measure n of the paper.
func (n *Network) Size() int {
	total := 0
	for _, p := range n.procs {
		total += p.Size()
	}
	return total
}

// MaxClass returns the coarsest structural class among the processes
// (e.g. ClassTree when every process is linear or a tree).
func (n *Network) MaxClass() fsp.Class {
	c := fsp.ClassLinear
	for _, p := range n.procs {
		if pc := p.Classify(); pc > c {
			c = pc
		}
	}
	return c
}

// Global composes all processes with ‖ into the global FSP G, which has
// only τ-moves. The continuity rule drives G until it reaches a leaf.
func (n *Network) Global() (*fsp.FSP, error) {
	return fsp.ComposeAll(n.procs...)
}

// GlobalCyclic composes all processes with the Section 4 cyclic ‖.
func (n *Network) GlobalCyclic() (*fsp.FSP, error) {
	return fsp.ComposeAllCyclic(n.procs...)
}

// Context composes every process except i — the context Q that the
// distinguished process P = Pᵢ views as a single process. cyclic selects
// the Section 4 composition.
func (n *Network) Context(i int, cyclic bool) (*fsp.FSP, error) {
	if i < 0 || i >= len(n.procs) {
		return nil, fmt.Errorf("context %d of %d: %w", i, len(n.procs), ErrBadIndex)
	}
	if len(n.procs) == 1 {
		// A lone process has an empty context: a single-state FSP.
		b := fsp.NewBuilder("Q∅")
		b.State("0")
		return b.Build()
	}
	rest := make([]*fsp.FSP, 0, len(n.procs)-1)
	for j, p := range n.procs {
		if j != i {
			rest = append(rest, p)
		}
	}
	if cyclic {
		return fsp.ComposeAllCyclic(rest...)
	}
	return fsp.ComposeAll(rest...)
}

// ComposeClasses returns the network obtained by composing each class of
// the partition into a single process (the first step of Theorem 3 for
// k-trees). Intra-class actions are hidden by ‖; inter-class actions keep
// exactly two owners, so the result is again a valid network. classOf maps
// old process indices to new ones.
func (n *Network) ComposeClasses(partition [][]int, cyclic bool) (*Network, []int, error) {
	if err := n.CheckPartition(partition); err != nil {
		return nil, nil, err
	}
	classOf := make([]int, len(n.procs))
	var composed []*fsp.FSP
	for ci, class := range partition {
		ps := make([]*fsp.FSP, len(class))
		for i, idx := range class {
			ps[i] = n.procs[idx]
			classOf[idx] = ci
		}
		var (
			c   *fsp.FSP
			err error
		)
		if cyclic {
			c, err = fsp.ComposeAllCyclic(ps...)
		} else {
			c, err = fsp.ComposeAll(ps...)
		}
		if err != nil {
			return nil, nil, err
		}
		composed = append(composed, c.Rename(fmt.Sprintf("C%d", ci)))
	}
	out, err := New(composed...)
	if err != nil {
		return nil, nil, err
	}
	return out, classOf, nil
}

// CheckPartition verifies that partition is a partition of the process
// indices into non-empty classes.
func (n *Network) CheckPartition(partition [][]int) error {
	seen := make([]bool, len(n.procs))
	count := 0
	for _, class := range partition {
		if len(class) == 0 {
			return fmt.Errorf("empty class: %w", ErrBadPartition)
		}
		for _, idx := range class {
			if idx < 0 || idx >= len(n.procs) {
				return fmt.Errorf("index %d: %w", idx, ErrBadIndex)
			}
			if seen[idx] {
				return fmt.Errorf("index %d repeated: %w", idx, ErrBadPartition)
			}
			seen[idx] = true
			count++
		}
	}
	if count != len(n.procs) {
		return fmt.Errorf("partition covers %d of %d processes: %w",
			count, len(n.procs), ErrBadPartition)
	}
	return nil
}

// IsKTreePartition reports whether partition witnesses the network as a
// k-tree: every class has at most k processes and the quotient graph is a
// tree (Definition of k-tree in Section 2.1).
func (n *Network) IsKTreePartition(partition [][]int, k int) error {
	if err := n.CheckPartition(partition); err != nil {
		return err
	}
	classOf := make([]int, len(n.procs))
	for ci, class := range partition {
		if len(class) > k {
			return fmt.Errorf("class %d has %d > k=%d processes: %w",
				ci, len(class), k, ErrBadPartition)
		}
		for _, idx := range class {
			classOf[idx] = ci
		}
	}
	// Quotient graph on classes.
	g := n.Graph()
	q := newGraph(len(partition))
	for _, e := range g.Edges() {
		a, b := classOf[e[0]], classOf[e[1]]
		if a != b {
			q.addEdge(a, b)
		}
	}
	if !q.IsTree() {
		return fmt.Errorf("quotient graph is not a tree: %w", ErrBadPartition)
	}
	return nil
}

// RingPartition returns the Figure 8a folding of a ring 0,1,…,m−1 into a
// path of classes of size ≤ 2: {0}, {1, m−1}, {2, m−2}, …. The quotient of
// a ring network under this partition is a path (hence a tree), witnessing
// rings as 2-trees.
func RingPartition(m int) [][]int {
	if m <= 0 {
		return nil
	}
	partition := [][]int{{0}}
	for j := 1; j <= (m-1)/2; j++ {
		if j == m-j {
			partition = append(partition, []int{j})
		} else {
			partition = append(partition, []int{j, m - j})
		}
	}
	if m%2 == 0 && m >= 2 {
		partition = append(partition, []int{m / 2})
	}
	return partition
}
