package network

import (
	"errors"
	"strings"
	"testing"

	"fspnet/internal/fsp"
)

// chainNetwork builds m linear processes in a path: Pᵢ shares action xᵢ
// with Pᵢ₊₁.
func chainNetwork(m int) *Network {
	procs := make([]*fsp.FSP, m)
	for i := 0; i < m; i++ {
		var actions []fsp.Action
		if i > 0 {
			actions = append(actions, fsp.Action(rune('a'+i-1)))
		}
		if i < m-1 {
			actions = append(actions, fsp.Action(rune('a'+i)))
		}
		procs[i] = fsp.Linear(actionName("P", i), actions...)
	}
	return MustNew(procs...)
}

// ringNetwork builds m processes in a cycle: Pᵢ shares action xᵢ with
// Pᵢ₊₁ mod m.
func ringNetwork(m int) *Network {
	procs := make([]*fsp.FSP, m)
	for i := 0; i < m; i++ {
		left := fsp.Action(actionName("x", (i+m-1)%m))
		right := fsp.Action(actionName("x", i))
		procs[i] = fsp.Linear(actionName("P", i), left, right)
	}
	return MustNew(procs...)
}

func actionName(prefix string, i int) string {
	return prefix + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func TestNewValidation(t *testing.T) {
	if _, err := New(); !errors.Is(err, ErrEmpty) {
		t.Errorf("New() err = %v, want ErrEmpty", err)
	}
	// Action a owned once.
	if _, err := New(fsp.Linear("P", "a")); !errors.Is(err, ErrActionOwners) {
		t.Errorf("single owner err = %v, want ErrActionOwners", err)
	}
	// Action a owned three times.
	_, err := New(fsp.Linear("P1", "a"), fsp.Linear("P2", "a"), fsp.Linear("P3", "a"))
	if !errors.Is(err, ErrActionOwners) {
		t.Errorf("triple owner err = %v, want ErrActionOwners", err)
	}
	// Proper pairing passes.
	if _, err := New(fsp.Linear("P1", "a"), fsp.Linear("P2", "a")); err != nil {
		t.Errorf("valid network err = %v", err)
	}
}

func TestGraphShapes(t *testing.T) {
	chain := chainNetwork(4)
	g := chain.Graph()
	if !g.IsTree() || g.IsRing() {
		t.Errorf("chain: IsTree=%v IsRing=%v", g.IsTree(), g.IsRing())
	}
	if g.NumEdges() != 3 {
		t.Errorf("chain edges = %d, want 3", g.NumEdges())
	}
	ring := ringNetwork(5)
	rg := ring.Graph()
	if rg.IsTree() || !rg.IsRing() {
		t.Errorf("ring: IsTree=%v IsRing=%v", rg.IsTree(), rg.IsRing())
	}
	if lbl := rg.EdgeLabel(0, 1); len(lbl) != 1 || lbl[0] != "x00" {
		t.Errorf("EdgeLabel(0,1) = %v, want [x00]", lbl)
	}
	if rg.EdgeLabel(0, 2) != nil {
		t.Error("no edge between 0 and 2 in a 5-ring")
	}
	if got := rg.Degree(0); got != 2 {
		t.Errorf("ring degree = %d, want 2", got)
	}
}

func TestGlobalHasOnlyTauMoves(t *testing.T) {
	n := chainNetwork(3)
	g, err := n.Global()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Alphabet()) != 0 {
		t.Errorf("global alphabet = %v, want empty", g.Alphabet())
	}
}

func TestContext(t *testing.T) {
	n := chainNetwork(3)
	q, err := n.Context(0, false)
	if err != nil {
		t.Fatal(err)
	}
	// Context of P0 hides the P1–P2 action but keeps the P0–P1 action.
	if !q.HasAction("a") {
		t.Error("context must keep the action shared with P0")
	}
	if q.HasAction("b") {
		t.Error("context must hide the intra-context action")
	}
	if _, err := n.Context(9, false); !errors.Is(err, ErrBadIndex) {
		t.Errorf("err = %v, want ErrBadIndex", err)
	}
	single := MustNew(mustNoActions(t))
	q0, err := single.Context(0, false)
	if err != nil || q0.NumStates() != 1 {
		t.Errorf("singleton context: %v %v", q0, err)
	}
}

func mustNoActions(t *testing.T) *fsp.FSP {
	t.Helper()
	b := fsp.NewBuilder("P")
	b.State("0")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBiconnectedComponents(t *testing.T) {
	// Chain: every edge is its own block of size 2.
	g := chainNetwork(4).Graph()
	blocks := g.BiconnectedComponents()
	if len(blocks) != 3 {
		t.Fatalf("chain blocks = %v, want 3 bridges", blocks)
	}
	if g.MaxBlockSize() != 2 {
		t.Errorf("chain MaxBlockSize = %d, want 2", g.MaxBlockSize())
	}
	// Ring: a single block containing everything.
	rg := ringNetwork(5).Graph()
	rblocks := rg.BiconnectedComponents()
	if len(rblocks) != 1 || len(rblocks[0]) != 5 {
		t.Fatalf("ring blocks = %v, want one block of 5", rblocks)
	}
	if rg.MaxBlockSize() != 5 {
		t.Errorf("ring MaxBlockSize = %d, want 5", rg.MaxBlockSize())
	}
}

func TestBlockCutPartition(t *testing.T) {
	n := chainNetwork(5)
	g := n.Graph()
	partition := g.BlockCutPartition()
	if err := n.IsKTreePartition(partition, g.MaxBlockSize()); err != nil {
		t.Errorf("block-cut partition rejected: %v", err)
	}
}

func TestIsKTreePartitionErrors(t *testing.T) {
	n := chainNetwork(3)
	if err := n.IsKTreePartition([][]int{{0, 1, 2}}, 2); !errors.Is(err, ErrBadPartition) {
		t.Errorf("oversized class err = %v", err)
	}
	if err := n.IsKTreePartition([][]int{{0}, {1}}, 1); !errors.Is(err, ErrBadPartition) {
		t.Errorf("missing index err = %v", err)
	}
	if err := n.IsKTreePartition([][]int{{0}, {0}, {1}, {2}}, 1); !errors.Is(err, ErrBadPartition) {
		t.Errorf("repeated index err = %v", err)
	}
	if err := n.IsKTreePartition([][]int{{0}, {1}, {2}}, 1); err != nil {
		t.Errorf("chain is a 1-tree: %v", err)
	}
}

// TestFigure8Ring checks the Figure 8a transformation: folding a ring into
// a path of pairwise-composed processes yields a valid 2-tree whose
// quotient is a tree, and composing the classes gives a tree network.
func TestFigure8Ring(t *testing.T) {
	for _, m := range []int{3, 4, 5, 6, 7, 8} {
		n := ringNetwork(m)
		partition := RingPartition(m)
		if err := n.IsKTreePartition(partition, 2); err != nil {
			t.Fatalf("m=%d: RingPartition rejected: %v", m, err)
		}
		folded, classOf, err := n.ComposeClasses(partition, false)
		if err != nil {
			t.Fatalf("m=%d: ComposeClasses: %v", m, err)
		}
		if len(classOf) != m {
			t.Fatalf("m=%d: classOf length %d", m, len(classOf))
		}
		if !folded.Graph().IsTree() {
			t.Errorf("m=%d: folded network is not a tree", m)
		}
	}
}

func TestComposeClassesKeepsNetworkValid(t *testing.T) {
	n := chainNetwork(6)
	partition := [][]int{{0, 1}, {2, 3}, {4, 5}}
	folded, _, err := n.ComposeClasses(partition, false)
	if err != nil {
		t.Fatal(err)
	}
	if folded.Len() != 3 {
		t.Errorf("folded Len = %d, want 3", folded.Len())
	}
	if !folded.Graph().IsTree() {
		t.Error("folded chain must remain a tree")
	}
}

func TestMaxClassAndSize(t *testing.T) {
	n := chainNetwork(3)
	if got := n.MaxClass(); got != fsp.ClassLinear {
		t.Errorf("MaxClass = %v, want linear", got)
	}
	if n.Size() <= 0 {
		t.Error("Size must be positive")
	}
}

func TestRingPartitionSmall(t *testing.T) {
	tests := []struct {
		m    int
		want int // number of classes
	}{
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{5, 3},
		{6, 4},
	}
	for _, tt := range tests {
		got := RingPartition(tt.m)
		if len(got) != tt.want {
			t.Errorf("RingPartition(%d) = %v, want %d classes", tt.m, got, tt.want)
		}
		total := 0
		for _, c := range got {
			if len(c) > 2 {
				t.Errorf("RingPartition(%d): class %v exceeds size 2", tt.m, c)
			}
			total += len(c)
		}
		if total != tt.m {
			t.Errorf("RingPartition(%d) covers %d nodes", tt.m, total)
		}
	}
}

func TestNetworkDOT(t *testing.T) {
	n := chainNetwork(3)
	dot := n.DOT()
	for _, want := range []string{"graph C_N", "--", `label="{a}"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}
