package network

import (
	"fmt"
	"sort"
	"strings"

	"fspnet/internal/fsp"
)

// Graph is the labeled undirected communication graph C_N: one node per
// process, an edge {i, j} iff Σᵢ ∩ Σⱼ ≠ ∅, labeled by the shared alphabet.
type Graph struct {
	n      int
	adj    [][]int // sorted neighbor lists, no duplicates, no self-loops
	labels map[[2]int][]fsp.Action
}

// Graph builds C_N for the network.
func (n *Network) Graph() *Graph {
	g := newGraph(len(n.procs))
	g.labels = make(map[[2]int][]fsp.Action)
	for i := 0; i < len(n.procs); i++ {
		for j := i + 1; j < len(n.procs); j++ {
			shared := fsp.SharedActions(n.procs[i], n.procs[j])
			if len(shared) == 0 {
				continue
			}
			g.addEdge(i, j)
			g.labels[[2]int{i, j}] = shared
		}
	}
	return g
}

func newGraph(n int) *Graph {
	return &Graph{n: n, adj: make([][]int, n)}
}

func (g *Graph) addEdge(a, b int) {
	if a == b {
		return
	}
	if a > b {
		a, b = b, a
	}
	for _, x := range g.adj[a] {
		if x == b {
			return
		}
	}
	g.adj[a] = append(g.adj[a], b)
	g.adj[b] = append(g.adj[b], a)
	sort.Ints(g.adj[a])
	sort.Ints(g.adj[b])
}

// NumNodes returns the number of processes.
func (g *Graph) NumNodes() int { return g.n }

// Degree returns the degree of node i.
func (g *Graph) Degree(i int) int { return len(g.adj[i]) }

// Neighbors returns the sorted neighbors of i; the slice is shared.
func (g *Graph) Neighbors(i int) []int { return g.adj[i] }

// EdgeLabel returns Σᵢ ∩ Σⱼ for the edge {i, j}, or nil.
func (g *Graph) EdgeLabel(i, j int) []fsp.Action {
	if i > j {
		i, j = j, i
	}
	return g.labels[[2]int{i, j}]
}

// Edges returns all edges {i, j} with i < j in sorted order.
func (g *Graph) Edges() [][2]int {
	var es [][2]int
	for a := 0; a < g.n; a++ {
		for _, b := range g.adj[a] {
			if a < b {
				es = append(es, [2]int{a, b})
			}
		}
	}
	return es
}

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.Edges()) }

// Connected reports whether the graph is connected (vacuously true for a
// single node).
func (g *Graph) Connected() bool {
	if g.n == 0 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == g.n
}

// IsTree reports whether C_N is a tree: connected with n−1 edges.
func (g *Graph) IsTree() bool {
	return g.Connected() && g.NumEdges() == g.n-1
}

// IsRing reports whether C_N is a simple cycle through all nodes.
func (g *Graph) IsRing() bool {
	if g.n < 3 || !g.Connected() {
		return false
	}
	for i := 0; i < g.n; i++ {
		if len(g.adj[i]) != 2 {
			return false
		}
	}
	return true
}

// BiconnectedComponents returns the node sets of the biconnected components
// (blocks) of the graph, each sorted, in discovery order. Bridges form
// two-node blocks; isolated nodes form singleton blocks.
func (g *Graph) BiconnectedComponents() [][]int {
	var (
		blocks  [][]int
		num     = make([]int, g.n)
		low     = make([]int, g.n)
		counter = 0
		stack   [][2]int // edge stack
	)
	for i := range num {
		num[i] = -1
	}
	type frame struct {
		v, parent, i int
	}
	popBlock := func(u, v int) {
		nodes := map[int]bool{}
		for len(stack) > 0 {
			e := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			nodes[e[0]] = true
			nodes[e[1]] = true
			if (e[0] == u && e[1] == v) || (e[0] == v && e[1] == u) {
				break
			}
		}
		var b []int
		for x := range nodes {
			b = append(b, x)
		}
		sort.Ints(b)
		blocks = append(blocks, b)
	}
	for root := 0; root < g.n; root++ {
		if num[root] != -1 {
			continue
		}
		if len(g.adj[root]) == 0 {
			blocks = append(blocks, []int{root})
			num[root] = counter
			counter++
			continue
		}
		fstack := []frame{{root, -1, 0}}
		num[root], low[root] = counter, counter
		counter++
		for len(fstack) > 0 {
			f := &fstack[len(fstack)-1]
			if f.i < len(g.adj[f.v]) {
				w := g.adj[f.v][f.i]
				f.i++
				if w == f.parent {
					continue
				}
				if num[w] == -1 {
					stack = append(stack, [2]int{f.v, w})
					num[w], low[w] = counter, counter
					counter++
					fstack = append(fstack, frame{w, f.v, 0})
				} else if num[w] < num[f.v] {
					stack = append(stack, [2]int{f.v, w})
					if num[w] < low[f.v] {
						low[f.v] = num[w]
					}
				}
				continue
			}
			// Done with f.v; propagate low and detect articulation.
			child := f.v
			fstack = fstack[:len(fstack)-1]
			if len(fstack) == 0 {
				break
			}
			p := &fstack[len(fstack)-1]
			if low[child] < low[p.v] {
				low[p.v] = low[child]
			}
			if low[child] >= num[p.v] {
				popBlock(p.v, child)
			}
		}
	}
	return blocks
}

// MaxBlockSize returns the size (node count) of the largest biconnected
// component — the k for which the paper's "largest biconnected component
// has size k ⇒ k-tree" observation applies.
func (g *Graph) MaxBlockSize() int {
	max := 0
	for _, b := range g.BiconnectedComponents() {
		if len(b) > max {
			max = len(b)
		}
	}
	return max
}

// BlockCutPartition returns a k-tree partition derived from the block–cut
// tree: blocks are visited in BFS order from block 0, and each class is a
// block minus the nodes already assigned to earlier classes. For a
// connected graph the quotient over this partition is a tree and every
// class has at most MaxBlockSize nodes.
func (g *Graph) BlockCutPartition() [][]int {
	blocks := g.BiconnectedComponents()
	if len(blocks) == 0 {
		return nil
	}
	// Build block adjacency through shared cut vertices.
	byNode := make(map[int][]int)
	for bi, b := range blocks {
		for _, v := range b {
			byNode[v] = append(byNode[v], bi)
		}
	}
	visited := make([]bool, len(blocks))
	assigned := make([]bool, g.n)
	var partition [][]int
	var order []int
	for start := 0; start < len(blocks); start++ {
		if visited[start] {
			continue
		}
		visited[start] = true
		order = append(order[:0], start)
		for head := 0; head < len(order); head++ {
			bi := order[head]
			var class []int
			for _, v := range blocks[bi] {
				if !assigned[v] {
					assigned[v] = true
					class = append(class, v)
				}
			}
			if len(class) > 0 {
				partition = append(partition, class)
			}
			for _, v := range blocks[bi] {
				for _, nb := range byNode[v] {
					if !visited[nb] {
						visited[nb] = true
						order = append(order, nb)
					}
				}
			}
		}
	}
	return partition
}

// DOT renders the communication graph C_N in Graphviz format, labeling
// each edge with its shared alphabet.
func (n *Network) DOT() string {
	var sb strings.Builder
	sb.WriteString("graph C_N {\n  layout=circo;\n")
	for i := 0; i < len(n.procs); i++ {
		fmt.Fprintf(&sb, "  n%d [label=%q];\n", i, n.procs[i].Name())
	}
	g := n.Graph()
	for _, e := range g.Edges() {
		fmt.Fprintf(&sb, "  n%d -- n%d [label=%q];\n",
			e[0], e[1], fsp.ActionSetString(g.EdgeLabel(e[0], e[1])))
	}
	sb.WriteString("}\n")
	return sb.String()
}
