package lang

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"fspnet/internal/fsp"
	"fspnet/internal/fsptest"
)

// genProc draws a random (possibly cyclic) FSP for quick.Check.
type genProc struct {
	P *fsp.FSP
}

// Generate implements quick.Generator.
func (genProc) Generate(r *rand.Rand, size int) reflect.Value {
	cfg := fsptest.DefaultConfig()
	cfg.MaxStates = 2 + size%6
	cfg.Cyclic = r.Intn(2) == 0
	return reflect.ValueOf(genProc{P: fsptest.Gen(r, "G", cfg)})
}

var quickCfg = &quick.Config{MaxCount: 100}

// TestQuickEquivalenceIsEquivalence: reflexive and symmetric on random
// pairs (transitivity is exercised via minimization below).
func TestQuickEquivalenceIsEquivalence(t *testing.T) {
	f := func(a, b genProc) bool {
		da, db := LangDFA(a.P), LangDFA(b.P)
		if !Equivalent(da, da) || !Equivalent(db, db) {
			return false
		}
		return Equivalent(da, db) == Equivalent(db, da)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickMinimizeSoundAndMinimal: Minimize preserves the language, never
// grows, and is idempotent in size.
func TestQuickMinimizeSoundAndMinimal(t *testing.T) {
	f := func(g genProc) bool {
		d := LangDFA(g.P)
		m := d.Minimize()
		if !Equivalent(d, m) || m.NumStates() > d.NumStates() {
			return false
		}
		return m.Minimize().NumStates() == m.NumStates()
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickInclusionAntisymmetry: mutual inclusion coincides with
// equivalence.
func TestQuickInclusionAntisymmetry(t *testing.T) {
	f := func(a, b genProc) bool {
		da, db := LangDFA(a.P), LangDFA(b.P)
		both := Included(da, db) && Included(db, da)
		return both == Equivalent(da, db)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickIntersectionSound: membership in the intersection DFA equals
// membership in both operands, on random sample strings.
func TestQuickIntersectionSound(t *testing.T) {
	f := func(a, b genProc, raw []uint8) bool {
		da, db := LangDFA(a.P), LangDFA(b.P)
		in := IntersectDFA(da, db)
		actions := []fsp.Action{"a", "b", "c"}
		s := make([]fsp.Action, 0, len(raw)%6)
		for i := 0; i < len(raw)%6; i++ {
			s = append(s, actions[int(raw[i])%len(actions)])
		}
		return in.Accepts(s) == (da.Accepts(s) && db.Accepts(s))
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickPrefixClosed: Lang(P) is prefix-closed — acceptance of a string
// implies acceptance of every prefix.
func TestQuickPrefixClosed(t *testing.T) {
	f := func(g genProc, raw []uint8) bool {
		d := LangDFA(g.P)
		actions := g.P.Alphabet()
		if len(actions) == 0 {
			return d.Accepts(nil)
		}
		s := make([]fsp.Action, 0, len(raw)%6)
		for i := 0; i < len(raw)%6; i++ {
			s = append(s, actions[int(raw[i])%len(actions)])
		}
		if !d.Accepts(s) {
			return true
		}
		for k := 0; k <= len(s); k++ {
			if !d.Accepts(s[:k]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickFiniteVsInfinite: LangFinite agrees with the presence of a
// productive cycle through a pumping check — for finite languages, no
// accepted string may be longer than the DFA's state count times two.
func TestQuickFiniteVsInfinite(t *testing.T) {
	f := func(g genProc) bool {
		d := LangDFA(g.P)
		if d.Infinite() {
			return true // pumping checked implicitly by Infinite's SCC logic
		}
		// Finite: depth-bounded exploration must terminate below the state
		// count (no useful cycles).
		limit := d.NumStates() + 1
		var longest func(s, depth int) bool
		longest = func(s, depth int) bool {
			if depth > limit {
				return false
			}
			for _, nxt := range d.delta[s] {
				if nxt >= 0 && !longest(int(nxt), depth+1) {
					return false
				}
			}
			return true
		}
		return longest(d.start, 0)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}
