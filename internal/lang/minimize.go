package lang

import "sort"

// Minimize returns the minimal DFA accepting the same language, computed by
// completing the automaton with an explicit dead state, running Hopcroft's
// partition refinement, and dropping the dead class again. The result's
// state numbering is canonical (BFS order from the start), so two calls on
// language-equal DFAs over the same alphabet yield identical structures.
func (d *DFA) Minimize() *DFA {
	n := d.NumStates() + 1 // +1 explicit dead state
	dead := n - 1
	k := len(d.alphabet)

	// Completed transition function and its inverse.
	delta := make([][]int32, n)
	rev := make([][][]int32, n) // rev[target][symbol] = sources
	for s := 0; s < n; s++ {
		delta[s] = make([]int32, k)
		rev[s] = make([][]int32, k)
	}
	for s := 0; s < n; s++ {
		for c := 0; c < k; c++ {
			t := int32(dead)
			if s != dead && d.delta[s][c] >= 0 {
				t = d.delta[s][c]
			}
			delta[s][c] = t
			rev[t][c] = append(rev[t][c], int32(s))
		}
	}

	// Hopcroft refinement. partition: class id per state.
	class := make([]int, n)
	var accepting, rejecting []int32
	for s := 0; s < n; s++ {
		if s != dead && d.accept[s] {
			class[s] = 1
			accepting = append(accepting, int32(s))
		} else {
			rejecting = append(rejecting, int32(s))
		}
	}
	classes := [][]int32{rejecting}
	if len(accepting) > 0 {
		classes = append(classes, accepting)
	} else {
		for s := range class {
			class[s] = 0
		}
	}

	type work struct {
		class, sym int
	}
	var worklist []work
	inWork := make(map[work]bool)
	push := func(c, sym int) {
		w := work{c, sym}
		if !inWork[w] {
			inWork[w] = true
			worklist = append(worklist, w)
		}
	}
	for c := range classes {
		for sym := 0; sym < k; sym++ {
			push(c, sym)
		}
	}

	for len(worklist) > 0 {
		w := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		delete(inWork, w)

		// X = states with a `w.sym` transition into class w.class.
		var x []int32
		for _, t := range classes[w.class] {
			x = append(x, rev[t][w.sym]...)
		}
		if len(x) == 0 {
			continue
		}
		inX := make(map[int32]bool, len(x))
		for _, s := range x {
			inX[s] = true
		}
		// Group members of X by their current class and split.
		touched := make(map[int]bool)
		for _, s := range x {
			touched[class[s]] = true
		}
		tc := make([]int, 0, len(touched))
		for c := range touched {
			tc = append(tc, c)
		}
		sort.Ints(tc)
		for _, c := range tc {
			var in, out []int32
			for _, s := range classes[c] {
				if inX[s] {
					in = append(in, s)
				} else {
					out = append(out, s)
				}
			}
			if len(in) == 0 || len(out) == 0 {
				continue
			}
			// Replace class c by `out`; new class gets `in`.
			classes[c] = out
			newID := len(classes)
			classes = append(classes, in)
			for _, s := range in {
				class[s] = newID
			}
			for sym := 0; sym < k; sym++ {
				if inWork[work{c, sym}] {
					push(newID, sym)
				} else if len(in) <= len(out) {
					push(newID, sym)
				} else {
					push(c, sym)
				}
			}
		}
	}

	// Assemble the quotient, renumbering classes in BFS order from the
	// start class and omitting the dead class.
	deadClass := class[dead]
	renum := make(map[int]int)
	var order []int
	startClass := class[d.start]
	if startClass != deadClass {
		renum[startClass] = 0
		order = append(order, startClass)
	}
	for head := 0; head < len(order); head++ {
		c := order[head]
		repr := classes[c][0]
		for sym := 0; sym < k; sym++ {
			t := class[delta[repr][sym]]
			if t == deadClass {
				continue
			}
			if _, ok := renum[t]; !ok {
				renum[t] = len(order)
				order = append(order, t)
			}
		}
	}

	out := &DFA{alphabet: d.alphabet, start: 0}
	if len(order) == 0 {
		// Language is empty: a single rejecting state.
		out.delta = [][]int32{make([]int32, k)}
		for c := 0; c < k; c++ {
			out.delta[0][c] = -1
		}
		out.accept = []bool{false}
		return out
	}
	out.delta = make([][]int32, len(order))
	out.accept = make([]bool, len(order))
	for i, c := range order {
		row := make([]int32, k)
		repr := classes[c][0]
		for sym := 0; sym < k; sym++ {
			t := class[delta[repr][sym]]
			if t == deadClass {
				row[sym] = -1
			} else {
				row[sym] = int32(renum[t])
			}
		}
		out.delta[i] = row
		out.accept[i] = int(repr) != dead && d.accept[repr]
	}
	return out
}
