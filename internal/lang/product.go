package lang

import (
	"fspnet/internal/fsp"
)

// IntersectDFA returns a DFA for Lang(a) ∩ Lang(b) over the intersection
// of the two alphabets (symbols outside either alphabet cannot occur in a
// common string).
func IntersectDFA(a, b *DFA) *DFA {
	var alpha []fsp.Action
	for _, sym := range a.alphabet {
		if b.symbolIndex(sym) >= 0 {
			alpha = append(alpha, sym)
		}
	}
	out := &DFA{alphabet: alpha}
	type pair struct{ x, y int }
	index := map[pair]int{}
	var queue []pair
	add := func(p pair) int {
		if id, ok := index[p]; ok {
			return id
		}
		id := len(out.delta)
		index[p] = id
		row := make([]int32, len(alpha))
		for i := range row {
			row[i] = -1
		}
		out.delta = append(out.delta, row)
		out.accept = append(out.accept, a.accept[p.x] && b.accept[p.y])
		queue = append(queue, p)
		return id
	}
	out.start = add(pair{a.start, b.start})
	for head := 0; head < len(queue); head++ {
		p := queue[head]
		for k, sym := range alpha {
			na := a.delta[p.x][a.symbolIndex(sym)]
			nb := b.delta[p.y][b.symbolIndex(sym)]
			if na < 0 || nb < 0 {
				continue
			}
			out.delta[head][k] = int32(add(pair{int(na), int(nb)}))
		}
	}
	return out
}

// LangDFA returns the DFA of Lang(p) — the prefix-closed language of all
// strings some state is reachable by (every state accepting).
func LangDFA(p *fsp.FSP) *DFA { return Determinize(p, AcceptingAll) }

// LangEquivalent reports Lang(p) = Lang(q).
func LangEquivalent(p, q *fsp.FSP) bool {
	return Equivalent(LangDFA(p), LangDFA(q))
}

// LangIncluded reports Lang(p) ⊆ Lang(q).
func LangIncluded(p, q *fsp.FSP) bool {
	return Included(LangDFA(p), LangDFA(q))
}

// LangFinite reports whether Lang(p) is finite.
func LangFinite(p *fsp.FSP) bool { return !LangDFA(p).Infinite() }

// LangIntersectionInfinite reports whether Lang(p) ∩ Lang(q) is infinite —
// the cyclic success-with-collaboration predicate of Section 4.
func LangIntersectionInfinite(p, q *fsp.FSP) bool {
	return IntersectDFA(LangDFA(p), LangDFA(q)).Infinite()
}
