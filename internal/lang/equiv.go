package lang

import (
	"sort"

	"fspnet/internal/fsp"
	"fspnet/internal/queue"
)

// Equivalent reports whether two DFAs accept the same language. The check
// runs a synchronized BFS over the pair graph (the Hopcroft–Karp
// equivalence test without the union-find refinement), using the union of
// the two alphabets and treating missing transitions as a dead state.
func Equivalent(a, b *DFA) bool {
	alpha := unionAlphabet(a.alphabet, b.alphabet)
	type pair struct{ x, y int } // -1 encodes the dead state
	seen := map[pair]bool{{a.start, b.start}: true}
	var work queue.Queue[pair]
	work.Push(pair{a.start, b.start})
	acc := func(d *DFA, s int) bool { return s >= 0 && d.accept[s] }
	step := func(d *DFA, s int, sym fsp.Action) int {
		if s < 0 {
			return -1
		}
		k := d.symbolIndex(sym)
		if k < 0 {
			return -1
		}
		return int(d.delta[s][k])
	}
	for {
		p, ok := work.Pop()
		if !ok {
			break
		}
		if acc(a, p.x) != acc(b, p.y) {
			return false
		}
		if p.x < 0 && p.y < 0 {
			continue
		}
		for _, sym := range alpha {
			np := pair{step(a, p.x, sym), step(b, p.y, sym)}
			if np.x < 0 && np.y < 0 {
				continue
			}
			if !seen[np] {
				seen[np] = true
				work.Push(np)
			}
		}
	}
	return true
}

// Included reports whether Lang(a) ⊆ Lang(b).
func Included(a, b *DFA) bool {
	alpha := unionAlphabet(a.alphabet, b.alphabet)
	type pair struct{ x, y int }
	seen := map[pair]bool{{a.start, b.start}: true}
	var work queue.Queue[pair]
	work.Push(pair{a.start, b.start})
	step := func(d *DFA, s int, sym fsp.Action) int {
		if s < 0 {
			return -1
		}
		k := d.symbolIndex(sym)
		if k < 0 {
			return -1
		}
		return int(d.delta[s][k])
	}
	for {
		p, ok := work.Pop()
		if !ok {
			break
		}
		if p.x >= 0 && a.accept[p.x] && !(p.y >= 0 && b.accept[p.y]) {
			return false
		}
		if p.x < 0 {
			continue // nothing left of Lang(a) along this branch
		}
		for _, sym := range alpha {
			np := pair{step(a, p.x, sym), step(b, p.y, sym)}
			if np.x < 0 {
				continue
			}
			if !seen[np] {
				seen[np] = true
				work.Push(np)
			}
		}
	}
	return true
}

func unionAlphabet(a, b []fsp.Action) []fsp.Action {
	out := make([]fsp.Action, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 0
	for i, x := range out {
		if i == 0 || x != out[w-1] {
			out[w] = x
			w++
		}
	}
	return out[:w]
}
