package lang

import (
	"math/rand"
	"testing"

	"fspnet/internal/fsp"
	"fspnet/internal/fsptest"
)

func mustFSP(t *testing.T, build func(b *fsp.Builder)) *fsp.FSP {
	t.Helper()
	b := fsp.NewBuilder("P")
	build(b)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDeterminizeAcceptsLang(t *testing.T) {
	// 0 -τ-> 1 -a-> 2, 0 -b-> 2, 2 -a-> 0 (cyclic, nondeterministic via τ).
	p := mustFSP(t, func(b *fsp.Builder) {
		s0, s1, s2 := b.State("0"), b.State("1"), b.State("2")
		b.AddTau(s0, s1)
		b.Add(s1, "a", s2)
		b.Add(s0, "b", s2)
		b.Add(s2, "a", s0)
	})
	d := LangDFA(p)
	tests := []struct {
		give []fsp.Action
		want bool
	}{
		{nil, true},
		{[]fsp.Action{"a"}, true},
		{[]fsp.Action{"b"}, true},
		{[]fsp.Action{"a", "a"}, true},
		{[]fsp.Action{"a", "a", "b"}, true},
		{[]fsp.Action{"b", "b"}, false},
		{[]fsp.Action{"c"}, false},
	}
	for _, tt := range tests {
		if got := d.Accepts(tt.give); got != tt.want {
			t.Errorf("Accepts(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestDeterminizeMatchesNFAMembership(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	cfg := fsptest.DefaultConfig()
	cfg.Cyclic = true
	actions := cfg.Actions
	for i := 0; i < 40; i++ {
		p := fsptest.Gen(r, "P", cfg)
		d := LangDFA(p)
		for j := 0; j < 25; j++ {
			s := make([]fsp.Action, r.Intn(5))
			for k := range s {
				s[k] = actions[r.Intn(len(actions))]
			}
			if got, want := d.Accepts(s), p.Accepts(s); got != want {
				t.Fatalf("iter %d: DFA.Accepts(%v)=%v, NFA=%v", i, s, got, want)
			}
		}
	}
}

func TestMinimizePreservesLanguage(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	cfg := fsptest.DefaultConfig()
	cfg.Cyclic = true
	for i := 0; i < 50; i++ {
		p := fsptest.Gen(r, "P", cfg)
		d := LangDFA(p)
		m := d.Minimize()
		if !Equivalent(d, m) {
			t.Fatalf("iter %d: Minimize changed the language", i)
		}
		if m.NumStates() > d.NumStates() {
			t.Fatalf("iter %d: Minimize grew the DFA: %d > %d", i, m.NumStates(), d.NumStates())
		}
		// Minimizing twice is a fixpoint in size.
		if mm := m.Minimize(); mm.NumStates() != m.NumStates() {
			t.Fatalf("iter %d: Minimize not idempotent: %d vs %d", i, mm.NumStates(), m.NumStates())
		}
	}
}

func TestMinimizeCanonical(t *testing.T) {
	// Two structurally different FSPs with the same language {ε,a,ab}.
	p := mustFSP(t, func(b *fsp.Builder) {
		s0, s1, s2 := b.State("0"), b.State("1"), b.State("2")
		b.Add(s0, "a", s1)
		b.Add(s1, "b", s2)
	})
	q := mustFSP(t, func(b *fsp.Builder) {
		s0, s1a, s1b, s2 := b.State("0"), b.State("1a"), b.State("1b"), b.State("2")
		b.Add(s0, "a", s1a)
		b.Add(s0, "a", s1b)
		b.Add(s1a, "b", s2)
	})
	mp := LangDFA(p).Minimize()
	mq := LangDFA(q).Minimize()
	if mp.NumStates() != mq.NumStates() {
		t.Errorf("minimal sizes differ: %d vs %d", mp.NumStates(), mq.NumStates())
	}
	if !Equivalent(mp, mq) {
		t.Error("languages must be equal")
	}
}

func TestEquivalentAndIncluded(t *testing.T) {
	p := fsp.Linear("P", "a", "b")
	q := fsp.Linear("Q", "a", "b")
	shorter := fsp.Linear("S", "a")
	other := fsp.Linear("O", "a", "c")

	if !LangEquivalent(p, q) {
		t.Error("identical chains must be Lang-equivalent")
	}
	if LangEquivalent(p, shorter) {
		t.Error("prefix chain is not Lang-equivalent")
	}
	if !LangIncluded(shorter, p) {
		t.Error("Lang(shorter) ⊆ Lang(p)")
	}
	if LangIncluded(p, shorter) {
		t.Error("Lang(p) ⊄ Lang(shorter)")
	}
	if LangEquivalent(p, other) {
		t.Error("ab-chain vs ac-chain must differ")
	}
}

func TestEmptyAndInfinite(t *testing.T) {
	finite := fsp.Linear("F", "a", "b")
	if LangDFA(finite).Empty() {
		t.Error("Lang always contains ε, never empty")
	}
	if !LangFinite(finite) {
		t.Error("acyclic process has finite language")
	}
	loop := mustFSP(t, func(b *fsp.Builder) {
		s0 := b.State("0")
		b.Add(s0, "a", s0)
	})
	if LangFinite(loop) {
		t.Error("a* is infinite")
	}
	// A cyclic graph whose cycle is pure τ has a finite language.
	tauLoop := mustFSP(t, func(b *fsp.Builder) {
		s0, s1 := b.State("0"), b.State("1")
		b.AddTau(s0, s0)
		b.Add(s0, "a", s1)
	})
	if !LangFinite(tauLoop) {
		t.Error("τ-loop does not make the language infinite")
	}
}

func TestIntersectDFA(t *testing.T) {
	// Lang(p) = prefixes of a·b, Lang(q) = prefixes of a·c ∪ a·b? Build
	// q = a then (b or c): intersection = {ε, a, ab}.
	p := fsp.Linear("P", "a", "b")
	q := fsp.TreeFromPaths("Q", []fsp.Action{"a", "b"}, []fsp.Action{"a", "c"})
	in := IntersectDFA(LangDFA(p), LangDFA(q))
	tests := []struct {
		give []fsp.Action
		want bool
	}{
		{nil, true},
		{[]fsp.Action{"a"}, true},
		{[]fsp.Action{"a", "b"}, true},
		{[]fsp.Action{"a", "c"}, false},
	}
	for _, tt := range tests {
		if got := in.Accepts(tt.give); got != tt.want {
			t.Errorf("∩ Accepts(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestLangIntersectionInfinite(t *testing.T) {
	loopA := mustFSP(t, func(b *fsp.Builder) {
		s0 := b.State("0")
		b.Add(s0, "a", s0)
	})
	loopAB := mustFSP(t, func(b *fsp.Builder) {
		s0, s1 := b.State("0"), b.State("1")
		b.Add(s0, "a", s1)
		b.Add(s1, "b", s0)
	})
	if !LangIntersectionInfinite(loopA, loopA) {
		t.Error("a* ∩ a* is infinite")
	}
	// a* ∩ prefixes((ab)*) = {ε, a}: finite.
	if LangIntersectionInfinite(loopA, loopAB) {
		t.Error("a* ∩ prefix((ab)*) is finite")
	}
	finite := fsp.Linear("F", "a")
	if LangIntersectionInfinite(loopA, finite) {
		t.Error("intersection with finite language is finite")
	}
}

func TestMinimizeEmptyLanguage(t *testing.T) {
	// Accepting predicate rejecting everything yields the empty language.
	p := fsp.Linear("P", "a")
	d := Determinize(p, func(fsp.State) bool { return false })
	if !d.Empty() {
		t.Fatal("language must be empty")
	}
	m := d.Minimize()
	if !m.Empty() || m.NumStates() != 1 {
		t.Errorf("minimal empty DFA: states=%d empty=%v", m.NumStates(), m.Empty())
	}
	if m.Infinite() {
		t.Error("empty language is finite")
	}
}

func TestEquivalentRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	cfg := fsptest.DefaultConfig()
	cfg.Cyclic = true
	for i := 0; i < 40; i++ {
		p := fsptest.Gen(r, "P", cfg)
		// A process is always Lang-equivalent to itself post-minimization,
		// and equivalence is symmetric.
		d := LangDFA(p)
		if !Equivalent(d, d.Minimize()) {
			t.Fatalf("iter %d: p not equivalent to its minimization", i)
		}
		q := fsptest.Gen(r, "Q", cfg)
		if Equivalent(LangDFA(p), LangDFA(q)) != Equivalent(LangDFA(q), LangDFA(p)) {
			t.Fatalf("iter %d: equivalence not symmetric", i)
		}
	}
}

func TestDFAStep(t *testing.T) {
	d := LangDFA(fsp.Linear("P", "a", "b"))
	s1 := d.Step(d.Start(), "a")
	if s1 < 0 || !d.Accepting(s1) {
		t.Fatalf("Step(start, a) = %d", s1)
	}
	if d.Step(d.Start(), "b") != -1 {
		t.Error("b is dead at the start")
	}
	if d.Step(d.Start(), "zzz") != -1 {
		t.Error("foreign symbols are dead")
	}
}
