// Package lang is a regular-language toolkit over FSPs: subset
// construction, Hopcroft minimization, equivalence, inclusion, emptiness,
// and finiteness. It is the substrate behind Lang(·) equality, the cyclic
// success-with-collaboration test (Lang(P) ∩ Lang(Q) infinite), and the
// marker-automaton encoding of possibility equivalence.
package lang

import (
	"sort"
	"strings"

	"fspnet/internal/fsp"
)

// DFA is a deterministic finite automaton over an explicit alphabet.
// Missing transitions are represented by the value -1 and denote a dead
// (rejecting, absorbing) state.
type DFA struct {
	alphabet []fsp.Action // sorted
	delta    [][]int32    // delta[state][symbolIndex] = target or -1
	accept   []bool
	start    int
}

// NumStates returns the number of live states.
func (d *DFA) NumStates() int { return len(d.delta) }

// Alphabet returns the alphabet in sorted order. The result is shared and
// must not be modified.
func (d *DFA) Alphabet() []fsp.Action { return d.alphabet }

// Start returns the start state index.
func (d *DFA) Start() int { return d.start }

// Accepting reports whether state s accepts.
func (d *DFA) Accepting(s int) bool { return d.accept[s] }

// symbolIndex returns the index of a in the alphabet, or -1.
func (d *DFA) symbolIndex(a fsp.Action) int {
	i := sort.Search(len(d.alphabet), func(i int) bool { return d.alphabet[i] >= a })
	if i < len(d.alphabet) && d.alphabet[i] == a {
		return i
	}
	return -1
}

// Accepts reports whether the DFA accepts the given string. Symbols outside
// the alphabet reject immediately.
func (d *DFA) Accepts(s []fsp.Action) bool {
	cur := d.start
	for _, a := range s {
		k := d.symbolIndex(a)
		if k < 0 {
			return false
		}
		nxt := d.delta[cur][k]
		if nxt < 0 {
			return false
		}
		cur = int(nxt)
	}
	return d.accept[cur]
}

// AcceptingAll reports acceptance predicates for every state of p; used as
// the accepting set for Lang(·), where every state accepts (prefix-closed
// languages).
func AcceptingAll(fsp.State) bool { return true }

// Determinize builds the DFA of the NFA view of p (τ as ε) with the given
// accepting predicate over p's states. The subset construction explores
// only reachable subsets; state 0 of the result is the τ-closure of p's
// start state.
func Determinize(p *fsp.FSP, accepting func(fsp.State) bool) *DFA {
	alpha := p.Alphabet()
	d := &DFA{alphabet: alpha}
	index := make(map[string]int)
	var queue [][]fsp.State

	add := func(set []fsp.State) int {
		key := subsetKey(set)
		if id, ok := index[key]; ok {
			return id
		}
		id := len(d.delta)
		index[key] = id
		row := make([]int32, len(alpha))
		for i := range row {
			row[i] = -1
		}
		d.delta = append(d.delta, row)
		acc := false
		for _, s := range set {
			if accepting(s) {
				acc = true
				break
			}
		}
		d.accept = append(d.accept, acc)
		queue = append(queue, set)
		return id
	}

	start := p.TauClosure([]fsp.State{p.Start()})
	d.start = add(start)
	for head := 0; head < len(queue); head++ {
		set := queue[head]
		from := head
		for k, a := range alpha {
			next := p.Step(set, a)
			if len(next) == 0 {
				continue
			}
			d.delta[from][k] = int32(add(next))
		}
	}
	return d
}

// subsetKey canonicalizes a sorted state set as a map key.
func subsetKey(set []fsp.State) string {
	var sb strings.Builder
	for i, s := range set {
		if i > 0 {
			sb.WriteByte(',')
		}
		writeInt(&sb, int(s))
	}
	return sb.String()
}

func writeInt(sb *strings.Builder, v int) {
	if v >= 10 {
		writeInt(sb, v/10)
	}
	sb.WriteByte(byte('0' + v%10))
}

// Empty reports whether the accepted language is empty.
func (d *DFA) Empty() bool {
	seen := make([]bool, d.NumStates())
	stack := []int{d.start}
	seen[d.start] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if d.accept[s] {
			return false
		}
		for _, nxt := range d.delta[s] {
			if nxt >= 0 && !seen[nxt] {
				seen[nxt] = true
				stack = append(stack, int(nxt))
			}
		}
	}
	return true
}

// Infinite reports whether the accepted language is infinite: some useful
// state (reachable from the start and co-reachable to an accepting state)
// lies on a cycle of useful states.
func (d *DFA) Infinite() bool {
	n := d.NumStates()
	reach := make([]bool, n)
	stack := []int{d.start}
	reach[d.start] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nxt := range d.delta[s] {
			if nxt >= 0 && !reach[nxt] {
				reach[nxt] = true
				stack = append(stack, int(nxt))
			}
		}
	}
	// Reverse edges for co-reachability.
	rev := make([][]int, n)
	for s := 0; s < n; s++ {
		for _, nxt := range d.delta[s] {
			if nxt >= 0 {
				rev[nxt] = append(rev[nxt], s)
			}
		}
	}
	co := make([]bool, n)
	stack = stack[:0]
	for s := 0; s < n; s++ {
		if d.accept[s] {
			co[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, prev := range rev[s] {
			if !co[prev] {
				co[prev] = true
				stack = append(stack, prev)
			}
		}
	}
	useful := func(s int) bool { return reach[s] && co[s] }
	// Cycle detection restricted to useful states.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]byte, n)
	type frame struct {
		s, i int
	}
	for root := 0; root < n; root++ {
		if !useful(root) || color[root] != white {
			continue
		}
		st := []frame{{root, 0}}
		color[root] = gray
		for len(st) > 0 {
			f := &st[len(st)-1]
			advanced := false
			for f.i < len(d.delta[f.s]) {
				nxt := d.delta[f.s][f.i]
				f.i++
				if nxt < 0 || !useful(int(nxt)) {
					continue
				}
				if color[nxt] == gray {
					return true
				}
				if color[nxt] == white {
					color[nxt] = gray
					st = append(st, frame{int(nxt), 0})
					advanced = true
					break
				}
			}
			if !advanced && f.i >= len(d.delta[f.s]) {
				color[f.s] = black
				st = st[:len(st)-1]
			}
		}
	}
	return false
}

// Step returns the successor of state s on symbol a, or −1 when the move
// is dead (missing transition or foreign symbol).
func (d *DFA) Step(s int, a fsp.Action) int {
	k := d.symbolIndex(a)
	if k < 0 {
		return -1
	}
	return int(d.delta[s][k])
}
