// Tests pinning the Tuning contract: the pruned-parallel production
// configuration and the unpruned-sequential oracle configuration must
// return byte-identical verdicts, and Stats must be independent of the
// worker count (the parallel sweep merges at deterministic barriers).
package belief_test

import (
	"fmt"
	"math/rand"
	"testing"

	"fspnet/internal/bench"
	"fspnet/internal/fsptest"
	"fspnet/internal/game"
	"fspnet/internal/game/belief"
	"fspnet/internal/network"
)

// oracle is the differential reference configuration: no antichain
// pruning, no symmetry quotient, no witness probe, one worker.
var oracle = belief.Tuning{NoAntichain: true, Workers: 1, NoSymmetry: true, NoProbe: true}

// tunedPair runs the tuned engine and the oracle on one instance and
// requires the same verdict.
func tunedPair(t *testing.T, n *network.Network, cyclic bool, tune belief.Tuning, tag string) belief.Stats {
	t.Helper()
	solve := belief.SolveAcyclicTuned
	if cyclic {
		solve = belief.SolveCyclicTuned
	}
	got, st, err := solve(n, 0, game.Options{}, tune)
	if err != nil {
		t.Fatalf("%s: tuned %+v: %v", tag, tune, err)
	}
	want, _, err := solve(n, 0, game.Options{}, oracle)
	if err != nil {
		t.Fatalf("%s: oracle: %v", tag, err)
	}
	if got != want {
		t.Fatalf("%s: tuned %+v S_a=%v, oracle S_a=%v (stats %+v)", tag, tune, got, want, st)
	}
	return st
}

// TestWorkerCountDeterminism requires identical stats and verdicts for
// the cyclic sweep across worker counts, on instances whose games are
// non-trivial (philosophers rings explore thousands of positions).
func TestWorkerCountDeterminism(t *testing.T) {
	for _, m := range []int{3, 4} {
		n, err := bench.Philosophers(m)
		if err != nil {
			t.Fatal(err)
		}
		var base belief.Stats
		for i, w := range []int{1, 2, 3, 8} {
			_, st, err := belief.SolveCyclicTuned(n, 0, game.Options{}, belief.Tuning{Workers: w, NoProbe: true})
			if err != nil {
				t.Fatal(err)
			}
			if st.Workers != w {
				t.Fatalf("philosophers %d: Stats.Workers = %d, want %d", m, st.Workers, w)
			}
			st.Workers = 0
			if i == 0 {
				base = st
			} else if st != base {
				t.Fatalf("philosophers %d: stats differ at %d workers: %+v vs %+v", m, w, st, base)
			}
		}
	}
}

// TestTunedAgainstOracle sweeps random tree networks under both
// semantics, comparing the pruned-parallel default against the unpruned
// sequential oracle.
func TestTunedAgainstOracle(t *testing.T) {
	for _, cyclic := range []bool{false, true} {
		for seed := int64(0); seed < 40; seed++ {
			r := rand.New(rand.NewSource(4200 + seed))
			cfg := fsptest.NetConfig{
				Procs:          2 + r.Intn(4),
				ActionsPerEdge: 1 + r.Intn(2),
				MaxStates:      3 + r.Intn(3),
				TauProb:        0.2,
				Cyclic:         cyclic,
			}
			n := fsptest.TreeNetwork(r, cfg)
			tunedPair(t, n, cyclic, belief.Tuning{Workers: 4}, fmt.Sprintf("seed %d cyclic=%v", seed, cyclic))
		}
	}
}

// TestAntichainPrunes requires the antichain to actually fire on an
// instance large enough to present repeated (P-state, belief-subset)
// structure, and the pruned run to stay verdict-identical.
func TestAntichainPrunes(t *testing.T) {
	n, err := bench.Philosophers(4)
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := belief.SolveCyclicTuned(n, 0, game.Options{}, belief.Tuning{Workers: 1, NoProbe: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.AntichainElems == 0 {
		t.Fatalf("no antichain rows retained: %+v", st)
	}
	_, off, err := belief.SolveCyclicTuned(n, 0, game.Options{}, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if off.AntichainHits != 0 || off.AntichainElems != 0 || off.Pruned != 0 {
		t.Fatalf("oracle reports antichain activity: %+v", off)
	}
}
