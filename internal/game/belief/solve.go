package belief

// This file holds the two game solvers over (P-state, belief) positions.
// Both replace the legacy memoized recursion with iterative worklists:
// the acyclic game is a DFS over the position DAG with an explicit
// frame stack, the cyclic game a reachability sweep followed by a
// counter-based greatest-fixpoint elimination. Every loop is sequential
// and visits positions in a fixed order, so position counts — and the
// partial verdicts reported when the governor stops a worklist — are
// deterministic.

const (
	lose = uint8(1)
	win  = uint8(2)
)

func posKey(p uint32, bid int32) uint64 {
	return uint64(p)<<32 | uint64(uint32(bid))
}

// solveAcyclic evaluates the acyclic game from the start position. P
// wins at a position iff P is at a leaf, or the position is not blocked
// and every action the adversary can offer has some P-response that
// wins. The position graph is a DAG (every move fires a real P
// transition and P is acyclic), so a depth-first evaluation with an
// explicit stack terminates without in-progress tracking.
func (sv *solver) solveAcyclic() (bool, error) {
	memo := make(map[uint64]uint8)
	startBid := sv.startBelief()

	// frame is one in-progress position: iterating its actions (ai), and
	// for the current offerable action the stepped belief (nbid) and the
	// P-response range [si, hi) into pvis[p]. lo < 0 marks "advance to
	// the next action".
	type frame struct {
		key    uint64
		p      uint32
		bid    int32
		acts   []int32
		ai     int
		lo     int
		si, hi int
		nbid   int32
	}
	var stack []frame

	// resolve enters a position: memo hit or terminal verdicts resolve
	// immediately, anything else pushes a frame.
	resolve := func(p uint32, bid int32) (done bool, v uint8, err error) {
		key := posKey(p, bid)
		if v, ok := memo[key]; ok {
			return true, v, nil
		}
		sv.stats.Positions++
		if err := sv.chargePos(); err != nil {
			return false, 0, err
		}
		if sv.M.DistLeaf(p) {
			memo[key] = win
			return true, win, nil
		}
		acts := sv.pacts[p]
		if sv.blocked(bid, acts) {
			memo[key] = lose
			return true, lose, nil
		}
		stack = append(stack, frame{key: key, p: p, bid: bid, acts: acts, lo: -1, nbid: -1})
		return false, 0, nil
	}

	done, v, err := resolve(uint32(sv.M.DistStart()), startBid)
	if err != nil {
		return false, err
	}
	if done {
		return v == win, nil
	}
	var final uint8
	// pop finishes the top frame with verdict v, feeding it to the
	// parent: a winning response advances the parent to its next action,
	// a losing one to its next response.
	pop := func(v uint8) {
		f := stack[len(stack)-1]
		memo[f.key] = v
		stack = stack[:len(stack)-1]
		if len(stack) == 0 {
			final = v
			return
		}
		parent := &stack[len(stack)-1]
		if v == win {
			parent.ai++
			parent.lo = -1
		} else {
			parent.si++
		}
	}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.lo < 0 {
			if f.ai >= len(f.acts) {
				pop(win) // every offerable action has a winning response
				continue
			}
			aid := f.acts[f.ai]
			nb := sv.step(f.bid, aid)
			if nb < 0 {
				f.ai++ // the adversary cannot offer aid on this trail
				continue
			}
			f.nbid = nb
			f.lo, f.hi = sv.succRange(f.p, aid)
			f.si = f.lo
		}
		if f.si >= f.hi {
			pop(lose) // the adversary forces acts[ai]: every response loses
			continue
		}
		done, v, err := resolve(sv.pvis[f.p][f.si].To, f.nbid)
		if err != nil {
			return false, err
		}
		if done {
			// resolve pushed nothing, so f is still the top frame.
			if v == win {
				f.ai++
				f.lo = -1
			} else {
				f.si++
			}
		}
		// Otherwise the child frame is on top; evaluate it first.
	}
	return final == win, nil
}

// solveCyclic evaluates the Section 4 game: P wins iff it can play
// forever. First a breadth-first sweep interns every position reachable
// from the start and records its edge groups (per offerable action, the
// P-responses into the stepped belief); then the greatest fixpoint
// removes positions while they are terminal (P at a leaf), blocked, or
// have some offerable action all of whose responses are removed —
// implemented backward, decrementing per-group counters of surviving
// responses.
func (sv *solver) solveCyclic() (bool, error) {
	startBid := sv.startBelief()
	type pnode struct {
		p   uint32
		bid int32
	}
	ids := make(map[uint64]int32)
	var list []pnode
	var dead []bool      // P leaf or blocked at discovery time
	var groups [][][]int32 // per position, per offerable action, response position ids

	addPos := func(p uint32, bid int32) (int32, error) {
		key := posKey(p, bid)
		if id, ok := ids[key]; ok {
			return id, nil
		}
		id := int32(len(list))
		ids[key] = id
		list = append(list, pnode{p: p, bid: bid})
		sv.stats.Positions++
		return id, sv.chargePos()
	}
	if _, err := addPos(uint32(sv.M.DistStart()), startBid); err != nil {
		return false, err
	}
	for u := 0; u < len(list); u++ {
		nd := list[u]
		if sv.M.DistLeaf(nd.p) || sv.blocked(nd.bid, sv.pacts[nd.p]) {
			// Immediately losing; its outgoing plays cannot save it and
			// positions reachable only through it cannot matter.
			dead = append(dead, true)
			groups = append(groups, nil)
			continue
		}
		dead = append(dead, false)
		var gs [][]int32
		for _, aid := range sv.pacts[nd.p] {
			nb := sv.step(nd.bid, aid)
			if nb < 0 {
				continue
			}
			lo, hi := sv.succRange(nd.p, aid)
			ds := make([]int32, 0, hi-lo)
			for i := lo; i < hi; i++ {
				id, err := addPos(sv.pvis[nd.p][i].To, nb)
				if err != nil {
					return false, err
				}
				ds = append(ds, id)
			}
			gs = append(gs, ds)
		}
		groups = append(groups, gs)
	}

	// Greatest fixpoint by backward counter propagation. goodCount[u][g]
	// is the number of still-winning responses in group g of position u;
	// when it hits zero the adversary can force that action and u falls.
	if err := sv.g.Poll("fixpoint", 0); err != nil {
		return false, sv.limit(err, "fixpoint", sv.stats.Positions)
	}
	n := len(list)
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	type ref struct {
		u int32
		g int32
	}
	rev := make([][]ref, n)
	goodCount := make([][]int32, n)
	for u := range groups {
		gc := make([]int32, len(groups[u]))
		for g, ds := range groups[u] {
			gc[g] = int32(len(ds))
			for _, d := range ds {
				rev[d] = append(rev[d], ref{u: int32(u), g: int32(g)})
			}
		}
		goodCount[u] = gc
	}
	var work []int32
	for u := 0; u < n; u++ {
		if dead[u] {
			alive[u] = false
			work = append(work, int32(u))
		}
	}
	removed := 0
	for len(work) > 0 {
		d := work[len(work)-1]
		work = work[:len(work)-1]
		removed++
		if err := sv.poll("fixpoint", removed); err != nil {
			return false, err
		}
		for _, r := range rev[d] {
			if !alive[r.u] {
				continue
			}
			goodCount[r.u][r.g]--
			if goodCount[r.u][r.g] == 0 {
				alive[r.u] = false
				work = append(work, r.u)
			}
		}
	}
	return alive[0], nil
}
