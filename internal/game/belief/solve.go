package belief

// This file holds the two game solvers over (P-state, belief) positions.
// The acyclic game is a DFS over the position DAG with an explicit frame
// stack, pruned by the subsumption antichains of antichain.go. The
// cyclic game is a level-synchronized reachability sweep followed by a
// counter-based greatest-fixpoint elimination, both sharded across
// tune.Workers goroutines. Determinism discipline for the parallel
// passes: workers compute over level-frozen tables with per-worker
// scratch (the belief arena and step memo are the only shared, locked
// structures), and every observable mutation — position interning,
// statistics, antichain feeds, budget charges — happens at the
// sequential level barrier in position order. Verdicts, counts, and the
// partial verdicts reported when the governor stops a pass are therefore
// deterministic and independent of the worker count.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"fspnet/internal/game"
)

const (
	lose = uint8(1)
	win  = uint8(2)
)

// workerPollStride amortizes the per-worker governor polls inside the
// parallel chunks; each worker also polls at its chunk start, so every
// sweep level observes at least one "game-worker"/"fixpoint-worker"
// poll per active worker.
const workerPollStride = 64

func posKey(p uint32, bid int32) uint64 {
	return uint64(p)<<32 | uint64(uint32(bid))
}

// solveAcyclic evaluates the acyclic game from the start position. P
// wins at a position iff P is at a leaf, or the position is not blocked
// and every action the adversary can offer has some P-response that
// wins. The position graph is a DAG (every move fires a real P
// transition and P is acyclic), so a depth-first evaluation with an
// explicit stack terminates without in-progress tracking. Before a
// position is expanded it is checked against its P-state's antichains —
// a known-winning superset or known-losing subset resolves it without
// charging a position — and every resolved non-leaf position feeds the
// antichains back.
func (sv *solver) solveAcyclic() (bool, error) {
	sv.stats.Workers = 1
	memo := make(map[uint64]uint8)
	startBid := sv.startBelief(sv.sc)

	// frame is one in-progress position: iterating its actions (ai), and
	// for the current offerable action the stepped belief (nbid) and the
	// P-response range [si, hi) into pvis[p]. lo < 0 marks "advance to
	// the next action".
	type frame struct {
		key    uint64
		p      uint32
		bid    int32
		acts   []int32
		ai     int
		lo     int
		si, hi int
		nbid   int32
	}
	var stack []frame

	// resolve enters a position: memo hits, antichain subsumption, and
	// terminal verdicts resolve immediately, anything else pushes a
	// frame.
	resolve := func(p uint32, bid int32) (done bool, v uint8, err error) {
		key := posKey(p, bid)
		if v, ok := memo[key]; ok {
			return true, v, nil
		}
		if sv.winAC != nil && !sv.M.DistLeaf(p) {
			b := sv.ar.set(bid)
			if sv.winAC[p].hasSuperset(b) {
				sv.stats.AntichainHits++
				sv.stats.Pruned++
				memo[key] = win
				return true, win, nil
			}
			if sv.loseAC[p].hasSubset(b) {
				sv.stats.AntichainHits++
				sv.stats.Pruned++
				memo[key] = lose
				return true, lose, nil
			}
		}
		sv.stats.Positions++
		if err := sv.chargePos(); err != nil {
			return false, 0, err
		}
		if sv.M.DistLeaf(p) {
			memo[key] = win
			return true, win, nil
		}
		acts := sv.pacts[p]
		if sv.blocked(bid, acts) {
			memo[key] = lose
			if err := sv.feedLose(p, bid); err != nil {
				return false, 0, err
			}
			return true, lose, nil
		}
		stack = append(stack, frame{key: key, p: p, bid: bid, acts: acts, lo: -1, nbid: -1})
		return false, 0, nil
	}

	done, v, err := resolve(uint32(sv.M.DistStart()), startBid)
	if err != nil {
		return false, err
	}
	if done {
		return v == win, nil
	}
	var final uint8
	// pop finishes the top frame with verdict v, feeding the antichains
	// and the parent: a winning response advances the parent to its next
	// action, a losing one to its next response.
	pop := func(v uint8) error {
		f := stack[len(stack)-1]
		memo[f.key] = v
		stack = stack[:len(stack)-1]
		var err error
		if v == win {
			err = sv.feedWin(f.p, f.bid)
		} else {
			err = sv.feedLose(f.p, f.bid)
		}
		if len(stack) == 0 {
			final = v
			return err
		}
		parent := &stack[len(stack)-1]
		if v == win {
			parent.ai++
			parent.lo = -1
		} else {
			parent.si++
		}
		return err
	}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.lo < 0 {
			if f.ai >= len(f.acts) {
				// Every offerable action has a winning response.
				if err := pop(win); err != nil {
					return false, err
				}
				continue
			}
			aid := f.acts[f.ai]
			nb := sv.step(sv.sc, f.bid, aid)
			if nb < 0 {
				f.ai++ // the adversary cannot offer aid on this trail
				continue
			}
			f.nbid = nb
			f.lo, f.hi = sv.succRange(f.p, aid)
			f.si = f.lo
		}
		if f.si >= f.hi {
			// The adversary forces acts[ai]: every response loses.
			if err := pop(lose); err != nil {
				return false, err
			}
			continue
		}
		done, v, err := resolve(sv.pvis[f.p][f.si].To, f.nbid)
		if err != nil {
			return false, err
		}
		if done {
			// resolve pushed nothing, so f is still the top frame.
			if v == win {
				f.ai++
				f.lo = -1
			} else {
				f.si++
			}
		}
		// Otherwise the child frame is on top; evaluate it first.
	}
	return final == win, nil
}

// solveCyclic evaluates the Section 4 game: P wins iff it can play
// forever. Phase 1 is a level-synchronized breadth-first sweep interning
// every position reachable from the start and recording its edge groups
// (per offerable action, the P-responses into the stepped belief); each
// level's positions are expanded by the workers over contiguous chunks
// and merged at the barrier in position order. A position is dead when P
// is at a leaf or the belief is blocked — the lose antichain of minimal
// blocked beliefs, fed at the barriers, decides the latter without a
// scan whenever a known-blocked subset is present (a stable no-offer
// state in the subset is in the superset too, so the fast path never
// changes which positions die). Phase 2 removes positions while some
// offerable action has zero surviving responses, in waves over the
// reversed edges: workers decrement shared atomic group counters, claim
// each zero crossing exactly once by compare-and-swap, and the wave
// contents (a deterministic set — whether a group hits zero by wave k
// depends only on the fallen set, not on scheduling) are merged in
// worker order at each round barrier.
func (sv *solver) solveCyclic() (bool, error) {
	W := sv.tune.workers()
	sv.stats.Workers = W
	startBid := sv.startBelief(sv.sc)
	type pnode struct {
		p   uint32
		bid int32
	}
	ids := make(map[uint64]int32)
	var list []pnode
	var dead []bool
	var groups [][][]int32
	addPos := func(p uint32, bid int32) (int32, bool) {
		key := posKey(p, bid)
		if id, ok := ids[key]; ok {
			return id, false
		}
		id := int32(len(list))
		ids[key] = id
		list = append(list, pnode{p: p, bid: bid})
		dead = append(dead, false)
		groups = append(groups, nil)
		sv.stats.Positions++
		return id, true
	}
	chargeLevel := func(fresh int) error {
		n := sv.stats.Positions
		if n > sv.budget {
			return sv.limit(fmt.Errorf("belief: %d positions: %w", n, game.ErrBudget), "game", n)
		}
		if err := sv.g.Charge(fresh); err != nil {
			return sv.limit(fmt.Errorf("belief: %d positions: %w", n, err), "game", n)
		}
		return nil
	}
	startID, _ := addPos(uint32(sv.M.DistStart()), startBid)
	if err := chargeLevel(1); err != nil {
		return false, err
	}

	scratches := make([]*scratch, W)
	scratches[0] = sv.sc
	for i := 1; i < W; i++ {
		scratches[i] = newScratch(sv.cg.words())
	}
	workerErrs := make([]error, W)

	// expand computes one position's fate using the worker's scratch; it
	// reads only level-frozen tables, the arena, and the step memo.
	type resp struct {
		p  uint32
		nb int32
	}
	type result struct {
		dead   bool
		acHit  bool
		feed   bool // blocked by scan: feed the belief to loseAC at the barrier
		groups [][]resp
	}
	expand := func(sc *scratch, u int32, out *result) {
		nd := list[u]
		if sv.M.DistLeaf(nd.p) {
			out.dead = true
			return
		}
		acts := sv.pacts[nd.p]
		if sv.loseAC != nil && sv.loseAC[nd.p].hasSubset(sv.ar.set(nd.bid)) {
			out.dead, out.acHit = true, true
			return
		}
		if sv.blocked(nd.bid, acts) {
			out.dead, out.feed = true, true
			return
		}
		for _, aid := range acts {
			nb := sv.step(sc, nd.bid, aid)
			if nb < 0 {
				continue
			}
			lo, hi := sv.succRange(nd.p, aid)
			rs := make([]resp, 0, hi-lo)
			for i := lo; i < hi; i++ {
				rs = append(rs, resp{p: sv.pvis[nd.p][i].To, nb: nb})
			}
			out.groups = append(out.groups, rs)
		}
	}

	level := []int32{startID}
	var results []result
	for lvl := 0; len(level) > 0; lvl++ {
		if err := sv.g.Poll("game", lvl); err != nil {
			return false, sv.limit(fmt.Errorf("belief: cyclic sweep stopped at level %d: %w", lvl, err),
				"game", sv.stats.Positions)
		}
		if cap(results) < len(level) {
			results = make([]result, len(level))
		} else {
			results = results[:len(level)]
			for i := range results {
				results[i] = result{}
			}
		}
		runChunks(W, len(level), func(w, lo, hi int) {
			sc := scratches[w]
			for k := lo; k < hi; k++ {
				if (k-lo)%workerPollStride == 0 {
					if err := sv.g.Poll("game-worker", lvl); err != nil {
						workerErrs[w] = err
						return
					}
				}
				expand(sc, level[k], &results[k])
			}
		})
		if err := firstWorkerErr(workerErrs); err != nil {
			return false, sv.limit(fmt.Errorf("belief: cyclic sweep worker stopped at level %d: %w", lvl, err),
				"game-worker", sv.stats.Positions)
		}
		var next []int32
		fresh := 0
		for li, u := range level {
			r := &results[li]
			if r.acHit {
				sv.stats.AntichainHits++
			}
			if r.dead {
				dead[u] = true
				continue
			}
			gs := make([][]int32, len(r.groups))
			for gi, rs := range r.groups {
				ds := make([]int32, len(rs))
				for i, rp := range rs {
					id, isFresh := addPos(rp.p, rp.nb)
					if isFresh {
						next = append(next, id)
						fresh++
					}
					ds[i] = id
				}
				gs[gi] = ds
			}
			groups[u] = gs
		}
		if err := chargeLevel(fresh); err != nil {
			return false, err
		}
		for li, u := range level {
			if results[li].feed {
				if err := sv.feedLose(list[u].p, list[u].bid); err != nil {
					return false, err
				}
			}
		}
		level = next
	}

	// Greatest fixpoint by backward counter propagation. gc[gcOff[u]+g]
	// is the number of still-winning responses in group g of position u;
	// when it hits zero the adversary can force that action and u falls.
	if err := sv.g.Poll("fixpoint", 0); err != nil {
		return false, sv.limit(err, "fixpoint", sv.stats.Positions)
	}
	n := len(list)
	type ref struct {
		u int32
		g int32
	}
	rev := make([][]ref, n)
	gcOff := make([]int32, n+1)
	for u := 0; u < n; u++ {
		gcOff[u+1] = gcOff[u] + int32(len(groups[u]))
	}
	gc := make([]int32, gcOff[n])
	for u := range groups {
		for g, ds := range groups[u] {
			gc[gcOff[u]+int32(g)] = int32(len(ds))
			for _, d := range ds {
				rev[d] = append(rev[d], ref{u: int32(u), g: int32(g)})
			}
		}
	}
	fallen := make([]int32, n)
	var wave []int32
	for u := 0; u < n; u++ {
		if dead[u] {
			fallen[u] = 1
			wave = append(wave, int32(u))
		}
	}
	nextBufs := make([][]int32, W)
	for round := 0; len(wave) > 0; round++ {
		if err := sv.g.Poll("fixpoint", round); err != nil {
			return false, sv.limit(fmt.Errorf("belief: fixpoint stopped at round %d: %w", round, err),
				"fixpoint", sv.stats.Positions)
		}
		runChunks(W, len(wave), func(w, lo, hi int) {
			buf := nextBufs[w][:0]
			for k := lo; k < hi; k++ {
				if (k-lo)%workerPollStride == 0 {
					if err := sv.g.Poll("fixpoint-worker", round); err != nil {
						workerErrs[w] = err
						break
					}
				}
				for _, r := range rev[wave[k]] {
					idx := gcOff[r.u] + r.g
					if atomic.AddInt32(&gc[idx], -1) == 0 &&
						atomic.CompareAndSwapInt32(&fallen[r.u], 0, 1) {
						buf = append(buf, r.u)
					}
				}
			}
			nextBufs[w] = buf
		})
		if err := firstWorkerErr(workerErrs); err != nil {
			return false, sv.limit(fmt.Errorf("belief: fixpoint worker stopped at round %d: %w", round, err),
				"fixpoint-worker", sv.stats.Positions)
		}
		// Merge and clear each worker buffer: runChunks skips workers with
		// empty chunks, so a buffer left full from an earlier round would
		// otherwise be merged again and keep the wave alive forever.
		wave = wave[:0]
		for w := range nextBufs {
			wave = append(wave, nextBufs[w]...)
			nextBufs[w] = nextBufs[w][:0]
		}
	}
	return fallen[startID] == 0, nil
}

// runChunks splits n items into W contiguous chunks and runs fn(w, lo,
// hi) for each — inline when W is 1, on goroutines otherwise. Chunk
// bounds depend only on (W, n), so the work assignment is deterministic.
// Worker panics are re-raised after the barrier, never deadlocking it.
func runChunks(W, n int, fn func(w, lo, hi int)) {
	if W <= 1 || n <= 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	panics := make([]any, W)
	for w := 0; w < W; w++ {
		lo, hi := w*n/W, (w+1)*n/W
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[w] = r
				}
			}()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, r := range panics {
		if r != nil {
			panic(r)
		}
	}
}

// firstWorkerErr returns the lowest-indexed recorded worker error and
// clears the slate for the next barrier. Fault injections and guard
// limits fire by (pass, level), so every worker polling after the
// trigger observes the same stop and the lowest index is deterministic.
func firstWorkerErr(errs []error) error {
	var first error
	for i, e := range errs {
		if e != nil && first == nil {
			first = e
		}
		errs[i] = nil
	}
	return first
}
