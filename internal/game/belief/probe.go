package belief

import (
	"encoding/binary"
	"fmt"

	"fspnet/internal/explore"
	"fspnet/internal/guard"
)

// The cyclic belief game has one polarity a small raw witness decides:
// S_a = false. The start position (P's start state, τ-closure of the
// context start) dies outright when
//
//   - P starts at a leaf (the cyclic game demands infinite play);
//   - the context can silently diverge from its start (m ≥ 3): the
//     synthetic ⊥ then sits in the start belief and blocks every
//     proposal; or
//   - the start closure contains a stable context state offering none
//     of P's start actions: the adversary steers there and stops.
//
// All three witnesses live inside the τ-closure of the context start —
// on the symmetric ring families a handful of vectors deep, while the
// full reachable context is astronomically large. probeCtx therefore
// walks that closure depth-first on RAW vectors (no canonicalization,
// so witnesses are genuine runs) under a small node budget, before any
// context enumeration. It never decides S_a = true; a probe that
// exhausts its budget decides nothing and the exhaustive engine takes
// over.

// ctxProbeBudget bounds the context vectors one probe walk visits.
const ctxProbeBudget = 4096

// ctxProbeResult carries what the probe decided.
type ctxProbeResult struct {
	states  int  // raw context vectors visited
	saFalse bool // S_a = false witnessed
}

// probeCtx runs the witness walk under pass "probe". Deterministic:
// fixed expansion order, fixed budget, no parallelism.
func probeCtx(M *explore.Machine, g *guard.G) (ctxProbeResult, error) {
	var pr ctxProbeResult
	if err := g.Poll("probe", 0); err != nil {
		return pr, g.Limit(fmt.Errorf("belief: probe stopped: %w", err),
			guard.Partial{Pass: "probe"})
	}
	pstart := uint32(M.DistStart())
	if M.DistLeaf(pstart) {
		pr.saFalse = true
		return pr, nil
	}
	var pacts []int32
	for _, t := range M.DistMoves(pstart) {
		if len(pacts) == 0 || pacts[len(pacts)-1] != t.Aid {
			pacts = append(pacts, t.Aid)
		}
	}
	m := M.NumProcs()
	const black = -2
	depth := make(map[string]int32) // packed vec → gray depth, or black
	scratch := make([]uint32, m)
	kb := make([]byte, 4*m)
	pack := func(vec []uint32) string {
		for i, v := range vec {
			binary.LittleEndian.PutUint32(kb[i*4:], v)
		}
		return string(kb)
	}
	// expand enumerates one vector's context moves: the τ-successor keys
	// (aid < 0), whether any action in acts is offered, and stability.
	expand := func(vec []uint32, acts []int32) (taus []string, offered, stable bool) {
		stable = true
		M.CtxMoves(vec, scratch, func(succ []uint32, aid int32) bool {
			if aid < 0 {
				stable = false
				taus = append(taus, pack(succ))
				return true
			}
			for _, a := range acts {
				if a == aid {
					offered = true
					break
				}
			}
			return true
		})
		return taus, offered, stable
	}
	type frame struct {
		key  string
		succ []string
		next int
	}
	enter := func(key string, vec []uint32) (frame, bool) {
		taus, offered, stable := expand(vec, pacts)
		if stable && !offered {
			pr.saFalse = true // a refusing stable state in the start closure
			return frame{}, false
		}
		return frame{key: key, succ: taus}, true
	}
	start := M.StartVec()
	startKey := pack(start)
	depth[startKey] = 0
	pr.states++
	f, ok := enter(startKey, start)
	if !ok {
		return pr, nil
	}
	stack := []frame{f}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next >= len(f.succ) {
			depth[f.key] = black
			stack = stack[:len(stack)-1]
			continue
		}
		key := f.succ[f.next]
		f.next++
		d, seen := depth[key]
		switch {
		case seen && d >= 0:
			// A context-τ cycle reachable from the start via τ-moves: the
			// start state is silently divergent. ComposeAllCyclic inserts ⊥
			// only when the context really composes (m ≥ 3).
			if m >= 3 {
				pr.saFalse = true
				return pr, nil
			}
		case seen: // black
		default:
			if len(depth) >= ctxProbeBudget {
				return pr, nil // budget spent without a witness: undecided
			}
			pr.states++
			if len(depth)%pollStride == 0 {
				if err := g.Poll("probe", len(depth)/pollStride); err != nil {
					return pr, g.Limit(
						fmt.Errorf("belief: probe stopped at %d context vectors: %w", len(depth), err),
						guard.Partial{States: pr.states, Pass: "probe"})
				}
			}
			depth[key] = int32(len(stack))
			nf, ok := enter(key, unpackCtxKey(key, m))
			if !ok {
				return pr, nil
			}
			stack = append(stack, nf)
		}
	}
	return pr, nil
}

// unpackCtxKey reverses the probe's 4-byte little-endian vector packing.
func unpackCtxKey(key string, m int) []uint32 {
	vec := make([]uint32, m)
	for i := range vec {
		vec[i] = uint32(key[4*i]) | uint32(key[4*i+1])<<8 |
			uint32(key[4*i+2])<<16 | uint32(key[4*i+3])<<24
	}
	return vec
}
