// White-box tests for the subsumption antichains: the set operations
// themselves, and two crafted networks proving the acyclic solver's
// win-side and lose-side fast paths fire end to end. The bundled bench
// families barely exercise subsumption (their games rarely revisit a
// P-state with a strictly comparable belief — see docs/PERF.md), so
// these gadgets are the regression anchor for the pruning itself.
package belief

import (
	"testing"

	"fspnet/internal/fsp"
	"fspnet/internal/game"
	"fspnet/internal/network"
)

func TestAntichainMaxOps(t *testing.T) {
	ac := antichain{words: 1}
	if ac.hasSuperset([]uint64{0b1}) || ac.hasSubset([]uint64{0b1}) {
		t.Fatal("empty antichain subsumes")
	}
	if !ac.insertMax([]uint64{0b0101}) {
		t.Fatal("first insert dropped")
	}
	if !ac.hasSuperset([]uint64{0b0001}) {
		t.Error("subset of a row not subsumed")
	}
	if ac.hasSuperset([]uint64{0b0011}) {
		t.Error("incomparable belief subsumed")
	}
	if ac.insertMax([]uint64{0b0101}) {
		t.Error("duplicate row retained")
	}
	if ac.insertMax([]uint64{0b0100}) {
		t.Error("subset row retained")
	}
	if ac.size() != 1 {
		t.Fatalf("size = %d, want 1", ac.size())
	}
	// A strict superset evicts the row it covers.
	if !ac.insertMax([]uint64{0b1101}) {
		t.Fatal("superset row dropped")
	}
	if ac.size() != 1 {
		t.Fatalf("size after eviction = %d, want 1", ac.size())
	}
	if !ac.hasSuperset([]uint64{0b0101}) {
		t.Error("evicted row's belief no longer subsumed")
	}
}

func TestAntichainMinOps(t *testing.T) {
	ac := antichain{words: 1}
	if !ac.insertMin([]uint64{0b0110}) {
		t.Fatal("first insert dropped")
	}
	if !ac.hasSubset([]uint64{0b1110}) {
		t.Error("superset of a row not subsumed")
	}
	if ac.hasSubset([]uint64{0b0010}) {
		t.Error("incomparable belief subsumed")
	}
	if ac.insertMin([]uint64{0b1110}) {
		t.Error("superset row retained")
	}
	// A strict subset evicts the row that covers it.
	if !ac.insertMin([]uint64{0b0010}) {
		t.Fatal("subset row dropped")
	}
	if ac.size() != 1 {
		t.Fatalf("size after eviction = %d, want 1", ac.size())
	}
	if !ac.hasSubset([]uint64{0b0110}) {
		t.Error("evicted row's belief no longer subsumed")
	}
}

// TestAntichainCap fills one antichain with pairwise-incomparable
// singleton rows up to the cap; the next insert must be dropped while
// checks stay sound.
func TestAntichainCap(t *testing.T) {
	words := antichainCap/64 + 1
	ac := antichain{words: words}
	row := func(bit int) []uint64 {
		b := make([]uint64, words)
		b[bit/64] = 1 << (bit % 64)
		return b
	}
	for bit := 0; bit < antichainCap; bit++ {
		if !ac.insertMax(row(bit)) {
			t.Fatalf("insert %d dropped below the cap", bit)
		}
	}
	if ac.insertMax(row(antichainCap)) {
		t.Error("insert past the cap retained")
	}
	if ac.size() != antichainCap {
		t.Fatalf("size = %d, want %d", ac.size(), antichainCap)
	}
	if !ac.hasSuperset(row(0)) {
		t.Error("capped antichain lost a row")
	}
}

// winHitNet builds a two-member acyclic network where P reaches the
// same state p1 by two actions under which the context belief is
// strictly nested: "a" steps the start closure {q0, qx} to {q1, q2},
// "b" (with no edge from qx) to {q1} alone. Both context states answer
// the follow-up "c", so (p1, {q1, q2}) wins and is fed to the win
// antichain; the later (p1, {q1}) resolves by the superset check.
func winHitNet(t *testing.T) *network.Network {
	t.Helper()
	pb := fsp.NewBuilder("P")
	p0, p1, p2 := pb.State("p0"), pb.State("p1"), pb.State("p2")
	pb.Add(p0, "a", p1)
	pb.Add(p0, "b", p1)
	pb.Add(p1, "c", p2)

	qb := fsp.NewBuilder("Q")
	q0, qx, q1, q2, q3 := qb.State("q0"), qb.State("qx"), qb.State("q1"), qb.State("q2"), qb.State("q3")
	qb.AddTau(q0, qx)
	qb.Add(q0, "a", q1)
	qb.Add(qx, "a", q2)
	qb.Add(q0, "b", q1)
	qb.Add(q1, "c", q3)
	qb.Add(q2, "c", q3)
	n, err := network.New(pb.MustBuild(), qb.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// loseHitNet arranges a lose-side hit. The DFS pops a frame as lose the
// moment one action forces a loss, so the small blocked belief must be
// reached as a non-final *response* of an action P can still satisfy:
// "d" from p0 has two successors, first p1 — where the stepped belief
// {q1} contains only the dead state q1, so the position is blocked and
// feeds the lose antichain — then the leaf pGood, which wins the action.
// The later action "e" steps to (p1, {q1, q2}) and must resolve by the
// subset check against the recorded {q1}.
func loseHitNet(t *testing.T) *network.Network {
	t.Helper()
	pb := fsp.NewBuilder("P")
	p0, p1 := pb.State("p0"), pb.State("p1")
	pGood := pb.State("pGood")
	p2 := pb.State("p2")
	pb.Add(p0, "d", p1)
	pb.Add(p0, "d", pGood)
	pb.Add(p0, "e", p1)
	pb.Add(p1, "c", p2)

	qb := fsp.NewBuilder("Q")
	q0, qx, q1, q2, q3 := qb.State("q0"), qb.State("qx"), qb.State("q1"), qb.State("q2"), qb.State("q3")
	qb.AddTau(q0, qx)
	qb.Add(q0, "d", q1)
	qb.Add(q0, "e", q1)
	qb.Add(qx, "e", q2)
	qb.Add(q2, "c", q3)
	n, err := network.New(pb.MustBuild(), qb.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestAntichainHitEndToEnd runs the acyclic solver on both hitNet
// flavors: the win flavor must resolve (p1, {q1}) by the win-side
// superset check, the lose flavor (p1, {q1, q2}) by the lose-side
// subset check, and the oracle configuration must agree with no
// antichain activity.
func TestAntichainHitEndToEnd(t *testing.T) {
	for _, tc := range []struct {
		name    string
		build   func(*testing.T) *network.Network
		verdict bool
	}{
		{"win-side", winHitNet, true},
		{"lose-side", loseHitNet, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			n := tc.build(t)
			sa, st, err := SolveAcyclicTuned(n, 0, game.Options{}, Tuning{})
			if err != nil {
				t.Fatal(err)
			}
			if sa != tc.verdict {
				t.Fatalf("S_a = %v, want %v (stats %+v)", sa, tc.verdict, st)
			}
			if st.AntichainHits == 0 || st.Pruned == 0 {
				t.Fatalf("no subsumption hit: %+v", st)
			}
			ora, so, err := SolveAcyclicTuned(n, 0, game.Options{}, Tuning{NoAntichain: true, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			if ora != sa {
				t.Fatalf("oracle S_a = %v, pruned = %v", ora, sa)
			}
			if so.AntichainHits != 0 || so.Pruned != 0 || so.AntichainElems != 0 {
				t.Fatalf("oracle reports antichain activity: %+v", so)
			}
			// The pruned run resolves strictly fewer positions: the
			// subsumed (p1, ·) subtree is never charged.
			if st.Positions >= so.Positions {
				t.Errorf("pruned run charged %d positions, oracle %d", st.Positions, so.Positions)
			}
		})
	}
}
