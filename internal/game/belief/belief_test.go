// Differential tests pinning the belief engine to the legacy
// compose-then-recurse S_a solver: on every network both must return the
// same verdict (or the same error class). The legacy path composes the
// context with ‖ (ComposeAllCyclic under the Section 4 semantics) and
// plays game.Solve*Opts against the product; the belief engine never
// composes.
package belief_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"fspnet/internal/bench"
	"fspnet/internal/fsp"
	"fspnet/internal/fsptest"
	"fspnet/internal/game"
	"fspnet/internal/game/belief"
	"fspnet/internal/guard"
	"fspnet/internal/network"
	"fspnet/internal/reduce"
	"fspnet/internal/sat"
)

// legacySa is the oracle: compose the context of process i, then run the
// legacy game solver on the product.
func legacySa(n *network.Network, i int, cyclic bool) (bool, error) {
	q, err := n.Context(i, cyclic)
	if err != nil {
		return false, err
	}
	if cyclic {
		return game.SolveCyclic(n.Process(i), q)
	}
	return game.SolveAcyclic(n.Process(i), q)
}

func beliefSa(n *network.Network, i int, cyclic bool, o game.Options) (bool, belief.Stats, error) {
	if cyclic {
		return belief.SolveCyclic(n, i, o)
	}
	return belief.SolveAcyclic(n, i, o)
}

// checkAgainstLegacy compares the two engines on one instance.
func checkAgainstLegacy(t *testing.T, n *network.Network, cyclic bool, tag string) {
	t.Helper()
	want, err := legacySa(n, 0, cyclic)
	if err != nil {
		t.Fatalf("%s: legacy: %v", tag, err)
	}
	got, st, err := beliefSa(n, 0, cyclic, game.Options{})
	if err != nil {
		t.Fatalf("%s: belief: %v", tag, err)
	}
	if got != want {
		t.Fatalf("%s: belief S_a=%v, legacy S_a=%v (stats %+v)", tag, got, want, st)
	}
}

// TestDifferentialTreeNetworks fuzzes small random tree networks under
// both semantics deterministically.
func TestDifferentialTreeNetworks(t *testing.T) {
	for _, cyclic := range []bool{false, true} {
		for seed := int64(0); seed < 60; seed++ {
			r := rand.New(rand.NewSource(1000 + seed))
			cfg := fsptest.NetConfig{
				Procs:          2 + r.Intn(4),
				ActionsPerEdge: 1 + r.Intn(2),
				MaxStates:      3 + r.Intn(3),
				TauProb:        0.2,
				Cyclic:         cyclic,
			}
			n := fsptest.TreeNetwork(r, cfg)
			checkAgainstLegacy(t, n, cyclic, fmt.Sprintf("seed %d cyclic=%v procs=%d", seed, cyclic, cfg.Procs))
		}
	}
}

// TestDifferentialQbfGadgets runs the Theorem 2 reduction fixtures: the
// belief engine must match both the legacy solver and the QBF value.
func TestDifferentialQbfGadgets(t *testing.T) {
	r := rand.New(rand.NewSource(507))
	for i := 0; i < 15; i++ {
		q := sat.RandomQBF(r, 1+r.Intn(3), 1+r.Intn(3))
		want, err := sat.SolveQBF(q)
		if err != nil {
			t.Fatal(err)
		}
		n, err := reduce.QbfGadget(q)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		got, _, err := belief.SolveAcyclic(n, 0, game.Options{})
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("iter %d: belief S_a=%v but QBF=%v for %s", i, got, want, q)
		}
		checkAgainstLegacy(t, n, false, fmt.Sprintf("gadget %d", i))
	}
}

// TestDifferentialPhilosophers pins the cyclic semantics on the canonical
// deadlock-prone ring, where the context both diverges silently and
// blocks.
func TestDifferentialPhilosophers(t *testing.T) {
	for _, m := range []int{2, 3} {
		n, err := bench.Philosophers(m)
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstLegacy(t, n, true, fmt.Sprintf("philosophers %d", m))
		p, err := bench.PhilosophersPolite(m)
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstLegacy(t, p, true, fmt.Sprintf("polite philosophers %d", m))
	}
}

// TestDeterministicStats reruns one instance and requires identical
// statistics — the engine's worklists are sequential and ordered. The
// probe is pinned off so the run exercises the enumeration passes (on
// the ring it would otherwise decide from a handful of raw vectors).
func TestDeterministicStats(t *testing.T) {
	n, err := bench.Philosophers(3)
	if err != nil {
		t.Fatal(err)
	}
	noProbe := belief.Tuning{NoProbe: true}
	_, st1, err := belief.SolveCyclicTuned(n, 0, game.Options{}, noProbe)
	if err != nil {
		t.Fatal(err)
	}
	_, st2, err := belief.SolveCyclicTuned(n, 0, game.Options{}, noProbe)
	if err != nil {
		t.Fatal(err)
	}
	if st1 != st2 {
		t.Fatalf("stats differ across runs: %+v vs %+v", st1, st2)
	}
	if st1.CtxStates == 0 || st1.Beliefs == 0 || st1.Positions == 0 {
		t.Fatalf("implausible stats: %+v", st1)
	}
}

// TestBudgetExhaustion forces the position budget and requires a
// well-formed partial verdict naming a belief-engine pass.
func TestBudgetExhaustion(t *testing.T) {
	n, err := bench.Philosophers(4)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = belief.SolveCyclicTuned(n, 0, game.Options{Budget: 8}, belief.Tuning{NoProbe: true})
	if !errors.Is(err, game.ErrBudget) {
		t.Fatalf("err = %v, want game.ErrBudget", err)
	}
	var le *guard.LimitErr
	if !errors.As(err, &le) {
		t.Fatalf("err %v is not a *guard.LimitErr", err)
	}
	switch le.Partial.Pass {
	case "ctx-bfs", "game":
		// Both passes consume the same budget; either may hit it first.
	default:
		t.Errorf("partial names pass %q, want ctx-bfs or game", le.Partial.Pass)
	}
	if le.Partial.States == 0 {
		t.Error("partial carries no progress measure")
	}
}

// TestTauPRejected requires the legacy sentinel for a τ-ful distinguished
// process.
func TestTauPRejected(t *testing.T) {
	b := fsp.NewBuilder("P")
	s0, s1 := b.State("a"), b.State("b")
	b.Add(s0, fsp.Tau, s1)
	b.Add(s0, "x", s1)
	p := b.MustBuild()
	qb := fsp.NewBuilder("Q")
	q0, q1 := qb.State("a"), qb.State("b")
	qb.Add(q0, "x", q1)
	n, err := network.New(p, qb.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := belief.SolveAcyclic(n, 0, game.Options{}); !errors.Is(err, game.ErrTauMoves) {
		t.Fatalf("err = %v, want game.ErrTauMoves", err)
	}
	if _, _, err := belief.SolveCyclic(n, 0, game.Options{}); !errors.Is(err, game.ErrTauMoves) {
		t.Fatalf("err = %v, want game.ErrTauMoves", err)
	}
}
