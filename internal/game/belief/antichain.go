package belief

// This file holds the subsumption antichains behind the engine's
// pruning. Winning positions are downward closed in the belief — a
// smaller belief gives the adversary fewer states to steer from, so
// offerable actions, steps, and blockedness all shrink monotonically and
// any strategy winning against the larger belief wins against the
// smaller — and losing positions are the mirror image, upward closed.
// Per P-state the engine therefore keeps the ⊆-maximal known-winning
// beliefs and the ⊆-minimal known-losing ones; a word-wise AND/compare
// against those rows resolves a fresh position without expansion.

// antichain is a set of pairwise ⊆-incomparable belief bitsets, stored
// as flat packed rows of words uint64s each.
type antichain struct {
	words int
	rows  []uint64
}

// antichainCap bounds the rows one antichain retains. Past the cap new
// rows are dropped — the antichain is only a filter, so checks stay
// sound — keeping maintenance linear on pathological position sets.
const antichainCap = 512

func newAntichains(np, words int) []antichain {
	acs := make([]antichain, np)
	for i := range acs {
		acs[i].words = words
	}
	return acs
}

func (ac *antichain) size() int {
	if ac.words == 0 {
		return 0
	}
	return len(ac.rows) / ac.words
}

// hasSuperset reports whether some row w satisfies b ⊆ w.
func (ac *antichain) hasSuperset(b []uint64) bool {
	words := ac.words
	for off := 0; off < len(ac.rows); off += words {
		row := ac.rows[off : off+words]
		ok := true
		for i, bw := range b {
			if bw&^row[i] != 0 {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// hasSubset reports whether some row l satisfies l ⊆ b.
func (ac *antichain) hasSubset(b []uint64) bool {
	words := ac.words
	for off := 0; off < len(ac.rows); off += words {
		row := ac.rows[off : off+words]
		ok := true
		for i, bw := range b {
			if row[i]&^bw != 0 {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// insertMax adds b as a candidate maximal row: dropped when some row
// already contains it, evicting the rows it strictly contains. Reports
// whether b was retained. The single pass is safe: a row ⊇ b can only
// coexist with an evictable row ⊂ b if the antichain invariant is
// already broken, so no eviction ever precedes the subsumed early
// return.
func (ac *antichain) insertMax(b []uint64) bool {
	words := ac.words
	w := 0
	for off := 0; off < len(ac.rows); off += words {
		row := ac.rows[off : off+words]
		sub, sup := true, true // row ⊆ b, b ⊆ row
		for i, bw := range b {
			if row[i]&^bw != 0 {
				sub = false
			}
			if bw&^row[i] != 0 {
				sup = false
			}
			if !sub && !sup {
				break
			}
		}
		if sup {
			return false // b ⊆ row (covers equality): nothing to learn
		}
		if sub {
			continue // row ⊂ b: evict
		}
		if w != off {
			copy(ac.rows[w:w+words], row)
		}
		w += words
	}
	ac.rows = ac.rows[:w]
	if ac.size() >= antichainCap {
		return false
	}
	ac.rows = append(ac.rows, b...)
	return true
}

// insertMin is the order dual of insertMax: b is dropped when some row
// is already contained in it, evicting the rows that strictly contain
// it.
func (ac *antichain) insertMin(b []uint64) bool {
	words := ac.words
	w := 0
	for off := 0; off < len(ac.rows); off += words {
		row := ac.rows[off : off+words]
		sub, sup := true, true // row ⊆ b, b ⊆ row
		for i, bw := range b {
			if row[i]&^bw != 0 {
				sub = false
			}
			if bw&^row[i] != 0 {
				sup = false
			}
			if !sub && !sup {
				break
			}
		}
		if sub {
			return false // row ⊆ b (covers equality): nothing to learn
		}
		if sup {
			continue // b ⊂ row: evict
		}
		if w != off {
			copy(ac.rows[w:w+words], row)
		}
		w += words
	}
	ac.rows = ac.rows[:w]
	if ac.size() >= antichainCap {
		return false
	}
	ac.rows = append(ac.rows, b...)
	return true
}
