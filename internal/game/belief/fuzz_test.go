package belief_test

import (
	"math/rand"
	"testing"

	"fspnet/internal/bench"
	"fspnet/internal/fsptest"
	"fspnet/internal/game"
	"fspnet/internal/game/belief"
	"fspnet/internal/guard"
	"fspnet/internal/network"
	"fspnet/internal/reduce"
)

// FuzzDifferentialSa cross-checks the belief engine against the legacy
// compose-then-recurse solver on randomized instances. mode selects the
// generator: random acyclic tree networks, random cyclic (leafless) tree
// networks, or Theorem 2 QBF gadgets; the remaining bytes steer the
// instance size. Every divergence is a soundness bug in one of the two
// engines.
func FuzzDifferentialSa(f *testing.F) {
	// Seed corpus: both Figure 4 semantics on trees, plus Theorem 2
	// gadget fixtures.
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed, uint8(seed%5), uint8(0))
		f.Add(seed, uint8(seed%5), uint8(1))
		f.Add(seed, uint8(seed%4), uint8(2))
	}
	f.Fuzz(func(t *testing.T, seed int64, size, mode uint8) {
		var (
			n      *network.Network
			cyclic bool
			err    error
		)
		switch mode % 3 {
		case 0, 1:
			cyclic = mode%3 == 1
			r := rand.New(rand.NewSource(seed))
			n = fsptest.TreeNetwork(r, fsptest.NetConfig{
				Procs:          2 + int(size)%4,
				ActionsPerEdge: 1 + int(size)%2,
				MaxStates:      3 + int(size)%3,
				TauProb:        0.2,
				Cyclic:         cyclic,
			})
		case 2:
			n, err = reduce.QbfGadget(bench.QbfInstance(seed, 1+int(size)%3))
			if err != nil {
				t.Skip() // unsupported random formula shape
			}
		}
		q, err := n.Context(0, cyclic)
		if err != nil {
			t.Fatal(err)
		}
		var want bool
		if cyclic {
			want, err = game.SolveCyclic(n.Process(0), q)
		} else {
			want, err = game.SolveAcyclic(n.Process(0), q)
		}
		if err != nil {
			if guard.IsLimit(err) {
				t.Skip() // instance too large for the oracle's default budget
			}
			t.Fatal(err)
		}
		var got bool
		if cyclic {
			got, _, err = belief.SolveCyclic(n, 0, game.Options{})
		} else {
			got, _, err = belief.SolveAcyclic(n, 0, game.Options{})
		}
		if err != nil {
			t.Fatalf("belief engine failed where the oracle succeeded: %v", err)
		}
		if got != want {
			t.Fatalf("divergence: belief S_a=%v, legacy S_a=%v (seed=%d size=%d mode=%d)",
				got, want, seed, size, mode)
		}
		// Third engine configuration: pruned multi-worker against the
		// unpruned sequential oracle tuning. The production default above
		// already exercised the antichains; this pins the parallel sweep
		// and the no-antichain path to the same verdict.
		solve := belief.SolveAcyclicTuned
		if cyclic {
			solve = belief.SolveCyclicTuned
		}
		par, _, err := solve(n, 0, game.Options{}, belief.Tuning{Workers: 3})
		if err != nil {
			t.Fatalf("pruned-parallel engine failed where the oracle succeeded: %v", err)
		}
		seq, _, err := solve(n, 0, game.Options{}, belief.Tuning{NoAntichain: true, Workers: 1})
		if err != nil {
			t.Fatalf("unpruned-sequential engine failed where the oracle succeeded: %v", err)
		}
		if par != want || seq != want {
			t.Fatalf("tuning divergence: pruned-parallel=%v, unpruned-sequential=%v, legacy=%v (seed=%d size=%d mode=%d)",
				par, seq, want, seed, size, mode)
		}
	})
}
