// White-box concurrency regression tests for the belief arena and step
// memo. The PR 5 arena interned through a single shared key scratch and
// was documented single-threaded-only; the sharded arena must tolerate
// concurrent interns of equal and distinct sets (run under -race) and
// keep ids consistent: one id per distinct set, contents retrievable
// after later appends reallocate a shard's backing array.
package belief

import (
	"sync"
	"testing"
)

// TestArenaConcurrentIntern hammers the arena from several goroutines,
// each with its own scratch, interning an overlapping family of bitsets.
// Every goroutine must observe the same id for the same set.
func TestArenaConcurrentIntern(t *testing.T) {
	const (
		words   = 3
		workers = 8
		sets    = 400
	)
	mk := func(i int) []uint64 {
		return []uint64{uint64(i) * 0x9e3779b97f4a7c15, uint64(i), ^uint64(i)}
	}
	ar := newArena(words)
	got := make([][]int32, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := newScratch(words)
			ids := make([]int32, sets)
			for i := 0; i < sets; i++ {
				copy(sc.buf, mk(i))
				ids[i], _ = ar.intern(sc.kb, sc.buf)
			}
			got[w] = ids
		}(w)
	}
	wg.Wait()
	if ar.size() != sets {
		t.Fatalf("arena holds %d sets, want %d", ar.size(), sets)
	}
	for w := 1; w < workers; w++ {
		for i := 0; i < sets; i++ {
			if got[w][i] != got[0][i] {
				t.Fatalf("worker %d got id %d for set %d, worker 0 got %d", w, got[w][i], i, got[0][i])
			}
		}
	}
	// Slices handed out by set must stay valid after the appends above
	// grew the shards: contents are immutable, so they must match the
	// original words exactly.
	for i := 0; i < sets; i++ {
		s := ar.set(got[0][i])
		for k, want := range mk(i) {
			if s[k] != want {
				t.Fatalf("set %d word %d = %#x, want %#x", i, k, s[k], want)
			}
		}
	}
}

// TestArenaSetAliasStable pins the append-only aliasing contract
// explicitly: a slice taken early must survive enough later interns to
// force every shard's backing array through several reallocations.
func TestArenaSetAliasStable(t *testing.T) {
	const words = 2
	ar := newArena(words)
	sc := newScratch(words)
	copy(sc.buf, []uint64{0xdeadbeef, 0xfeedface})
	bid, fresh := ar.intern(sc.kb, sc.buf)
	if !fresh {
		t.Fatal("first intern not fresh")
	}
	early := ar.set(bid)
	for i := 1; i < 4096; i++ {
		sc.buf[0], sc.buf[1] = uint64(i), uint64(i*3)
		ar.intern(sc.kb, sc.buf)
	}
	if early[0] != 0xdeadbeef || early[1] != 0xfeedface {
		t.Fatalf("early slice corrupted after growth: %#x %#x", early[0], early[1])
	}
}

// TestStepTableConcurrent races get/put over a shared key range; the
// memo must stay consistent (a key only ever maps to the value written
// for it) under -race.
func TestStepTableConcurrent(t *testing.T) {
	tab := newStepTable()
	const (
		workers = 8
		keys    = 512
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := uint64(0); k < keys; k++ {
				if v, ok := tab.get(k); ok {
					if v != int32(k*7) {
						t.Errorf("key %d = %d, want %d", k, v, int32(k*7))
						return
					}
					continue
				}
				tab.put(k, int32(k*7))
			}
		}()
	}
	wg.Wait()
	for k := uint64(0); k < keys; k++ {
		if v, ok := tab.get(k); !ok || v != int32(k*7) {
			t.Fatalf("key %d = %d (present %v), want %d", k, v, ok, int32(k*7))
		}
	}
}
