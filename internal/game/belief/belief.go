// Package belief is the compose-free S_a engine: it solves Game(P, Q) of
// Figure 4 directly against the network context as joint state vectors,
// never materializing the composed context Q via ‖.
//
// The context a distinguished process plays against is itself a network
// — the remaining m−1 components — and the game's belief sets range over
// the states Q could have reached on the observed action trail. The
// package therefore enumerates the reachable context vectors on the fly
// (reusing internal/explore's action-owner index and sharded interner,
// so memory is proportional to the reachable context space, never to the
// intermediate products a ‖ fold builds), assigns them dense ids, and
// represents each belief as a word-packed []uint64 bitset over those
// ids. Beliefs are interned in an FNV-sharded arena whose equality is a
// memcmp of the packed words, and each (belief, action) step — one
// visible move followed by τ-closure — is computed once and memoized.
//
// The acyclic game is evaluated by an iterative worklist (an explicit
// DFS stack over the position DAG; P is acyclic, so positions cannot
// repeat along a play), and the Section 4 cyclic game by a greatest
// fixpoint over the same interned position graph, eliminated with
// counter-based backward propagation. Both solvers are sequential and
// run their passes in a fixed order, so verdicts, statistics, and every
// partial verdict reported at a worklist barrier are deterministic.
//
// Cyclic semantics. The reference oracle folds the context with
// ComposeAllCyclic, which inserts a divergence leaf ⊥ under every
// silently diverging composite state — including states of intermediate
// fold products. On the flat context graph the engine mirrors the fold's
// observable effect with a single synthetic ⊥: one extra stable,
// action-less context state, reachable by a context-τ edge from every
// vector that can reach a context-internal-move cycle via context moves.
// A belief containing ⊥ is blocked for every P action set, exactly as a
// belief containing a fold-⊥ is. Intermediate fold products can also
// create "dead-prefix" composite states (⊥_j, t) that still offer
// visible actions; whenever such a state enters a fold-side belief, the
// prefix-divergent live state it shadows is in both beliefs and forces
// the total ⊥ into both, so the two models block the same positions and
// the verdicts agree (the differential fuzz suite pins this). Mirroring
// ComposeAllCyclic's asymmetry, a two-process network's context — one
// raw member, never composed — gets no ⊥.
package belief

import (
	"fmt"

	"fspnet/internal/explore"
	"fspnet/internal/fsp"
	"fspnet/internal/game"
	"fspnet/internal/guard"
	"fspnet/internal/network"
)

// pollStride amortizes governor polls inside the sequential worklists:
// one Poll per stride of context states, game positions, or fixpoint
// removals, so fault injection can target a specific depth of a pass.
const pollStride = 1024

// Stats describes one belief-engine run. All fields are deterministic
// functions of the network, the distinguished process, and the budget.
type Stats struct {
	CtxStates int // interned reachable context vectors (incl. the synthetic ⊥)
	Beliefs   int // interned belief bitsets
	Positions int // (P-state, belief) game positions explored
}

// SolveAcyclic decides the acyclic Game(P, Q) for process i of n, with Q
// the (never materialized) composed context: P wins iff it has a
// strategy guaranteeing it reaches one of its leaves. The verdict equals
// game.SolveAcyclic on the composed context. o.Budget bounds both the
// enumerated context states and the game positions (≤ 0 means
// game.DefaultBudget); o.Guard governs every pass.
func SolveAcyclic(n *network.Network, i int, o game.Options) (bool, Stats, error) {
	M, err := explore.Compile(n, i)
	if err != nil {
		return false, Stats{}, err
	}
	if err := checkP(n.Process(i)); err != nil {
		return false, Stats{}, err
	}
	if err := M.CheckAcyclicShape(budget(o), o.Guard); err != nil {
		if guard.IsLimit(err) {
			err = o.Guard.Limit(fmt.Errorf("belief: %w", err), guard.Partial{Pass: "shape"})
		}
		return false, Stats{}, err
	}
	sv, err := newSolver(M, false, o)
	if err != nil {
		return false, sv.stats, err
	}
	win, err := sv.solveAcyclic()
	return win, sv.stats, err
}

// SolveCyclic decides the Section 4 cyclic Game(P, Q) for process i of
// n: P wins iff it can keep the game going forever against adversarial
// Q, whose silent-divergence options appear as the synthetic ⊥ state.
// The verdict equals game.SolveCyclic on the cyclically composed
// context. P must be τ-free.
func SolveCyclic(n *network.Network, i int, o game.Options) (bool, Stats, error) {
	M, err := explore.Compile(n, i)
	if err != nil {
		return false, Stats{}, err
	}
	if err := checkP(n.Process(i)); err != nil {
		return false, Stats{}, err
	}
	sv, err := newSolver(M, true, o)
	if err != nil {
		return false, sv.stats, err
	}
	win, err := sv.solveCyclic()
	return win, sv.stats, err
}

// checkP validates the Figure 4 assumption on the distinguished process,
// with the same sentinel the legacy solver reports.
func checkP(p *fsp.FSP) error {
	for _, t := range p.Transitions() {
		if t.Label == fsp.Tau {
			return fmt.Errorf("%s: %w", p.Name(), game.ErrTauMoves)
		}
	}
	return nil
}

func budget(o game.Options) int {
	if o.Budget <= 0 {
		return game.DefaultBudget
	}
	return o.Budget
}

// solver carries one run's compiled machine, context graph, belief
// arena, and P move tables. All passes are sequential.
type solver struct {
	M      *explore.Machine
	cg     *ctxGraph
	ar     *arena
	g      *guard.G
	budget int
	stats  Stats

	startGid int32
	pacts    [][]int32          // per P state: sorted unique action ids
	pvis     [][]explore.VisMove // per P state: moves sorted by (aid, to)

	stepMemo   map[uint64]int32 // (belief, action) → stepped belief (−1: no offer)
	buf        []uint64         // scratch bitset for step/closure
	closeStack []int32          // scratch worklist for τ-closure
}

// newSolver enumerates the context graph and prepares the P tables. A
// partially initialized solver (with barrier-accurate stats) is returned
// even on error so callers can report them.
func newSolver(M *explore.Machine, cyclic bool, o game.Options) (*solver, error) {
	sv := &solver{M: M, g: o.Guard, budget: budget(o), stepMemo: make(map[uint64]int32)}
	cg, startGid, err := sv.buildCtx(cyclic)
	if err != nil {
		return sv, err
	}
	sv.cg = cg
	sv.startGid = startGid
	sv.ar = newArena(cg.words())
	sv.buf = make([]uint64, cg.words())
	np := M.NumDistStates()
	sv.pvis = make([][]explore.VisMove, np)
	sv.pacts = make([][]int32, np)
	for s := 0; s < np; s++ {
		mv := M.DistMoves(uint32(s))
		sv.pvis[s] = mv
		var acts []int32
		for _, t := range mv {
			if len(acts) == 0 || acts[len(acts)-1] != t.Aid {
				acts = append(acts, t.Aid)
			}
		}
		sv.pacts[s] = acts
	}
	return sv, nil
}

// limit wraps a stop reason into a *guard.LimitErr. states is the
// pass-specific progress measure (context states or game positions),
// taken at the last deterministic barrier.
func (sv *solver) limit(reason error, pass string, states int) error {
	return sv.g.Limit(reason, guard.Partial{States: states, Pass: pass})
}

// poll runs the amortized governor check for the named pass.
func (sv *solver) poll(pass string, n int) error {
	if n%pollStride != 0 {
		return nil
	}
	if err := sv.g.Poll(pass, n/pollStride); err != nil {
		return sv.limit(fmt.Errorf("belief: %s stopped at %d: %w", pass, n, err), pass, n)
	}
	return nil
}

// chargePos accounts one fresh game position against the budget and the
// governor. Call after incrementing stats.Positions.
func (sv *solver) chargePos() error {
	n := sv.stats.Positions
	if n > sv.budget {
		return sv.limit(fmt.Errorf("belief: %d positions: %w", n, game.ErrBudget), "game", n)
	}
	if err := sv.poll("game", n); err != nil {
		return err
	}
	if err := sv.g.Charge(1); err != nil {
		return sv.limit(fmt.Errorf("belief: %d positions: %w", n, err), "game", n)
	}
	return nil
}

// succRange returns the index range of P's moves on aid at state p, as
// [lo, hi) into pvis[p]. The range is never empty for aid ∈ pacts[p].
func (sv *solver) succRange(p uint32, aid int32) (int, int) {
	mv := sv.pvis[p]
	lo := 0
	hi := len(mv)
	for lo < hi {
		mid := (lo + hi) / 2
		if mv[mid].Aid < aid {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	end := lo
	for end < len(mv) && mv[end].Aid == aid {
		end++
	}
	return lo, end
}
