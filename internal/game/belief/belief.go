// Package belief is the compose-free S_a engine: it solves Game(P, Q) of
// Figure 4 directly against the network context as joint state vectors,
// never materializing the composed context Q via ‖.
//
// The context a distinguished process plays against is itself a network
// — the remaining m−1 components — and the game's belief sets range over
// the states Q could have reached on the observed action trail. The
// package therefore enumerates the reachable context vectors on the fly
// (reusing internal/explore's action-owner index and sharded interner,
// so memory is proportional to the reachable context space, never to the
// intermediate products a ‖ fold builds), assigns them dense ids, and
// represents each belief as a word-packed []uint64 bitset over those
// ids. Beliefs are interned in an FNV-sharded arena whose equality is a
// memcmp of the packed words, and each (belief, action) step — one
// visible move followed by τ-closure — is computed once and memoized.
//
// The acyclic game is evaluated by an iterative worklist (an explicit
// DFS stack over the position DAG; P is acyclic, so positions cannot
// repeat along a play), and the Section 4 cyclic game by a greatest
// fixpoint over the same interned position graph, eliminated with
// counter-based backward propagation. Both solvers prune positions by
// subsumption against per-P-state antichains of known-winning (maximal)
// and known-losing (minimal) beliefs — wins are downward closed and
// losses upward closed in the belief, so a word-wise compare against the
// packed rows resolves a position without expansion (see antichain.go).
// The cyclic reachability sweep and fixpoint elimination optionally
// shard across worker goroutines (Tuning.Workers) with level-
// synchronized barriers that merge results in position order, so
// verdicts, statistics, and every partial verdict reported at a barrier
// are deterministic and independent of the worker count; the acyclic DFS
// is sequential.
//
// Cyclic semantics. The reference oracle folds the context with
// ComposeAllCyclic, which inserts a divergence leaf ⊥ under every
// silently diverging composite state — including states of intermediate
// fold products. On the flat context graph the engine mirrors the fold's
// observable effect with a single synthetic ⊥: one extra stable,
// action-less context state, reachable by a context-τ edge from every
// vector that can reach a context-internal-move cycle via context moves.
// A belief containing ⊥ is blocked for every P action set, exactly as a
// belief containing a fold-⊥ is. Intermediate fold products can also
// create "dead-prefix" composite states (⊥_j, t) that still offer
// visible actions; whenever such a state enters a fold-side belief, the
// prefix-divergent live state it shadows is in both beliefs and forces
// the total ⊥ into both, so the two models block the same positions and
// the verdicts agree (the differential fuzz suite pins this). Mirroring
// ComposeAllCyclic's asymmetry, a two-process network's context — one
// raw member, never composed — gets no ⊥.
package belief

import (
	"fmt"
	"runtime"

	"fspnet/internal/explore"
	"fspnet/internal/fsp"
	"fspnet/internal/game"
	"fspnet/internal/guard"
	"fspnet/internal/network"
	"fspnet/internal/symred"
)

// pollStride amortizes governor polls inside the sequential worklists:
// one Poll per stride of context states, game positions, or fixpoint
// removals, so fault injection can target a specific depth of a pass.
const pollStride = 1024

// Stats describes one belief-engine run. All fields are deterministic
// functions of the network, the distinguished process, the budget, and
// the Tuning — including across worker counts: the parallel sweep merges
// at deterministic barriers, so the same instance always reports the
// same numbers.
type Stats struct {
	CtxStates int // interned reachable context vectors (incl. the synthetic ⊥)
	Beliefs   int // interned belief bitsets
	Positions int // (P-state, belief) game positions explored (and charged)
	// AntichainHits counts successful subsumption queries: positions
	// resolved against a per-P-state win/lose antichain — without
	// expansion in the acyclic DFS, without a blocked scan in the cyclic
	// sweep.
	AntichainHits int
	// AntichainElems is the total number of antichain rows retained
	// across all P-states when the solve finished.
	AntichainElems int
	// Pruned counts position expansions the antichain avoided entirely:
	// acyclic DFS hits, each of which skips a whole subtree. Cyclic hits
	// skip only the blocked scan (the position is dead either way), so
	// they count toward AntichainHits but not Pruned.
	Pruned int
	// Workers is the resolved cyclic-sweep parallelism (1 for the
	// acyclic DFS and the sequential oracle configuration).
	Workers int
	// GroupOrder is the discovered order of the dist-stabilizer symmetry
	// subgroup the context quotient used (a lower bound from the element
	// set; 1 when symmetry is off or the subgroup is trivial).
	GroupOrder int
	// SymHits counts context successors the canonicalization moved onto a
	// different orbit representative during the context BFS.
	SymHits int
	// ProbeStates is the number of raw context vectors the cyclic witness
	// probe visited (0 when the probe is off or the game is acyclic).
	ProbeStates int
}

// Tuning selects engine variants. The zero value is the production
// default: antichain pruning on, cyclic sweep workers = GOMAXPROCS. The
// differential oracle pins Tuning{NoAntichain: true, Workers: 1} — the
// unpruned sequential engine.
type Tuning struct {
	// NoAntichain disables subsumption pruning against the per-P-state
	// win/lose antichains.
	NoAntichain bool
	// Workers shards the cyclic reachability sweep and fixpoint
	// elimination; ≤ 0 means runtime.GOMAXPROCS(0), 1 runs the sweep
	// inline. The acyclic DFS is always sequential.
	Workers int
	// NoSymmetry disables the dist-stabilizer orbit quotient of the
	// context graph. Like NoAntichain it changes only how the verdict is
	// computed, never the verdict.
	NoSymmetry bool
	// NoProbe disables the bounded cyclic witness probe that can decide
	// S_a = false from a handful of raw context vectors before the
	// context is enumerated.
	NoProbe bool
}

// workers resolves the cyclic sweep parallelism.
func (t Tuning) workers() int {
	if t.Workers > 0 {
		return t.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// SolveAcyclic decides the acyclic Game(P, Q) for process i of n, with Q
// the (never materialized) composed context: P wins iff it has a
// strategy guaranteeing it reaches one of its leaves. The verdict equals
// game.SolveAcyclic on the composed context. o.Budget bounds both the
// enumerated context states and the game positions (≤ 0 means
// game.DefaultBudget); o.Guard governs every pass.
func SolveAcyclic(n *network.Network, i int, o game.Options) (bool, Stats, error) {
	return SolveAcyclicTuned(n, i, o, Tuning{})
}

// SolveAcyclicTuned is SolveAcyclic with an explicit engine Tuning.
func SolveAcyclicTuned(n *network.Network, i int, o game.Options, t Tuning) (bool, Stats, error) {
	M, err := explore.Compile(n, i)
	if err != nil {
		return false, Stats{}, err
	}
	if err := checkP(n.Process(i)); err != nil {
		return false, Stats{}, err
	}
	if err := M.CheckAcyclicShape(budget(o), o.Guard); err != nil {
		if guard.IsLimit(err) {
			err = o.Guard.Limit(fmt.Errorf("belief: %w", err), guard.Partial{Pass: "shape"})
		}
		return false, Stats{}, err
	}
	sv, err := newSolver(M, false, o, t, distSubgroup(n, i, t))
	if err != nil {
		return false, sv.stats, err
	}
	win, err := sv.solveAcyclic()
	sv.finishStats()
	return win, sv.stats, err
}

// SolveCyclic decides the Section 4 cyclic Game(P, Q) for process i of
// n: P wins iff it can keep the game going forever against adversarial
// Q, whose silent-divergence options appear as the synthetic ⊥ state.
// The verdict equals game.SolveCyclic on the cyclically composed
// context. P must be τ-free.
func SolveCyclic(n *network.Network, i int, o game.Options) (bool, Stats, error) {
	return SolveCyclicTuned(n, i, o, Tuning{})
}

// SolveCyclicTuned is SolveCyclic with an explicit engine Tuning.
func SolveCyclicTuned(n *network.Network, i int, o game.Options, t Tuning) (bool, Stats, error) {
	M, err := explore.Compile(n, i)
	if err != nil {
		return false, Stats{}, err
	}
	if err := checkP(n.Process(i)); err != nil {
		return false, Stats{}, err
	}
	grp := distSubgroup(n, i, t)
	order := 1
	if grp != nil {
		order = grp.Order()
	}
	var probed int
	if !t.NoProbe {
		pr, perr := probeCtx(M, o.Guard)
		probed = pr.states
		if perr != nil {
			return false, Stats{GroupOrder: order, ProbeStates: probed, Workers: t.workers()}, perr
		}
		if pr.saFalse {
			// The probe's witness (reachable context divergence, a stable
			// refusing state in the start closure, or P starting at a leaf)
			// kills the start position outright; no enumeration needed.
			return false, Stats{GroupOrder: order, ProbeStates: probed, Workers: t.workers()}, nil
		}
	}
	sv, err := newSolver(M, true, o, t, grp)
	sv.stats.ProbeStates = probed
	if err != nil {
		return false, sv.stats, err
	}
	win, err := sv.solveCyclic()
	sv.finishStats()
	return win, sv.stats, err
}

// distSubgroup discovers the network's automorphism group and cuts it
// down to the elements that fix the distinguished process and every
// action it owns — the part of the symmetry the Game(P, Q) semantics
// cannot observe. Returns nil when tuning disables symmetry or the
// subgroup is trivial.
func distSubgroup(n *network.Network, i int, t Tuning) *symred.Group {
	if t.NoSymmetry {
		return nil
	}
	if g := symred.Discover(n).DistSubgroup(i); !g.Trivial() {
		return g
	}
	return nil
}

// checkP validates the Figure 4 assumption on the distinguished process,
// with the same sentinel the legacy solver reports.
func checkP(p *fsp.FSP) error {
	for _, t := range p.Transitions() {
		if t.Label == fsp.Tau {
			return fmt.Errorf("%s: %w", p.Name(), game.ErrTauMoves)
		}
	}
	return nil
}

func budget(o game.Options) int {
	if o.Budget <= 0 {
		return game.DefaultBudget
	}
	return o.Budget
}

// solver carries one run's compiled machine, context graph, belief
// arena, and P move tables. The context passes and the acyclic DFS are
// sequential; the cyclic sweep may shard across workers, each with its
// own scratch, sharing only the arena and the step memo.
type solver struct {
	M      *explore.Machine
	cg     *ctxGraph
	ar     *arena
	g      *guard.G
	budget int
	tune   Tuning
	stats  Stats

	startGid int32
	pacts    [][]int32          // per P state: sorted unique action ids
	pvis     [][]explore.VisMove // per P state: moves sorted by (aid, to)

	memo *stepTable // (belief, action) → stepped belief (−1: no offer)
	sc   *scratch   // the sequential passes' scratch

	// grp is the dist-stabilizer symmetry subgroup the context BFS
	// quotients by; nil when symmetry is off or the subgroup is trivial.
	grp *symred.Group

	// Subsumption antichains, per P state; nil when tune.NoAntichain.
	// winAC holds ⊆-maximal winning beliefs (fed by the acyclic DFS
	// only), loseAC ⊆-minimal losing beliefs (acyclic: any lost
	// position; cyclic: minimal blocked beliefs, fed at level barriers).
	winAC  []antichain
	loseAC []antichain
	// acFeeds counts antichain insertions, driving the amortized
	// "antichain" governor polls.
	acFeeds int
}

// newSolver enumerates the context graph and prepares the P tables. A
// partially initialized solver (with barrier-accurate stats) is returned
// even on error so callers can report them.
func newSolver(M *explore.Machine, cyclic bool, o game.Options, t Tuning, grp *symred.Group) (*solver, error) {
	sv := &solver{M: M, g: o.Guard, budget: budget(o), tune: t, memo: newStepTable(), grp: grp}
	sv.stats.GroupOrder = 1
	if grp != nil {
		sv.stats.GroupOrder = grp.Order()
	}
	cg, startGid, err := sv.buildCtx(cyclic)
	if err != nil {
		return sv, err
	}
	sv.cg = cg
	sv.startGid = startGid
	sv.ar = newArena(cg.words())
	sv.sc = newScratch(cg.words())
	np := M.NumDistStates()
	sv.pvis = make([][]explore.VisMove, np)
	sv.pacts = make([][]int32, np)
	for s := 0; s < np; s++ {
		mv := M.DistMoves(uint32(s))
		sv.pvis[s] = mv
		var acts []int32
		for _, t := range mv {
			if len(acts) == 0 || acts[len(acts)-1] != t.Aid {
				acts = append(acts, t.Aid)
			}
		}
		sv.pacts[s] = acts
	}
	if !t.NoAntichain {
		sv.winAC = newAntichains(np, cg.words())
		sv.loseAC = newAntichains(np, cg.words())
	}
	return sv, nil
}

// finishStats fills the end-of-run aggregates: the interned belief count
// and the retained antichain rows.
func (sv *solver) finishStats() {
	if sv.ar != nil {
		sv.stats.Beliefs = sv.ar.size()
	}
	total := 0
	for i := range sv.winAC {
		total += sv.winAC[i].size()
	}
	for i := range sv.loseAC {
		total += sv.loseAC[i].size()
	}
	sv.stats.AntichainElems = total
}

// feedWin records a won position's belief in its P-state's win
// antichain, polling the "antichain" pass on an amortized stride.
func (sv *solver) feedWin(p uint32, bid int32) error {
	if sv.tune.NoAntichain {
		return nil
	}
	sv.winAC[p].insertMax(sv.ar.set(bid))
	err := sv.poll("antichain", sv.acFeeds)
	sv.acFeeds++
	return err
}

// feedLose is feedWin's dual for lost (or blocked) positions.
func (sv *solver) feedLose(p uint32, bid int32) error {
	if sv.tune.NoAntichain {
		return nil
	}
	sv.loseAC[p].insertMin(sv.ar.set(bid))
	err := sv.poll("antichain", sv.acFeeds)
	sv.acFeeds++
	return err
}

// limit wraps a stop reason into a *guard.LimitErr. states is the
// pass-specific progress measure (context states or game positions),
// taken at the last deterministic barrier.
func (sv *solver) limit(reason error, pass string, states int) error {
	return sv.g.Limit(reason, guard.Partial{States: states, Pass: pass})
}

// poll runs the amortized governor check for the named pass.
func (sv *solver) poll(pass string, n int) error {
	if n%pollStride != 0 {
		return nil
	}
	if err := sv.g.Poll(pass, n/pollStride); err != nil {
		return sv.limit(fmt.Errorf("belief: %s stopped at %d: %w", pass, n, err), pass, n)
	}
	return nil
}

// chargePos accounts one fresh game position against the budget and the
// governor. Call after incrementing stats.Positions.
func (sv *solver) chargePos() error {
	n := sv.stats.Positions
	if n > sv.budget {
		return sv.limit(fmt.Errorf("belief: %d positions: %w", n, game.ErrBudget), "game", n)
	}
	if err := sv.poll("game", n); err != nil {
		return err
	}
	if err := sv.g.Charge(1); err != nil {
		return sv.limit(fmt.Errorf("belief: %d positions: %w", n, err), "game", n)
	}
	return nil
}

// succRange returns the index range of P's moves on aid at state p, as
// [lo, hi) into pvis[p]. The range is never empty for aid ∈ pacts[p].
func (sv *solver) succRange(p uint32, aid int32) (int, int) {
	mv := sv.pvis[p]
	lo := 0
	hi := len(mv)
	for lo < hi {
		mid := (lo + hi) / 2
		if mv[mid].Aid < aid {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	end := lo
	for end < len(mv) && mv[end].Aid == aid {
		end++
	}
	return lo, end
}
