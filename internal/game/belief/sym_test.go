// Tests pinning the symmetry quotient and the witness probe of the
// belief engine: both are pure how-optimizations, so every configuration
// must return the oracle's verdict, and the quotient must genuinely
// shrink the context on the symmetric families.
package belief_test

import (
	"fmt"
	"testing"

	"fspnet/internal/bench"
	"fspnet/internal/fsp"
	"fspnet/internal/game"
	"fspnet/internal/game/belief"
	"fspnet/internal/network"
)

// TestProbeDecidesPhilosophers pins the probe fast path on the ring: the
// context diverges (any other philosopher's eat cycle is context-τ), so
// S_a is false from a handful of raw vectors, with no context
// enumeration at all — which is what makes philosophers20 feasible.
func TestProbeDecidesPhilosophers(t *testing.T) {
	for _, m := range []int{4, 10, 20} {
		n, err := bench.Philosophers(m)
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := belief.SolveCyclic(n, 0, game.Options{})
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if got {
			t.Fatalf("m=%d: S_a=true, want false", m)
		}
		if st.CtxStates != 0 {
			t.Errorf("m=%d: probe decided, yet %d context states enumerated", m, st.CtxStates)
		}
		if st.ProbeStates == 0 || st.ProbeStates > 64 {
			t.Errorf("m=%d: ProbeStates=%d, want a handful", m, st.ProbeStates)
		}
	}
	// The probe's verdict must match the full engine where the latter is
	// feasible.
	n, err := bench.Philosophers(4)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := belief.SolveCyclicTuned(n, 0, game.Options{}, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if want {
		t.Fatalf("oracle disagrees: S_a=%v, probe said false", want)
	}
}

// TestSymmetricCliqueQuotient compares the quotiented engine (probe off,
// so the context is actually enumerated) against the unreduced oracle on
// the hub-and-spoke family, and requires a real context reduction.
func TestSymmetricCliqueQuotient(t *testing.T) {
	for _, k := range []int{3, 5} {
		n, err := bench.SymmetricClique(k)
		if err != nil {
			t.Fatal(err)
		}
		want, raw, err := belief.SolveCyclicTuned(n, 0, game.Options{}, oracle)
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := belief.SolveCyclicTuned(n, 0, game.Options{}, belief.Tuning{NoProbe: true})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("k=%d: quotient S_a=%v, oracle S_a=%v", k, got, want)
		}
		if wantOrder := k*(k-1)/2 + 1; st.GroupOrder < wantOrder {
			t.Errorf("k=%d: GroupOrder=%d, want ≥ %d (the leaf transpositions)", k, st.GroupOrder, wantOrder)
		}
		if st.SymHits == 0 {
			t.Errorf("k=%d: quotient run reports zero canonicalization hits", k)
		}
		if st.CtxStates >= raw.CtxStates {
			t.Errorf("k=%d: quotient kept %d context states, oracle %d — no reduction",
				k, st.CtxStates, raw.CtxStates)
		}
		// The default configuration (probe on) must agree too.
		def, _, err := belief.SolveCyclic(n, 0, game.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if def != want {
			t.Fatalf("k=%d: default S_a=%v, oracle S_a=%v", k, def, want)
		}
	}
}

// acyclicFork builds an acyclic network whose two leaves are swappable
// without touching the distinguished process's alphabet: P nudges the
// hub with go, the hub then serves exactly one of two identical leaves.
func acyclicFork(t *testing.T) *network.Network {
	t.Helper()
	bp := fsp.NewBuilder("P")
	bp.Add(bp.State("p0"), "go", bp.State("p1"))
	bh := fsp.NewBuilder("Hub")
	h0, h1, h2 := bh.State("h0"), bh.State("h1"), bh.State("h2")
	bh.Add(h0, "go", h1)
	bh.Add(h1, "a1", h2)
	bh.Add(h1, "a2", h2)
	procs := []*fsp.FSP{bp.MustBuild(), bh.MustBuild()}
	for i := 1; i <= 2; i++ {
		bl := fsp.NewBuilder(fmt.Sprintf("Leaf%d", i))
		bl.Add(bl.State("l0"), fsp.Action(fmt.Sprintf("a%d", i)), bl.State("l1"))
		procs = append(procs, bl.MustBuild())
	}
	n, err := network.New(procs...)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestAcyclicSymmetryQuotient runs the acyclic solver on the fork: the
// two post-handshake context vectors collapse to one representative and
// the verdict must survive.
func TestAcyclicSymmetryQuotient(t *testing.T) {
	n := acyclicFork(t)
	want, raw, err := belief.SolveAcyclicTuned(n, 0, game.Options{}, oracle)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := belief.SolveAcyclic(n, 0, game.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("quotient S_a=%v, oracle S_a=%v", got, want)
	}
	if st.GroupOrder < 2 {
		t.Fatalf("GroupOrder=%d, want the leaf swap discovered", st.GroupOrder)
	}
	if st.SymHits == 0 || st.CtxStates >= raw.CtxStates {
		t.Errorf("no context reduction: %d vs %d (SymHits=%d)", st.CtxStates, raw.CtxStates, st.SymHits)
	}
}

// TestSymmetryWorkerDeterminism requires identical verdicts and stats
// from the quotiented cyclic engine across worker counts.
func TestSymmetryWorkerDeterminism(t *testing.T) {
	n, err := bench.SymmetricClique(4)
	if err != nil {
		t.Fatal(err)
	}
	var base belief.Stats
	for i, w := range []int{1, 2, 3, 8} {
		_, st, err := belief.SolveCyclicTuned(n, 0, game.Options{}, belief.Tuning{Workers: w, NoProbe: true})
		if err != nil {
			t.Fatal(err)
		}
		st.Workers = 0
		if i == 0 {
			base = st
		} else if st != base {
			t.Fatalf("stats differ at %d workers: %+v vs %+v", w, st, base)
		}
	}
}
