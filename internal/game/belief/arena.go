package belief

import (
	"encoding/binary"
	"math/bits"
)

// arenaShards is the belief-arena sharding factor; a power of two so the
// FNV hash of the packed words maps to a shard with a mask. Sharding
// keeps each shard's id map and flat block arena small, the same layout
// internal/explore uses for joint vectors.
const arenaShards = 64

// arena interns τ-closed belief bitsets. Each belief is words packed
// uint64s; the only copy lives in one shard's flat block arena, and the
// shard's id map keys on the little-endian byte image of the words, so
// equality is a memcmp of the packed words. Belief ids encode the shard
// in the low bits (bid = local<<6 | shard), giving every interned belief
// a stable dense-ish id without a global remap.
type arena struct {
	words  int
	count  int
	kb     []byte // scratch key: 8·words bytes
	shards [arenaShards]struct {
		ids  map[string]int32
		data []uint64
	}
}

func newArena(words int) *arena {
	ar := &arena{words: words, kb: make([]byte, 8*words)}
	for i := range ar.shards {
		ar.shards[i].ids = make(map[string]int32)
	}
	return ar
}

// intern records the bitset if unseen and returns its id and whether it
// was fresh. set is copied into the arena; callers may reuse it.
func (ar *arena) intern(set []uint64) (int32, bool) {
	const (
		fnvOffset uint64 = 14695981039346656037
		fnvPrime  uint64 = 1099511628211
	)
	kb := ar.kb
	h := fnvOffset
	for i, w := range set {
		binary.LittleEndian.PutUint64(kb[i*8:], w)
		h ^= w
		h *= fnvPrime
	}
	sh := &ar.shards[h&(arenaShards-1)]
	if bid, ok := sh.ids[string(kb)]; ok {
		return bid, false
	}
	local := int32(len(sh.data) / ar.words)
	bid := local<<6 | int32(h&(arenaShards-1))
	sh.ids[string(kb)] = bid
	sh.data = append(sh.data, set...)
	ar.count++
	return bid, true
}

// set returns the interned bitset of a belief id. The slice aliases the
// arena; callers must not modify it.
func (ar *arena) set(bid int32) []uint64 {
	sh := &ar.shards[bid&(arenaShards-1)]
	local := int(bid >> 6)
	return sh.data[local*ar.words : (local+1)*ar.words]
}

// startBelief interns the τ-closure of the context start state.
func (sv *solver) startBelief() int32 {
	buf := sv.buf
	for i := range buf {
		buf[i] = 0
	}
	buf[sv.startGid>>6] |= 1 << (uint(sv.startGid) & 63)
	sv.tauClose(buf)
	bid, fresh := sv.ar.intern(buf)
	if fresh {
		sv.stats.Beliefs++
	}
	return bid
}

// step computes the belief after P observes action aid from belief bid:
// every aid-successor of every member, τ-closed, interned. Returns −1
// when no member offers aid (the adversary cannot play it on this
// trail). Each (belief, action) pair is computed once and memoized.
func (sv *solver) step(bid int32, aid int32) int32 {
	key := uint64(uint32(bid))<<32 | uint64(uint32(aid))
	if nb, ok := sv.stepMemo[key]; ok {
		return nb
	}
	cur := sv.ar.set(bid)
	buf := sv.buf
	for i := range buf {
		buf[i] = 0
	}
	hit := false
	for w, word := range cur {
		for word != 0 {
			s := int32(w<<6 | bits.TrailingZeros64(word))
			word &= word - 1
			vm := sv.cg.vis[s]
			lo, hi := 0, len(vm)
			for lo < hi {
				mid := (lo + hi) / 2
				if vm[mid].aid < aid {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			for ; lo < len(vm) && vm[lo].aid == aid; lo++ {
				buf[vm[lo].to>>6] |= 1 << (uint(vm[lo].to) & 63)
				hit = true
			}
		}
	}
	nb := int32(-1)
	if hit {
		sv.tauClose(buf)
		var fresh bool
		nb, fresh = sv.ar.intern(buf)
		if fresh {
			sv.stats.Beliefs++
		}
	}
	sv.stepMemo[key] = nb
	return nb
}

// tauClose closes the bitset under the context's τ-moves (including the
// edge to the synthetic ⊥ from divergent states) in place.
func (sv *solver) tauClose(buf []uint64) {
	stack := sv.closeStack[:0]
	for w, word := range buf {
		for word != 0 {
			stack = append(stack, int32(w<<6|bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	//fsplint:ignore guardpoll bounded by the context τ-graph; context states are charged at interning
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range sv.cg.tau[s] {
			if buf[t>>6]&(1<<(uint(t)&63)) == 0 {
				buf[t>>6] |= 1 << (uint(t) & 63)
				stack = append(stack, t)
			}
		}
	}
	sv.closeStack = stack
}

// blocked reports whether the belief contains a stable context state
// offering no action in acts — the adversary can steer there and stop
// the game. The synthetic ⊥ is stable and offers nothing, so any belief
// containing it is blocked.
func (sv *solver) blocked(bid int32, acts []int32) bool {
	for w, word := range sv.ar.set(bid) {
		for word != 0 {
			s := int32(w<<6 | bits.TrailingZeros64(word))
			word &= word - 1
			if sv.cg.stable[s] && !intersect32(sv.cg.offers[s], acts) {
				return true
			}
		}
	}
	return false
}

// intersect32 reports whether two sorted int32 slices share an element.
func intersect32(xs, ys []int32) bool {
	i, j := 0, 0
	for i < len(xs) && j < len(ys) {
		switch {
		case xs[i] == ys[j]:
			return true
		case xs[i] < ys[j]:
			i++
		default:
			j++
		}
	}
	return false
}
