package belief

import (
	"encoding/binary"
	"math/bits"
	"sync"
	"sync/atomic"
)

// arenaShards is the belief-arena sharding factor; a power of two so the
// FNV hash of the packed words maps to a shard with a mask. Sharding
// keeps each shard's id map and flat block arena small, the same layout
// internal/explore uses for joint vectors.
const arenaShards = 64

// arena interns τ-closed belief bitsets. Each belief is words packed
// uint64s; the only copy lives in one shard's flat block arena, and the
// shard's id map keys on the little-endian byte image of the words, so
// equality is a memcmp of the packed words. Belief ids encode the shard
// in the low bits (bid = local<<6 | shard), giving every interned belief
// a stable dense-ish id without a global remap.
//
// The arena is safe for concurrent sweep workers: each shard carries its
// own RWMutex and callers bring their own key scratch (scratch.kb). The
// per-shard data arena is append-only and interned words are immutable,
// so a slice returned by set stays valid after the lock is dropped even
// if a later append reallocates the shard's backing array.
type arena struct {
	words int
	count atomic.Int64
	shards [arenaShards]struct {
		mu   sync.RWMutex
		ids  map[string]int32
		data []uint64
	}
}

func newArena(words int) *arena {
	ar := &arena{words: words}
	for i := range ar.shards {
		ar.shards[i].ids = make(map[string]int32)
	}
	return ar
}

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// intern records the bitset if unseen and returns its id and whether it
// was fresh. kb is the caller's 8·words key scratch; set is copied into
// the arena, so callers may reuse both.
func (ar *arena) intern(kb []byte, set []uint64) (int32, bool) {
	h := fnvOffset
	for i, w := range set {
		binary.LittleEndian.PutUint64(kb[i*8:], w)
		h ^= w
		h *= fnvPrime
	}
	si := int32(h & (arenaShards - 1))
	sh := &ar.shards[si]
	sh.mu.RLock()
	bid, ok := sh.ids[string(kb)]
	sh.mu.RUnlock()
	if ok {
		return bid, false
	}
	sh.mu.Lock()
	if bid, ok := sh.ids[string(kb)]; ok {
		sh.mu.Unlock()
		return bid, false
	}
	local := int32(len(sh.data) / ar.words)
	bid = local<<6 | si
	sh.ids[string(kb)] = bid
	sh.data = append(sh.data, set...)
	sh.mu.Unlock()
	ar.count.Add(1)
	return bid, true
}

// size returns the number of interned beliefs.
func (ar *arena) size() int { return int(ar.count.Load()) }

// set returns the interned bitset of a belief id. The slice aliases an
// immutable region of the arena; callers must not modify it.
func (ar *arena) set(bid int32) []uint64 {
	sh := &ar.shards[bid&(arenaShards-1)]
	local := int(bid >> 6)
	sh.mu.RLock()
	s := sh.data[local*ar.words : (local+1)*ar.words]
	sh.mu.RUnlock()
	return s
}

// scratch is the per-worker mutable state of the belief primitives: the
// arena key buffer, the step/closure bitset, and the τ-closure worklist.
// Each cyclic sweep worker owns one, leaving the arena and the step memo
// as the only synchronization points.
type scratch struct {
	kb         []byte
	buf        []uint64
	closeStack []int32
}

func newScratch(words int) *scratch {
	return &scratch{kb: make([]byte, 8*words), buf: make([]uint64, words)}
}

// stepTable memoizes (belief, action) → stepped belief across workers,
// sharded RWMutex maps keyed like the old single-map memo. Two workers
// racing on the same missing key may both compute the step; that is
// harmless — step is deterministic and the arena dedups the result — and
// cheaper than holding a lock across the computation.
type stepTable struct {
	shards [arenaShards]struct {
		mu sync.RWMutex
		m  map[uint64]int32
	}
}

func newStepTable() *stepTable {
	t := &stepTable{}
	for i := range t.shards {
		t.shards[i].m = make(map[uint64]int32)
	}
	return t
}

func stepShardOf(key uint64) int {
	return int((key * fnvPrime) >> 58)
}

func (t *stepTable) get(key uint64) (int32, bool) {
	sh := &t.shards[stepShardOf(key)]
	sh.mu.RLock()
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	return v, ok
}

func (t *stepTable) put(key uint64, v int32) {
	sh := &t.shards[stepShardOf(key)]
	sh.mu.Lock()
	sh.m[key] = v
	sh.mu.Unlock()
}

// startBelief interns the τ-closure of the context start state.
func (sv *solver) startBelief(sc *scratch) int32 {
	buf := sc.buf
	for i := range buf {
		buf[i] = 0
	}
	buf[sv.startGid>>6] |= 1 << (uint(sv.startGid) & 63)
	sv.tauClose(sc)
	bid, _ := sv.ar.intern(sc.kb, buf)
	return bid
}

// step computes the belief after P observes action aid from belief bid:
// every aid-successor of every member, τ-closed, interned. Returns −1
// when no member offers aid (the adversary cannot play it on this
// trail). Each (belief, action) pair is computed once and memoized.
func (sv *solver) step(sc *scratch, bid int32, aid int32) int32 {
	key := uint64(uint32(bid))<<32 | uint64(uint32(aid))
	if nb, ok := sv.memo.get(key); ok {
		return nb
	}
	cur := sv.ar.set(bid)
	buf := sc.buf
	for i := range buf {
		buf[i] = 0
	}
	hit := false
	for w, word := range cur {
		for word != 0 {
			s := int32(w<<6 | bits.TrailingZeros64(word))
			word &= word - 1
			vm := sv.cg.vis[s]
			lo, hi := 0, len(vm)
			for lo < hi {
				mid := (lo + hi) / 2
				if vm[mid].aid < aid {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			for ; lo < len(vm) && vm[lo].aid == aid; lo++ {
				buf[vm[lo].to>>6] |= 1 << (uint(vm[lo].to) & 63)
				hit = true
			}
		}
	}
	nb := int32(-1)
	if hit {
		sv.tauClose(sc)
		nb, _ = sv.ar.intern(sc.kb, buf)
	}
	sv.memo.put(key, nb)
	return nb
}

// tauClose closes sc.buf under the context's τ-moves (including the
// edge to the synthetic ⊥ from divergent states) in place.
func (sv *solver) tauClose(sc *scratch) {
	buf := sc.buf
	stack := sc.closeStack[:0]
	for w, word := range buf {
		for word != 0 {
			stack = append(stack, int32(w<<6|bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	//fsplint:ignore guardpoll bounded by the context τ-graph; context states are charged at interning
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range sv.cg.tau[s] {
			if buf[t>>6]&(1<<(uint(t)&63)) == 0 {
				buf[t>>6] |= 1 << (uint(t) & 63)
				stack = append(stack, t)
			}
		}
	}
	sc.closeStack = stack
}

// blocked reports whether the belief contains a stable context state
// offering no action in acts — the adversary can steer there and stop
// the game. The synthetic ⊥ is stable and offers nothing, so any belief
// containing it is blocked.
func (sv *solver) blocked(bid int32, acts []int32) bool {
	for w, word := range sv.ar.set(bid) {
		for word != 0 {
			s := int32(w<<6 | bits.TrailingZeros64(word))
			word &= word - 1
			if sv.cg.stable[s] && !intersect32(sv.cg.offers[s], acts) {
				return true
			}
		}
	}
	return false
}

// intersect32 reports whether two sorted int32 slices share an element.
func intersect32(xs, ys []int32) bool {
	i, j := 0, 0
	for i < len(xs) && j < len(ys) {
		switch {
		case xs[i] == ys[j]:
			return true
		case xs[i] < ys[j]:
			i++
		default:
			j++
		}
	}
	return false
}
