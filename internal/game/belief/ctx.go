package belief

import (
	"encoding/binary"
	"fmt"

	"fspnet/internal/explore"
	"fspnet/internal/game"
	"fspnet/internal/symred"
)

// visMove is one visible context move, compiled to a dense action id and
// a dense context-state id.
type visMove struct {
	aid int32
	to  int32
}

// ctxGraph is the enumerated reachable context: exactly the transition
// system of the composed context Q, with states as dense ids over the
// interned reachable vectors. tau holds Q's τ-moves (member τ and
// context-internal handshakes), vis its visible moves (solo firings of
// P-shared actions). Under the cyclic semantics a synthetic divergence
// leaf ⊥ (id bot) is appended, with a τ-edge from every state that can
// reach a context-τ cycle via context-τ moves.
type ctxGraph struct {
	n      int // reachable context vectors, excluding ⊥
	bot    int32
	tau    [][]int32
	vis    [][]visMove // sorted by (aid, to)
	offers [][]int32   // sorted unique aids offered, per state
	stable []bool      // no τ-move (before the ⊥ edge; divergent states are never stable)
}

// size returns the number of context states including ⊥ when present.
func (cg *ctxGraph) size() int {
	if cg.bot >= 0 {
		return cg.n + 1
	}
	return cg.n
}

// words returns the belief-bitset width in 64-bit words.
func (cg *ctxGraph) words() int { return (cg.size() + 63) / 64 }

// ctxInterner is the context walk's private visited set. Unlike the
// sharded explore interner it is strictly sequential, so it needs no
// hashing of its own (the map's built-in string hash does the work), it
// assigns dense ids in discovery order — the BFS expands states in
// exactly id order, so recorded edges never need an id remap — and it
// keys on the narrowest per-component packing that distinguishes every
// joint vector (one byte per process when all state counts fit, the
// common case) instead of the fixed 4 bytes.
type ctxInterner struct {
	m     int
	width int // key bytes per component: 1, 2, or 4
	ids   map[string]int32
	vecs  []uint32 // flat arena, id i at [i*m, (i+1)*m)
}

func newCtxInterner(M *explore.Machine) *ctxInterner {
	m := M.NumProcs()
	width := 1
	for i := 0; i < m; i++ {
		switch ns := M.NumProcStates(i); {
		case ns > 1<<16:
			width = 4
		case ns > 1<<8 && width < 2:
			width = 2
		}
	}
	return &ctxInterner{m: m, width: width, ids: make(map[string]int32)}
}

// pack writes vec's key image into kb (len width·m) and returns it.
func (ci *ctxInterner) pack(kb []byte, vec []uint32) []byte {
	switch ci.width {
	case 1:
		for i, v := range vec {
			kb[i] = byte(v)
		}
	case 2:
		for i, v := range vec {
			binary.LittleEndian.PutUint16(kb[i*2:], uint16(v))
		}
	default:
		for i, v := range vec {
			binary.LittleEndian.PutUint32(kb[i*4:], v)
		}
	}
	return kb
}

// intern records vec (with key kb) if unseen and returns its dense id
// and whether it was fresh.
func (ci *ctxInterner) intern(kb []byte, vec []uint32) (int32, bool) {
	if id, ok := ci.ids[string(kb)]; ok {
		return id, false
	}
	id := int32(len(ci.vecs) / ci.m)
	ci.ids[string(kb)] = id
	ci.vecs = append(ci.vecs, vec...)
	return id, true
}

// vec returns the joint vector of id. The slice aliases the arena (its
// contents are immutable, so it stays valid across later interns).
func (ci *ctxInterner) vec(id int32) []uint32 {
	return ci.vecs[int(id)*ci.m : (int(id)+1)*ci.m]
}

// buildCtx runs the context passes: "ctx-bfs" enumerates the reachable
// context vectors while recording every move it sees, "ctx-adj" lays
// the recorded edges out as the dense adjacency, and — under the cyclic
// semantics, when the context has at least two members — "ctx-scc"
// finds the silently divergent states and appends the synthetic ⊥.
// Returns the graph and the dense id of the context start vector
// (always 0: the start is interned first).
//
// Recording edges during the BFS is the engine's hot-path optimization:
// the former adjacency pass re-enumerated CtxMoves for every state and
// re-hashed every successor key through the sharded index, roughly
// doubling context-build time — which dominates ring-shaped instances
// whose game proper is tiny. With discovery-order ids the recorded
// edges are already dense, so the adjacency build is hash-free.
func (sv *solver) buildCtx(cyclic bool) (*ctxGraph, int32, error) {
	M := sv.M
	m := M.NumProcs()
	ci := newCtxInterner(M)
	kb := make([]byte, ci.width*m)
	scratch := make([]uint32, m)
	// With a nontrivial dist-stabilizer subgroup the BFS interns orbit
	// representatives instead of raw vectors. Every element of the
	// subgroup fixes the distinguished process and acts as the identity
	// on its alphabet, so orbit members are strongly bisimilar context
	// states with identical visible labels, stability, and offers: the
	// quotient graph induces the same belief game. Successors are
	// canonicalized before interning, which is the only change — the
	// adjacency, divergence, and belief passes all run on the quotient
	// unmodified.
	var cz *symred.Canonizer
	var canon []uint32
	if sv.grp != nil {
		cz = sv.grp.NewCanonizer()
		canon = make([]uint32, m)
	}
	start := M.StartVec()
	if cz != nil {
		// Automorphisms fix component starts, so this is the identity;
		// keep the single enforcement point for "interned ⇒ canonical".
		cz.Canon(start, canon)
		start = canon
	}
	ci.intern(ci.pack(kb, start), start)
	sv.stats.CtxStates = 1
	// One edge run per expanded state — states are expanded in id order,
	// so degs[s] moves of state s sit flat in tos/aids after those of
	// s-1 (aid −1 = context-τ).
	var (
		degs []int32
		tos  []int32
		aids []int32
	)
	frontier := []int32{0}
	depth := 0
	for len(frontier) > 0 {
		if err := sv.g.Poll("ctx-bfs", depth); err != nil {
			return nil, 0, sv.limit(fmt.Errorf("belief: context BFS stopped at level %d: %w", depth, err),
				"ctx-bfs", sv.stats.CtxStates)
		}
		if sv.stats.CtxStates > sv.budget {
			return nil, 0, sv.limit(fmt.Errorf("belief: %d context states: %w", sv.stats.CtxStates, game.ErrBudget),
				"ctx-bfs", sv.stats.CtxStates)
		}
		var next []int32
		fresh := 0
		for _, src := range frontier {
			deg := int32(0)
			M.CtxMoves(ci.vec(src), scratch, func(succ []uint32, aid int32) bool {
				if cz != nil {
					if cz.Canon(succ, canon) {
						sv.stats.SymHits++
					}
					succ = canon
				}
				id, isFresh := ci.intern(ci.pack(kb, succ), succ)
				if isFresh {
					fresh++
					next = append(next, id)
				}
				tos = append(tos, id)
				aids = append(aids, aid)
				deg++
				return true
			})
			degs = append(degs, deg)
		}
		sv.stats.CtxStates += fresh
		frontier = next
		depth++
		if err := sv.g.Charge(fresh); err != nil {
			return nil, 0, sv.limit(fmt.Errorf("belief: %d context states: %w", sv.stats.CtxStates, err),
				"ctx-bfs", sv.stats.CtxStates)
		}
	}
	cg := &ctxGraph{n: len(degs), bot: -1}
	if err := sv.buildAdj(cg, degs, tos, aids); err != nil {
		return nil, 0, err
	}
	// The divergence rule applies only when the context actually composes
	// (≥ 2 members): ComposeAllCyclic adds no ⊥ to a single raw member.
	if cyclic && m >= 3 {
		if err := sv.addDivergenceBot(cg); err != nil {
			return nil, 0, err
		}
	}
	return cg, 0, nil
}

// buildAdj is the "ctx-adj" pass: it lays the per-state τ / visible
// adjacency out in two flat arrays from the BFS's recorded edge runs,
// then sorts, deduplicates, and derives offers/stable per state.
func (sv *solver) buildAdj(cg *ctxGraph, degs, tos, aids []int32) error {
	n := cg.n
	cg.tau = make([][]int32, n)
	cg.vis = make([][]visMove, n)
	cg.offers = make([][]int32, n)
	cg.stable = make([]bool, n)
	tauCnt := make([]int32, n)
	visCnt := make([]int32, n)
	pos := 0
	for s := 0; s < n; s++ {
		for k := int32(0); k < degs[s]; k++ {
			if aids[pos] < 0 {
				tauCnt[s]++
			} else {
				visCnt[s]++
			}
			pos++
		}
	}
	tauOff := make([]int32, n+1)
	visOff := make([]int32, n+1)
	for s := 0; s < n; s++ {
		tauOff[s+1] = tauOff[s] + tauCnt[s]
		visOff[s+1] = visOff[s] + visCnt[s]
	}
	tauFlat := make([]int32, tauOff[n])
	visFlat := make([]visMove, visOff[n])
	pos = 0
	for s := 0; s < n; s++ {
		tc, vc := tauOff[s], visOff[s]
		for k := int32(0); k < degs[s]; k++ {
			if aids[pos] < 0 {
				tauFlat[tc] = tos[pos]
				tc++
			} else {
				visFlat[vc] = visMove{aid: aids[pos], to: tos[pos]}
				vc++
			}
			pos++
		}
	}
	for s := 0; s < n; s++ {
		if err := sv.poll("ctx-adj", s); err != nil {
			return err
		}
		// The three-index slices pin each state's capacity to its own run:
		// addDivergenceBot appends the ⊥ edge to cg.tau[s] afterwards, and
		// an append growing into the flat array would overwrite the next
		// state's edges.
		cg.tau[s] = sortDedup32(tauFlat[tauOff[s]:tauOff[s+1]:tauOff[s+1]])
		vm := sortDedupVis(visFlat[visOff[s]:visOff[s+1]:visOff[s+1]])
		cg.vis[s] = vm
		var offers []int32
		for _, t := range vm {
			if len(offers) == 0 || offers[len(offers)-1] != t.aid {
				offers = append(offers, t.aid)
			}
		}
		cg.offers[s] = offers
		cg.stable[s] = len(cg.tau[s]) == 0
	}
	return nil
}

// addDivergenceBot runs the "ctx-scc" pass: an iterative Tarjan SCC
// decomposition of the context-τ subgraph finds the states on τ-cycles
// (component of size > 1, or a τ self-loop), and a backward sweep over
// the τ-edges closes them under "can reach". When any state is
// divergent, the synthetic ⊥ is appended and each divergent state gets a
// τ-edge to it — the flat image of the fold's divergence leaves.
func (sv *solver) addDivergenceBot(cg *ctxGraph) error {
	if err := sv.g.Poll("ctx-scc", 0); err != nil {
		return sv.limit(fmt.Errorf("belief: divergence pass: %w", err), "ctx-scc", sv.stats.CtxStates)
	}
	n := cg.n
	const undef = -1
	num := make([]int32, n)
	low := make([]int32, n)
	comp := make([]int32, n)
	onstack := make([]bool, n)
	compSize := make([]int32, n)
	for i := range num {
		num[i] = undef
		comp[i] = undef
	}
	type frame struct {
		gid  int32
		next int
	}
	var frames []frame
	var tstack []int32
	var counter int32
	for root := 0; root < n; root++ {
		if num[root] != undef {
			continue
		}
		num[root], low[root] = counter, counter
		counter++
		tstack = append(tstack, int32(root))
		onstack[root] = true
		frames = append(frames[:0], frame{gid: int32(root)})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.next < len(cg.tau[f.gid]) {
				s := cg.tau[f.gid][f.next]
				f.next++
				if num[s] == undef {
					num[s], low[s] = counter, counter
					counter++
					if err := sv.poll("ctx-scc", int(counter)); err != nil {
						return err
					}
					tstack = append(tstack, s)
					onstack[s] = true
					frames = append(frames, frame{gid: s})
				} else if onstack[s] && num[s] < low[f.gid] {
					low[f.gid] = num[s]
				}
				continue
			}
			g := f.gid
			frames = frames[:len(frames)-1]
			if low[g] == num[g] {
				var size int32
				for {
					t := tstack[len(tstack)-1]
					tstack = tstack[:len(tstack)-1]
					onstack[t] = false
					comp[t] = g
					size++
					if t == g {
						break
					}
				}
				compSize[g] = size
			}
			if len(frames) > 0 {
				if pg := frames[len(frames)-1].gid; low[g] < low[pg] {
					low[pg] = low[g]
				}
			}
		}
	}
	divergent := make([]bool, n)
	any := false
	for s := 0; s < n; s++ {
		if compSize[comp[s]] > 1 {
			divergent[s] = true
			any = true
			continue
		}
		for _, t := range cg.tau[s] {
			if t == int32(s) {
				divergent[s] = true
				any = true
				break
			}
		}
	}
	if !any {
		return nil
	}
	// Backward propagation: a state with a τ-edge into a divergent state
	// is divergent. Process over the reversed τ-edges with a worklist.
	rev := make([][]int32, n)
	for s := 0; s < n; s++ {
		for _, t := range cg.tau[s] {
			rev[t] = append(rev[t], int32(s))
		}
	}
	var work []int32
	for s := 0; s < n; s++ {
		if divergent[s] {
			work = append(work, int32(s))
		}
	}
	//fsplint:ignore guardpoll bounded by the context τ-graph: each state enters work at most once, guarded by the divergent flag
	for len(work) > 0 {
		d := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range rev[d] {
			if !divergent[s] {
				divergent[s] = true
				work = append(work, s)
			}
		}
	}
	cg.bot = int32(n)
	cg.tau = append(cg.tau, nil)
	cg.vis = append(cg.vis, nil)
	cg.offers = append(cg.offers, nil)
	cg.stable = append(cg.stable, true)
	sv.stats.CtxStates++
	for s := 0; s < n; s++ {
		if divergent[s] {
			cg.tau[s] = append(cg.tau[s], cg.bot)
		}
	}
	return nil
}

// sortDedup32 sorts xs and removes duplicates in place. Per-state move
// lists are tiny (a handful of entries), so insertion sort beats the
// reflection-based sort.Slice by a wide margin on the hot path.
func sortDedup32(xs []int32) []int32 {
	for i := 1; i < len(xs); i++ {
		x := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > x {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = x
	}
	w := 0
	for i, x := range xs {
		if i == 0 || x != xs[w-1] {
			xs[w] = x
			w++
		}
	}
	return xs[:w]
}

// sortDedupVis sorts visible moves by (aid, to) and removes duplicates
// in place, insertion-sort style like sortDedup32.
func sortDedupVis(vm []visMove) []visMove {
	for i := 1; i < len(vm); i++ {
		x := vm[i]
		j := i - 1
		for j >= 0 && (vm[j].aid > x.aid || (vm[j].aid == x.aid && vm[j].to > x.to)) {
			vm[j+1] = vm[j]
			j--
		}
		vm[j+1] = x
	}
	w := 0
	for i, t := range vm {
		if i == 0 || t != vm[w-1] {
			vm[w] = t
			w++
		}
	}
	return vm[:w]
}
