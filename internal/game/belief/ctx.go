package belief

import (
	"fmt"
	"sort"

	"fspnet/internal/explore"
	"fspnet/internal/game"
)

// visMove is one visible context move, compiled to a dense action id and
// a dense context-state id.
type visMove struct {
	aid int32
	to  int32
}

// ctxGraph is the enumerated reachable context: exactly the transition
// system of the composed context Q, with states as dense ids over the
// interned reachable vectors. tau holds Q's τ-moves (member τ and
// context-internal handshakes), vis its visible moves (solo firings of
// P-shared actions). Under the cyclic semantics a synthetic divergence
// leaf ⊥ (id bot) is appended, with a τ-edge from every state that can
// reach a context-τ cycle via context-τ moves.
type ctxGraph struct {
	n      int // reachable context vectors, excluding ⊥
	bot    int32
	tau    [][]int32
	vis    [][]visMove // sorted by (aid, to)
	offers [][]int32   // sorted unique aids offered, per state
	stable []bool      // no τ-move (before the ⊥ edge; divergent states are never stable)
}

// size returns the number of context states including ⊥ when present.
func (cg *ctxGraph) size() int {
	if cg.bot >= 0 {
		return cg.n + 1
	}
	return cg.n
}

// words returns the belief-bitset width in 64-bit words.
func (cg *ctxGraph) words() int { return (cg.size() + 63) / 64 }

// buildCtx runs the context passes: "ctx-bfs" enumerates the reachable
// context vectors into the sharded interner, "ctx-adj" materializes the
// dense adjacency, and — under the cyclic semantics, when the context
// has at least two members — "ctx-scc" finds the silently divergent
// states and appends the synthetic ⊥. Returns the graph and the dense id
// of the context start vector.
func (sv *solver) buildCtx(cyclic bool) (*ctxGraph, int32, error) {
	M := sv.M
	m := M.NumProcs()
	in := explore.NewInterner(m)
	kb := make([]byte, 4*m)
	scratch := make([]uint32, m)
	start := M.StartVec()
	in.Intern(explore.PackVec(kb, start), start)
	sv.stats.CtxStates = 1
	frontier := append([]uint32(nil), start...)
	depth := 0
	for len(frontier) > 0 {
		if err := sv.g.Poll("ctx-bfs", depth); err != nil {
			return nil, 0, sv.limit(fmt.Errorf("belief: context BFS stopped at level %d: %w", depth, err),
				"ctx-bfs", sv.stats.CtxStates)
		}
		if sv.stats.CtxStates > sv.budget {
			return nil, 0, sv.limit(fmt.Errorf("belief: %d context states: %w", sv.stats.CtxStates, game.ErrBudget),
				"ctx-bfs", sv.stats.CtxStates)
		}
		var next []uint32
		fresh := 0
		for v := 0; v < len(frontier); v += m {
			M.CtxMoves(frontier[v:v+m], scratch, func(succ []uint32, aid int32) bool {
				if in.Intern(explore.PackVec(kb, succ), succ) {
					fresh++
					next = append(next, succ...)
				}
				return true
			})
		}
		sv.stats.CtxStates += fresh
		frontier = next
		depth++
		if err := sv.g.Charge(fresh); err != nil {
			return nil, 0, sv.limit(fmt.Errorf("belief: %d context states: %w", sv.stats.CtxStates, err),
				"ctx-bfs", sv.stats.CtxStates)
		}
	}
	ix := in.Index()
	n := ix.Size()
	startGid := int32(ix.Gid(explore.PackVec(kb, start)))
	cg := &ctxGraph{
		n:      n,
		bot:    -1,
		tau:    make([][]int32, n),
		vis:    make([][]visMove, n),
		offers: make([][]int32, n),
		stable: make([]bool, n),
	}
	for gid := 0; gid < n; gid++ {
		if err := sv.poll("ctx-adj", gid); err != nil {
			return nil, 0, err
		}
		M.CtxMoves(ix.Vec(gid), scratch, func(succ []uint32, aid int32) bool {
			sg := int32(ix.Gid(explore.PackVec(kb, succ)))
			if aid < 0 {
				cg.tau[gid] = append(cg.tau[gid], sg)
			} else {
				cg.vis[gid] = append(cg.vis[gid], visMove{aid: aid, to: sg})
			}
			return true
		})
		cg.tau[gid] = dedup32(cg.tau[gid])
		vm := cg.vis[gid]
		sort.Slice(vm, func(i, j int) bool {
			if vm[i].aid != vm[j].aid {
				return vm[i].aid < vm[j].aid
			}
			return vm[i].to < vm[j].to
		})
		w := 0
		for i, t := range vm {
			if i == 0 || t != vm[w-1] {
				vm[w] = t
				w++
			}
		}
		cg.vis[gid] = vm[:w]
		var offers []int32
		for _, t := range cg.vis[gid] {
			if len(offers) == 0 || offers[len(offers)-1] != t.aid {
				offers = append(offers, t.aid)
			}
		}
		cg.offers[gid] = offers
		cg.stable[gid] = len(cg.tau[gid]) == 0
	}
	// The divergence rule applies only when the context actually composes
	// (≥ 2 members): ComposeAllCyclic adds no ⊥ to a single raw member.
	if cyclic && m >= 3 {
		if err := sv.addDivergenceBot(cg); err != nil {
			return nil, 0, err
		}
	}
	return cg, startGid, nil
}

// addDivergenceBot runs the "ctx-scc" pass: an iterative Tarjan SCC
// decomposition of the context-τ subgraph finds the states on τ-cycles
// (component of size > 1, or a τ self-loop), and a backward sweep over
// the τ-edges closes them under "can reach". When any state is
// divergent, the synthetic ⊥ is appended and each divergent state gets a
// τ-edge to it — the flat image of the fold's divergence leaves.
func (sv *solver) addDivergenceBot(cg *ctxGraph) error {
	if err := sv.g.Poll("ctx-scc", 0); err != nil {
		return sv.limit(fmt.Errorf("belief: divergence pass: %w", err), "ctx-scc", sv.stats.CtxStates)
	}
	n := cg.n
	const undef = -1
	num := make([]int32, n)
	low := make([]int32, n)
	comp := make([]int32, n)
	onstack := make([]bool, n)
	compSize := make([]int32, n)
	for i := range num {
		num[i] = undef
		comp[i] = undef
	}
	type frame struct {
		gid  int32
		next int
	}
	var frames []frame
	var tstack []int32
	var counter int32
	for root := 0; root < n; root++ {
		if num[root] != undef {
			continue
		}
		num[root], low[root] = counter, counter
		counter++
		tstack = append(tstack, int32(root))
		onstack[root] = true
		frames = append(frames[:0], frame{gid: int32(root)})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.next < len(cg.tau[f.gid]) {
				s := cg.tau[f.gid][f.next]
				f.next++
				if num[s] == undef {
					num[s], low[s] = counter, counter
					counter++
					if err := sv.poll("ctx-scc", int(counter)); err != nil {
						return err
					}
					tstack = append(tstack, s)
					onstack[s] = true
					frames = append(frames, frame{gid: s})
				} else if onstack[s] && num[s] < low[f.gid] {
					low[f.gid] = num[s]
				}
				continue
			}
			g := f.gid
			frames = frames[:len(frames)-1]
			if low[g] == num[g] {
				var size int32
				for {
					t := tstack[len(tstack)-1]
					tstack = tstack[:len(tstack)-1]
					onstack[t] = false
					comp[t] = g
					size++
					if t == g {
						break
					}
				}
				compSize[g] = size
			}
			if len(frames) > 0 {
				if pg := frames[len(frames)-1].gid; low[g] < low[pg] {
					low[pg] = low[g]
				}
			}
		}
	}
	divergent := make([]bool, n)
	any := false
	for s := 0; s < n; s++ {
		if compSize[comp[s]] > 1 {
			divergent[s] = true
			any = true
			continue
		}
		for _, t := range cg.tau[s] {
			if t == int32(s) {
				divergent[s] = true
				any = true
				break
			}
		}
	}
	if !any {
		return nil
	}
	// Backward propagation: a state with a τ-edge into a divergent state
	// is divergent. Process over the reversed τ-edges with a worklist.
	rev := make([][]int32, n)
	for s := 0; s < n; s++ {
		for _, t := range cg.tau[s] {
			rev[t] = append(rev[t], int32(s))
		}
	}
	var work []int32
	for s := 0; s < n; s++ {
		if divergent[s] {
			work = append(work, int32(s))
		}
	}
	//fsplint:ignore guardpoll bounded by the context τ-graph: each state enters work at most once, guarded by the divergent flag
	for len(work) > 0 {
		d := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range rev[d] {
			if !divergent[s] {
				divergent[s] = true
				work = append(work, s)
			}
		}
	}
	cg.bot = int32(n)
	cg.tau = append(cg.tau, nil)
	cg.vis = append(cg.vis, nil)
	cg.offers = append(cg.offers, nil)
	cg.stable = append(cg.stable, true)
	sv.stats.CtxStates++
	for s := 0; s < n; s++ {
		if divergent[s] {
			cg.tau[s] = append(cg.tau[s], cg.bot)
		}
	}
	return nil
}

// dedup32 sorts xs and removes duplicates in place.
func dedup32(xs []int32) []int32 {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	w := 0
	for i, x := range xs {
		if i == 0 || x != xs[w-1] {
			xs[w] = x
			w++
		}
	}
	return xs[:w]
}
