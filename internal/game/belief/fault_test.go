// Fault-injection sweeps for the belief engine: cancellation, deadline
// expiry, and budget exhaustion injected at every worklist barrier
// ("ctx-bfs" levels, "ctx-adj"/"ctx-scc" strides, "game" positions,
// "fixpoint" removals) must surface as a well-formed *guard.LimitErr
// naming the pass, never as a hang or a wrong verdict. Run under -race
// via `make test-fault`.
package belief_test

import (
	"errors"
	"testing"

	"fspnet/internal/bench"
	"fspnet/internal/game"
	"fspnet/internal/game/belief"
	"fspnet/internal/guard"
	"fspnet/internal/guard/faultinject"
	"fspnet/internal/reduce"
	"fspnet/internal/sat"
)

func faultOpts(h guard.Hook) game.Options {
	return game.Options{Guard: guard.New(guard.Config{Hook: h})}
}

// noProbe pins the witness probe off so the cyclic sweeps exercise the
// enumeration passes — on the ring fixture the probe otherwise decides
// the game before any injectable barrier is reached.
var noProbe = belief.Tuning{NoProbe: true}

// beliefPasses are every governor pass the engine polls, in run order for
// the cyclic semantics ("ctx-scc", "fixpoint", and the two worker passes
// are cyclic-only, "shape" acyclic-only). "game-worker" and
// "fixpoint-worker" are polled inside the sweep/elimination chunks —
// also when the resolved worker count is 1 — and "antichain" on the
// amortized feed stride.
var beliefPasses = []string{"ctx-bfs", "ctx-adj", "ctx-scc", "game", "game-worker",
	"antichain", "fixpoint", "fixpoint-worker"}

// TestFaultInjectBeliefCyclicCancelSweep cancels the cyclic engine at
// levels 0..3 of every pass on the philosophers ring. An injection that
// fires must produce a LimitErr wrapping ErrCanceled whose partial names
// the injected pass; one that the run completes before must reproduce
// the full verdict.
func TestFaultInjectBeliefCyclicCancelSweep(t *testing.T) {
	n, err := bench.Philosophers(4)
	if err != nil {
		t.Fatal(err)
	}
	full, fullStats, err := belief.SolveCyclicTuned(n, 0, game.Options{}, noProbe)
	if err != nil {
		t.Fatal(err)
	}
	fired := map[string]bool{}
	for _, pass := range beliefPasses {
		for lvl := 0; lvl <= 3; lvl++ {
			got, _, err := belief.SolveCyclicTuned(n, 0, faultOpts(faultinject.CancelAt(pass, lvl)), noProbe)
			if err == nil {
				if got != full {
					t.Fatalf("%s@%d: completed run disagrees: got %v, want %v", pass, lvl, got, full)
				}
				continue
			}
			fired[pass] = true
			var le *guard.LimitErr
			if !errors.As(err, &le) {
				t.Fatalf("%s@%d: error %v is not a *guard.LimitErr", pass, lvl, err)
			}
			if !errors.Is(err, guard.ErrCanceled) {
				t.Fatalf("%s@%d: reason %v, want ErrCanceled", pass, lvl, err)
			}
			if le.Partial.Pass != pass {
				t.Errorf("%s@%d: partial names pass %q", pass, lvl, le.Partial.Pass)
			}
		}
	}
	for _, pass := range []string{"ctx-bfs", "ctx-scc", "game-worker", "antichain", "fixpoint", "fixpoint-worker"} {
		if !fired[pass] {
			t.Errorf("pass %s: no injection ever fired (stats %+v)", pass, fullStats)
		}
	}
}

// TestFaultInjectBeliefAcyclicCancelSweep is the acyclic sweep on a
// Theorem 2 gadget (the pass list drops the cyclic-only passes and gains
// the shape check).
func TestFaultInjectBeliefAcyclicCancelSweep(t *testing.T) {
	n, err := reduce.QbfGadget(bench.QbfInstance(11, 3))
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := belief.SolveAcyclic(n, 0, game.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	for _, pass := range []string{"shape", "ctx-bfs", "ctx-adj", "game"} {
		for lvl := 0; lvl <= 3; lvl++ {
			got, _, err := belief.SolveAcyclic(n, 0, faultOpts(faultinject.CancelAt(pass, lvl)))
			if err == nil {
				if got != full {
					t.Fatalf("%s@%d: completed run disagrees: got %v, want %v", pass, lvl, got, full)
				}
				continue
			}
			fired = true
			var le *guard.LimitErr
			if !errors.As(err, &le) || !errors.Is(err, guard.ErrCanceled) {
				t.Fatalf("%s@%d: error %v, want LimitErr wrapping ErrCanceled", pass, lvl, err)
			}
		}
	}
	if !fired {
		t.Error("no injection ever fired on the acyclic path")
	}
}

// TestFaultInjectBeliefProbeCancel cancels the default configuration at
// the "probe" pass, which on the ring fires before any other barrier:
// the stop must surface as a LimitErr naming the probe, never as a
// decided (and thus potentially wrong) verdict.
func TestFaultInjectBeliefProbeCancel(t *testing.T) {
	n, err := bench.Philosophers(4)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = belief.SolveCyclic(n, 0, faultOpts(faultinject.CancelAt("probe", 0)))
	var le *guard.LimitErr
	if !errors.As(err, &le) || !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("error %v, want LimitErr wrapping ErrCanceled", err)
	}
	if le.Partial.Pass != "probe" {
		t.Errorf("partial names pass %q, want probe", le.Partial.Pass)
	}
}

// TestFaultInjectBeliefDeadline spot-checks that an injected deadline
// surfaces as ErrDeadline with the pass recorded.
func TestFaultInjectBeliefDeadline(t *testing.T) {
	n, err := bench.Philosophers(4)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = belief.SolveCyclicTuned(n, 0, faultOpts(faultinject.DeadlineAt("ctx-bfs", 1)), noProbe)
	var le *guard.LimitErr
	if !errors.As(err, &le) || !errors.Is(err, guard.ErrDeadline) {
		t.Fatalf("error %v, want LimitErr wrapping ErrDeadline", err)
	}
	if le.Partial.Pass != "ctx-bfs" {
		t.Errorf("partial names pass %q, want ctx-bfs", le.Partial.Pass)
	}
}

// TestFaultInjectBeliefPartialDeterminism cancels at the same barrier
// twice and requires byte-identical partial verdicts — the worklists are
// sequential, so a stop point determines the progress measure.
func TestFaultInjectBeliefPartialDeterminism(t *testing.T) {
	n, err := bench.Philosophers(4)
	if err != nil {
		t.Fatal(err)
	}
	partial := func() guard.Partial {
		t.Helper()
		_, _, err := belief.SolveCyclicTuned(n, 0, faultOpts(faultinject.CancelAt("ctx-bfs", 2)), noProbe)
		var le *guard.LimitErr
		if !errors.As(err, &le) {
			t.Fatalf("error %v is not a *guard.LimitErr", err)
		}
		p := le.Partial
		p.Elapsed = 0 // wall time is the one legitimately varying field
		return p
	}
	if a, b := partial(), partial(); a != b {
		t.Fatalf("partial verdicts differ across identical runs: %+v vs %+v", a, b)
	}
}

// TestFaultInjectBeliefWorkerPartialDeterminism cancels inside the
// parallel sweep and fixpoint chunks across worker counts and requires
// byte-identical partial verdicts: injections fire by (pass, level), so
// every worker past the trigger observes the same stop, and the engine
// reports progress from the last sequential barrier.
func TestFaultInjectBeliefWorkerPartialDeterminism(t *testing.T) {
	n, err := bench.Philosophers(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, pass := range []string{"game-worker", "fixpoint-worker"} {
		partial := func(workers int) guard.Partial {
			t.Helper()
			_, _, err := belief.SolveCyclicTuned(n, 0,
				faultOpts(faultinject.CancelAt(pass, 0)), belief.Tuning{Workers: workers, NoProbe: true})
			var le *guard.LimitErr
			if !errors.As(err, &le) {
				t.Fatalf("%s workers=%d: error %v is not a *guard.LimitErr", pass, workers, err)
			}
			if le.Partial.Pass != pass {
				t.Fatalf("%s workers=%d: partial names pass %q", pass, workers, le.Partial.Pass)
			}
			p := le.Partial
			p.Elapsed = 0
			return p
		}
		base := partial(1)
		for _, w := range []int{2, 3, 8} {
			if p := partial(w); p != base {
				t.Fatalf("%s: partial differs at %d workers: %+v vs %+v", pass, w, p, base)
			}
		}
	}
}

// TestFaultInjectBeliefBudgetVerdictSound exhausts the budget at every
// threshold up to the full run's position count; whenever the engine
// still completes, the verdict must match, and otherwise the error must
// carry the budget sentinel.
func TestFaultInjectBeliefBudgetVerdictSound(t *testing.T) {
	q := &sat.QBF{
		Prefix: []sat.Quantifier{sat.Exists, sat.ForAll},
		Matrix: sat.CNF{Vars: 2, Clauses: []sat.Clause{{1, 2}}},
	}
	n, err := reduce.QbfGadget(q)
	if err != nil {
		t.Fatal(err)
	}
	full, stats, err := belief.SolveAcyclic(n, 0, game.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for b := 1; b <= stats.Positions+1; b++ {
		got, _, err := belief.SolveAcyclic(n, 0, game.Options{Budget: b})
		if err == nil {
			if got != full {
				t.Fatalf("budget %d: verdict %v, want %v", b, got, full)
			}
			continue
		}
		if !errors.Is(err, game.ErrBudget) {
			t.Fatalf("budget %d: err = %v, want game.ErrBudget", b, err)
		}
	}
}
