package game

import (
	"math/rand"
	"testing"

	"fspnet/internal/fsp"
	"fspnet/internal/fsptest"
	"fspnet/internal/lang"
	"fspnet/internal/poss"
)

// lemma5Win decides the acyclic game by the literal recursion in the
// proof of Lemma 5, phrased over explicit possibility sets and the
// language DFA of Q — an implementation independent of the belief-set
// solver, used as a differential oracle.
func lemma5Win(t *testing.T, p, q *fsp.FSP) bool {
	t.Helper()
	setQ := poss.MustOf(q)
	langQ := lang.LangDFA(q)
	memo := make(map[string]bool)

	var win func(s []fsp.Action, pp fsp.State) bool
	win = func(s []fsp.Action, pp fsp.State) bool {
		key := poss.StringOfActions(s) + "|" + p.StateName(pp)
		if v, ok := memo[key]; ok {
			return v
		}
		if p.IsLeaf(pp) {
			memo[key] = true
			return true
		}
		a := p.ActionsAt(pp)
		// Blocking: some (s, Z) ∈ Poss(Q) with Z ∩ A = ∅.
		for _, z := range setQ.At(s) {
			if !intersects(z, a) {
				memo[key] = false
				return false
			}
		}
		// Forcing: some offerable σ whose every response loses.
		res := true
		for _, act := range a {
			ext := append(append([]fsp.Action(nil), s...), act)
			if !langQ.Accepts(ext) {
				continue
			}
			anyGood := false
			for _, succ := range p.Succ(pp, act) {
				if win(ext, succ) {
					anyGood = true
					break
				}
			}
			if !anyGood {
				res = false
				break
			}
		}
		memo[key] = res
		return res
	}
	return win(nil, p.Start())
}

// TestSolverMatchesLemma5Recursion: the belief-set solver and the literal
// Lemma 5 recursion must agree on random closed pairs.
func TestSolverMatchesLemma5Recursion(t *testing.T) {
	r := rand.New(rand.NewSource(1401))
	cfg := fsptest.DefaultConfig()
	for i := 0; i < 100; i++ {
		p, q := fsptest.TwoProcessClosed(r, cfg)
		belief, err := SolveAcyclic(p, q)
		if err != nil {
			t.Fatal(err)
		}
		literal := lemma5Win(t, p, q)
		if belief != literal {
			t.Fatalf("iter %d: belief solver=%v, Lemma 5 recursion=%v\nP=%s\nQ=%s",
				i, belief, literal, p.DOT(), q.DOT())
		}
	}
}
