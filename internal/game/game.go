// Package game solves Game(P, Q) of Figure 4: the partial-information game
// that defines success in adversity. Player Q knows the global state and
// picks both the next action and its own next state; player P sees only
// the action sequence and picks its own next state. Both players must play
// when they can (the continuity rule).
//
// Because P's only information is the action history, the game is solved
// on pairs (P-state, belief), where the belief is the τ-closed set of
// states Q could have reached on that history. Q blocks P when the belief
// contains a stable state offering nothing P can match; Q forces P when it
// can offer an action all of whose P-responses lose.
//
// The acyclic game (P wins by reaching a leaf) is solved by memoized
// recursion; the cyclic game (P wins by playing forever, Section 4) by a
// greatest-fixpoint iteration. Both are exponential in |Q| in the worst
// case — the upper bound of Proposition 2.
package game

import (
	"errors"
	"fmt"
	"strings"

	"fspnet/internal/fsp"
	"fspnet/internal/guard"
	"fspnet/internal/queue"
)

// ErrTauMoves reports that the distinguished process P has τ-moves, which
// the game of Figure 4 disallows ("The FSP P has no τ-moves").
var ErrTauMoves = errors.New("game: distinguished process P must have no τ-moves")

// ErrBudget reports that the explored pair graph exceeded the node
// budget. It wraps guard.ErrBudget, the unified budget sentinel.
var ErrBudget = fmt.Errorf("game: state budget exhausted: %w", guard.ErrBudget)

// DefaultBudget bounds the number of (P-state, belief) pairs explored.
const DefaultBudget = 1 << 22

// pollStride amortizes governor polls: one Poll per stride of explored
// game positions.
const pollStride = 1024

// Options configure a governed game solve.
type Options struct {
	// Budget bounds the explored (P-state, belief) positions; ≤ 0 means
	// DefaultBudget.
	Budget int
	// Guard, when non-nil, governs the solve: cancellation and deadlines
	// are polled every pollStride positions, each fresh position is
	// charged against the joint budget, and every exhaustion path
	// returns a *guard.LimitErr whose partial verdict counts the
	// positions explored.
	Guard *guard.G
}

func (o Options) budget() int {
	if o.Budget <= 0 {
		return DefaultBudget
	}
	return o.Budget
}

// checkP validates the Figure 4 assumption on P.
func checkP(p *fsp.FSP) error {
	for _, t := range p.Transitions() {
		if t.Label == fsp.Tau {
			return fmt.Errorf("%s: %w", p.Name(), ErrTauMoves)
		}
	}
	return nil
}

// node is a game position: P in state p with belief set b over Q's states.
type node struct {
	p   fsp.State
	key string // canonical belief key
}

type solver struct {
	p, q    *fsp.FSP
	budget  int
	g       *guard.G
	beliefs map[string][]fsp.State
}

// limit wraps a stop reason into a *guard.LimitErr recording how many
// game positions were explored. The belief-set game decides nothing
// until its start position resolves, so the partial carries no bounds.
func (sv *solver) limit(reason error, states int) error {
	return sv.g.Limit(reason, guard.Partial{States: states, Pass: "game"})
}

// poll runs the amortized governor check at the given position count.
func (sv *solver) poll(states int) error {
	if states%pollStride != 0 {
		return nil
	}
	if err := sv.g.Poll("game", states/pollStride); err != nil {
		return sv.limit(fmt.Errorf("game: stopped at %d positions: %w", states, err), states)
	}
	return nil
}

func beliefKey(set []fsp.State) string {
	var sb strings.Builder
	for i, s := range set {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", s)
	}
	return sb.String()
}

func (sv *solver) intern(set []fsp.State) (key0 string, states []fsp.State) {
	key := beliefKey(set)
	if _, ok := sv.beliefs[key]; !ok {
		sv.beliefs[key] = set
	}
	return key, sv.beliefs[key]
}

// blocked reports whether the belief contains a stable Q-state offering no
// action in A — Q can steer there and stop the game.
func (sv *solver) blocked(belief []fsp.State, a []fsp.Action) bool {
	for _, q := range belief {
		if !sv.q.IsStable(q) {
			continue
		}
		if !intersects(sv.q.ActionsAt(q), a) {
			return true
		}
	}
	return false
}

func intersects(xs, ys []fsp.Action) bool {
	i, j := 0, 0
	for i < len(xs) && j < len(ys) {
		switch {
		case xs[i] == ys[j]:
			return true
		case xs[i] < ys[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// SolveAcyclic decides the acyclic game: P wins iff it has a strategy
// guaranteeing it reaches one of its leaves. Both processes must be
// acyclic and P τ-free.
func SolveAcyclic(p, q *fsp.FSP) (bool, error) {
	return SolveAcyclicOpts(p, q, Options{})
}

// SolveAcyclicOpts is SolveAcyclic under an explicit budget and governor.
func SolveAcyclicOpts(p, q *fsp.FSP, o Options) (bool, error) {
	if err := checkP(p); err != nil {
		return false, err
	}
	if !p.IsAcyclic() || !q.IsAcyclic() {
		return false, fmt.Errorf("game: SolveAcyclic needs acyclic processes (P %s, Q %s)",
			p.Classify(), q.Classify())
	}
	sv := &solver{p: p, q: q, budget: o.budget(), g: o.Guard, beliefs: make(map[string][]fsp.State)}
	memo := make(map[node]bool)
	startKey, startBelief := sv.intern(q.TauClosure([]fsp.State{q.Start()}))
	win, err := sv.winAcyclic(p.Start(), startKey, startBelief, memo)
	if err != nil {
		return false, err
	}
	return win, nil
}

func (sv *solver) winAcyclic(p fsp.State, key string, belief []fsp.State, memo map[node]bool) (bool, error) {
	nd := node{p: p, key: key}
	if v, ok := memo[nd]; ok {
		return v, nil
	}
	if len(memo) >= sv.budget {
		return false, sv.limit(fmt.Errorf("game: %d positions: %w", len(memo), ErrBudget), len(memo))
	}
	if err := sv.poll(len(memo)); err != nil {
		return false, err
	}
	if err := sv.g.Charge(1); err != nil {
		return false, sv.limit(fmt.Errorf("game: %d positions: %w", len(memo), err), len(memo))
	}
	if sv.p.IsLeaf(p) {
		memo[nd] = true
		return true, nil
	}
	a := sv.p.ActionsAt(p)
	if sv.blocked(belief, a) {
		memo[nd] = false
		return false, nil
	}
	// Pre-set to false to keep recursion well-founded; acyclic P cannot
	// revisit nd anyway.
	memo[nd] = false
	result := true
	for _, act := range a {
		next := sv.q.Step(belief, act)
		if len(next) == 0 {
			continue // Q cannot offer act on this history
		}
		nkey, nbelief := sv.intern(next)
		anyGood := false
		for _, succ := range sv.p.Succ(p, act) {
			good, err := sv.winAcyclic(succ, nkey, nbelief, memo)
			if err != nil {
				return false, err
			}
			if good {
				anyGood = true
				break
			}
		}
		if !anyGood {
			result = false // Q forces act, every response loses
			break
		}
	}
	memo[nd] = result
	return result, nil
}

// SolveCyclic decides the Section 4 game: P wins iff it can keep the game
// going forever against adversarial Q. P must be τ-free. Q is typically
// the cyclic composition of the rest of the network, so its silent
// divergence options appear as leaves. The solution is the greatest
// fixpoint over the reachable pair graph: positions are removed while they
// are blocked, stuck, or forceable into removed positions.
func SolveCyclic(p, q *fsp.FSP) (bool, error) {
	return SolveCyclicOpts(p, q, Options{})
}

// SolveCyclicOpts is SolveCyclic under an explicit budget and governor.
func SolveCyclicOpts(p, q *fsp.FSP, o Options) (bool, error) {
	if err := checkP(p); err != nil {
		return false, err
	}
	sv := &solver{p: p, q: q, budget: o.budget(), g: o.Guard, beliefs: make(map[string][]fsp.State)}
	win, _, _, err := sv.cyclicFixpoint()
	if err != nil {
		return false, err
	}
	startKey, _ := sv.intern(q.TauClosure([]fsp.State{q.Start()}))
	return win[node{p: p.Start(), key: startKey}], nil
}

// ReachablePairs returns the number of explored (P-state, belief) game
// positions for the cyclic game — a measure of the d^n bound of
// Proposition 2, used by the benchmark harness.
func ReachablePairs(p, q *fsp.FSP) (int, error) {
	return ReachablePairsOpts(p, q, Options{})
}

// ReachablePairsOpts is ReachablePairs under an explicit budget and
// governor: the sweep polls o.Guard every stride of positions and stops
// with a *guard.LimitErr when it is exhausted, like the solvers.
func ReachablePairsOpts(p, q *fsp.FSP, o Options) (int, error) {
	if err := checkP(p); err != nil {
		return 0, err
	}
	sv := &solver{p: p, q: q, budget: o.budget(), g: o.Guard, beliefs: make(map[string][]fsp.State)}
	startKey, _ := sv.intern(q.TauClosure([]fsp.State{q.Start()}))
	start := node{p: p.Start(), key: startKey}
	var work queue.Queue[node]
	work.Push(start)
	seen := map[node]bool{start: true}
	count := 0
	for {
		nd, ok := work.Pop()
		if !ok {
			break
		}
		count++
		if count > sv.budget {
			return count, sv.limit(fmt.Errorf("game: %d positions: %w", count, ErrBudget), count)
		}
		if err := sv.poll(count); err != nil {
			return count, err
		}
		if err := sv.g.Charge(1); err != nil {
			return count, sv.limit(fmt.Errorf("game: %d positions: %w", count, err), count)
		}
		for _, act := range sv.p.ActionsAt(nd.p) {
			next := sv.q.Step(sv.beliefs[nd.key], act)
			if len(next) == 0 {
				continue
			}
			nkey, _ := sv.intern(next)
			for _, succ := range sv.p.Succ(nd.p, act) {
				d := node{p: succ, key: nkey}
				if !seen[d] {
					seen[d] = true
					work.Push(d)
				}
			}
		}
	}
	return count, nil
}
