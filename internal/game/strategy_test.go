package game

import (
	"math/rand"
	"strings"
	"testing"

	"fspnet/internal/fsp"
	"fspnet/internal/fsptest"
)

func TestAcyclicStrategyBranching(t *testing.T) {
	// P must right-branch on a (the Figure 9 commentary example).
	bp := fsp.NewBuilder("P")
	r0, l, rr, d := bp.State("r"), bp.State("l"), bp.State("rr"), bp.State("d")
	bp.Add(r0, "a", l)
	bp.Add(r0, "a", rr)
	bp.Add(l, "c", d)
	p := bp.MustBuild()
	bq := fsp.NewBuilder("Q")
	q0, q1, q2, q3 := bq.State("0"), bq.State("1"), bq.State("2"), bq.State("3")
	bq.Add(q0, "a", q1)
	bq.Add(q1, "c", q2)
	bq.AddTau(q1, q3)
	q := bq.MustBuild()

	win, strat, err := AcyclicStrategy(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if !win {
		t.Fatal("P wins by right-branching")
	}
	if len(strat) != 1 {
		t.Fatalf("strategy = %v, want a single decision", strat)
	}
	dec := strat[0]
	if dec.Offered != "a" || dec.Next != "rr" {
		t.Errorf("decision = %v, want: on a go to rr", dec)
	}
	if !strings.Contains(strat.String(), "on a go to rr") {
		t.Errorf("rendering: %s", strat)
	}
}

func TestAcyclicStrategyLosingGame(t *testing.T) {
	p := fsp.Linear("P", "a")
	bq := fsp.NewBuilder("Q")
	q0, q1 := bq.State("0"), bq.State("1")
	bq.AddTau(q0, q1) // Q defects immediately
	q := bq.MustBuild()
	win, strat, err := AcyclicStrategy(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if win || strat != nil {
		t.Errorf("win=%v strat=%v, want losing game", win, strat)
	}
}

func TestAcyclicStrategyTrivialWin(t *testing.T) {
	b := fsp.NewBuilder("P")
	b.State("0")
	p := b.MustBuild()
	win, strat, err := AcyclicStrategy(p, fsp.Linear("Q", "x"))
	if err != nil {
		t.Fatal(err)
	}
	if !win || len(strat) != 0 {
		t.Errorf("win=%v |strat|=%d, want trivial empty strategy", win, len(strat))
	}
}

// TestStrategyAgreesWithSolver: strategy extraction reports the same
// winner as the plain solver and, when winning, covers the start position.
func TestStrategyAgreesWithSolver(t *testing.T) {
	r := rand.New(rand.NewSource(831))
	cfg := fsptest.DefaultConfig()
	for i := 0; i < 60; i++ {
		p, q := fsptest.TwoProcessClosed(r, cfg)
		win1, err := SolveAcyclic(p, q)
		if err != nil {
			t.Fatal(err)
		}
		win2, strat, err := AcyclicStrategy(p, q)
		if err != nil {
			t.Fatal(err)
		}
		if win1 != win2 {
			t.Fatalf("iter %d: solver=%v strategy=%v", i, win1, win2)
		}
		if win2 && !p.IsLeaf(p.Start()) && len(strat) == 0 {
			t.Fatalf("iter %d: non-trivial win with empty strategy", i)
		}
	}
}

// TestStrategyReplays: following the extracted strategy against every
// adversary playout keeps P winning (reaches a leaf).
func TestStrategyReplays(t *testing.T) {
	r := rand.New(rand.NewSource(839))
	cfg := fsptest.DefaultConfig()
	for i := 0; i < 40; i++ {
		p, q := fsptest.TwoProcessClosed(r, cfg)
		win, strat, err := AcyclicStrategy(p, q)
		if err != nil {
			t.Fatal(err)
		}
		if !win {
			continue
		}
		// Index decisions by (state name, trail, action).
		type key struct {
			state, belief string
			act           fsp.Action
		}
		index := make(map[key]string)
		for _, d := range strat {
			index[key{d.PState, d.Belief, d.Offered}] = d.Next
		}
		// Exhaustively play every adversary action sequence.
		var play func(pp fsp.State, belief []fsp.State, depth int) bool
		play = func(pp fsp.State, belief []fsp.State, depth int) bool {
			if depth > 32 {
				return false
			}
			if p.IsLeaf(pp) {
				return true
			}
			acts := p.ActionsAt(pp)
			// Blocking adversary option: stable belief state with no act.
			for _, qs := range belief {
				if q.IsStable(qs) && !intersects(q.ActionsAt(qs), acts) {
					return false
				}
			}
			for _, act := range acts {
				next := q.Step(belief, act)
				if len(next) == 0 {
					continue
				}
				nextName, ok := index[key{p.StateName(pp), beliefKey(belief), act}]
				if !ok {
					return false // strategy has a hole
				}
				var chosen fsp.State = -1
				for _, succ := range p.Succ(pp, act) {
					if p.StateName(succ) == nextName {
						chosen = succ
						break
					}
				}
				if chosen < 0 {
					return false
				}
				if !play(chosen, next, depth+1) {
					return false
				}
			}
			return true
		}
		start := q.TauClosure([]fsp.State{q.Start()})
		if !play(p.Start(), start, 0) {
			t.Fatalf("iter %d: strategy fails under some adversary playout\nP=%s\nQ=%s\n%s",
				i, p.DOT(), q.DOT(), strat)
		}
	}
}

func TestCyclicStrategyLoop(t *testing.T) {
	// P alternates a/b with two a-successors, only one of which continues.
	bp := fsp.NewBuilder("P")
	s0, good, dead := bp.State("0"), bp.State("good"), bp.State("dead")
	bp.Add(s0, "a", good)
	bp.Add(s0, "a", dead)
	bp.Add(good, "b", s0)
	p := bp.MustBuild()
	bq := fsp.NewBuilder("Q")
	t0, t1 := bq.State("0"), bq.State("1")
	bq.Add(t0, "a", t1)
	bq.Add(t1, "b", t0)
	q := bq.MustBuild()

	win, strat, err := CyclicStrategy(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if !win {
		t.Fatal("P wins by always picking the good a-successor")
	}
	for _, d := range strat {
		if d.Offered == "a" && d.Next != "good" {
			t.Errorf("strategy picks %q on a, want good", d.Next)
		}
	}
	// Agreement with the solver.
	solved, err := SolveCyclic(p, q)
	if err != nil || solved != win {
		t.Errorf("solver=%v strategy=%v err=%v", solved, win, err)
	}
}

func TestCyclicStrategyLosing(t *testing.T) {
	p := fsp.Linear("P", "a") // stops after one move: loses the cyclic game
	bq := fsp.NewBuilder("Q")
	t0 := bq.State("0")
	bq.Add(t0, "a", t0)
	q := bq.MustBuild()
	win, strat, err := CyclicStrategy(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if win || strat != nil {
		t.Errorf("win=%v strat=%v, want losing", win, strat)
	}
}
