package game

import (
	"fmt"
	"strings"

	"fspnet/internal/fsp"
	"fspnet/internal/queue"
)

// Decision is one row of a winning strategy for player P: after observing
// the action trail Trail and sitting in state PState, if the adversary
// offers Offered, P moves to Next.
type Decision struct {
	Trail   []fsp.Action // one action trail reaching the position (display)
	PState  string       // P's current state name
	Belief  string       // opaque identifier of P's knowledge at this position
	Offered fsp.Action   // the adversary's action
	Next    string       // the state P should choose
}

// String renders the decision.
func (d Decision) String() string {
	trail := "ε"
	if len(d.Trail) > 0 {
		parts := make([]string, len(d.Trail))
		for i, a := range d.Trail {
			parts[i] = string(a)
		}
		trail = strings.Join(parts, "·")
	}
	return fmt.Sprintf("after %s at %s: on %s go to %s", trail, d.PState, d.Offered, d.Next)
}

// Strategy is a winning strategy as a finite decision list, covering every
// position reachable when P follows it.
type Strategy []Decision

// String renders the strategy one decision per line.
func (s Strategy) String() string {
	var sb strings.Builder
	for _, d := range s {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// AcyclicStrategy solves the acyclic game and, when P wins, extracts a
// winning strategy: for every position reachable under it and every action
// the adversary can legally offer there, the P-response that stays inside
// the winning region. The strategy is empty when P wins without ever
// moving (its start state is a leaf).
func AcyclicStrategy(p, q *fsp.FSP) (win bool, strat Strategy, err error) {
	if err := checkP(p); err != nil {
		return false, nil, err
	}
	if !p.IsAcyclic() || !q.IsAcyclic() {
		return false, nil, fmt.Errorf("game: AcyclicStrategy needs acyclic processes (P %s, Q %s)",
			p.Classify(), q.Classify())
	}
	sv := &solver{p: p, q: q, budget: DefaultBudget, beliefs: make(map[string][]fsp.State)}
	memo := make(map[node]bool)
	startKey, startBelief := sv.intern(q.TauClosure([]fsp.State{q.Start()}))
	win, err = sv.winAcyclic(p.Start(), startKey, startBelief, memo)
	if err != nil || !win {
		return win, nil, err
	}

	type item struct {
		p     fsp.State
		key   string
		trail []fsp.Action
	}
	seen := map[node]bool{{p.Start(), startKey}: true}
	var work queue.Queue[item]
	work.Push(item{p.Start(), startKey, nil})
	for {
		it, ok := work.Pop()
		if !ok {
			break
		}
		if p.IsLeaf(it.p) {
			continue
		}
		belief := sv.beliefs[it.key]
		for _, act := range p.ActionsAt(it.p) {
			next := q.Step(belief, act)
			if len(next) == 0 {
				continue // the adversary cannot offer act here
			}
			nkey, _ := sv.intern(next)
			chosen := fsp.State(-1)
			for _, succ := range p.Succ(it.p, act) {
				if memo[node{succ, nkey}] {
					chosen = succ
					break
				}
			}
			if chosen < 0 {
				// Unreachable for a winning position: winAcyclic guarantees
				// some response wins for every offerable action.
				return false, nil, fmt.Errorf("game: winning position without winning response at %s on %s",
					p.StateName(it.p), act)
			}
			trail := append(append([]fsp.Action(nil), it.trail...), act)
			strat = append(strat, Decision{
				Trail:   it.trail,
				PState:  p.StateName(it.p),
				Belief:  it.key,
				Offered: act,
				Next:    p.StateName(chosen),
			})
			nd := node{chosen, nkey}
			if !seen[nd] {
				seen[nd] = true
				work.Push(item{chosen, nkey, trail})
			}
		}
	}
	return true, strat, nil
}

// CyclicStrategy solves the Section 4 game and, when P wins, extracts a
// positional winning strategy over the reachable winning positions: for
// every position and offerable adversary action, a response that stays in
// the winning region. Following it keeps the play inside the region, so P
// never stops moving. Decisions carry no trails (plays are infinite);
// Belief identifies the position.
func CyclicStrategy(p, q *fsp.FSP) (win bool, strat Strategy, err error) {
	if err := checkP(p); err != nil {
		return false, nil, err
	}
	// Run the fixpoint, then read off one winning response per
	// (position, action).
	sv := &solver{p: p, q: q, budget: DefaultBudget, beliefs: make(map[string][]fsp.State)}
	winSet, _, adjacency, err := sv.cyclicFixpoint()
	if err != nil {
		return false, nil, err
	}
	startKey, _ := sv.intern(q.TauClosure([]fsp.State{q.Start()}))
	start := node{p: p.Start(), key: startKey}
	if !winSet[start] {
		return false, nil, nil
	}
	seen := map[node]bool{start: true}
	var work queue.Queue[node]
	work.Push(start)
	for {
		nd, ok := work.Pop()
		if !ok {
			break
		}
		for _, e := range adjacency[nd] {
			chosen := node{p: -1}
			for _, d := range e.dest {
				if winSet[d] {
					chosen = d
					break
				}
			}
			if chosen.p < 0 {
				return false, nil, fmt.Errorf("game: winning cyclic position without winning response at %s on %s",
					p.StateName(nd.p), e.act)
			}
			strat = append(strat, Decision{
				PState:  p.StateName(nd.p),
				Belief:  nd.key,
				Offered: e.act,
				Next:    p.StateName(chosen.p),
			})
			if !seen[chosen] {
				seen[chosen] = true
				work.Push(chosen)
			}
		}
	}
	return true, strat, nil
}

// gameEdge mirrors SolveCyclic's edge type for reuse by CyclicStrategy.
type gameEdge struct {
	act  fsp.Action
	dest []node
}

// cyclicFixpoint builds the reachable position graph and runs the
// greatest-fixpoint elimination, returning the winning set.
func (sv *solver) cyclicFixpoint() (map[node]bool, []node, map[node][]gameEdge, error) {
	adjacency := make(map[node][]gameEdge)
	var order []node
	startKey, _ := sv.intern(sv.q.TauClosure([]fsp.State{sv.q.Start()}))
	start := node{p: sv.p.Start(), key: startKey}
	var work queue.Queue[node]
	work.Push(start)
	seen := map[node]bool{start: true}
	for {
		nd, ok := work.Pop()
		if !ok {
			break
		}
		order = append(order, nd)
		if len(order) > sv.budget {
			return nil, nil, nil, sv.limit(fmt.Errorf("game: %d positions: %w", len(order), ErrBudget), len(order))
		}
		if err := sv.poll(len(order)); err != nil {
			return nil, nil, nil, err
		}
		if err := sv.g.Charge(1); err != nil {
			return nil, nil, nil, sv.limit(fmt.Errorf("game: %d positions: %w", len(order), err), len(order))
		}
		for _, act := range sv.p.ActionsAt(nd.p) {
			next := sv.q.Step(sv.beliefs[nd.key], act)
			if len(next) == 0 {
				continue
			}
			nkey, _ := sv.intern(next)
			var dests []node
			for _, succ := range sv.p.Succ(nd.p, act) {
				d := node{p: succ, key: nkey}
				dests = append(dests, d)
				if !seen[d] {
					seen[d] = true
					work.Push(d)
				}
			}
			adjacency[nd] = append(adjacency[nd], gameEdge{act: act, dest: dests})
		}
	}
	win := make(map[node]bool, len(order))
	for _, nd := range order {
		win[nd] = true
	}
	losing := func(nd node) bool {
		if sv.p.IsLeaf(nd.p) {
			return true
		}
		if sv.blocked(sv.beliefs[nd.key], sv.p.ActionsAt(nd.p)) {
			return true
		}
		for _, e := range adjacency[nd] {
			anyGood := false
			for _, d := range e.dest {
				if win[d] {
					anyGood = true
					break
				}
			}
			if !anyGood {
				return true
			}
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		for _, nd := range order {
			if win[nd] && losing(nd) {
				win[nd] = false
				changed = true
			}
		}
	}
	return win, order, adjacency, nil
}
