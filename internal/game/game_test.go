package game

import (
	"errors"
	"testing"

	"fspnet/internal/fsp"
	"fspnet/internal/guard"
)

func TestSolveAcyclicTrivialWin(t *testing.T) {
	// P is a lone leaf: it has already succeeded.
	b := fsp.NewBuilder("P")
	b.State("0")
	p := b.MustBuild()
	q := fsp.Linear("Q", "a")
	win, err := SolveAcyclic(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if !win {
		t.Error("leaf P wins immediately")
	}
}

func TestSolveAcyclicBranchChoice(t *testing.T) {
	// P must pick the correct a-successor: one branch needs b (which Q may
	// withhold), the other is a leaf.
	bp := fsp.NewBuilder("P")
	r0, l, rr, d := bp.State("r"), bp.State("l"), bp.State("rr"), bp.State("d")
	bp.Add(r0, "a", l)
	bp.Add(r0, "a", rr)
	bp.Add(l, "b", d)
	p := bp.MustBuild()

	bq := fsp.NewBuilder("Q")
	q0, q1, q2, q3 := bq.State("0"), bq.State("1"), bq.State("2"), bq.State("3")
	bq.Add(q0, "a", q1)
	bq.Add(q1, "b", q2)
	bq.AddTau(q1, q3)
	q := bq.MustBuild()

	win, err := SolveAcyclic(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if !win {
		t.Error("P wins by right-branching on a")
	}
}

func TestSolveAcyclicForcedLoss(t *testing.T) {
	// Q can offer only b after a; P's only a-successor needs c.
	bp := fsp.NewBuilder("P")
	r0, l, d := bp.State("r"), bp.State("l"), bp.State("d")
	bp.Add(r0, "a", l)
	bp.Add(l, "c", d)
	p := bp.MustBuild()
	q := fsp.Linear("Q", "a", "b")
	win, err := SolveAcyclic(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if win {
		t.Error("P cannot match Q's b and loses")
	}
}

func TestSolveAcyclicRejectsCyclic(t *testing.T) {
	b := fsp.NewBuilder("C")
	s0 := b.State("0")
	b.Add(s0, "a", s0)
	cyc := b.MustBuild()
	if _, err := SolveAcyclic(cyc, fsp.Linear("Q", "a")); err == nil {
		t.Error("cyclic P must be rejected")
	}
	if _, err := SolveAcyclic(fsp.Linear("P", "a"), cyc); err == nil {
		t.Error("cyclic Q must be rejected")
	}
}

func TestSolveCyclicLoop(t *testing.T) {
	b1 := fsp.NewBuilder("P")
	s0 := b1.State("0")
	b1.Add(s0, "a", s0)
	p := b1.MustBuild()
	b2 := fsp.NewBuilder("Q")
	t0 := b2.State("0")
	b2.Add(t0, "a", t0)
	q := b2.MustBuild()
	win, err := SolveCyclic(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if !win {
		t.Error("mutual a-loop lets P play forever")
	}
}

func TestSolveCyclicLeafLoses(t *testing.T) {
	p := fsp.Linear("P", "a") // reaches a leaf: loses the infinite game
	b2 := fsp.NewBuilder("Q")
	t0 := b2.State("0")
	b2.Add(t0, "a", t0)
	q := b2.MustBuild()
	win, err := SolveCyclic(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if win {
		t.Error("P that stops moving loses the cyclic game")
	}
}

func TestErrTauMoves(t *testing.T) {
	b := fsp.NewBuilder("P")
	s0, s1 := b.State("0"), b.State("1")
	b.AddTau(s0, s1)
	p := b.MustBuild()
	if _, err := SolveAcyclic(p, fsp.Linear("Q", "a")); !errors.Is(err, ErrTauMoves) {
		t.Errorf("err = %v, want ErrTauMoves", err)
	}
	if _, err := SolveCyclic(p, fsp.Linear("Q", "a")); !errors.Is(err, ErrTauMoves) {
		t.Errorf("err = %v, want ErrTauMoves", err)
	}
	if _, err := ReachablePairs(p, fsp.Linear("Q", "a")); !errors.Is(err, ErrTauMoves) {
		t.Errorf("err = %v, want ErrTauMoves", err)
	}
}

func TestReachablePairs(t *testing.T) {
	p := fsp.Linear("P", "a", "b")
	q := fsp.Linear("Q", "a", "b")
	n, err := ReachablePairs(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("ReachablePairs = %d, want 3 (one per P depth)", n)
	}
}

// TestReachablePairsOpts pins the sweep to its Options: both the explicit
// position budget and the governor's shared charge budget must stop it
// with the usual sentinels (the plain ReachablePairs silently used
// DefaultBudget and no guard).
func TestReachablePairsOpts(t *testing.T) {
	p := fsp.Linear("P", "a", "b")
	q := fsp.Linear("Q", "a", "b")
	if _, err := ReachablePairsOpts(p, q, Options{Budget: 1}); !errors.Is(err, ErrBudget) {
		t.Errorf("Budget=1: err = %v, want ErrBudget", err)
	}
	g := guard.New(guard.Config{Budget: 1})
	_, err := ReachablePairsOpts(p, q, Options{Guard: g})
	if !errors.Is(err, guard.ErrBudget) {
		t.Errorf("guard budget: err = %v, want guard.ErrBudget", err)
	}
	var le *guard.LimitErr
	if !errors.As(err, &le) || le.Partial.Pass != "game" {
		t.Errorf("guard budget: err = %v, want a LimitErr naming pass game", err)
	}
}
