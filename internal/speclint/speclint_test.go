package speclint

import (
	"fmt"
	"strings"
	"testing"

	"fspnet/internal/fsplang"
)

// lint is the test harness: run all analyzers, return non-waived
// rendered diagnostics.
func lint(t *testing.T, src string) []string {
	t.Helper()
	diags, err := Run("test.fsp", src)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.String()
	}
	return out
}

func wantDiags(t *testing.T, got []string, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\ngot:  %s\nwant: %s",
			len(got), len(want), strings.Join(got, "\n      "), strings.Join(want, "\n      "))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diagnostic %d:\ngot:  %s\nwant: %s", i, got[i], want[i])
		}
	}
}

func TestUnmatched(t *testing.T) {
	src := strings.Join([]string{
		"process P {",
		"    start s0",
		"    s0 a s1",
		"    s1 lonely s0",
		"    s0 lonely s1",
		"}",
		"process Q { t0 a t0 }",
		"process R { u0 b u0 }",
		"process S { v0 b v0 }",
		"process T { w0 b w0 }",
	}, "\n")
	// The blocked action also collapses s0's choice (deadbranch) and the
	// three one-state b-members are structural duplicates (dupmember);
	// both are legitimate companions to the unmatched reports.
	wantDiags(t, lint(t, src),
		`test.fsp:4:8: unmatched: action "lonely" is only used by member P: no partner can synchronize, the transition s1 lonely s0 is statically blocked`,
		`test.fsp:5:8: deadbranch: branch s0 lonely s1 of member P can never be taken: action "lonely" is statically blocked`,
		`test.fsp:7:9: dupmember: member Q is identical to R, S, T up to relabeling (a↦b): symmetry candidate, interchangeable up to action renaming`,
		`test.fsp:8:16: unmatched: action "b" is used by 3 members (R, S, T): Definition 2 requires exactly two, so it can never synchronize`,
	)
}

func TestTaudiv(t *testing.T) {
	src := strings.Join([]string{
		"process P {",
		"    start s0",
		"    s0 a s1",
		"    s1 tau s1", // self-loop
		"    s1 tau s2", // part of 2-cycle s1<->s2? no: s1->s2, s2->s1
		"    s2 τ s1",
		"}",
		"process Q { t0 a t0 }",
	}, "\n")
	// The cycle is anchored at s1's first mention (line 3), the
	// self-loop at its own τ token (line 4); file order sorts the cycle
	// first.
	wantDiags(t, lint(t, src),
		`test.fsp:3:10: taudiv: member P has a τ-only cycle through states s1, s2: it can diverge without any synchronization`,
		`test.fsp:4:8: taudiv: member P has a τ-self-loop at state s1: it can diverge without any synchronization`,
	)
}

func TestTaudivNoFalsePositive(t *testing.T) {
	// τ-transitions that do not close a τ-only cycle are fine, even if
	// the member is cyclic through observable actions.
	src := "process P { start s0; s0 tau s1; s1 a s0 }\nprocess Q { t0 a t0 }"
	wantDiags(t, lint(t, src))
}

func TestDeadstate(t *testing.T) {
	src := strings.Join([]string{
		"process P {",
		"    start s0",
		"    s0 a s0",
		"    dead b gone",
		"}",
		"process Q { t0 a t0; t0 b t0 }",
	}, "\n")
	wantDiags(t, lint(t, src),
		`test.fsp:4:5: deadstate: state dead of member P is unreachable from start state s0`,
		`test.fsp:4:12: deadstate: state gone of member P is unreachable from start state s0`,
	)
}

func TestDeadbranch(t *testing.T) {
	src := strings.Join([]string{
		"process P {",
		"    start s0",
		"    s0 a s1",
		"    s0 lonely s2",
		"}",
		"process Q { t0 a t0 }",
	}, "\n")
	wantDiags(t, lint(t, src),
		`test.fsp:4:8: deadbranch: branch s0 lonely s2 of member P can never be taken: action "lonely" is statically blocked`,
		`test.fsp:4:8: unmatched: action "lonely" is only used by member P: no partner can synchronize, the transition s0 lonely s2 is statically blocked`,
	)
}

func TestDeadbranchNeedsChoice(t *testing.T) {
	// A single blocked transition is unmatched's business, not a dead
	// branch: there is no choice to collapse.
	src := "process P { start s0; s0 lonely s1; s1 a s0 }\nprocess Q { t0 a t0 }"
	got := lint(t, src)
	for _, d := range got {
		if strings.Contains(d, "deadbranch") {
			t.Errorf("unexpected deadbranch diagnostic: %s", d)
		}
	}
}

func TestSink(t *testing.T) {
	src := strings.Join([]string{
		"process P {",
		"    start s0",
		"    s0 a s1",
		"    s1 b s0",
		"    s1 a trap",
		"}",
		"process Q { t0 a t0; t0 b t0 }",
	}, "\n")
	wantDiags(t, lint(t, src),
		`test.fsp:5:10: sink: state trap of cyclic member P has no outgoing transitions: a reachable trap, not a termination leaf`,
	)
}

func TestSinkSilentOnAcyclicMember(t *testing.T) {
	// In an acyclic member a leaf is proper termination (Section 3), not
	// a defect.
	src := "process P { start s0; s0 a s1 }\nprocess Q { t0 a t1; t1 b t2; t1 c t2 }\nprocess R { u0 b u1; u0 c u1 }"
	wantDiags(t, lint(t, src))
}

func TestDupmember(t *testing.T) {
	src := strings.Join([]string{
		"process P { start s0; s0 a s1; s1 b s0 }",
		"process Q { start t0; t0 b t1; t1 a t0 }",
		"process R { start u0; u0 c u0 }",
		"process S { start v0; v0 c v0 }",
	}, "\n")
	got := lint(t, src)
	var dup []string
	for _, d := range got {
		if strings.Contains(d, "dupmember") {
			dup = append(dup, d)
		}
	}
	wantDiags(t, dup,
		`test.fsp:1:9: dupmember: member P is identical to Q up to relabeling (a↦b, b↦a): symmetry candidate, interchangeable up to action renaming`,
		`test.fsp:3:9: dupmember: member R is identical to S up to relabeling (identical verbatim): symmetry candidate, interchangeable up to action renaming`,
	)
}

func TestDupmemberDistinctStructure(t *testing.T) {
	src := "process P { start s0; s0 a s1 }\nprocess Q { start t0; t0 a t1; t1 b t1 }\nprocess R { u0 b u0 }"
	got := lint(t, src)
	for _, d := range got {
		if strings.Contains(d, "dupmember") {
			t.Errorf("unexpected dupmember diagnostic: %s", d)
		}
	}
}

func TestWaiversDropAndFlag(t *testing.T) {
	src := strings.Join([]string{
		"process P {",
		"    start s0",
		"    # fsplint:ignore taudiv intentional busy-wait",
		"    s0 tau s0",
		"    s0 a s0",
		"}",
		"process Q { t0 a t0 }",
	}, "\n")
	if got := lint(t, src); len(got) != 0 {
		t.Errorf("waived diagnostics leaked through Run: %v", got)
	}
	spec := mustParse(t, src)
	all := RunSpec("test.fsp", spec, nil)
	if len(all) != 1 || !all[0].Waived || all[0].Analyzer != "taudiv" {
		t.Errorf("RunSpec should keep the waived diagnostic flagged, got %+v", all)
	}
}

func TestByName(t *testing.T) {
	sel, err := ByName([]string{"taudiv", "sink"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 || sel[0].Name != "sink" || sel[1].Name != "taudiv" {
		t.Errorf("ByName order wrong: %v", names(sel))
	}
	if _, err := ByName([]string{"nope"}); err == nil {
		t.Error("ByName accepted unknown analyzer")
	}
	all, err := ByName(nil)
	if err != nil || len(all) != 6 {
		t.Errorf("ByName(nil) = %v analyzers, err %v; want all 6", len(all), err)
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Name >= all[i].Name {
			t.Errorf("Analyzers() not sorted by name: %v", names(all))
		}
	}
}

func TestDiagnosticsSortedAndStable(t *testing.T) {
	src := strings.Join([]string{
		"process P {",
		"    start s0",
		"    s0 x s1",
		"    s0 tau s0",
		"    dead y dead2",
		"}",
		"process Q { t0 z t0 }",
	}, "\n")
	first, err := Run("test.fsp", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("expected diagnostics")
	}
	for i := 1; i < len(first); i++ {
		a, b := first[i-1], first[i]
		ka := []any{a.File, a.Line, a.Col, a.Analyzer, a.Message}
		kb := []any{b.File, b.Line, b.Col, b.Analyzer, b.Message}
		if fmt.Sprintf("%s|%09d|%09d|%s|%s", ka...) > fmt.Sprintf("%s|%09d|%09d|%s|%s", kb...) {
			t.Errorf("diagnostics out of order:\n%s\n%s", a, b)
		}
	}
	for round := 0; round < 5; round++ {
		if got := strings.Join(lint(t, src), "\n"); got != strings.Join(first2str(first), "\n") {
			t.Fatalf("diagnostics unstable on round %d", round)
		}
	}
}

func first2str(diags []Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.String()
	}
	return out
}

func mustParse(t *testing.T, src string) *fsplang.Spec {
	t.Helper()
	spec, err := fsplang.ParseSpec(src)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func names(as []*Analyzer) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name
	}
	return out
}
