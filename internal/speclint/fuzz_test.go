package speclint

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"unicode/utf8"

	"fspnet/internal/fsplang"
)

// FuzzSpeclint asserts the robustness and determinism properties the
// fspd lint endpoint relies on:
//
//  1. speclint never panics, on any input the spec parser accepts;
//  2. ParseSpec accepts everything ParseString accepts (the spec layer
//     is strictly more permissive than network construction), and on
//     those inputs FormatSpec agrees with Format — so both layers
//     compute the same canonical text, hence the same cache digest;
//  3. diagnostics are invariant under a FormatSpec round-trip of the
//     canonical text: lint(canonical) == lint(format(parse(canonical))).
//     Cached diagnostics keyed by the canonical digest therefore never
//     disagree with a recomputation. (Diagnostics of the raw source can
//     legitimately differ from the canonical text's — positions move and
//     waiver comments are stripped — which is why the service lints the
//     canonical form.)
func FuzzSpeclint(f *testing.F) {
	f.Add("process P { start s0; s0 a s1 }")
	f.Add("process P { s0 lonely s1; s0 tau s0 }")
	f.Add("process P { start s0; dead a dead }\nprocess Q { q a q }")
	f.Add("# fsplint:ignore taudiv reason\nprocess P { s0 tau s0 }")
	f.Add("process P { start start; s0 a s1 }\nprocess Q { t0 a t0 }")
	matches, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.fsp"))
	if err == nil {
		for _, m := range matches {
			if data, err := os.ReadFile(m); err == nil {
				f.Add(string(data))
			}
		}
	}

	f.Fuzz(func(t *testing.T, src string) {
		if !utf8.ValidString(src) {
			return
		}
		spec, specErr := fsplang.ParseSpec(src)
		if _, netErr := fsplang.ParseString(src); netErr == nil {
			if specErr != nil {
				t.Fatalf("ParseString accepted input ParseSpec rejected: %v\ninput: %q", specErr, src)
			}
		}
		if specErr != nil {
			return
		}
		// 1. No panics: lint the raw spec, waived findings included.
		RunSpec("fuzz.fsp", spec, nil)

		// 3. Canonical-text diagnostics are round-trip stable.
		canonical := fsplang.FormatSpec(spec)
		cspec, err := fsplang.ParseSpec(canonical)
		if err != nil {
			t.Fatalf("canonical text failed to reparse: %v\ncanonical: %q", err, canonical)
		}
		first := RunSpec("canon.fsp", cspec, nil)
		again := fsplang.FormatSpec(cspec)
		if again != canonical {
			t.Fatalf("FormatSpec not idempotent:\nfirst:  %q\nsecond: %q", canonical, again)
		}
		cspec2, err := fsplang.ParseSpec(again)
		if err != nil {
			t.Fatalf("round-tripped canonical text failed to reparse: %v", err)
		}
		second := RunSpec("canon.fsp", cspec2, nil)
		if !reflect.DeepEqual(first, second) {
			t.Fatalf("diagnostics not invariant under canonical round-trip:\nfirst:  %v\nsecond: %v", first, second)
		}
	})
}

// TestSpecFormatParity pins fuzz property 2 on the checked-in fixtures:
// the spec layer and the network layer render the same canonical text,
// so the lint cache and the verdict cache key the same digests.
func TestSpecFormatParity(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.fsp"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no .fsp fixtures found: %v", err)
	}
	for _, m := range matches {
		data, err := os.ReadFile(m)
		if err != nil {
			t.Fatal(err)
		}
		n, err := fsplang.ParseString(string(data))
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		spec, err := fsplang.ParseSpec(string(data))
		if err != nil {
			t.Fatalf("%s: ParseSpec: %v", m, err)
		}
		if got, want := fsplang.FormatSpec(spec), fsplang.Format(n); got != want {
			t.Errorf("%s: FormatSpec disagrees with Format:\nspec:    %q\nnetwork: %q", m, got, want)
		}
	}
}
