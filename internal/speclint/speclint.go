// Package speclint statically analyzes fsplang network descriptions and
// reports semantic defects — without running any solver. The analyzers
// work on the positioned, validation-free fsplang.Spec AST, so the
// defects that network construction would reject outright (an action
// with no partner, a state unreachable from start) become positioned
// diagnostics instead of a single opaque error, and cheaper hints
// (τ-divergence sources, symmetric duplicate members) surface before any
// state-space work.
//
// Diagnostics are deterministic: for a given source text the same
// diagnostics come back in the same byte-stable order, sorted by
// (file, line, col, analyzer, message). They are also a pure function of
// the canonical form fsplang.FormatSpec produces, which lets fspd cache
// them under the canonical-text digest.
//
// A finding is waived by a directive comment on its line or the line
// above:
//
//	#fsplint:ignore unmatched,taudiv reason
package speclint

import (
	"fmt"
	"sort"

	"fspnet/internal/fsplang"
)

// Diagnostic is one finding. The JSON shape is shared by fsplint -json
// and fspd's /v1/lint endpoint.
type Diagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	// Waived marks a diagnostic silenced by an #fsplint:ignore directive.
	// Run drops waived diagnostics; RunSpec keeps them, flagged, so
	// golden tests can pin both populations.
	Waived bool `json:"waived,omitempty"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one speclint check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass hands an analyzer the parsed spec, the shared network-level
// facts, and a report sink.
type Pass struct {
	File string
	Spec *fsplang.Spec
	Info *Info

	analyzer *Analyzer
	out      *[]Diagnostic
}

// Report records a diagnostic at the given position.
func (p *Pass) Report(pos fsplang.Pos, format string, args ...any) {
	*p.out = append(*p.out, Diagnostic{
		File:     p.File,
		Line:     pos.Line,
		Col:      pos.Col,
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Info precomputes the network-level facts the analyzers share.
type Info struct {
	// Owners maps each observable action key to the sorted indices of the
	// member processes that mention it. Definition 2 requires exactly two
	// entries; τ is never an owner key.
	Owners map[string][]int
	// Procs holds the per-member graphs, parallel to Spec.Processes.
	Procs []*ProcInfo
}

// ProcInfo is the graph view of one member process.
type ProcInfo struct {
	Decl  *fsplang.ProcDecl
	Index int
	// StateIdx maps a state name to its first-mention index.
	StateIdx map[string]int
	// Out maps each state index to the indices (into Decl.Transitions) of
	// its outgoing transitions, in source order.
	Out [][]int
	// Reachable marks states reachable from the start state.
	Reachable []bool
	// HasCycle reports whether any cycle (through any actions) exists.
	HasCycle bool
}

// Blocked reports whether an observable action key is statically blocked
// under Definition 2's communication rule: it can hand-shake only if
// exactly two members own it. τ is internal and never blocked.
func (in *Info) Blocked(key string) bool {
	return key != tauKey && len(in.Owners[key]) != 2
}

// tauKey is the canonical action key of the unobservable action.
const tauKey = "τ"

// BuildInfo computes the shared facts for a parsed spec.
func BuildInfo(spec *fsplang.Spec) *Info {
	info := &Info{Owners: make(map[string][]int)}
	for i, decl := range spec.Processes {
		pi := &ProcInfo{
			Decl:     decl,
			Index:    i,
			StateIdx: make(map[string]int, len(decl.States)),
		}
		for j, st := range decl.States {
			pi.StateIdx[st.Name] = j
		}
		pi.Out = make([][]int, len(decl.States))
		seenAction := make(map[string]bool)
		for t := range decl.Transitions {
			tr := &decl.Transitions[t]
			from := pi.StateIdx[tr.From]
			pi.Out[from] = append(pi.Out[from], t)
			if !tr.Tau {
				key := tr.ActionKey()
				if !seenAction[key] {
					seenAction[key] = true
					info.Owners[key] = append(info.Owners[key], i)
				}
			}
		}
		pi.Reachable = reachableFrom(pi, decl)
		pi.HasCycle = hasCycle(pi, decl)
		info.Procs = append(info.Procs, pi)
	}
	return info
}

func reachableFrom(pi *ProcInfo, decl *fsplang.ProcDecl) []bool {
	reach := make([]bool, len(decl.States))
	if decl.Start == "" {
		return reach
	}
	stack := []int{pi.StateIdx[decl.Start]}
	reach[stack[0]] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range pi.Out[s] {
			to := pi.StateIdx[decl.Transitions[t].To]
			if !reach[to] {
				reach[to] = true
				stack = append(stack, to)
			}
		}
	}
	return reach
}

// hasCycle detects any directed cycle in the member's full graph with an
// iterative three-color DFS.
func hasCycle(pi *ProcInfo, decl *fsplang.ProcDecl) bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]byte, len(decl.States))
	type frame struct{ state, next int }
	for root := range decl.States {
		if color[root] != white {
			continue
		}
		stack := []frame{{root, 0}}
		color[root] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(pi.Out[f.state]) {
				t := pi.Out[f.state][f.next]
				f.next++
				to := pi.StateIdx[decl.Transitions[t].To]
				switch color[to] {
				case gray:
					return true
				case white:
					color[to] = gray
					stack = append(stack, frame{to, 0})
				}
				continue
			}
			color[f.state] = black
			stack = stack[:len(stack)-1]
		}
	}
	return false
}

// Analyzers returns every speclint analyzer, sorted by name.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		deadbranchAnalyzer,
		deadstateAnalyzer,
		dupmemberAnalyzer,
		sinkAnalyzer,
		taudivAnalyzer,
		unmatchedAnalyzer,
	}
}

// ByName resolves analyzer names; an empty list selects all of them.
func ByName(names []string) ([]*Analyzer, error) {
	all := Analyzers()
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range names {
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("speclint: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Run parses src and returns the non-waived diagnostics from every
// analyzer, in byte-stable order. A parse failure is returned as an
// error, not a diagnostic; drivers decide how to surface it.
func Run(file, src string) ([]Diagnostic, error) {
	spec, err := fsplang.ParseSpec(src)
	if err != nil {
		return nil, err
	}
	diags := RunSpec(file, spec, nil)
	kept := diags[:0]
	for _, d := range diags {
		if !d.Waived {
			kept = append(kept, d)
		}
	}
	return kept, nil
}

// RunSpec runs the given analyzers (all of them if nil) over an
// already-parsed spec and returns every diagnostic, with waived ones
// flagged rather than dropped, in byte-stable order.
func RunSpec(file string, spec *fsplang.Spec, analyzers []*Analyzer) []Diagnostic {
	if analyzers == nil {
		analyzers = Analyzers()
	}
	info := BuildInfo(spec)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{File: file, Spec: spec, Info: info, analyzer: a, out: &diags}
		a.Run(pass)
	}
	for i := range diags {
		diags[i].Waived = spec.Waived(diags[i].Line, diags[i].Analyzer)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}
