package speclint

// The six analyzers. Each one reads the paper's network model off the
// spec syntax alone:
//
//   - unmatched / deadbranch police Definition 2's communication rule
//     (every observable action is a hand-shake between exactly two
//     members), statically: an action with fewer or more than two owners
//     can never fire.
//   - taudiv finds guaranteed divergence sources — τ-cycles a single
//     member can traverse without any partner's cooperation — which decide
//     the Section 4 divergence side conditions before any product graph
//     is built.
//   - deadstate / sink are member-local sanity checks: unreachable
//     states are dead weight (the fsp builder rejects them outright), and
//     a leaf state in an otherwise cyclic member usually means a missing
//     return transition, since under the cyclic semantics of Section 4
//     computations are meant to revisit their start infinitely often.
//   - dupmember surfaces members identical up to action relabeling — the
//     symmetry that lets a solver collapse interchangeable processes.

import (
	"fmt"
	"sort"
	"strings"

	"fspnet/internal/fsplang"
)

var unmatchedAnalyzer = &Analyzer{
	Name: "unmatched",
	Doc: "actions not owned by exactly two members: statically blocked\n\n" +
		"Definition 2 makes every observable action a hand-shake between\n" +
		"exactly two members. An action mentioned by one member alone has no\n" +
		"partner and can never fire; one mentioned by three or more is not a\n" +
		"well-formed network action at all. Either way every transition on it\n" +
		"is statically blocked. Reported once per action, at the first\n" +
		"transition that uses it.",
	Run: func(p *Pass) {
		reported := make(map[string]bool)
		for _, pi := range p.Info.Procs {
			for t := range pi.Decl.Transitions {
				tr := &pi.Decl.Transitions[t]
				key := tr.ActionKey()
				if tr.Tau || !p.Info.Blocked(key) || reported[key] {
					continue
				}
				reported[key] = true
				owners := p.Info.Owners[key]
				if len(owners) == 1 {
					p.Report(tr.LabelPos,
						"action %q is only used by member %s: no partner can synchronize, the transition %s %s %s is statically blocked",
						key, pi.Decl.Name, tr.From, tr.Label, tr.To)
					continue
				}
				names := make([]string, len(owners))
				for i, o := range owners {
					names[i] = p.Spec.Processes[o].Name
				}
				p.Report(tr.LabelPos,
					"action %q is used by %d members (%s): Definition 2 requires exactly two, so it can never synchronize",
					key, len(owners), strings.Join(names, ", "))
			}
		}
	},
}

var taudivAnalyzer = &Analyzer{
	Name: "taudiv",
	Doc: "τ-self-loops and τ-only cycles: guaranteed divergence sources\n\n" +
		"A τ-cycle inside a single member is traversable without any\n" +
		"partner's cooperation, so the member can diverge on its own — the\n" +
		"divergence the cyclic semantics (Section 4) must treat as a\n" +
		"permanently silent run. Self-loops are reported at the transition;\n" +
		"longer τ-only cycles once per cycle, at the first participating\n" +
		"state.",
	Run: func(p *Pass) {
		for _, pi := range p.Info.Procs {
			decl := pi.Decl
			// τ-self-loops, at the offending transition.
			for t := range decl.Transitions {
				tr := &decl.Transitions[t]
				if tr.Tau && tr.From == tr.To {
					p.Report(tr.LabelPos,
						"member %s has a τ-self-loop at state %s: it can diverge without any synchronization",
						decl.Name, tr.From)
				}
			}
			// τ-only cycles of length ≥ 2: strongly connected components
			// of the τ-subgraph.
			for _, scc := range tauSCCs(pi) {
				if len(scc) < 2 {
					continue
				}
				names := make([]string, len(scc))
				for i, s := range scc {
					names[i] = decl.States[s].Name
				}
				p.Report(decl.States[scc[0]].Pos,
					"member %s has a τ-only cycle through states %s: it can diverge without any synchronization",
					decl.Name, strings.Join(names, ", "))
			}
		}
	},
}

// tauSCCs returns the strongly connected components of the member's
// τ-subgraph, each sorted by state index, ordered by smallest member.
func tauSCCs(pi *ProcInfo) [][]int {
	n := len(pi.Decl.States)
	adj := make([][]int, n)
	for t := range pi.Decl.Transitions {
		tr := &pi.Decl.Transitions[t]
		if tr.Tau {
			from, to := pi.StateIdx[tr.From], pi.StateIdx[tr.To]
			adj[from] = append(adj[from], to)
		}
	}
	// Iterative Tarjan.
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		sccs    [][]int
		stack   []int
		counter int
	)
	type frame struct{ v, next int }
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		call := []frame{{root, 0}}
		index[root], low[root] = counter, counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		for len(call) > 0 {
			f := &call[len(call)-1]
			if f.next < len(adj[f.v]) {
				w := adj[f.v][f.next]
				f.next++
				if index[w] == unvisited {
					index[w], low[w] = counter, counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{w, 0})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			call = call[:len(call)-1]
			if len(call) > 0 {
				parent := call[len(call)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				var scc []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				sort.Ints(scc)
				sccs = append(sccs, scc)
			}
		}
	}
	sort.Slice(sccs, func(i, j int) bool { return sccs[i][0] < sccs[j][0] })
	return sccs
}

var deadstateAnalyzer = &Analyzer{
	Name: "deadstate",
	Doc: "member-local states unreachable from the start state\n\n" +
		"A state no path from the start reaches contributes nothing to any\n" +
		"computation of the network; the fsp builder rejects such members\n" +
		"outright. Reported at the state's first mention.",
	Run: func(p *Pass) {
		for _, pi := range p.Info.Procs {
			decl := pi.Decl
			for s, st := range decl.States {
				if !pi.Reachable[s] {
					p.Report(st.Pos,
						"state %s of member %s is unreachable from start state %s",
						st.Name, decl.Name, decl.Start)
				}
			}
		}
	},
}

var deadbranchAnalyzer = &Analyzer{
	Name: "deadbranch",
	Doc: "choice branches whose action is statically blocked\n\n" +
		"At a state with several outgoing transitions, a branch labeled with\n" +
		"an action that no partner (or more than one) owns can never be\n" +
		"taken: the choice silently collapses onto the remaining branches.\n" +
		"Reported per blocked branch, complementing unmatched's once-per-\n" +
		"action report.",
	Run: func(p *Pass) {
		for _, pi := range p.Info.Procs {
			decl := pi.Decl
			for s := range decl.States {
				if len(pi.Out[s]) < 2 {
					continue
				}
				for _, t := range pi.Out[s] {
					tr := &decl.Transitions[t]
					if !tr.Tau && p.Info.Blocked(tr.ActionKey()) {
						p.Report(tr.LabelPos,
							"branch %s %s %s of member %s can never be taken: action %q is statically blocked",
							tr.From, tr.Label, tr.To, decl.Name, tr.ActionKey())
					}
				}
			}
		}
	},
}

var sinkAnalyzer = &Analyzer{
	Name: "sink",
	Doc: "reachable leaf states inside otherwise cyclic members\n\n" +
		"Under the acyclic semantics (Section 3) a leaf is proper\n" +
		"termination. But a member that contains a cycle is written for the\n" +
		"cyclic semantics (Section 4), where computations revisit the start\n" +
		"infinitely often — a reachable leaf there is usually a missing\n" +
		"return transition, and it traps the whole network if entered.",
	Run: func(p *Pass) {
		for _, pi := range p.Info.Procs {
			if !pi.HasCycle {
				continue
			}
			decl := pi.Decl
			for s, st := range decl.States {
				if pi.Reachable[s] && len(pi.Out[s]) == 0 {
					p.Report(st.Pos,
						"state %s of cyclic member %s has no outgoing transitions: a reachable trap, not a termination leaf",
						st.Name, decl.Name)
				}
			}
		}
	},
}

var dupmemberAnalyzer = &Analyzer{
	Name: "dupmember",
	Doc: "members identical up to action relabeling: symmetry hint\n\n" +
		"Two members whose transition graphs coincide after a bijective\n" +
		"renaming of observable actions are interchangeable up to\n" +
		"relabeling — the symmetry a solver can exploit by collapsing\n" +
		"duplicate members. The check compares canonical skeletons (states\n" +
		"renumbered in canonical order, actions replaced by first-occurrence\n" +
		"placeholders), so it is sound but not complete: members whose\n" +
		"canonical orders diverge under relabeling are not matched.\n" +
		"Reported once per duplicate group, at the group's first member.",
	Run: func(p *Pass) {
		type group struct {
			first int
			rest  []int
		}
		groups := make(map[string]*group)
		var order []string
		for _, pi := range p.Info.Procs {
			skel := memberSkeleton(pi)
			g, ok := groups[skel]
			if !ok {
				groups[skel] = &group{first: pi.Index}
				order = append(order, skel)
				continue
			}
			g.rest = append(g.rest, pi.Index)
		}
		for _, skel := range order {
			g := groups[skel]
			if len(g.rest) == 0 {
				continue
			}
			first := p.Spec.Processes[g.first]
			names := make([]string, len(g.rest))
			for i, idx := range g.rest {
				names[i] = p.Spec.Processes[idx].Name
			}
			relabel := relabelMap(p.Info.Procs[g.first], p.Info.Procs[g.rest[0]])
			p.Report(first.Pos,
				"member %s is identical to %s up to relabeling (%s): symmetry candidate, interchangeable up to action renaming",
				first.Name, strings.Join(names, ", "), relabel)
		}
	},
}

// memberSkeleton renders a member's canonical transition structure with
// states renumbered in canonical emission order and observable actions
// replaced by placeholders numbered by first occurrence. Two members
// share a skeleton iff their canonical forms coincide after a bijective
// renaming of observable actions.
func memberSkeleton(pi *ProcInfo) string {
	var sb strings.Builder
	actions := make(map[string]int)
	for _, tr := range canonicalTransitions(pi) {
		label := tauKey
		if !tr.tau {
			id, ok := actions[tr.key]
			if !ok {
				id = len(actions)
				actions[tr.key] = id
			}
			label = fmt.Sprintf("a%d", id)
		}
		fmt.Fprintf(&sb, "%d %s %d\n", tr.from, label, tr.to)
	}
	return sb.String()
}

// skeletonTrans is one canonical transition with states renumbered.
type skeletonTrans struct {
	from, to int
	key      string
	tau      bool
}

// canonicalTransitions lists a member's deduplicated transitions in
// canonical emission order (the FormatSpec order), with states
// renumbered by canonical first emission.
func canonicalTransitions(pi *ProcInfo) []skeletonTrans {
	decl := pi.Decl
	if decl.Start == "" {
		return nil
	}
	// Per-state transitions sorted by (action key, target first-mention
	// index), deduplicated — mirroring fsplang's canonical form.
	sorted := make([][]*fsplang.TransDecl, len(decl.States))
	for s := range decl.States {
		ts := make([]*fsplang.TransDecl, 0, len(pi.Out[s]))
		for _, t := range pi.Out[s] {
			ts = append(ts, &decl.Transitions[t])
		}
		sort.SliceStable(ts, func(a, b int) bool {
			ka, kb := ts[a].ActionKey(), ts[b].ActionKey()
			if ka != kb {
				return ka < kb
			}
			return pi.StateIdx[ts[a].To] < pi.StateIdx[ts[b].To]
		})
		w := 0
		for i, t := range ts {
			if i == 0 || t.ActionKey() != ts[i-1].ActionKey() || t.To != ts[i-1].To {
				ts[w] = t
				w++
			}
		}
		sorted[s] = ts[:w]
	}
	// Canonical emission order, renumbering states as they first appear.
	renum := make([]int, len(decl.States))
	for i := range renum {
		renum[i] = -1
	}
	order := make([]int, 0, len(decl.States))
	mention := func(s int) {
		if renum[s] < 0 {
			renum[s] = len(order)
			order = append(order, s)
		}
	}
	mention(pi.StateIdx[decl.Start])
	for i := 0; i < len(order); i++ {
		for _, tr := range sorted[order[i]] {
			mention(pi.StateIdx[tr.To])
		}
	}
	for s := range decl.States {
		mention(s)
	}
	var out []skeletonTrans
	for _, s := range order {
		for _, tr := range sorted[s] {
			out = append(out, skeletonTrans{
				from: renum[s],
				to:   renum[pi.StateIdx[tr.To]],
				key:  tr.ActionKey(),
				tau:  tr.Tau,
			})
		}
	}
	return out
}

// relabelMap derives the action renaming that carries member a onto
// member b, formatted "x↦y, …" in a's first-occurrence order. Identity
// pairs are elided; if every pair is identity the members are equal
// verbatim.
func relabelMap(a, b *ProcInfo) string {
	ta, tb := canonicalTransitions(a), canonicalTransitions(b)
	var pairs []string
	seen := make(map[string]bool)
	for i := range ta {
		if ta[i].tau || seen[ta[i].key] {
			continue
		}
		seen[ta[i].key] = true
		if ta[i].key != tb[i].key {
			pairs = append(pairs, ta[i].key+"↦"+tb[i].key)
		}
	}
	if len(pairs) == 0 {
		return "identical verbatim"
	}
	return strings.Join(pairs, ", ")
}
