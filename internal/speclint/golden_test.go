package speclint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"fspnet/internal/fsplang"
)

var update = flag.Bool("update", false, "rewrite the speclint golden files")

// TestGoldenFixtures pins the full diagnostic output — including waived
// findings, flagged as such — for every .fsp fixture in the repo's
// testdata directory. The rendering is byte-stable, so any change to an
// analyzer's positions, messages, or ordering shows up as a golden diff.
func TestGoldenFixtures(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.fsp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no fixtures found")
	}
	sort.Strings(paths)
	for _, path := range paths {
		name := filepath.Base(path)
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			spec, err := fsplang.ParseSpec(string(data))
			if err != nil {
				t.Fatalf("ParseSpec: %v", err)
			}
			got := renderDiags(name, RunSpec(name, spec, nil))
			goldenPath := filepath.Join("testdata", strings.TrimSuffix(name, ".fsp")+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics changed (run with -update if intended)\ngot:\n%s\nwant:\n%s", got, want)
			}
		})
	}
}

// renderDiags is the golden rendering: one line per diagnostic, waived
// findings marked, or a single "clean" line for an empty result so the
// golden file is never empty (an accidentally empty file would pass
// vacuously).
func renderDiags(name string, diags []Diagnostic) string {
	if len(diags) == 0 {
		return fmt.Sprintf("# %s: clean\n", name)
	}
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString(d.String())
		if d.Waived {
			sb.WriteString(" [waived]")
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestGoldenNonWaivedClean asserts the repo corpus carries no live
// findings: everything speclint reports on testdata is explicitly
// waived. This is the same bar the CI lint-specs step enforces.
func TestGoldenNonWaivedClean(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.fsp"))
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		diags, err := Run(filepath.Base(path), string(data))
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("non-waived finding in corpus: %s", d)
		}
	}
}
