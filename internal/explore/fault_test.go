// Fault-injection sweeps for the governed engine: cancellation, deadline
// expiry, and synthetic worker panics injected at every BFS level and
// pass boundary must always surface as a well-formed *guard.LimitErr —
// never a hang, a deadlocked barrier, or a partial verdict the
// uncancelled run contradicts. Run under -race via `make test-fault`
// (go test -race -run FaultInject ./...).
package explore_test

import (
	"errors"
	"math/rand"
	"testing"

	"fspnet/internal/bench"
	"fspnet/internal/explore"
	"fspnet/internal/fsptest"
	"fspnet/internal/guard"
	"fspnet/internal/guard/faultinject"
	"fspnet/internal/network"
)

// faultOpts returns engine options governed by the given hook, with
// enough workers that barrier recovery is exercised concurrently.
func faultOpts(h guard.Hook) explore.Options {
	return explore.Options{Workers: 4, Guard: guard.New(guard.Config{Hook: h})}
}

// faultOptsTuned is faultOpts with explicit symmetry tuning, for sweeps
// that must reach the exhaustive passes the witness probes would skip.
func faultOptsTuned(h guard.Hook, tune explore.Tuning) explore.Options {
	o := faultOpts(h)
	o.Tune = tune
	return o
}

// acyclicFixture is an 8-process tree network; the seed is fixed so every
// sweep sees the same joint graph.
func acyclicFixture() *network.Network {
	r := rand.New(rand.NewSource(42))
	return fsptest.TreeNetwork(r, fsptest.NetConfig{Procs: 8, ActionsPerEdge: 2, MaxStates: 4, TauProb: 0.1})
}

func cyclicFixture(t *testing.T) *network.Network {
	t.Helper()
	n, err := bench.Philosophers(4)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestFaultInjectAcyclicCancelSweep cancels the acyclic analysis at every
// BFS level and checks the partial verdict: stopped exactly at the
// injected barrier, state count monotone in the cancellation level, and
// no decided bound contradicting the uncancelled run.
func TestFaultInjectAcyclicCancelSweep(t *testing.T) {
	n := acyclicFixture()
	full, err := explore.AnalyzeAcyclic(n, 0, explore.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	prevStates := -1
	for lvl := 0; lvl <= full.Stats.Depth+1; lvl++ {
		res, err := explore.AnalyzeAcyclic(n, 0, faultOpts(faultinject.CancelAt("bfs", lvl)))
		if err == nil {
			// The run completed before the injected barrier was polled;
			// the verdict must then be the full one.
			if res.Su != full.Su || res.Sc != full.Sc {
				t.Fatalf("level %d: completed run disagrees: got (%v,%v), want (%v,%v)",
					lvl, res.Su, res.Sc, full.Su, full.Sc)
			}
			continue
		}
		var le *guard.LimitErr
		if !errors.As(err, &le) {
			t.Fatalf("level %d: error %v is not a *guard.LimitErr", lvl, err)
		}
		if !errors.Is(err, guard.ErrCanceled) {
			t.Fatalf("level %d: reason %v, want ErrCanceled", lvl, err)
		}
		if le.Partial.Pass != "bfs" || le.Partial.Depth != lvl {
			t.Errorf("level %d: partial reports pass=%s depth=%d", lvl, le.Partial.Pass, le.Partial.Depth)
		}
		if le.Partial.States < prevStates {
			t.Errorf("level %d: states %d < states %d at the previous level — not monotone",
				lvl, le.Partial.States, prevStates)
		}
		prevStates = le.Partial.States
		if le.Partial.Su.Contradicts(full.Su) {
			t.Errorf("level %d: partial S_u=%s contradicts full %v", lvl, le.Partial.Su, full.Su)
		}
		if le.Partial.Sc.Contradicts(full.Sc) {
			t.Errorf("level %d: partial S_c=%s contradicts full %v", lvl, le.Partial.Sc, full.Sc)
		}
	}
}

// TestFaultInjectCyclicCancelSweep is the cancel sweep under the Section
// 4 semantics, which runs the BFS to completion plus the sequential
// post-passes. The witness probes are tuned off so the sweep actually
// reaches the BFS barriers (with probes on, the ring is decided before
// any barrier and every injected run completes with the full verdict).
func TestFaultInjectCyclicCancelSweep(t *testing.T) {
	n := cyclicFixture(t)
	noProbe := explore.Tuning{NoProbe: true}
	full, err := explore.AnalyzeCyclic(n, 0, explore.Options{Workers: 4, Tune: noProbe})
	if err != nil {
		t.Fatal(err)
	}
	prevStates := -1
	for lvl := 0; lvl <= full.Stats.Depth+1; lvl++ {
		res, err := explore.AnalyzeCyclic(n, 0, faultOptsTuned(faultinject.CancelAt("bfs", lvl), noProbe))
		if err == nil {
			if res.Su != full.Su || res.Sc != full.Sc {
				t.Fatalf("level %d: completed run disagrees: got (%v,%v), want (%v,%v)",
					lvl, res.Su, res.Sc, full.Su, full.Sc)
			}
			continue
		}
		var le *guard.LimitErr
		if !errors.As(err, &le) {
			t.Fatalf("level %d: error %v is not a *guard.LimitErr", lvl, err)
		}
		if !errors.Is(err, guard.ErrCanceled) {
			t.Fatalf("level %d: reason %v, want ErrCanceled", lvl, err)
		}
		if le.Partial.Pass != "bfs" || le.Partial.Depth != lvl {
			t.Errorf("level %d: partial reports pass=%s depth=%d", lvl, le.Partial.Pass, le.Partial.Depth)
		}
		if le.Partial.States < prevStates {
			t.Errorf("level %d: states %d < states %d at the previous level — not monotone",
				lvl, le.Partial.States, prevStates)
		}
		prevStates = le.Partial.States
		if le.Partial.Su.Contradicts(full.Su) {
			t.Errorf("level %d: partial S_u=%s contradicts full %v", lvl, le.Partial.Su, full.Su)
		}
		if le.Partial.Sc.Contradicts(full.Sc) {
			t.Errorf("level %d: partial S_c=%s contradicts full %v", lvl, le.Partial.Sc, full.Sc)
		}
	}
}

// TestFaultInjectCyclicPassBoundaries cancels at the boundary of each
// cyclic post-pass, in both the symmetry-reduced shape (sym-adj builds
// the quotient adjacency, the cycle passes run on the j-tracking cover,
// canon sums the collapsed states) and the unreduced legacy shape. The
// handshake-cycle pass always runs when S_c is wanted, so that
// injection must fire; a τ-cycle injection may be skipped (the pass is
// elided once a blocking witness decides ¬S_u), in which case the run
// must complete with the full verdict.
func TestFaultInjectCyclicPassBoundaries(t *testing.T) {
	n := cyclicFixture(t)
	for _, tc := range []struct {
		name   string
		tune   explore.Tuning
		passes []string
	}{
		{"sym", explore.Tuning{NoProbe: true}, []string{"sym-adj", "tau-cycle", "handshake-cycle", "canon"}},
		{"legacy", explore.Tuning{NoProbe: true, NoSymmetry: true}, []string{"tau-cycle", "handshake-cycle"}},
	} {
		full, err := explore.AnalyzeCyclic(n, 0, explore.Options{Workers: 4, Tune: tc.tune})
		if err != nil {
			t.Fatal(err)
		}
		for _, pass := range tc.passes {
			res, err := explore.AnalyzeCyclic(n, 0, faultOptsTuned(faultinject.CancelAt(pass, 0), tc.tune))
			if err == nil {
				if pass == "handshake-cycle" || pass == "sym-adj" || pass == "canon" {
					t.Fatalf("%s/%s injection never fired", tc.name, pass)
				}
				if res.Su != full.Su || res.Sc != full.Sc {
					t.Fatalf("%s/%s: completed run disagrees with full run", tc.name, pass)
				}
				continue
			}
			var le *guard.LimitErr
			if !errors.As(err, &le) || !errors.Is(err, guard.ErrCanceled) {
				t.Fatalf("%s/%s: error %v, want LimitErr wrapping ErrCanceled", tc.name, pass, err)
			}
			if le.Partial.Pass != pass {
				t.Errorf("%s/%s: partial reports pass=%s", tc.name, pass, le.Partial.Pass)
			}
			if le.Partial.Su.Contradicts(full.Su) || le.Partial.Sc.Contradicts(full.Sc) {
				t.Errorf("%s/%s: partial (%s,%s) contradicts full (%v,%v)",
					tc.name, pass, le.Partial.Su, le.Partial.Sc, full.Su, full.Sc)
			}
			if pass == "handshake-cycle" && !le.Partial.Su.Known() {
				t.Errorf("%s: handshake-cycle partial must carry the already-decided S_u", tc.name)
			}
			if pass == "canon" && (!le.Partial.Su.Known() || !le.Partial.Sc.Known()) {
				t.Errorf("%s: canon partial must carry the fully decided verdict", tc.name)
			}
		}
	}
}

// TestFaultInjectProbeCancel cancels inside the witness probes (the
// default cyclic fast path): the partial must name the probe pass and
// never contradict the full verdict.
func TestFaultInjectProbeCancel(t *testing.T) {
	n := cyclicFixture(t)
	full, err := explore.AnalyzeCyclic(n, 0, explore.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, err = explore.AnalyzeCyclic(n, 0, faultOpts(faultinject.CancelAt("probe", 0)))
	var le *guard.LimitErr
	if !errors.As(err, &le) || !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("error %v, want LimitErr wrapping ErrCanceled", err)
	}
	if le.Partial.Pass != "probe" {
		t.Errorf("partial reports pass=%s, want probe", le.Partial.Pass)
	}
	if le.Partial.Su.Contradicts(full.Su) || le.Partial.Sc.Contradicts(full.Sc) {
		t.Errorf("probe partial (%s,%s) contradicts full (%v,%v)",
			le.Partial.Su, le.Partial.Sc, full.Su, full.Sc)
	}
}

// TestFaultInjectPanicSweep makes the workers panic at every BFS level;
// the barrier must recover (no hang, no deadlock), discard the panicked
// level, and report the same barrier-accurate partial state count a
// cancellation at that level reports.
func TestFaultInjectPanicSweep(t *testing.T) {
	n := acyclicFixture()
	full, err := explore.AnalyzeAcyclic(n, 0, explore.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for lvl := 0; lvl <= full.Stats.Depth+1; lvl++ {
		_, cancelErr := explore.AnalyzeAcyclic(n, 0, faultOpts(faultinject.CancelAt("bfs", lvl)))
		_, panicErr := explore.AnalyzeAcyclic(n, 0, faultOpts(faultinject.PanicAt("bfs", lvl)))
		if cancelErr == nil {
			// Past the last polled barrier neither hook fires.
			if panicErr != nil {
				t.Fatalf("level %d: cancel completed but panic run failed: %v", lvl, panicErr)
			}
			continue
		}
		var le *guard.LimitErr
		if !errors.As(panicErr, &le) {
			t.Fatalf("level %d: panic error %v is not a *guard.LimitErr", lvl, panicErr)
		}
		if !errors.Is(panicErr, guard.ErrPanic) {
			t.Fatalf("level %d: reason %v, want ErrPanic", lvl, panicErr)
		}
		var cle *guard.LimitErr
		if !errors.As(cancelErr, &cle) {
			t.Fatalf("level %d: cancel error %v is not a *guard.LimitErr", lvl, cancelErr)
		}
		if le.Partial.States != cle.Partial.States || le.Partial.Depth != cle.Partial.Depth {
			t.Errorf("level %d: panic partial (states=%d depth=%d) differs from cancel partial (states=%d depth=%d)",
				lvl, le.Partial.States, le.Partial.Depth, cle.Partial.States, cle.Partial.Depth)
		}
	}
}

// TestFaultInjectDeadline spot-checks that an injected deadline surfaces
// as ErrDeadline with the same partial shape as a cancellation.
func TestFaultInjectDeadline(t *testing.T) {
	n := acyclicFixture()
	_, err := explore.AnalyzeAcyclic(n, 0, faultOpts(faultinject.DeadlineAt("bfs", 1)))
	var le *guard.LimitErr
	if !errors.As(err, &le) || !errors.Is(err, guard.ErrDeadline) {
		t.Fatalf("error %v, want LimitErr wrapping ErrDeadline", err)
	}
	if le.Partial.Pass != "bfs" || le.Partial.Depth != 1 {
		t.Errorf("partial reports pass=%s depth=%d, want bfs depth=1", le.Partial.Pass, le.Partial.Depth)
	}
}

// TestFaultInjectCyclicPanic exercises barrier recovery on the cyclic
// path too (probes off, so the BFS actually runs).
func TestFaultInjectCyclicPanic(t *testing.T) {
	n := cyclicFixture(t)
	_, err := explore.AnalyzeCyclic(n, 0,
		faultOptsTuned(faultinject.PanicAt("bfs", 0), explore.Tuning{NoProbe: true}))
	var le *guard.LimitErr
	if !errors.As(err, &le) || !errors.Is(err, guard.ErrPanic) {
		t.Fatalf("error %v, want LimitErr wrapping ErrPanic", err)
	}
	if le.Partial.Depth != 0 || le.Partial.States != 1 {
		t.Errorf("partial reports depth=%d states=%d, want the start barrier (depth=0 states=1)",
			le.Partial.Depth, le.Partial.States)
	}
}
