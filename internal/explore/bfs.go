package explore

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"

	"fspnet/internal/guard"
	"fspnet/internal/symred"
)

// numShards is the visited-set sharding factor; a power of two so the
// hash maps to a shard with a mask.
const numShards = 64

// shard is one slice of the visited set. ids maps a packed vector key to
// the per-shard id; the arena holds the only copy of each vector, id i at
// vecs[i*m : (i+1)*m]. During the parallel BFS workers only intern (under
// mu); the arena is read exclusively by the sequential post-passes, so no
// reader can observe an append-in-progress slice header.
type shard struct {
	mu   sync.Mutex
	ids  map[string]uint32
	vecs []uint32
}

// interner is the sharded visited set of joint state vectors.
type interner struct {
	m      int
	shards [numShards]shard
}

func newInterner(m int) *interner {
	in := &interner{m: m}
	for i := range in.shards {
		in.shards[i].ids = make(map[string]uint32)
	}
	return in
}

// keyBytes packs vec into kb (little-endian uint32s) and returns kb.
func keyBytes(kb []byte, vec []uint32) []byte {
	for i, v := range vec {
		binary.LittleEndian.PutUint32(kb[i*4:], v)
	}
	return kb
}

// FNV-1a; a fixed hash keeps shard assignment — and with it the dense ids
// the post-passes derive — identical across runs.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func shardOf(kb []byte) int {
	h := fnvOffset
	for _, b := range kb {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return int(h & (numShards - 1))
}

// intern records vec (with key kb) if unseen and reports whether it was
// fresh. Exactly one caller wins a given key, so per-level fresh counts
// and next-frontier contents are deterministic set unions.
func (in *interner) intern(kb []byte, vec []uint32) bool {
	sh := &in.shards[shardOf(kb)]
	sh.mu.Lock()
	if _, ok := sh.ids[string(kb)]; ok {
		sh.mu.Unlock()
		return false
	}
	sh.ids[string(kb)] = uint32(len(sh.vecs) / in.m)
	sh.vecs = append(sh.vecs, vec...)
	sh.mu.Unlock()
	return true
}

// index gives the post-passes dense global ids over the interned set:
// shard s owns the contiguous range [bases[s], bases[s+1]). Build and use
// only after the BFS has finished; it reads the arenas unlocked.
type index struct {
	in    *interner
	bases [numShards + 1]int
}

func (in *interner) buildIndex() *index {
	ix := &index{in: in}
	for i := 0; i < numShards; i++ {
		ix.bases[i+1] = ix.bases[i] + len(in.shards[i].ids)
	}
	return ix
}

func (ix *index) size() int { return ix.bases[numShards] }

// vec returns the joint vector of a dense id. The slice aliases the
// arena; callers must not modify it.
func (ix *index) vec(gid int) []uint32 {
	lo, hi := 0, numShards
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if ix.bases[mid] <= gid {
			lo = mid
		} else {
			hi = mid
		}
	}
	local := gid - ix.bases[lo]
	m := ix.in.m
	return ix.in.shards[lo].vecs[local*m : (local+1)*m]
}

// gid returns the dense id of an interned vector key.
func (ix *index) gid(kb []byte) int {
	s := shardOf(kb)
	return ix.bases[s] + int(ix.in.shards[s].ids[string(kb)])
}

// bfsFlags are the monotone verdict bits merged at level barriers.
type bfsFlags struct {
	stuckLeaf    bool // acyclic: some stuck vector has P at a leaf
	stuckNonLeaf bool // acyclic: some stuck vector has P off-leaf
	blocked      bool // cyclic: some vector has no joint move at all
}

type workerOut struct {
	next      []uint32
	flags     bfsFlags
	fresh     int
	moves     int64
	orbitHits int64
	panicked  error
}

// bfs runs the level-synchronized parallel exploration from the joint
// start vector. Frontiers carry the vectors themselves (flat, m words per
// entry), so workers never read the shared arenas. done is consulted only
// at level barriers, as are the MaxStates budget and the governor's
// cancellation/deadline checks; together with the monotone flags this
// makes the returned flags and Stats independent of Workers — including
// on every error path, where flags and Stats are those of the last
// completed barrier.
//
// Worker panics are recovered inside the worker goroutine itself (after
// wg.Done is already deferred, so the barrier can never deadlock) and
// surface at the barrier as a guard.ErrPanic reason; the merge of a
// panicked level is discarded because a half-expanded level would make
// flags and fresh counts depend on scheduling.
func (mc *machine) bfs(cyclic bool, o Options, sy *symState, done func(bfsFlags) bool) (*interner, bfsFlags, Stats, error) {
	in := newInterner(mc.m)
	limit := maxStates(o)
	g := o.Guard
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := mc.startVec()
	if sy != nil {
		// An automorphism fixes every component's start state, so the
		// joint start is its own orbit representative; canonicalize anyway
		// so the invariant "everything interned is canonical" has a single
		// enforcement point.
		canon := make([]uint32, mc.m)
		sy.grp.NewCanonizer().Canon(start, canon)
		start = canon
	}
	in.intern(keyBytes(make([]byte, 4*mc.m), start), start)
	frontier := append([]uint32(nil), start...)
	var flags bfsFlags
	stats := Stats{States: 1}
	for len(frontier) > 0 {
		if done(flags) {
			break
		}
		if err := g.Poll("bfs", stats.Depth); err != nil {
			return in, flags, stats, fmt.Errorf("explore: stopped at BFS level %d: %w", stats.Depth, err)
		}
		if stats.States > limit {
			return in, flags, stats, fmt.Errorf("explore: %d joint states interned: %w", stats.States, ErrBudget)
		}
		nvecs := len(frontier) / mc.m
		w := workers
		if w > nvecs {
			w = nvecs
		}
		depth := stats.Depth
		outs := make([]workerOut, w)
		var wg sync.WaitGroup
		for wi := 0; wi < w; wi++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						outs[wi].panicked = fmt.Errorf("%w: worker %d at BFS level %d: %v",
							guard.ErrPanic, wi, depth, r)
					}
				}()
				if g.ShouldPanic("bfs", depth) {
					panic("faultinject: synthetic worker panic")
				}
				lo, hi := wi*nvecs/w, (wi+1)*nvecs/w
				outs[wi] = mc.expandChunk(cyclic, in, sy, frontier, lo, hi)
			}(wi)
		}
		wg.Wait()
		for i := range outs {
			if outs[i].panicked != nil {
				return in, flags, stats, fmt.Errorf("explore: %w", outs[i].panicked)
			}
		}
		total := 0
		for i := range outs {
			total += len(outs[i].next)
		}
		next := make([]uint32, 0, total)
		fresh := 0
		for i := range outs {
			next = append(next, outs[i].next...)
			flags.stuckLeaf = flags.stuckLeaf || outs[i].flags.stuckLeaf
			flags.stuckNonLeaf = flags.stuckNonLeaf || outs[i].flags.stuckNonLeaf
			flags.blocked = flags.blocked || outs[i].flags.blocked
			fresh += outs[i].fresh
			stats.Moves += outs[i].moves
			stats.OrbitHits += outs[i].orbitHits
		}
		stats.States += fresh
		frontier = next
		stats.Depth++
		if err := g.Charge(fresh); err != nil {
			return in, flags, stats, fmt.Errorf("explore: %d joint states interned: %w", stats.States, err)
		}
	}
	return in, flags, stats, nil
}

// expandChunk expands frontier vectors [lo, hi) into a worker-local next
// frontier, interning successors and classifying moveless vectors. With
// symmetry active, successors are canonicalized before interning —
// frontiers then carry orbit representatives only — and a stuck
// representative is classified once per position the distinguished
// process's role can occupy in it (every such raw stuck state is
// genuinely reachable: automorphisms fix the start vector).
func (mc *machine) expandChunk(cyclic bool, in *interner, sy *symState, frontier []uint32, lo, hi int) workerOut {
	var out workerOut
	scratch := make([]uint32, mc.m)
	kb := make([]byte, 4*mc.m)
	var cz *symred.Canonizer
	var canon []uint32
	if sy != nil {
		cz = sy.grp.NewCanonizer()
		canon = make([]uint32, mc.m)
	}
	for v := lo; v < hi; v++ {
		vec := frontier[v*mc.m : (v+1)*mc.m]
		moved := mc.expand(vec, scratch, func(succ []uint32, kind int) bool {
			out.moves++
			if cz != nil {
				if cz.Canon(succ, canon) {
					out.orbitHits++
				}
				succ = canon
			}
			if in.intern(keyBytes(kb, succ), succ) {
				out.fresh++
				out.next = append(out.next, succ...)
			}
			return true
		})
		if !moved {
			// Under Section 4 P is τ-free, so "no joint move" is exactly
			// the blocking condition: Q stable (no context τ, no
			// context-internal handshake) and the offered action sets
			// disjoint (no enabled P-handshake).
			switch {
			case cyclic:
				out.flags.blocked = true
			case sy != nil:
				for _, j := range sy.distOrbit {
					if sy.procLeaf[j][vec[j]] {
						out.flags.stuckLeaf = true
					} else {
						out.flags.stuckNonLeaf = true
					}
				}
			case mc.distLeaf[vec[mc.dist]]:
				out.flags.stuckLeaf = true
			default:
				out.flags.stuckNonLeaf = true
			}
		}
	}
	return out
}
