package explore_test

import (
	"testing"

	"fspnet/internal/bench"
	"fspnet/internal/explore"
	"fspnet/internal/fsp"
	"fspnet/internal/network"
)

func philosophersNet(t *testing.T, m int) *network.Network {
	t.Helper()
	n, err := bench.Philosophers(m)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestSymmetryDifferentialPhilosophers pins the three cyclic engine
// configurations against each other on the ring family: the default
// (probes + quotient), the quotient alone, and the unreduced oracle
// must agree exactly, and the quotient must actually collapse states.
func TestSymmetryDifferentialPhilosophers(t *testing.T) {
	for _, m := range []int{3, 4, 6} {
		n := philosophersNet(t, m)
		oracle, err := explore.AnalyzeCyclic(n, 0, explore.Options{
			Tune: explore.Tuning{NoSymmetry: true, NoProbe: true}})
		if err != nil {
			t.Fatal(err)
		}
		sym, err := explore.AnalyzeCyclic(n, 0, explore.Options{
			Tune: explore.Tuning{NoProbe: true}})
		if err != nil {
			t.Fatal(err)
		}
		def, err := explore.AnalyzeCyclic(n, 0, explore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if sym.Su != oracle.Su || sym.Sc != oracle.Sc {
			t.Fatalf("m=%d: quotient (Su=%v,Sc=%v) vs oracle (Su=%v,Sc=%v)",
				m, sym.Su, sym.Sc, oracle.Su, oracle.Sc)
		}
		if def.Su != oracle.Su || def.Sc != oracle.Sc {
			t.Fatalf("m=%d: default (Su=%v,Sc=%v) vs oracle (Su=%v,Sc=%v)",
				m, def.Su, def.Sc, oracle.Su, oracle.Sc)
		}
		if sym.Stats.GroupOrder != m {
			t.Errorf("m=%d: GroupOrder=%d, want %d", m, sym.Stats.GroupOrder, m)
		}
		if sym.Stats.OrbitHits == 0 {
			t.Errorf("m=%d: quotient run reports zero orbit hits", m)
		}
		if sym.Stats.States >= oracle.Stats.States {
			t.Errorf("m=%d: quotient interned %d states, oracle %d — no reduction",
				m, sym.Stats.States, oracle.Stats.States)
		}
		if sym.Stats.States+int(sym.Stats.SymStates) != oracle.Stats.States {
			t.Errorf("m=%d: representatives %d + collapsed %d ≠ raw %d",
				m, sym.Stats.States, sym.Stats.SymStates, oracle.Stats.States)
		}
	}
}

// TestSymmetryDeterministicAcrossWorkers requires bit-identical results
// and stats from the quotient engine whatever the worker count.
func TestSymmetryDeterministicAcrossWorkers(t *testing.T) {
	n := philosophersNet(t, 6)
	var base explore.Result
	for i, w := range []int{1, 2, 3, 8} {
		res, err := explore.AnalyzeCyclic(n, 0, explore.Options{
			Workers: w, Tune: explore.Tuning{NoProbe: true}})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base = res
			continue
		}
		if res != base {
			t.Fatalf("workers=%d: %+v differs from workers=1: %+v", w, res, base)
		}
	}
}

// TestProbeDecidesPhilosophersWithoutExploration pins the philosophers20
// acceptance path: the witness probes must decide both cyclic
// predicates from a handful of raw states, never touching the joint
// space (MaxStates is set far below the reachable count to prove it).
func TestProbeDecidesPhilosophersWithoutExploration(t *testing.T) {
	for _, m := range []int{4, 10, 20} {
		n := philosophersNet(t, m)
		res, err := explore.AnalyzeCyclic(n, 0, explore.Options{MaxStates: 4})
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if res.Su || !res.Sc {
			t.Fatalf("m=%d: got (Su=%v, Sc=%v), want (false, true)", m, res.Su, res.Sc)
		}
		if res.Stats.States != 0 {
			t.Errorf("m=%d: probes decided, yet %d joint states were interned", m, res.Stats.States)
		}
		if res.Stats.ProbeStates == 0 || res.Stats.ProbeStates > 2*4096 {
			t.Errorf("m=%d: ProbeStates=%d out of range", m, res.Stats.ProbeStates)
		}
	}
}

// symmetricFork builds an acyclic network where the distinguished
// process itself sits in a nontrivial orbit: a hub that takes either
// leaf's handshake once, with two interchangeable leaves. Analyzed from
// leaf 1, the two stuck outcomes (leaf 1 consumed vs leaf 2 consumed)
// collapse to one representative, and the stuck classification must
// scan the orbit of the distinguished position to recover both flags.
func symmetricFork(t *testing.T) *network.Network {
	t.Helper()
	bh := fsp.NewBuilder("Hub")
	h0, h1 := bh.State("h0"), bh.State("h1")
	bh.Add(h0, "a1", h1)
	bh.Add(h0, "a2", h1)
	var procs []*fsp.FSP
	procs = append(procs, bh.MustBuild())
	for i := 1; i <= 2; i++ {
		bl := fsp.NewBuilder("Leaf")
		l0, l1 := bl.State("l0"), bl.State("l1")
		bl.Add(l0, fsp.Action("a"+string(rune('0'+i))), l1)
		procs = append(procs, bl.MustBuild())
	}
	n, err := network.New(procs...)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSymmetryAcyclicOrbitClassification(t *testing.T) {
	n := symmetricFork(t)
	oracle, err := explore.AnalyzeAcyclic(n, 1, explore.Options{
		Tune: explore.Tuning{NoSymmetry: true}})
	if err != nil {
		t.Fatal(err)
	}
	sym, err := explore.AnalyzeAcyclic(n, 1, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// From leaf 1's view: if the hub serves leaf 2, leaf 1 is stuck off
	// its leaf state (¬S_u); if it serves leaf 1, it ends on the leaf
	// (S_c). The quotient sees one stuck representative for both.
	if oracle.Su || !oracle.Sc {
		t.Fatalf("oracle got (Su=%v, Sc=%v), want (false, true)", oracle.Su, oracle.Sc)
	}
	if sym.Su != oracle.Su || sym.Sc != oracle.Sc {
		t.Fatalf("quotient (Su=%v,Sc=%v) disagrees with oracle (Su=%v,Sc=%v)",
			sym.Su, sym.Sc, oracle.Su, oracle.Sc)
	}
	if sym.Stats.GroupOrder < 2 {
		t.Fatalf("GroupOrder=%d, want the leaf swap discovered", sym.Stats.GroupOrder)
	}
	if sym.Stats.States >= oracle.Stats.States {
		t.Errorf("no state reduction: %d vs %d", sym.Stats.States, oracle.Stats.States)
	}
}
