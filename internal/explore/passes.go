package explore

import (
	"fmt"
	"sort"

	"fspnet/internal/guard"
)

// pollStride amortizes governor polls inside the sequential passes: one
// Poll per stride of visited nodes, with the node count as the level so
// fault injection can target a specific depth of a pass.
const pollStride = 1024

// This file holds the sequential passes that run outside the parallel
// BFS: the acyclicity shape check (which may walk the context product on
// its own, before the joint exploration) and the two cyclic post-passes
// over the fully interned reachable joint graph. Successor sets are
// recomputed on demand via expand — the engine stores no edges.

// checkAcyclicShape enforces the Section 3 domain: the distinguished
// process and its composed context must both be acyclic. The context is
// never composed; instead, all members acyclic ⇒ the composition is
// acyclic (a composite cycle would project to a nonempty closed walk in
// some member), and otherwise a gray-path DFS over the context product
// graph looks for a composite cycle directly. That graph's moves mirror
// the composed context exactly: member τ, context-internal handshakes,
// and solo firing of P-shared actions by their single context owner
// (those stay visible in ‖, hence move the context on their own).
func (mc *machine) checkAcyclicShape(budget int, g *guard.G) error {
	if !mc.procs[mc.dist].IsAcyclic() {
		return fmt.Errorf("explore: %s is cyclic: %w", mc.procs[mc.dist].Name(), ErrShape)
	}
	all := true
	for j, p := range mc.procs {
		if j != mc.dist && !p.IsAcyclic() {
			all = false
			break
		}
	}
	if all {
		return nil
	}
	if err := g.Poll("shape", 0); err != nil {
		return fmt.Errorf("explore: shape check: %w", err)
	}
	cyclic, err := mc.ctxHasCycle(budget, g)
	if err != nil {
		return err
	}
	if cyclic {
		return fmt.Errorf("explore: context of %s is cyclic: %w", mc.procs[mc.dist].Name(), ErrShape)
	}
	return nil
}

// ctxExpand enumerates the context product moves at vec (the dist
// component is carried along frozen): context-member τ, context-internal
// handshakes, and solo moves on P-shared visible actions.
func (mc *machine) ctxExpand(vec, scratch []uint32, fn func(succ []uint32) bool) {
	mc.ctxExpandLabeled(vec, scratch, func(succ []uint32, aid int32) bool {
		return fn(succ)
	})
}

// ctxExpandLabeled is ctxExpand with the composed context's labeling:
// moves that are τ of the context (member τ, context-internal
// handshakes) report aid −1, and solo moves on P-shared actions — which
// stay visible in ‖ — report the action id.
func (mc *machine) ctxExpandLabeled(vec, scratch []uint32, fn func(succ []uint32, aid int32) bool) {
	for j := 0; j < mc.m; j++ {
		if j == mc.dist {
			continue
		}
		for _, to := range mc.tau[j][vec[j]] {
			copy(scratch, vec)
			scratch[j] = to
			if !fn(scratch, -1) {
				return
			}
		}
	}
	for j := 0; j < mc.m; j++ {
		if j == mc.dist {
			continue
		}
		ts := mc.vis[j][vec[j]]
		for x := 0; x < len(ts); {
			a := ts[x].aid
			xe := x + 1
			for xe < len(ts) && ts[xe].aid == a {
				xe++
			}
			other := int(mc.ownerA[a])
			if other == j {
				other = int(mc.ownerB[a])
			}
			switch {
			case other == mc.dist:
				for xi := x; xi < xe; xi++ {
					copy(scratch, vec)
					scratch[j] = ts[xi].to
					if !fn(scratch, int32(a)) {
						return
					}
				}
			case int(mc.ownerA[a]) == j:
				ps := mc.vis[other][vec[other]]
				lo := sort.Search(len(ps), func(i int) bool { return ps[i].aid >= a })
				for pi := lo; pi < len(ps) && ps[pi].aid == a; pi++ {
					for xi := x; xi < xe; xi++ {
						copy(scratch, vec)
						scratch[j] = ts[xi].to
						scratch[other] = ps[pi].to
						if !fn(scratch, -1) {
							return
						}
					}
				}
			}
			x = xe
		}
	}
}

// ctxHasCycle runs an iterative gray-path DFS over the context product
// graph from the start vector, reporting whether any composite cycle is
// reachable. budget bounds the visited configurations; g is polled every
// pollStride of them.
func (mc *machine) ctxHasCycle(budget int, g *guard.G) (bool, error) {
	const gray, black = 1, 2
	color := make(map[string]uint8)
	scratch := make([]uint32, mc.m)
	kb := make([]byte, 4*mc.m)
	succs := func(vec []uint32) []string {
		var out []string
		mc.ctxExpand(vec, scratch, func(succ []uint32) bool {
			out = append(out, string(keyBytes(kb, succ)))
			return true
		})
		return out
	}
	unpack := func(key string) []uint32 {
		vec := make([]uint32, mc.m)
		for i := range vec {
			vec[i] = uint32(key[4*i]) | uint32(key[4*i+1])<<8 |
				uint32(key[4*i+2])<<16 | uint32(key[4*i+3])<<24
		}
		return vec
	}
	type frame struct {
		key  string
		succ []string
		next int
	}
	start := mc.startVec()
	startKey := string(keyBytes(kb, start))
	color[startKey] = gray
	stack := []frame{{startKey, succs(start), 0}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next >= len(f.succ) {
			color[f.key] = black
			stack = stack[:len(stack)-1]
			continue
		}
		key := f.succ[f.next]
		f.next++
		switch color[key] {
		case gray:
			return true, nil
		case black:
		default:
			if len(color) >= budget {
				return false, fmt.Errorf("explore: shape check: %d context states: %w", len(color), ErrBudget)
			}
			if len(color)%pollStride == 0 {
				if err := g.Poll("shape", len(color)/pollStride); err != nil {
					return false, fmt.Errorf("explore: shape check: %w", err)
				}
			}
			color[key] = gray
			stack = append(stack, frame{key, succs(unpack(key)), 0})
		}
	}
	return false, nil
}

// ctxTauCycle reports whether the reachable joint graph has a cycle using
// only context moves (member τ and context-internal handshakes — the
// edges that are τ of the composed context and leave P in place). Such a
// cycle is exactly a reachable silent divergence of the context: in the
// folded composition it puts the ⊥ leaf below a reachable state, making
// the pair (p, ⊥) blocking. Call only after a complete BFS. g is polled
// at the pass boundary and every pollStride colored vectors.
func (mc *machine) ctxTauCycle(ix *index, g *guard.G) (bool, error) {
	if err := g.Poll("tau-cycle", 0); err != nil {
		return false, fmt.Errorf("explore: τ-cycle pass: %w", err)
	}
	const gray, black = 1, 2
	n := ix.size()
	color := make([]uint8, n)
	colored := 0
	scratch := make([]uint32, mc.m)
	kb := make([]byte, 4*mc.m)
	succs := func(gid int) []int {
		var out []int
		mc.expand(ix.vec(gid), scratch, func(succ []uint32, kind int) bool {
			if kind == moveCtxTau || kind == moveCtxHandshake {
				out = append(out, ix.gid(keyBytes(kb, succ)))
			}
			return true
		})
		return out
	}
	type frame struct {
		gid  int
		succ []int
		next int
	}
	var stack []frame
	for root := 0; root < n; root++ {
		if color[root] != 0 {
			continue
		}
		color[root] = gray
		colored++
		stack = append(stack[:0], frame{root, succs(root), 0})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next >= len(f.succ) {
				color[f.gid] = black
				stack = stack[:len(stack)-1]
				continue
			}
			s := f.succ[f.next]
			f.next++
			switch color[s] {
			case gray:
				return true, nil
			case black:
			default:
				color[s] = gray
				colored++
				if colored%pollStride == 0 {
					if err := g.Poll("tau-cycle", colored/pollStride); err != nil {
						return false, fmt.Errorf("explore: τ-cycle pass: %w", err)
					}
				}
				stack = append(stack, frame{s, succs(s), 0})
			}
		}
	}
	return false, nil
}

// handshakeCycle reports whether some reachable cycle of the joint graph
// contains a P-handshake edge — equivalently (P being τ-free), whether
// Lang(P) ∩ Lang(Q) is infinite: such a cycle pumps arbitrarily long
// common words, and conversely an infinite intersection forces a repeated
// joint vector with a visible P-move between the repeats. Implemented as
// an iterative Tarjan SCC pass followed by a sweep for a P-handshake edge
// with both ends in one component. Call only after a complete BFS. g is
// polled at the pass boundary and every pollStride numbered vectors.
func (mc *machine) handshakeCycle(ix *index, g *guard.G) (bool, error) {
	if err := g.Poll("handshake-cycle", 0); err != nil {
		return false, fmt.Errorf("explore: handshake-cycle pass: %w", err)
	}
	const undef = -1
	n := ix.size()
	num := make([]int32, n)
	low := make([]int32, n)
	comp := make([]int32, n)
	onstack := make([]bool, n)
	for i := range num {
		num[i] = undef
		comp[i] = undef
	}
	scratch := make([]uint32, mc.m)
	kb := make([]byte, 4*mc.m)
	succs := func(gid int) []int {
		var out []int
		mc.expand(ix.vec(gid), scratch, func(succ []uint32, kind int) bool {
			out = append(out, ix.gid(keyBytes(kb, succ)))
			return true
		})
		return out
	}
	type frame struct {
		gid  int
		succ []int
		next int
	}
	var frames []frame
	var tstack []int32
	var counter int32
	for root := 0; root < n; root++ {
		if num[root] != undef {
			continue
		}
		num[root], low[root] = counter, counter
		counter++
		tstack = append(tstack, int32(root))
		onstack[root] = true
		frames = append(frames[:0], frame{root, succs(root), 0})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.next < len(f.succ) {
				s := f.succ[f.next]
				f.next++
				if num[s] == undef {
					num[s], low[s] = counter, counter
					counter++
					if counter%pollStride == 0 {
						if err := g.Poll("handshake-cycle", int(counter)/pollStride); err != nil {
							return false, fmt.Errorf("explore: handshake-cycle pass: %w", err)
						}
					}
					tstack = append(tstack, int32(s))
					onstack[s] = true
					frames = append(frames, frame{s, succs(s), 0})
				} else if onstack[s] && num[s] < low[f.gid] {
					low[f.gid] = num[s]
				}
				continue
			}
			g := f.gid
			frames = frames[:len(frames)-1]
			if low[g] == num[g] {
				for {
					t := tstack[len(tstack)-1]
					tstack = tstack[:len(tstack)-1]
					onstack[t] = false
					comp[t] = int32(g)
					if int(t) == g {
						break
					}
				}
			}
			if len(frames) > 0 {
				if pg := frames[len(frames)-1].gid; low[g] < low[pg] {
					low[pg] = low[g]
				}
			}
		}
	}
	found := false
	for gid := 0; gid < n && !found; gid++ {
		if gid%pollStride == 0 && gid > 0 {
			if err := g.Poll("handshake-cycle", gid/pollStride); err != nil {
				return false, fmt.Errorf("explore: handshake-cycle pass: %w", err)
			}
		}
		mc.expand(ix.vec(gid), scratch, func(succ []uint32, kind int) bool {
			if kind == moveDistHandshake && comp[gid] == comp[ix.gid(keyBytes(kb, succ))] {
				found = true
				return false
			}
			return true
		})
	}
	return found, nil
}
