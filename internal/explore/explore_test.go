package explore_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"fspnet/internal/explore"
	"fspnet/internal/fsp"
	"fspnet/internal/fsptest"
	"fspnet/internal/network"
	"fspnet/internal/success"
)

// oracleAcyclic is the compose-then-explore reference: materialize the
// context with ‖ and run the pairwise Section 3 procedures.
func oracleAcyclic(n *network.Network, i int) (su, sc bool, err error) {
	ctx, err := n.Context(i, false)
	if err != nil {
		return false, false, err
	}
	p := n.Process(i)
	su, err = success.UnavoidableAcyclic(p, ctx)
	if err != nil {
		return false, false, err
	}
	sc, err = success.CollaborationAcyclic(p, ctx)
	return su, sc, err
}

func oracleCyclic(n *network.Network, i int) (su, sc bool, err error) {
	ctx, err := n.Context(i, true)
	if err != nil {
		return false, false, err
	}
	p := n.Process(i)
	su, err = success.UnavoidableCyclic(p, ctx)
	if err != nil {
		return false, false, err
	}
	sc, err = success.CollaborationCyclic(p, ctx)
	return su, sc, err
}

// TestAcyclicAgreesWithOracle checks the engine against the
// compose-then-explore oracle on a seeded corpus of random acyclic tree
// networks, every process of each network.
func TestAcyclicAgreesWithOracle(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := fsptest.TreeNetwork(r, fsptest.NetConfig{
			Procs:          1 + int(seed%6),
			ActionsPerEdge: 1 + int(seed%2),
			MaxStates:      3 + int(seed%3),
			TauProb:        0.25,
		})
		for i := 0; i < n.Len(); i++ {
			wantSu, wantSc, wantErr := oracleAcyclic(n, i)
			res, err := explore.AnalyzeAcyclic(n, i, explore.Options{})
			if (err != nil) != (wantErr != nil) {
				t.Fatalf("seed %d proc %d: engine err %v, oracle err %v", seed, i, err, wantErr)
			}
			if err != nil {
				continue
			}
			if res.Su != wantSu || res.Sc != wantSc {
				t.Errorf("seed %d proc %d: engine (Su=%v, Sc=%v), oracle (Su=%v, Sc=%v)",
					seed, i, res.Su, res.Sc, wantSu, wantSc)
			}
		}
	}
}

// TestCyclicAgreesWithOracle is the cyclic-semantics twin. Processes
// other than P0 may carry τ-moves, so it also checks that the engine
// rejects exactly the inputs the oracle rejects (τ-ful distinguished
// process ⇒ ErrShape on both sides).
func TestCyclicAgreesWithOracle(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(1000 + seed))
		n := fsptest.TreeNetwork(r, fsptest.NetConfig{
			Procs:          2 + int(seed%4),
			ActionsPerEdge: 1 + int(seed%2),
			MaxStates:      3 + int(seed%2),
			TauProb:        0.3,
			Cyclic:         true,
		})
		for i := 0; i < n.Len(); i++ {
			wantSu, wantSc, wantErr := oracleCyclic(n, i)
			res, err := explore.AnalyzeCyclic(n, i, explore.Options{})
			if (err != nil) != (wantErr != nil) {
				t.Fatalf("seed %d proc %d: engine err %v, oracle err %v", seed, i, err, wantErr)
			}
			if err != nil {
				if !errors.Is(err, explore.ErrShape) || !errors.Is(wantErr, success.ErrShape) {
					t.Fatalf("seed %d proc %d: unexpected error kinds: engine %v, oracle %v",
						seed, i, err, wantErr)
				}
				continue
			}
			if res.Su != wantSu || res.Sc != wantSc {
				t.Errorf("seed %d proc %d: engine (Su=%v, Sc=%v), oracle (Su=%v, Sc=%v)",
					seed, i, res.Su, res.Sc, wantSu, wantSc)
			}
		}
	}
}

// mustNet builds a network from processes or fails the test.
func mustNet(t *testing.T, procs ...*fsp.FSP) *network.Network {
	t.Helper()
	n, err := network.New(procs...)
	if err != nil {
		t.Fatalf("network.New: %v", err)
	}
	return n
}

// divergentContextNet is a 3-process network whose context for P silently
// diverges: C1 and C2 handshake on x forever while P can always handshake
// a with C1. The folded cyclic context gets a ⊥ leaf, so S_u must fail —
// but only through the divergence rule, since no joint vector is ever
// moveless.
func divergentContextNet(t *testing.T) *network.Network {
	t.Helper()
	pb := fsp.NewBuilder("P")
	p0 := pb.State("p0")
	pb.SetStart(p0)
	pb.Add(p0, "a", p0)

	cb := fsp.NewBuilder("C1")
	c0 := cb.State("c0")
	cb.SetStart(c0)
	cb.Add(c0, "a", c0)
	cb.Add(c0, "x", c0)

	db := fsp.NewBuilder("C2")
	d0 := db.State("d0")
	db.SetStart(d0)
	db.Add(d0, "x", d0)

	return mustNet(t, pb.MustBuild(), cb.MustBuild(), db.MustBuild())
}

// TestCyclicDivergenceRule pins the τ-loop rule of Section 4: a context
// that can silently diverge defeats unavoidable success even though no
// reachable joint vector is blocked outright, while collaboration still
// succeeds by pumping the a-handshake.
func TestCyclicDivergenceRule(t *testing.T) {
	n := divergentContextNet(t)
	wantSu, wantSc, err := oracleCyclic(n, 0)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	if wantSu || !wantSc {
		t.Fatalf("oracle sanity: got (Su=%v, Sc=%v), want (false, true)", wantSu, wantSc)
	}
	res, err := explore.AnalyzeCyclic(n, 0, explore.Options{})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	if res.Su != wantSu || res.Sc != wantSc {
		t.Errorf("engine (Su=%v, Sc=%v), oracle (Su=%v, Sc=%v)", res.Su, res.Sc, wantSu, wantSc)
	}
}

// TestCyclicTwoProcessNoDivergenceLeaf pins the fold asymmetry: a
// two-process network's context is a single raw process — ComposeAllCyclic
// never composes, so no ⊥ leaf is added and a τ-loop in the context must
// NOT count as divergence. The engine has to mirror that.
func TestCyclicTwoProcessNoDivergenceLeaf(t *testing.T) {
	pb := fsp.NewBuilder("P")
	p0 := pb.State("p0")
	pb.SetStart(p0)
	pb.Add(p0, "a", p0)

	cb := fsp.NewBuilder("C")
	c0 := cb.State("c0")
	cb.SetStart(c0)
	cb.Add(c0, "a", c0)
	cb.AddTau(c0, c0)

	n := mustNet(t, pb.MustBuild(), cb.MustBuild())
	wantSu, wantSc, err := oracleCyclic(n, 0)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	if !wantSu || !wantSc {
		t.Fatalf("oracle sanity: got (Su=%v, Sc=%v), want (true, true)", wantSu, wantSc)
	}
	res, err := explore.AnalyzeCyclic(n, 0, explore.Options{})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	if res.Su != wantSu || res.Sc != wantSc {
		t.Errorf("engine (Su=%v, Sc=%v), oracle (Su=%v, Sc=%v)", res.Su, res.Sc, wantSu, wantSc)
	}
}

// TestAcyclicShapeError checks that a cyclic member in the acyclic
// analysis is rejected with ErrShape, both when it is the distinguished
// process and when it hides in the context.
func TestAcyclicShapeError(t *testing.T) {
	pb := fsp.NewBuilder("P")
	p0, p1 := pb.State("p0"), pb.State("p1")
	pb.SetStart(p0)
	pb.Add(p0, "a", p1)

	cb := fsp.NewBuilder("C")
	c0 := cb.State("c0")
	cb.SetStart(c0)
	cb.Add(c0, "a", c0)

	n := mustNet(t, pb.MustBuild(), cb.MustBuild())
	for i := 0; i < 2; i++ {
		if _, err := explore.AnalyzeAcyclic(n, i, explore.Options{}); !errors.Is(err, explore.ErrShape) {
			t.Errorf("AnalyzeAcyclic(%d): err = %v, want ErrShape", i, err)
		}
		if _, _, err := oracleAcyclic(n, i); !errors.Is(err, success.ErrShape) {
			t.Errorf("oracle(%d): err = %v, want success.ErrShape", i, err)
		}
	}
}

// TestSingleProcessNetwork covers the m = 1 degenerate case against the
// oracle's Q∅ context.
func TestSingleProcessNetwork(t *testing.T) {
	b := fsp.NewBuilder("P0")
	b.State("0")
	n := mustNet(t, b.MustBuild())
	wantSu, wantSc, err := oracleAcyclic(n, 0)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	res, err := explore.AnalyzeAcyclic(n, 0, explore.Options{})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	if res.Su != wantSu || res.Sc != wantSc {
		t.Errorf("engine (Su=%v, Sc=%v), oracle (Su=%v, Sc=%v)", res.Su, res.Sc, wantSu, wantSc)
	}
	cres, err := explore.AnalyzeCyclic(n, 0, explore.Options{})
	if err != nil {
		t.Fatalf("engine cyclic: %v", err)
	}
	cwantSu, cwantSc, err := oracleCyclic(n, 0)
	if err != nil {
		t.Fatalf("oracle cyclic: %v", err)
	}
	if cres.Su != cwantSu || cres.Sc != cwantSc {
		t.Errorf("cyclic engine (Su=%v, Sc=%v), oracle (Su=%v, Sc=%v)", cres.Su, cres.Sc, cwantSu, cwantSc)
	}
}

// TestBadIndex checks the network-package sentinel on out-of-range i.
func TestBadIndex(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	n := fsptest.TreeNetwork(r, fsptest.NetConfig{Procs: 3, ActionsPerEdge: 1, MaxStates: 3})
	for _, i := range []int{-1, n.Len()} {
		if _, err := explore.AnalyzeAcyclic(n, i, explore.Options{}); !errors.Is(err, network.ErrBadIndex) {
			t.Errorf("AnalyzeAcyclic(%d): err = %v, want ErrBadIndex", i, err)
		}
	}
}

// TestBudget checks that MaxStates cuts exploration off with ErrBudget
// and that the reported state count is deterministic.
func TestBudget(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n := fsptest.TreeNetwork(r, fsptest.NetConfig{Procs: 5, ActionsPerEdge: 2, MaxStates: 5, TauProb: 0.2})
	_, err := explore.AnalyzeAcyclic(n, 0, explore.Options{MaxStates: 2})
	if !errors.Is(err, explore.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	msg := fmt.Sprint(err)
	for trial := 0; trial < 3; trial++ {
		_, err2 := explore.AnalyzeAcyclic(n, 0, explore.Options{MaxStates: 2, Workers: 1 + trial})
		if fmt.Sprint(err2) != msg {
			t.Fatalf("budget error not deterministic: %q vs %q", err2, msg)
		}
	}
}

// TestStatsDeterministic locks Stats across worker counts on a network
// large enough for real parallelism.
func TestStatsDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	n := fsptest.TreeNetwork(r, fsptest.NetConfig{Procs: 6, ActionsPerEdge: 2, MaxStates: 4, TauProb: 0.2})
	base, err := explore.AnalyzeAcyclic(n, 0, explore.Options{Workers: 1})
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	if base.Stats.States == 0 || base.Stats.Depth == 0 {
		t.Fatalf("degenerate stats: %+v", base.Stats)
	}
	for w := 2; w <= 8; w++ {
		res, err := explore.AnalyzeAcyclic(n, 0, explore.Options{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if res != base {
			t.Errorf("workers=%d: %+v != workers=1 %+v", w, res, base)
		}
	}
}
