package explore

import (
	"encoding/binary"
	"fmt"

	"fspnet/internal/guard"
)

// This file holds the cyclic post-passes over the symmetry-quotiented
// joint graph. The quotient collapses a raw state and its automorphism
// images into one representative, which is sound for plain reachability
// — but the two cycle passes ask questions about which PROCESS an edge
// involves, and canonicalization relabels processes along the composed
// minimizing permutation. The passes therefore run on the j-tracking
// cover: nodes are pairs (representative, j) with j ranging over the
// orbit of the distinguished process, an edge of the quotient maps the
// tracked position j through its permutation, and an edge is classified
// (context move / P-handshake) against the tracked j rather than the
// fixed dist index.
//
// Soundness: a cycle in the cover lifts to a genuine raw cycle — walk
// the cover cycle, transporting each raw edge by the group element that
// carries the current raw state onto the representative; the tracked j
// invariant means the lifted edges keep their classification, and
// because the group is finite the lifted walk returns to its origin
// after finitely many turns around the cover cycle. Completeness: a raw
// cycle projects turn by turn onto cover edges, and by pigeonhole some
// (representative, j) pair recurs, closing a cover cycle that contains
// the projection of every edge of one full raw turn. Neither argument
// needs the canonicalization to be a consistent (true minimal-image)
// choice — only that every representative lies in its orbit.

// symGraph is the CSR adjacency of the quotient graph with the
// per-edge data the cover passes classify on: the canonical successor,
// the composed minimizing permutation (deduped; edges overwhelmingly
// share a handful of permutations), and the participating processes.
type symGraph struct {
	off   []int32
	to    []int32
	perm  []int32   // index into perms, per edge
	pa    []int16   // τ: the mover; handshake: smaller owner
	pb    []int16   // handshake: larger owner; τ: −1
	perms [][]int32 // deduped process permutations, identity first
}

// buildSymGraph materializes the quotient adjacency under pass
// "sym-adj". Successor sets of representatives are enumerated with
// expandFull and canonicalized with permutation tracking; everything is
// appended in deterministic order.
func (mc *machine) buildSymGraph(ix *index, sy *symState, g *guard.G) (*symGraph, error) {
	if err := g.Poll("sym-adj", 0); err != nil {
		return nil, fmt.Errorf("explore: sym-adj pass: %w", err)
	}
	n := ix.size()
	sg := &symGraph{off: make([]int32, n+1)}
	ident := make([]int32, mc.m)
	for i := range ident {
		ident[i] = int32(i)
	}
	sg.perms = append(sg.perms, ident)
	permIDs := map[string]int32{permKey(ident): 0}
	cz := sy.grp.NewCanonizer()
	scratch := make([]uint32, mc.m)
	canon := make([]uint32, mc.m)
	pi := make([]int32, mc.m)
	kb := make([]byte, 4*mc.m)
	for gid := 0; gid < n; gid++ {
		if gid > 0 && gid%pollStride == 0 {
			if err := g.Poll("sym-adj", gid/pollStride); err != nil {
				return nil, fmt.Errorf("explore: sym-adj pass: %w", err)
			}
		}
		sg.off[gid] = int32(len(sg.to))
		mc.expandFull(ix.vec(gid), scratch, func(succ []uint32, kind int, pa, pb int32) bool {
			cz.CanonPerm(succ, canon, pi)
			sg.to = append(sg.to, int32(ix.gid(keyBytes(kb, canon))))
			pk := permKey(pi)
			id, ok := permIDs[pk]
			if !ok {
				id = int32(len(sg.perms))
				permIDs[pk] = id
				sg.perms = append(sg.perms, append([]int32(nil), pi...))
			}
			sg.perm = append(sg.perm, id)
			sg.pa = append(sg.pa, int16(pa))
			sg.pb = append(sg.pb, int16(pb))
			return true
		})
	}
	sg.off[n] = int32(len(sg.to))
	return sg, nil
}

func permKey(pi []int32) string {
	b := make([]byte, 4*len(pi))
	for i, v := range pi {
		binary.LittleEndian.PutUint32(b[i*4:], uint32(v))
	}
	return string(b)
}

// ctxTauCycleSym is ctxTauCycle on the j-tracking cover: a gray-path
// DFS over nodes (gid, di), following only edges whose move does not
// involve the tracked process sy.distOrbit[di]. A gray back-edge is a
// reachable silent divergence of the context. Shares the "tau-cycle"
// pass name with the unreduced variant so governor behavior lines up.
func (mc *machine) ctxTauCycleSym(sg *symGraph, sy *symState, g *guard.G) (bool, error) {
	if err := g.Poll("tau-cycle", 0); err != nil {
		return false, fmt.Errorf("explore: τ-cycle pass: %w", err)
	}
	const gray, black = 1, 2
	nd := len(sy.distOrbit)
	n := (len(sg.off) - 1) * nd
	color := make([]uint8, n)
	colored := 0
	succs := func(node int) []int32 {
		gid, di := node/nd, node%nd
		j := sy.distOrbit[di]
		var out []int32
		for e := sg.off[gid]; e < sg.off[gid+1]; e++ {
			if int32(sg.pa[e]) == j || int32(sg.pb[e]) == j {
				continue // the tracked process moves: not a context move for it
			}
			jn := sy.jIdx[sg.perms[sg.perm[e]][j]]
			out = append(out, sg.to[e]*int32(nd)+jn)
		}
		return out
	}
	type frame struct {
		node int
		succ []int32
		next int
	}
	var stack []frame
	for root := 0; root < n; root++ {
		if color[root] != 0 {
			continue
		}
		color[root] = gray
		colored++
		stack = append(stack[:0], frame{root, succs(root), 0})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next >= len(f.succ) {
				color[f.node] = black
				stack = stack[:len(stack)-1]
				continue
			}
			s := int(f.succ[f.next])
			f.next++
			switch color[s] {
			case gray:
				return true, nil
			case black:
			default:
				color[s] = gray
				colored++
				if colored%pollStride == 0 {
					if err := g.Poll("tau-cycle", colored/pollStride); err != nil {
						return false, fmt.Errorf("explore: τ-cycle pass: %w", err)
					}
				}
				stack = append(stack, frame{s, succs(s), 0})
			}
		}
	}
	return false, nil
}

// handshakeCycleSym is handshakeCycle on the j-tracking cover: Tarjan
// SCCs over all cover edges, then a sweep for an edge that is a
// P-handshake for its tracked process with both cover endpoints in one
// component. Shares the "handshake-cycle" pass name with the unreduced
// variant.
func (mc *machine) handshakeCycleSym(sg *symGraph, sy *symState, g *guard.G) (bool, error) {
	if err := g.Poll("handshake-cycle", 0); err != nil {
		return false, fmt.Errorf("explore: handshake-cycle pass: %w", err)
	}
	const undef = -1
	nd := len(sy.distOrbit)
	n := (len(sg.off) - 1) * nd
	num := make([]int32, n)
	low := make([]int32, n)
	comp := make([]int32, n)
	onstack := make([]bool, n)
	for i := range num {
		num[i] = undef
		comp[i] = undef
	}
	succs := func(node int) []int32 {
		gid, di := node/nd, node%nd
		j := sy.distOrbit[di]
		out := make([]int32, 0, sg.off[gid+1]-sg.off[gid])
		for e := sg.off[gid]; e < sg.off[gid+1]; e++ {
			jn := sy.jIdx[sg.perms[sg.perm[e]][j]]
			out = append(out, sg.to[e]*int32(nd)+jn)
		}
		return out
	}
	type frame struct {
		node int
		succ []int32
		next int
	}
	var frames []frame
	var tstack []int32
	var counter int32
	for root := 0; root < n; root++ {
		if num[root] != undef {
			continue
		}
		num[root], low[root] = counter, counter
		counter++
		tstack = append(tstack, int32(root))
		onstack[root] = true
		frames = append(frames[:0], frame{root, succs(root), 0})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.next < len(f.succ) {
				s := int(f.succ[f.next])
				f.next++
				if num[s] == undef {
					num[s], low[s] = counter, counter
					counter++
					if counter%pollStride == 0 {
						if err := g.Poll("handshake-cycle", int(counter)/pollStride); err != nil {
							return false, fmt.Errorf("explore: handshake-cycle pass: %w", err)
						}
					}
					tstack = append(tstack, int32(s))
					onstack[s] = true
					frames = append(frames, frame{s, succs(s), 0})
				} else if onstack[s] && num[s] < low[f.node] {
					low[f.node] = num[s]
				}
				continue
			}
			nodeID := f.node
			frames = frames[:len(frames)-1]
			if low[nodeID] == num[nodeID] {
				for {
					t := tstack[len(tstack)-1]
					tstack = tstack[:len(tstack)-1]
					onstack[t] = false
					comp[t] = int32(nodeID)
					if int(t) == nodeID {
						break
					}
				}
			}
			if len(frames) > 0 {
				if pg := frames[len(frames)-1].node; low[nodeID] < low[pg] {
					low[pg] = low[nodeID]
				}
			}
		}
	}
	for node := 0; node < n; node++ {
		if node%pollStride == 0 && node > 0 {
			if err := g.Poll("handshake-cycle", node/pollStride); err != nil {
				return false, fmt.Errorf("explore: handshake-cycle pass: %w", err)
			}
		}
		gid, di := node/nd, node%nd
		j := sy.distOrbit[di]
		for e := sg.off[gid]; e < sg.off[gid+1]; e++ {
			if sg.pb[e] < 0 || (int32(sg.pa[e]) != j && int32(sg.pb[e]) != j) {
				continue // not a handshake of the tracked process
			}
			jn := sy.jIdx[sg.perms[sg.perm[e]][j]]
			if comp[node] == comp[sg.to[e]*int32(nd)+jn] {
				return true, nil
			}
		}
	}
	return false, nil
}

// symStatesPass sums, under pass "canon", the extra raw states each
// interned representative stands for — the per-representative orbit
// size minus one, a lower bound computed from single element
// applications (exact whenever the discovered element set is the whole
// group, as on the bundled ring and clique families).
func (mc *machine) symStatesPass(ix *index, sy *symState, g *guard.G) (int64, error) {
	if err := g.Poll("canon", 0); err != nil {
		return 0, fmt.Errorf("explore: canon pass: %w", err)
	}
	cz := sy.grp.NewCanonizer()
	var total int64
	n := ix.size()
	for gid := 0; gid < n; gid++ {
		if gid > 0 && gid%pollStride == 0 {
			if err := g.Poll("canon", gid/pollStride); err != nil {
				return total, fmt.Errorf("explore: canon pass: %w", err)
			}
		}
		total += int64(cz.OrbitSize(ix.vec(gid)) - 1)
	}
	return total, nil
}
