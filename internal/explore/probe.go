package explore

import (
	"fmt"

	"fspnet/internal/guard"
)

// This file holds the bounded witness probes of the cyclic analysis.
// Both cyclic predicates have one polarity that a small witness decides:
//
//	¬S_u — a reachable context-move cycle (silent divergence, m ≥ 3), or
//	        a reachable vector with no joint move at all (blocking);
//	 S_c — a reachable cycle containing a P-handshake edge.
//
// On the fully symmetric families those witnesses sit within a handful
// of moves of the start (one philosopher's eat cycle), while the raw
// joint space is astronomically large — so a deterministic depth-first
// probe with a small node budget decides philosophers20 instantly where
// even the quotiented exhaustive BFS could not finish. The probes walk
// the RAW space (no canonicalization), so their witnesses are genuine
// runs and need no symmetry soundness argument. A probe that exhausts
// its budget decides nothing and the exhaustive passes take over.

// probeBudget bounds the visited vectors of each probe walk.
const probeBudget = 4096

// probeResult carries what the probes decided. Only the witnessed
// polarities can ever be set; the opposite polarities need exhaustion.
type probeResult struct {
	states  int  // raw vectors visited across both walks
	suFalse bool // ¬S_u witnessed
	scTrue  bool // S_c witnessed
}

// probeCyclic runs the two witness walks under pass "probe". It never
// decides S_u = true or S_c = false. Deterministic: fixed expansion
// order, fixed budget, no parallelism.
func (mc *machine) probeCyclic(needSu, needSc bool, g *guard.G) (probeResult, error) {
	var pr probeResult
	if err := g.Poll("probe", 0); err != nil {
		return pr, fmt.Errorf("explore: probe pass: %w", err)
	}
	// Walk 1: gray-path DFS over context moves only. A back-edge is a
	// reachable silent divergence of the context — the ⊥ rule, which only
	// applies when the context is a real composition (m ≥ 3).
	if needSu && mc.m >= 3 {
		if err := mc.probeCtxCycle(&pr, g); err != nil {
			return pr, err
		}
	}
	// Walk 2: gray-path DFS over the full joint relation. Every back-edge
	// closes a stack cycle that either contains a P-handshake edge (an
	// S_c witness) or consists of context moves alone (¬S_u when m ≥ 3);
	// a moveless vector on the way is a blocking ¬S_u witness.
	if (needSc && !pr.scTrue) || (needSu && !pr.suFalse) {
		if err := mc.probeFullCycle(needSu, needSc, &pr, g); err != nil {
			return pr, err
		}
	}
	return pr, nil
}

// probePoll polls the governor every pollStride visited vectors.
func probePoll(g *guard.G, visited int) error {
	if visited%pollStride != 0 {
		return nil
	}
	if err := g.Poll("probe", visited/pollStride); err != nil {
		return fmt.Errorf("explore: probe pass: %w", err)
	}
	return nil
}

// probeCtxCycle looks for a context-move cycle reachable from the start.
func (mc *machine) probeCtxCycle(pr *probeResult, g *guard.G) error {
	const black = -2
	depth := make(map[string]int32) // packed vec → gray depth, or black
	scratch := make([]uint32, mc.m)
	kb := make([]byte, 4*mc.m)
	succs := func(vec []uint32) []string {
		var out []string
		mc.expand(vec, scratch, func(succ []uint32, kind int) bool {
			if kind == moveCtxTau || kind == moveCtxHandshake {
				out = append(out, string(keyBytes(kb, succ)))
			}
			return true
		})
		return out
	}
	type frame struct {
		key  string
		succ []string
		next int
	}
	start := mc.startVec()
	startKey := string(keyBytes(kb, start))
	depth[startKey] = 0
	pr.states++
	stack := []frame{{startKey, succs(start), 0}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next >= len(f.succ) {
			depth[f.key] = black
			stack = stack[:len(stack)-1]
			continue
		}
		key := f.succ[f.next]
		f.next++
		d, seen := depth[key]
		switch {
		case seen && d >= 0:
			pr.suFalse = true
			return nil
		case seen: // black
		default:
			if len(depth) >= probeBudget {
				return nil // budget spent without a witness: undecided
			}
			pr.states++
			if err := probePoll(g, len(depth)); err != nil {
				return err
			}
			depth[key] = int32(len(stack))
			stack = append(stack, frame{key, succs(unpackKey(key, mc.m)), 0})
		}
	}
	return nil
}

// probeFullCycle walks the full joint relation, classifying every
// back-edge by whether the stack cycle it closes contains a P-handshake
// edge — tracked as the deepest stack frame entered over one (hsDepth).
func (mc *machine) probeFullCycle(needSu, needSc bool, pr *probeResult, g *guard.G) error {
	const black = -2
	depth := make(map[string]int32)
	scratch := make([]uint32, mc.m)
	kb := make([]byte, 4*mc.m)
	type edge struct {
		key string
		hs  bool // the edge is a P-handshake
	}
	succs := func(vec []uint32) ([]edge, bool) {
		var out []edge
		moved := mc.expand(vec, scratch, func(succ []uint32, kind int) bool {
			out = append(out, edge{string(keyBytes(kb, succ)), kind == moveDistHandshake})
			return true
		})
		return out, moved
	}
	type frame struct {
		key  string
		succ []edge
		next int
		// hsDepth is the deepest frame index ≤ this one whose incoming
		// edge is a P-handshake (−1: none on the path). A back-edge from
		// this frame to gray depth d closes a cycle containing a
		// P-handshake iff the closing edge is one or hsDepth > d.
		hsDepth int32
	}
	done := func() bool {
		return (!needSu || pr.suFalse) && (!needSc || pr.scTrue)
	}
	start := mc.startVec()
	startKey := string(keyBytes(kb, start))
	depth[startKey] = 0
	pr.states++
	ss, moved := succs(start)
	if !moved {
		pr.suFalse = true // the start itself is a blocking vector
		if done() {
			return nil
		}
	}
	stack := []frame{{key: startKey, succ: ss, hsDepth: -1}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next >= len(f.succ) {
			depth[f.key] = black
			stack = stack[:len(stack)-1]
			continue
		}
		e := f.succ[f.next]
		f.next++
		d, seen := depth[e.key]
		switch {
		case seen && d >= 0:
			if e.hs || f.hsDepth > d {
				pr.scTrue = true
			} else if mc.m >= 3 {
				// No P-handshake anywhere on the cycle, and P is τ-free,
				// so every edge of it is a context move: silent divergence.
				pr.suFalse = true
			}
			if done() {
				return nil
			}
		case seen: // black
		default:
			if len(depth) >= probeBudget {
				return nil
			}
			pr.states++
			if err := probePoll(g, len(depth)); err != nil {
				return err
			}
			hs := f.hsDepth
			if e.hs {
				hs = int32(len(stack))
			}
			depth[e.key] = int32(len(stack))
			ss, moved := succs(unpackKey(e.key, mc.m))
			if !moved {
				pr.suFalse = true // a blocking vector
				if done() {
					return nil
				}
			}
			stack = append(stack, frame{key: e.key, succ: ss, hsDepth: hs})
		}
	}
	return nil
}

// unpackKey reverses keyBytes for a packed m-component vector key.
func unpackKey(key string, m int) []uint32 {
	vec := make([]uint32, m)
	for i := range vec {
		vec[i] = uint32(key[4*i]) | uint32(key[4*i+1])<<8 |
			uint32(key[4*i+2])<<16 | uint32(key[4*i+3])<<24
	}
	return vec
}
