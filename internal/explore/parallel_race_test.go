package explore_test

import (
	"fmt"
	"math/rand"
	"testing"

	"fspnet/internal/explore"
	"fspnet/internal/fsptest"
)

// TestParallelFrontierRace exercises the sharded-frontier BFS the way
// `make test-race` needs it exercised: one shared 8-process generated
// network explored simultaneously from several t.Parallel subtests, each
// with its own worker fan-out. Any unsynchronized access to the intern
// shards or a worker reading an arena mid-append shows up under the race
// detector; and since verdicts and Stats are specified to be independent
// of scheduling, every run must reproduce the single-worker result bit
// for bit.
func TestParallelFrontierRace(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	n := fsptest.TreeNetwork(r, fsptest.NetConfig{
		Procs:          8,
		ActionsPerEdge: 2,
		MaxStates:      4,
		TauProb:        0.2,
	})
	if n.Len() != 8 {
		t.Fatalf("generated network has %d processes, want 8", n.Len())
	}

	baselines := make([]explore.Result, n.Len())
	for i := range baselines {
		res, err := explore.AnalyzeAcyclic(n, i, explore.Options{Workers: 1})
		if err != nil {
			t.Fatalf("sequential AnalyzeAcyclic(%d): %v", i, err)
		}
		baselines[i] = res
	}

	for w := 2; w <= 8; w += 2 {
		workers := w
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			t.Parallel()
			for i := range baselines {
				res, err := explore.AnalyzeAcyclic(n, i, explore.Options{Workers: workers})
				if err != nil {
					t.Fatalf("AnalyzeAcyclic(%d, workers=%d): %v", i, workers, err)
				}
				if res != baselines[i] {
					t.Errorf("process %d: parallel result %+v != sequential %+v", i, res, baselines[i])
				}
			}
		})
	}
}

// TestParallelFrontierRaceCyclic is the cyclic twin, covering the
// post-pass readers of the intern arenas as well.
func TestParallelFrontierRaceCyclic(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	n := fsptest.TreeNetwork(r, fsptest.NetConfig{
		Procs:          8,
		ActionsPerEdge: 2,
		MaxStates:      4,
		TauProb:        0.2,
		Cyclic:         true,
	})

	baseline, err := explore.AnalyzeCyclic(n, 0, explore.Options{Workers: 1})
	if err != nil {
		t.Fatalf("sequential AnalyzeCyclic: %v", err)
	}

	for w := 2; w <= 8; w += 2 {
		workers := w
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			t.Parallel()
			res, err := explore.AnalyzeCyclic(n, 0, explore.Options{Workers: workers})
			if err != nil {
				t.Fatalf("AnalyzeCyclic(workers=%d): %v", workers, err)
			}
			if res != baseline {
				t.Errorf("parallel result %+v != sequential %+v", res, baseline)
			}
		})
	}
}
