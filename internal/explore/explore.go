// Package explore is an on-the-fly exploration engine for the reference
// decision procedures: it walks the joint state vectors (s_0, …, s_{m-1})
// of a closed network directly, deciding S_u and S_c under the acyclic
// (Section 3.1) and cyclic (Section 4.1) semantics without ever
// materializing the composed context via ‖.
//
// Three ingredients keep the walk cheap:
//
//   - an action-owner index, computed once per network: Definition 2 gives
//     every action exactly two owners, so each non-τ joint move is a
//     handshake between exactly two components and successor enumeration
//     never scans all m processes per action;
//   - interned state vectors: local states are dense uint32 ids packed
//     into a byte-string key, and a sharded intern table owns the only
//     copy of each visited vector (an arena of flat uint32 blocks);
//   - a level-synchronized parallel BFS over the reachable joint space,
//     with the visited set sharded by vector hash. Verdict bits
//     (stuck-at-leaf, stuck-off-leaf, blocked) are monotone and merged at
//     level barriers, so the verdict — and every reported statistic — is
//     independent of worker count and scheduling.
//
// The engine decides S_u and S_c only. Success in adversity S_a is a game
// of partial information whose belief sets genuinely range over the
// composed context; package success keeps using the game solver for it.
package explore

import (
	"errors"
	"fmt"
	"sort"

	"fspnet/internal/fsp"
	"fspnet/internal/guard"
	"fspnet/internal/network"
	"fspnet/internal/symred"
)

var (
	// ErrShape reports inputs outside a procedure's domain (cyclic
	// processes under the acyclic analysis, a τ-ful distinguished process
	// under the cyclic one).
	ErrShape = errors.New("explore: input outside procedure domain")
	// ErrBudget reports that exploration exceeded Options.MaxStates
	// interned joint vectors. It wraps guard.ErrBudget, the unified
	// budget sentinel.
	ErrBudget = fmt.Errorf("explore: joint state budget exhausted: %w", guard.ErrBudget)
)

// DefaultMaxStates bounds the interned joint vectors when
// Options.MaxStates is unset.
const DefaultMaxStates = 1 << 24

// Options configure one engine run.
type Options struct {
	// Workers bounds the frontier parallelism; ≤ 0 means GOMAXPROCS.
	// Verdicts and Stats do not depend on it.
	Workers int
	// MaxStates bounds the interned joint vectors (ErrBudget beyond it);
	// ≤ 0 means DefaultMaxStates. The bound is checked at level barriers,
	// so the count at failure is deterministic.
	MaxStates int
	// Guard, when non-nil, governs the run: cancellation and deadlines
	// are polled at every BFS level barrier and pass boundary, and fresh
	// joint states are charged against its joint budget. On exhaustion
	// the engine returns a *guard.LimitErr whose partial verdict reports
	// barrier-accurate stats plus any predicate already decided by the
	// monotone flags.
	Guard *guard.G
	// Tune carries the symmetry-reduction knobs.
	Tune Tuning
}

// Tuning switches the symmetry machinery off for oracle runs. The
// default (both false) is the fast path; either knob changes only how
// the verdict is computed, never the verdict itself.
type Tuning struct {
	// NoSymmetry disables orbit-canonical interning: every joint vector
	// in an automorphism orbit is explored separately, as the engine did
	// before symmetry reduction. The differential oracle switch.
	NoSymmetry bool
	// NoProbe disables the bounded witness probes that can decide the
	// cyclic predicates before any exhaustive exploration — useful for
	// measuring the quotient itself.
	NoProbe bool
}

// Stats describes one engine run. All fields are deterministic functions
// of the network, the distinguished process, MaxStates, and Tune.
type Stats struct {
	States int   // interned joint vectors (peak = total; nothing is evicted)
	Depth  int   // completed BFS levels
	Moves  int64 // joint transitions enumerated

	GroupOrder  int   // discovered automorphism elements incl. identity (1 = trivial)
	OrbitHits   int64 // successor canonicalizations that changed the vector
	SymStates   int64 // extra raw states the interned representatives stand for
	ProbeStates int   // raw states visited by the witness probes
}

// Result carries the two engine-decided predicates and the run stats.
type Result struct {
	Su    bool // unavoidable success
	Sc    bool // success with collaboration
	Stats Stats
}

// AnalyzeAcyclic decides S_u and S_c for process i of an acyclic network
// under the Section 3.1 semantics.
func AnalyzeAcyclic(n *network.Network, i int, o Options) (Result, error) {
	return acyclic(n, i, o, true, true)
}

// UnavoidableAcyclic decides S_u alone for process i of an acyclic
// network; exploration stops as soon as the verdict is determined.
func UnavoidableAcyclic(n *network.Network, i int, o Options) (bool, Stats, error) {
	res, err := acyclic(n, i, o, true, false)
	return res.Su, res.Stats, err
}

// CollaborationAcyclic decides S_c alone for process i of an acyclic
// network.
func CollaborationAcyclic(n *network.Network, i int, o Options) (bool, Stats, error) {
	res, err := acyclic(n, i, o, false, true)
	return res.Sc, res.Stats, err
}

// AnalyzeCyclic decides S_u and S_c for process i under the Section 4.1
// semantics, including the τ-loop divergence rule. The distinguished
// process must be τ-free.
func AnalyzeCyclic(n *network.Network, i int, o Options) (Result, error) {
	return cyclic(n, i, o, true, true)
}

// UnavoidableCyclic decides the Section 4 S_u alone for process i.
func UnavoidableCyclic(n *network.Network, i int, o Options) (bool, Stats, error) {
	res, err := cyclic(n, i, o, true, false)
	return res.Su, res.Stats, err
}

// CollaborationCyclic decides the Section 4 S_c alone for process i.
func CollaborationCyclic(n *network.Network, i int, o Options) (bool, Stats, error) {
	res, err := cyclic(n, i, o, false, true)
	return res.Sc, res.Stats, err
}

// acyclic runs the Section 3.1 analysis. The verdict equals the reference
// formulation on the P×Q pair graph (Q = ‖ of the context) because the
// reachable pair graph and the reachable joint-vector graph are
// isomorphic: Q's states are exactly the reachable context vectors, Q's
// τ-moves the context-internal moves, and stuck pairs the stuck vectors.
func acyclic(n *network.Network, i int, o Options, needSu, needSc bool) (Result, error) {
	mc, err := compile(n, i)
	if err != nil {
		return Result{}, err
	}
	if err := mc.checkAcyclicShape(maxStates(o), o.Guard); err != nil {
		return Result{}, limitErr(o.Guard, err, "shape", false, bfsFlags{}, Stats{})
	}
	sy := mc.newSymState(n, o)
	in, flags, stats, err := mc.bfs(false, o, sy, func(f bfsFlags) bool {
		// S_u is decided early only by a counterexample, S_c only by a
		// witness; completion decides the rest.
		return (!needSu || f.stuckNonLeaf) && (!needSc || f.stuckLeaf)
	})
	stats.GroupOrder = sy.order()
	if err != nil {
		return Result{Stats: stats}, limitErr(o.Guard, err, "bfs", false, flags, stats)
	}
	if sy != nil {
		stats.SymStates, err = mc.symStatesPass(in.buildIndex(), sy, o.Guard)
		if err != nil {
			return Result{Stats: stats}, limitErr(o.Guard, err, "canon", false, flags, stats)
		}
	}
	return Result{Su: !flags.stuckNonLeaf, Sc: flags.stuckLeaf, Stats: stats}, nil
}

// cyclic runs the Section 4.1 analysis on the flat joint graph. The
// reference composes the context with the cyclic ‖, whose fold inserts a
// divergence leaf ⊥ under every silently diverging composite state; on
// the flat graph those two effects become
//
//	¬S_u ⇔ some reachable vector has no context move and no enabled
//	        P-handshake (the stable-disjoint pair), or the context-move
//	        subgraph of the reachable joint graph has a cycle (the run
//	        that silently diverges, reaching ⊥ in the folded form);
//	S_c  ⇔ some reachable cycle contains a P-handshake edge
//	        (⇔ Lang(P) ∩ Lang(Q) is infinite: pump the cycle).
//
// One asymmetry of the fold carries over: ComposeAllCyclic applies the
// divergence-leaf construction only when it actually composes, so a
// two-process network's context — a single raw process — gets no ⊥ and
// the divergence rule must not fire. The engine mirrors that exactly.
func cyclic(n *network.Network, i int, o Options, needSu, needSc bool) (Result, error) {
	mc, err := compile(n, i)
	if err != nil {
		return Result{}, err
	}
	if err := mc.checkSection4P(); err != nil {
		return Result{}, err
	}
	sy := mc.newSymState(n, o)
	res := Result{Stats: Stats{GroupOrder: sy.order()}}
	suKnown, scKnown := false, false
	if !o.Tune.NoProbe {
		// The bounded witness probes can decide ¬S_u (a context τ-cycle or
		// a blocking vector) and S_c (a cycle through a P-handshake) from
		// raw witnesses near the start, without exhausting the joint
		// space; on the fully symmetric families they decide instantly.
		pr, perr := mc.probeCyclic(needSu, needSc, o.Guard)
		res.Stats.ProbeStates = pr.states
		if pr.suFalse {
			suKnown = true
		}
		if pr.scTrue {
			res.Sc, scKnown = true, true
		}
		if perr != nil {
			return res, probeLimitErr(o.Guard, perr, pr, res.Stats)
		}
		if (!needSu || suKnown) && (!needSc || scKnown) {
			return res, nil
		}
	}
	needSuX := needSu && !suKnown // predicates exhaustive exploration still owes
	needScX := needSc && !scKnown
	in, flags, stats, err := mc.bfs(true, o, sy, func(f bfsFlags) bool {
		// S_c needs the full reachable graph; S_u alone can stop at the
		// first blocking witness.
		return !needScX && (!needSuX || f.blocked)
	})
	res.Stats.States, res.Stats.Depth = stats.States, stats.Depth
	res.Stats.Moves, res.Stats.OrbitHits = stats.Moves, stats.OrbitHits
	stats = res.Stats
	if suKnown {
		flags.blocked = true // the probe's ¬S_u witness is as good as a blocked vector
	}
	if err != nil {
		return res, limitErr(o.Guard, err, "bfs", true, flags, stats)
	}
	var ix *index
	var sg *symGraph
	adjacency := func() error {
		if ix == nil {
			ix = in.buildIndex()
		}
		if sy != nil && sg == nil {
			sg, err = mc.buildSymGraph(ix, sy, o.Guard)
			return err
		}
		return nil
	}
	if needSu {
		blocked := flags.blocked
		if !blocked && mc.m >= 3 {
			if err := adjacency(); err != nil {
				return res, limitErr(o.Guard, err, "sym-adj", true, flags, stats)
			}
			if sy != nil {
				blocked, err = mc.ctxTauCycleSym(sg, sy, o.Guard)
			} else {
				blocked, err = mc.ctxTauCycle(ix, o.Guard)
			}
			if err != nil {
				return res, limitErr(o.Guard, err, "tau-cycle", true, flags, stats)
			}
		}
		res.Su = !blocked
	}
	if needScX {
		if err := adjacency(); err != nil {
			lerr := limitErr(o.Guard, err, "sym-adj", true, flags, stats)
			var le *guard.LimitErr
			if errors.As(lerr, &le) && needSu {
				le.Partial.Su = guard.Of(res.Su)
			}
			return res, lerr
		}
		var sc bool
		if sy != nil {
			sc, err = mc.handshakeCycleSym(sg, sy, o.Guard)
		} else {
			sc, err = mc.handshakeCycle(ix, o.Guard)
		}
		if err != nil {
			lerr := limitErr(o.Guard, err, "handshake-cycle", true, flags, stats)
			var le *guard.LimitErr
			if errors.As(lerr, &le) && needSu {
				// S_u was fully decided before this pass started.
				le.Partial.Su = guard.Of(res.Su)
			}
			return res, lerr
		}
		res.Sc = sc
	}
	if sy != nil {
		if ix == nil {
			ix = in.buildIndex()
		}
		res.Stats.SymStates, err = mc.symStatesPass(ix, sy, o.Guard)
		if err != nil {
			lerr := limitErr(o.Guard, err, "canon", true, flags, res.Stats)
			var le *guard.LimitErr
			if errors.As(lerr, &le) {
				// Both predicates are fully decided by now; only the stats
				// sweep was cut short.
				if needSu {
					le.Partial.Su = guard.Of(res.Su)
				}
				if needSc {
					le.Partial.Sc = guard.Of(res.Sc)
				}
			}
			return res, lerr
		}
	}
	return res, nil
}

// probeLimitErr converts a governor stop inside the witness probes into
// a partial verdict carrying whatever the probes had already decided.
func probeLimitErr(g *guard.G, err error, pr probeResult, stats Stats) error {
	if !guard.IsLimit(err) {
		return err
	}
	p := guard.Partial{States: stats.ProbeStates, Pass: "probe"}
	if pr.suFalse {
		p.Su = guard.False
	}
	if pr.scTrue {
		p.Sc = guard.True
	}
	return g.Limit(err, p)
}

// limitErr converts a governor stop reason from one of the passes into a
// *guard.LimitErr carrying barrier-accurate stats and whichever
// predicates the monotone flags had already forced. Non-limit errors
// (shape violations) pass through untouched.
func limitErr(g *guard.G, err error, pass string, cyclic bool, flags bfsFlags, stats Stats) error {
	if !guard.IsLimit(err) {
		return err
	}
	p := guard.Partial{States: stats.States, Depth: stats.Depth, Pass: pass}
	if cyclic {
		// A blocked vector decides ¬S_u outright; nothing short of a full
		// graph decides S_c, so it stays unknown.
		if flags.blocked {
			p.Su = guard.False
		}
	} else {
		if flags.stuckNonLeaf {
			p.Su = guard.False
		}
		if flags.stuckLeaf {
			p.Sc = guard.True
		}
	}
	return g.Limit(err, p)
}

func maxStates(o Options) int {
	if o.MaxStates <= 0 {
		return DefaultMaxStates
	}
	return o.MaxStates
}

// Joint-move kinds, as classified against the distinguished process.
const (
	moveDistTau       = iota // τ of the distinguished process
	moveCtxTau               // τ of a context member
	moveCtxHandshake         // handshake internal to the context (τ of Q)
	moveDistHandshake        // handshake between P and its context
)

// visTrans is one visible transition, compiled to action ids. Because an
// FSP's transitions are sorted by label and action ids follow the sorted
// action order, compiled slices are sorted by (aid, to) for free.
type visTrans struct {
	aid uint32
	to  uint32
}

// machine is the compiled form of a network: per-process, per-state move
// tables and the two owners of every action.
type machine struct {
	m        int
	dist     int
	procs    []*fsp.FSP
	tau      [][][]uint32   // tau[j][s]: τ-successors of state s of process j
	vis      [][][]visTrans // vis[j][s]: visible transitions, sorted by (aid, to)
	ownerA   []int32        // per action id, the smaller owner index
	ownerB   []int32        // per action id, the larger owner index
	distLeaf []bool         // per state of the distinguished process
}

// compile builds the machine for distinguished process dist.
func compile(n *network.Network, dist int) (*machine, error) {
	if dist < 0 || dist >= n.Len() {
		return nil, fmt.Errorf("explore: process %d of %d: %w", dist, n.Len(), network.ErrBadIndex)
	}
	procs := n.Processes()
	var actions []fsp.Action
	for _, p := range procs {
		actions = append(actions, p.Alphabet()...)
	}
	sort.Slice(actions, func(i, j int) bool { return actions[i] < actions[j] })
	w := 0
	for i, a := range actions {
		if i == 0 || a != actions[w-1] {
			actions[w] = a
			w++
		}
	}
	actions = actions[:w]
	aid := make(map[fsp.Action]uint32, len(actions))
	for i, a := range actions {
		aid[a] = uint32(i)
	}
	mc := &machine{
		m:      len(procs),
		dist:   dist,
		procs:  procs,
		tau:    make([][][]uint32, len(procs)),
		vis:    make([][][]visTrans, len(procs)),
		ownerA: make([]int32, len(actions)),
		ownerB: make([]int32, len(actions)),
	}
	for i := range mc.ownerA {
		mc.ownerA[i], mc.ownerB[i] = -1, -1
	}
	for j, p := range procs {
		for _, a := range p.Alphabet() {
			id := aid[a]
			if mc.ownerA[id] < 0 {
				mc.ownerA[id] = int32(j)
			} else if mc.ownerB[id] < 0 {
				mc.ownerB[id] = int32(j)
			} else {
				return nil, fmt.Errorf("explore: action %q has more than two owners: %w",
					a, network.ErrActionOwners)
			}
		}
	}
	for id, a := range actions {
		if mc.ownerB[id] < 0 {
			return nil, fmt.Errorf("explore: action %q has fewer than two owners: %w",
				a, network.ErrActionOwners)
		}
	}
	for j, p := range procs {
		mc.tau[j] = make([][]uint32, p.NumStates())
		mc.vis[j] = make([][]visTrans, p.NumStates())
		for s := 0; s < p.NumStates(); s++ {
			for _, t := range p.Out(fsp.State(s)) {
				if t.Label == fsp.Tau {
					mc.tau[j][s] = append(mc.tau[j][s], uint32(t.To))
				} else {
					mc.vis[j][s] = append(mc.vis[j][s], visTrans{aid[t.Label], uint32(t.To)})
				}
			}
		}
	}
	p := procs[dist]
	mc.distLeaf = make([]bool, p.NumStates())
	for s := 0; s < p.NumStates(); s++ {
		mc.distLeaf[s] = p.IsLeaf(fsp.State(s))
	}
	return mc, nil
}

func (mc *machine) startVec() []uint32 {
	vec := make([]uint32, mc.m)
	for j, p := range mc.procs {
		vec[j] = uint32(p.Start())
	}
	return vec
}

// expand enumerates the joint moves at vec: every component τ, and every
// handshake — enumerated once, from the smaller-indexed owner, as the
// cross product of the two owners' matching transitions. fn receives the
// successor (valid only during the call; it aliases scratch) and the move
// kind; returning false stops the enumeration. expand reports whether any
// move exists, even if fn stopped early.
func (mc *machine) expand(vec, scratch []uint32, fn func(succ []uint32, kind int) bool) bool {
	return mc.expandFull(vec, scratch, func(succ []uint32, kind int, pa, pb int32) bool {
		return fn(succ, kind)
	})
}

// expandFull is expand additionally reporting the participating process
// indices: a τ-move carries (pa, −1), a handshake the two owners (pa,
// pb) with pa < pb. The symmetry-reduced cycle passes need participants
// to classify an edge against the tracked process, which under the
// quotient is no longer always mc.dist.
func (mc *machine) expandFull(vec, scratch []uint32, fn func(succ []uint32, kind int, pa, pb int32) bool) bool {
	moved := false
	for j := 0; j < mc.m; j++ {
		kind := moveCtxTau
		if j == mc.dist {
			kind = moveDistTau
		}
		for _, to := range mc.tau[j][vec[j]] {
			moved = true
			copy(scratch, vec)
			scratch[j] = to
			if !fn(scratch, kind, int32(j), -1) {
				return true
			}
		}
	}
	for j := 0; j < mc.m; j++ {
		ts := mc.vis[j][vec[j]]
		for x := 0; x < len(ts); {
			a := ts[x].aid
			xe := x + 1
			for xe < len(ts) && ts[xe].aid == a {
				xe++
			}
			if mc.ownerA[a] != int32(j) {
				x = xe // the smaller owner enumerates this handshake
				continue
			}
			k := int(mc.ownerB[a])
			ps := mc.vis[k][vec[k]]
			lo := sort.Search(len(ps), func(i int) bool { return ps[i].aid >= a })
			kind := moveCtxHandshake
			if j == mc.dist || k == mc.dist {
				kind = moveDistHandshake
			}
			for pi := lo; pi < len(ps) && ps[pi].aid == a; pi++ {
				for xi := x; xi < xe; xi++ {
					moved = true
					copy(scratch, vec)
					scratch[j] = ts[xi].to
					scratch[k] = ps[pi].to
					if !fn(scratch, kind, int32(j), int32(k)) {
						return true
					}
				}
			}
			x = xe
		}
	}
	return moved
}

// symState is one run's symmetry apparatus: the verified automorphism
// elements, the orbit of the distinguished process (the positions its
// role can occupy in a canonical vector), and per-orbit-member leaf
// tables for classifying stuck representatives.
type symState struct {
	grp       *symred.Group
	distOrbit []int32
	jIdx      []int32  // process index → position in distOrbit, −1 elsewhere
	procLeaf  [][]bool // for j in distOrbit: procLeaf[j][s] = state s of process j is a leaf
}

// newSymState discovers the automorphism group and returns nil when the
// group is trivial or symmetry is tuned off — the nil receiver is the
// identity-canonicalization fast path everywhere.
func (mc *machine) newSymState(n *network.Network, o Options) *symState {
	if o.Tune.NoSymmetry {
		return nil
	}
	grp := symred.Discover(n)
	if grp.Trivial() {
		return nil
	}
	sy := &symState{grp: grp, distOrbit: grp.Orbit(mc.dist)}
	sy.jIdx = make([]int32, mc.m)
	for i := range sy.jIdx {
		sy.jIdx[i] = -1
	}
	for di, j := range sy.distOrbit {
		sy.jIdx[j] = int32(di)
	}
	sy.procLeaf = make([][]bool, mc.m)
	for _, j := range sy.distOrbit {
		p := mc.procs[j]
		pl := make([]bool, p.NumStates())
		for s := range pl {
			pl[s] = p.IsLeaf(fsp.State(s))
		}
		sy.procLeaf[j] = pl
	}
	return sy
}

// order is GroupOrder with the nil-is-trivial convention.
func (sy *symState) order() int {
	if sy == nil {
		return 1
	}
	return sy.grp.Order()
}

// checkSection4P validates the Section 4 assumption on the distinguished
// process: no τ-moves.
func (mc *machine) checkSection4P() error {
	if len(mc.tau[mc.dist]) == 0 {
		return nil
	}
	for _, ts := range mc.tau[mc.dist] {
		if len(ts) > 0 {
			return fmt.Errorf("explore: %s has τ-moves: %w", mc.procs[mc.dist].Name(), ErrShape)
		}
	}
	return nil
}
