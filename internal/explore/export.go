package explore

import (
	"fspnet/internal/guard"
	"fspnet/internal/network"
)

// This file is the exported reuse surface of the engine's internals —
// the compiled action-owner machine, the context-move enumerator, and
// the sharded vector interner — for solvers outside this package that
// walk the same joint space without composing the context. Its one
// consumer today is internal/game/belief, the compose-free S_a engine.

// Machine is the compiled form of a network for one distinguished
// process: per-process move tables indexed by dense action ids and the
// two owners of every action (Definition 2).
type Machine struct {
	mc *machine
}

// Compile builds the Machine for distinguished process dist of n.
func Compile(n *network.Network, dist int) (*Machine, error) {
	mc, err := compile(n, dist)
	if err != nil {
		return nil, err
	}
	return &Machine{mc: mc}, nil
}

// NumProcs returns the number of processes in the network.
func (M *Machine) NumProcs() int { return M.mc.m }

// StartVec returns a fresh copy of the joint start vector.
func (M *Machine) StartVec() []uint32 { return M.mc.startVec() }

// DistStart returns the start state of the distinguished process.
func (M *Machine) DistStart() uint32 { return uint32(M.mc.procs[M.mc.dist].Start()) }

// NumDistStates returns the state count of the distinguished process.
func (M *Machine) NumDistStates() int { return M.mc.procs[M.mc.dist].NumStates() }

// NumProcStates returns the state count of process i. Walkers that keep
// their own intern table use it to pick the narrowest per-component key
// width that still distinguishes every joint vector.
func (M *Machine) NumProcStates(i int) int { return M.mc.procs[i].NumStates() }

// DistLeaf reports whether state s of the distinguished process is a
// leaf.
func (M *Machine) DistLeaf(s uint32) bool { return M.mc.distLeaf[s] }

// VisMove is one visible transition of the distinguished process,
// compiled to a dense action id.
type VisMove struct {
	Aid int32
	To  uint32
}

// DistMoves returns the visible transitions of the distinguished process
// at state s, sorted by (Aid, To). The distinguished process of a game
// solve is τ-free, so this is its whole move relation.
func (M *Machine) DistMoves(s uint32) []VisMove {
	ts := M.mc.vis[M.mc.dist][s]
	out := make([]VisMove, len(ts))
	for i, t := range ts {
		out[i] = VisMove{Aid: int32(t.aid), To: t.to}
	}
	return out
}

// CheckDistTauFree validates the Figure 4 / Section 4 assumption that
// the distinguished process has no τ-moves, returning an ErrShape-based
// error otherwise.
func (M *Machine) CheckDistTauFree() error { return M.mc.checkSection4P() }

// CheckAcyclicShape validates the Section 3 domain: the distinguished
// process and its composed context must both be acyclic. budget bounds
// the context-product walk the check may need; g is polled inside it.
func (M *Machine) CheckAcyclicShape(budget int, g *guard.G) error {
	return M.mc.checkAcyclicShape(budget, g)
}

// CtxMoves enumerates the moves of the composed context at the joint
// vector vec (the distinguished component is carried along frozen):
// member τ and context-internal handshakes — the context's τ-moves —
// are reported with aid −1, and solo moves on an action shared with the
// distinguished process with that action's id. succ aliases scratch and
// is valid only during the call; returning false stops the enumeration.
func (M *Machine) CtxMoves(vec, scratch []uint32, fn func(succ []uint32, aid int32) bool) {
	M.mc.ctxExpandLabeled(vec, scratch, fn)
}

// Interner is the sharded intern table of joint state vectors, exported
// for engines that enumerate a sub-relation of the joint graph (the
// belief engine's context walk). Intern is safe for concurrent use.
type Interner struct {
	in *interner
}

// NewInterner returns an empty interner for vectors of m components.
func NewInterner(m int) *Interner { return &Interner{in: newInterner(m)} }

// PackVec packs vec into kb (little-endian uint32s, len(kb) = 4·len(vec))
// and returns kb — the key bytes Intern and Gid consume.
func PackVec(kb []byte, vec []uint32) []byte { return keyBytes(kb, vec) }

// Intern records vec (with key kb) if unseen and reports whether it was
// fresh.
func (I *Interner) Intern(kb []byte, vec []uint32) bool { return I.in.intern(kb, vec) }

// Index glues the per-shard id spaces into one dense global id space.
// Build it only after all Intern calls have finished.
func (I *Interner) Index() *Index { return &Index{ix: I.in.buildIndex()} }

// Index maps interned vectors to dense global ids and back.
type Index struct {
	ix *index
}

// Size returns the number of interned vectors.
func (X *Index) Size() int { return X.ix.size() }

// Vec returns the joint vector of a dense id. The slice aliases the
// intern arena; callers must not modify it.
func (X *Index) Vec(gid int) []uint32 { return X.ix.vec(gid) }

// Gid returns the dense id of an interned vector key.
func (X *Index) Gid(kb []byte) int { return X.ix.gid(kb) }
