package reduce

import (
	"errors"
	"math/rand"
	"testing"

	"fspnet/internal/fsp"
	"fspnet/internal/network"
	"fspnet/internal/sat"
	"fspnet/internal/success"
)

// paperFormula is the example the paper illustrates Figures 5 and 6 with:
// (x1 ∨ ¬x2 ∨ x3) ∧ (x1 ∨ x2 ∨ ¬x3).
func paperFormula() *sat.CNF {
	return &sat.CNF{Vars: 3, Clauses: []sat.Clause{
		{1, -2, 3},
		{1, 2, -3},
	}}
}

func scOf(t *testing.T, n *network.Network) bool {
	t.Helper()
	q, err := n.Context(0, false)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := success.CollaborationAcyclic(n.Process(0), q)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func suOf(t *testing.T, n *network.Network) bool {
	t.Helper()
	q, err := n.Context(0, false)
	if err != nil {
		t.Fatal(err)
	}
	su, err := success.UnavoidableAcyclic(n.Process(0), q)
	if err != nil {
		t.Fatal(err)
	}
	return su
}

func TestFigure5Gadget(t *testing.T) {
	f := paperFormula()
	n, err := SatGadgetCase1(f)
	if err != nil {
		t.Fatal(err)
	}
	// Structural claims of Theorem 1 case (1).
	if !n.Graph().IsTree() {
		t.Error("C_N must be a tree")
	}
	p := n.Process(0)
	if p.Classify() == fsp.ClassCyclic {
		t.Error("P must be acyclic")
	}
	for i := 1; i < n.Len(); i++ {
		k := n.Process(i)
		if k.Classify() != fsp.ClassLinear {
			t.Errorf("%s must be linear", k.Name())
		}
		if k.NumStates() > 4 {
			t.Errorf("%s must be O(1): %d states", k.Name(), k.NumStates())
		}
		if got := len(fsp.SharedActions(p, k)); got != 1 {
			t.Errorf("|Σ_P ∩ Σ_%s| = %d, want 1", k.Name(), got)
		}
	}
	// The paper's formula is satisfiable (x1 = true).
	if !scOf(t, n) {
		t.Error("S_c must hold for the satisfiable example")
	}
	bn, err := BlockingGadgetCase1(f)
	if err != nil {
		t.Fatal(err)
	}
	if suOf(t, bn) {
		t.Error("¬S_u must hold for the satisfiable example")
	}
}

func TestFigure6Gadget(t *testing.T) {
	f := paperFormula()
	n, err := SatGadgetCase2(f)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n.Len(); i++ {
		p := n.Process(i)
		if c := p.Classify(); c != fsp.ClassTree && c != fsp.ClassLinear {
			t.Errorf("%s is %s, want a tree FSP", p.Name(), c)
		}
		if p.NumStates() > 16 {
			t.Errorf("%s must be O(1): %d states", p.Name(), p.NumStates())
		}
	}
	if !scOf(t, n) {
		t.Error("S_c must hold for the satisfiable example")
	}
	bn, err := BlockingGadgetCase2(f)
	if err != nil {
		t.Fatal(err)
	}
	if suOf(t, bn) {
		t.Error("¬S_u must hold for the satisfiable example")
	}
}

func TestCase1MatchesDPLL(t *testing.T) {
	r := rand.New(rand.NewSource(501))
	for i := 0; i < 40; i++ {
		f := sat.RandomRestricted3SAT(r, 1+r.Intn(4))
		want, _ := sat.Solve(f)
		n, err := SatGadgetCase1(f)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if got := scOf(t, n); got != want {
			t.Fatalf("iter %d: S_c=%v but SAT=%v for %s", i, got, want, f)
		}
		bn, err := BlockingGadgetCase1(f)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if got := !suOf(t, bn); got != want {
			t.Fatalf("iter %d: ¬S_u=%v but SAT=%v for %s", i, got, want, f)
		}
	}
}

func TestCase1UnsatisfiableFixture(t *testing.T) {
	// (x1) ∧ (¬x1): within the restricted fragment and unsatisfiable.
	f := &sat.CNF{Vars: 1, Clauses: []sat.Clause{{1}, {-1}}}
	n, err := SatGadgetCase1(f)
	if err != nil {
		t.Fatal(err)
	}
	if scOf(t, n) {
		t.Error("S_c must fail for an unsatisfiable formula")
	}
	bn, err := BlockingGadgetCase1(f)
	if err != nil {
		t.Fatal(err)
	}
	if !suOf(t, bn) {
		t.Error("S_u must hold (no blocking) for an unsatisfiable formula")
	}
}

func TestCase2MatchesDPLL(t *testing.T) {
	r := rand.New(rand.NewSource(503))
	for i := 0; i < 25; i++ {
		f := sat.RandomRestricted3SAT(r, 1+r.Intn(3))
		if len(f.Clauses) == 0 {
			continue
		}
		want, _ := sat.Solve(f)
		n, err := SatGadgetCase2(f)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if got := scOf(t, n); got != want {
			t.Fatalf("iter %d: S_c=%v but SAT=%v for %s", i, got, want, f)
		}
		bn, err := BlockingGadgetCase2(f)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if got := !suOf(t, bn); got != want {
			t.Fatalf("iter %d: ¬S_u=%v but SAT=%v for %s", i, got, want, f)
		}
	}
}

func TestFigure7Gadget(t *testing.T) {
	// The paper's Figure 7 example: ∃x1 ∀x2 ∃x3 (x1∨¬x2∨x3) ∧ (x1∨x2∨¬x3),
	// which is valid (set x1 = true).
	q := &sat.QBF{
		Prefix: []sat.Quantifier{sat.Exists, sat.ForAll, sat.Exists},
		Matrix: *paperFormula(),
	}
	n, err := QbfGadget(q)
	if err != nil {
		t.Fatal(err)
	}
	if !n.Graph().IsTree() {
		t.Error("C_N must be a tree")
	}
	p := n.Process(0)
	for _, tr := range p.Transitions() {
		if tr.Label == fsp.Tau {
			t.Fatal("P must be τ-free for the game")
		}
	}
	for i := 1; i < n.Len(); i++ {
		if c := n.Process(i).Classify(); c != fsp.ClassTree && c != fsp.ClassLinear {
			t.Errorf("%s is %s, want a tree FSP", n.Process(i).Name(), c)
		}
	}
	ctx, err := n.Context(0, false)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := success.AdversityAcyclic(p, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !sa {
		t.Error("S_a must hold for the valid paper QBF")
	}
}

func TestQbfGadgetMatchesSolver(t *testing.T) {
	r := rand.New(rand.NewSource(507))
	for i := 0; i < 30; i++ {
		q := sat.RandomQBF(r, 1+r.Intn(4), 1+r.Intn(4))
		want, err := sat.SolveQBF(q)
		if err != nil {
			t.Fatal(err)
		}
		n, err := QbfGadget(q)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		ctx, err := n.Context(0, false)
		if err != nil {
			t.Fatal(err)
		}
		sa, err := success.AdversityAcyclic(n.Process(0), ctx)
		if err != nil {
			t.Fatal(err)
		}
		if sa != want {
			t.Fatalf("iter %d: S_a=%v but QBF=%v for %s", i, sa, want, q)
		}
	}
}

func TestGadgetValidation(t *testing.T) {
	big := &sat.CNF{Vars: 4, Clauses: []sat.Clause{{1, 2, 3, 4}}}
	if _, err := SatGadgetCase1(big); !errors.Is(err, ErrUnsupported) {
		t.Errorf("err = %v, want ErrUnsupported", err)
	}
	dup := &sat.CNF{Vars: 1, Clauses: []sat.Clause{{1, -1}}}
	if _, err := SatGadgetCase2(dup); !errors.Is(err, ErrUnsupported) {
		t.Errorf("err = %v, want ErrUnsupported", err)
	}
	empty := &sat.CNF{Vars: 1}
	if _, err := SatGadgetCase2(empty); !errors.Is(err, ErrUnsupported) {
		t.Errorf("err = %v, want ErrUnsupported", err)
	}
	badQ := &sat.QBF{Prefix: []sat.Quantifier{sat.Exists}, Matrix: *big}
	badQ.Matrix.Vars = 4
	badQ.Prefix = []sat.Quantifier{sat.Exists, sat.Exists, sat.Exists, sat.Exists}
	if _, err := QbfGadget(badQ); !errors.Is(err, ErrUnsupported) {
		t.Errorf("err = %v, want ErrUnsupported", err)
	}
}

func TestCase1LinearVariantMatchesDPLL(t *testing.T) {
	r := rand.New(rand.NewSource(509))
	for i := 0; i < 30; i++ {
		f := sat.RandomRestricted3SAT(r, 1+r.Intn(4))
		want, _ := sat.Solve(f)
		n, err := SatGadgetCase1Linear(f)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		// Structural claims: distinguished process linear, exactly one
		// non-linear acyclic process in the context, tree C_N.
		if n.Process(0).Classify() != fsp.ClassLinear {
			t.Fatal("distinguished process must be linear")
		}
		nonLinear := 0
		for j := 1; j < n.Len(); j++ {
			if n.Process(j).Classify() != fsp.ClassLinear {
				nonLinear++
			}
		}
		if nonLinear > 1 {
			t.Fatalf("%d non-linear context processes, want ≤ 1", nonLinear)
		}
		if !n.Graph().IsTree() {
			t.Fatal("C_N must be a tree")
		}
		if got := scOf(t, n); got != want {
			t.Fatalf("iter %d: S_c=%v but SAT=%v for %s", i, got, want, f)
		}
	}
}
