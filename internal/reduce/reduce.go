// Package reduce implements the executable hardness gadgets of the paper:
//
//   - Theorem 1, case (1): 3SAT → network with a tree C_N in which every
//     process but the distinguished one is an O(1) linear FSP and every
//     pair shares at most one symbol; S_c (and, with the blocking variant,
//     ¬S_u) holds iff the formula is satisfiable (Figure 5).
//   - Theorem 1, case (2): 3SAT → network of O(1) tree FSPs (Figure 6).
//   - Theorem 2: QBF → tree network in which all processes except the
//     distinguished one are trees; S_a holds iff the formula is valid
//     (Figure 7).
//
// The constructions are counting gadgets: a clause process is a bounded
// counter of capacity equal to its literal count; choosing a literal
// "spends" the clause budget of every occurrence it falsifies, and a final
// sweep spends one more unit per clause, so the sweep completes exactly
// when every clause kept a true literal. The original figure artwork is
// not included in the paper text, so these are behavior-equivalent gadgets
// with the same structural parameters, validated against independent
// SAT/QBF solvers.
package reduce

import (
	"errors"
	"fmt"

	"fspnet/internal/fsp"
	"fspnet/internal/sat"
)

// ErrUnsupported reports a formula outside the gadget's fragment.
var ErrUnsupported = errors.New("reduce: formula outside supported fragment")

// checkCNF validates the shape every gadget requires: ≤3 literals per
// clause and no variable repeated within a clause.
func checkCNF(f *sat.CNF) error {
	if err := f.Validate(); err != nil {
		return err
	}
	for i, c := range f.Clauses {
		if len(c) > 3 {
			return fmt.Errorf("clause %d has %d literals: %w", i, len(c), ErrUnsupported)
		}
		seen := make(map[int]bool, len(c))
		for _, l := range c {
			if seen[l.Var()] {
				return fmt.Errorf("clause %d repeats x%d: %w", i, l.Var(), ErrUnsupported)
			}
			seen[l.Var()] = true
		}
	}
	return nil
}

// clauseAction returns the handshake symbol of clause j.
func clauseAction(j int) fsp.Action { return fsp.Action(fmt.Sprintf("c%d", j)) }

// occurrenceAction returns the handshake symbol of literal l's occurrence
// in clause j (Theorem 1 case 2 and Theorem 2 use per-occurrence symbols).
func occurrenceAction(l sat.Lit, j int) fsp.Action {
	if l.Neg() {
		return fsp.Action(fmt.Sprintf("n%d_%d", l.Var(), j))
	}
	return fsp.Action(fmt.Sprintf("p%d_%d", l.Var(), j))
}

// tokenAction returns the daisy-chain token emitted by clause process j.
func tokenAction(j int) fsp.Action { return fsp.Action(fmt.Sprintf("t%d", j)) }

// counter builds the linear clause process of capacity n on symbol a.
func counter(name string, a fsp.Action, n int) *fsp.FSP {
	acts := make([]fsp.Action, n)
	for i := range acts {
		acts[i] = a
	}
	return fsp.Linear(name, acts...)
}

// falseOccurrences returns, for the choice "variable v gets value val",
// the clauses whose occurrence of v is falsified.
func falseOccurrences(f *sat.CNF, v int, val bool) []int {
	lit := sat.Lit(v)
	if val {
		lit = -lit // setting v true falsifies ¬v occurrences
	}
	return f.OccurrencesOf(lit)
}
