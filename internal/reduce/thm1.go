package reduce

import (
	"fmt"

	"fspnet/internal/fsp"
	"fspnet/internal/network"
	"fspnet/internal/sat"
)

// SatGadgetCase1 builds the Theorem 1 case (1) network for S_c: a star
// (hence tree) C_N with the distinguished acyclic process P at index 0 and
// one O(1) linear counter per clause, each sharing exactly one symbol with
// P. S_c(P, Q) holds iff f is satisfiable.
//
// P walks the variables, committing each to a value by a τ-move and then
// spending one unit of clause j's budget for every occurrence falsified by
// the commitment; a final sweep spends one more unit per clause. Clause
// j's counter has capacity |clause j|, so the sweep (and with it P's only
// leaf) completes iff every clause kept at least one true literal.
func SatGadgetCase1(f *sat.CNF) (*network.Network, error) {
	if err := checkCNF(f); err != nil {
		return nil, err
	}
	p, err := case1Distinguished(f, false)
	if err != nil {
		return nil, err
	}
	procs := []*fsp.FSP{p}
	for j := range f.Clauses {
		procs = append(procs,
			counter(fmt.Sprintf("K%d", j), clauseAction(j), len(f.Clauses[j])))
	}
	return network.New(procs...)
}

// BlockingGadgetCase1 builds the Theorem 1 case (1) network for potential
// blocking: ¬S_u(P, Q) holds iff f is satisfiable. P is the S_c gadget
// process with a τ-escape to a fresh leaf before every clause handshake
// (so unsatisfying branches never strand it) and a final gate that
// handshakes twice with a capacity-one counter — the only reachable stuck
// state off a leaf, reachable exactly when the sweep completed.
func BlockingGadgetCase1(f *sat.CNF) (*network.Network, error) {
	if err := checkCNF(f); err != nil {
		return nil, err
	}
	p, err := case1Distinguished(f, true)
	if err != nil {
		return nil, err
	}
	procs := []*fsp.FSP{p}
	for j := range f.Clauses {
		procs = append(procs,
			counter(fmt.Sprintf("K%d", j), clauseAction(j), len(f.Clauses[j])))
	}
	procs = append(procs, counter("G", "g", 1))
	return network.New(procs...)
}

// case1Distinguished builds P (blocking=false) or P′ (blocking=true).
func case1Distinguished(f *sat.CNF, blocking bool) (*fsp.FSP, error) {
	b := fsp.NewBuilder("P")
	cur := b.State("v1")

	// emit appends a clause handshake; in the blocking variant every
	// handshake state gets a τ-escape to a fresh leaf so that exhausted
	// counters never strand P′ off-leaf before the gate.
	emit := func(from fsp.State, j int, name string) fsp.State {
		next := b.State(name)
		b.Add(from, clauseAction(j), next)
		if blocking {
			b.AddTau(from, b.State(name+"·esc"))
		}
		return next
	}

	for v := 1; v <= f.Vars; v++ {
		merge := b.State(fmt.Sprintf("v%d", v+1))
		for _, val := range []bool{true, false} {
			tag := "F"
			if val {
				tag = "T"
			}
			branch := b.State(fmt.Sprintf("v%d%s", v, tag))
			b.AddTau(cur, branch)
			at := branch
			for k, j := range falseOccurrences(f, v, val) {
				at = emit(at, j, fmt.Sprintf("v%d%s.%d", v, tag, k))
			}
			b.AddTau(at, merge)
		}
		cur = merge
	}
	// Final sweep: one handshake per clause.
	for j := range f.Clauses {
		cur = emit(cur, j, fmt.Sprintf("sweep%d", j))
	}
	if blocking {
		// Gate: the counter G has capacity one, so the second g blocks P′
		// at a non-leaf — iff the sweep was completable.
		g1 := b.State("gate1")
		b.Add(cur, "g", g1)
		blockedAt := b.State("gate2")
		b.Add(g1, "g", blockedAt)
	}
	return b.Build()
}

// SatGadgetCase2 builds the Theorem 1 case (2) network for S_c: every
// process is an O(1) tree FSP. One variable process per variable commits
// to a polarity by a τ-move and then offers any subset of that polarity's
// occurrence handshakes in any order; one clause process per clause takes
// exactly one of its occurrence handshakes and then passes a token down a
// daisy chain ending at the distinguished process P = t_m. P reaches its
// leaf iff every clause consumed a true-literal occurrence consistent
// with the commitments, i.e. iff f is satisfiable.
func SatGadgetCase2(f *sat.CNF) (*network.Network, error) {
	return case2Network(f, false)
}

// BlockingGadgetCase2 is the potential-blocking variant of case (2):
// ¬S_u(P, Q) holds iff f is satisfiable. P may τ-escape instead of taking
// the final token, and after the token it handshakes twice with a
// capacity-one gate counter.
func BlockingGadgetCase2(f *sat.CNF) (*network.Network, error) {
	return case2Network(f, true)
}

func case2Network(f *sat.CNF, blocking bool) (*network.Network, error) {
	if err := checkCNF(f); err != nil {
		return nil, err
	}
	m := len(f.Clauses)
	if m == 0 {
		return nil, fmt.Errorf("empty formula has no token chain: %w", ErrUnsupported)
	}

	// Distinguished P (index 0).
	bp := fsp.NewBuilder("P")
	root := bp.State("0")
	got := bp.State("1")
	bp.Add(root, tokenAction(m-1), got)
	if blocking {
		bp.AddTau(root, bp.State("esc"))
		g1 := bp.State("g1")
		bp.Add(got, "g", g1)
		bp.Add(g1, "g", bp.State("g2"))
	}
	p, err := bp.Build()
	if err != nil {
		return nil, err
	}
	procs := []*fsp.FSP{p}

	// Clause processes: branch on one occurrence handshake, then receive
	// the previous token (if any) and emit the next.
	for j := 0; j < m; j++ {
		bk := fsp.NewBuilder(fmt.Sprintf("K%d", j))
		kroot := bk.State("0")
		mid := make([]fsp.State, 0, len(f.Clauses[j]))
		for _, l := range f.Clauses[j] {
			s := bk.State("got·" + string(occurrenceAction(l, j)))
			bk.Add(kroot, occurrenceAction(l, j), s)
			mid = append(mid, s)
		}
		for i, s := range mid {
			at := s
			if j > 0 {
				recv := bk.State(fmt.Sprintf("recv%d", i))
				bk.Add(at, tokenAction(j-1), recv)
				at = recv
			}
			bk.Add(at, tokenAction(j), bk.State(fmt.Sprintf("done%d", i)))
		}
		k, err := bk.Build()
		if err != nil {
			return nil, err
		}
		procs = append(procs, k)
	}

	// Variable processes: τ-commit to a polarity, then a subset tree over
	// that polarity's occurrence handshakes (any subset, any order).
	for v := 1; v <= f.Vars; v++ {
		bv := fsp.NewBuilder(fmt.Sprintf("V%d", v))
		vroot := bv.State("0")
		used := false
		for _, val := range []bool{true, false} {
			lit := sat.Lit(v)
			if !val {
				lit = -lit
			}
			var occs []fsp.Action
			for _, j := range f.OccurrencesOf(lit) {
				occs = append(occs, occurrenceAction(lit, j))
			}
			branch := bv.State(fmt.Sprintf("set%v", val))
			bv.AddTau(vroot, branch)
			if len(occs) > 0 {
				used = true
			}
			subsetTree(bv, branch, occs)
		}
		if !used {
			continue // variable absent from the formula: no process needed
		}
		vp, err := bv.Build()
		if err != nil {
			return nil, err
		}
		procs = append(procs, vp)
	}

	if blocking {
		procs = append(procs, counter("G", "g", 1))
	}
	return network.New(procs...)
}

// subsetTree adds, below root, one path per ordered subset of actions
// (sequences without repetition), so the process can offer the actions in
// any order and stop at any point. With at most 2–3 actions the tree has
// O(1) size.
func subsetTree(b *fsp.Builder, root fsp.State, actions []fsp.Action) {
	var grow func(from fsp.State, remaining []fsp.Action, name string)
	grow = func(from fsp.State, remaining []fsp.Action, name string) {
		for i, a := range actions {
			present := false
			for _, r := range remaining {
				if r == a {
					present = true
				}
			}
			if !present {
				continue
			}
			rest := make([]fsp.Action, 0, len(remaining)-1)
			for _, r := range remaining {
				if r != a {
					rest = append(rest, r)
				}
			}
			next := b.State(fmt.Sprintf("%s·%d", name, i))
			b.Add(from, a, next)
			grow(next, rest, fmt.Sprintf("%s·%d", name, i))
		}
	}
	grow(root, actions, "s")
}

// SatGadgetCase1Linear is the variant of Theorem 1 case (1) in which the
// distinguished process is itself linear and the single non-linear
// acyclic process sits in the context: P (index 0) performs one final
// handshake that the context's chooser process A can only offer after
// completing a satisfying sweep, so S_c(P, Q) holds iff f is satisfiable.
func SatGadgetCase1Linear(f *sat.CNF) (*network.Network, error) {
	if err := checkCNF(f); err != nil {
		return nil, err
	}
	chooser, err := case1Distinguished(f, false)
	if err != nil {
		return nil, err
	}
	// Append the completion handshake to the chooser's single leaf (the
	// sweep end).
	b := fsp.NewBuilder("A")
	for s := 0; s < chooser.NumStates(); s++ {
		b.State(chooser.StateName(fsp.State(s)))
	}
	b.SetStart(chooser.Start())
	for _, t := range chooser.Transitions() {
		b.Add(t.From, t.Label, t.To)
	}
	leaves := chooser.Leaves()
	if len(leaves) != 1 {
		return nil, fmt.Errorf("chooser has %d leaves, want 1: %w", len(leaves), ErrUnsupported)
	}
	b.Add(leaves[0], "done", b.State("finished"))
	a, err := b.Build()
	if err != nil {
		return nil, err
	}

	procs := []*fsp.FSP{fsp.Linear("P", "done"), a}
	for j := range f.Clauses {
		procs = append(procs,
			counter(fmt.Sprintf("K%d", j), clauseAction(j), len(f.Clauses[j])))
	}
	return network.New(procs...)
}
