package reduce

import (
	"fmt"

	"fspnet/internal/fsp"
	"fspnet/internal/network"
	"fspnet/internal/sat"
)

// QbfGadget builds the Theorem 2 network: a star (hence tree) C_N whose
// distinguished process P is acyclic and τ-free while every context
// process is a tree FSP; S_a(P, Q) holds iff the prenex QBF is valid.
//
// The game proceeds through the quantifier prefix. An existential variable
// is resolved by P's hidden branching on the single action uᵢ (player P
// chooses its successor state); a universal variable is resolved by the
// adversary's choice between the two actions vᵢᵀ and vᵢᶠ offered by the
// variable's tree process (player Q chooses the action). Every resolution
// spends one unit of clause j's budget per occurrence it falsifies, and a
// final sweep spends one more unit per clause; clause counters have
// capacity |clause|, so the sweep — and P's only winning leaf — is
// reachable iff every clause kept a true literal. All context processes
// are deterministic, so Q's only powers are exactly the universal choices
// and budget-exhaustion blocking, making the game value the QBF value.
func QbfGadget(q *sat.QBF) (*network.Network, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := checkCNF(&q.Matrix); err != nil {
		return nil, err
	}
	f := &q.Matrix

	bp := fsp.NewBuilder("P")
	cur := bp.State("q1")

	// emitChain appends the falsified-occurrence handshakes for setting
	// variable v to val, starting at from, and returns the final state.
	emitChain := func(from fsp.State, v int, val bool, tag string) fsp.State {
		at := from
		for k, j := range falseOccurrences(f, v, val) {
			next := bp.State(fmt.Sprintf("%s.%d", tag, k))
			bp.Add(at, clauseAction(j), next)
			at = next
		}
		return at
	}

	for v := 1; v <= f.Vars; v++ {
		next := bp.State(fmt.Sprintf("q%d", v+1))
		if q.Prefix[v-1] == sat.Exists {
			// Player P picks one of the two uᵥ-successors.
			for _, val := range []bool{true, false} {
				branch := bp.State(fmt.Sprintf("x%d=%v", v, val))
				bp.Add(cur, existsAction(v), branch)
				end := emitChain(branch, v, val, fmt.Sprintf("x%d=%v", v, val))
				bp.Add(end, stageAction(v), next)
			}
		} else {
			// Player Q picks the action vᵥᵀ or vᵥᶠ.
			for _, val := range []bool{true, false} {
				branch := bp.State(fmt.Sprintf("x%d:=%v", v, val))
				bp.Add(cur, forallAction(v, val), branch)
				end := emitChain(branch, v, val, fmt.Sprintf("x%d:=%v", v, val))
				bp.Add(end, stageAction(v), next)
			}
		}
		cur = next
	}
	for j := range f.Clauses {
		next := bp.State(fmt.Sprintf("sweep%d", j))
		bp.Add(cur, clauseAction(j), next)
		cur = next
	}
	p, err := bp.Build()
	if err != nil {
		return nil, err
	}
	procs := []*fsp.FSP{p}

	// Variable processes.
	for v := 1; v <= f.Vars; v++ {
		bv := fsp.NewBuilder(fmt.Sprintf("X%d", v))
		root := bv.State("0")
		if q.Prefix[v-1] == sat.Exists {
			mid := bv.State("picked")
			bv.Add(root, existsAction(v), mid)
			bv.Add(mid, stageAction(v), bv.State("done"))
		} else {
			for _, val := range []bool{true, false} {
				mid := bv.State(fmt.Sprintf("set%v", val))
				bv.Add(root, forallAction(v, val), mid)
				bv.Add(mid, stageAction(v), bv.State(fmt.Sprintf("done%v", val)))
			}
		}
		xp, err := bv.Build()
		if err != nil {
			return nil, err
		}
		procs = append(procs, xp)
	}
	// Clause counters.
	for j := range f.Clauses {
		procs = append(procs,
			counter(fmt.Sprintf("K%d", j), clauseAction(j), len(f.Clauses[j])))
	}
	return network.New(procs...)
}

// existsAction is the single action resolving existential variable v.
func existsAction(v int) fsp.Action { return fsp.Action(fmt.Sprintf("u%d", v)) }

// forallAction is the adversary's action setting universal variable v.
func forallAction(v int, val bool) fsp.Action {
	if val {
		return fsp.Action(fmt.Sprintf("v%dT", v))
	}
	return fsp.Action(fmt.Sprintf("v%dF", v))
}

// stageAction closes variable v's stage; it keeps the variable process a
// second owner of a P action even when the variable has no occurrences.
func stageAction(v int) fsp.Action { return fsp.Action(fmt.Sprintf("w%d", v)) }
