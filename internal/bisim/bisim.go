// Package bisim implements strong and weak (observational) bisimulation
// equivalence for FSPs by partition refinement. The paper's possibility
// equivalence sits strictly between failure equivalence and observational
// equivalence; this package supplies the top of that spectrum, following
// the equivalence taxonomy of the authors' companion paper [KS]
// ("CCS Expressions, Finite State Processes, and Three Problems of
// Equivalence", PODC 1983).
package bisim

import (
	"sort"

	"fspnet/internal/fsp"
)

// Strong reports whether the start states of p and q are strongly
// bisimilar: every transition (including τ) of one can be matched by an
// identical-label transition of the other into bisimilar states.
func Strong(p, q *fsp.FSP) bool {
	u := newUnion(p, q)
	return u.equivalent(strongSteps(u))
}

// Weak reports whether the start states are weakly (observationally)
// bisimilar: visible moves are matched up to τ-closure (⇒ᵃ), and τ-moves
// by possibly-empty τ-sequences. Computed as strong bisimulation on the
// saturated (double-arrow) transition systems, with ε-self-loops making
// τ-matching optional.
func Weak(p, q *fsp.FSP) bool {
	u := newUnion(p, q)
	return u.equivalent(weakSteps(u))
}

// union is the disjoint union of two FSPs: states of q are shifted by
// p.NumStates().
type union struct {
	p, q   *fsp.FSP
	shift  int
	total  int
	labels []fsp.Action // sorted label universe (τ first when present)
}

func newUnion(p, q *fsp.FSP) *union {
	u := &union{p: p, q: q, shift: p.NumStates(), total: p.NumStates() + q.NumStates()}
	seen := map[fsp.Action]bool{}
	add := func(as []fsp.Action) {
		for _, a := range as {
			if !seen[a] {
				seen[a] = true
				u.labels = append(u.labels, a)
			}
		}
	}
	add(p.Alphabet())
	add(q.Alphabet())
	sort.Slice(u.labels, func(i, j int) bool { return u.labels[i] < u.labels[j] })
	u.labels = append([]fsp.Action{fsp.Tau}, u.labels...)
	return u
}

// steps maps (state, labelIndex) to the sorted successor set in the union
// numbering.
type steps func(state, label int) []int

// strongSteps is the plain one-step transition function.
func strongSteps(u *union) steps {
	return func(s, li int) []int {
		lbl := u.labels[li]
		var out []int
		if s < u.shift {
			for _, t := range u.p.Out(fsp.State(s)) {
				if t.Label == lbl {
					out = append(out, int(t.To))
				}
			}
		} else {
			for _, t := range u.q.Out(fsp.State(s - u.shift)) {
				if t.Label == lbl {
					out = append(out, int(t.To)+u.shift)
				}
			}
		}
		sort.Ints(out)
		return dedupInts(out)
	}
}

// weakSteps is the saturated transition function: ⇒ᵃ for visible a, and
// ⇒ᵋ (including staying put) for τ.
func weakSteps(u *union) steps {
	return func(s, li int) []int {
		lbl := u.labels[li]
		var out []int
		if s < u.shift {
			if lbl == fsp.Tau {
				for _, t := range u.p.TauClosure([]fsp.State{fsp.State(s)}) {
					out = append(out, int(t))
				}
			} else {
				for _, t := range u.p.Step([]fsp.State{fsp.State(s)}, lbl) {
					out = append(out, int(t))
				}
			}
		} else {
			base := fsp.State(s - u.shift)
			if lbl == fsp.Tau {
				for _, t := range u.q.TauClosure([]fsp.State{base}) {
					out = append(out, int(t)+u.shift)
				}
			} else {
				for _, t := range u.q.Step([]fsp.State{base}, lbl) {
					out = append(out, int(t)+u.shift)
				}
			}
		}
		sort.Ints(out)
		return dedupInts(out)
	}
}

// equivalent runs naive partition refinement over the union under the
// given step function and checks the two start states land in one class.
// For the weak case the ε-closure is already folded into the steps, so a
// τ-move can always be matched by "staying" (the closure contains the
// state itself).
func (u *union) equivalent(st steps) bool {
	// class[s] = current block id.
	class := make([]int, u.total)
	numClasses := 1
	for changed := true; changed; {
		changed = false
		// Signature: for each label, the sorted set of successor classes.
		type sig string
		index := make(map[sig]int)
		next := make([]int, u.total)
		nextCount := 0
		for s := 0; s < u.total; s++ {
			key := signature(u, st, class, s)
			id, ok := index[sig(key)]
			if !ok {
				id = nextCount
				nextCount++
				index[sig(key)] = id
			}
			next[s] = id
		}
		if nextCount != numClasses {
			changed = true
		} else {
			for s := 0; s < u.total; s++ {
				if next[s] != class[s] {
					changed = true
					break
				}
			}
		}
		class = next
		numClasses = nextCount
	}
	return class[int(u.p.Start())] == class[int(u.q.Start())+u.shift]
}

// signature canonicalizes a state's per-label successor-class sets,
// prefixed with the class it currently belongs to so refinement is
// monotone.
func signature(u *union, st steps, class []int, s int) string {
	out := []byte{byte('0' + class[s]%10)}
	out = appendInt(out, class[s])
	for li := range u.labels {
		out = append(out, '|')
		succ := st(s, li)
		classes := make([]int, 0, len(succ))
		for _, t := range succ {
			classes = append(classes, class[t])
		}
		sort.Ints(classes)
		classes = dedupInts(classes)
		for _, c := range classes {
			out = appendInt(out, c)
			out = append(out, ',')
		}
	}
	return string(out)
}

func appendInt(b []byte, v int) []byte {
	if v >= 10 {
		b = appendInt(b, v/10)
	}
	return append(b, byte('0'+v%10))
}

func dedupInts(xs []int) []int {
	if len(xs) < 2 {
		return xs
	}
	w := 1
	for i := 1; i < len(xs); i++ {
		if xs[i] != xs[w-1] {
			xs[w] = xs[i]
			w++
		}
	}
	return xs[:w]
}
