package bisim

import (
	"math/rand"
	"testing"

	"fspnet/internal/fsp"
	"fspnet/internal/fsptest"
	"fspnet/internal/lang"
	"fspnet/internal/poss"
)

func TestStrongBasics(t *testing.T) {
	p := fsp.Linear("P", "a", "b")
	q := fsp.Linear("Q", "a", "b")
	if !Strong(p, q) {
		t.Error("identical chains are strongly bisimilar")
	}
	r := fsp.Linear("R", "a", "c")
	if Strong(p, r) {
		t.Error("different labels are not bisimilar")
	}
	// Nondeterministic duplicate branch is still strongly bisimilar.
	b := fsp.NewBuilder("D")
	s0, s1a, s1b, s2 := b.State("0"), b.State("1a"), b.State("1b"), b.State("2")
	b.Add(s0, "a", s1a)
	b.Add(s0, "a", s1b)
	b.Add(s1a, "b", s2)
	b.Add(s1b, "b", s2)
	if !Strong(p, b.MustBuild()) {
		t.Error("duplicated branch is strongly bisimilar to the chain")
	}
}

// TestClassicCounterexample: a·(b+c) vs a·b + a·c are language-equivalent
// but not bisimilar (the classic branching-time distinction).
func TestClassicCounterexample(t *testing.T) {
	outer := fsp.TreeFromPaths("Outer", []fsp.Action{"a", "b"}, []fsp.Action{"a", "c"})
	// Outer shares the a-prefix: a·(b+c). Inner splits at the root.
	b := fsp.NewBuilder("Inner")
	s0 := b.State("0")
	l, r := b.State("l"), b.State("r")
	b.Add(s0, "a", l)
	b.Add(s0, "a", r)
	b.Add(l, "b", b.State("lb"))
	b.Add(r, "c", b.State("rc"))
	inner := b.MustBuild()

	if !lang.LangEquivalent(outer, inner) {
		t.Fatal("the two processes are language-equivalent")
	}
	if Strong(outer, inner) {
		t.Error("a·(b+c) vs a·b + a·c must not be strongly bisimilar")
	}
	if Weak(outer, inner) {
		t.Error("a·(b+c) vs a·b + a·c must not be weakly bisimilar")
	}
	// They differ already at the possibility level.
	if poss.Equivalent(outer, inner) {
		t.Error("possibility sets must differ")
	}
}

func TestWeakAbsorbsStuttering(t *testing.T) {
	p := fsp.Linear("P", "a", "b")
	st := stutter(p)
	if Strong(p, st) {
		t.Error("stuttered chain is not strongly bisimilar (extra τ states)")
	}
	if !Weak(p, st) {
		t.Error("stuttered chain must be weakly bisimilar")
	}
}

// TestFigure2NotBisimilar: the paper's Figure 2 pair is failure-equivalent
// but not possibility-equivalent, hence not weakly bisimilar — the
// hierarchy is strict at every level.
func TestFigure2NotBisimilar(t *testing.T) {
	build := func(name string, withBoth bool) *fsp.FSP {
		b := fsp.NewBuilder(name)
		s0 := b.State("0")
		end := b.State("end")
		for _, branch := range []fsp.Action{"b", "c"} {
			mid := b.State("mid" + string(branch))
			b.AddTau(s0, mid)
			b.Add(mid, branch, end)
		}
		if withBoth {
			mid := b.State("midbc")
			b.AddTau(s0, mid)
			b.Add(mid, "b", end)
			b.Add(mid, "c", end)
		}
		return b.MustBuild()
	}
	p := build("P", true)
	q := build("Q", false)
	if Weak(p, q) {
		t.Error("Figure 2 pair must not be weakly bisimilar")
	}
}

// stutter inserts a fresh τ-hop behind every transition.
func stutter(p *fsp.FSP) *fsp.FSP {
	b := fsp.NewBuilder(p.Name() + "·st")
	for s := 0; s < p.NumStates(); s++ {
		b.State(p.StateName(fsp.State(s)))
	}
	b.SetStart(p.Start())
	for i, t := range p.Transitions() {
		mid := b.State(p.StateName(t.From) + "·" + string(rune('0'+i%10)))
		b.Add(t.From, t.Label, mid)
		b.AddTau(mid, t.To)
	}
	return b.MustBuild()
}

// unroll2 duplicates every state with a parity bit — strongly bisimilar to
// the original.
func unroll2(p *fsp.FSP) *fsp.FSP {
	b := fsp.NewBuilder(p.Name() + "×2").AllowUnreachable()
	n := p.NumStates()
	for par := 0; par < 2; par++ {
		for s := 0; s < n; s++ {
			b.State(p.StateName(fsp.State(s)))
		}
	}
	b.SetStart(p.Start())
	for _, t := range p.Transitions() {
		b.Add(t.From, t.Label, fsp.State(n+int(t.To)))
		b.Add(fsp.State(n+int(t.From)), t.Label, t.To)
	}
	return b.MustBuild().Trim()
}

// TestHierarchy: strong ⇒ weak ⇒ possibility ⇒ failure ⇒ language, on
// constructions guaranteeing the antecedents and on random pairs.
func TestHierarchy(t *testing.T) {
	r := rand.New(rand.NewSource(941))
	cfg := fsptest.DefaultConfig()
	for i := 0; i < 60; i++ {
		p := fsptest.Acyclic(r, "P", cfg)

		// Unrolling: strongly bisimilar.
		u := unroll2(p)
		if !Strong(p, u) {
			t.Fatalf("iter %d: unrolling not strongly bisimilar", i)
		}
		if !Weak(p, u) {
			t.Fatalf("iter %d: strong must imply weak", i)
		}

		// Stuttering: weakly bisimilar.
		st := stutter(p)
		if !Weak(p, st) {
			t.Fatalf("iter %d: stuttering not weakly bisimilar", i)
		}
		if !poss.Equivalent(p, st) {
			t.Fatalf("iter %d: weak bisimilarity must imply possibility equivalence (acyclic)", i)
		}
		failEq, err := poss.FailEquivalent(p, st, poss.DefaultBudget)
		if err != nil {
			t.Fatal(err)
		}
		if !failEq {
			t.Fatalf("iter %d: possibility equivalence must imply failure equivalence", i)
		}
		if !lang.LangEquivalent(p, st) {
			t.Fatalf("iter %d: failure equivalence must imply language equivalence", i)
		}

		// Random pair: check the implications hold whenever the stronger
		// relation happens to hold.
		q := fsptest.Acyclic(r, "Q", cfg)
		if Weak(p, q) && !poss.Equivalent(p, q) {
			t.Fatalf("iter %d: weak ⇒ possibility violated on random pair", i)
		}
		if poss.Equivalent(p, q) && !lang.LangEquivalent(p, q) {
			t.Fatalf("iter %d: possibility ⇒ language violated on random pair", i)
		}
	}
}

func TestWeakCyclic(t *testing.T) {
	// a-loop vs its two-state unrolling: weakly (and strongly) bisimilar.
	b1 := fsp.NewBuilder("L1")
	s0 := b1.State("0")
	b1.Add(s0, "a", s0)
	l1 := b1.MustBuild()
	l2 := unroll2(l1)
	if !Strong(l1, l2) || !Weak(l1, l2) {
		t.Error("loop unrolling must be bisimilar")
	}
	// a-loop vs a-loop with τ-detour: weakly but not strongly bisimilar.
	b3 := fsp.NewBuilder("L3")
	t0, t1 := b3.State("0"), b3.State("1")
	b3.AddTau(t0, t1)
	b3.Add(t1, "a", t0)
	l3 := b3.MustBuild()
	if Strong(l1, l3) {
		t.Error("τ-detour loop is not strongly bisimilar")
	}
	if !Weak(l1, l3) {
		t.Error("τ-detour loop must be weakly bisimilar")
	}
}
