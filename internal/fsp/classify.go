package fsp

// Class is the structural classification of an FSP's transition graph used
// throughout the paper: a path is linear, a tree rooted at the start state
// is a tree, a single-rooted DAG is acyclic, and anything else is cyclic.
type Class int

const (
	// ClassLinear means the graph is a simple path from the start state.
	ClassLinear Class = iota + 1
	// ClassTree means the graph is a tree rooted at the start state.
	ClassTree
	// ClassAcyclic means the graph is a DAG rooted at the start state but
	// not a tree (some state has several incoming arcs).
	ClassAcyclic
	// ClassCyclic means the graph contains a directed cycle.
	ClassCyclic
)

// String returns the paper's name for the class.
func (c Class) String() string {
	switch c {
	case ClassLinear:
		return "linear"
	case ClassTree:
		return "tree"
	case ClassAcyclic:
		return "acyclic"
	case ClassCyclic:
		return "cyclic"
	default:
		return "unknown"
	}
}

// AtMost reports whether c is at most d in the hierarchy
// linear ⊂ tree ⊂ acyclic ⊂ cyclic.
func (c Class) AtMost(d Class) bool { return c <= d }

// Classify returns the structural class of p.
func (p *FSP) Classify() Class {
	if !p.IsAcyclic() {
		return ClassCyclic
	}
	indeg := make([]int, p.NumStates())
	maxOut := 0
	for s := 0; s < p.NumStates(); s++ {
		if len(p.out[s]) > maxOut {
			maxOut = len(p.out[s])
		}
		for _, t := range p.out[s] {
			indeg[t.To]++
		}
	}
	isTree := indeg[p.start] == 0
	for s := 0; s < p.NumStates(); s++ {
		if State(s) != p.start && indeg[s] != 1 {
			isTree = false
		}
	}
	if !isTree {
		return ClassAcyclic
	}
	if maxOut <= 1 {
		return ClassLinear
	}
	return ClassTree
}

// IsAcyclic reports whether the transition graph has no directed cycle.
func (p *FSP) IsAcyclic() bool {
	return !p.hasCycle(func(Transition) bool { return true })
}

// HasTauCycle reports whether the graph restricted to τ-moves has a cycle.
// Cyclic composition (Section 4) treats such cycles as silent divergence.
func (p *FSP) HasTauCycle() bool {
	return p.hasCycle(func(t Transition) bool { return t.Label == Tau })
}

// hasCycle runs a colored DFS over the transitions accepted by keep.
func (p *FSP) hasCycle(keep func(Transition) bool) bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]byte, p.NumStates())
	type frame struct {
		s State
		i int
	}
	for root := 0; root < p.NumStates(); root++ {
		if color[root] != white {
			continue
		}
		stack := []frame{{State(root), 0}}
		color[root] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			ts := p.out[f.s]
			advanced := false
			for f.i < len(ts) {
				t := ts[f.i]
				f.i++
				if !keep(t) {
					continue
				}
				switch color[t.To] {
				case gray:
					return true
				case white:
					color[t.To] = gray
					stack = append(stack, frame{t.To, 0})
					advanced = true
				}
				if advanced {
					break
				}
			}
			if !advanced && f.i >= len(ts) {
				color[f.s] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return false
}

// TauDivergentStates returns, in increasing order, the states from which a
// τ-labeled path leads into a τ-cycle. These are the states the Section 4
// composition augments with an escape to a fresh leaf.
func (p *FSP) TauDivergentStates() []State {
	n := p.NumStates()
	// Tarjan SCC over the τ-subgraph; a state is on a τ-cycle iff its SCC
	// has size > 1 or it has a τ self-loop.
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range index {
		index[i] = -1
		comp[i] = -1
	}
	var (
		stack   []State
		next    int
		ncomp   int
		tarStk  []tarFrame
		onCycle = make([]bool, n)
	)
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		tarStk = append(tarStk[:0], tarFrame{State(root), 0})
		index[root], low[root] = next, next
		next++
		stack = append(stack, State(root))
		onStack[root] = true
		for len(tarStk) > 0 {
			f := &tarStk[len(tarStk)-1]
			recursed := false
			ts := p.out[f.s]
			for f.i < len(ts) {
				t := ts[f.i]
				f.i++
				if t.Label != Tau {
					continue
				}
				if index[t.To] == -1 {
					index[t.To], low[t.To] = next, next
					next++
					stack = append(stack, t.To)
					onStack[t.To] = true
					tarStk = append(tarStk, tarFrame{t.To, 0})
					recursed = true
					break
				}
				if onStack[t.To] && low[f.s] > index[t.To] {
					low[f.s] = index[t.To]
				}
			}
			if recursed {
				continue
			}
			if low[f.s] == index[f.s] {
				size := 0
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					size++
					if w == f.s {
						break
					}
				}
				if size > 1 {
					markComponentCyclic(p, comp, ncomp, onCycle)
				} else {
					// Singleton: cyclic only with a τ self-loop.
					for _, t := range p.out[f.s] {
						if t.Label == Tau && t.To == f.s {
							onCycle[f.s] = true
						}
					}
				}
				ncomp++
			}
			tarStk = tarStk[:len(tarStk)-1]
			if len(tarStk) > 0 {
				g := &tarStk[len(tarStk)-1]
				if low[g.s] > low[f.s] {
					low[g.s] = low[f.s]
				}
			}
		}
	}
	// Backward propagation over τ-edges: a state diverges if it is on a
	// τ-cycle or has a τ-edge to a divergent state.
	diverge := append([]bool(nil), onCycle...)
	changed := true
	for changed {
		changed = false
		for s := 0; s < n; s++ {
			if diverge[s] {
				continue
			}
			for _, t := range p.out[s] {
				if t.Label == Tau && diverge[t.To] {
					diverge[s] = true
					changed = true
					break
				}
			}
		}
	}
	var res []State
	for s := 0; s < n; s++ {
		if diverge[s] {
			res = append(res, State(s))
		}
	}
	return res
}

type tarFrame struct {
	s State
	i int
}

func markComponentCyclic(p *FSP, comp []int, id int, onCycle []bool) {
	for s := 0; s < p.NumStates(); s++ {
		if comp[s] == id {
			onCycle[s] = true
		}
	}
}
