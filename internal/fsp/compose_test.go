package fsp_test

import (
	"math/rand"
	"testing"

	. "fspnet/internal/fsp"
	"fspnet/internal/fsptest"
)

// twoHandshakers returns P = 0 -a-> 1 -b-> 2 and Q = 0 -a-> 1 -c-> 2 with
// shared action a.
func twoHandshakers() (*FSP, *FSP) {
	return Linear("P", "a", "b"), Linear("Q", "a", "c")
}

func TestProductKeepsFullStateSpace(t *testing.T) {
	p, q := twoHandshakers()
	prod := Product(p, q)
	if got, want := prod.NumStates(), p.NumStates()*q.NumStates(); got != want {
		t.Errorf("Product states = %d, want %d", got, want)
	}
}

func TestIntersectRestrictsToReachable(t *testing.T) {
	p, q := twoHandshakers()
	inter := Intersect(p, q)
	// Reachable: (0,0) -a-> (1,1), then b and c interleave: (2,1), (1,2), (2,2).
	if got := inter.NumStates(); got != 5 {
		t.Errorf("Intersect states = %d, want 5", got)
	}
	if !inter.HasAction("a") {
		t.Error("Intersect must keep handshakes visible")
	}
}

func TestComposeHidesHandshakes(t *testing.T) {
	p, q := twoHandshakers()
	comp := Compose(p, q)
	if comp.HasAction("a") {
		t.Error("Compose must hide the shared action a")
	}
	got := comp.Alphabet()
	if len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Errorf("Compose alphabet = %v, want [b c] (symmetric difference)", got)
	}
	// The a-handshake must appear as a τ-move from the start.
	foundTau := false
	for _, tr := range comp.Out(comp.Start()) {
		if tr.Label == Tau {
			foundTau = true
		}
	}
	if !foundTau {
		t.Error("hidden handshake must be a τ-move from the start state")
	}
}

func TestComposeSynchronizesOnShared(t *testing.T) {
	// P does a then b; Q only knows a. Shared {a}: one handshake, then P's
	// private b: (0,0) -τ-> (1,1) -b-> (2,1).
	p := Linear("P", "a", "b")
	q := Linear("Q", "a")
	comp := Compose(p, q)
	if comp.NumStates() != 3 {
		t.Errorf("states = %d, want 3", comp.NumStates())
	}
	if comp.HasAction("a") {
		t.Error("shared a must be hidden")
	}
	q2 := Linear("Q2", "b")
	comp2 := Compose(p, q2)
	// Shared {b}: P cannot move (a is private? no: a ∉ Σ_Q2, so P moves alone).
	// P does private a, then handshake b.
	if comp2.HasAction("a") != true {
		t.Error("a is private to P and must remain visible")
	}
}

func TestComposeAll(t *testing.T) {
	p1 := Linear("P1", "a")
	p2 := Linear("P2", "a", "b")
	p3 := Linear("P3", "b")
	g, err := ComposeAll(p1, p2, p3)
	if err != nil {
		t.Fatalf("ComposeAll: %v", err)
	}
	if len(g.Alphabet()) != 0 {
		t.Errorf("global alphabet = %v, want empty (all hidden)", g.Alphabet())
	}
	if _, err := ComposeAll(); err == nil {
		t.Error("ComposeAll() with no processes must fail")
	}
}

func TestComposeCyclicAddsDivergenceLeaf(t *testing.T) {
	// P and Q handshake on a forever: the composition is a pure τ-cycle, so
	// cyclic composition must add an escape leaf.
	b1 := NewBuilder("P")
	p0, p1 := b1.State("0"), b1.State("1")
	b1.Add(p0, "a", p1)
	b1.Add(p1, "a", p0)
	p := b1.MustBuild()
	b2 := NewBuilder("Q")
	q0 := b2.State("0")
	b2.Add(q0, "a", q0)
	q := b2.MustBuild()

	plain := Compose(p, q)
	if !plain.HasTauCycle() {
		t.Fatal("composition must be a τ-cycle")
	}
	cyc := ComposeCyclic(p, q)
	if got, want := cyc.NumStates(), plain.NumStates()+1; got != want {
		t.Errorf("cyclic composition states = %d, want %d", got, want)
	}
	leaves := cyc.Leaves()
	if len(leaves) != 1 || cyc.StateName(leaves[0]) != DivergenceLeafName {
		t.Errorf("expected a single %q leaf, got %v", DivergenceLeafName, leaves)
	}
}

func TestAddDivergenceLeafNoop(t *testing.T) {
	p := Linear("P", "a")
	if got := AddDivergenceLeaf(p); got != p {
		t.Error("AddDivergenceLeaf must return p unchanged when no τ-cycles exist")
	}
}

func TestSharedActions(t *testing.T) {
	p, q := twoHandshakers()
	if got := SharedActions(p, q); len(got) != 1 || got[0] != "a" {
		t.Errorf("SharedActions = %v, want [a]", got)
	}
}

// TestFigure1 reproduces the Figure 1 construction: a tree network
// {P1, P2, P3} with P1 a tree, P2 acyclic, P3 cyclic, and checks the
// structural claims the paper makes about P1×P2, P1∩P2, and P1‖P2 (the
// original figure artwork is not in the text, so the machines here are
// representative instances of the stated classes).
func TestFigure1(t *testing.T) {
	p1 := TreeFromPaths("P1", []Action{"a", "b"}, []Action{"a", "c"}) // tree
	b2 := NewBuilder("P2")                                            // acyclic, not a tree
	q0, q1, q2 := b2.State("0"), b2.State("1"), b2.State("2")
	b2.Add(q0, "a", q1)
	b2.Add(q0, "x", q1) // second in-edge for q1 makes P2 a DAG
	b2.Add(q1, "b", q2)
	b2.Add(q1, "c", q2)
	p2 := b2.MustBuild()
	b3 := NewBuilder("P3") // cyclic
	r0 := b3.State("0")
	b3.Add(r0, "x", r0)
	p3 := b3.MustBuild()

	if p1.Classify() != ClassTree || p2.Classify() != ClassAcyclic || p3.Classify() != ClassCyclic {
		t.Fatalf("classes: %v %v %v", p1.Classify(), p2.Classify(), p3.Classify())
	}

	prod := Product(p1, p2)
	if prod.NumStates() != p1.NumStates()*p2.NumStates() {
		t.Errorf("P1×P2 has %d states, want %d", prod.NumStates(), p1.NumStates()*p2.NumStates())
	}
	inter := Intersect(p1, p2)
	if inter.NumStates() >= prod.NumStates() {
		t.Errorf("P1∩P2 must drop unreachable product states (%d vs %d)",
			inter.NumStates(), prod.NumStates())
	}
	comp := Compose(p1, p2)
	// Handshakes a, b, c are hidden; the network edge to P3 (action x) stays.
	if comp.HasAction("a") || comp.HasAction("b") || comp.HasAction("c") {
		t.Error("P1‖P2 must hide the P1–P2 handshakes")
	}
	if !comp.HasAction("x") {
		t.Error("P1‖P2 must keep the P2–P3 actions visible (C_N edge survives)")
	}
}

func TestComposeCommutativeShape(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	cfg := fsptest.DefaultConfig()
	for i := 0; i < 60; i++ {
		p := fsptest.Acyclic(r, "P", cfg)
		q := fsptest.Acyclic(r, "Q", cfg)
		pq := Compose(p, q)
		qp := Compose(q, p)
		if pq.NumStates() != qp.NumStates() || pq.NumTransitions() != qp.NumTransitions() {
			t.Fatalf("iter %d: ‖ not commutative in shape: %v vs %v", i, pq, qp)
		}
		ab := pq.Alphabet()
		ba := qp.Alphabet()
		if len(ab) != len(ba) {
			t.Fatalf("iter %d: alphabets differ: %v vs %v", i, ab, ba)
		}
		for j := range ab {
			if ab[j] != ba[j] {
				t.Fatalf("iter %d: alphabets differ: %v vs %v", i, ab, ba)
			}
		}
	}
}

func TestComposeAlphabetIsSymmetricDifference(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	cfg := fsptest.DefaultConfig()
	for i := 0; i < 60; i++ {
		p := fsptest.Acyclic(r, "P", cfg)
		q := fsptest.Acyclic(r, "Q", cfg)
		comp := Compose(p, q)
		shared := make(map[Action]bool)
		for _, a := range SharedActions(p, q) {
			shared[a] = true
		}
		for _, a := range comp.Alphabet() {
			if shared[a] {
				t.Fatalf("iter %d: shared action %q leaked into composition", i, a)
			}
			if !p.HasAction(a) && !q.HasAction(a) {
				t.Fatalf("iter %d: alien action %q in composition", i, a)
			}
		}
	}
}
