package fsp

import (
	"errors"
	"strings"
	"testing"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder("P")
	s0 := b.State("0")
	s1 := b.State("1")
	s2 := b.State("2")
	b.Add(s0, "a", s1)
	b.Add(s1, "b", s2)
	b.AddTau(s0, s2)
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := p.NumStates(); got != 3 {
		t.Errorf("NumStates = %d, want 3", got)
	}
	if got := p.NumTransitions(); got != 3 {
		t.Errorf("NumTransitions = %d, want 3", got)
	}
	if got := p.Alphabet(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Alphabet = %v, want [a b]", got)
	}
	if p.HasAction(Tau) {
		t.Error("τ must not be in the alphabet")
	}
	if p.Start() != s0 {
		t.Errorf("Start = %v, want %v", p.Start(), s0)
	}
	if p.Size() != 6 {
		t.Errorf("Size = %d, want 6", p.Size())
	}
}

func TestBuilderErrors(t *testing.T) {
	tests := []struct {
		name  string
		build func() (*FSP, error)
		want  error
	}{
		{
			name:  "no states",
			build: func() (*FSP, error) { return NewBuilder("P").Build() },
			want:  ErrNoStates,
		},
		{
			name: "unreachable",
			build: func() (*FSP, error) {
				b := NewBuilder("P")
				b.State("0")
				b.State("orphan")
				return b.Build()
			},
			want: ErrUnreachable,
		},
		{
			name: "bad state",
			build: func() (*FSP, error) {
				b := NewBuilder("P")
				s := b.State("0")
				b.Add(s, "a", State(7))
				return b.Build()
			},
			want: ErrBadState,
		},
		{
			name: "empty label",
			build: func() (*FSP, error) {
				b := NewBuilder("P")
				s := b.State("0")
				b.Add(s, "", s)
				return b.Build()
			},
			want: ErrBadAction,
		},
		{
			name: "bad start",
			build: func() (*FSP, error) {
				b := NewBuilder("P")
				b.State("0")
				b.SetStart(State(3))
				return b.Build()
			},
			want: ErrBadState,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := tt.build()
			if !errors.Is(err, tt.want) {
				t.Errorf("Build err = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestBuilderAllowUnreachable(t *testing.T) {
	b := NewBuilder("P").AllowUnreachable()
	b.State("0")
	b.State("orphan")
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if p.NumStates() != 2 {
		t.Fatalf("NumStates = %d, want 2", p.NumStates())
	}
	trimmed := p.Trim()
	if trimmed.NumStates() != 1 {
		t.Errorf("Trim states = %d, want 1", trimmed.NumStates())
	}
}

func TestBuilderDedupsTransitions(t *testing.T) {
	b := NewBuilder("P")
	s0 := b.State("0")
	s1 := b.State("1")
	b.Add(s0, "a", s1)
	b.Add(s0, "a", s1)
	p := b.MustBuild()
	if p.NumTransitions() != 1 {
		t.Errorf("NumTransitions = %d, want 1 after dedup", p.NumTransitions())
	}
}

func TestClassify(t *testing.T) {
	linear := Linear("L", "a", "b", "c")
	tree := TreeFromPaths("T", []Action{"a", "b"}, []Action{"a", "c"}, []Action{"d"})
	dagB := NewBuilder("D")
	d0, d1, d2 := dagB.State("0"), dagB.State("1"), dagB.State("2")
	dagB.Add(d0, "a", d1)
	dagB.Add(d0, "b", d2)
	dagB.Add(d1, "c", d2)
	dag := dagB.MustBuild()
	cycB := NewBuilder("C")
	c0, c1 := cycB.State("0"), cycB.State("1")
	cycB.Add(c0, "a", c1)
	cycB.Add(c1, "b", c0)
	cyc := cycB.MustBuild()

	tests := []struct {
		p    *FSP
		want Class
	}{
		{linear, ClassLinear},
		{tree, ClassTree},
		{dag, ClassAcyclic},
		{cyc, ClassCyclic},
	}
	for _, tt := range tests {
		if got := tt.p.Classify(); got != tt.want {
			t.Errorf("%s: Classify = %v, want %v", tt.p.Name(), got, tt.want)
		}
	}
	if !ClassLinear.AtMost(ClassTree) || ClassCyclic.AtMost(ClassAcyclic) {
		t.Error("AtMost ordering broken")
	}
	for _, tt := range tests {
		if tt.want.String() == "unknown" {
			t.Errorf("missing String for %v", tt.want)
		}
	}
}

func TestLeavesAndStability(t *testing.T) {
	b := NewBuilder("P")
	s0, s1, s2 := b.State("0"), b.State("1"), b.State("2")
	b.Add(s0, "a", s1)
	b.AddTau(s0, s2)
	p := b.MustBuild()
	if got := p.Leaves(); len(got) != 2 || got[0] != s1 || got[1] != s2 {
		t.Errorf("Leaves = %v, want [1 2]", got)
	}
	if p.IsStable(s0) {
		t.Error("s0 has a τ-move and must be unstable")
	}
	if !p.IsStable(s1) || !p.IsStable(s2) {
		t.Error("leaves are stable")
	}
	if got := p.ActionsAt(s0); len(got) != 1 || got[0] != "a" {
		t.Errorf("ActionsAt(s0) = %v, want [a]", got)
	}
}

func TestClosureAndStep(t *testing.T) {
	// 0 -τ-> 1 -a-> 2 -τ-> 3, 0 -b-> 3
	b := NewBuilder("P")
	s0, s1, s2, s3 := b.State("0"), b.State("1"), b.State("2"), b.State("3")
	b.AddTau(s0, s1)
	b.Add(s1, "a", s2)
	b.AddTau(s2, s3)
	b.Add(s0, "b", s3)
	p := b.MustBuild()

	if got := p.TauClosure([]State{s0}); len(got) != 2 || got[0] != s0 || got[1] != s1 {
		t.Errorf("TauClosure(0) = %v, want [0 1]", got)
	}
	if got := p.Step([]State{s0}, "a"); len(got) != 2 || got[0] != s2 || got[1] != s3 {
		t.Errorf("Step(0,a) = %v, want [2 3]", got)
	}
	if got := p.Step([]State{s0}, "z"); got != nil {
		t.Errorf("Step(0,z) = %v, want nil", got)
	}
	if !p.Accepts([]Action{"a"}) || !p.Accepts([]Action{"b"}) || !p.Accepts(nil) {
		t.Error("Accepts a, b, ε expected")
	}
	if p.Accepts([]Action{"a", "a"}) {
		t.Error("aa must be rejected")
	}
	if !p.Dead(s3, "a") || p.Dead(s0, "a") {
		t.Error("Dead predicate wrong")
	}
	if got := p.StableStates([]State{s0, s1, s2, s3}); len(got) != 2 || got[0] != s1 || got[1] != s3 {
		t.Errorf("StableStates = %v, want [1 3]", got)
	}
}

func TestTauDivergentStates(t *testing.T) {
	// 0 -τ-> 1 -τ-> 2 -τ-> 1 (τ-cycle {1,2}); 0 -a-> 3 -τ-> 4.
	b := NewBuilder("P")
	s0, s1, s2, s3, s4 := b.State("0"), b.State("1"), b.State("2"), b.State("3"), b.State("4")
	b.AddTau(s0, s1)
	b.AddTau(s1, s2)
	b.AddTau(s2, s1)
	b.Add(s0, "a", s3)
	b.AddTau(s3, s4)
	p := b.MustBuild()
	got := p.TauDivergentStates()
	want := []State{s0, s1, s2}
	if len(got) != len(want) {
		t.Fatalf("TauDivergentStates = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TauDivergentStates = %v, want %v", got, want)
		}
	}
	if p.HasTauCycle() != true {
		t.Error("HasTauCycle = false, want true")
	}

	selfB := NewBuilder("S")
	u := selfB.State("u")
	selfB.AddTau(u, u)
	self := selfB.MustBuild()
	if got := self.TauDivergentStates(); len(got) != 1 || got[0] != u {
		t.Errorf("self-loop divergence = %v, want [u]", got)
	}

	noTau := Linear("L", "a", "b")
	if got := noTau.TauDivergentStates(); got != nil {
		t.Errorf("linear divergence = %v, want nil", got)
	}
}

func TestRelabelActions(t *testing.T) {
	p := Linear("L", "a", "b")
	q, err := p.RelabelActions(map[Action]Action{"a": "x"})
	if err != nil {
		t.Fatalf("RelabelActions: %v", err)
	}
	if got := q.Alphabet(); len(got) != 2 || got[0] != "b" || got[1] != "x" {
		t.Errorf("Alphabet = %v, want [b x]", got)
	}
	if _, err := p.RelabelActions(map[Action]Action{"a": "b", "b": "b"}); err == nil {
		t.Error("collision relabel must fail")
	}
	if _, err := p.RelabelActions(map[Action]Action{"a": Tau}); err == nil {
		t.Error("relabel to τ must fail")
	}
}

func TestLinearAndTreeFromPaths(t *testing.T) {
	l := Linear("L", "a", "b", "c")
	if l.Classify() != ClassLinear || l.NumStates() != 4 {
		t.Errorf("Linear: class=%v states=%d", l.Classify(), l.NumStates())
	}
	tr := TreeFromPaths("T", []Action{"a", "b"}, []Action{"a", "c"})
	if tr.Classify() != ClassTree {
		t.Errorf("TreeFromPaths: class = %v, want tree", tr.Classify())
	}
	// Shared prefix "a" means 4 states: ε, a, ab, ac.
	if tr.NumStates() != 4 {
		t.Errorf("TreeFromPaths states = %d, want 4", tr.NumStates())
	}
}

func TestDOT(t *testing.T) {
	p := Linear("L", "a")
	dot := p.DOT()
	for _, want := range []string{"digraph", "doublecircle", `label="a"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestStringSummary(t *testing.T) {
	p := Linear("L", "a")
	if got := p.String(); !strings.Contains(got, "L{") || !strings.Contains(got, "states=2") {
		t.Errorf("String = %q", got)
	}
}
