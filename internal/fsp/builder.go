package fsp

import (
	"fmt"
)

// Builder assembles an FSP incrementally. The zero value is not usable; use
// NewBuilder. The first state added becomes the start state unless SetStart
// is called.
type Builder struct {
	name             string
	names            []string
	trans            []Transition
	start            State
	startSet         bool
	allowUnreachable bool
}

// NewBuilder returns a builder for a process with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name}
}

// State adds a state with the given display name and returns its index.
// Display names need not be unique.
func (b *Builder) State(name string) State {
	b.names = append(b.names, name)
	return State(len(b.names) - 1)
}

// States adds n states named by their indices and returns the first index.
func (b *Builder) States(n int) State {
	first := State(len(b.names))
	for i := 0; i < n; i++ {
		b.names = append(b.names, fmt.Sprintf("%d", len(b.names)))
	}
	return first
}

// SetStart designates s as the start state.
func (b *Builder) SetStart(s State) {
	b.start = s
	b.startSet = true
}

// Add records a transition from → to labeled a (a may be Tau).
func (b *Builder) Add(from State, a Action, to State) {
	b.trans = append(b.trans, Transition{From: from, Label: a, To: to})
}

// AddTau records a τ-move from → to.
func (b *Builder) AddTau(from, to State) { b.Add(from, Tau, to) }

// AllowUnreachable disables the every-state-reachable validation. It exists
// for the raw product × of Definition 3, whose unreachable part is only
// discarded by the ∩ step.
func (b *Builder) AllowUnreachable() *Builder {
	b.allowUnreachable = true
	return b
}

// Build validates the accumulated definition and returns the immutable FSP.
func (b *Builder) Build() (*FSP, error) {
	n := len(b.names)
	if n == 0 {
		return nil, fmt.Errorf("%s: %w", b.name, ErrNoStates)
	}
	start := b.start
	if !b.startSet {
		start = 0
	}
	if int(start) < 0 || int(start) >= n {
		return nil, fmt.Errorf("%s: start %d: %w", b.name, start, ErrBadState)
	}
	out := make([][]Transition, n)
	alpha := make(map[Action]struct{})
	for _, t := range b.trans {
		if int(t.From) < 0 || int(t.From) >= n || int(t.To) < 0 || int(t.To) >= n {
			return nil, fmt.Errorf("%s: transition %v: %w", b.name, t, ErrBadState)
		}
		if t.Label == "" {
			return nil, fmt.Errorf("%s: transition %v: %w", b.name, t, ErrBadAction)
		}
		out[t.From] = append(out[t.From], t)
		if t.Label != Tau {
			alpha[t.Label] = struct{}{}
		}
	}
	for s := range out {
		sortTransitions(out[s])
		// Drop exact duplicate transitions so Δ is a set.
		w := 0
		for i, t := range out[s] {
			if i == 0 || t != out[s][i-1] {
				out[s][w] = t
				w++
			}
		}
		out[s] = out[s][:w]
	}
	p := &FSP{
		name:  b.name,
		start: start,
		names: append([]string(nil), b.names...),
		out:   out,
	}
	for a := range alpha {
		p.alphabet = append(p.alphabet, a)
	}
	p.alphabet = dedupActions(p.alphabet)
	if !b.allowUnreachable {
		if bad := p.unreachableStates(); len(bad) > 0 {
			return nil, fmt.Errorf("%s: state %q: %w", b.name, p.names[bad[0]], ErrUnreachable)
		}
	}
	return p, nil
}

// MustBuild is Build for static definitions that cannot fail; it panics on
// error and is intended for tests, examples, and compiled-in gadgets.
func (b *Builder) MustBuild() *FSP {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// unreachableStates returns states not reachable from the start.
func (p *FSP) unreachableStates() []State {
	seen := make([]bool, p.NumStates())
	stack := []State{p.start}
	seen[p.start] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range p.out[s] {
			if !seen[t.To] {
				seen[t.To] = true
				stack = append(stack, t.To)
			}
		}
	}
	var bad []State
	for s, ok := range seen {
		if !ok {
			bad = append(bad, State(s))
		}
	}
	return bad
}

// Trim returns the restriction of p to states reachable from the start, the
// ∩ step of Definition 3 applied to an arbitrary process.
func (p *FSP) Trim() *FSP {
	unreachable := p.unreachableStates()
	if len(unreachable) == 0 {
		return p
	}
	drop := make(map[State]bool, len(unreachable))
	for _, s := range unreachable {
		drop[s] = true
	}
	b := NewBuilder(p.name)
	remap := make([]State, p.NumStates())
	for s := 0; s < p.NumStates(); s++ {
		if drop[State(s)] {
			remap[s] = -1
			continue
		}
		remap[s] = b.State(p.names[s])
	}
	b.SetStart(remap[p.start])
	for _, t := range p.Transitions() {
		if remap[t.From] >= 0 && remap[t.To] >= 0 {
			b.Add(remap[t.From], t.Label, remap[t.To])
		}
	}
	return b.MustBuild()
}

// Linear builds the linear FSP with the given action sequence:
// s0 -a1-> s1 -a2-> ... -an-> sn.
func Linear(name string, actions ...Action) *FSP {
	b := NewBuilder(name)
	prev := b.State("0")
	for i, a := range actions {
		next := b.State(fmt.Sprintf("%d", i+1))
		b.Add(prev, a, next)
		prev = next
	}
	return b.MustBuild()
}

// TreeFromPaths builds a tree FSP as the prefix trie of the given action
// sequences. Paths sharing a prefix share the corresponding states.
func TreeFromPaths(name string, paths ...[]Action) *FSP {
	b := NewBuilder(name)
	root := b.State("ε")
	type key struct {
		s State
		a Action
	}
	edge := make(map[key]State)
	for _, path := range paths {
		cur := root
		for _, a := range path {
			k := key{cur, a}
			next, ok := edge[k]
			if !ok {
				next = b.State(b.names[cur] + "·" + string(a))
				edge[k] = next
				b.Add(cur, a, next)
			}
			cur = next
		}
	}
	return b.MustBuild()
}
