package fsp_test

import (
	"math/rand"
	"testing"

	. "fspnet/internal/fsp"
	"fspnet/internal/fsptest"
	"fspnet/internal/poss"
)

// triple generates three processes whose pairwise alphabets are disjoint
// (a-actions between P1–P2, b-actions between P2–P3, c-actions between
// P1–P3), the network discipline under which Lemma 1 holds.
func triple(r *rand.Rand) (p1, p2, p3 *FSP) {
	mk := func(name string, acts []Action) *FSP {
		cfg := fsptest.DefaultConfig()
		cfg.MaxStates = 4
		cfg.Actions = acts
		return fsptest.Acyclic(r, name, cfg)
	}
	p1 = mk("P1", []Action{"a1", "a2", "c1", "c2"})
	p2 = mk("P2", []Action{"a1", "a2", "b1", "b2"})
	p3 = mk("P3", []Action{"b1", "b2", "c1", "c2"})
	return p1, p2, p3
}

// TestLemma1Associativity: (P1‖P2)‖P3 and P1‖(P2‖P3) are possibility- and
// language-equivalent when every action is shared by exactly two of the
// three processes — the paper's Lemma 1 (associativity fails without that
// discipline, as the paper notes after the lemma).
func TestLemma1Associativity(t *testing.T) {
	r := rand.New(rand.NewSource(1501))
	for i := 0; i < 60; i++ {
		p1, p2, p3 := triple(r)
		left := Compose(Compose(p1, p2), p3)
		right := Compose(p1, Compose(p2, p3))
		if !poss.Equivalent(left, right) {
			t.Fatalf("iter %d: ‖ not associative under possibility equivalence\nP1=%s\nP2=%s\nP3=%s",
				i, p1.DOT(), p2.DOT(), p3.DOT())
		}
		if !poss.LangEquivalent(left, right) {
			t.Fatalf("iter %d: ‖ not associative under language equivalence", i)
		}
	}
}

// TestLemma1Commutativity: P‖Q and Q‖P are possibility-equivalent.
func TestLemma1Commutativity(t *testing.T) {
	r := rand.New(rand.NewSource(1503))
	cfg := fsptest.DefaultConfig()
	for i := 0; i < 60; i++ {
		p := fsptest.Acyclic(r, "P", cfg)
		q := fsptest.Acyclic(r, "Q", cfg)
		if !poss.Equivalent(Compose(p, q), Compose(q, p)) {
			t.Fatalf("iter %d: ‖ not commutative under possibility equivalence", i)
		}
	}
}

// TestLemma1CyclicVariant: the Section 4 composition keeps commutativity
// and associativity (for the network alphabet discipline) as the paper
// claims ("the new ‖ is still associative and commutative").
func TestLemma1CyclicVariant(t *testing.T) {
	r := rand.New(rand.NewSource(1507))
	for i := 0; i < 40; i++ {
		p1, p2, p3 := tripleCyclic(r)
		left := ComposeCyclic(ComposeCyclic(p1, p2), p3)
		right := ComposeCyclic(p1, ComposeCyclic(p2, p3))
		if !poss.LangEquivalent(left, right) {
			t.Fatalf("iter %d: cyclic ‖ not associative under language equivalence", i)
		}
		if !poss.Equivalent(ComposeCyclic(p1, p2), ComposeCyclic(p2, p1)) {
			t.Fatalf("iter %d: cyclic ‖ not commutative", i)
		}
	}
}

func tripleCyclic(r *rand.Rand) (p1, p2, p3 *FSP) {
	mk := func(name string, acts []Action) *FSP {
		cfg := fsptest.DefaultConfig()
		cfg.MaxStates = 3
		cfg.Actions = acts
		cfg.Cyclic = true
		return fsptest.Cyclic(r, name, cfg)
	}
	p1 = mk("P1", []Action{"a1", "c1"})
	p2 = mk("P2", []Action{"a1", "b1"})
	p3 = mk("P3", []Action{"b1", "c1"})
	return p1, p2, p3
}
