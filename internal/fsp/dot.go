package fsp

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the process as a Graphviz digraph. The start state is
// drawn with a double circle; τ-moves are dashed.
func (p *FSP) WriteDOT(w io.Writer) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", p.name)
	sb.WriteString("  rankdir=LR;\n  node [shape=circle];\n")
	for s := 0; s < p.NumStates(); s++ {
		shape := "circle"
		if State(s) == p.start {
			shape = "doublecircle"
		}
		fmt.Fprintf(&sb, "  n%d [label=%q shape=%s];\n", s, p.names[s], shape)
	}
	for _, t := range p.Transitions() {
		style := ""
		if t.Label == Tau {
			style = " style=dashed"
		}
		fmt.Fprintf(&sb, "  n%d -> n%d [label=%q%s];\n", t.From, t.To, string(t.Label), style)
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// DOT returns the Graphviz rendering as a string.
func (p *FSP) DOT() string {
	var sb strings.Builder
	_ = p.WriteDOT(&sb) // strings.Builder never errors
	return sb.String()
}
