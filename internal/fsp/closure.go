package fsp

// TauClosure returns the sorted set of states reachable from any state in
// set using zero or more τ-moves (the ⇒ᵋ relation of Section 2.1).
func (p *FSP) TauClosure(set []State) []State {
	seen := make([]bool, p.NumStates())
	var stack []State
	for _, s := range set {
		if !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	res := append([]State(nil), stack...)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range p.out[s] {
			if t.Label == Tau && !seen[t.To] {
				seen[t.To] = true
				stack = append(stack, t.To)
				res = append(res, t.To)
			}
		}
	}
	return dedupStates(res)
}

// Step returns the sorted set of states q with s ⇒ᵃ q for some s in set:
// τ-closure, one a-labeled move, τ-closure.
func (p *FSP) Step(set []State, a Action) []State {
	pre := p.TauClosure(set)
	var mid []State
	for _, s := range pre {
		for _, t := range p.out[s] {
			if t.Label == a {
				mid = append(mid, t.To)
			}
		}
	}
	if len(mid) == 0 {
		return nil
	}
	return p.TauClosure(dedupStates(mid))
}

// ReachableVia returns the sorted set of states q with start ⇒ˢ q for the
// action string s. An empty result means s ∉ Lang(p).
func (p *FSP) ReachableVia(s []Action) []State {
	cur := p.TauClosure([]State{p.start})
	for _, a := range s {
		cur = p.Step(cur, a)
		if len(cur) == 0 {
			return nil
		}
	}
	return cur
}

// Accepts reports whether s ∈ Lang(p), i.e. some state is reachable from
// the start via s.
func (p *FSP) Accepts(s []Action) bool { return len(p.ReachableVia(s)) > 0 }

// StableStates filters set to its stable members (no outgoing τ). Combined
// with TauClosure it yields the states at which possibilities are observed.
func (p *FSP) StableStates(set []State) []State {
	var res []State
	for _, s := range set {
		if p.IsStable(s) {
			res = append(res, s)
		}
	}
	return res
}

// Dead reports s ⇒ᵃ dead: no state is reachable from s via action a
// (Section 2.1). Fail(p) is built from this predicate.
func (p *FSP) Dead(s State, a Action) bool {
	return len(p.Step([]State{s}, a)) == 0
}
