package fsp

import "fmt"

// Product returns P1 × P2 of Definition 3 over the full state set K1 × K2:
// independent moves on private actions and τ, simultaneous moves
// (handshakes) on shared actions. The result may contain unreachable
// states; Intersect applies the ∩ restriction.
func Product(p1, p2 *FSP) *FSP {
	shared := sharedAlphabet(p1, p2)
	n1, n2 := p1.NumStates(), p2.NumStates()
	b := NewBuilder("(" + p1.name + "×" + p2.name + ")").AllowUnreachable()
	for s1 := 0; s1 < n1; s1++ {
		for s2 := 0; s2 < n2; s2++ {
			b.State("(" + p1.names[s1] + "," + p2.names[s2] + ")")
		}
	}
	pair := func(s1, s2 State) State { return State(int(s1)*n2 + int(s2)) }
	b.SetStart(pair(p1.start, p2.start))
	for s1 := 0; s1 < n1; s1++ {
		for s2 := 0; s2 < n2; s2++ {
			from := pair(State(s1), State(s2))
			for _, t := range p1.out[s1] {
				if t.Label == Tau || !shared[t.Label] {
					b.Add(from, t.Label, pair(t.To, State(s2)))
				}
			}
			for _, t := range p2.out[s2] {
				if t.Label == Tau || !shared[t.Label] {
					b.Add(from, t.Label, pair(State(s1), t.To))
				}
			}
			for _, t1 := range p1.out[s1] {
				if t1.Label == Tau || !shared[t1.Label] {
					continue
				}
				for _, t2 := range p2.out[s2] {
					if t2.Label == t1.Label {
						b.Add(from, t1.Label, pair(t1.To, t2.To))
					}
				}
			}
		}
	}
	return b.MustBuild()
}

// Intersect returns P1 ∩ P2: the product restricted to states reachable
// from the start, with handshakes still visible under their shared labels.
func Intersect(p1, p2 *FSP) *FSP {
	q := Product(p1, p2).Trim()
	return q.Rename("(" + p1.name + "∩" + p2.name + ")")
}

// Compose returns the composition P1 ‖ P2: the reachable product with every
// shared action hidden as τ. It is commutative and, in a network whose
// actions are owned by exactly two processes, associative (Lemma 1).
func Compose(p1, p2 *FSP) *FSP {
	shared := sharedAlphabet(p1, p2)
	q := Intersect(p1, p2)
	b := NewBuilder("(" + p1.name + "‖" + p2.name + ")")
	for _, nm := range q.names {
		b.State(nm)
	}
	b.SetStart(q.start)
	for _, t := range q.Transitions() {
		lbl := t.Label
		if lbl != Tau && shared[lbl] {
			lbl = Tau
		}
		b.Add(t.From, lbl, t.To)
	}
	return b.MustBuild()
}

// DivergenceLeafName is the display name of the fresh leaf that
// ComposeCyclic adds below every τ-divergent state (Section 4).
const DivergenceLeafName = "⊥"

// ComposeCyclic returns the Section 4 composition for cyclic processes:
// Compose(p1, p2) augmented, for every state from which τ-moves can enter a
// τ-loop, with a τ-move to a fresh leaf. The leaf makes silent divergence —
// "Q chooses to stay in the loop forever" — visible as the possibility
// (s, ∅), restoring Lemma 2′ and the Poss ⇒ Lang implication.
func ComposeCyclic(p1, p2 *FSP) *FSP {
	return AddDivergenceLeaf(Compose(p1, p2))
}

// AddDivergenceLeaf returns p augmented with a τ-move to a fresh shared
// leaf from every τ-divergent state, or p itself when none exist.
func AddDivergenceLeaf(p *FSP) *FSP {
	div := p.TauDivergentStates()
	if len(div) == 0 {
		return p
	}
	b := NewBuilder(p.name)
	for _, nm := range p.names {
		b.State(nm)
	}
	leaf := b.State(DivergenceLeafName)
	b.SetStart(p.start)
	for _, t := range p.Transitions() {
		b.Add(t.From, t.Label, t.To)
	}
	for _, s := range div {
		b.AddTau(s, leaf)
	}
	return b.MustBuild()
}

// ComposeAll folds Compose over the processes in order. By Lemma 1 the
// result is independent of the order when the processes come from a
// network (each action owned by exactly two of them).
func ComposeAll(ps ...*FSP) (*FSP, error) {
	if len(ps) == 0 {
		return nil, fmt.Errorf("fsp: ComposeAll: %w", ErrNoStates)
	}
	acc := ps[0]
	for _, p := range ps[1:] {
		acc = Compose(acc, p)
	}
	return acc, nil
}

// ComposeAllCyclic folds ComposeCyclic over the processes in order.
func ComposeAllCyclic(ps ...*FSP) (*FSP, error) {
	if len(ps) == 0 {
		return nil, fmt.Errorf("fsp: ComposeAllCyclic: %w", ErrNoStates)
	}
	acc := ps[0]
	for _, p := range ps[1:] {
		acc = ComposeCyclic(acc, p)
	}
	return acc, nil
}

// SharedActions returns the sorted shared alphabet Σ1 ∩ Σ2.
func SharedActions(p1, p2 *FSP) []Action {
	shared := sharedAlphabet(p1, p2)
	var as []Action
	for _, a := range p1.alphabet {
		if shared[a] {
			as = append(as, a)
		}
	}
	return as
}

func sharedAlphabet(p1, p2 *FSP) map[Action]bool {
	m := make(map[Action]bool)
	for _, a := range p1.alphabet {
		if p2.HasAction(a) {
			m[a] = true
		}
	}
	return m
}
