// Package fsp implements the finite state process (FSP) model of
// Kanellakis & Smolka (PODC 1985): nondeterministic finite-state machines
// whose actions are point-to-point handshakes, with a distinguished
// unobservable action τ, together with the composition operators of the
// paper (product ×, reachable restriction ∩, composition ‖, and the
// Section 4 cyclic variant of ‖).
package fsp

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Action is a handshake symbol. The reserved value Tau denotes the
// unobservable internal action and is never a member of an FSP's alphabet.
type Action string

// Tau is the unobservable action τ of the model. It labels internal moves
// and the hidden handshakes produced by composition.
const Tau Action = "τ"

// State identifies a state of an FSP. States are dense indices in
// [0, NumStates()); the start state need not be 0.
type State int

// Transition is a single labeled arc of an FSP's transition relation Δ.
type Transition struct {
	From  State
	Label Action
	To    State
}

// FSP is a finite state process ⟨K, p, Σ, Δ⟩ (Definition 1 of the paper):
// a finite set of states K, a start state p, an alphabet Σ of actions
// (excluding τ), and a transition relation Δ ⊆ K × (Σ ∪ {τ}) × K.
// Unless built with AllowUnreachable, every state is reachable from the
// start state. FSP values are immutable once built.
type FSP struct {
	name     string
	start    State
	names    []string       // state names, len == NumStates
	out      [][]Transition // outgoing transitions per state, sorted
	alphabet []Action       // sorted, excludes Tau
}

var (
	// ErrNoStates reports an attempt to build an FSP with no states.
	ErrNoStates = errors.New("fsp: process has no states")
	// ErrUnreachable reports states not reachable from the start state.
	ErrUnreachable = errors.New("fsp: state unreachable from start")
	// ErrBadState reports a transition endpoint outside the state set.
	ErrBadState = errors.New("fsp: transition references unknown state")
	// ErrBadAction reports an empty action label.
	ErrBadAction = errors.New("fsp: empty action label")
)

// Name returns the process name.
func (p *FSP) Name() string { return p.name }

// NumStates returns |K|.
func (p *FSP) NumStates() int { return len(p.out) }

// Start returns the start state.
func (p *FSP) Start() State { return p.start }

// StateName returns the human-readable name of state s.
func (p *FSP) StateName(s State) string { return p.names[int(s)] }

// Alphabet returns a copy of Σ in sorted order. τ is never included.
func (p *FSP) Alphabet() []Action {
	return append([]Action(nil), p.alphabet...)
}

// HasAction reports whether a belongs to Σ.
func (p *FSP) HasAction(a Action) bool {
	i := sort.Search(len(p.alphabet), func(i int) bool { return p.alphabet[i] >= a })
	return i < len(p.alphabet) && p.alphabet[i] == a
}

// Out returns the outgoing transitions of s in a fixed (label, target)
// order. The returned slice must not be modified.
func (p *FSP) Out(s State) []Transition { return p.out[int(s)] }

// Transitions returns a copy of Δ in (from, label, to) order.
func (p *FSP) Transitions() []Transition {
	var all []Transition
	for _, ts := range p.out {
		all = append(all, ts...)
	}
	return all
}

// NumTransitions returns |Δ|.
func (p *FSP) NumTransitions() int {
	n := 0
	for _, ts := range p.out {
		n += len(ts)
	}
	return n
}

// Size returns |K| + |Δ|, the size measure used by the paper's bounds.
func (p *FSP) Size() int { return p.NumStates() + p.NumTransitions() }

// IsLeaf reports whether s has no outgoing transitions (a "leaf" in the
// paper's terminology, regardless of the graph being a tree).
func (p *FSP) IsLeaf(s State) bool { return len(p.out[int(s)]) == 0 }

// Leaves returns all leaf states in increasing order.
func (p *FSP) Leaves() []State {
	var ls []State
	for s := range p.out {
		if len(p.out[s]) == 0 {
			ls = append(ls, State(s))
		}
	}
	return ls
}

// IsStable reports whether s has no outgoing τ-moves. Possibilities
// (Definition 4) are observed only at stable states.
func (p *FSP) IsStable(s State) bool {
	for _, t := range p.out[int(s)] {
		if t.Label == Tau {
			return false
		}
	}
	return true
}

// ActionsAt returns the sorted set of non-τ labels on transitions leaving
// s directly (no τ-closure).
func (p *FSP) ActionsAt(s State) []Action {
	var as []Action
	for _, t := range p.out[int(s)] {
		if t.Label != Tau && (len(as) == 0 || as[len(as)-1] != t.Label) {
			as = append(as, t.Label)
		}
	}
	return as
}

// Succ returns the sorted set of states reachable from s by one transition
// labeled a (a may be Tau). No closure is applied.
func (p *FSP) Succ(s State, a Action) []State {
	var ss []State
	for _, t := range p.out[int(s)] {
		if t.Label == a {
			ss = append(ss, t.To)
		}
	}
	return dedupStates(ss)
}

// String returns a one-line summary of the process.
func (p *FSP) String() string {
	return fmt.Sprintf("%s{states=%d, trans=%d, |Σ|=%d, start=%s}",
		p.name, p.NumStates(), p.NumTransitions(), len(p.alphabet), p.names[p.start])
}

// Rename returns a copy of p with name newName.
func (p *FSP) Rename(newName string) *FSP {
	q := *p
	q.name = newName
	return &q
}

// RelabelActions returns a copy of p in which every action a is replaced by
// m[a] when present in m (τ is never relabeled). Distinct actions must not
// be mapped to the same target.
func (p *FSP) RelabelActions(m map[Action]Action) (*FSP, error) {
	// Validate in sorted key order so a bad mapping is always reported
	// against the same entry, whatever the map's iteration order.
	froms := make([]Action, 0, len(m))
	for from := range m {
		froms = append(froms, from)
	}
	sort.Slice(froms, func(i, j int) bool { return froms[i] < froms[j] })
	seen := make(map[Action]Action, len(m))
	for _, from := range froms {
		to := m[from]
		if to == "" || to == Tau {
			return nil, fmt.Errorf("fsp: relabel %q -> %q: %w", from, to, ErrBadAction)
		}
		if prev, ok := seen[to]; ok && prev != from {
			return nil, fmt.Errorf("fsp: relabel collision on %q", to)
		}
		seen[to] = from
	}
	b := NewBuilder(p.name)
	for _, nm := range p.names {
		b.State(nm)
	}
	b.SetStart(p.start)
	for _, t := range p.Transitions() {
		lbl := t.Label
		if lbl != Tau {
			if to, ok := m[lbl]; ok {
				lbl = to
			}
		}
		b.Add(t.From, lbl, t.To)
	}
	return b.Build()
}

// sortTransitions orders transitions by (label, target) with τ first, which
// fixes deterministic iteration order across the library.
func sortTransitions(ts []Transition) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		ai, bi := a.Label == Tau, b.Label == Tau
		if ai != bi {
			return ai
		}
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		return a.To < b.To
	})
}

func dedupStates(ss []State) []State {
	if len(ss) < 2 {
		return ss
	}
	sort.Slice(ss, func(i, j int) bool { return ss[i] < ss[j] })
	w := 1
	for i := 1; i < len(ss); i++ {
		if ss[i] != ss[w-1] {
			ss[w] = ss[i]
			w++
		}
	}
	return ss[:w]
}

func dedupActions(as []Action) []Action {
	if len(as) < 2 {
		return as
	}
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	w := 1
	for i := 1; i < len(as); i++ {
		if as[i] != as[w-1] {
			as[w] = as[i]
			w++
		}
	}
	return as[:w]
}

// ActionSetString renders a sorted action set as "{a,b,c}".
func ActionSetString(as []Action) string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, a := range as {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(string(a))
	}
	sb.WriteByte('}')
	return sb.String()
}
