package fsp_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	. "fspnet/internal/fsp"
	"fspnet/internal/fsptest"
)

// genFSP is a quick.Generator wrapper drawing a random FSP.
type genFSP struct {
	P *FSP
}

// Generate implements quick.Generator.
func (genFSP) Generate(r *rand.Rand, size int) reflect.Value {
	cfg := fsptest.DefaultConfig()
	cfg.MaxStates = 2 + size%6
	cfg.Cyclic = r.Intn(2) == 0
	return reflect.ValueOf(genFSP{P: fsptest.Gen(r, "G", cfg)})
}

var quickCfg = &quick.Config{MaxCount: 120}

// TestQuickEveryStateReachable: the builder invariant — every state of a
// generated process is reachable, so Trim is the identity.
func TestQuickEveryStateReachable(t *testing.T) {
	f := func(g genFSP) bool {
		return g.P.Trim().NumStates() == g.P.NumStates()
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickAlphabetMatchesTransitions: Σ is exactly the set of non-τ
// labels occurring in Δ.
func TestQuickAlphabetMatchesTransitions(t *testing.T) {
	f := func(g genFSP) bool {
		seen := make(map[Action]bool)
		for _, tr := range g.P.Transitions() {
			if tr.Label != Tau {
				seen[tr.Label] = true
			}
		}
		alpha := g.P.Alphabet()
		if len(alpha) != len(seen) {
			return false
		}
		for _, a := range alpha {
			if !seen[a] {
				return false
			}
			if !g.P.HasAction(a) {
				return false
			}
		}
		return !g.P.HasAction(Tau)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickTauClosureIdempotent: τ-closure is a closure operator —
// idempotent, extensive, monotone in its seed.
func TestQuickTauClosureIdempotent(t *testing.T) {
	f := func(g genFSP, seed uint8) bool {
		s := State(int(seed) % g.P.NumStates())
		once := g.P.TauClosure([]State{s})
		twice := g.P.TauClosure(once)
		if len(once) != len(twice) {
			return false
		}
		for i := range once {
			if once[i] != twice[i] {
				return false
			}
		}
		// Extensive: the seed is in its own closure.
		for _, x := range once {
			if x == s {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickStepSubsetOfClosure: every state returned by Step is stable
// under further τ-closure (Step returns τ-closed sets).
func TestQuickStepSubsetOfClosure(t *testing.T) {
	f := func(g genFSP, pick uint8) bool {
		alpha := g.P.Alphabet()
		if len(alpha) == 0 {
			return true
		}
		a := alpha[int(pick)%len(alpha)]
		set := g.P.Step([]State{g.P.Start()}, a)
		closed := g.P.TauClosure(set)
		if len(set) != len(closed) {
			return false
		}
		for i := range set {
			if set[i] != closed[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickProductSize: |K(P×Q)| = |K(P)|·|K(Q)| and Intersect never
// exceeds it (Definition 3).
func TestQuickProductSize(t *testing.T) {
	f := func(a, b genFSP) bool {
		prod := Product(a.P, b.P)
		if prod.NumStates() != a.P.NumStates()*b.P.NumStates() {
			return false
		}
		inter := Intersect(a.P, b.P)
		return inter.NumStates() <= prod.NumStates() && inter.NumStates() >= 1
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickComposeHidesExactlyShared: Σ(P‖Q) ∩ (Σ(P) ∩ Σ(Q)) = ∅ and
// Σ(P‖Q) ⊆ Σ(P) ⊕ Σ(Q).
func TestQuickComposeHidesExactlyShared(t *testing.T) {
	f := func(a, b genFSP) bool {
		comp := Compose(a.P, b.P)
		for _, s := range SharedActions(a.P, b.P) {
			if comp.HasAction(s) {
				return false
			}
		}
		for _, x := range comp.Alphabet() {
			if !a.P.HasAction(x) && !b.P.HasAction(x) {
				return false
			}
			if a.P.HasAction(x) && b.P.HasAction(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickCyclicComposeLeafEscape: after the Section 4 composition, every
// τ-divergent state of the result can reach a leaf — silent divergence
// always has the defection escape.
func TestQuickCyclicComposeLeafEscape(t *testing.T) {
	f := func(a, b genFSP) bool {
		comp := ComposeCyclic(a.P, b.P)
		leafReach := make([]bool, comp.NumStates())
		for _, l := range comp.Leaves() {
			leafReach[l] = true
		}
		// Backward fixpoint over all transitions.
		for changed := true; changed; {
			changed = false
			for _, tr := range comp.Transitions() {
				if leafReach[tr.To] && !leafReach[tr.From] {
					leafReach[tr.From] = true
					changed = true
				}
			}
		}
		for _, s := range comp.TauDivergentStates() {
			if !leafReach[s] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickClassifyConsistency: classification agrees with IsAcyclic and
// the class hierarchy.
func TestQuickClassifyConsistency(t *testing.T) {
	f := func(g genFSP) bool {
		c := g.P.Classify()
		if g.P.IsAcyclic() != (c != ClassCyclic) {
			return false
		}
		if c == ClassLinear && g.P.NumTransitions() >= g.P.NumStates() {
			return false // a linear graph has exactly n−1 arcs
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}
