package fsplang

import (
	"errors"
	"strings"
	"testing"

	"fspnet/internal/fsp"
	"fspnet/internal/network"
	"fspnet/internal/poss"
)

const figure3Src = `
# Figure 3 of the paper.
process P {
    start s1
    s1 a s2
}
process Q {
    start t1
    t1 a t2
    t1 tau t3   # Q may silently defect
}
`

func TestParseFigure3(t *testing.T) {
	n, err := ParseString(figure3Src)
	if err != nil {
		t.Fatal(err)
	}
	if n.Len() != 2 {
		t.Fatalf("Len = %d, want 2", n.Len())
	}
	p, q := n.Process(0), n.Process(1)
	if p.Name() != "P" || q.Name() != "Q" {
		t.Errorf("names = %q, %q", p.Name(), q.Name())
	}
	if p.NumStates() != 2 || q.NumStates() != 3 {
		t.Errorf("states = %d, %d", p.NumStates(), q.NumStates())
	}
	if !q.HasAction("a") || q.NumTransitions() != 2 {
		t.Errorf("Q = %v", q)
	}
	// The τ-transition must be parsed as τ.
	tauSeen := false
	for _, tr := range q.Transitions() {
		if tr.Label == fsp.Tau {
			tauSeen = true
		}
	}
	if !tauSeen {
		t.Error("tau keyword not parsed as τ")
	}
}

func TestParseSemicolonsAndUnicodeTau(t *testing.T) {
	src := "process P { start a; a x b; b τ c } process Q { start u; u x u }"
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if n.Process(0).NumStates() != 3 {
		t.Errorf("states = %d, want 3", n.Process(0).NumStates())
	}
}

func TestParseDefaultStart(t *testing.T) {
	// Without a start statement, the first state mentioned is the start.
	src := "process P { s0 a s1 } process Q { t0 a t0 }"
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Process(0).StateName(n.Process(0).Start()); got != "s0" {
		t.Errorf("start = %q, want s0", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"no brace", "process P start s0"},
		{"unterminated", "process P { s0 a s1"},
		{"missing name", "process { s0 a s1 }"},
		{"malformed transition", "process P { s0 a } process Q { t0 b t0 }"},
		{"truncated transition", "process P { s0"},
		{"unreachable state", "process P { start s0; s1 a s2 } process Q { t0 a t0 }"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseString(tt.src); err == nil {
				t.Errorf("ParseString(%q) succeeded, want error", tt.src)
			}
		})
	}
	if _, err := ParseString("process P { s0 a s1 }"); !errors.Is(err, network.ErrActionOwners) {
		t.Errorf("single-owner action: err = %v, want ErrActionOwners", err)
	}
	if _, err := ParseString("x"); !errors.Is(err, ErrSyntax) {
		t.Errorf("err = %v, want ErrSyntax", err)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	n, err := ParseString(figure3Src)
	if err != nil {
		t.Fatal(err)
	}
	src := Format(n)
	n2, err := ParseString(src)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, src)
	}
	if n2.Len() != n.Len() {
		t.Fatalf("round trip changed process count")
	}
	for i := 0; i < n.Len(); i++ {
		if !poss.Equivalent(n.Process(i), n2.Process(i)) {
			t.Errorf("process %d not possibility-equivalent after round trip", i)
		}
	}
}

func TestFormatFallsBackOnBadNames(t *testing.T) {
	// Composite state names contain parentheses/commas but remain single
	// words; duplicate names force the s<index> fallback.
	b := fsp.NewBuilder("P")
	s0 := b.State("dup")
	s1 := b.State("dup")
	b.Add(s0, "x", s1)
	p := b.MustBuild()
	q := fsp.Linear("Q", "x")
	n := network.MustNew(p, q)
	src := Format(n)
	if !strings.Contains(src, "s0 x s1") {
		t.Errorf("expected s<index> fallback:\n%s", src)
	}
	if _, err := ParseString(src); err != nil {
		t.Errorf("fallback output must re-parse: %v", err)
	}
}

func TestParseReader(t *testing.T) {
	n, err := Parse(strings.NewReader(figure3Src))
	if err != nil {
		t.Fatal(err)
	}
	if n.Len() != 2 {
		t.Errorf("Len = %d", n.Len())
	}
}
