package fsplang

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// specCorpus returns the repo's .fsp fixtures plus inline specs that
// exercise formatting corners.
func specCorpus(t *testing.T) map[string]string {
	t.Helper()
	corpus := map[string]string{
		"inline-pair": "process P { start s0; s0 a s1; s1 tau s0 }\nprocess Q { t0 a t0 }",
		"inline-dup":  "process P { s0 a s1; s0 a s1; s0 a s1 }\nprocess Q { t0 a t0 }",
		"inline-sort": "process P { s0 b z; s0 a z; s0 a y; z tau z }\nprocess Q { t0 a t0; t0 b t0 }",
		"inline-late-start": "process P { s0 a s1; start s1; s1 a s0 }\n" +
			"process Q { t0 a t0 }",
	}
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.fsp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no testdata fixtures found")
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		corpus[filepath.Base(p)] = string(data)
	}
	return corpus
}

// TestFormatSpecMatchesFormat pins the load-bearing property of the spec
// layer: for every spec whose network form is valid, the spec-level
// canonical renderer agrees byte for byte with the network-level one, so
// speclint and the solver service key the same cache digest.
func TestFormatSpecMatchesFormat(t *testing.T) {
	for name, src := range specCorpus(t) {
		t.Run(name, func(t *testing.T) {
			n, err := ParseString(src)
			if err != nil {
				t.Fatalf("ParseString: %v", err)
			}
			spec, err := ParseSpec(src)
			if err != nil {
				t.Fatalf("ParseSpec: %v", err)
			}
			want := Format(n)
			got := FormatSpec(spec)
			if got != want {
				t.Errorf("FormatSpec disagrees with Format\nspec:\n%s\ngot:\n%s\nwant:\n%s", src, got, want)
			}
		})
	}
}

func TestFormatSpecIdempotent(t *testing.T) {
	invalid := map[string]string{
		"lonely-action":     "process P { s0 a s1 }\nprocess Q { t0 b t0 }",
		"unreachable":       "process P { start s0; s0 a s0; s9 a s9 }\nprocess Q { t0 a t0 }",
		"single-proc":       "process P { s0 a s0 }",
		"empty-proc":        "process P { }\nprocess Q { t0 a t0 }",
		"start-named-state": "process P { start start; s0 a s1 }\nprocess Q { t0 a t0 }",
	}
	corpus := specCorpus(t)
	for name, src := range invalid {
		corpus[name] = src
	}
	for name, src := range corpus {
		t.Run(name, func(t *testing.T) {
			spec, err := ParseSpec(src)
			if err != nil {
				t.Fatalf("ParseSpec: %v", err)
			}
			once := FormatSpec(spec)
			spec2, err := ParseSpec(once)
			if err != nil {
				t.Fatalf("reparse canonical form: %v\n%s", err, once)
			}
			twice := FormatSpec(spec2)
			if once != twice {
				t.Errorf("FormatSpec not idempotent\nonce:\n%s\ntwice:\n%s", once, twice)
			}
		})
	}
}

// TestParseSpecAcceptsInvalidNetworks: the whole point of the spec layer
// is that semantic defects parse so speclint can report them.
func TestParseSpecAcceptsInvalidNetworks(t *testing.T) {
	cases := []string{
		"process P { s0 a s1 }", // a has one owner
		"process P { s0 a s0 }\nprocess Q { t0 a t0 }\nprocess R { u0 a u0 }", // three owners
		"process P { start s0; s0 a s0; dead a dead }\nprocess Q { t0 a t0 }", // unreachable
		"process P { }\nprocess Q { t0 a t0 }",                                // no states
	}
	for _, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString unexpectedly accepted %q", src)
		}
		if _, err := ParseSpec(src); err != nil {
			t.Errorf("ParseSpec rejected %q: %v", src, err)
		}
	}
}

func TestParseSpecSyntaxErrors(t *testing.T) {
	cases := map[string]Pos{
		"process { s0 a s1 }":       {1, 9},  // name missing
		"process P { s0 start s1 }": {1, 16}, // keyword as label
		"process P { s0 a }":        {1, 18}, // brace as to-token
		"process P { s0 a s1":       {1, 9},  // unterminated (process name pos)
		"wat P { s0 a s1 }":         {1, 1},  // missing process keyword
	}
	for src, want := range cases {
		_, err := ParseSpec(src)
		if err == nil {
			t.Errorf("ParseSpec accepted %q", src)
			continue
		}
		var pe *PosError
		if !errors.As(err, &pe) {
			t.Errorf("ParseSpec(%q): error %v is not a PosError", src, err)
			continue
		}
		if !errors.Is(err, ErrSyntax) {
			t.Errorf("ParseSpec(%q): error %v does not wrap ErrSyntax", src, err)
		}
		if pe.Pos != want {
			t.Errorf("ParseSpec(%q): error at %v, want %v", src, pe.Pos, want)
		}
	}
}

func TestSpecPositions(t *testing.T) {
	src := "process P {\n  start s0\n  s0 hello s1\n}\nprocess Q { t0 hello t0 }\n"
	spec, err := ParseSpec(src)
	if err != nil {
		t.Fatal(err)
	}
	p := spec.Processes[0]
	if p.Pos != (Pos{1, 9}) {
		t.Errorf("process name pos = %v, want 1:9", p.Pos)
	}
	if p.Start != "s0" || p.StartPos != (Pos{2, 9}) {
		t.Errorf("start = %q at %v, want s0 at 2:9", p.Start, p.StartPos)
	}
	tr := p.Transitions[0]
	if tr.FromPos != (Pos{3, 3}) || tr.LabelPos != (Pos{3, 6}) || tr.ToPos != (Pos{3, 12}) {
		t.Errorf("transition positions = %v %v %v", tr.FromPos, tr.LabelPos, tr.ToPos)
	}
	if tr.Tau {
		t.Error("non-tau transition marked Tau")
	}
	if got := spec.Processes[1].Pos; got != (Pos{5, 9}) {
		t.Errorf("second process pos = %v, want 5:9", got)
	}
}

func TestSpecWaivers(t *testing.T) {
	src := strings.Join([]string{
		"# fsplint:ignore taudiv known divergence",
		"process P {",
		"  s0 tau s0  # fsplint:ignore sink,unmatched reason here",
		"  s1 a s1    #fsplint:ignore all",
		"}",
		"process Q { t0 a t0 }",
		"# fsplint:ignorenothing",
	}, "\n")
	spec, err := ParseSpec(src)
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		line     int
		analyzer string
		want     bool
	}{
		{1, "taudiv", true},
		{2, "taudiv", true}, // directive covers the next line too
		{3, "taudiv", false},
		{3, "sink", true},
		{3, "unmatched", true},
		{4, "sink", true}, // line-above coverage
		{4, "anything", true},
		{5, "anything", true}, // "all" on line 4 covers line 5
		{7, "nothing", false}, // malformed directive ignored
		{8, "nothing", false},
	}
	for _, c := range checks {
		if got := spec.Waived(c.line, c.analyzer); got != c.want {
			t.Errorf("Waived(%d, %q) = %v, want %v", c.line, c.analyzer, got, c.want)
		}
	}
}

func TestTauSpellings(t *testing.T) {
	spec, err := ParseSpec("process P { s0 tau s1; s1 τ s0; s0 a s1 }\nprocess Q { t0 a t0 }")
	if err != nil {
		t.Fatal(err)
	}
	p := spec.Processes[0]
	if !p.Transitions[0].Tau || !p.Transitions[1].Tau || p.Transitions[2].Tau {
		t.Fatalf("tau flags wrong: %+v", p.Transitions)
	}
	if p.Transitions[0].ActionKey() != "τ" || p.Transitions[1].ActionKey() != "τ" {
		t.Error("ActionKey should normalize both tau spellings to τ")
	}
}
