package fsplang

import (
	"os"
	"path/filepath"
	"testing"
	"unicode/utf8"
)

// FuzzFormatRoundTrip asserts the cache-key soundness property the fspd
// verdict cache is built on: Format is canonical, i.e. for any parseable
// source, Format(Parse(Format(n))) == Format(n). The service addresses
// verdicts by the SHA-256 of the canonical text, so if two formattings of
// the same network could ever differ, equal networks would miss each
// other's cache entries — and, worse, a digest computed from a formatted
// network would not be reproducible from its own round-trip.
//
// Seeds are every checked-in .fsp fixture (philosophers10.fsp is the
// service smoke-test corpus) plus the FuzzParse seed corpus.
func FuzzFormatRoundTrip(f *testing.F) {
	f.Add("process P { start s0; s0 a s1 }")
	f.Add("process P { start s0; s0 tau s0 }\nprocess Q { start q; q a q }")
	f.Add("# leading comment\nprocess P{start x;x τ x}")

	matches, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.fsp"))
	if err == nil {
		for _, m := range matches {
			if data, err := os.ReadFile(m); err == nil {
				f.Add(string(data))
			}
		}
	}

	f.Fuzz(func(t *testing.T, src string) {
		n, err := ParseString(src)
		if err != nil || !utf8.ValidString(src) {
			return // rejected input is fine; Format guarantees hold for valid UTF-8 only
		}
		canonical := Format(n)
		n2, err := ParseString(canonical)
		if err != nil {
			t.Fatalf("canonical text failed to reparse: %v\ninput: %q\ncanonical: %q", err, src, canonical)
		}
		if again := Format(n2); again != canonical {
			t.Fatalf("Format is not idempotent — cache digests would be unstable:\nfirst:  %q\nsecond: %q\ninput: %q",
				canonical, again, src)
		}
	})
}

// TestFormatRoundTripFixtures pins the property on the checked-in
// fixtures even when the fuzz target only replays its corpus (plain `go
// test` runs the seeds, but the explicit loop gives per-file failure
// messages and insists the glob found the fixtures at all).
func TestFormatRoundTripFixtures(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.fsp"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no .fsp fixtures found: %v", err)
	}
	sawPhilosophers := false
	for _, m := range matches {
		data, err := os.ReadFile(m)
		if err != nil {
			t.Fatal(err)
		}
		if filepath.Base(m) == "philosophers10.fsp" {
			sawPhilosophers = true
		}
		n, err := ParseString(string(data))
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		canonical := Format(n)
		n2, err := ParseString(canonical)
		if err != nil {
			t.Fatalf("%s: canonical text failed to reparse: %v", m, err)
		}
		if again := Format(n2); again != canonical {
			t.Errorf("%s: Format not idempotent:\nfirst:  %q\nsecond: %q", m, canonical, again)
		}
	}
	if !sawPhilosophers {
		t.Error("philosophers10.fsp fixture missing from testdata")
	}
}
