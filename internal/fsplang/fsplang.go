// Package fsplang implements a small textual notation for FSP networks,
// used by the fspc command and the examples:
//
//	# dining pair
//	process P {
//	    start s0
//	    s0 a s1      # transition: FROM LABEL TO
//	    s1 tau s0    # "tau" (or "τ") is the unobservable action
//	}
//	process Q {
//	    start t0
//	    t0 a t0
//	}
//
// Statements are separated by newlines or semicolons; '#' starts a
// comment. The first process is the distinguished process by default; the
// first state mentioned in a process is its start state unless a start
// statement overrides it.
package fsplang

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"fspnet/internal/fsp"
	"fspnet/internal/network"
)

// ErrSyntax reports a parse failure with position information.
var ErrSyntax = errors.New("fsplang: syntax error")

// Parse reads a network description.
func Parse(r io.Reader) (*network.Network, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("fsplang: read: %w", err)
	}
	return ParseString(string(data))
}

// ParseString parses a network description from a string.
func ParseString(src string) (*network.Network, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var procs []*fsp.FSP
	for !p.done() {
		proc, err := p.process()
		if err != nil {
			return nil, err
		}
		procs = append(procs, proc)
	}
	if len(procs) == 0 {
		return nil, fmt.Errorf("no processes: %w", ErrSyntax)
	}
	return network.New(procs...)
}

// token is a lexeme with its source line.
type token struct {
	text string
	line int
}

// lex splits the source into word / brace tokens, dropping comments and
// treating ';' as whitespace.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r' || c == ';':
			i++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '{' || c == '}':
			toks = append(toks, token{string(c), line})
			i++
		default:
			j := i
			for j < len(src) && !strings.ContainsRune(" \t\r\n;#{}", rune(src[j])) {
				j++
			}
			toks = append(toks, token{src[i:j], line})
			i = j
		}
	}
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) done() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() (token, bool) {
	if p.done() {
		return token{}, false
	}
	return p.toks[p.pos], true
}

func (p *parser) next() (token, error) {
	t, ok := p.peek()
	if !ok {
		return token{}, fmt.Errorf("unexpected end of input: %w", ErrSyntax)
	}
	p.pos++
	return t, nil
}

func (p *parser) expect(text string) error {
	t, err := p.next()
	if err != nil {
		return err
	}
	if t.text != text {
		return fmt.Errorf("line %d: expected %q, found %q: %w", t.line, text, t.text, ErrSyntax)
	}
	return nil
}

// process parses one "process NAME { … }" block.
func (p *parser) process() (*fsp.FSP, error) {
	if err := p.expect("process"); err != nil {
		return nil, err
	}
	name, err := p.next()
	if err != nil {
		return nil, err
	}
	if name.text == "{" || name.text == "}" {
		return nil, fmt.Errorf("line %d: process name missing: %w", name.line, ErrSyntax)
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	b := fsp.NewBuilder(name.text)
	states := make(map[string]fsp.State)
	stateOf := func(nm string) fsp.State {
		if s, ok := states[nm]; ok {
			return s
		}
		s := b.State(nm)
		states[nm] = s
		return s
	}
	for {
		t, ok := p.peek()
		if !ok {
			return nil, fmt.Errorf("line %d: unterminated process %s: %w",
				name.line, name.text, ErrSyntax)
		}
		if t.text == "}" {
			p.pos++
			break
		}
		if t.text == "start" {
			p.pos++
			st, err := p.next()
			if err != nil {
				return nil, err
			}
			b.SetStart(stateOf(st.text))
			continue
		}
		// Transition: FROM LABEL TO.
		from, err := p.next()
		if err != nil {
			return nil, err
		}
		label, err := p.next()
		if err != nil {
			return nil, err
		}
		to, err := p.next()
		if err != nil {
			return nil, err
		}
		for _, tk := range []token{label, to} {
			if tk.text == "{" || tk.text == "}" || tk.text == "start" {
				return nil, fmt.Errorf("line %d: malformed transition: %w", tk.line, ErrSyntax)
			}
		}
		lbl := fsp.Action(label.text)
		if label.text == "tau" || label.text == string(fsp.Tau) {
			lbl = fsp.Tau
		}
		b.Add(stateOf(from.text), lbl, stateOf(to.text))
	}
	proc, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("line %d: %w", name.line, err)
	}
	return proc, nil
}

// Format renders a network in the fsplang notation; Parse(Format(n)) is
// equivalent to n, and Format is canonical: reparsing its output and
// formatting again reproduces it byte for byte, however the source
// network's states happened to be numbered. Canonicality comes from
// emitting each process's state blocks in first-mention order — the order
// the parser assigns state indices in — rather than in internal index
// order.
func Format(n *network.Network) string {
	var sb strings.Builder
	for i := 0; i < n.Len(); i++ {
		p := n.Process(i)
		useNames := uniqueStateNames(p)
		stateToken := func(s fsp.State) string {
			if useNames {
				return p.StateName(s)
			}
			return fmt.Sprintf("s%d", s)
		}

		// Per-state transitions in emission order: by label, then target.
		outOf := func(s fsp.State) []fsp.Transition {
			ts := append([]fsp.Transition(nil), p.Out(s)...)
			sort.Slice(ts, func(a, b int) bool {
				if ts[a].Label != ts[b].Label {
					return ts[a].Label < ts[b].Label
				}
				return ts[a].To < ts[b].To
			})
			return ts
		}

		// First-mention order: the start state, then targets in the order
		// the emitted text will name them. This is exactly the index
		// order the parser reconstructs, so Format∘Parse∘Format = Format.
		order := make([]fsp.State, 0, p.NumStates())
		seen := make([]bool, p.NumStates())
		mention := func(s fsp.State) {
			if !seen[s] {
				seen[s] = true
				order = append(order, s)
			}
		}
		mention(p.Start())
		for i := 0; i < len(order); i++ {
			for _, t := range outOf(order[i]) {
				mention(t.To)
			}
		}
		for s := 0; s < p.NumStates(); s++ {
			mention(fsp.State(s)) // unreachable stragglers, index order
		}

		fmt.Fprintf(&sb, "process %s {\n", sanitizeName(p.Name()))
		fmt.Fprintf(&sb, "    start %s\n", stateToken(p.Start()))
		for _, s := range order {
			for _, t := range outOf(s) {
				lbl := string(t.Label)
				if t.Label == fsp.Tau {
					lbl = "tau"
				}
				fmt.Fprintf(&sb, "    %s %s %s\n", stateToken(t.From), lbl, stateToken(t.To))
			}
		}
		sb.WriteString("}\n")
	}
	return sb.String()
}

// uniqueStateNames reports whether every state name is a distinct lone
// word usable as a token; otherwise Format falls back to s<index> names.
func uniqueStateNames(p *fsp.FSP) bool {
	seen := make(map[string]bool, p.NumStates())
	for s := 0; s < p.NumStates(); s++ {
		nm := p.StateName(fsp.State(s))
		if nm == "" || nm == "start" || strings.ContainsAny(nm, " \t\r\n;#{}") || seen[nm] {
			return false
		}
		seen[nm] = true
	}
	return true
}

func sanitizeName(nm string) string {
	if nm != "" && !strings.ContainsAny(nm, " \t\r\n;#{}") {
		return nm
	}
	return strings.Map(func(r rune) rune {
		if strings.ContainsRune(" \t\r\n;#{}", r) {
			return '_'
		}
		return r
	}, nm)
}
