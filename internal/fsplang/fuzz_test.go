package fsplang

import (
	"os"
	"path/filepath"
	"testing"
	"unicode/utf8"
)

// FuzzParse throws arbitrary input at the fsplang parser. Two properties
// are enforced on every input the parser accepts:
//
//  1. round-trip: Format(Parse(src)) must itself parse, to a network with
//     the same shape — the CLI depends on Format output being valid
//     fsplang;
//  2. determinism: formatting the reparse must reproduce the first
//     formatting byte for byte (the canonical-encoding invariant the
//     mapiter analyzer polices statically).
//
// Seeds come from the repository's .fsp examples plus the corpus under
// testdata/fuzz/FuzzParse; CI runs this target for 10s on every push.
func FuzzParse(f *testing.F) {
	f.Add("process P { start s0; s0 a s1 }")
	f.Add("process P { start s0; s0 tau s0 }\nprocess Q { start q; q a q }")
	f.Add("# comment\nprocess P{start x;x τ x}")
	f.Add("process")
	f.Add("")
	f.Add("process P { start s0; s0 a s1 } process P { start s0; s0 a s1 }")

	// The checked-in example networks are the richest seeds.
	matches, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.fsp"))
	if err == nil {
		for _, m := range matches {
			if data, err := os.ReadFile(m); err == nil {
				f.Add(string(data))
			}
		}
	}

	f.Fuzz(func(t *testing.T, src string) {
		n, err := ParseString(src)
		if err != nil {
			return // rejected input is fine; crashing is not
		}
		if !utf8.ValidString(src) {
			return // Format's output guarantees hold for valid UTF-8 only
		}
		first := Format(n)
		n2, err := ParseString(first)
		if err != nil {
			t.Fatalf("Format output failed to reparse: %v\ninput: %q\nformatted: %q", err, src, first)
		}
		if n2.Len() != n.Len() {
			t.Fatalf("round-trip changed process count %d -> %d\ninput: %q", n.Len(), n2.Len(), src)
		}
		for i := 0; i < n.Len(); i++ {
			p, q := n.Process(i), n2.Process(i)
			if p.NumStates() != q.NumStates() || p.NumTransitions() != q.NumTransitions() {
				t.Fatalf("round-trip changed process %d shape: %v -> %v\ninput: %q", i, p, q, src)
			}
		}
		if second := Format(n2); second != first {
			t.Fatalf("formatting is not canonical:\nfirst:  %q\nsecond: %q\ninput: %q", first, second, src)
		}
	})
}
