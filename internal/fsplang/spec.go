package fsplang

// This file implements the *positioned* view of the fsplang notation used
// by internal/speclint: ParseSpec keeps every token's line and column and
// performs no semantic validation beyond the grammar, so well-formedness
// defects that network.New or fsp.Builder would reject outright — actions
// with no partner, states unreachable from the start — survive parsing
// and can be reported as diagnostics instead of a single opaque error.
//
// FormatSpec is the canonical renderer at the spec level. For any spec
// whose network form is valid, FormatSpec(spec) is byte-identical to
// Format(network); and for every parseable spec, valid network or not,
// FormatSpec∘ParseSpec∘FormatSpec = FormatSpec. The speclint service
// path leans on this: diagnostics are a pure function of the canonical
// text, so they can be cached under its digest.
//
// Lint findings are waived per line with a directive comment:
//
//	#fsplint:ignore name1,name2 optional reason
//
// placed on, or on the line immediately above, the offending statement —
// the .fsp twin of the Go sources' //fsplint:ignore.

import (
	"fmt"
	"sort"
	"strings"
)

// SpecIgnoreDirective is the comment prefix that waives a speclint
// finding on its own line or the line below. The special name "all"
// waives every analyzer.
const SpecIgnoreDirective = "fsplint:ignore"

// Pos is a 1-based line/column position in a spec source.
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// PosError is a syntax error with position information; ParseSpec wraps
// every failure in one so drivers can report file:line:col diagnostics.
type PosError struct {
	Pos Pos
	Err error
}

func (e *PosError) Error() string { return fmt.Sprintf("line %d: %v", e.Pos.Line, e.Err) }
func (e *PosError) Unwrap() error { return e.Err }

// Spec is a parsed network description with positions, prior to any
// semantic validation.
type Spec struct {
	Processes []*ProcDecl

	// waivers maps a source line to the analyzer names waived there by a
	// #fsplint:ignore directive on that line.
	waivers map[int]map[string]bool
}

// ProcDecl is one "process NAME { … }" block.
type ProcDecl struct {
	Name string
	Pos  Pos // the name token

	// Start is the resolved start state name (explicit start statement,
	// or the first state mentioned), with the position of the token that
	// established it. Empty for a process with no states.
	Start    string
	StartPos Pos

	// States lists the distinct state names in first-mention order, each
	// with its first-mention position.
	States []StateDecl

	Transitions []TransDecl
}

// StateDecl records a state name and where it was first mentioned.
type StateDecl struct {
	Name string
	Pos  Pos
}

// TransDecl is one FROM LABEL TO statement.
type TransDecl struct {
	From, Label, To          string
	Tau                      bool // Label is "tau" or "τ"
	FromPos, LabelPos, ToPos Pos
}

// ActionKey returns the canonical action identity of the transition's
// label: "τ" for either spelling of the unobservable action, the label
// text otherwise.
func (t *TransDecl) ActionKey() string {
	if t.Tau {
		return "τ"
	}
	return t.Label
}

// StateIndex returns the first-mention index of state name, or -1.
func (p *ProcDecl) StateIndex(name string) int {
	for i, s := range p.States {
		if s.Name == name {
			return i
		}
	}
	return -1
}

// Waived reports whether a diagnostic from the named analyzer at the
// given line is silenced by a #fsplint:ignore directive on that line or
// the line above.
func (s *Spec) Waived(line int, analyzer string) bool {
	if s.waivers == nil {
		return false
	}
	for _, l := range [2]int{line, line - 1} {
		if names := s.waivers[l]; names != nil && (names[analyzer] || names["all"]) {
			return true
		}
	}
	return false
}

// ParseSpec parses a network description into the positioned AST. Only
// the grammar is enforced; semantic defects (unpartnered actions,
// unreachable states, empty processes) parse successfully so speclint
// can report them with positions.
func ParseSpec(src string) (*Spec, error) {
	toks := lexPos(src)
	spec := &Spec{waivers: collectSpecWaivers(src)}
	p := &specParser{toks: toks}
	for !p.done() {
		proc, err := p.process()
		if err != nil {
			return nil, err
		}
		spec.Processes = append(spec.Processes, proc)
	}
	if len(spec.Processes) == 0 {
		return nil, &PosError{Pos: Pos{Line: 1, Col: 1}, Err: fmt.Errorf("no processes: %w", ErrSyntax)}
	}
	return spec, nil
}

// posToken is a lexeme with its full source position.
type posToken struct {
	text string
	pos  Pos
}

// lexPos is lex with column tracking: same token boundaries, same
// comment and separator handling.
func lexPos(src string) []posToken {
	var toks []posToken
	line, lineStart := 1, 0
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
			lineStart = i
		case c == ' ' || c == '\t' || c == '\r' || c == ';':
			i++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '{' || c == '}':
			toks = append(toks, posToken{string(c), Pos{line, i - lineStart + 1}})
			i++
		default:
			j := i
			for j < len(src) && !strings.ContainsRune(" \t\r\n;#{}", rune(src[j])) {
				j++
			}
			toks = append(toks, posToken{src[i:j], Pos{line, i - lineStart + 1}})
			i = j
		}
	}
	return toks
}

// collectSpecWaivers scans comments for #fsplint:ignore directives.
func collectSpecWaivers(src string) map[int]map[string]bool {
	waivers := make(map[int]map[string]bool)
	for lineno, text := range splitLines(src) {
		idx := strings.IndexByte(text, '#')
		if idx < 0 {
			continue
		}
		comment := strings.TrimLeft(text[idx+1:], " \t")
		rest, ok := strings.CutPrefix(comment, SpecIgnoreDirective)
		if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			continue
		}
		names := waivers[lineno+1]
		if names == nil {
			names = make(map[string]bool)
			waivers[lineno+1] = names
		}
		for _, name := range strings.Split(fields[0], ",") {
			names[name] = true
		}
	}
	return waivers
}

func splitLines(src string) []string {
	return strings.Split(strings.ReplaceAll(src, "\r\n", "\n"), "\n")
}

type specParser struct {
	toks []posToken
	pos  int
}

func (p *specParser) done() bool { return p.pos >= len(p.toks) }

func (p *specParser) peek() (posToken, bool) {
	if p.done() {
		return posToken{}, false
	}
	return p.toks[p.pos], true
}

func (p *specParser) next() (posToken, error) {
	t, ok := p.peek()
	if !ok {
		last := Pos{1, 1}
		if len(p.toks) > 0 {
			last = p.toks[len(p.toks)-1].pos
		}
		return posToken{}, &PosError{Pos: last, Err: fmt.Errorf("unexpected end of input: %w", ErrSyntax)}
	}
	p.pos++
	return t, nil
}

func (p *specParser) expect(text string) error {
	t, err := p.next()
	if err != nil {
		return err
	}
	if t.text != text {
		return &PosError{Pos: t.pos, Err: fmt.Errorf("expected %q, found %q: %w", text, t.text, ErrSyntax)}
	}
	return nil
}

// process parses one block, mirroring parser.process statement for
// statement but recording positions instead of building an fsp.FSP.
func (p *specParser) process() (*ProcDecl, error) {
	if err := p.expect("process"); err != nil {
		return nil, err
	}
	name, err := p.next()
	if err != nil {
		return nil, err
	}
	if name.text == "{" || name.text == "}" {
		return nil, &PosError{Pos: name.pos, Err: fmt.Errorf("process name missing: %w", ErrSyntax)}
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	decl := &ProcDecl{Name: name.text, Pos: name.pos}
	seen := make(map[string]bool)
	mention := func(t posToken) {
		if !seen[t.text] {
			seen[t.text] = true
			decl.States = append(decl.States, StateDecl{Name: t.text, Pos: t.pos})
		}
		if decl.Start == "" {
			decl.Start, decl.StartPos = t.text, t.pos
		}
	}
	for {
		t, ok := p.peek()
		if !ok {
			return nil, &PosError{Pos: name.pos,
				Err: fmt.Errorf("unterminated process %s: %w", name.text, ErrSyntax)}
		}
		if t.text == "}" {
			p.pos++
			break
		}
		if t.text == "start" {
			p.pos++
			st, err := p.next()
			if err != nil {
				return nil, err
			}
			mention(st)
			// Like Builder.SetStart, a later start statement overrides an
			// earlier one (and the first-mention default).
			decl.Start, decl.StartPos = st.text, st.pos
			continue
		}
		from, err := p.next()
		if err != nil {
			return nil, err
		}
		label, err := p.next()
		if err != nil {
			return nil, err
		}
		to, err := p.next()
		if err != nil {
			return nil, err
		}
		for _, tk := range []posToken{label, to} {
			if tk.text == "{" || tk.text == "}" || tk.text == "start" {
				return nil, &PosError{Pos: tk.pos, Err: fmt.Errorf("malformed transition: %w", ErrSyntax)}
			}
		}
		mention(from)
		mention(to)
		decl.Transitions = append(decl.Transitions, TransDecl{
			From: from.text, Label: label.text, To: to.text,
			Tau:     label.text == "tau" || label.text == "τ",
			FromPos: from.pos, LabelPos: label.pos, ToPos: to.pos,
		})
	}
	return decl, nil
}

// FormatSpec renders a spec in canonical form, by the same rules Format
// applies to networks: per process, the start statement first, then each
// state's transitions in first-emission order with the per-state
// transitions sorted by (action, target index) — τ spelled "tau" but
// ordered as "τ" — and exact duplicate transitions dropped. For specs
// whose network form is valid, FormatSpec(spec) == Format(network), and
// FormatSpec is idempotent under reparsing for every parseable spec.
// Comments (and with them waiver directives) do not survive; canonical
// text is directive-free.
func FormatSpec(s *Spec) string {
	var sb strings.Builder
	for _, proc := range s.Processes {
		fmt.Fprintf(&sb, "process %s {\n", sanitizeName(proc.Name))
		if proc.Start == "" {
			sb.WriteString("}\n")
			continue
		}
		// Like Format, fall back to s<index> tokens when a state name is
		// unusable as the lone word of a state token ("start" via a
		// "start start" statement, or a brace token).
		idx := make(map[string]int, len(proc.States))
		useNames := true
		for i, st := range proc.States {
			idx[st.Name] = i
			if st.Name == "start" || strings.ContainsAny(st.Name, " \t\r\n;#{}") {
				useNames = false
			}
		}
		stateToken := func(name string) string {
			if useNames {
				return name
			}
			return fmt.Sprintf("s%d", idx[name])
		}
		outOf := canonicalOut(proc, idx)
		fmt.Fprintf(&sb, "    start %s\n", stateToken(proc.Start))
		for _, name := range canonicalOrder(proc, outOf) {
			for _, t := range outOf[name] {
				lbl := t.Label
				if t.Tau {
					lbl = "tau"
				}
				fmt.Fprintf(&sb, "    %s %s %s\n", stateToken(t.From), lbl, stateToken(t.To))
			}
		}
		sb.WriteString("}\n")
	}
	return sb.String()
}

// canonicalOut groups the process's transitions by from-state, sorted by
// (action key, target first-mention index) with duplicates removed — the
// spec-level image of what Builder.Build plus Format's per-state sort
// produce: Format compares fsp.State targets, which are exactly the
// first-mention indices.
func canonicalOut(proc *ProcDecl, idx map[string]int) map[string][]TransDecl {
	out := make(map[string][]TransDecl, len(proc.States))
	for _, t := range proc.Transitions {
		out[t.From] = append(out[t.From], t)
	}
	for name, ts := range out {
		sort.SliceStable(ts, func(a, b int) bool {
			ka, kb := ts[a].ActionKey(), ts[b].ActionKey()
			if ka != kb {
				return ka < kb
			}
			return idx[ts[a].To] < idx[ts[b].To]
		})
		w := 0
		for i, t := range ts {
			if i == 0 || t.ActionKey() != ts[i-1].ActionKey() || t.To != ts[i-1].To {
				ts[w] = t
				w++
			}
		}
		out[name] = ts[:w]
	}
	return out
}

// canonicalOrder returns the process's states in canonical emission
// order: the start state, then targets in the order the emitted text
// names them, then stragglers in source first-mention order.
func canonicalOrder(proc *ProcDecl, outOf map[string][]TransDecl) []string {
	order := make([]string, 0, len(proc.States))
	seen := make(map[string]bool, len(proc.States))
	mention := func(name string) {
		if !seen[name] {
			seen[name] = true
			order = append(order, name)
		}
	}
	mention(proc.Start)
	for i := 0; i < len(order); i++ {
		for _, t := range outOf[order[i]] {
			mention(t.To)
		}
	}
	for _, s := range proc.States {
		mention(s.Name)
	}
	return order
}
