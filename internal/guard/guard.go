// Package guard is the resource governor threaded through every solver:
// the paper's hardness results (Theorems 1–2) mean each analysis can
// legitimately run forever-sized, so every entry point must be
// cancellable, deadline-bounded, and able to report what it learned
// before stopping.
//
// A G carries a context.Context (cancellation and context deadlines), an
// optional wall-clock deadline, and a joint state/step budget shared by
// every pass of one analysis. Solvers consult it through two calls:
//
//   - Poll(pass, level) at coarse-grained barriers — BFS level barriers,
//     pass boundaries, or every-N-nodes amortization points — returning
//     ErrCanceled or ErrDeadline when the run must stop;
//   - Charge(n) when interning n new states or positions, returning
//     ErrBudget once the joint budget is exhausted.
//
// Both are nil-receiver safe, so an ungoverned call site simply passes a
// nil *G. On exhaustion solvers wrap the reason in a *LimitErr carrying a
// Partial verdict — states interned, frontier depth, the pass in
// progress, and the best S_u/S_c/S_a bounds established so far — so a
// caller under a request deadline still gets everything the truncated run
// proved.
//
// The Hook seam exists for package guard/faultinject, which injects
// cancellation, deadline expiry, or synthetic worker panics at chosen
// BFS levels and pass boundaries; production code leaves it nil.
package guard

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Sentinel reasons for stopping an analysis early. Every governed solver
// returns a *LimitErr whose Reason wraps exactly one of them, so callers
// have a single errors.Is target per cause.
var (
	// ErrBudget reports an exhausted state/step budget — the package-level
	// sentinels poss.ErrBudget, game.ErrBudget, ilp.ErrNodeBudget, and
	// explore.ErrBudget all wrap it.
	ErrBudget = errors.New("guard: state/step budget exhausted")
	// ErrCanceled reports that the run's context was canceled.
	ErrCanceled = errors.New("guard: analysis canceled")
	// ErrDeadline reports an expired wall-clock or context deadline.
	ErrDeadline = errors.New("guard: deadline exceeded")
	// ErrPanic reports a worker panic recovered at a level barrier.
	ErrPanic = errors.New("guard: worker panicked")
)

// IsLimit reports whether err is (or wraps) one of the governor's stop
// reasons, as opposed to a domain error such as a shape violation.
func IsLimit(err error) bool {
	return errors.Is(err, ErrBudget) || errors.Is(err, ErrCanceled) ||
		errors.Is(err, ErrDeadline) || errors.Is(err, ErrPanic)
}

// Hook intercepts governor polls — the fault-injection seam used by
// guard/faultinject. Implementations must be safe for concurrent use:
// BFS workers consult Panic from multiple goroutines.
type Hook interface {
	// Fire returns a non-nil reason (wrapping ErrCanceled or ErrDeadline)
	// to make the poll at (pass, level) report exhaustion.
	Fire(pass string, level int) error
	// Panic reports whether a worker polling at (pass, level) should
	// panic, exercising the barrier's recovery path.
	Panic(pass string, level int) bool
}

// Config assembles a governor.
type Config struct {
	// Context supplies cancellation (and, if it has one, a deadline).
	// nil means context.Background().
	Context context.Context
	// Deadline is an absolute wall-clock bound; zero means none. It is
	// checked only at Poll sites, so overshoot is bounded by the longest
	// inter-barrier stretch.
	Deadline time.Time
	// Budget bounds the joint states/steps Charge()d across every pass of
	// the analysis; 0 or negative means unlimited.
	Budget int
	// Hook is the fault-injection seam; production code leaves it nil.
	Hook Hook
}

// G is one analysis run's governor. A nil *G is valid and never stops
// anything. A single G may be shared by concurrent solvers (AnalyzeAll):
// the budget counter is atomic and the remaining fields are immutable.
type G struct {
	ctx      context.Context
	deadline time.Time
	budget   int64
	used     atomic.Int64
	start    time.Time
	hook     Hook
}

// New builds a governor from c.
func New(c Config) *G {
	g := &G{ctx: c.Context, deadline: c.Deadline, budget: int64(c.Budget), hook: c.Hook}
	g.start = time.Now() //fsplint:ignore detrand start stamp so partial verdicts can report elapsed wall time
	return g
}

// Poll checks the hook, cancellation, and deadlines. pass names the
// solver stage ("bfs", "tau-cycle", "game", …) and level its progress
// (BFS depth, or an amortized node count); both exist for diagnostics
// and fault injection. Returns nil, or a reason wrapping ErrCanceled or
// ErrDeadline.
func (g *G) Poll(pass string, level int) error {
	if g == nil {
		return nil
	}
	if g.hook != nil {
		if err := g.hook.Fire(pass, level); err != nil {
			return err
		}
	}
	if g.ctx != nil {
		if err := g.ctx.Err(); err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				return fmt.Errorf("%w: %w", ErrDeadline, err)
			}
			return fmt.Errorf("%w: %w", ErrCanceled, err)
		}
	}
	if !g.deadline.IsZero() {
		if now := time.Now(); now.After(g.deadline) { //fsplint:ignore detrand wall-clock deadline check, amortized at level barriers
			return fmt.Errorf("%w: %s past the deadline", ErrDeadline, now.Sub(g.deadline).Round(time.Microsecond))
		}
	}
	return nil
}

// Charge consumes n units of the joint state/step budget, returning a
// reason wrapping ErrBudget once it is exhausted.
func (g *G) Charge(n int) error {
	if g == nil || g.budget <= 0 {
		return nil
	}
	if g.used.Add(int64(n)) > g.budget {
		return fmt.Errorf("%w: joint budget of %d states/steps", ErrBudget, g.budget)
	}
	return nil
}

// Used returns the states/steps charged so far.
func (g *G) Used() int {
	if g == nil {
		return 0
	}
	return int(g.used.Load())
}

// ShouldPanic reports whether the fault-injection hook wants a worker
// polling at (pass, level) to panic. Always false without a hook.
func (g *G) ShouldPanic(pass string, level int) bool {
	return g != nil && g.hook != nil && g.hook.Panic(pass, level)
}

// Limit wraps a stop reason and a partial verdict into a *LimitErr,
// stamping the elapsed wall time when the governor has a start time.
// Valid on a nil receiver (the error then carries no elapsed time).
func (g *G) Limit(reason error, p Partial) *LimitErr {
	if g != nil && !g.start.IsZero() {
		p.Elapsed = time.Since(g.start) //fsplint:ignore detrand elapsed-time stamp for the partial-verdict diagnostic
	}
	return &LimitErr{Reason: reason, Partial: p}
}
