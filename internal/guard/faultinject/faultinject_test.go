package faultinject_test

import (
	"errors"
	"testing"

	"fspnet/internal/guard"
	"fspnet/internal/guard/faultinject"
)

func TestCancelAtFiresAtAndBeyondLevel(t *testing.T) {
	h := faultinject.CancelAt("bfs", 2)
	if err := h.Fire("bfs", 1); err != nil {
		t.Errorf("Fire below level = %v, want nil", err)
	}
	if err := h.Fire("game", 5); err != nil {
		t.Errorf("Fire on other pass = %v, want nil", err)
	}
	for _, lvl := range []int{2, 3, 100} {
		if err := h.Fire("bfs", lvl); !errors.Is(err, guard.ErrCanceled) {
			t.Errorf("Fire(bfs, %d) = %v, want ErrCanceled", lvl, err)
		}
	}
	if h.Panic("bfs", 2) {
		t.Error("cancel hook must never request a panic")
	}
}

func TestDeadlineAtWrapsErrDeadline(t *testing.T) {
	h := faultinject.DeadlineAt("compose", 0)
	if err := h.Fire("compose", 0); !errors.Is(err, guard.ErrDeadline) {
		t.Errorf("Fire = %v, want ErrDeadline", err)
	}
}

func TestPanicAtOnlyPanics(t *testing.T) {
	h := faultinject.PanicAt("bfs", 3)
	if err := h.Fire("bfs", 3); err != nil {
		t.Errorf("panic hook Fire = %v, want nil (panics happen via Panic)", err)
	}
	if h.Panic("bfs", 2) {
		t.Error("Panic below level = true")
	}
	if h.Panic("game", 3) {
		t.Error("Panic on other pass = true")
	}
	if !h.Panic("bfs", 3) || !h.Panic("bfs", 7) {
		t.Error("Panic at/beyond level = false")
	}
}

// TestHookThroughGovernor checks the governor consults hooks before any
// other stop source and maps their verdicts onto Poll / ShouldPanic.
func TestHookThroughGovernor(t *testing.T) {
	g := guard.New(guard.Config{Hook: faultinject.CancelAt("bfs", 1)})
	if err := g.Poll("bfs", 0); err != nil {
		t.Fatalf("Poll below injection level = %v", err)
	}
	err := g.Poll("bfs", 1)
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("Poll at injection level = %v, want ErrCanceled", err)
	}

	p := guard.New(guard.Config{Hook: faultinject.PanicAt("bfs", 2)})
	if p.ShouldPanic("bfs", 1) {
		t.Error("ShouldPanic below level = true")
	}
	if !p.ShouldPanic("bfs", 2) {
		t.Error("ShouldPanic at level = false")
	}
	if err := p.Poll("bfs", 2); err != nil {
		t.Errorf("panic hook must not trip Poll: %v", err)
	}
}
