// Package faultinject provides test-only guard.Hook implementations that
// force an analysis to fail at a chosen BFS level or pass boundary:
// cancellation, deadline expiry, or a synthetic worker panic. The -race
// sweep tests use them to prove the engine always returns a well-formed
// *guard.LimitErr — never a hang, a deadlocked barrier, or a verdict the
// uncancelled run contradicts.
//
// Hooks are immutable and therefore trivially safe for the concurrent
// Panic consultations the BFS workers perform.
package faultinject

import (
	"fmt"

	"fspnet/internal/guard"
)

// hook fires once the governed run polls the named pass at or beyond the
// given level. Matching ">= level" rather than "== level" keeps sweeps
// meaningful for passes whose poll levels advance in amortized strides.
type hook struct {
	pass   string
	level  int
	reason error // nil for panic hooks
	panics bool
}

// CancelAt returns a hook that injects cancellation at (pass, level).
func CancelAt(pass string, level int) guard.Hook {
	return &hook{pass: pass, level: level, reason: guard.ErrCanceled}
}

// DeadlineAt returns a hook that injects deadline expiry at (pass, level).
func DeadlineAt(pass string, level int) guard.Hook {
	return &hook{pass: pass, level: level, reason: guard.ErrDeadline}
}

// PanicAt returns a hook that makes every worker polling at (pass, level)
// panic, exercising the barrier's recovery path.
func PanicAt(pass string, level int) guard.Hook {
	return &hook{pass: pass, level: level, panics: true}
}

func (h *hook) Fire(pass string, level int) error {
	if h.panics || pass != h.pass || level < h.level {
		return nil
	}
	return fmt.Errorf("faultinject: injected at %s level %d: %w", pass, level, h.reason)
}

func (h *hook) Panic(pass string, level int) bool {
	return h.panics && pass == h.pass && level >= h.level
}
