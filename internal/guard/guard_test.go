package guard_test

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"fspnet/internal/explore"
	"fspnet/internal/fsp"
	"fspnet/internal/fsptest"
	"fspnet/internal/game"
	"fspnet/internal/guard"
	"fspnet/internal/ilp"
	"fspnet/internal/poss"
)

// pastDeadline is a fixed instant long before any test run, so deadline
// expiry can be tested without consulting the wall clock.
var pastDeadline = time.Unix(1, 0)

func TestNilGovernor(t *testing.T) {
	var g *guard.G
	if err := g.Poll("bfs", 0); err != nil {
		t.Errorf("nil Poll = %v", err)
	}
	if err := g.Charge(1 << 30); err != nil {
		t.Errorf("nil Charge = %v", err)
	}
	if g.Used() != 0 {
		t.Errorf("nil Used = %d", g.Used())
	}
	if g.ShouldPanic("bfs", 0) {
		t.Error("nil ShouldPanic = true")
	}
	le := g.Limit(guard.ErrBudget, guard.Partial{Pass: "bfs"})
	if le.Partial.Elapsed != 0 {
		t.Errorf("nil Limit stamped elapsed %v", le.Partial.Elapsed)
	}
}

func TestPollCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := guard.New(guard.Config{Context: ctx})
	if err := g.Poll("bfs", 0); err != nil {
		t.Fatalf("pre-cancel Poll = %v", err)
	}
	cancel()
	err := g.Poll("bfs", 1)
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("Poll after cancel = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cause %v must keep wrapping context.Canceled", err)
	}
	if !guard.IsLimit(err) {
		t.Errorf("IsLimit(%v) = false", err)
	}
}

func TestPollContextDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), pastDeadline)
	defer cancel()
	err := guard.New(guard.Config{Context: ctx}).Poll("game", 0)
	if !errors.Is(err, guard.ErrDeadline) {
		t.Fatalf("Poll = %v, want ErrDeadline", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("cause %v must keep wrapping context.DeadlineExceeded", err)
	}
}

func TestPollWallDeadline(t *testing.T) {
	g := guard.New(guard.Config{Deadline: pastDeadline})
	if err := g.Poll("bfs", 0); !errors.Is(err, guard.ErrDeadline) {
		t.Fatalf("Poll = %v, want ErrDeadline", err)
	}
}

func TestCharge(t *testing.T) {
	g := guard.New(guard.Config{Budget: 10})
	if err := g.Charge(5); err != nil {
		t.Fatalf("Charge(5) = %v", err)
	}
	if err := g.Charge(5); err != nil {
		t.Fatalf("Charge to exactly the budget = %v", err)
	}
	err := g.Charge(1)
	if !errors.Is(err, guard.ErrBudget) {
		t.Fatalf("Charge past the budget = %v, want ErrBudget", err)
	}
	if g.Used() != 11 {
		t.Errorf("Used = %d, want 11", g.Used())
	}
}

func TestLimitStampsElapsed(t *testing.T) {
	g := guard.New(guard.Config{})
	time.Sleep(time.Millisecond)
	le := g.Limit(guard.ErrDeadline, guard.Partial{Pass: "bfs", States: 7})
	if le.Partial.Elapsed <= 0 {
		t.Errorf("Elapsed = %v, want > 0", le.Partial.Elapsed)
	}
	if le.Partial.States != 7 || le.Partial.Pass != "bfs" {
		t.Errorf("Partial mangled: %+v", le.Partial)
	}
}

func TestBound(t *testing.T) {
	if guard.Of(true) != guard.True || guard.Of(false) != guard.False {
		t.Error("Of broken")
	}
	if guard.Unknown.Known() {
		t.Error("Unknown.Known() = true")
	}
	if guard.Unknown.Contradicts(true) || guard.Unknown.Contradicts(false) {
		t.Error("Unknown contradicts a verdict")
	}
	if !guard.True.Contradicts(false) || guard.True.Contradicts(true) {
		t.Error("True.Contradicts broken")
	}
	if !guard.False.Contradicts(true) || guard.False.Contradicts(false) {
		t.Error("False.Contradicts broken")
	}
}

func TestLimitErrFormat(t *testing.T) {
	le := &guard.LimitErr{
		Reason:  guard.ErrBudget,
		Partial: guard.Partial{States: 12, Depth: 3, Pass: "bfs", Su: guard.False},
	}
	msg := le.Error()
	for _, want := range []string{"partial:", "pass=bfs", "states=12", "depth=3", "S_u=false", "S_c=?"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() = %q, missing %q", msg, want)
		}
	}
	if !errors.Is(le, guard.ErrBudget) {
		t.Error("LimitErr must unwrap to its reason")
	}
}

// TestBudgetSentinelUnification is the regression test for the unified
// budget sentinel: every package-level budget error wraps guard.ErrBudget
// while the legacy errors.Is targets keep matching.
func TestBudgetSentinelUnification(t *testing.T) {
	for name, sentinel := range map[string]error{
		"poss.ErrBudget":    poss.ErrBudget,
		"game.ErrBudget":    game.ErrBudget,
		"ilp.ErrNodeBudget": ilp.ErrNodeBudget,
		"explore.ErrBudget": explore.ErrBudget,
	} {
		if !errors.Is(sentinel, guard.ErrBudget) {
			t.Errorf("%s does not wrap guard.ErrBudget", name)
		}
		if !guard.IsLimit(sentinel) {
			t.Errorf("IsLimit(%s) = false", name)
		}
	}
}

// TestBudgetSentinelUnificationBehavioral runs real solvers into tiny
// budgets and checks both the legacy and the unified targets match the
// returned errors.
func TestBudgetSentinelUnificationBehavioral(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n := fsptest.TreeNetwork(r, fsptest.NetConfig{Procs: 5, ActionsPerEdge: 2, MaxStates: 4, TauProb: 0.2})

	_, _, err := explore.UnavoidableAcyclic(n, 0, explore.Options{MaxStates: 1})
	if !errors.Is(err, explore.ErrBudget) || !errors.Is(err, guard.ErrBudget) {
		t.Errorf("explore budget error = %v, want both explore.ErrBudget and guard.ErrBudget", err)
	}

	q, err := n.Context(0, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := poss.Of(q, 1); !errors.Is(err, poss.ErrBudget) || !errors.Is(err, guard.ErrBudget) {
		t.Errorf("poss budget error = %v, want both poss.ErrBudget and guard.ErrBudget", err)
	}

	p := tauFreeLinear()
	if _, err := game.SolveAcyclicOpts(p, q, game.Options{Budget: 1}); !errors.Is(err, game.ErrBudget) || !errors.Is(err, guard.ErrBudget) {
		t.Errorf("game budget error = %v, want both game.ErrBudget and guard.ErrBudget", err)
	}
}

// tauFreeLinear is a minimal τ-free process for the game entry point.
func tauFreeLinear() *fsp.FSP {
	return fsp.Linear("P", "e0_0", "e0_1")
}
