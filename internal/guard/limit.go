package guard

import (
	"fmt"
	"strings"
	"time"
)

// Bound is a three-valued answer for one of the paper's success
// predicates: a truncated run may have already decided a predicate
// (explore's monotone flags decide S_u/S_c the moment a stuck vector is
// interned) even though the full analysis never finished.
type Bound int8

const (
	// Unknown means the truncated run established nothing.
	Unknown Bound = iota
	// False means the predicate was already decided false.
	False
	// True means the predicate was already decided true.
	True
)

// Of lifts a decided boolean verdict into a Bound.
func Of(v bool) Bound {
	if v {
		return True
	}
	return False
}

// Known reports whether the bound carries a decision.
func (b Bound) Known() bool { return b != Unknown }

// Contradicts reports whether the bound disagrees with a decided verdict
// — the property the fault-injection sweep asserts can never happen.
func (b Bound) Contradicts(actual bool) bool {
	return b.Known() && (b == True) != actual
}

func (b Bound) String() string {
	switch b {
	case False:
		return "false"
	case True:
		return "true"
	default:
		return "?"
	}
}

// Partial is what a truncated analysis still proved: how far it got and
// which predicate values were already forced. Bounds are sound — a Known
// bound equals the verdict the uncancelled run would return — because
// they are taken only from monotone evidence (stuck vectors, blocked
// flags, completed passes), never from in-flight approximations.
type Partial struct {
	// States is the number of joint states (or solver positions) interned
	// when the run stopped, measured at the last completed barrier so the
	// count is deterministic for a given stop point.
	States int
	// Depth is the BFS frontier depth reached (levels fully expanded).
	Depth int
	// Pass names the stage in progress when the run stopped ("bfs",
	// "shape", "tau-cycle", "handshake-cycle", "game", "poss", "ilp", …).
	Pass string
	// Elapsed is wall time since the governor was built.
	Elapsed time.Duration
	// Su, Sc, Sa are the best bounds established for the paper's
	// unavoidable-success, collaboration, and adversity predicates.
	Su, Sc, Sa Bound
}

func (p Partial) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pass=%s states=%d depth=%d", p.Pass, p.States, p.Depth)
	if p.Elapsed > 0 {
		fmt.Fprintf(&b, " elapsed=%s", p.Elapsed.Round(time.Microsecond))
	}
	fmt.Fprintf(&b, " S_u=%s S_c=%s S_a=%s", p.Su, p.Sc, p.Sa)
	return b.String()
}

// LimitErr is the typed error every governed solver returns on
// exhaustion. Reason wraps exactly one of ErrBudget, ErrCanceled,
// ErrDeadline, or ErrPanic (plus any package-level sentinel such as
// poss.ErrBudget), so errors.Is works for both the unified and the
// legacy targets; Partial is the verdict the truncated run still proved.
type LimitErr struct {
	Reason  error
	Partial Partial
}

func (e *LimitErr) Error() string {
	return fmt.Sprintf("%v [partial: %s]", e.Reason, e.Partial)
}

func (e *LimitErr) Unwrap() error { return e.Reason }
