package symmetric

import (
	"errors"
	"math/rand"
	"testing"

	"fspnet/internal/fsp"
	"fspnet/internal/fsptest"
	"fspnet/internal/network"
	"fspnet/internal/success"
)

func chain3() *network.Network {
	return network.MustNew(
		fsp.Linear("P0", "x"),
		fsp.Linear("P1", "x", "y"),
		fsp.Linear("P2", "y"),
	)
}

func TestAnalyzeSingletonMatchesPerProcess(t *testing.T) {
	r := rand.New(rand.NewSource(901))
	for i := 0; i < 40; i++ {
		cfg := fsptest.NetConfig{
			Procs:          2 + r.Intn(3),
			ActionsPerEdge: 1,
			MaxStates:      4,
			TauProb:        0.2,
		}
		n := fsptest.TreeNetwork(r, cfg)
		for dist := 0; dist < n.Len(); dist++ {
			got, err := Analyze(n, []int{dist}, false)
			if err != nil {
				t.Fatal(err)
			}
			su, err := success.UnavoidableAcyclicNet(n, dist)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := success.CollaborationAcyclicNet(n, dist)
			if err != nil {
				t.Fatal(err)
			}
			if got.Su != su || got.Sc != sc {
				t.Fatalf("iter %d dist %d: group=%v per-process Su=%v Sc=%v",
					i, dist, got, su, sc)
			}
		}
	}
}

func TestAnalyzeGroupChain(t *testing.T) {
	n := chain3()
	v, err := Analyze(n, []int{0, 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Su || !v.Sc {
		t.Errorf("verdict = %v, want both true", v)
	}
	if v.String() != "S_u=true S_c=true" {
		t.Errorf("String = %q", v.String())
	}
}

func TestAnalyzeGroupBlockedMember(t *testing.T) {
	// P2 wants two y-handshakes, P1 offers one: any group containing P2
	// cannot jointly finish.
	n := network.MustNew(
		fsp.Linear("P0", "x"),
		fsp.Linear("P1", "x", "y"),
		fsp.Linear("P2", "y", "y"),
	)
	v, err := Analyze(n, []int{0, 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	if v.Su || v.Sc {
		t.Errorf("verdict = %v, want both false (P2 cannot finish)", v)
	}
	// The group without P2 succeeds.
	v2, err := Analyze(n, []int{0}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Su || !v2.Sc {
		t.Errorf("verdict = %v, want both true", v2)
	}
}

func TestJointAdversity(t *testing.T) {
	n := chain3()
	// P0 and P2 do not communicate with each other: joint game defined.
	win, err := JointAdversity(n, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !win {
		t.Error("joint group wins the chain game")
	}
	// P0 and P1 communicate: composition has τ, joint game undefined.
	if _, err := JointAdversity(n, []int{0, 1}); !errors.Is(err, ErrInternalMoves) {
		t.Errorf("err = %v, want ErrInternalMoves", err)
	}
}

func TestAnalyzeCyclicGroup(t *testing.T) {
	// Three processes in a line handshaking forever: x between P0,P1 and
	// y between P1,P2.
	mk := func(name string, acts ...fsp.Action) *fsp.FSP {
		b := fsp.NewBuilder(name)
		s0 := b.State("0")
		cur := s0
		for i, a := range acts {
			var next fsp.State
			if i == len(acts)-1 {
				next = s0
			} else {
				next = b.State("1")
			}
			b.Add(cur, a, next)
			cur = next
		}
		return b.MustBuild()
	}
	n := network.MustNew(
		mk("P0", "x"),
		mk("P1", "x", "y"),
		mk("P2", "y"),
	)
	v, err := Analyze(n, []int{0, 2}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Su || !v.Sc {
		t.Errorf("verdict = %v, want both true", v)
	}
	// Singleton cyclic group agrees with the per-process cyclic analysis.
	single, err := Analyze(n, []int{0}, true)
	if err != nil {
		t.Fatal(err)
	}
	su, err := success.UnavoidableCyclicNet(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := success.CollaborationCyclicNet(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if single.Su != su || single.Sc != sc {
		t.Errorf("singleton group %v vs per-process Su=%v Sc=%v", single, su, sc)
	}
}

func TestValidateGroup(t *testing.T) {
	n := chain3()
	cases := [][]int{
		{},        // empty
		{0, 1, 2}, // not proper
		{0, 0},    // repeated
	}
	for _, g := range cases {
		if _, err := Analyze(n, g, false); !errors.Is(err, ErrBadGroup) {
			t.Errorf("group %v: err = %v, want ErrBadGroup", g, err)
		}
	}
	if _, err := Analyze(n, []int{7}, false); !errors.Is(err, network.ErrBadIndex) {
		t.Errorf("err = %v, want ErrBadIndex", err)
	}
}
