// Package symmetric implements the generalization the paper's Section 5
// poses as an open problem: instead of a single distinguished process,
// distinguish a *group* P = Pᵢ₁ ‖ … ‖ Pᵢ𝚐 and ask the success questions
// against the context Q formed by the remaining processes.
//
// Unavoidable success and success with collaboration generalize directly:
// the group is composed into one process (its internal handshakes become
// τ-moves), "P at a leaf" means the whole group is jointly stuck-free-done,
// and the two-party analyses of package success apply. Success in
// adversity does not generalize canonically — the right notion of group
// strategy (joint knowledge vs. distributed knowledge among the group
// members) is exactly what the paper leaves open — so this package
// deliberately exposes only S_u and S_c, plus both resolutions of the
// knowledge question for experimentation:
//
//   - JointAdversity treats the group as one player with pooled
//     observations (an upper bound on any distributed notion), playable
//     only when the composed group happens to be τ-free (no internal
//     handshakes, e.g. a group of pairwise non-communicating processes).
package symmetric

import (
	"errors"
	"fmt"
	"sort"

	"fspnet/internal/fsp"
	"fspnet/internal/game"
	"fspnet/internal/lang"
	"fspnet/internal/network"
	"fspnet/internal/queue"
	"fspnet/internal/success"
)

var (
	// ErrBadGroup reports an empty, duplicated, or non-proper group.
	ErrBadGroup = errors.New("symmetric: group must be a non-empty proper subset of the processes")
	// ErrInternalMoves reports a group whose composition has τ-moves,
	// for which the joint game is not defined.
	ErrInternalMoves = errors.New("symmetric: composed group has internal moves; joint game undefined")
)

// Verdict carries the two generalized predicates.
type Verdict struct {
	Su bool // every run leaves the whole group jointly at leaves
	Sc bool // some run does
}

// String renders the verdict.
func (v Verdict) String() string {
	return fmt.Sprintf("S_u=%t S_c=%t", v.Su, v.Sc)
}

// Split composes the group into the distinguished process and the
// complement into the context. cyclic selects the Section 4 composition.
func Split(n *network.Network, group []int, cyclic bool) (p, q *fsp.FSP, err error) {
	if err := validateGroup(n, group); err != nil {
		return nil, nil, err
	}
	inGroup := make(map[int]bool, len(group))
	for _, i := range group {
		inGroup[i] = true
	}
	var ps, qs []*fsp.FSP
	for i := 0; i < n.Len(); i++ {
		if inGroup[i] {
			ps = append(ps, n.Process(i))
		} else {
			qs = append(qs, n.Process(i))
		}
	}
	compose := fsp.ComposeAll
	if cyclic {
		compose = fsp.ComposeAllCyclic
	}
	p, err = compose(ps...)
	if err != nil {
		return nil, nil, err
	}
	q, err = compose(qs...)
	if err != nil {
		return nil, nil, err
	}
	return p, q, nil
}

// Analyze decides the generalized S_u and S_c for the group.
func Analyze(n *network.Network, group []int, cyclic bool) (Verdict, error) {
	p, q, err := Split(n, group, cyclic)
	if err != nil {
		return Verdict{}, err
	}
	var v Verdict
	if cyclic {
		// The Section 4 predicates assume a τ-free leafless P; the
		// composed group generally has τ-moves, so decide directly on the
		// pair system: blocking = reachable jointly-stable pair with
		// disjoint offers, collaboration = infinite common language.
		p = fsp.AddDivergenceLeaf(p)
		v.Su, err = cyclicGroupUnavoidable(p, q)
		if err != nil {
			return Verdict{}, err
		}
		v.Sc, err = cyclicGroupCollaboration(p, q)
		if err != nil {
			return Verdict{}, err
		}
		return v, nil
	}
	if v.Su, err = success.UnavoidableAcyclic(p, q); err != nil {
		return Verdict{}, err
	}
	if v.Sc, err = success.CollaborationAcyclic(p, q); err != nil {
		return Verdict{}, err
	}
	return v, nil
}

// JointAdversity decides the joint-knowledge upper bound of the group
// game: the group plays as a single player that sees the full action
// history. It requires the composed group to be τ-free, which holds
// exactly when the group members do not communicate with one another.
func JointAdversity(n *network.Network, group []int) (bool, error) {
	p, q, err := Split(n, group, false)
	if err != nil {
		return false, err
	}
	for _, t := range p.Transitions() {
		if t.Label == fsp.Tau {
			return false, fmt.Errorf("group %v: %w", group, ErrInternalMoves)
		}
	}
	return game.SolveAcyclic(p, q)
}

func validateGroup(n *network.Network, group []int) error {
	if len(group) == 0 || len(group) >= n.Len() {
		return fmt.Errorf("group size %d of %d: %w", len(group), n.Len(), ErrBadGroup)
	}
	sorted := append([]int(nil), group...)
	sort.Ints(sorted)
	for i, idx := range sorted {
		if idx < 0 || idx >= n.Len() {
			return fmt.Errorf("index %d: %w", idx, network.ErrBadIndex)
		}
		if i > 0 && sorted[i] == sorted[i-1] {
			return fmt.Errorf("index %d repeated: %w", idx, ErrBadGroup)
		}
	}
	return nil
}

// cyclicGroupUnavoidable is UnavoidableCyclic without the τ-free-P
// restriction: the group may move internally, so a pair is blocking when
// both sides are stable (the group has no τ *and* no internal handshake
// left — internal handshakes are already τ after composition) and the
// offers are disjoint.
func cyclicGroupUnavoidable(p, q *fsp.FSP) (bool, error) {
	type pair struct{ pp, qq fsp.State }
	start := pair{p.Start(), q.Start()}
	seen := map[pair]bool{start: true}
	var work queue.Queue[pair]
	work.Push(start)
	for {
		cur, ok := work.Pop()
		if !ok {
			break
		}
		if p.IsStable(cur.pp) && q.IsStable(cur.qq) &&
			!actionsIntersect(p.ActionsAt(cur.pp), q.ActionsAt(cur.qq)) {
			return false, nil
		}
		push := func(nxt pair) {
			if !seen[nxt] {
				seen[nxt] = true
				work.Push(nxt)
			}
		}
		for _, t := range p.Out(cur.pp) {
			if t.Label == fsp.Tau {
				push(pair{t.To, cur.qq})
			}
		}
		for _, t := range q.Out(cur.qq) {
			if t.Label == fsp.Tau {
				push(pair{cur.pp, t.To})
			}
		}
		for _, tp := range p.Out(cur.pp) {
			if tp.Label == fsp.Tau {
				continue
			}
			for _, tq := range q.Out(cur.qq) {
				if tq.Label == tp.Label {
					push(pair{tp.To, tq.To})
				}
			}
		}
	}
	return true, nil
}

// cyclicGroupCollaboration generalizes the Section 4 S_c as "infinitely
// many group–context exchanges are possible": Lang(P) ∩ Lang(Q) infinite.
// Internal-only divergence of the group does not count as success — the
// group must keep interacting with the outside, which coincides with the
// paper's definition when the group is a single τ-free process.
func cyclicGroupCollaboration(p, q *fsp.FSP) (bool, error) {
	return lang.LangIntersectionInfinite(p, q), nil
}

func actionsIntersect(xs, ys []fsp.Action) bool {
	i, j := 0, 0
	for i < len(xs) && j < len(ys) {
		switch {
		case xs[i] == ys[j]:
			return true
		case xs[i] < ys[j]:
			i++
		default:
			j++
		}
	}
	return false
}
