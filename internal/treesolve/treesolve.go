// Package treesolve implements Theorem 3: for a network of tree FSPs whose
// communication graph C_N is a tree (or a k-tree after composing partition
// classes), the predicates S_u, S_a, S_c are decided by replacing each
// subtree hanging off the distinguished process with a possibility-
// preserving normal form (Lemma 2), reducing the network to a star, and
// deciding the star with Lemmas 3, 4 and 5.
package treesolve

import (
	"errors"
	"fmt"

	"fspnet/internal/fsp"
	"fspnet/internal/guard"
	"fspnet/internal/network"
	"fspnet/internal/poss"
	"fspnet/internal/success"
)

var (
	// ErrNotTree reports a communication graph that is not a tree.
	ErrNotTree = errors.New("treesolve: communication graph is not a tree")
	// ErrNotAcyclic reports a process with a directed cycle; Theorem 3 is
	// the acyclic (finite) case.
	ErrNotAcyclic = errors.New("treesolve: process is not acyclic")
	// ErrTauP reports τ-moves on the distinguished process, which the
	// success-in-adversity game disallows.
	ErrTauP = errors.New("treesolve: distinguished process must have no τ-moves")
)

// Options configure the solver.
type Options struct {
	// Budget bounds possibility enumeration per composed subtree process
	// (poss.ErrBudget beyond it). Zero means poss.DefaultBudget.
	Budget int
	// NoNormalForm skips the possibility normal form and keeps the raw
	// subtree compositions as star leaves — an ablation switch showing
	// that the normal form is what keeps Theorem 3 polynomial. The
	// verdicts are unchanged (Lemma 2 guarantees equivalence); only the
	// sizes and times differ.
	NoNormalForm bool
	// Fallback retries a budget failure with the reference analysis
	// (success.AnalyzeAcyclic, which explores joint state vectors on the
	// fly for S_u/S_c and plays the compose-free belief game for S_a,
	// so it never pays for the blown-up subtree composition). Verdicts
	// other than budget failures are unaffected; cancellation and
	// deadline failures propagate rather than fall back — the caller's
	// time is already spent.
	Fallback bool
	// Guard, when non-nil, governs the solve: it is polled at each
	// subtree normal-form boundary (and inside possibility enumeration),
	// and it is threaded into the fallback analysis when one runs.
	Guard *guard.G
}

func (o Options) budget() int {
	if o.Budget <= 0 {
		return poss.DefaultBudget
	}
	return o.Budget
}

// Outcome reports which stage of the fallback chain produced a verdict,
// so callers can tell a clean Theorem 3 solve from a degraded run.
type Outcome struct {
	// Stage names the stage that produced the verdict (or failed):
	// "normal-form" for the Theorem 3 reduction, "reference-fallback"
	// when a budget failure was retried with the reference analysis.
	Stage string
	// Degraded reports that the normal-form stage was abandoned.
	Degraded bool
	// Cause is the error that forced the degradation (nil otherwise).
	Cause error
}

// Analyze decides the three predicates for the distinguished process dist
// of a tree network of acyclic processes. The distinguished process must
// be τ-free.
func Analyze(n *network.Network, dist int, opts Options) (success.Verdict, error) {
	v, _, err := AnalyzeReport(n, dist, opts)
	return v, err
}

// AnalyzeReport is Analyze plus an Outcome describing which stage of the
// fallback chain the verdict came from.
func AnalyzeReport(n *network.Network, dist int, opts Options) (success.Verdict, Outcome, error) {
	star, err := Reduce(n, dist, opts)
	if err != nil {
		// Any budget exhaustion (possibility enumeration or the joint
		// guard budget) can be retried on the reference path; governor
		// cancellations and deadlines cannot.
		if opts.Fallback && errors.Is(err, guard.ErrBudget) {
			v, ferr := success.AnalyzeAcyclicOpts(n, dist, success.Options{Guard: opts.Guard})
			return v, Outcome{Stage: "reference-fallback", Degraded: true, Cause: err}, ferr
		}
		return success.Verdict{}, Outcome{Stage: "normal-form", Cause: err}, err
	}
	v, err := star.Decide()
	return v, Outcome{Stage: "normal-form"}, err
}

// AnalyzeKTree composes the classes of a k-tree partition (the class of
// the distinguished process must be the singleton {dist}) and analyzes the
// resulting tree network.
func AnalyzeKTree(n *network.Network, dist int, partition [][]int, opts Options) (success.Verdict, error) {
	distClass := -1
	for ci, class := range partition {
		for _, idx := range class {
			if idx == dist {
				distClass = ci
			}
		}
	}
	if distClass < 0 {
		return success.Verdict{}, fmt.Errorf("treesolve: dist %d not in partition: %w",
			dist, network.ErrBadPartition)
	}
	if len(partition[distClass]) != 1 {
		return success.Verdict{}, fmt.Errorf(
			"treesolve: distinguished class %v must be the singleton {%d}: %w",
			partition[distClass], dist, network.ErrBadPartition)
	}
	folded, classOf, err := n.ComposeClasses(partition, false)
	if err != nil {
		return success.Verdict{}, err
	}
	return Analyze(folded, classOf[dist], opts)
}

// Star is the reduced network: the distinguished tree process P at the
// center and one normal-form process per subtree, each communicating only
// with P over a private alphabet.
type Star struct {
	P      *fsp.FSP
	Leaves []*fsp.FSP         // normal forms Q_i′
	owner  map[fsp.Action]int // which leaf owns each of P's actions
	g      *guard.G           // governor threaded from Reduce (nil = ungoverned)
}

// pollStride amortizes governor polls over the star walk and game: one
// poll per stride of visited configurations.
const pollStride = 1024

// Reduce performs the bottom-up normal-form replacement of Theorem 3's
// proof, turning the tree network into a star.
func Reduce(n *network.Network, dist int, opts Options) (*Star, error) {
	if dist < 0 || dist >= n.Len() {
		return nil, fmt.Errorf("treesolve: dist %d: %w", dist, network.ErrBadIndex)
	}
	for i := 0; i < n.Len(); i++ {
		if !n.Process(i).IsAcyclic() {
			return nil, fmt.Errorf("%s: %w", n.Process(i).Name(), ErrNotAcyclic)
		}
	}
	p := n.Process(dist)
	for _, t := range p.Transitions() {
		if t.Label == fsp.Tau {
			return nil, fmt.Errorf("%s: %w", p.Name(), ErrTauP)
		}
	}
	g := n.Graph()
	if !g.IsTree() && n.Len() > 1 {
		return nil, fmt.Errorf("treesolve: %w", ErrNotTree)
	}

	// Root the tree at dist; children lists per node.
	parent := make([]int, n.Len())
	for i := range parent {
		parent[i] = -2 // unvisited
	}
	parent[dist] = -1
	order := []int{dist}
	//fsplint:ignore guardpoll bounded by member count: each process enters order at most once
	for head := 0; head < len(order); head++ {
		v := order[head]
		for _, w := range g.Neighbors(v) {
			if parent[w] == -2 {
				parent[w] = v
				order = append(order, w)
			}
		}
	}
	children := make([][]int, n.Len())
	for _, v := range order[1:] {
		children[parent[v]] = append(children[parent[v]], v)
	}

	// Bottom-up reduction: normalForm(v) returns a process possibility-
	// equivalent to the composition of v's whole subtree, speaking only
	// the v–parent alphabet.
	var normalForm func(v int) (*fsp.FSP, error)
	normalForm = func(v int) (*fsp.FSP, error) {
		// One poll per subtree boundary: composing and enumerating a
		// subtree is the unit of work the reduction cannot subdivide.
		if err := opts.Guard.Poll("treesolve", v); err != nil {
			return nil, opts.Guard.Limit(
				fmt.Errorf("treesolve: subtree at %s: %w", n.Process(v).Name(), err),
				guard.Partial{Pass: "treesolve"})
		}
		m := n.Process(v)
		for _, c := range children[v] {
			nf, err := normalForm(c)
			if err != nil {
				return nil, err
			}
			m = fsp.Compose(m, nf)
		}
		if opts.NoNormalForm {
			return m, nil
		}
		set, err := poss.OfGuarded(m, opts.budget(), opts.Guard)
		if err != nil {
			return nil, fmt.Errorf("subtree at %s: %w", n.Process(v).Name(), err)
		}
		nf, err := poss.NormalForm(fmt.Sprintf("NF(%s)", n.Process(v).Name()), set)
		if err != nil {
			return nil, fmt.Errorf("subtree at %s: %w", n.Process(v).Name(), err)
		}
		return nf, nil
	}

	star := &Star{P: p, owner: make(map[fsp.Action]int), g: opts.Guard}
	for _, c := range children[dist] {
		nf, err := normalForm(c)
		if err != nil {
			return nil, err
		}
		idx := len(star.Leaves)
		star.Leaves = append(star.Leaves, nf)
		for _, a := range fsp.SharedActions(p, nf) {
			star.owner[a] = idx
		}
	}
	return star, nil
}

// LeafSizes returns the sizes of the star's context processes, a measure
// of how much the normal form compresses the subtrees.
func (s *Star) LeafSizes() []int {
	sizes := make([]int, len(s.Leaves))
	for i, q := range s.Leaves {
		sizes[i] = q.Size()
	}
	return sizes
}

// beliefs tracks, for each star leaf, the τ-closed set of states reachable
// on the projection of the current P-path.
type beliefs [][]fsp.State

func (s *Star) startBeliefs() beliefs {
	b := make(beliefs, len(s.Leaves))
	for i, q := range s.Leaves {
		b[i] = q.TauClosure([]fsp.State{q.Start()})
	}
	return b
}

// step advances the belief of the leaf owning action a; it returns nil
// when the projection falls out of that leaf's language (the joint string
// is not in Lang(Q)).
func (s *Star) step(b beliefs, a fsp.Action) beliefs {
	idx, ok := s.owner[a]
	if !ok {
		return nil // P action with no owner cannot handshake at all
	}
	next := s.Leaves[idx].Step(b[idx], a)
	if len(next) == 0 {
		return nil
	}
	nb := make(beliefs, len(b))
	copy(nb, b)
	nb[idx] = next
	return nb
}

// blocked reports whether the context can reach a joint stable
// configuration offering nothing in A: for every leaf i there must be a
// stable state in its belief whose actions avoid A (Lemma 4 / Lemma 5
// blocking condition, factored through the product structure).
func (s *Star) blocked(b beliefs, a []fsp.Action) bool {
	for i, q := range s.Leaves {
		found := false
		for _, st := range b[i] {
			if !q.IsStable(st) {
				continue
			}
			if !actionsIntersect(q.ActionsAt(st), a) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// offerable reports whether the context can offer action a given the
// current beliefs (a one-symbol Lang(Q) extension).
func (s *Star) offerable(b beliefs, a fsp.Action) bool {
	idx, ok := s.owner[a]
	if !ok {
		return false
	}
	return len(s.Leaves[idx].Step(b[idx], a)) > 0
}

// Decide evaluates S_u, S_a, S_c on the star using Lemmas 3, 4, and 5.
// Both the walk over P's states and the Lemma 5 game answer to the
// governor Reduce threaded into the star, so a large distinguished
// process can be canceled, deadlined, or budgeted mid-decision like
// every other pass.
func (s *Star) Decide() (success.Verdict, error) {
	var v success.Verdict
	su, sc := true, false
	var sa func(p fsp.State, b beliefs) (bool, error)
	memoSa := make(map[string]bool)

	// Walk all states of the tree P, carrying beliefs. Each P state has a
	// unique root path, so each is visited once.
	type item struct {
		p fsp.State
		b beliefs
	}
	visited := 0
	stack := []item{{s.P.Start(), s.startBeliefs()}}
	for len(stack) > 0 {
		if visited%pollStride == 0 {
			if err := s.g.Poll("star-walk", visited/pollStride); err != nil {
				return v, s.g.Limit(err, guard.Partial{Pass: "star-walk"})
			}
		}
		visited++
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		a := s.P.ActionsAt(it.p)
		if s.P.IsLeaf(it.p) {
			sc = true // beliefs nonempty all the way: s ∈ Lang(Q), (s,∅) ∈ Poss(P)
		} else if s.blocked(it.b, a) {
			su = false // Lemma 4 witness: X = act(p) ≠ ∅, joint Y with X∩Y = ∅
		}
		for _, t := range s.P.Out(it.p) {
			nb := s.step(it.b, t.Label)
			if nb == nil {
				continue // joint string leaves Lang(Q); subtree unreachable
			}
			stack = append(stack, item{t.To, nb})
		}
	}

	// Lemma 5 game on the star (P is τ-free by Reduce's validation). Each
	// new memo entry is a unit of game work: charged, with an amortized
	// poll on the same stride as the walk.
	sa = func(p fsp.State, b beliefs) (bool, error) {
		key := gameKey(p, b)
		if val, ok := memoSa[key]; ok {
			return val, nil
		}
		if err := s.g.Charge(1); err != nil {
			return false, s.g.Limit(err, guard.Partial{Pass: "star-game"})
		}
		if len(memoSa)%pollStride == 0 {
			if err := s.g.Poll("star-game", len(memoSa)/pollStride); err != nil {
				return false, s.g.Limit(err, guard.Partial{Pass: "star-game"})
			}
		}
		if s.P.IsLeaf(p) {
			memoSa[key] = true
			return true, nil
		}
		a := s.P.ActionsAt(p)
		if s.blocked(b, a) {
			memoSa[key] = false
			return false, nil
		}
		res := true
		for _, act := range a {
			if !s.offerable(b, act) {
				continue
			}
			nb := s.step(b, act)
			anyGood := false
			for _, succ := range s.P.Succ(p, act) {
				good, err := sa(succ, nb)
				if err != nil {
					return false, err
				}
				if good {
					anyGood = true
					break
				}
			}
			if !anyGood {
				res = false
				break
			}
		}
		memoSa[key] = res
		return res, nil
	}
	v.Su = su
	v.Sc = sc
	saRes, err := sa(s.P.Start(), s.startBeliefs())
	if err != nil {
		return v, err
	}
	v.Sa = saRes
	return v, nil
}

func gameKey(p fsp.State, b beliefs) string {
	key := fmt.Sprintf("%d", p)
	for _, set := range b {
		key += "|"
		for i, st := range set {
			if i > 0 {
				key += ","
			}
			key += fmt.Sprintf("%d", st)
		}
	}
	return key
}

func actionsIntersect(xs, ys []fsp.Action) bool {
	i, j := 0, 0
	for i < len(xs) && j < len(ys) {
		switch {
		case xs[i] == ys[j]:
			return true
		case xs[i] < ys[j]:
			i++
		default:
			j++
		}
	}
	return false
}
