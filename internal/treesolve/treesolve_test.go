package treesolve

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"fspnet/internal/fsp"
	"fspnet/internal/fsptest"
	"fspnet/internal/guard"
	"fspnet/internal/network"
	"fspnet/internal/poss"
	"fspnet/internal/success"
)

func TestAnalyzeChain(t *testing.T) {
	n := network.MustNew(
		fsp.Linear("P0", "x"),
		fsp.Linear("P1", "x", "y"),
		fsp.Linear("P2", "y"),
	)
	v, err := Analyze(n, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v != (success.Verdict{Su: true, Sa: true, Sc: true}) {
		t.Errorf("verdict = %v, want all true", v)
	}
}

func TestAnalyzeFigure3AsTreeNetwork(t *testing.T) {
	// P: 1 -a-> 2; Q: offers a or τ-defects. Expected S_u=false S_a=false
	// S_c=true (see package success TestFigure3).
	p := fsp.Linear("P", "a")
	b := fsp.NewBuilder("Q")
	q1, q2, q3 := b.State("1"), b.State("2"), b.State("3")
	b.Add(q1, "a", q2)
	b.AddTau(q1, q3)
	n := network.MustNew(p, b.MustBuild())
	v, err := Analyze(n, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v != (success.Verdict{Su: false, Sa: false, Sc: true}) {
		t.Errorf("verdict = %v, want S_u=false S_a=false S_c=true", v)
	}
}

func TestAnalyzeMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(401))
	for i := 0; i < 120; i++ {
		cfg := fsptest.NetConfig{
			Procs:          2 + r.Intn(4),
			ActionsPerEdge: 1 + r.Intn(2),
			MaxStates:      4,
			TauProb:        0.25,
		}
		n := fsptest.TreeNetwork(r, cfg)
		got, err := Analyze(n, 0, Options{})
		if err != nil {
			t.Fatalf("iter %d: Analyze: %v", i, err)
		}
		want, err := success.AnalyzeAcyclic(n, 0)
		if err != nil {
			t.Fatalf("iter %d: reference: %v", i, err)
		}
		if got != want {
			t.Fatalf("iter %d: treesolve=%v reference=%v\n%s",
				i, got, want, dumpNetwork(n))
		}
	}
}

func TestAnalyzeKTreeRing(t *testing.T) {
	// Ring of tree processes folded per Figure 8a, then compared with the
	// reference on the unfolded network.
	r := rand.New(rand.NewSource(409))
	for i := 0; i < 25; i++ {
		m := 4 + r.Intn(3)
		n := randomRingNetwork(r, m)
		partition := network.RingPartition(m)
		got, err := AnalyzeKTree(n, 0, partition, Options{})
		if err != nil {
			t.Fatalf("iter %d: AnalyzeKTree: %v", i, err)
		}
		want, err := success.AnalyzeAcyclic(n, 0)
		if err != nil {
			t.Fatalf("iter %d: reference: %v", i, err)
		}
		if got != want {
			t.Fatalf("iter %d (m=%d): ktree=%v reference=%v\n%s",
				i, m, got, want, dumpNetwork(n))
		}
	}
}

// randomRingNetwork builds a ring of m linear/tree processes with one
// action per ring edge, each process using both its incident actions.
func randomRingNetwork(r *rand.Rand, m int) *network.Network {
	procs := make([]*fsp.FSP, m)
	for i := 0; i < m; i++ {
		left := fsp.Action("x" + itoa((i+m-1)%m))
		right := fsp.Action("x" + itoa(i))
		// Random order, possibly repeated once.
		seq := []fsp.Action{left, right}
		if r.Intn(2) == 0 {
			seq = []fsp.Action{right, left}
		}
		if r.Intn(3) == 0 {
			seq = append(seq, seq[r.Intn(2)])
		}
		procs[i] = fsp.Linear("P"+itoa(i), seq...)
	}
	return network.MustNew(procs...)
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func TestAnalyzeKTreeRequiresSingletonDistClass(t *testing.T) {
	n := network.MustNew(
		fsp.Linear("P0", "x"),
		fsp.Linear("P1", "x", "y"),
		fsp.Linear("P2", "y"),
	)
	_, err := AnalyzeKTree(n, 0, [][]int{{0, 1}, {2}}, Options{})
	if !errors.Is(err, network.ErrBadPartition) {
		t.Errorf("err = %v, want ErrBadPartition", err)
	}
	_, err = AnalyzeKTree(n, 1, [][]int{{0, 2}}, Options{})
	if !errors.Is(err, network.ErrBadPartition) {
		t.Errorf("dist missing: err = %v, want ErrBadPartition", err)
	}
}

func TestReduceValidation(t *testing.T) {
	cyc := func() *fsp.FSP {
		b := fsp.NewBuilder("C")
		s0 := b.State("0")
		b.Add(s0, "x", s0)
		return b.MustBuild()
	}()
	n := network.MustNew(cyc, fsp.Linear("P1", "x"))
	if _, err := Reduce(n, 1, Options{}); !errors.Is(err, ErrNotAcyclic) {
		t.Errorf("err = %v, want ErrNotAcyclic", err)
	}

	bt := fsp.NewBuilder("P")
	s0, s1 := bt.State("0"), bt.State("1")
	bt.AddTau(s0, s1)
	bt.Add(s0, "x", s1)
	tauP := bt.MustBuild()
	n2 := network.MustNew(tauP, fsp.Linear("P1", "x"))
	if _, err := Reduce(n2, 0, Options{}); !errors.Is(err, ErrTauP) {
		t.Errorf("err = %v, want ErrTauP", err)
	}

	if _, err := Reduce(n2, 5, Options{}); !errors.Is(err, network.ErrBadIndex) {
		t.Errorf("err = %v, want ErrBadIndex", err)
	}

	// Non-tree C_N: triangle.
	tri := network.MustNew(
		fsp.Linear("A", "ab", "ca"),
		fsp.Linear("B", "ab", "bc"),
		fsp.Linear("C", "bc", "ca"),
	)
	if _, err := Reduce(tri, 0, Options{}); !errors.Is(err, ErrNotTree) {
		t.Errorf("err = %v, want ErrNotTree", err)
	}
}

func TestBudgetSurfacing(t *testing.T) {
	r := rand.New(rand.NewSource(419))
	cfg := fsptest.NetConfig{Procs: 4, ActionsPerEdge: 2, MaxStates: 6, TauProb: 0.2}
	n := fsptest.TreeNetwork(r, cfg)
	if _, err := Analyze(n, 0, Options{Budget: 1}); !errors.Is(err, poss.ErrBudget) {
		t.Errorf("err = %v, want poss.ErrBudget", err)
	}
}

// TestBudgetFallback checks that Options.Fallback retries a blown
// possibility budget with the reference joint-vector analysis instead of
// surfacing poss.ErrBudget.
func TestBudgetFallback(t *testing.T) {
	r := rand.New(rand.NewSource(419))
	cfg := fsptest.NetConfig{Procs: 4, ActionsPerEdge: 2, MaxStates: 6, TauProb: 0.2}
	n := fsptest.TreeNetwork(r, cfg)
	got, err := Analyze(n, 0, Options{Budget: 1, Fallback: true})
	if err != nil {
		t.Fatalf("Analyze with Fallback: %v", err)
	}
	want, err := success.AnalyzeAcyclic(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("fallback verdict = %v, reference = %v", got, want)
	}
}

// TestFigure9Reduction exercises the reduction step on a concrete subtree
// in the spirit of Figure 9: the subtree's normal form must be
// possibility-equivalent to the subtree's composition and no larger than
// the trie bound.
func TestFigure9Reduction(t *testing.T) {
	// Subtree: P_f talks to parent over {p1, p2} and to two leaf children
	// over {c1} and {c2}.
	pf := fsp.TreeFromPaths("Pf",
		[]fsp.Action{"c1", "p1"},
		[]fsp.Action{"c2", "p2"},
	)
	c1 := fsp.Linear("C1", "c1")
	c2 := fsp.Linear("C2", "c2") // child 2 can do its handshake
	parent := fsp.TreeFromPaths("Par", []fsp.Action{"p1"}, []fsp.Action{"p2"})
	n := network.MustNew(parent, pf, c1, c2)

	star, err := Reduce(n, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(star.Leaves) != 1 {
		t.Fatalf("star has %d leaves, want 1", len(star.Leaves))
	}
	nf := star.Leaves[0]
	composed := fsp.Compose(fsp.Compose(pf, c1), c2)
	if !poss.Equivalent(nf, composed) {
		t.Errorf("normal form not possibility-equivalent to subtree composition:\nNF  %v\nSUB %v",
			poss.MustOf(nf), poss.MustOf(composed))
	}
	// Only parent-edge symbols may survive.
	for _, a := range nf.Alphabet() {
		if a != "p1" && a != "p2" {
			t.Errorf("leaked action %q in normal form", a)
		}
	}
	v, err := star.Decide()
	if err != nil {
		t.Fatal(err)
	}
	want, err := success.AnalyzeAcyclic(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v != want {
		t.Errorf("star verdict %v, reference %v", v, want)
	}
}

func dumpNetwork(n *network.Network) string {
	out := ""
	for i := 0; i < n.Len(); i++ {
		out += n.Process(i).DOT()
	}
	return out
}

// TestNoNormalFormAblationAgrees: skipping the normal form (the ablation
// switch) must not change verdicts, only sizes.
func TestNoNormalFormAblationAgrees(t *testing.T) {
	r := rand.New(rand.NewSource(421))
	for i := 0; i < 60; i++ {
		cfg := fsptest.NetConfig{
			Procs:          2 + r.Intn(4),
			ActionsPerEdge: 1 + r.Intn(2),
			MaxStates:      4,
			TauProb:        0.2,
		}
		n := fsptest.TreeNetwork(r, cfg)
		with, err := Analyze(n, 0, Options{})
		if err != nil {
			t.Fatal(err)
		}
		without, err := Analyze(n, 0, Options{NoNormalForm: true})
		if err != nil {
			t.Fatal(err)
		}
		if with != without {
			t.Fatalf("iter %d: with NF %v, without NF %v", i, with, without)
		}
	}
}

// TestLeafSizes: normal forms never enlarge the star leaves beyond the raw
// subtree compositions on tree networks.
func TestLeafSizes(t *testing.T) {
	r := rand.New(rand.NewSource(431))
	cfg := fsptest.NetConfig{Procs: 5, ActionsPerEdge: 1, MaxStates: 4, TauProb: 0.2}
	n := fsptest.TreeNetwork(r, cfg)
	withNF, err := Reduce(n, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := Reduce(n, 0, Options{NoNormalForm: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(withNF.LeafSizes()) != len(raw.LeafSizes()) {
		t.Fatal("leaf counts differ")
	}
}

// TestAnalyzeReportDegradedOutcome checks the fallback chain's reporting:
// a blown budget retried on the reference path is flagged as a degraded
// reference-fallback run whose Cause carries the unified budget sentinel,
// while a clean solve reports the normal-form stage.
func TestAnalyzeReportDegradedOutcome(t *testing.T) {
	r := rand.New(rand.NewSource(419))
	cfg := fsptest.NetConfig{Procs: 4, ActionsPerEdge: 2, MaxStates: 6, TauProb: 0.2}
	n := fsptest.TreeNetwork(r, cfg)

	got, out, err := AnalyzeReport(n, 0, Options{Budget: 1, Fallback: true})
	if err != nil {
		t.Fatalf("AnalyzeReport with Fallback: %v", err)
	}
	if out.Stage != "reference-fallback" || !out.Degraded {
		t.Errorf("outcome = %+v, want degraded reference-fallback", out)
	}
	if !errors.Is(out.Cause, guard.ErrBudget) || !errors.Is(out.Cause, poss.ErrBudget) {
		t.Errorf("cause = %v, want both guard.ErrBudget and poss.ErrBudget", out.Cause)
	}
	want, err := success.AnalyzeAcyclic(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("degraded verdict = %v, reference = %v", got, want)
	}

	if _, out, err := AnalyzeReport(n, 0, Options{}); err != nil || out.Stage != "normal-form" || out.Degraded {
		t.Errorf("clean solve: err=%v outcome=%+v, want normal-form, not degraded", err, out)
	}
}

// TestAnalyzeCancellationDoesNotFallBack checks that a governor
// cancellation propagates instead of triggering the reference fallback —
// the caller's time is already spent.
func TestAnalyzeCancellationDoesNotFallBack(t *testing.T) {
	r := rand.New(rand.NewSource(419))
	cfg := fsptest.NetConfig{Procs: 4, ActionsPerEdge: 2, MaxStates: 6, TauProb: 0.2}
	n := fsptest.TreeNetwork(r, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := guard.New(guard.Config{Context: ctx})
	_, out, err := AnalyzeReport(n, 0, Options{Fallback: true, Guard: g})
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if out.Degraded || out.Stage == "reference-fallback" {
		t.Errorf("outcome = %+v: cancellation must not fall back", out)
	}
}
