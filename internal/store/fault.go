package store

import "errors"

// Op identifies one class of file operation the store performs. Every
// operation consults the configured FaultFunc before touching the disk,
// so a test can fail (or SIGKILL the process at) any single step of the
// append, rotation, compaction, or recovery paths — the I/O analogue of
// the guard.Hook seam internal/guard/faultinject drives.
type Op string

// The operation classes, in the order a fresh store first performs them.
const (
	// OpCreate opens a new temp segment file (rotation, compaction, and
	// the first segment of a fresh directory).
	OpCreate Op = "create"
	// OpWrite is a data write: a record frame, a segment magic header, or
	// a compacted image. Injecting ErrShortWrite here lands a torn prefix
	// of the frame before failing, the ENOSPC / partial-sector shape.
	OpWrite Op = "write"
	// OpSync is an fsync of a segment file.
	OpSync Op = "sync"
	// OpRename publishes a temp file under its final segment name.
	OpRename Op = "rename"
	// OpRemove deletes an obsolete file (stale temp files at open, old
	// segments after compaction). Failures are tolerated: replay is
	// last-wins, so a lingering file never changes the recovered state.
	OpRemove Op = "remove"
	// OpTruncate cuts a file back to a known-good length: the rollback
	// after a failed append and the torn-tail repair during open.
	OpTruncate Op = "truncate"
	// OpSyncDir is the directory fsync after a rename or remove. Failures
	// are tolerated (the kill -9 crash model keeps renamed files visible;
	// only power loss could lose them, which this store does not defend
	// against beyond replay).
	OpSyncDir Op = "syncdir"
)

// Ops lists every operation class — the domain the fault-injection
// sweeps enumerate.
var Ops = []Op{OpCreate, OpWrite, OpSync, OpRename, OpRemove, OpTruncate, OpSyncDir}

// FaultFunc is the disk fault-injection hook. The store consults it
// before every file operation with the operation class and the 0-based
// count of prior consultations of that class; a non-nil return is
// treated as that operation's failure. A returned error wrapping
// ErrShortWrite additionally lands the first half of the frame on disk
// before failing, producing a genuinely torn tail. Production
// configurations leave the hook nil. Implementations must be safe for
// concurrent use; the store serializes consultations under its own lock.
type FaultFunc func(op Op, seq int) error

// ErrShortWrite marks an injected partial write: the store writes half
// the frame, then fails the append and rolls the tail back.
var ErrShortWrite = errors.New("store: injected short write")
