// Package store persists fspd's content-addressed verdict cache across
// restarts and deploys: an append-only, segment-based, checksummed log
// of digest → verdictjson.Record entries that the serve layer writes
// through and warm-loads on boot.
//
// The paper's predicates are pure functions of the canonical network
// text, so a stored verdict is relocatable and can never go stale — the
// only hazards are the environment's: torn writes, ENOSPC, fsync
// failures, kill -9. The store's design reduces all of them to one
// recovery invariant:
//
//	After a crash at any byte offset, reopening the directory yields
//	exactly the committed records — every Put that returned nil, each
//	byte-identical to what was written — and nothing else.
//
// Mechanics:
//
//   - Records are length+CRC-framed: a 4-byte little-endian payload
//     length, a 4-byte CRC-32C of the payload, then the payload (compact
//     JSON of {digest, record} or a {digest, deleted} tombstone). Replay
//     walks frames from the segment magic onward and stops at the first
//     frame that is incomplete or fails its checksum; the torn tail is
//     truncated so subsequent appends extend a known-good prefix.
//   - Segments (`seg-%08d.log`) are created atomically — written to a
//     .tmp name, fsynced, renamed — so a crash mid-rotation leaves at
//     worst a stale .tmp that open removes. Replay is last-wins across
//     segments in id order, so duplicated records are harmless.
//   - A failed append (write error, short write, fsync error) is rolled
//     back by truncating the segment to its pre-append size: an append
//     either commits durably or leaves no trace. If the rollback itself
//     fails the store declares itself broken and refuses further writes
//     rather than interleaving records into a torn file.
//   - Compaction is bounded and atomic: when tombstoned/superseded
//     records outnumber live ones, or the live set exceeds MaxRecords
//     (oldest entries are dropped — the serve layer deletes LRU-evicted
//     digests, so drops only fire as a backstop), the live records are
//     rewritten into one fresh segment via temp-file+rename and the old
//     segments removed. A compaction failure is contained: the old
//     segments remain authoritative and the next trigger retries.
//
// Every file operation is preceded by a FaultFunc consultation (see
// fault.go), which is how the recovery sweeps in this package's tests
// and the SIGKILL crash matrix in cmd/fspd prove the invariant.
package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"fspnet/internal/verdictjson"
)

// Tunable defaults.
const (
	// DefaultMaxRecords bounds the live record count; compaction drops
	// the oldest entries beyond it.
	DefaultMaxRecords = 4096
	// DefaultSegmentBytes is the rotation threshold for the active
	// segment.
	DefaultSegmentBytes = 4 << 20
)

const (
	// magic opens every segment file; a file without it replays as empty.
	magic = "FSPDVS1\n"
	// headerLen frames each record: uint32 payload length + uint32 CRC-32C.
	headerLen = 8
	// maxPayload bounds a single record, so a corrupted length field can
	// never drive a giant allocation during replay.
	maxPayload = 16 << 20
	// minDeadCompact is the garbage floor below which compaction never
	// triggers, keeping tiny stores from rewriting themselves constantly.
	minDeadCompact = 8
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options tunes a Store.
type Options struct {
	// MaxRecords bounds the live record count; ≤ 0 means
	// DefaultMaxRecords.
	MaxRecords int
	// SegmentBytes is the active-segment rotation threshold; ≤ 0 means
	// DefaultSegmentBytes.
	SegmentBytes int64
	// NoSync skips every fsync — benchmarks and bulk loads only; crash
	// durability is gone with it.
	NoSync bool
	// Fault is the disk fault-injection hook; nil in production.
	Fault FaultFunc
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	// Segments is the current segment-file count.
	Segments int `json:"segments"`
	// Records is the live (replayable) record count.
	Records int `json:"records"`
	// Dead counts superseded records and tombstones awaiting compaction.
	Dead int `json:"dead"`
	// Bytes is the total valid byte size across segments.
	Bytes int64 `json:"bytes"`
	// Replayed is the live record count recovered by Open.
	Replayed int `json:"replayed"`
	// TruncatedBytes counts torn or corrupt tail bytes Open dropped.
	TruncatedBytes int64 `json:"truncatedBytes"`
	// Compactions counts completed compactions.
	Compactions int64 `json:"compactions"`
	// CompactErrors counts contained compaction failures (state kept,
	// retried at the next trigger).
	CompactErrors int64 `json:"compactErrors"`
	// Dropped counts live records discarded by the MaxRecords bound.
	Dropped int64 `json:"dropped"`
	// AppendErrors counts failed (rolled-back) Put/Delete appends.
	AppendErrors int64 `json:"appendErrors"`
}

// entry is the on-disk payload: a verdict keyed by digest, or a
// tombstone marking the digest deleted. Record holds the exact
// verdictjson.MarshalRecord bytes so storage is byte-transparent.
type entry struct {
	Digest  string          `json:"digest"`
	Deleted bool            `json:"deleted,omitempty"`
	Record  json.RawMessage `json:"record,omitempty"`
}

// segment is one open log file.
type segment struct {
	id      int
	f       *os.File
	size    int64 // valid byte length; appends go here
	records int
}

// loc addresses one committed frame.
type loc struct {
	segID int
	off   int64
	n     int32  // frame length (header + payload)
	seq   uint64 // monotone insertion order, the compaction drop order
}

// Store is an open verdict store. All methods are safe for concurrent
// use.
type Store struct {
	mu       sync.Mutex
	dir      string
	opts     Options
	faultSeq map[Op]int
	segs     []*segment // ascending id; last is the active segment
	index    map[string]loc
	seq      uint64
	dead     int
	broken   error // sticky: set when a rollback failed and the tail is torn

	replayed       int
	truncatedBytes int64
	compactions    int64
	compactErrors  int64
	dropped        int64
	appendErrors   int64
}

func segName(id int) string { return fmt.Sprintf("seg-%08d.log", id) }

// Open opens (or creates) the store in dir, replays every segment in id
// order, truncates any torn tail, and rebuilds the live index. The
// recovered records are exactly the committed prefix; ReadStats().Replayed
// reports how many.
func Open(dir string, opts Options) (*Store, error) {
	if opts.MaxRecords <= 0 {
		opts.MaxRecords = DefaultMaxRecords
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:      dir,
		opts:     opts,
		faultSeq: make(map[Op]int),
		index:    make(map[string]loc),
	}
	if err := s.scan(); err != nil {
		s.closeSegments()
		return nil, err
	}
	if len(s.segs) == 0 {
		f, err := s.createSegment(1)
		if err != nil {
			return nil, err
		}
		s.segs = append(s.segs, &segment{id: 1, f: f, size: int64(len(magic))})
	}
	s.replayed = len(s.index)
	return s, nil
}

// Dir reports the store's directory.
func (s *Store) Dir() string { return s.dir }

// scan replays every segment file in id order, removing stale temp files
// left by a crashed rotation or compaction on the way.
func (s *Store) scan() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var ids []int
	for _, de := range entries {
		name := de.Name()
		if strings.HasSuffix(name, ".tmp") {
			// Never renamed, so never part of the log; best-effort removal.
			if s.fault(OpRemove) == nil {
				_ = os.Remove(filepath.Join(s.dir, name))
			}
			continue
		}
		var id int
		if _, err := fmt.Sscanf(name, "seg-%d.log", &id); err == nil && segName(id) == name {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		if err := s.scanSegment(id); err != nil {
			return err
		}
	}
	return nil
}

// scanSegment replays one segment: valid frames enter the index
// (last-wins), and anything past the first incomplete or checksum-failing
// frame is truncated away as a torn tail.
func (s *Store) scanSegment(id int) error {
	path := filepath.Join(s.dir, segName(id))
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	size := info.Size()
	valid := int64(0)
	records := 0
	head := make([]byte, len(magic))
	if n, _ := f.ReadAt(head, 0); n == len(magic) && string(head) == magic {
		valid = int64(len(magic))
		hdr := make([]byte, headerLen)
		for valid+headerLen <= size {
			if _, err := f.ReadAt(hdr, valid); err != nil {
				break
			}
			plen := binary.LittleEndian.Uint32(hdr[0:4])
			want := binary.LittleEndian.Uint32(hdr[4:8])
			if plen > maxPayload || valid+headerLen+int64(plen) > size {
				break
			}
			payload := make([]byte, plen)
			if _, err := f.ReadAt(payload, valid+headerLen); err != nil {
				break
			}
			if crc32.Checksum(payload, castagnoli) != want {
				break
			}
			var e entry
			if err := json.Unmarshal(payload, &e); err != nil || e.Digest == "" {
				break
			}
			frame := int64(headerLen) + int64(plen)
			s.applyScanned(e, loc{segID: id, off: valid, n: int32(frame)})
			valid += frame
			records++
		}
	}
	if valid < size {
		// Torn or corrupt tail: cut it so appends extend a committed
		// prefix. This is the crash-recovery truncation point.
		if err := s.truncateTo(f, valid); err != nil {
			f.Close()
			return fmt.Errorf("store: truncating torn tail of %s: %w", segName(id), err)
		}
		s.truncatedBytes += size - valid
	}
	s.segs = append(s.segs, &segment{id: id, f: f, size: valid, records: records})
	return nil
}

// applyScanned folds one replayed entry into the index, last-wins.
func (s *Store) applyScanned(e entry, l loc) {
	if _, ok := s.index[e.Digest]; ok {
		s.dead++ // the superseded occurrence
	}
	if e.Deleted {
		delete(s.index, e.Digest)
		s.dead++ // the tombstone itself
		return
	}
	s.seq++
	l.seq = s.seq
	s.index[e.Digest] = l
}

// fault consults the injection hook for op and advances its sequence
// counter. Callers hold s.mu (or run single-threaded inside Open).
func (s *Store) fault(op Op) error {
	if s.opts.Fault == nil {
		return nil
	}
	n := s.faultSeq[op]
	s.faultSeq[op] = n + 1
	return s.opts.Fault(op, n)
}

// truncateTo cuts f back to size through the fault seam.
func (s *Store) truncateTo(f *os.File, size int64) error {
	if err := s.fault(OpTruncate); err != nil {
		return err
	}
	return f.Truncate(size)
}

// syncFile fsyncs f through the fault seam (a no-op under NoSync).
func (s *Store) syncFile(f *os.File) error {
	if s.opts.NoSync {
		return nil
	}
	if err := s.fault(OpSync); err != nil {
		return err
	}
	return f.Sync()
}

// syncDir fsyncs the store directory, best effort: the kill -9 crash
// model keeps renamed files visible without it, so a failure here is
// tolerated rather than turned into an append error.
func (s *Store) syncDir() {
	if s.opts.NoSync {
		return
	}
	if err := s.fault(OpSyncDir); err != nil {
		return
	}
	d, err := os.Open(s.dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// createSegment atomically materializes segment id: the magic header is
// written and fsynced under a .tmp name, then renamed into place, so a
// crash at any step leaves at worst a stale temp file.
func (s *Store) createSegment(id int) (*os.File, error) {
	tmp := filepath.Join(s.dir, segName(id)+".tmp")
	if err := s.fault(OpCreate); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o666)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	abort := func(err error) (*os.File, error) {
		f.Close()
		_ = os.Remove(tmp)
		return nil, fmt.Errorf("store: creating %s: %w", segName(id), err)
	}
	if err := s.fault(OpWrite); err != nil {
		return abort(err)
	}
	if _, err := f.WriteAt([]byte(magic), 0); err != nil {
		return abort(err)
	}
	if err := s.syncFile(f); err != nil {
		return abort(err)
	}
	if err := s.fault(OpRename); err != nil {
		return abort(err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, segName(id))); err != nil {
		return abort(err)
	}
	s.syncDir()
	return f, nil
}

// frame assembles the length+CRC framing around payload.
func frame(payload []byte) []byte {
	buf := make([]byte, headerLen+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	copy(buf[headerLen:], payload)
	return buf
}

// Put appends (or supersedes) the record for digest. A nil return means
// the record is committed: durably framed, checksummed, and fsynced. Any
// error means the append was rolled back and left no trace on disk.
func (s *Store) Put(digest string, rec verdictjson.Record) error {
	if digest == "" {
		return errors.New("store: empty digest")
	}
	data, err := verdictjson.MarshalRecord(rec)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	payload, err := json.Marshal(entry{Digest: digest, Record: data})
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, replacing := s.index[digest]
	l, err := s.appendLocked(payload)
	if err != nil {
		return err
	}
	if replacing {
		s.dead++
	}
	s.seq++
	l.seq = s.seq
	s.index[digest] = l
	s.maybeCompactLocked()
	return nil
}

// Get reads the live record for digest, if any. The boolean reports
// whether the digest is present; a non-nil error means the digest is
// present but its frame could not be read back (an I/O failure, not a
// miss). Get is the read-through path under the serve layer's LRU: an
// eviction only drops the in-memory copy, and the next request for the
// digest comes back here instead of recomputing the analysis.
func (s *Store) Get(digest string) (verdictjson.Record, bool, error) {
	s.mu.Lock()
	l, ok := s.index[digest]
	if !ok {
		s.mu.Unlock()
		return verdictjson.Record{}, false, nil
	}
	seg := s.segByID(l.segID)
	if seg == nil {
		s.mu.Unlock()
		return verdictjson.Record{}, true, fmt.Errorf("store: record references missing segment %d", l.segID)
	}
	buf := make([]byte, l.n)
	_, err := seg.f.ReadAt(buf, l.off)
	s.mu.Unlock()
	if err != nil {
		return verdictjson.Record{}, true, fmt.Errorf("store: %w", err)
	}
	var e entry
	if err := json.Unmarshal(buf[headerLen:], &e); err != nil {
		return verdictjson.Record{}, true, fmt.Errorf("store: %w", err)
	}
	rec, err := verdictjson.UnmarshalRecord(e.Record)
	if err != nil {
		return verdictjson.Record{}, true, fmt.Errorf("store: %w", err)
	}
	return rec, true, nil
}

// Delete appends a tombstone for digest; unknown digests are a no-op.
// Compaction treats the killed record as dead weight to reclaim.
func (s *Store) Delete(digest string) error {
	payload, err := json.Marshal(entry{Digest: digest, Deleted: true})
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[digest]; !ok {
		return nil
	}
	if _, err := s.appendLocked(payload); err != nil {
		return err
	}
	delete(s.index, digest)
	s.dead += 2 // the tombstone and the record it kills
	s.maybeCompactLocked()
	return nil
}

// appendLocked commits one frame to the active segment, rotating first
// when the segment is full. On any failure the segment is truncated back
// to its pre-append size so no partial frame survives.
func (s *Store) appendLocked(payload []byte) (loc, error) {
	if s.broken != nil {
		s.appendErrors++
		return loc{}, s.broken
	}
	if len(payload) > maxPayload {
		return loc{}, fmt.Errorf("store: record of %d bytes exceeds the %d-byte bound", len(payload), maxPayload)
	}
	buf := frame(payload)
	active := s.segs[len(s.segs)-1]
	if active.size+int64(len(buf)) > s.opts.SegmentBytes && active.records > 0 {
		if err := s.rotateLocked(); err != nil {
			s.appendErrors++
			return loc{}, err
		}
		active = s.segs[len(s.segs)-1]
	}
	if err := s.writeFrame(active, buf); err != nil {
		s.appendErrors++
		return loc{}, err
	}
	l := loc{segID: active.id, off: active.size, n: int32(len(buf))}
	active.size += int64(len(buf))
	active.records++
	return l, nil
}

// writeFrame lands buf at the active tail and fsyncs it, rolling the
// tail back on any failure so the append is all-or-nothing.
func (s *Store) writeFrame(seg *segment, buf []byte) error {
	if err := s.fault(OpWrite); err != nil {
		if errors.Is(err, ErrShortWrite) {
			// Land a torn prefix first — the ENOSPC shape — then roll back.
			_, _ = seg.f.WriteAt(buf[:len(buf)/2], seg.size)
		}
		s.rollback(seg)
		return err
	}
	if n, err := seg.f.WriteAt(buf, seg.size); err != nil || n < len(buf) {
		if err == nil {
			err = io.ErrShortWrite
		}
		s.rollback(seg)
		return fmt.Errorf("store: %w", err)
	}
	if err := s.syncFile(seg.f); err != nil {
		// The frame may be in the page cache but is not durable; remove it
		// so "Put returned nil" remains equivalent to "committed".
		s.rollback(seg)
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// rollback truncates seg to its committed size after a failed append. If
// the truncate itself fails the file may end in a torn frame the next
// append would interleave with, so the store goes sticky-broken; replay
// at the next open cuts the torn tail.
func (s *Store) rollback(seg *segment) {
	if err := s.truncateTo(seg.f, seg.size); err != nil {
		s.broken = fmt.Errorf("store: unrecoverable torn tail (rollback failed): %w", err)
	}
}

// rotateLocked opens the next segment as the append target.
func (s *Store) rotateLocked() error {
	id := s.segs[len(s.segs)-1].id + 1
	f, err := s.createSegment(id)
	if err != nil {
		return err
	}
	s.segs = append(s.segs, &segment{id: id, f: f, size: int64(len(magic))})
	return nil
}

// maybeCompactLocked triggers compaction when garbage outweighs the live
// set or the live set exceeds its bound.
func (s *Store) maybeCompactLocked() {
	live := len(s.index)
	if live > s.opts.MaxRecords || (s.dead >= minDeadCompact && s.dead > live) {
		s.compactLocked()
	}
}

// compactLocked rewrites the live records (newest MaxRecords of them, in
// insertion order) into one fresh segment via temp-file+rename, then
// removes the old segments. Failures are contained: the old segments
// stay authoritative and the next trigger retries. A crash between the
// rename and the removals is benign — replay is last-wins, and dropped
// or deleted digests resurrect at worst into valid (never-stale)
// verdicts.
func (s *Store) compactLocked() {
	type liveEnt struct {
		digest string
		l      loc
	}
	ents := make([]liveEnt, 0, len(s.index))
	for d, l := range s.index {
		ents = append(ents, liveEnt{d, l})
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].l.seq < ents[j].l.seq })
	dropN := 0
	if len(ents) > s.opts.MaxRecords {
		dropN = len(ents) - s.opts.MaxRecords
	}
	survivors := ents[dropN:]

	// Assemble the compacted image in memory (bounded by MaxRecords).
	img := make([]byte, 0, 1024)
	img = append(img, magic...)
	offs := make([]int64, len(survivors))
	for i, e := range survivors {
		buf := make([]byte, e.l.n)
		seg := s.segByID(e.l.segID)
		if seg == nil {
			s.compactErrors++
			return
		}
		if _, err := seg.f.ReadAt(buf, e.l.off); err != nil {
			s.compactErrors++
			return
		}
		offs[i] = int64(len(img))
		img = append(img, buf...)
	}

	newID := s.segs[len(s.segs)-1].id + 1
	tmp := filepath.Join(s.dir, "compact.tmp")
	abort := func(f *os.File) {
		if f != nil {
			f.Close()
		}
		_ = os.Remove(tmp)
		s.compactErrors++
	}
	if err := s.fault(OpCreate); err != nil {
		s.compactErrors++
		return
	}
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o666)
	if err != nil {
		s.compactErrors++
		return
	}
	if err := s.fault(OpWrite); err != nil {
		abort(f)
		return
	}
	if _, err := f.WriteAt(img, 0); err != nil {
		abort(f)
		return
	}
	if err := s.syncFile(f); err != nil {
		abort(f)
		return
	}
	if err := s.fault(OpRename); err != nil {
		abort(f)
		return
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, segName(newID))); err != nil {
		abort(f)
		return
	}
	s.syncDir()

	// The compacted segment is authoritative; retire the old ones.
	for _, old := range s.segs {
		old.f.Close()
		if s.fault(OpRemove) == nil {
			_ = os.Remove(filepath.Join(s.dir, segName(old.id)))
		}
	}
	s.segs = []*segment{{id: newID, f: f, size: int64(len(img)), records: len(survivors)}}
	for i, e := range survivors {
		s.index[e.digest] = loc{segID: newID, off: offs[i], n: e.l.n, seq: e.l.seq}
	}
	for _, e := range ents[:dropN] {
		delete(s.index, e.digest)
	}
	s.dead = 0
	s.compactions++
	s.dropped += int64(dropN)
}

func (s *Store) segByID(id int) *segment {
	for _, seg := range s.segs {
		if seg.id == id {
			return seg
		}
	}
	return nil
}

// Range calls fn for every live record in insertion order until fn
// returns false. Payloads are copied out under the lock and decoded
// outside it, so fn may call back into the store — the serve warm-load
// path evicts through the same keeper that deletes here.
func (s *Store) Range(fn func(digest string, rec verdictjson.Record) bool) error {
	s.mu.Lock()
	locs := make([]loc, 0, len(s.index))
	for _, l := range s.index {
		locs = append(locs, l)
	}
	// Sorting before the reads makes both the callback order and any read
	// error a pure function of the store state, not of map order.
	sort.Slice(locs, func(i, j int) bool { return locs[i].seq < locs[j].seq })
	payloads := make([][]byte, 0, len(locs))
	var readErr error
	for _, l := range locs {
		seg := s.segByID(l.segID)
		if seg == nil {
			readErr = fmt.Errorf("store: record references missing segment %d", l.segID)
			break
		}
		buf := make([]byte, l.n)
		if _, err := seg.f.ReadAt(buf, l.off); err != nil {
			readErr = fmt.Errorf("store: %w", err)
			break
		}
		payloads = append(payloads, buf[headerLen:])
	}
	s.mu.Unlock()
	if readErr != nil {
		return readErr
	}
	for _, payload := range payloads {
		var e entry
		if err := json.Unmarshal(payload, &e); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		rec, err := verdictjson.UnmarshalRecord(e.Record)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if !fn(e.Digest, rec) {
			return nil
		}
	}
	return nil
}

// ReadStats snapshots the store's counters.
func (s *Store) ReadStats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var bytes int64
	for _, seg := range s.segs {
		bytes += seg.size
	}
	return Stats{
		Segments:       len(s.segs),
		Records:        len(s.index),
		Dead:           s.dead,
		Bytes:          bytes,
		Replayed:       s.replayed,
		TruncatedBytes: s.truncatedBytes,
		Compactions:    s.compactions,
		CompactErrors:  s.compactErrors,
		Dropped:        s.dropped,
		AppendErrors:   s.appendErrors,
	}
}

// Close syncs and closes every segment. The store is unusable afterward.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.closeSegments()
	if s.broken == nil {
		s.broken = errors.New("store: closed")
	}
	return err
}

func (s *Store) closeSegments() error {
	var first error
	for _, seg := range s.segs {
		if !s.opts.NoSync {
			_ = seg.f.Sync()
		}
		if err := seg.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.segs = nil
	return first
}
