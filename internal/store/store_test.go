package store_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"fspnet/internal/store"
	"fspnet/internal/store/storefault"
	"fspnet/internal/success"
	"fspnet/internal/verdictjson"
)

// rec builds a distinct, deterministic verdict record; i varies the
// process name and predicate bits so byte comparisons are meaningful.
func rec(i int) verdictjson.Record {
	return verdictjson.OK(fmt.Sprintf("P%d", i), success.Verdict{
		Su: i%2 == 0, Sa: i%3 == 0, Sc: true,
	})
}

func digest(i int) string { return fmt.Sprintf("d%04d", i) }

func mustMarshal(t *testing.T, r verdictjson.Record) []byte {
	t.Helper()
	b, err := verdictjson.MarshalRecord(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// collect drains the live set into digest → marshaled-record bytes.
func collect(t *testing.T, s *store.Store) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	err := s.Range(func(d string, r verdictjson.Record) bool {
		out[d] = mustMarshal(t, r)
		return true
	})
	if err != nil {
		t.Fatalf("Range: %v", err)
	}
	return out
}

func mustOpen(t *testing.T, dir string, opts store.Options) *store.Store {
	t.Helper()
	s, err := store.Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func TestRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, store.Options{})
	for i := 0; i < 3; i++ {
		if err := s.Put(digest(i), rec(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if st := s.ReadStats(); st.Records != 3 || st.Segments != 1 || st.Dead != 0 {
		t.Errorf("stats = %+v, want 3 records / 1 segment / 0 dead", st)
	}
	before := collect(t, s)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := mustOpen(t, dir, store.Options{})
	defer s2.Close()
	if st := s2.ReadStats(); st.Replayed != 3 || st.TruncatedBytes != 0 {
		t.Errorf("reopen stats = %+v, want replayed=3 truncated=0", st)
	}
	after := collect(t, s2)
	if len(after) != 3 {
		t.Fatalf("recovered %d records, want 3", len(after))
	}
	for i := 0; i < 3; i++ {
		want := mustMarshal(t, rec(i))
		if got, ok := after[digest(i)]; !ok || !bytes.Equal(got, want) {
			t.Errorf("record %d not byte-identical after reopen:\ngot:  %s\nwant: %s", i, got, want)
		}
		if !bytes.Equal(after[digest(i)], before[digest(i)]) {
			t.Errorf("record %d differs from the pre-close read", i)
		}
	}
}

func TestGetPointLookup(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, store.Options{})
	for i := 0; i < 4; i++ {
		if err := s.Put(digest(i), rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite must be visible through Get (last-wins).
	if err := s.Put(digest(2), rec(9)); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(digest(2))
	if err != nil || !ok {
		t.Fatalf("Get(d2) = ok=%t err=%v", ok, err)
	}
	if !bytes.Equal(mustMarshal(t, got), mustMarshal(t, rec(9))) {
		t.Errorf("Get returned the superseded record: %+v", got)
	}
	if _, ok, err := s.Get("absent"); ok || err != nil {
		t.Errorf("Get(absent) = ok=%t err=%v, want miss", ok, err)
	}
	if err := s.Delete(digest(1)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get(digest(1)); ok {
		t.Error("Get found a deleted digest")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Point lookups survive a reopen byte-identically.
	s2 := mustOpen(t, dir, store.Options{})
	defer s2.Close()
	got2, ok, err := s2.Get(digest(2))
	if err != nil || !ok {
		t.Fatalf("reopened Get(d2) = ok=%t err=%v", ok, err)
	}
	if !bytes.Equal(mustMarshal(t, got2), mustMarshal(t, rec(9))) {
		t.Errorf("reopened Get not byte-identical: %+v", got2)
	}
}

func TestRangeInsertionOrder(t *testing.T) {
	s := mustOpen(t, t.TempDir(), store.Options{})
	defer s.Close()
	for i := 0; i < 5; i++ {
		if err := s.Put(digest(i), rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Refreshing d1 moves it to the back of the insertion order.
	if err := s.Put(digest(1), rec(10)); err != nil {
		t.Fatal(err)
	}
	var order []string
	if err := s.Range(func(d string, _ verdictjson.Record) bool {
		order = append(order, d)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{digest(0), digest(2), digest(3), digest(4), digest(1)}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestUpdateLastWinsAndDelete(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, store.Options{})
	if err := s.Put(digest(0), rec(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(digest(0), rec(7)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(digest(1), rec(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(digest(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("never-stored"); err != nil {
		t.Fatalf("deleting an unknown digest must be a no-op, got %v", err)
	}
	if st := s.ReadStats(); st.Records != 1 || st.Dead != 3 {
		t.Errorf("stats = %+v, want 1 live / 3 dead", st)
	}
	s.Close()

	s2 := mustOpen(t, dir, store.Options{})
	defer s2.Close()
	got := collect(t, s2)
	if len(got) != 1 {
		t.Fatalf("recovered %v, want only %s", got, digest(0))
	}
	if want := mustMarshal(t, rec(7)); !bytes.Equal(got[digest(0)], want) {
		t.Errorf("last-wins violated: got %s want %s", got[digest(0)], want)
	}
}

func TestRotationAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	// A 1-byte threshold forces a rotation before every record past the
	// first of each segment: five puts → five segments.
	s := mustOpen(t, dir, store.Options{SegmentBytes: 1})
	for i := 0; i < 5; i++ {
		if err := s.Put(digest(i), rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.ReadStats(); st.Segments != 5 || st.Records != 5 {
		t.Errorf("stats = %+v, want 5 segments / 5 records", st)
	}
	s.Close()

	s2 := mustOpen(t, dir, store.Options{SegmentBytes: 1})
	defer s2.Close()
	if st := s2.ReadStats(); st.Replayed != 5 {
		t.Errorf("replayed = %d, want 5", st.Replayed)
	}
	got := collect(t, s2)
	for i := 0; i < 5; i++ {
		if want := mustMarshal(t, rec(i)); !bytes.Equal(got[digest(i)], want) {
			t.Errorf("record %d not byte-identical across segment replay", i)
		}
	}
}

func TestCompactionDropsOldestBeyondCap(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, store.Options{MaxRecords: 3})
	for i := 0; i < 5; i++ {
		if err := s.Put(digest(i), rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.ReadStats()
	if st.Records != 3 || st.Dropped != 2 || st.Compactions < 1 || st.Segments != 1 {
		t.Errorf("stats = %+v, want 3 live, 2 dropped, ≥1 compactions, 1 segment", st)
	}
	got := collect(t, s)
	for i := 0; i < 2; i++ {
		if _, ok := got[digest(i)]; ok {
			t.Errorf("oldest record %d survived the cap", i)
		}
	}
	for i := 2; i < 5; i++ {
		if want := mustMarshal(t, rec(i)); !bytes.Equal(got[digest(i)], want) {
			t.Errorf("survivor %d not byte-identical after compaction", i)
		}
	}
	s.Close()

	s2 := mustOpen(t, dir, store.Options{MaxRecords: 3})
	defer s2.Close()
	if st := s2.ReadStats(); st.Replayed != 3 {
		t.Errorf("replayed = %d after compaction, want 3", st.Replayed)
	}
}

func TestCompactionReclaimsDeadRecords(t *testing.T) {
	s := mustOpen(t, t.TempDir(), store.Options{})
	defer s.Close()
	if err := s.Put(digest(0), rec(0)); err != nil {
		t.Fatal(err)
	}
	// Each refresh deadens the previous version; the dead count crossing
	// both the floor and the live count triggers compaction.
	for i := 0; i < 20; i++ {
		if err := s.Put(digest(0), rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.ReadStats()
	// Dead records re-accumulate after each compaction but never reach the
	// trigger floor again before the loop ends.
	if st.Compactions < 1 || st.Dead >= 8 {
		t.Errorf("stats = %+v, want at least one compaction and dead below the floor", st)
	}
	got := collect(t, s)
	if want := mustMarshal(t, rec(19)); !bytes.Equal(got[digest(0)], want) {
		t.Errorf("compaction lost the newest version: got %s want %s", got[digest(0)], want)
	}
}

// segPath returns the path of the newest segment file in dir.
func segPath(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no segment files in %s (err %v)", dir, err)
	}
	return matches[len(matches)-1]
}

func TestTornTailTruncatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, store.Options{})
	for i := 0; i < 3; i++ {
		if err := s.Put(digest(i), rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Simulate a crash mid-append: a frame header promising more payload
	// than the file holds.
	path := segPath(t, dir)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 'x', 'y'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := mustOpen(t, dir, store.Options{})
	if st := s2.ReadStats(); st.Replayed != 3 || st.TruncatedBytes != 10 {
		t.Errorf("stats = %+v, want replayed=3 truncatedBytes=10", st)
	}
	// The repaired tail accepts appends again, and they survive.
	if err := s2.Put(digest(9), rec(9)); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
	s2.Close()
	s3 := mustOpen(t, dir, store.Options{})
	defer s3.Close()
	if got := collect(t, s3); len(got) != 4 {
		t.Errorf("recovered %d records after repair+append, want 4", len(got))
	}
}

func TestCorruptRecordTruncatesFromThere(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, store.Options{})
	for i := 0; i < 3; i++ {
		if err := s.Put(digest(i), rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Flip a byte inside the last record's payload: its CRC fails, the
	// committed prefix (records 0 and 1) survives.
	path := segPath(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xff
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, store.Options{})
	defer s2.Close()
	st := s2.ReadStats()
	if st.Replayed != 2 || st.TruncatedBytes == 0 {
		t.Errorf("stats = %+v, want replayed=2 and a truncated tail", st)
	}
	got := collect(t, s2)
	for i := 0; i < 2; i++ {
		if want := mustMarshal(t, rec(i)); !bytes.Equal(got[digest(i)], want) {
			t.Errorf("surviving record %d not byte-identical", i)
		}
	}
	if _, ok := got[digest(2)]; ok {
		t.Error("corrupted record was served")
	}
}

var errInjected = errors.New("injected I/O error")

func TestTransientWriteErrorRollsBack(t *testing.T) {
	dir := t.TempDir()
	// Write seq 0 is the segment magic; seq 2 is the second Put.
	s, err := store.Open(dir, store.Options{Fault: storefault.FailAt(store.OpWrite, 2, errInjected)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(digest(0), rec(0)); err != nil {
		t.Fatalf("Put 0: %v", err)
	}
	if err := s.Put(digest(1), rec(1)); !errors.Is(err, errInjected) {
		t.Fatalf("Put 1 = %v, want the injected error", err)
	}
	// The store self-repaired: the next append lands cleanly.
	if err := s.Put(digest(2), rec(2)); err != nil {
		t.Fatalf("Put 2 after rollback: %v", err)
	}
	if st := s.ReadStats(); st.AppendErrors != 1 {
		t.Errorf("appendErrors = %d, want 1", st.AppendErrors)
	}
	s.Close()

	s2 := mustOpen(t, dir, store.Options{})
	defer s2.Close()
	got := collect(t, s2)
	if len(got) != 2 {
		t.Fatalf("recovered %v, want exactly d0000 and d0002", got)
	}
	if _, ok := got[digest(1)]; ok {
		t.Error("rolled-back record resurfaced")
	}
}

func TestShortWriteThenStuckTruncateGoesBroken(t *testing.T) {
	dir := t.TempDir()
	// The first Put's frame lands half-written (write seq 1; seq 0 is the
	// magic) and the rollback truncate is also dead: the store must go
	// sticky-broken rather than interleave later records into the torn
	// tail.
	hook := storefault.Chain(
		storefault.ShortWriteAt(1),
		storefault.FailFrom(store.OpTruncate, 0, errInjected),
	)
	s, err := store.Open(dir, store.Options{Fault: hook})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(digest(0), rec(0)); !errors.Is(err, store.ErrShortWrite) {
		t.Fatalf("Put 0 = %v, want ErrShortWrite", err)
	}
	if err := s.Put(digest(1), rec(1)); err == nil {
		t.Fatal("broken store accepted a write")
	}
	s.Close()

	// Reopen without faults: the torn half-frame is on disk and must be
	// truncated away; nothing was committed, so nothing is recovered.
	s2 := mustOpen(t, dir, store.Options{})
	defer s2.Close()
	st := s2.ReadStats()
	if st.Replayed != 0 || st.TruncatedBytes == 0 {
		t.Errorf("stats = %+v, want replayed=0 and a truncated torn tail", st)
	}
}

func TestStaleTempFilesRemovedOnOpen(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "seg-00000042.log.tmp"), []byte("half a rotation"), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "compact.tmp"), []byte("half a compaction"), 0o666); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir, store.Options{})
	defer s.Close()
	for _, stale := range []string{"seg-00000042.log.tmp", "compact.tmp"} {
		if _, err := os.Stat(filepath.Join(dir, stale)); !os.IsNotExist(err) {
			t.Errorf("stale %s survived open (err %v)", stale, err)
		}
	}
}
