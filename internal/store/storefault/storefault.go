// Package storefault provides store.FaultFunc implementations for the
// disk fault-injection sweeps — the I/O-boundary mirror of
// internal/guard/faultinject. The store tests use FailAt / FailFrom /
// ShortWriteAt to prove the crash-recovery invariant under every single
// fault point; cmd/fspd wires KillAt through the FSPD_STORE_KILL
// environment variable so the crash matrix can SIGKILL a real daemon at
// each record boundary.
//
// Hooks are pure functions of (op, seq) — they keep no state — and are
// therefore trivially safe for the concurrent consultations the store
// serializes under its own lock.
package storefault

import (
	"fmt"
	"os"

	"fspnet/internal/store"
)

// FailAt injects err at exactly the n-th occurrence of op — a transient
// fault (a single EIO, an ENOSPC that clears) the store must roll back
// and then outlive.
func FailAt(op store.Op, n int, err error) store.FaultFunc {
	return func(o store.Op, seq int) error {
		if o == op && seq == n {
			return fmt.Errorf("storefault: injected %s fault at seq %d: %w", op, n, err)
		}
		return nil
	}
}

// FailFrom injects err at every occurrence of op from the n-th on — a
// persistent fault (dead disk, full volume) that must drive the serve
// layer into degraded, memory-only mode rather than failing requests.
func FailFrom(op store.Op, n int, err error) store.FaultFunc {
	return func(o store.Op, seq int) error {
		if o == op && seq >= n {
			return fmt.Errorf("storefault: injected %s fault from seq %d: %w", op, n, err)
		}
		return nil
	}
}

// ShortWriteAt makes the n-th write land only a prefix of its frame
// before failing — the torn-write shape of ENOSPC and partial sectors.
func ShortWriteAt(n int) store.FaultFunc {
	return FailAt(store.OpWrite, n, store.ErrShortWrite)
}

// Chain consults hooks in order and returns the first injected fault, so
// compound scenarios (a short write whose rollback truncate also fails)
// compose from the primitives.
func Chain(hooks ...store.FaultFunc) store.FaultFunc {
	return func(op store.Op, seq int) error {
		for _, h := range hooks {
			if err := h(op, seq); err != nil {
				return err
			}
		}
		return nil
	}
}

// KillAt SIGKILLs the whole process at the n-th occurrence of op (and
// any later one, so amortized paths cannot slip past) — the kill -9
// crash point of the recovery matrix. The call never returns.
func KillAt(op store.Op, n int) store.FaultFunc {
	return func(o store.Op, seq int) error {
		if o == op && seq >= n {
			p, err := os.FindProcess(os.Getpid())
			if err == nil {
				_ = p.Kill()
			}
			select {} // unreachable: the process is gone
		}
		return nil
	}
}
