package storefault_test

import (
	"errors"
	"testing"

	"fspnet/internal/store"
	"fspnet/internal/store/storefault"
)

var errBoom = errors.New("boom")

func TestFailAtFiresExactlyOnce(t *testing.T) {
	h := storefault.FailAt(store.OpWrite, 2, errBoom)
	for seq := 0; seq < 5; seq++ {
		err := h(store.OpWrite, seq)
		if seq == 2 && !errors.Is(err, errBoom) {
			t.Errorf("seq %d = %v, want errBoom", seq, err)
		}
		if seq != 2 && err != nil {
			t.Errorf("seq %d = %v, want nil", seq, err)
		}
	}
	if err := h(store.OpSync, 2); err != nil {
		t.Errorf("other op fired: %v", err)
	}
}

func TestFailFromIsPersistent(t *testing.T) {
	h := storefault.FailFrom(store.OpSync, 1, errBoom)
	if err := h(store.OpSync, 0); err != nil {
		t.Errorf("below threshold = %v, want nil", err)
	}
	for _, seq := range []int{1, 2, 50} {
		if err := h(store.OpSync, seq); !errors.Is(err, errBoom) {
			t.Errorf("seq %d = %v, want errBoom", seq, err)
		}
	}
}

func TestShortWriteAtWrapsSentinel(t *testing.T) {
	h := storefault.ShortWriteAt(0)
	if err := h(store.OpWrite, 0); !errors.Is(err, store.ErrShortWrite) {
		t.Errorf("err = %v, want ErrShortWrite", err)
	}
	if err := h(store.OpTruncate, 0); err != nil {
		t.Errorf("short write leaked onto truncate: %v", err)
	}
}

func TestChainFirstFaultWins(t *testing.T) {
	errOther := errors.New("other")
	h := storefault.Chain(
		storefault.FailAt(store.OpWrite, 1, errBoom),
		storefault.FailFrom(store.OpWrite, 0, errOther),
	)
	if err := h(store.OpWrite, 0); !errors.Is(err, errOther) {
		t.Errorf("seq 0 = %v, want errOther", err)
	}
	if err := h(store.OpWrite, 1); !errors.Is(err, errBoom) {
		t.Errorf("seq 1 = %v, want errBoom (first hook wins)", err)
	}
	if err := h(store.OpRename, 0); err != nil {
		t.Errorf("unrelated op = %v, want nil", err)
	}
}
