package store_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"fspnet/internal/store"
	"fspnet/internal/store/storefault"
	"fspnet/internal/verdictjson"
)

// The recovery-invariant sweep. For every operation class, every early
// sequence number, and every fault flavor, it runs a fixed script of
// puts, updates, and deletes against a faulted store, tracks exactly the
// operations the store acknowledged (returned nil for), abandons the
// store without Close — the crash — and reopens the directory fault-free.
// The invariant under test is the store's core contract:
//
//	recovered state == fold of acknowledged operations
//
// byte-identical per record, regardless of where or how the I/O failed.
// Tiny segments force rotations mid-script and a low cap plus repeated
// updates force compactions, so the sweep crosses every write path:
// append, rotation, compaction, and rollback.

const (
	sweepSegmentBytes = 256
	sweepMaxRecords   = 64
	sweepMaxSeq       = 12
)

// sweepOp is one scripted mutation.
type sweepOp struct {
	del    bool
	digest string
	rec    verdictjson.Record
}

// sweepScript mixes fresh puts, updates (which deaden prior versions and
// eventually trip the dead-ratio compaction), and deletes.
func sweepScript() []sweepOp {
	var ops []sweepOp
	for i := 0; i < 10; i++ {
		ops = append(ops, sweepOp{digest: digest(i), rec: rec(i)})
	}
	// Update the first five twice each: 10 dead records, past the floor.
	for round := 0; round < 2; round++ {
		for i := 0; i < 5; i++ {
			ops = append(ops, sweepOp{digest: digest(i), rec: rec(100 + 10*round + i)})
		}
	}
	ops = append(ops,
		sweepOp{del: true, digest: digest(7)},
		sweepOp{del: true, digest: digest(8)},
		sweepOp{digest: digest(20), rec: rec(20)},
		sweepOp{digest: digest(7), rec: rec(77)}, // resurrect a deleted digest
	)
	return ops
}

// applyAcked folds one acknowledged op into the expected live set.
func applyAcked(expected map[string][]byte, op sweepOp, t *testing.T) {
	if op.del {
		delete(expected, op.digest)
		return
	}
	expected[op.digest] = mustMarshal(t, op.rec)
}

// runSweepCase executes the script under hook, then reopens fault-free
// and checks the invariant. Returns how many script ops were acked, so
// callers can assert the fault actually bit.
func runSweepCase(t *testing.T, name string, hook store.FaultFunc) (acked, failed int) {
	t.Helper()
	dir := t.TempDir()
	expected := make(map[string][]byte)

	s, err := store.Open(dir, store.Options{
		SegmentBytes: sweepSegmentBytes,
		MaxRecords:   sweepMaxRecords,
		Fault:        hook,
	})
	if err == nil {
		for _, op := range sweepScript() {
			var opErr error
			if op.del {
				opErr = s.Delete(op.digest)
			} else {
				opErr = s.Put(op.digest, op.rec)
			}
			if opErr == nil {
				applyAcked(expected, op, t)
				acked++
			} else {
				failed++
			}
		}
		// Crash: abandon the handle. No Close, no final sync.
	} else {
		// Open itself failed under injection: the directory may hold
		// leftovers, but nothing was ever acknowledged.
		failed++
	}

	s2, err := store.Open(dir, store.Options{
		SegmentBytes: sweepSegmentBytes,
		MaxRecords:   sweepMaxRecords,
	})
	if err != nil {
		t.Fatalf("%s: fault-free reopen failed: %v", name, err)
	}
	defer s2.Close()

	got := make(map[string][]byte)
	if err := s2.Range(func(d string, r verdictjson.Record) bool {
		got[d] = mustMarshal(t, r)
		return true
	}); err != nil {
		t.Fatalf("%s: Range after recovery: %v", name, err)
	}

	if len(got) != len(expected) {
		t.Errorf("%s: recovered %d records, want %d acknowledged", name, len(got), len(expected))
	}
	for d, want := range expected {
		b, ok := got[d]
		if !ok {
			t.Errorf("%s: acknowledged record %s lost", name, d)
			continue
		}
		if !bytes.Equal(b, want) {
			t.Errorf("%s: record %s not byte-identical:\ngot:  %s\nwant: %s", name, d, b, want)
		}
	}
	for d := range got {
		if _, ok := expected[d]; !ok {
			t.Errorf("%s: unacknowledged record %s resurfaced", name, d)
		}
	}
	return acked, failed
}

var errSweep = errors.New("injected sweep fault")

// TestFaultInjectRecoverySweep is the full matrix: every Op × seq 0..11 ×
// {transient, persistent} plus the short-write flavors below. The name
// keeps "FaultInject" so `make test-fault` runs it alongside the guard
// sweeps.
func TestFaultInjectRecoverySweep(t *testing.T) {
	totalOps := len(sweepScript())
	anyFailed := false
	for _, op := range store.Ops {
		for seq := 0; seq < sweepMaxSeq; seq++ {
			name := fmt.Sprintf("transient/%s/%d", op, seq)
			t.Run(name, func(t *testing.T) {
				_, failed := runSweepCase(t, name, storefault.FailAt(op, seq, errSweep))
				if failed > 0 {
					anyFailed = true
				}
			})
			name = fmt.Sprintf("persistent/%s/%d", op, seq)
			t.Run(name, func(t *testing.T) {
				acked, failed := runSweepCase(t, name, storefault.FailFrom(op, seq, errSweep))
				if failed > 0 {
					anyFailed = true
				}
				// A disk whose every write dies from the start must not ack
				// anything (remove/sync-dir faults are tolerated by design).
				if op == store.OpWrite && seq == 0 && acked != 0 {
					t.Errorf("dead-from-birth disk acked %d ops", acked)
				}
				_ = totalOps
			})
		}
	}
	if !anyFailed {
		t.Error("sweep never observed an injected failure; fault seam is dead")
	}
}

// TestFaultInjectShortWriteSweep tears the frame itself: the n-th write
// lands only half its bytes. The committed prefix must survive, the torn
// frame must not, and — in the stuck-truncate variant — the store must
// refuse further writes rather than interleave records after a torn tail.
func TestFaultInjectShortWriteSweep(t *testing.T) {
	for seq := 0; seq < sweepMaxSeq; seq++ {
		name := fmt.Sprintf("short/%d", seq)
		t.Run(name, func(t *testing.T) {
			runSweepCase(t, name, storefault.ShortWriteAt(seq))
		})
		name = fmt.Sprintf("short+stucktruncate/%d", seq)
		t.Run(name, func(t *testing.T) {
			runSweepCase(t, name, storefault.Chain(
				storefault.ShortWriteAt(seq),
				storefault.FailFrom(store.OpTruncate, 0, errSweep),
			))
		})
	}
}

// TestFaultInjectDoubleFault pairs a fault during the script with a
// second fault of a different class, covering compound failures like a
// failed rotation followed by a failed sync.
func TestFaultInjectDoubleFault(t *testing.T) {
	pairs := []struct {
		a, b store.Op
	}{
		{store.OpCreate, store.OpWrite},
		{store.OpWrite, store.OpSync},
		{store.OpSync, store.OpRename},
		{store.OpRename, store.OpWrite},
		{store.OpWrite, store.OpTruncate},
	}
	for _, p := range pairs {
		for seq := 0; seq < 4; seq++ {
			name := fmt.Sprintf("%s+%s/%d", p.a, p.b, seq)
			t.Run(name, func(t *testing.T) {
				runSweepCase(t, name, storefault.Chain(
					storefault.FailAt(p.a, seq, errSweep),
					storefault.FailAt(p.b, seq+1, errSweep),
				))
			})
		}
	}
}
