package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"fspnet/internal/store"
	"fspnet/internal/verdictjson"
)

// netN generates the i-th of a family of distinct two-process networks,
// each its own digest.
func netN(i int) string {
	return fmt.Sprintf("process P { start s0; s0 x%d s1 }\nprocess Q { start q0; q0 x%d q1 }", i, i)
}

func getHealth(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body.Status
}

func TestHealthzDrain503(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	if code, status := getHealth(t, ts.URL); code != http.StatusOK || status != "ok" {
		t.Fatalf("healthz before drain = %d %q, want 200 ok", code, status)
	}

	s.StartDrain()
	if code, status := getHealth(t, ts.URL); code != http.StatusServiceUnavailable || status != "draining" {
		t.Fatalf("healthz during drain = %d %q, want 503 draining", code, status)
	}
	// The health drain must NOT cancel analysis traffic: requests admitted
	// during the grace period still run to completion.
	resp, ar := postJSON(t, ts.URL, AnalyzeRequest{Network: netA})
	if resp.StatusCode != http.StatusOK || ar.Record.Status != "ok" {
		t.Fatalf("analyze during health drain = %d status %q, want a full 200 verdict",
			resp.StatusCode, ar.Record.Status)
	}

	// The hard drain keeps the 503.
	s.CancelInflight()
	if code, _ := getHealth(t, ts.URL); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after CancelInflight = %d, want 503", code)
	}
}

func TestRetryAfterOn429(t *testing.T) {
	hook := newBlockHook()
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Hook: hook})

	// Seed the latency ring so the hint is demonstrably latency-derived:
	// a 2.5s p90 must round up to a 3s hint.
	s.lat.record("acyclic/all", 2500*time.Millisecond)

	first := postAsync(t, ts.URL, netA)
	<-hook.entered // the worker is parked inside the governor
	second := postAsync(t, ts.URL, netB)
	waitStats(t, ts.URL, func(st Stats) bool { return st.Queued == 1 })

	// Admission capacity (1 worker + 1 queue slot) is now exhausted; the
	// next distinct request bounces with the hint.
	resp, err := http.Post(ts.URL+"/v1/analyze", "text/plain", bytes.NewReader([]byte(netC)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated analyze = %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if secs, err := strconv.Atoi(ra); err != nil || secs != 3 {
		t.Errorf("Retry-After = %q, want \"3\" (ceil of the 2.5s p90)", ra)
	}

	close(hook.release)
	<-first
	<-second
}

func TestRetryAfterFloorWithoutSamples(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	if got := s.retryAfterSeconds("cyclic/all"); got != 1 {
		t.Errorf("retryAfterSeconds with empty ring = %d, want the 1s floor", got)
	}
	s.lat.record("cyclic/all", 10*time.Millisecond)
	if got := s.retryAfterSeconds("cyclic/all"); got != 1 {
		t.Errorf("retryAfterSeconds with 10ms p90 = %d, want the 1s floor", got)
	}
}

func TestStoreWarmLoadServesHits(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1, Store: StoreConfig{Dir: dir}}

	s1, ts1 := newTestServer(t, cfg)
	resp, first := postJSON(t, ts1.URL, AnalyzeRequest{Network: netA})
	if resp.StatusCode != http.StatusOK || first.Cached {
		t.Fatalf("first analyze = %d cached=%v, want a 200 miss", resp.StatusCode, first.Cached)
	}
	if st := getStats(t, ts1.URL); st.Store == nil || st.Store.State != StoreOK || st.Store.Records != 1 {
		t.Fatalf("store stats after miss = %+v, want ok with 1 record", st.Store)
	}
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A fresh process over the same directory serves the verdict as a
	// cache hit without re-running the analysis, byte-identical.
	_, ts2 := newTestServer(t, cfg)
	st := getStats(t, ts2.URL)
	if st.Store == nil || st.Store.Replayed != 1 || st.CacheEntries != 1 {
		t.Fatalf("warm boot stats = cache %d, store %+v; want 1 entry replayed", st.CacheEntries, st.Store)
	}
	resp, second := postJSON(t, ts2.URL, AnalyzeRequest{Network: netA})
	if resp.StatusCode != http.StatusOK || !second.Cached {
		t.Fatalf("post-restart analyze = %d cached=%v, want a 200 hit", resp.StatusCode, second.Cached)
	}
	a, err := verdictjson.MarshalRecord(first.Record)
	if err != nil {
		t.Fatal(err)
	}
	b, err := verdictjson.MarshalRecord(second.Record)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("restart changed the record:\nbefore: %s\nafter:  %s", a, b)
	}
	if st := getStats(t, ts2.URL); st.Misses != 0 || st.Hits != 1 {
		t.Errorf("post-restart counters = hits %d misses %d, want 1/0", st.Hits, st.Misses)
	}
}

func TestStoreDegradedModeAndReopen(t *testing.T) {
	var failing atomic.Bool
	errDisk := errors.New("injected disk failure")
	cfg := Config{
		Workers: 1,
		Store: StoreConfig{
			Dir: t.TempDir(),
			Options: store.Options{
				Fault: func(op store.Op, seq int) error {
					// Gate on writes only: reopen's directory scan stays
					// readable, which matches a full-but-mounted volume.
					if failing.Load() && op == store.OpWrite {
						return errDisk
					}
					return nil
				},
			},
			// The floor keeps the probe from firing while the disk is still
			// failing (the whole failure script runs in well under 200ms),
			// so exactly one quarantine and one reopen happen.
			FailThreshold: 2,
			ReopenMin:     200 * time.Millisecond,
			ReopenMax:     400 * time.Millisecond,
		},
	}
	_, ts := newTestServer(t, cfg)

	// Healthy write-through first.
	if resp, _ := postJSON(t, ts.URL, AnalyzeRequest{Network: netN(0)}); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy analyze = %d", resp.StatusCode)
	}

	// Kill the disk. Every analysis must still answer 200 while the
	// failures accumulate past the threshold.
	failing.Store(true)
	for i := 1; i <= 3; i++ {
		resp, ar := postJSON(t, ts.URL, AnalyzeRequest{Network: netN(i)})
		if resp.StatusCode != http.StatusOK || ar.Record.Status != "ok" {
			t.Fatalf("analyze %d during disk failure = %d status %q, want 200 ok", i, resp.StatusCode, ar.Record.Status)
		}
	}
	st := waitStats(t, ts.URL, func(st Stats) bool {
		return st.Store != nil && st.Store.State == StoreDegraded
	})
	if st.Store.Quarantines != 1 || st.Store.IOErrors < 2 {
		t.Errorf("degraded stats = %+v, want 1 quarantine after ≥2 write errors", st.Store)
	}

	// Heal the disk; continued traffic drives the backoff probe and the
	// store comes back without a restart.
	failing.Store(false)
	deadline := time.Now().Add(10 * time.Second) //fsplint:ignore detrand test poll deadline
	for i := 10; ; i++ {
		if resp, _ := postJSON(t, ts.URL, AnalyzeRequest{Network: netN(i)}); resp.StatusCode != http.StatusOK {
			t.Fatalf("analyze during recovery = %d", resp.StatusCode)
		}
		if st := getStats(t, ts.URL); st.Store != nil && st.Store.State == StoreOK {
			if st.Store.Reopens != 1 {
				t.Errorf("reopens = %d, want 1", st.Store.Reopens)
			}
			break
		}
		if time.Now().After(deadline) { //fsplint:ignore detrand test poll deadline
			t.Fatal("store never recovered after the disk healed")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestStoreEvictionReadThrough(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{Workers: 1, CacheEntries: 1, Store: StoreConfig{Dir: dir}})
	defer ts.Close()
	defer s.Close()

	if resp, _ := postJSON(t, ts.URL, AnalyzeRequest{Network: netA}); resp.StatusCode != http.StatusOK {
		t.Fatal("first analyze failed")
	}
	// netB's insertion evicts netA from the 1-entry LRU; eviction is
	// memory-only, so both records stay on disk.
	if resp, _ := postJSON(t, ts.URL, AnalyzeRequest{Network: netB}); resp.StatusCode != http.StatusOK {
		t.Fatal("second analyze failed")
	}
	st := getStats(t, ts.URL)
	if st.Evictions != 1 || st.Store == nil || st.Store.Records != 2 {
		t.Fatalf("stats = evictions %d store %+v, want 1 eviction and 2 on-disk records", st.Evictions, st.Store)
	}

	// Re-requesting netA must be answered by the store read-through — a
	// hit, not a recomputation.
	resp, body := postJSON(t, ts.URL, AnalyzeRequest{Network: netA})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-request of evicted network: status %d", resp.StatusCode)
	}
	if !body.Cached {
		t.Error("re-request of evicted network: cached = false, want read-through hit")
	}
	st = getStats(t, ts.URL)
	if st.Misses != 2 {
		t.Errorf("misses = %d, want 2 (read-through must not recompute)", st.Misses)
	}
	if st.DiskHits != 1 || st.Hits != 1 {
		t.Errorf("hits = %d diskHits = %d, want 1 and 1", st.Hits, st.DiskHits)
	}

	// The promotion re-entered netA into the 1-entry LRU, evicting netB;
	// the disk still holds both.
	if st.Evictions != 2 || st.Store.Records != 2 {
		t.Errorf("after promotion: evictions %d store records %d, want 2 and 2", st.Evictions, st.Store.Records)
	}
}

func TestStatuszStoreDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	st := getStats(t, ts.URL)
	if st.Store == nil || st.Store.State != StoreDisabled {
		t.Fatalf("store stats without -cache-dir = %+v, want state %q", st.Store, StoreDisabled)
	}
}

func TestLintEvictionsSurfaced(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, CacheEntries: 1})
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/v1/lint", "text/plain", bytes.NewReader([]byte(netN(i))))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if st := getStats(t, ts.URL); st.LintEvictions != 1 {
		t.Errorf("lintEvictions = %d, want 1", st.LintEvictions)
	}
}
