package serve

import (
	"fmt"
	"testing"

	"fspnet/internal/verdictjson"
)

func rec(name string) verdictjson.Record {
	return verdictjson.Record{Process: name, Status: verdictjson.StatusOK}
}

func TestDigestDistinguishesParameters(t *testing.T) {
	base := Digest("net", 0, "acyclic", "all")
	for name, other := range map[string]string{
		"text":       Digest("net2", 0, "acyclic", "all"),
		"process":    Digest("net", 1, "acyclic", "all"),
		"mode":       Digest("net", 0, "cyclic", "all"),
		"predicates": Digest("net", 0, "acyclic", "reach"),
	} {
		if other == base {
			t.Errorf("digest ignores %s", name)
		}
	}
	if Digest("net", 0, "acyclic", "all") != base {
		t.Error("digest is not deterministic")
	}
}

func TestCacheLRUOrder(t *testing.T) {
	c := newLRU[verdictjson.Record](2)
	c.add("a", rec("A"))
	c.add("b", rec("B"))
	// Touch a so b is now the least recently used.
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	c.add("c", rec("C")) // evicts b
	if _, ok := c.get("b"); ok {
		t.Error("b survived eviction; get() did not refresh recency")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a evicted despite being recently used")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("c missing")
	}
	if c.len() != 2 || c.evicted() != 1 {
		t.Errorf("len=%d evicted=%d, want 2/1", c.len(), c.evicted())
	}
}

func TestCacheRefreshExistingKey(t *testing.T) {
	c := newLRU[verdictjson.Record](2)
	c.add("a", rec("A"))
	c.add("a", rec("A2"))
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1 (same key refreshed)", c.len())
	}
	got, _ := c.get("a")
	if got.Process != "A2" {
		t.Errorf("refresh kept the stale record: %+v", got)
	}
	if c.evicted() != 0 {
		t.Errorf("refresh counted as eviction")
	}
}

func TestCacheEvictionSequenceDeterminism(t *testing.T) {
	// The same insertion sequence must always evict the same keys.
	run := func() (survivors string, evictions uint64) {
		c := newLRU[verdictjson.Record](3)
		for i := 0; i < 10; i++ {
			c.add(fmt.Sprintf("k%d", i), rec("R"))
		}
		for i := 0; i < 10; i++ {
			if _, ok := c.get(fmt.Sprintf("k%d", i)); ok {
				survivors += fmt.Sprintf("k%d,", i)
			}
		}
		return survivors, c.evicted()
	}
	s1, e1 := run()
	s2, e2 := run()
	if s1 != s2 || e1 != e2 {
		t.Errorf("eviction not deterministic: %q/%d vs %q/%d", s1, e1, s2, e2)
	}
	if s1 != "k7,k8,k9," || e1 != 7 {
		t.Errorf("survivors = %q evictions = %d, want the 3 newest and 7 evictions", s1, e1)
	}
}
