// Package serve turns the fspnet analysis library into a long-running
// HTTP/JSON service. A Server accepts fsplang networks, canonicalizes
// them with fsplang.Format (which is idempotent: Format∘Parse∘Format =
// Format), keys a bounded LRU verdict cache on the SHA-256 of the
// canonical text plus the resolved request parameters, and runs cache
// misses through the governed fspnet entry points on a fixed worker pool
// with admission control:
//
//   - a full queue turns requests away with 429 instead of letting the
//     backlog grow without bound;
//   - each request's deadline and state budget are lowered onto a
//     guard.G, so a run that exhausts them returns a 200 response with
//     status "partial" carrying the three-valued bounds the truncated
//     run still proved — never a hung connection;
//   - a client disconnect cancels the request's governor at its next
//     poll, freeing the worker;
//   - CancelInflight (the SIGTERM drain path) stops every in-flight run
//     the same way, so draining returns partial verdicts rather than
//     dropping work.
//
// Endpoints: POST /v1/analyze, POST /v1/lint, GET /v1/verdict/{digest},
// GET /healthz, GET /statusz. See docs/SERVICE.md for the wire format.
//
// POST /v1/lint runs the speclint analyzers over the canonical form of
// the submitted network — no solver work at all — and caches the
// diagnostics in a second LRU keyed by the canonical-text digest, so a
// lint answer is a pure function of its key and can never go stale.
// /v1/analyze accepts lint=true to attach the same diagnostics to an
// analysis response as warnings.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"fspnet/internal/explore"
	"fspnet/internal/fsp"
	"fspnet/internal/fsplang"
	"fspnet/internal/game/belief"
	"fspnet/internal/guard"
	"fspnet/internal/network"
	"fspnet/internal/speclint"
	"fspnet/internal/success"
	"fspnet/internal/verdictjson"
)

// Default configuration bounds.
const (
	// DefaultQueueDepth is the admission queue bound beyond the worker
	// pool: at most Workers+DefaultQueueDepth requests are in the house.
	DefaultQueueDepth = 64
	// DefaultCacheEntries bounds the verdict LRU.
	DefaultCacheEntries = 1024
	// maxNetworkBytes bounds the request body; fsplang sources are small.
	maxNetworkBytes = 1 << 20
)

// Predicate sets a request may ask for.
const (
	// PredicatesAll decides S_u, S_a, and S_c — the S_a belief-set game
	// dominates the cost on large networks.
	PredicatesAll = "all"
	// PredicatesReach decides S_u and S_c only, via the on-the-fly
	// explore engine; no context is ever composed.
	PredicatesReach = "reach"
)

// Config assembles a Server.
type Config struct {
	// Workers is the analysis pool size — how many analyses run at once.
	// Each analysis is itself internally parallel (the explore engine
	// fans out over GOMAXPROCS), so ≤ 0 defaults to 2, not NumCPU.
	Workers int
	// QueueDepth bounds admitted-but-waiting requests beyond Workers;
	// ≤ 0 means DefaultQueueDepth. Negative admission is impossible: a
	// full queue answers 429.
	QueueDepth int
	// CacheEntries bounds the verdict LRU; ≤ 0 means DefaultCacheEntries.
	CacheEntries int
	// MaxTimeout caps (and, when a request names none, supplies) the
	// per-request deadline; 0 means no server-imposed deadline.
	MaxTimeout time.Duration
	// MaxBudget caps (and, when a request names none, supplies) the
	// per-request joint state budget; 0 means no server-imposed budget.
	MaxBudget int
	// Hook is installed into every request governor — the fault-injection
	// seam the serve tests drive with guard/faultinject. Production
	// configurations leave it nil.
	Hook guard.Hook
	// Store configures the crash-safe persistent verdict store backing the
	// LRU; a zero value (empty Dir) runs memory-only. Store failures never
	// fail requests: the server degrades to memory-only caching and probes
	// for the disk's return with backoff.
	Store StoreConfig
	// Logf receives operational log lines (store quarantine, recovery);
	// nil discards them. cmd/fspd points it at its stdout logger.
	Logf func(format string, args ...any)
}

// Server is one analysis service instance. It is safe for concurrent use
// and is normally mounted via Handler on an http.Server owned by cmd/fspd.
type Server struct {
	cfg   Config
	cache *lru[verdictjson.Record]
	lints *lru[[]speclint.Diagnostic]
	admit chan struct{} // admission tickets: Workers + QueueDepth
	slots chan struct{} // running tickets: Workers
	c     counters
	lat   *latencyRecorder
	bel   *beliefRecorder
	store *storeKeeper
	start time.Time
	mux   *http.ServeMux

	mu       sync.Mutex // guards the drain flags and cancels
	draining bool       // in-flight analyses are being canceled
	// healthDraining flips /healthz to 503 the moment shutdown begins, so
	// load balancers stop routing here while queued analyses still finish
	// inside the grace period. draining implies healthDraining, not the
	// reverse.
	healthDraining bool
	nextRun        int64
	cancels        map[int64]context.CancelFunc // in-flight analysis governors
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = DefaultCacheEntries
	}
	s := &Server{
		cfg:   cfg,
		cache: newLRU[verdictjson.Record](cfg.CacheEntries),
		lints: newLRU[[]speclint.Diagnostic](cfg.CacheEntries),
		admit: make(chan struct{}, cfg.Workers+cfg.QueueDepth),
		slots: make(chan struct{}, cfg.Workers),
		lat:   newLatencyRecorder(),
		bel:   newBeliefRecorder(),
	}
	s.start = time.Now() //fsplint:ignore detrand uptime anchor for /statusz
	s.cancels = make(map[int64]context.CancelFunc)
	s.store = newStoreKeeper(cfg.Store, cfg.Logf)
	// Evictions flow through to disk so the store tracks the cache's
	// working set; the hook must be armed before the warm load, whose own
	// adds may overflow the cache.
	s.cache.onEvict = s.store.delete
	if n := s.store.warmLoad(s.cache); n > 0 && cfg.Logf != nil {
		cfg.Logf("verdict store: warm-loaded %d verdicts from %s", n, cfg.Store.Dir)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("POST /v1/lint", s.handleLint)
	s.mux.HandleFunc("GET /v1/verdict/{digest}", s.handleVerdict)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /statusz", s.handleStatus)
	return s
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// CancelInflight cancels the governor of every in-flight analysis; each
// stops at its next poll and its handler responds with the partial
// verdict. The SIGTERM drain path arms this after the grace period so
// http.Server.Shutdown can finish. When it returns, every in-flight
// governor context is already canceled, and analyses admitted afterwards
// start canceled.
func (s *Server) CancelInflight() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.draining = true
	s.healthDraining = true
	for _, cancel := range s.cancels {
		cancel()
	}
}

// StartDrain marks the server as draining for health checks: /healthz
// answers 503 from here on, steering load balancers away, while analyze
// traffic — including queued work — still runs to completion. cmd/fspd
// calls this at SIGTERM, ahead of the grace period that ends in
// CancelInflight.
func (s *Server) StartDrain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.healthDraining = true
}

// Close releases the server's persistent store (syncing and closing its
// segments). In-flight write-throughs after Close are dropped, never
// errors. Safe to call more than once.
func (s *Server) Close() error {
	return s.store.close()
}

// registerCancel enrolls an in-flight analysis governor with the drain
// path. The returned func unregisters it. If a drain already started the
// context is canceled before the analysis begins.
func (s *Server) registerCancel(cancel context.CancelFunc) func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		cancel()
		return func() {}
	}
	id := s.nextRun
	s.nextRun++
	s.cancels[id] = cancel
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		delete(s.cancels, id)
	}
}

// Snapshot returns the current Stats.
func (s *Server) Snapshot() Stats {
	return Stats{
		Requests:      s.c.requests.Load(),
		Hits:          s.c.hits.Load(),
		Misses:        s.c.misses.Load(),
		Evictions:     int64(s.cache.evicted()),
		Rejected:      s.c.rejected.Load(),
		Canceled:      s.c.canceled.Load(),
		Partials:      s.c.partials.Load(),
		Errors:        s.c.errors.Load(),
		Inflight:      s.c.inflight.Load(),
		Queued:        s.c.queued.Load(),
		CacheEntries:  s.cache.len(),
		Lints:         s.c.lints.Load(),
		LintHits:      s.c.lintHits.Load(),
		LintMisses:    s.c.lintMisses.Load(),
		LintEntries:   s.lints.len(),
		LintEvictions: int64(s.lints.evicted()),
		Store:         s.store.snapshot(),
		Uptime:        time.Since(s.start).Round(time.Millisecond).String(), //fsplint:ignore detrand uptime for /statusz
		Latency:       s.lat.snapshot(),
		Belief:        s.bel.snapshot(),
	}
}

// analyzeRequest is the POST /v1/analyze JSON body. A request may instead
// send the fsplang source as a raw (non-JSON) body and the remaining
// fields as query parameters, which keeps curl invocations one-liners.
type analyzeRequest struct {
	// Network is the fsplang source text.
	Network string `json:"network"`
	// Process is the distinguished process index (default 0).
	Process int `json:"process"`
	// Mode is "auto" (default: cyclic iff some process is cyclic),
	// "acyclic" (§3 semantics), or "cyclic" (§4 semantics).
	Mode string `json:"mode,omitempty"`
	// Predicates is "all" (default) or "reach" (S_u and S_c only).
	Predicates string `json:"predicates,omitempty"`
	// Timeout is a Go duration bounding this request's analysis; the
	// server caps it at Config.MaxTimeout.
	Timeout string `json:"timeout,omitempty"`
	// Budget bounds the joint states interned by this request's
	// analysis; the server caps it at Config.MaxBudget.
	Budget int `json:"budget,omitempty"`
	// Lint attaches the speclint diagnostics of the canonical network to
	// the response as warnings (served from the lint cache).
	Lint bool `json:"lint,omitempty"`
}

// analyzeResponse is the POST /v1/analyze (and GET /v1/verdict) reply
// envelope around the shared verdictjson.Record.
type analyzeResponse struct {
	Digest     string             `json:"digest"`
	Mode       string             `json:"mode,omitempty"`
	Predicates string             `json:"predicates,omitempty"`
	Cached     bool               `json:"cached"`
	Record     verdictjson.Record `json:"record"`
	// Warnings carries the canonical network's speclint diagnostics when
	// the request asked for them with lint=true.
	Warnings []speclint.Diagnostic `json:"warnings,omitempty"`
}

// lintResponse is the POST /v1/lint reply. Diagnostics are positioned in
// the returned canonical text (comments — and with them waivers — do not
// survive canonicalization, so every finding is reported).
type lintResponse struct {
	Digest      string                `json:"digest"`
	Cached      bool                  `json:"cached"`
	Canonical   string                `json:"canonical"`
	Diagnostics []speclint.Diagnostic `json:"diagnostics"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = verdictjson.Encode(w, v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.healthDraining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

func (s *Server) handleVerdict(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	rec, ok := s.cache.get(digest)
	if !ok {
		writeError(w, http.StatusNotFound, "no cached verdict for digest %s", digest)
		return
	}
	writeJSON(w, http.StatusOK, analyzeResponse{Digest: digest, Cached: true, Record: rec})
}

// parseAnalyzeRequest decodes either encoding of the request body.
func parseAnalyzeRequest(r *http.Request) (analyzeRequest, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxNetworkBytes+1))
	if err != nil {
		return analyzeRequest{}, fmt.Errorf("reading body: %w", err)
	}
	if len(body) > maxNetworkBytes {
		return analyzeRequest{}, fmt.Errorf("body exceeds %d bytes", maxNetworkBytes)
	}
	var req analyzeRequest
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		if err := json.Unmarshal(body, &req); err != nil {
			return analyzeRequest{}, fmt.Errorf("decoding JSON body: %w", err)
		}
	} else {
		// Raw fsplang body; parameters ride in the query string.
		req.Network = string(body)
		q := r.URL.Query()
		if v := q.Get("process"); v != "" {
			p, err := strconv.Atoi(v)
			if err != nil {
				return analyzeRequest{}, fmt.Errorf("bad process parameter %q", v)
			}
			req.Process = p
		}
		req.Mode = q.Get("mode")
		req.Predicates = q.Get("predicates")
		req.Timeout = q.Get("timeout")
		if v := q.Get("lint"); v != "" {
			b, err := strconv.ParseBool(v)
			if err != nil {
				return analyzeRequest{}, fmt.Errorf("bad lint parameter %q", v)
			}
			req.Lint = b
		}
		if v := q.Get("budget"); v != "" {
			b, err := strconv.Atoi(v)
			if err != nil {
				return analyzeRequest{}, fmt.Errorf("bad budget parameter %q", v)
			}
			req.Budget = b
		}
	}
	return req, nil
}

// resolve validates the request against the parsed network and fixes the
// defaulted parameters, so the digest is computed over resolved values:
// "auto" and an explicit matching mode share cache entries.
func resolve(req *analyzeRequest, n *network.Network) error {
	if req.Process < 0 || req.Process >= n.Len() {
		return fmt.Errorf("process index %d out of range [0,%d)", req.Process, n.Len())
	}
	switch req.Mode {
	case "", "auto":
		if n.MaxClass() == fsp.ClassCyclic {
			req.Mode = "cyclic"
		} else {
			req.Mode = "acyclic"
		}
	case "acyclic", "cyclic":
	default:
		return fmt.Errorf("unknown mode %q (want auto, acyclic, or cyclic)", req.Mode)
	}
	switch req.Predicates {
	case "":
		req.Predicates = PredicatesAll
	case PredicatesAll, PredicatesReach:
	default:
		return fmt.Errorf("unknown predicates %q (want all or reach)", req.Predicates)
	}
	return nil
}

// requestDeadline lowers the request timeout onto an absolute deadline,
// capped by the server-wide maximum.
func (s *Server) requestDeadline(req analyzeRequest) (time.Time, error) {
	limit := s.cfg.MaxTimeout
	if req.Timeout != "" {
		d, err := time.ParseDuration(req.Timeout)
		if err != nil || d <= 0 {
			return time.Time{}, fmt.Errorf("bad timeout %q", req.Timeout)
		}
		if limit == 0 || d < limit {
			limit = d
		}
	}
	if limit == 0 {
		return time.Time{}, nil
	}
	return time.Now().Add(limit), nil //fsplint:ignore detrand per-request deadline anchor
}

// retryAfterSeconds derives a 429 Retry-After hint from the rejected
// class's p90 latency, rounded up to whole seconds with a 1s floor (the
// header carries integral seconds, and an empty ring means the server
// has no evidence the backlog clears faster than that).
func (s *Server) retryAfterSeconds(class string) int {
	p90 := s.lat.p90(class)
	secs := int((p90 + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// requestBudget lowers the request budget, capped by the server-wide
// maximum.
func (s *Server) requestBudget(req analyzeRequest) int {
	budget := s.cfg.MaxBudget
	if req.Budget > 0 && (budget == 0 || req.Budget < budget) {
		budget = req.Budget
	}
	return budget
}

// lintFile is the File field of service-side diagnostics: positions are
// line/col into the canonical text the response carries.
const lintFile = "network.fsp"

// lintCanonical returns the diagnostics for a canonical network text,
// from the lint cache when possible. The canonical text always reparses
// (FormatSpec output is idempotent), so there is no error path.
func (s *Server) lintCanonical(canonical string) (digest string, diags []speclint.Diagnostic, cached bool) {
	digest = LintDigest(canonical)
	if diags, ok := s.lints.get(digest); ok {
		s.c.lintHits.Add(1)
		return digest, diags, true
	}
	spec, err := fsplang.ParseSpec(canonical)
	if err != nil {
		// Unreachable by construction; fail closed with no diagnostics
		// rather than panicking in a handler.
		return digest, nil, false
	}
	diags = speclint.RunSpec(lintFile, spec, nil)
	if diags == nil {
		diags = []speclint.Diagnostic{}
	}
	s.c.lintMisses.Add(1)
	s.lints.add(digest, diags)
	return digest, diags, false
}

func (s *Server) handleLint(w http.ResponseWriter, r *http.Request) {
	req, err := parseAnalyzeRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The validation-free spec layer accepts every network the analyze
	// parser does, plus ones it rejects (that is the point: an unmatched
	// action comes back as a positioned diagnostic, not a 400).
	spec, err := fsplang.ParseSpec(req.Network)
	if err != nil {
		writeError(w, http.StatusBadRequest, "parsing network: %v", err)
		return
	}
	s.c.lints.Add(1)
	canonical := fsplang.FormatSpec(spec)
	digest, diags, cached := s.lintCanonical(canonical)
	writeJSON(w, http.StatusOK, lintResponse{
		Digest: digest, Cached: cached, Canonical: canonical, Diagnostics: diags,
	})
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	req, err := parseAnalyzeRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	n, err := fsplang.ParseString(req.Network)
	if err != nil {
		writeError(w, http.StatusBadRequest, "parsing network: %v", err)
		return
	}
	if err := resolve(&req, n); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	deadline, err := s.requestDeadline(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.c.requests.Add(1)

	canonical := fsplang.Format(n)
	digest := Digest(canonical, req.Process, req.Mode, req.Predicates)
	var warnings []speclint.Diagnostic
	if req.Lint {
		_, warnings, _ = s.lintCanonical(canonical)
	}
	if rec, ok := s.cache.get(digest); ok {
		s.c.hits.Add(1)
		writeJSON(w, http.StatusOK, analyzeResponse{
			Digest: digest, Mode: req.Mode, Predicates: req.Predicates, Cached: true, Record: rec,
			Warnings: warnings,
		})
		return
	}

	// Admission: a ticket covers the whole stay (queued + running); none
	// free means the queue is saturated.
	select {
	case s.admit <- struct{}{}:
		defer func() { <-s.admit }()
	default:
		s.c.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds(req.Mode+"/"+req.Predicates)))
		writeError(w, http.StatusTooManyRequests, "analysis queue is full (%d in flight or queued)", cap(s.admit))
		return
	}
	s.c.queued.Add(1)
	select {
	case s.slots <- struct{}{}:
		s.c.queued.Add(-1)
		defer func() { <-s.slots }()
	case <-r.Context().Done():
		s.c.queued.Add(-1)
		s.c.canceled.Add(1)
		return // client is gone; nothing to write
	}
	s.c.inflight.Add(1)
	defer s.c.inflight.Add(-1)

	// The governor watches both the client connection and the drain
	// path, so either stops the run at its next poll. Registration keeps
	// CancelInflight synchronous: when it returns, this context is done.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	unregister := s.registerCancel(cancel)
	defer unregister()
	g := guard.New(guard.Config{
		Context:  ctx,
		Deadline: deadline,
		Budget:   s.requestBudget(req),
		Hook:     s.cfg.Hook,
	})

	start := time.Now() //fsplint:ignore detrand latency sample for /statusz quantiles
	rec, err := s.analyze(n, req, g)
	switch {
	case err == nil:
		s.lat.record(req.Mode+"/"+req.Predicates, time.Since(start)) //fsplint:ignore detrand latency sample for /statusz quantiles
		s.c.misses.Add(1)
		s.cache.add(digest, rec)
		s.store.put(digest, rec)
		writeJSON(w, http.StatusOK, analyzeResponse{
			Digest: digest, Mode: req.Mode, Predicates: req.Predicates, Cached: false, Record: rec,
			Warnings: warnings,
		})
	case guard.IsLimit(err):
		if r.Context().Err() != nil {
			// The client disconnected; the governor stopped the run for us
			// and there is no one left to answer.
			s.c.canceled.Add(1)
			return
		}
		s.c.partials.Add(1)
		writeJSON(w, http.StatusOK, analyzeResponse{
			Digest: digest, Mode: req.Mode, Predicates: req.Predicates, Cached: false,
			Record: verdictjson.FromError(n.Process(req.Process).Name(), err), Warnings: warnings,
		})
	default:
		s.c.errors.Add(1)
		writeJSON(w, http.StatusUnprocessableEntity, analyzeResponse{
			Digest: digest, Mode: req.Mode, Predicates: req.Predicates, Cached: false,
			Record: verdictjson.FromError(n.Process(req.Process).Name(), err), Warnings: warnings,
		})
	}
}

// analyze dispatches the resolved request onto the governed library entry
// points.
func (s *Server) analyze(n *network.Network, req analyzeRequest, g *guard.G) (verdictjson.Record, error) {
	name := n.Process(req.Process).Name()
	cyclic := req.Mode == "cyclic"
	if req.Predicates == PredicatesReach {
		var (
			res explore.Result
			err error
		)
		if cyclic {
			res, err = explore.AnalyzeCyclic(n, req.Process, explore.Options{Guard: g})
		} else {
			res, err = explore.AnalyzeAcyclic(n, req.Process, explore.Options{Guard: g})
		}
		if err != nil {
			return verdictjson.Record{}, err
		}
		return verdictjson.Reach(name, res.Su, res.Sc), nil
	}
	var (
		v   success.Verdict
		bst belief.Stats
		err error
	)
	o := success.Options{Guard: g, BeliefStats: &bst}
	if cyclic {
		v, err = success.AnalyzeCyclicOpts(n, req.Process, o)
	} else {
		v, err = success.AnalyzeAcyclicOpts(n, req.Process, o)
	}
	if err != nil {
		return verdictjson.Record{}, err
	}
	s.bel.record(req.Mode+"/"+req.Predicates, bst)
	return verdictjson.OK(name, v), nil
}
