// Package serve turns the fspnet analysis library into a long-running
// HTTP/JSON service. A Server accepts fsplang networks, canonicalizes
// them with fsplang.Format (which is idempotent: Format∘Parse∘Format =
// Format), keys a bounded LRU verdict cache on the SHA-256 of the
// canonical text plus the resolved request parameters, and runs cache
// misses through the governed fspnet entry points on a fixed worker pool
// with admission control:
//
//   - a full queue turns requests away with 429 instead of letting the
//     backlog grow without bound;
//   - each request's deadline and state budget are lowered onto a
//     guard.G, so a run that exhausts them returns a 200 response with
//     status "partial" carrying the three-valued bounds the truncated
//     run still proved — never a hung connection;
//   - a client disconnect cancels the request's governor at its next
//     poll, freeing the worker;
//   - CancelInflight (the SIGTERM drain path) stops every in-flight run
//     the same way, so draining returns partial verdicts rather than
//     dropping work.
//
// Endpoints: POST /v1/analyze, POST /v1/lint, GET /v1/verdict/{digest},
// GET /healthz, GET /statusz. See docs/SERVICE.md for the wire format.
//
// POST /v1/lint runs the speclint analyzers over the canonical form of
// the submitted network — no solver work at all — and caches the
// diagnostics in a second LRU keyed by the canonical-text digest, so a
// lint answer is a pure function of its key and can never go stale.
// /v1/analyze accepts lint=true to attach the same diagnostics to an
// analysis response as warnings.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"fspnet/internal/explore"
	"fspnet/internal/fsp"
	"fspnet/internal/fsplang"
	"fspnet/internal/game/belief"
	"fspnet/internal/guard"
	"fspnet/internal/network"
	"fspnet/internal/speclint"
	"fspnet/internal/success"
	"fspnet/internal/verdictjson"
)

// Default configuration bounds.
const (
	// DefaultQueueDepth is the admission queue bound beyond the worker
	// pool: at most Workers+DefaultQueueDepth requests are in the house.
	DefaultQueueDepth = 64
	// DefaultCacheEntries bounds the verdict LRU.
	DefaultCacheEntries = 1024
	// DefaultMaxBodyBytes bounds a single /v1/analyze or /v1/lint body
	// (and each item's network inside a batch); fsplang sources are small,
	// and an oversized body is refused with 413 before any parsing.
	DefaultMaxBodyBytes = 1 << 20
	// DefaultMaxBatchBytes bounds the whole /v1/analyze/batch body.
	DefaultMaxBatchBytes = 8 << 20
	// DefaultMaxBatchItems bounds the item count of one batch request.
	DefaultMaxBatchItems = 256
)

// ErrBodyTooLarge marks a request body over the configured byte cap; the
// handlers map it to 413 Content Too Large. Wrapped errors carry the
// limit that was exceeded.
var ErrBodyTooLarge = errors.New("request body too large")

// Predicate sets a request may ask for.
const (
	// PredicatesAll decides S_u, S_a, and S_c — the S_a belief-set game
	// dominates the cost on large networks.
	PredicatesAll = "all"
	// PredicatesReach decides S_u and S_c only, via the on-the-fly
	// explore engine; no context is ever composed.
	PredicatesReach = "reach"
)

// Config assembles a Server.
type Config struct {
	// Workers is the analysis pool size — how many analyses run at once.
	// Each analysis is itself internally parallel (the explore engine
	// fans out over GOMAXPROCS), so ≤ 0 defaults to 2, not NumCPU.
	Workers int
	// QueueDepth bounds admitted-but-waiting requests beyond Workers;
	// ≤ 0 means DefaultQueueDepth. Negative admission is impossible: a
	// full queue answers 429.
	QueueDepth int
	// CacheEntries bounds the verdict LRU; ≤ 0 means DefaultCacheEntries.
	CacheEntries int
	// MaxTimeout caps (and, when a request names none, supplies) the
	// per-request deadline; 0 means no server-imposed deadline.
	MaxTimeout time.Duration
	// MaxBudget caps (and, when a request names none, supplies) the
	// per-request joint state budget; 0 means no server-imposed budget.
	MaxBudget int
	// MaxBodyBytes bounds a single request body (and each batch item's
	// network text); ≤ 0 means DefaultMaxBodyBytes. Oversized bodies are
	// refused with 413.
	MaxBodyBytes int64
	// MaxBatchBytes bounds the whole /v1/analyze/batch body; ≤ 0 means
	// DefaultMaxBatchBytes.
	MaxBatchBytes int64
	// MaxBatchItems bounds the item count of one batch; ≤ 0 means
	// DefaultMaxBatchItems.
	MaxBatchItems int
	// Hook is installed into every request governor — the fault-injection
	// seam the serve tests drive with guard/faultinject. Production
	// configurations leave it nil.
	Hook guard.Hook
	// Store configures the crash-safe persistent verdict store backing the
	// LRU; a zero value (empty Dir) runs memory-only. Store failures never
	// fail requests: the server degrades to memory-only caching and probes
	// for the disk's return with backoff.
	Store StoreConfig
	// Logf receives operational log lines (store quarantine, recovery);
	// nil discards them. cmd/fspd points it at its stdout logger.
	Logf func(format string, args ...any)
}

// Server is one analysis service instance. It is safe for concurrent use
// and is normally mounted via Handler on an http.Server owned by cmd/fspd.
type Server struct {
	cfg   Config
	cache *lru[verdictjson.Record]
	lints *lru[[]speclint.Diagnostic]
	admit chan struct{} // admission tickets: Workers + QueueDepth
	slots chan struct{} // running tickets: Workers
	c     counters
	lat   *latencyRecorder
	bel   *beliefRecorder
	exp   *exploreRecorder
	store *storeKeeper
	start time.Time
	mux   *http.ServeMux

	flightMu sync.Mutex         // guards flights and every flight's waiters
	flights  map[string]*flight // in-progress analyses by dedup key

	mu       sync.Mutex // guards the drain flags and cancels
	draining bool       // in-flight analyses are being canceled
	// healthDraining flips /healthz to 503 the moment shutdown begins, so
	// load balancers stop routing here while queued analyses still finish
	// inside the grace period. draining implies healthDraining, not the
	// reverse.
	healthDraining bool
	nextRun        int64
	cancels        map[int64]context.CancelFunc // in-flight analysis governors
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = DefaultCacheEntries
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.MaxBatchBytes <= 0 {
		cfg.MaxBatchBytes = DefaultMaxBatchBytes
	}
	if cfg.MaxBatchItems <= 0 {
		cfg.MaxBatchItems = DefaultMaxBatchItems
	}
	s := &Server{
		cfg:   cfg,
		cache: newLRU[verdictjson.Record](cfg.CacheEntries),
		lints: newLRU[[]speclint.Diagnostic](cfg.CacheEntries),
		admit: make(chan struct{}, cfg.Workers+cfg.QueueDepth),
		slots: make(chan struct{}, cfg.Workers),
		lat:   newLatencyRecorder(),
		bel:   newBeliefRecorder(),
		exp:   newExploreRecorder(),
	}
	s.flights = make(map[string]*flight)
	s.start = time.Now() //fsplint:ignore detrand uptime anchor for /statusz
	s.cancels = make(map[int64]context.CancelFunc)
	s.store = newStoreKeeper(cfg.Store, cfg.Logf)
	// The store is an L2 under the LRU: an eviction drops only the
	// in-memory copy, and the next request for the digest reads through to
	// disk instead of recomputing. The on-disk set is bounded separately by
	// the store's own record cap (compaction drops oldest beyond it), so a
	// warm-load overflow past CacheEntries loses nothing durable.
	if n := s.store.warmLoad(s.cache); n > 0 && cfg.Logf != nil {
		cfg.Logf("verdict store: warm-loaded %d verdicts from %s", n, cfg.Store.Dir)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("POST /v1/analyze/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/lint", s.handleLint)
	s.mux.HandleFunc("GET /v1/verdict/{digest}", s.handleVerdict)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /statusz", s.handleStatus)
	return s
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// CancelInflight cancels the governor of every in-flight analysis; each
// stops at its next poll and its handler responds with the partial
// verdict. The SIGTERM drain path arms this after the grace period so
// http.Server.Shutdown can finish. When it returns, every in-flight
// governor context is already canceled, and analyses admitted afterwards
// start canceled.
func (s *Server) CancelInflight() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.draining = true
	s.healthDraining = true
	for _, cancel := range s.cancels {
		cancel()
	}
}

// StartDrain marks the server as draining for health checks: /healthz
// answers 503 from here on, steering load balancers away, while analyze
// traffic — including queued work — still runs to completion. cmd/fspd
// calls this at SIGTERM, ahead of the grace period that ends in
// CancelInflight.
func (s *Server) StartDrain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.healthDraining = true
}

// Close releases the server's persistent store (syncing and closing its
// segments). In-flight write-throughs after Close are dropped, never
// errors. Safe to call more than once.
func (s *Server) Close() error {
	return s.store.close()
}

// registerCancel enrolls an in-flight analysis governor with the drain
// path. The returned func unregisters it. If a drain already started the
// context is canceled before the analysis begins.
func (s *Server) registerCancel(cancel context.CancelFunc) func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		cancel()
		return func() {}
	}
	id := s.nextRun
	s.nextRun++
	s.cancels[id] = cancel
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		delete(s.cancels, id)
	}
}

// Snapshot returns the current Stats.
func (s *Server) Snapshot() Stats {
	return Stats{
		Requests:      s.c.requests.Load(),
		Hits:          s.c.hits.Load(),
		DiskHits:      s.c.diskHits.Load(),
		Misses:        s.c.misses.Load(),
		Deduped:       s.c.deduped.Load(),
		Evictions:     int64(s.cache.evicted()),
		Batches:       s.c.batches.Load(),
		BatchItems:    s.c.batchItems.Load(),
		Rejected:      s.c.rejected.Load(),
		Canceled:      s.c.canceled.Load(),
		Partials:      s.c.partials.Load(),
		Errors:        s.c.errors.Load(),
		Inflight:      s.c.inflight.Load(),
		Queued:        s.c.queued.Load(),
		CacheEntries:  s.cache.len(),
		Lints:         s.c.lints.Load(),
		LintHits:      s.c.lintHits.Load(),
		LintMisses:    s.c.lintMisses.Load(),
		LintEntries:   s.lints.len(),
		LintEvictions: int64(s.lints.evicted()),
		Store:         s.store.snapshot(),
		Uptime:        time.Since(s.start).Round(time.Millisecond).String(), //fsplint:ignore detrand uptime for /statusz
		Runtime:       ReadRuntime(),
		Latency:       s.lat.snapshot(),
		Belief:        s.bel.snapshot(),
		Explore:       s.exp.snapshot(),
	}
}

// AnalyzeRequest is the POST /v1/analyze JSON body. A request may instead
// send the fsplang source as a raw (non-JSON) body and the remaining
// fields as query parameters, which keeps curl invocations one-liners.
type AnalyzeRequest struct {
	// Network is the fsplang source text.
	Network string `json:"network"`
	// Process is the distinguished process index (default 0).
	Process int `json:"process"`
	// Mode is "auto" (default: cyclic iff some process is cyclic),
	// "acyclic" (§3 semantics), or "cyclic" (§4 semantics).
	Mode string `json:"mode,omitempty"`
	// Predicates is "all" (default) or "reach" (S_u and S_c only).
	Predicates string `json:"predicates,omitempty"`
	// Timeout is a Go duration bounding this request's analysis; the
	// server caps it at Config.MaxTimeout.
	Timeout string `json:"timeout,omitempty"`
	// Budget bounds the joint states interned by this request's
	// analysis; the server caps it at Config.MaxBudget.
	Budget int `json:"budget,omitempty"`
	// Lint attaches the speclint diagnostics of the canonical network to
	// the response as warnings (served from the lint cache).
	Lint bool `json:"lint,omitempty"`
}

// AnalyzeResponse is the POST /v1/analyze (and GET /v1/verdict) reply
// envelope around the shared verdictjson.Record.
type AnalyzeResponse struct {
	Digest     string             `json:"digest"`
	Mode       string             `json:"mode,omitempty"`
	Predicates string             `json:"predicates,omitempty"`
	Cached     bool               `json:"cached"`
	Record     verdictjson.Record `json:"record"`
	// Warnings carries the canonical network's speclint diagnostics when
	// the request asked for them with lint=true.
	Warnings []speclint.Diagnostic `json:"warnings,omitempty"`
}

// lintResponse is the POST /v1/lint reply. Diagnostics are positioned in
// the returned canonical text (comments — and with them waivers — do not
// survive canonicalization, so every finding is reported).
type lintResponse struct {
	Digest      string                `json:"digest"`
	Cached      bool                  `json:"cached"`
	Canonical   string                `json:"canonical"`
	Diagnostics []speclint.Diagnostic `json:"diagnostics"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = verdictjson.Encode(w, v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.healthDraining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

// WellFormedDigest reports whether digest looks like a verdict digest:
// 64 lowercase hex characters, the fixed SHA-256 form Digest emits. The
// verdict endpoints 400 anything else before touching the cache, and the
// router refuses to hash a malformed digest onto the ring.
func WellFormedDigest(digest string) bool {
	if len(digest) != 64 {
		return false
	}
	for i := 0; i < len(digest); i++ {
		c := digest[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Server) handleVerdict(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	if !WellFormedDigest(digest) {
		writeError(w, http.StatusBadRequest, "malformed digest %q (want 64 lowercase hex characters)", digest)
		return
	}
	rec, ok := s.cache.get(digest)
	if !ok {
		// Read through to the persistent store: the digest may have been
		// evicted from memory while its record is still on disk.
		if rec, ok = s.store.get(digest); ok {
			s.c.diskHits.Add(1)
			s.cache.add(digest, rec)
		}
	}
	if !ok {
		writeError(w, http.StatusNotFound, "no cached verdict for digest %s", digest)
		return
	}
	writeJSON(w, http.StatusOK, AnalyzeResponse{Digest: digest, Cached: true, Record: rec})
}

// ReadBody drains r's body up to limit bytes; one byte over returns
// ErrBodyTooLarge (the 413 path).
func ReadBody(r *http.Request, limit int64) ([]byte, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		return nil, fmt.Errorf("reading body: %w", err)
	}
	if int64(len(body)) > limit {
		return nil, fmt.Errorf("%w: body exceeds %d bytes", ErrBodyTooLarge, limit)
	}
	return body, nil
}

// ParseAnalyzeBody decodes either encoding of an analyze request body —
// a JSON AnalyzeRequest, or a raw fsplang source with the parameters in
// the query string — enforcing the byte cap. cmd/fsprouter parses with
// the same function the workers use, so the two tiers can never disagree
// about what a request means.
func ParseAnalyzeBody(r *http.Request, limit int64) (AnalyzeRequest, error) {
	body, err := ReadBody(r, limit)
	if err != nil {
		return AnalyzeRequest{}, err
	}
	var req AnalyzeRequest
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		if err := json.Unmarshal(body, &req); err != nil {
			return AnalyzeRequest{}, fmt.Errorf("decoding JSON body: %w", err)
		}
	} else {
		// Raw fsplang body; parameters ride in the query string.
		req.Network = string(body)
		q := r.URL.Query()
		if v := q.Get("process"); v != "" {
			p, err := strconv.Atoi(v)
			if err != nil {
				return AnalyzeRequest{}, fmt.Errorf("bad process parameter %q", v)
			}
			req.Process = p
		}
		req.Mode = q.Get("mode")
		req.Predicates = q.Get("predicates")
		req.Timeout = q.Get("timeout")
		if v := q.Get("lint"); v != "" {
			b, err := strconv.ParseBool(v)
			if err != nil {
				return AnalyzeRequest{}, fmt.Errorf("bad lint parameter %q", v)
			}
			req.Lint = b
		}
		if v := q.Get("budget"); v != "" {
			b, err := strconv.Atoi(v)
			if err != nil {
				return AnalyzeRequest{}, fmt.Errorf("bad budget parameter %q", v)
			}
			req.Budget = b
		}
	}
	return req, nil
}

// Canonicalize parses, resolves, and canonicalizes one analyze request:
// req's defaulted fields (mode, predicates) are replaced by their
// resolved values, and the canonical text plus content digest come back.
// This is the routing primitive — the digest it returns is the cache key
// on whichever worker owns it on the ring — and the validation primitive:
// any error is a client error (the single-request handlers answer 400,
// the batch handler a per-item error record).
func Canonicalize(req *AnalyzeRequest) (canonical, digest string, err error) {
	_, canonical, digest, err = canonicalizeNetwork(req)
	return canonical, digest, err
}

// canonicalizeNetwork is Canonicalize keeping the parsed network, which
// the analysis path needs.
func canonicalizeNetwork(req *AnalyzeRequest) (*network.Network, string, string, error) {
	n, err := fsplang.ParseString(req.Network)
	if err != nil {
		return nil, "", "", fmt.Errorf("parsing network: %w", err)
	}
	if err := resolve(req, n); err != nil {
		return nil, "", "", err
	}
	canonical := fsplang.Format(n)
	return n, canonical, Digest(canonical, req.Process, req.Mode, req.Predicates), nil
}

// resolve validates the request against the parsed network and fixes the
// defaulted parameters, so the digest is computed over resolved values:
// "auto" and an explicit matching mode share cache entries.
func resolve(req *AnalyzeRequest, n *network.Network) error {
	if req.Process < 0 || req.Process >= n.Len() {
		return fmt.Errorf("process index %d out of range [0,%d)", req.Process, n.Len())
	}
	switch req.Mode {
	case "", "auto":
		if n.MaxClass() == fsp.ClassCyclic {
			req.Mode = "cyclic"
		} else {
			req.Mode = "acyclic"
		}
	case "acyclic", "cyclic":
	default:
		return fmt.Errorf("unknown mode %q (want auto, acyclic, or cyclic)", req.Mode)
	}
	switch req.Predicates {
	case "":
		req.Predicates = PredicatesAll
	case PredicatesAll, PredicatesReach:
	default:
		return fmt.Errorf("unknown predicates %q (want all or reach)", req.Predicates)
	}
	return nil
}

// requestDeadline lowers the request timeout onto an absolute deadline,
// capped by the server-wide maximum.
func (s *Server) requestDeadline(req AnalyzeRequest) (time.Time, error) {
	limit := s.cfg.MaxTimeout
	if req.Timeout != "" {
		d, err := time.ParseDuration(req.Timeout)
		if err != nil || d <= 0 {
			return time.Time{}, fmt.Errorf("bad timeout %q", req.Timeout)
		}
		if limit == 0 || d < limit {
			limit = d
		}
	}
	if limit == 0 {
		return time.Time{}, nil
	}
	return time.Now().Add(limit), nil //fsplint:ignore detrand per-request deadline anchor
}

// retryAfterSeconds derives a 429 Retry-After hint from the rejected
// class's p90 latency, rounded up to whole seconds with a 1s floor (the
// header carries integral seconds, and an empty ring means the server
// has no evidence the backlog clears faster than that).
func (s *Server) retryAfterSeconds(class string) int {
	p90 := s.lat.p90(class)
	secs := int((p90 + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// requestBudget lowers the request budget, capped by the server-wide
// maximum.
func (s *Server) requestBudget(req AnalyzeRequest) int {
	budget := s.cfg.MaxBudget
	if req.Budget > 0 && (budget == 0 || req.Budget < budget) {
		budget = req.Budget
	}
	return budget
}

// lintFile is the File field of service-side diagnostics: positions are
// line/col into the canonical text the response carries.
const lintFile = "network.fsp"

// lintCanonical returns the diagnostics for a canonical network text,
// from the lint cache when possible. The canonical text always reparses
// (FormatSpec output is idempotent), so there is no error path.
func (s *Server) lintCanonical(canonical string) (digest string, diags []speclint.Diagnostic, cached bool) {
	digest = LintDigest(canonical)
	if diags, ok := s.lints.get(digest); ok {
		s.c.lintHits.Add(1)
		return digest, diags, true
	}
	spec, err := fsplang.ParseSpec(canonical)
	if err != nil {
		// Unreachable by construction; fail closed with no diagnostics
		// rather than panicking in a handler.
		return digest, nil, false
	}
	diags = speclint.RunSpec(lintFile, spec, nil)
	if diags == nil {
		diags = []speclint.Diagnostic{}
	}
	s.c.lintMisses.Add(1)
	s.lints.add(digest, diags)
	return digest, diags, false
}

func (s *Server) handleLint(w http.ResponseWriter, r *http.Request) {
	req, err := ParseAnalyzeBody(r, s.cfg.MaxBodyBytes)
	if err != nil {
		writeError(w, bodyErrorCode(err), "%v", err)
		return
	}
	// The validation-free spec layer accepts every network the analyze
	// parser does, plus ones it rejects (that is the point: an unmatched
	// action comes back as a positioned diagnostic, not a 400).
	spec, err := fsplang.ParseSpec(req.Network)
	if err != nil {
		writeError(w, http.StatusBadRequest, "parsing network: %v", err)
		return
	}
	s.c.lints.Add(1)
	canonical := fsplang.FormatSpec(spec)
	digest, diags, cached := s.lintCanonical(canonical)
	writeJSON(w, http.StatusOK, lintResponse{
		Digest: digest, Cached: cached, Canonical: canonical, Diagnostics: diags,
	})
}

// bodyErrorCode maps a body-read or decode failure to its HTTP status:
// over-cap is 413, everything else 400.
func bodyErrorCode(err error) int {
	if errors.Is(err, ErrBodyTooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	req, err := ParseAnalyzeBody(r, s.cfg.MaxBodyBytes)
	if err != nil {
		writeError(w, bodyErrorCode(err), "%v", err)
		return
	}
	n, canonical, digest, err := canonicalizeNetwork(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	deadline, err := s.requestDeadline(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.c.requests.Add(1)

	var warnings []speclint.Diagnostic
	if req.Lint {
		_, warnings, _ = s.lintCanonical(canonical)
	}
	if rec, ok := s.lookup(digest); ok {
		s.c.hits.Add(1)
		writeJSON(w, http.StatusOK, AnalyzeResponse{
			Digest: digest, Mode: req.Mode, Predicates: req.Predicates, Cached: true, Record: rec,
			Warnings: warnings,
		})
		return
	}

	res := s.runAnalysis(r.Context(), n, req, digest, deadline)
	switch res.outcome {
	case runOK:
		writeJSON(w, http.StatusOK, AnalyzeResponse{
			Digest: digest, Mode: req.Mode, Predicates: req.Predicates, Cached: false, Record: res.rec,
			Warnings: warnings,
		})
	case runRejected:
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds(req.Mode+"/"+req.Predicates)))
		writeError(w, http.StatusTooManyRequests, "analysis queue is full (%d in flight or queued)", cap(s.admit))
	case runCanceled:
		// The client is gone; there is no one left to answer.
	case runPartial:
		writeJSON(w, http.StatusOK, AnalyzeResponse{
			Digest: digest, Mode: req.Mode, Predicates: req.Predicates, Cached: false, Record: res.rec,
			Warnings: warnings,
		})
	default: // runError
		writeJSON(w, http.StatusUnprocessableEntity, AnalyzeResponse{
			Digest: digest, Mode: req.Mode, Predicates: req.Predicates, Cached: false, Record: res.rec,
			Warnings: warnings,
		})
	}
}

// lookup serves a digest from the LRU or, failing that, from the
// persistent store (promoting the record back into memory). The second
// path is what makes the disk an L2: an eviction costs one read-through,
// not a recomputation.
func (s *Server) lookup(digest string) (verdictjson.Record, bool) {
	if rec, ok := s.cache.get(digest); ok {
		return rec, true
	}
	rec, ok := s.store.get(digest)
	if ok {
		s.c.diskHits.Add(1)
		s.cache.add(digest, rec)
	}
	return rec, ok
}

// Outcomes of one governed analysis attempt.
type runOutcome int

const (
	runOK       runOutcome = iota // completed; rec cached and persisted
	runRejected                   // admission refused: queue saturated
	runCanceled                   // caller's context died first
	runPartial                    // governor stop; rec is the partial record
	runError                      // failed outside the governor; rec is the error record
)

type runResult struct {
	rec     verdictjson.Record
	outcome runOutcome
}

// flight is one in-progress analysis shared by every concurrent request
// for the same dedup key. The first arrival is the leader and runs the
// governed analysis; later arrivals wait on done and reuse its result.
// waiters counts every request still listening, leader included; when it
// reaches zero nobody wants the answer, and cancel stops the run at its
// next governor poll. All fields except done/cancel are guarded by the
// server's flightMu; res is published by the close of done.
type flight struct {
	done    chan struct{}
	res     runResult
	cancel  context.CancelFunc
	waiters int
}

// flightKey is the single-flight dedup key: two requests share a run only
// when they share the verdict digest (canonical text + resolved
// parameters) and the request-supplied limits, so a follower never
// receives a verdict computed under looser bounds than it asked for.
func flightKey(digest string, req AnalyzeRequest) string {
	return digest + "\x00" + req.Timeout + "\x00" + strconv.Itoa(req.Budget)
}

// dropWaiter records that one request stopped listening to f; the last
// one out cancels the flight's run context.
func (s *Server) dropWaiter(f *flight) {
	s.flightMu.Lock()
	f.waiters--
	if f.waiters == 0 {
		f.cancel()
	}
	s.flightMu.Unlock()
}

// listening reports whether any request still waits for f's result —
// what separates a canceled run (every client gone) from a drained one
// (stopped by CancelInflight with clients attached, who get the partial
// verdict).
func (s *Server) listening(f *flight) bool {
	s.flightMu.Lock()
	defer s.flightMu.Unlock()
	return f.waiters > 0
}

// runAnalysis charges one cache miss against the worker pool: admission
// ticket, slot, governed run, cache/store population, and the counter
// bookkeeping. Both the single-request handler and each batch item pass
// through here, so admission control cannot be starved by a batch — every
// item pays for its own ticket, and a saturated queue rejects the item,
// not the connection.
//
// Concurrent identical misses are single-flighted: the first request for
// a (digest, limits) key runs the analysis, later arrivals wait for its
// result — one solver run, one misses increment, identical records for
// every caller. A follower whose client disconnects stops waiting
// without disturbing the run; the run itself is canceled only when every
// interested request is gone or the drain path fires.
func (s *Server) runAnalysis(ctx context.Context, n *network.Network, req AnalyzeRequest, digest string, deadline time.Time) runResult {
	key := flightKey(digest, req)
	s.flightMu.Lock()
	if f, ok := s.flights[key]; ok {
		f.waiters++
		s.flightMu.Unlock()
		s.c.deduped.Add(1)
		select {
		case <-f.done:
			return f.res
		case <-ctx.Done():
			s.dropWaiter(f)
			s.c.canceled.Add(1)
			return runResult{outcome: runCanceled}
		}
	}
	// Leader: the run context deliberately does not descend from the
	// caller's — followers joining later must be able to keep the run
	// alive after the leader's client disconnects. Drain and
	// last-waiter-out are the only cancellation paths.
	runCtx, cancel := context.WithCancel(context.Background())
	f := &flight{done: make(chan struct{}), cancel: cancel, waiters: 1}
	s.flights[key] = f
	s.flightMu.Unlock()

	res := s.leadFlight(runCtx, ctx, f, n, req, digest, deadline)

	s.flightMu.Lock()
	f.res = res
	close(f.done)
	delete(s.flights, key)
	s.flightMu.Unlock()
	cancel()
	return res
}

// leadFlight is the leader's half of runAnalysis: the pre-single-flight
// admission/slot/governor pipeline, now watching the flight's shared run
// context instead of the leader's own.
func (s *Server) leadFlight(runCtx, callerCtx context.Context, f *flight, n *network.Network, req AnalyzeRequest, digest string, deadline time.Time) runResult {
	name := n.Process(req.Process).Name()
	// Admission: a ticket covers the whole stay (queued + running); none
	// free means the queue is saturated.
	select {
	case s.admit <- struct{}{}:
		defer func() { <-s.admit }()
	default:
		s.c.rejected.Add(1)
		return runResult{outcome: runRejected}
	}
	// The leader holds one waiter reference on behalf of its own client;
	// a disconnect releases it, and the run stops only if no follower
	// still wants the answer. Registration keeps CancelInflight
	// synchronous: when it returns, this context is done.
	stop := context.AfterFunc(callerCtx, func() { s.dropWaiter(f) })
	defer stop()
	unregister := s.registerCancel(f.cancel)
	defer unregister()

	s.c.queued.Add(1)
	done := runCtx.Done()
acquire:
	for {
		select {
		case s.slots <- struct{}{}:
			s.c.queued.Add(-1)
			defer func() { <-s.slots }()
			break acquire
		case <-done:
			if !s.listening(f) {
				// Every client is gone; the analysis never starts.
				s.c.queued.Add(-1)
				s.c.canceled.Add(1)
				return runResult{outcome: runCanceled}
			}
			// Drain fired with clients still attached: keep waiting for a
			// slot (the running analyses stop at their next poll, freeing
			// one), and the governed run below answers partial immediately.
			done = nil
		}
	}
	s.c.inflight.Add(1)
	defer s.c.inflight.Add(-1)

	g := guard.New(guard.Config{
		Context:  runCtx,
		Deadline: deadline,
		Budget:   s.requestBudget(req),
		Hook:     s.cfg.Hook,
	})

	start := time.Now() //fsplint:ignore detrand latency sample for /statusz quantiles
	rec, err := s.analyze(n, req, g)
	switch {
	case err == nil:
		s.lat.record(req.Mode+"/"+req.Predicates, time.Since(start)) //fsplint:ignore detrand latency sample for /statusz quantiles
		s.c.misses.Add(1)
		s.cache.add(digest, rec)
		s.store.put(digest, rec)
		return runResult{rec: rec, outcome: runOK}
	case guard.IsLimit(err):
		if runCtx.Err() != nil && !s.listening(f) {
			// Every interested client is gone; the governor stopped the run
			// for us and nobody wants the partial.
			s.c.canceled.Add(1)
			return runResult{outcome: runCanceled}
		}
		// Deadline, budget, or a drain with clients attached: the waiters
		// receive the partial verdict the truncated run still proved.
		s.c.partials.Add(1)
		return runResult{rec: verdictjson.FromError(name, err), outcome: runPartial}
	default:
		s.c.errors.Add(1)
		return runResult{rec: verdictjson.FromError(name, err), outcome: runError}
	}
}

// analyze dispatches the resolved request onto the governed library entry
// points.
func (s *Server) analyze(n *network.Network, req AnalyzeRequest, g *guard.G) (verdictjson.Record, error) {
	name := n.Process(req.Process).Name()
	class := req.Mode + "/" + req.Predicates
	cyclic := req.Mode == "cyclic"
	if req.Predicates == PredicatesReach {
		var (
			res explore.Result
			err error
		)
		if cyclic {
			res, err = explore.AnalyzeCyclic(n, req.Process, explore.Options{Guard: g})
		} else {
			res, err = explore.AnalyzeAcyclic(n, req.Process, explore.Options{Guard: g})
		}
		if err != nil {
			return verdictjson.Record{}, err
		}
		s.exp.record(class, res.Stats)
		return verdictjson.Reach(name, res.Su, res.Sc), nil
	}
	var (
		v   success.Verdict
		bst belief.Stats
		est explore.Stats
		err error
	)
	o := success.Options{Guard: g, BeliefStats: &bst, ExploreStats: &est}
	if cyclic {
		v, err = success.AnalyzeCyclicOpts(n, req.Process, o)
	} else {
		v, err = success.AnalyzeAcyclicOpts(n, req.Process, o)
	}
	if err != nil {
		return verdictjson.Record{}, err
	}
	s.exp.record(class, est)
	s.bel.record(class, bst)
	return verdictjson.OK(name, v), nil
}
