package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"

	"fspnet/internal/speclint"
)

// netDirty is rejected by the analyze parser (action "lonely" has one
// owner) but accepted by the lint layer, which is the point of /v1/lint.
const netDirty = "process P { start s0; s0 lonely s1; s0 tau s0 }"

// netLintClean is speclint-clean: unlike netA, whose two members are
// identical up to relabeling (a legitimate dupmember finding), its
// members differ structurally.
const netLintClean = "process P { start s1; s1 a s2 }\nprocess Q { start t1; t1 a t2; t1 tau t3 }"

func postLint(t *testing.T, url, network string) (*http.Response, lintResponse, string) {
	t.Helper()
	body, err := json.Marshal(AnalyzeRequest{Network: network})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/lint", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var lr lintResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &lr); err != nil {
			t.Fatalf("decoding lint response: %v\n%s", err, raw)
		}
	}
	return resp, lr, string(raw)
}

func TestLintCleanNetwork(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, lr, _ := postLint(t, ts.URL, netLintClean)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if lr.Cached {
		t.Error("first lint must be a miss")
	}
	if len(lr.Diagnostics) != 0 {
		t.Errorf("clean network produced diagnostics: %v", lr.Diagnostics)
	}
	if lr.Canonical == "" || lr.Digest == "" {
		t.Errorf("missing canonical/digest: %+v", lr)
	}
}

func TestLintDirtyNetworkAndInvalidNetworks(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	// The analyze endpoint refuses this network outright...
	resp, _ := postJSON(t, ts.URL, AnalyzeRequest{Network: netDirty})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("analyze of invalid network: status %d, want 400", resp.StatusCode)
	}
	// ...while lint reports positioned diagnostics for it.
	resp2, lr, _ := postLint(t, ts.URL, netDirty)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("lint status %d", resp2.StatusCode)
	}
	if len(lr.Diagnostics) == 0 {
		t.Fatal("expected diagnostics for the dirty network")
	}
	seen := map[string]bool{}
	for _, d := range lr.Diagnostics {
		seen[d.Analyzer] = true
		if d.Line <= 0 || d.Col <= 0 {
			t.Errorf("diagnostic missing position: %+v", d)
		}
	}
	if !seen["unmatched"] || !seen["taudiv"] {
		t.Errorf("expected unmatched and taudiv findings, got %v", lr.Diagnostics)
	}
}

func TestLintCacheHitConsistency(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	_, first, rawFirst := postLint(t, ts.URL, netDirty)
	if first.Cached {
		t.Fatal("first lint must miss")
	}
	// The reformatted spelling of the same canonical network must hit the
	// same entry and answer byte-identically (modulo the cached flag).
	_, second, rawSecond := postLint(t, ts.URL, netDirty+"\n# a comment\n")
	if !second.Cached {
		t.Error("second lint of the same canonical network must hit")
	}
	if first.Digest != second.Digest {
		t.Errorf("digest changed across cache hit: %s vs %s", first.Digest, second.Digest)
	}
	if !reflect.DeepEqual(first.Diagnostics, second.Diagnostics) {
		t.Errorf("diagnostics changed across cache hit:\n%s\n%s", rawFirst, rawSecond)
	}
	if first.Canonical != second.Canonical {
		t.Errorf("canonical text changed across cache hit")
	}
	st := s.Snapshot()
	if st.Lints != 2 || st.LintMisses != 1 || st.LintHits != 1 || st.LintEntries != 1 {
		t.Errorf("lint stats = %d/%d/%d/%d, want 2 lints, 1 miss, 1 hit, 1 entry",
			st.Lints, st.LintMisses, st.LintHits, st.LintEntries)
	}
}

func TestLintDeterministicUnderConcurrency(t *testing.T) {
	// Many goroutines lint the same dirty network plus distinct clean
	// ones; every response for the dirty network must be identical. Run
	// under -race this also exercises the lint cache's locking.
	_, ts := newTestServer(t, Config{Workers: 4})
	var wg sync.WaitGroup
	results := make([]string, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var lr lintResponse
			_, lr, _ = postLint(t, ts.URL, netDirty)
			lr.Cached = false // hit/miss depends on interleaving; everything else may not
			b, _ := json.Marshal(lr)
			results[i] = string(b)
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatalf("lint response %d differs:\n%s\n%s", i, results[i], results[0])
		}
	}
}

func TestLintSyntaxErrorIs400(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, _, raw := postLint(t, ts.URL, "process {")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400\n%s", resp.StatusCode, raw)
	}
}

func TestLintRawBody(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Post(ts.URL+"/v1/lint", "text/plain", strings.NewReader(netDirty))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lr lintResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	if len(lr.Diagnostics) == 0 {
		t.Error("raw-body lint returned no diagnostics")
	}
}

func TestAnalyzeWarnings(t *testing.T) {
	// A valid cyclic network with a τ-divergence: analysis succeeds and
	// lint=true attaches the warning — on the miss and on the hit.
	const warned = "process P { start s0; s0 a s0 }\nprocess Q { start t0; t0 a t0; t0 tau t0 }"
	s, ts := newTestServer(t, Config{Workers: 1})
	hasTaudiv := func(ws []speclint.Diagnostic) bool {
		for _, d := range ws {
			if d.Analyzer == "taudiv" {
				return true
			}
		}
		return false
	}
	_, miss := postJSON(t, ts.URL, AnalyzeRequest{Network: warned, Lint: true})
	if miss.Cached || !hasTaudiv(miss.Warnings) {
		t.Fatalf("miss response warnings: %+v", miss)
	}
	_, hit := postJSON(t, ts.URL, AnalyzeRequest{Network: warned, Lint: true})
	if !hit.Cached || !hasTaudiv(hit.Warnings) {
		t.Fatalf("hit response warnings: %+v", hit)
	}
	if !reflect.DeepEqual(miss.Warnings, hit.Warnings) {
		t.Errorf("warnings differ between miss and hit:\n%v\n%v", miss.Warnings, hit.Warnings)
	}
	// Without lint=true the response carries no warnings at all.
	_, plain := postJSON(t, ts.URL, AnalyzeRequest{Network: warned})
	if plain.Warnings != nil {
		t.Errorf("warnings attached without lint=true: %v", plain.Warnings)
	}
	if st := s.Snapshot(); st.LintMisses != 1 || st.LintHits != 1 {
		t.Errorf("lint cache stats %d/%d, want 1 miss then 1 hit", st.LintMisses, st.LintHits)
	}
}
