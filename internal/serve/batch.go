package serve

import (
	"encoding/json"
	"net/http"
	"sync"

	"fspnet/internal/network"
	"fspnet/internal/speclint"
	"fspnet/internal/verdictjson"
)

// BatchRequest is the POST /v1/analyze/batch JSON body: many analyze
// requests in one call. Items are independent — each carries its own
// network, parameters, and limits — and the response preserves their
// order exactly.
type BatchRequest struct {
	Items []AnalyzeRequest `json:"items"`
}

// BatchResponse is the POST /v1/analyze/batch reply. Items[i] answers
// Items[i] of the request. Uniques counts the distinct digests behind the
// items: duplicates (after canonicalization) are analyzed once and every
// copy shares the record.
type BatchResponse struct {
	Items   []AnalyzeResponse `json:"items"`
	Uniques int               `json:"uniques"`
}

// batchItemError synthesizes the per-item record for an item that never
// reached the solver — a parse/validation failure or a cap violation.
// Single-request callers get these as HTTP 400/413; inside a batch one
// bad item must not poison its neighbors, so the failure travels as a
// StatusError record in the item's slot.
func batchItemError(msg string) AnalyzeResponse {
	return AnalyzeResponse{Record: verdictjson.Record{Status: verdictjson.StatusError, Error: msg}}
}

// batchUnique is the per-distinct-digest work unit: the first item that
// produced the digest supplies the parsed network and resolved limits.
type batchUnique struct {
	n        *network.Network
	req      AnalyzeRequest
	digest   string
	warnings []speclint.Diagnostic

	res    runResult
	hit    bool // served from cache or disk without running
	rec    verdictjson.Record
	hasRec bool
}

// handleBatch is many /v1/analyze calls in one request body. The
// pipeline: decode under the batch byte cap (413 past it), canonicalize
// and deduplicate the items by digest, answer what the cache and the
// persistent store already know, and charge each remaining unique miss
// against the worker pool individually — concurrently, but each under its
// own admission ticket, so a batch saturates the queue no harder than the
// same requests issued singly, and a full queue turns into per-item
// error records instead of a dropped batch.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, err := ReadBody(r, s.cfg.MaxBatchBytes)
	if err != nil {
		writeError(w, bodyErrorCode(err), "%v", err)
		return
	}
	var breq BatchRequest
	if err := json.Unmarshal(body, &breq); err != nil {
		writeError(w, http.StatusBadRequest, "decoding JSON body: %v", err)
		return
	}
	if len(breq.Items) == 0 {
		writeError(w, http.StatusBadRequest, "batch has no items")
		return
	}
	if len(breq.Items) > s.cfg.MaxBatchItems {
		writeError(w, http.StatusRequestEntityTooLarge,
			"batch has %d items, limit is %d", len(breq.Items), s.cfg.MaxBatchItems)
		return
	}
	s.c.batches.Add(1)
	s.c.batchItems.Add(int64(len(breq.Items)))

	// Pass 1 — canonicalize every item, collecting the distinct digests in
	// first-occurrence order (deterministic for a given batch).
	out := make([]AnalyzeResponse, len(breq.Items))
	itemUnique := make([]int, len(breq.Items)) // -1: answered in pass 1
	uniques := []*batchUnique{}
	uniqueOf := map[string]int{}
	for i := range breq.Items {
		itemUnique[i] = -1
		req := breq.Items[i] // copy; resolve mutates
		if int64(len(req.Network)) > s.cfg.MaxBodyBytes {
			out[i] = batchItemError(ErrBodyTooLarge.Error())
			continue
		}
		n, canonical, digest, err := canonicalizeNetwork(&req)
		if err != nil {
			out[i] = batchItemError(err.Error())
			continue
		}
		if _, err := s.requestDeadline(req); err != nil {
			out[i] = batchItemError(err.Error())
			continue
		}
		s.c.requests.Add(1)
		var warnings []speclint.Diagnostic
		if req.Lint {
			_, warnings, _ = s.lintCanonical(canonical)
		}
		if u, ok := uniqueOf[digest]; ok {
			// Duplicate after canonicalization: share the unique's run.
			// Warnings depend only on the canonical text, so the copies are
			// identical anyway.
			itemUnique[i] = u
			continue
		}
		uniqueOf[digest] = len(uniques)
		itemUnique[i] = len(uniques)
		uniques = append(uniques, &batchUnique{n: n, req: req, digest: digest, warnings: warnings})
	}

	// Pass 2 — answer from cache/disk, then run the misses concurrently,
	// each charged individually against the pool.
	var wg sync.WaitGroup
	for _, u := range uniques {
		if rec, ok := s.lookup(u.digest); ok {
			s.c.hits.Add(1)
			u.rec, u.hasRec, u.hit = rec, true, true
			continue
		}
		wg.Add(1)
		go func(u *batchUnique) {
			defer wg.Done()
			deadline, _ := s.requestDeadline(u.req) // validated in pass 1
			u.res = s.runAnalysis(r.Context(), u.n, u.req, u.digest, deadline)
			if u.res.outcome == runOK || u.res.outcome == runPartial || u.res.outcome == runError {
				u.rec, u.hasRec = u.res.rec, true
			}
		}(u)
	}
	wg.Wait()
	if r.Context().Err() != nil {
		return // client is gone; nothing to write
	}

	// Pass 3 — assemble in input order. The first occurrence of a unique
	// that ran reports the miss (cached=false); its duplicates report the
	// now-cached record (cached=true) — exactly what k single calls in the
	// same order would have seen.
	seen := make([]bool, len(uniques))
	for i := range out {
		ui := itemUnique[i]
		if ui < 0 {
			continue // answered in pass 1
		}
		u := uniques[ui]
		first := !seen[ui]
		seen[ui] = true
		resp := AnalyzeResponse{
			Digest: u.digest, Mode: u.req.Mode, Predicates: u.req.Predicates,
			Warnings: u.warnings,
		}
		switch {
		case u.hit:
			resp.Cached, resp.Record = true, u.rec
		case u.hasRec:
			resp.Cached = u.res.outcome == runOK && !first
			resp.Record = u.rec
		case u.res.outcome == runRejected:
			resp.Record = verdictjson.Record{
				Status: verdictjson.StatusError,
				Error:  "analysis queue is full; retry the item",
			}
		default: // runCanceled with the batch still connected: drain raced us
			resp.Record = verdictjson.Record{
				Status: verdictjson.StatusError,
				Error:  "analysis canceled",
			}
		}
		out[i] = resp
	}
	writeJSON(w, http.StatusOK, BatchResponse{Items: out, Uniques: len(uniques)})
}
