package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"fspnet/internal/guard/faultinject"
	"fspnet/internal/verdictjson"
)

// Two observably different formattings of the same tiny network: the
// canonicalization step must give them one digest and one cache entry.
const (
	netA = "process P { start s0; s0 a s1 }\nprocess Q { start q0; q0 a q1 }"

	netAReformatted = `# same network, different spelling
process P {
    start s0
    s0 a s1
}
process Q { start q0; q0 a q1 }`

	netB = "process P { start s0; s0 b s1 }\nprocess Q { start q0; q0 b q1 }"

	netC = "process P { start s0; s0 c s1; s1 d s2 }\nprocess Q { start q0; q0 c q1; q1 d q2 }"
)

// blockHook parks every governed run inside its first guard poll until
// release is closed: the deterministic way to hold a worker busy while a
// test saturates the queue, disconnects the client, or starts a drain.
type blockHook struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func newBlockHook() *blockHook {
	return &blockHook{entered: make(chan struct{}), release: make(chan struct{})}
}

func (h *blockHook) Fire(pass string, level int) error {
	h.once.Do(func() { close(h.entered) })
	<-h.release
	return nil
}

func (h *blockHook) Panic(string, int) bool { return false }

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func postJSON(t *testing.T, url string, req AnalyzeRequest) (*http.Response, AnalyzeResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ar AnalyzeResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusUnprocessableEntity {
		if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp, ar
}

func getStats(t *testing.T, url string) Stats {
	t.Helper()
	resp, err := http.Get(url + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// postAsync issues an analyze POST from a goroutine and delivers the
// status code; -1 signals a transport error.
func postAsync(t *testing.T, url, net string) chan int {
	t.Helper()
	codes := make(chan int, 1)
	go func() {
		resp, err := http.Post(url+"/v1/analyze", "text/plain", strings.NewReader(net))
		if err != nil {
			codes <- -1
			return
		}
		resp.Body.Close()
		codes <- resp.StatusCode
	}()
	return codes
}

// waitStats polls /statusz until cond holds or the deadline passes.
func waitStats(t *testing.T, url string, cond func(Stats) bool) Stats {
	t.Helper()
	var st Stats
	for i := 0; i < 200; i++ {
		st = getStats(t, url)
		if cond(st) {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("condition never held; last stats: %+v", st)
	return st
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}
}

// TestHitMissCanonicalization is the cache-soundness core: a reformatted
// spelling of an already-analyzed network must be answered from cache,
// with the identical record and digest, because the key is the SHA-256 of
// the canonical text.
func TestHitMissCanonicalization(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, first := postJSON(t, ts.URL, AnalyzeRequest{Network: netA})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first POST = %d, want 200", resp.StatusCode)
	}
	if first.Cached {
		t.Error("first request reported cached=true")
	}
	if first.Record.Status != verdictjson.StatusOK {
		t.Fatalf("record status = %q, want ok", first.Record.Status)
	}
	// P and Q handshake once and both stop at leaves: all three hold.
	for name, b := range map[string]*bool{"Su": first.Record.Su, "Sa": first.Record.Sa, "Sc": first.Record.Sc} {
		if b == nil || !*b {
			t.Errorf("%s = %v, want true", name, b)
		}
	}

	// Raw-body spelling of the same network, parameters in the query.
	resp2, err := http.Post(ts.URL+"/v1/analyze?process=0", "text/plain", strings.NewReader(netAReformatted))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var second AnalyzeResponse
	if err := json.NewDecoder(resp2.Body).Decode(&second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("reformatted request missed the cache; canonicalization is broken")
	}
	if second.Digest != first.Digest {
		t.Errorf("digests differ: %s vs %s", first.Digest, second.Digest)
	}
	firstJSON, _ := json.Marshal(first.Record)
	secondJSON, _ := json.Marshal(second.Record)
	if !bytes.Equal(firstJSON, secondJSON) {
		t.Errorf("cached record differs:\nfirst:  %s\nsecond: %s", firstJSON, secondJSON)
	}

	st := getStats(t, ts.URL)
	if st.Requests != 2 || st.Hits != 1 || st.Misses != 1 || st.CacheEntries != 1 {
		t.Errorf("stats = requests=%d hits=%d misses=%d entries=%d, want 2/1/1/1",
			st.Requests, st.Hits, st.Misses, st.CacheEntries)
	}
	if _, ok := st.Latency["acyclic/all"]; !ok {
		t.Errorf("latency quantiles missing acyclic/all class: %+v", st.Latency)
	}
}

func TestVerdictLookup(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, first := postJSON(t, ts.URL, AnalyzeRequest{Network: netA})

	resp, err := http.Get(ts.URL + "/v1/verdict/" + first.Digest)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lookup = %d, want 200", resp.StatusCode)
	}
	var got AnalyzeResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !got.Cached || got.Record.Status != verdictjson.StatusOK {
		t.Errorf("lookup response = %+v", got)
	}

	missing, err := http.Get(ts.URL + "/v1/verdict/" + strings.Repeat("0", 64))
	if err != nil {
		t.Fatal(err)
	}
	defer missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Errorf("unknown digest = %d, want 404", missing.StatusCode)
	}
}

// TestEvictionDeterminism drives a capacity-1 cache through a fixed
// request sequence and asserts the exact hit/miss/eviction counters: the
// LRU must behave as a pure function of the sequence.
func TestEvictionDeterminism(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheEntries: 1})
	sequence := []struct {
		net        string
		wantCached bool
	}{
		{netA, false}, // miss, cache [A]
		{netB, false}, // miss, evicts A, cache [B]
		{netA, false}, // miss again (was evicted), evicts B, cache [A]
		{netA, true},  // hit
	}
	for i, step := range sequence {
		resp, ar := postJSON(t, ts.URL, AnalyzeRequest{Network: step.net})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("step %d: status %d", i, resp.StatusCode)
		}
		if ar.Cached != step.wantCached {
			t.Errorf("step %d: cached = %t, want %t", i, ar.Cached, step.wantCached)
		}
	}
	st := getStats(t, ts.URL)
	if st.Misses != 3 || st.Hits != 1 || st.Evictions != 2 || st.CacheEntries != 1 {
		t.Errorf("stats = misses=%d hits=%d evictions=%d entries=%d, want 3/1/2/1",
			st.Misses, st.Hits, st.Evictions, st.CacheEntries)
	}
}

// TestRejectWhenSaturated fills the worker (1) and the queue (1) with
// blocked analyses; the next distinct request must bounce with 429 and
// the rejected counter, and the blocked requests must still complete
// once released.
func TestRejectWhenSaturated(t *testing.T) {
	hook := newBlockHook()
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Hook: hook})

	first := postAsync(t, ts.URL, netA)
	<-hook.entered // the worker is now parked inside the analysis
	second := postAsync(t, ts.URL, netB)
	waitStats(t, ts.URL, func(st Stats) bool { return st.Queued == 1 })

	resp, _ := postJSON(t, ts.URL, AnalyzeRequest{Network: netC})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated POST = %d, want 429", resp.StatusCode)
	}

	close(hook.release)
	for i, codes := range []chan int{first, second} {
		if code := <-codes; code != http.StatusOK {
			t.Errorf("blocked request %d finished with %d, want 200", i, code)
		}
	}
	st := getStats(t, ts.URL)
	if st.Rejected != 1 || st.Misses != 2 || st.Inflight != 0 || st.Queued != 0 {
		t.Errorf("stats = rejected=%d misses=%d inflight=%d queued=%d, want 1/2/0/0",
			st.Rejected, st.Misses, st.Inflight, st.Queued)
	}
}

// cancelablePost issues a raw-body analyze POST bound to ctx and reports
// the client-side error once the request ends.
func cancelablePost(t *testing.T, ctx context.Context, url, net string) chan error {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/analyze",
		strings.NewReader(net))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	return errc
}

// TestClientCancelWhileQueued disconnects a client whose request is
// admitted but still waiting for a worker: the wait must end immediately
// and be tallied as canceled, without the analysis ever starting.
func TestClientCancelWhileQueued(t *testing.T) {
	hook := newBlockHook()
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Hook: hook})

	running := postAsync(t, ts.URL, netA)
	<-hook.entered // the only worker is parked
	ctx, cancel := context.WithCancel(context.Background())
	queuedErr := cancelablePost(t, ctx, ts.URL, netB)
	waitStats(t, ts.URL, func(st Stats) bool { return st.Queued == 1 })

	cancel() // the queued client walks away
	if err := <-queuedErr; err == nil {
		t.Error("canceled request returned no client-side error")
	}
	st := waitStats(t, ts.URL, func(st Stats) bool { return st.Canceled == 1 })
	if st.Queued != 0 {
		t.Errorf("queued gauge = %d after cancellation, want 0", st.Queued)
	}

	close(hook.release)
	if code := <-running; code != http.StatusOK {
		t.Errorf("running request finished with %d, want 200", code)
	}
	// netB never ran: only netA's verdict is cached.
	if st := getStats(t, ts.URL); st.Misses != 1 || st.CacheEntries != 1 {
		t.Errorf("canceled queued request ran anyway: %+v", st)
	}
}

// TestClientCancelMidAnalysis disconnects the client while its analysis
// is parked inside the governor; the run must stop at the next poll and
// be tallied as canceled, freeing the worker for the next request.
func TestClientCancelMidAnalysis(t *testing.T) {
	hook := newBlockHook()
	_, ts := newTestServer(t, Config{Workers: 1, Hook: hook})

	ctx, cancel := context.WithCancel(context.Background())
	errc := cancelablePost(t, ctx, ts.URL, netA)
	<-hook.entered
	cancel() // client walks away mid-analysis
	if err := <-errc; err == nil {
		t.Error("canceled request returned no client-side error")
	}
	// Give the server's connection watcher time to observe the disconnect
	// and cancel r.Context() before the analysis is allowed to resume.
	time.Sleep(500 * time.Millisecond)
	close(hook.release)

	st := waitStats(t, ts.URL, func(st Stats) bool { return st.Canceled == 1 })
	if st.Misses != 0 || st.CacheEntries != 0 {
		t.Errorf("canceled run must not populate the cache: %+v", st)
	}
	// The worker is free again: a fresh request completes normally.
	resp, _ := postJSON(t, ts.URL, AnalyzeRequest{Network: netB})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-cancel request = %d, want 200", resp.StatusCode)
	}
}

// assertPartial checks the shape of a status "partial" record: a reason,
// a pass name, and three-valued bounds that respect S_u ⇒ S_a ⇒ S_c.
func assertPartial(t *testing.T, rec verdictjson.Record, wantReason string) {
	t.Helper()
	if rec.Status != verdictjson.StatusPartial {
		t.Fatalf("record status = %q, want partial (record %+v)", rec.Status, rec)
	}
	if !strings.Contains(rec.Reason, wantReason) {
		t.Errorf("reason = %q, want it to mention %q", rec.Reason, wantReason)
	}
	if rec.Partial == nil {
		t.Fatal("partial record carries no partial verdict")
	}
	if rec.Partial.Pass == "" {
		t.Error("partial verdict names no pass")
	}
	for _, b := range []string{rec.Partial.Su, rec.Partial.Sa, rec.Partial.Sc} {
		if b != "true" && b != "false" && b != "?" {
			t.Errorf("malformed bound %q", b)
		}
	}
	if !rec.Partial.Consistent() {
		t.Errorf("bounds contradict S_u ⇒ S_a ⇒ S_c: %+v", rec.Partial)
	}
}

// TestPartialVerdictFaultInject forces deadline expiry at the first BFS
// barrier: the response must be a 200 with a well-formed partial verdict,
// and partials must never enter the cache.
func TestPartialVerdictFaultInject(t *testing.T) {
	_, ts := newTestServer(t, Config{Hook: faultinject.DeadlineAt("bfs", 0)})
	for i := 0; i < 2; i++ {
		resp, ar := postJSON(t, ts.URL, AnalyzeRequest{Network: netA})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %d = %d, want 200 (partial is a result, not an error)", i, resp.StatusCode)
		}
		if ar.Cached {
			t.Errorf("POST %d answered from cache; partials must not be cached", i)
		}
		assertPartial(t, ar.Record, "deadline")
	}
	st := getStats(t, ts.URL)
	if st.Partials != 2 || st.CacheEntries != 0 || st.Misses != 0 {
		t.Errorf("stats = partials=%d entries=%d misses=%d, want 2/0/0", st.Partials, st.CacheEntries, st.Misses)
	}
}

// TestRequestDeadlinePartial exercises the real per-request timeout: the
// analysis is parked past its own deadline, and the next governor poll
// turns it into a partial verdict.
func TestRequestDeadlinePartial(t *testing.T) {
	hook := newBlockHook()
	_, ts := newTestServer(t, Config{Workers: 1, Hook: hook})

	type result struct {
		code int
		ar   AnalyzeResponse
	}
	resc := make(chan result, 1)
	go func() {
		resp, ar := postJSON(t, ts.URL, AnalyzeRequest{Network: netA, Timeout: "50ms"})
		resc <- result{resp.StatusCode, ar}
	}()
	<-hook.entered
	time.Sleep(80 * time.Millisecond) // overshoot the request deadline
	close(hook.release)

	res := <-resc
	if res.code != http.StatusOK {
		t.Fatalf("POST = %d, want 200", res.code)
	}
	assertPartial(t, res.ar.Record, "deadline")
}

// TestDrainCancelInflight is the SIGTERM force-stop path: CancelInflight
// stops a parked analysis through the drain context, and since the client
// is still connected it receives the partial verdict instead of a dropped
// connection.
func TestDrainCancelInflight(t *testing.T) {
	hook := newBlockHook()
	s, ts := newTestServer(t, Config{Workers: 1, Hook: hook})

	type result struct {
		code int
		ar   AnalyzeResponse
	}
	resc := make(chan result, 1)
	go func() {
		resp, ar := postJSON(t, ts.URL, AnalyzeRequest{Network: netA})
		resc <- result{resp.StatusCode, ar}
	}()
	<-hook.entered
	s.CancelInflight()
	close(hook.release)

	res := <-resc
	if res.code != http.StatusOK {
		t.Fatalf("drained POST = %d, want 200", res.code)
	}
	assertPartial(t, res.ar.Record, "canceled")
	st := getStats(t, ts.URL)
	if st.Partials != 1 || st.Inflight != 0 {
		t.Errorf("stats = partials=%d inflight=%d, want 1/0", st.Partials, st.Inflight)
	}
}

// TestBadRequests table-tests the 400 surface.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		req  AnalyzeRequest
	}{
		{"empty network", AnalyzeRequest{}},
		{"parse error", AnalyzeRequest{Network: "process {"}},
		{"process out of range", AnalyzeRequest{Network: netA, Process: 7}},
		{"negative process", AnalyzeRequest{Network: netA, Process: -1}},
		{"bad mode", AnalyzeRequest{Network: netA, Mode: "sideways"}},
		{"bad predicates", AnalyzeRequest{Network: netA, Predicates: "none"}},
		{"bad timeout", AnalyzeRequest{Network: netA, Timeout: "soon"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, _ := postJSON(t, ts.URL, tc.req)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status = %d, want 400", resp.StatusCode)
			}
		})
	}
	if st := getStats(t, ts.URL); st.Requests != 0 {
		t.Errorf("malformed posts counted as requests: %d", st.Requests)
	}
}

// TestReachPredicates asks for the engine-only S_u/S_c analysis: the
// record must omit adversity, and the digest must differ from the "all"
// digest of the same network (different answer shape, different address).
func TestReachPredicates(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, reach := postJSON(t, ts.URL, AnalyzeRequest{Network: netA, Predicates: PredicatesReach})
	if reach.Record.Status != verdictjson.StatusOK {
		t.Fatalf("reach record = %+v", reach.Record)
	}
	if reach.Record.Sa != nil {
		t.Error("reach analysis reported an adversity verdict")
	}
	if reach.Record.Su == nil || !*reach.Record.Su || reach.Record.Sc == nil || !*reach.Record.Sc {
		t.Errorf("reach verdict = %+v, want S_u=S_c=true", reach.Record)
	}
	_, all := postJSON(t, ts.URL, AnalyzeRequest{Network: netA})
	if all.Digest == reach.Digest {
		t.Error("reach and all analyses share a digest")
	}
	// Explicit mode equal to the auto-resolved one shares the cache line.
	_, explicit := postJSON(t, ts.URL, AnalyzeRequest{Network: netA, Mode: "acyclic", Predicates: PredicatesReach})
	if !explicit.Cached || explicit.Digest != reach.Digest {
		t.Errorf("explicit acyclic mode missed the auto-resolved cache entry: %+v", explicit)
	}
}

// TestLargeFixtureAllPredicates serves the 20-process philosophers10
// fixture with the default predicates=all under fspd's default limits
// (60s cap, no budget): the compose-free belief engine must return a
// complete S_a verdict — the request that used to exhaust its budget
// composing the 19-process context.
func TestLargeFixtureAllPredicates(t *testing.T) {
	if testing.Short() {
		t.Skip("large fixture in -short mode")
	}
	src, err := os.ReadFile("../../testdata/philosophers10.fsp")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{MaxTimeout: 60 * time.Second})
	resp, ar := postJSON(t, ts.URL, AnalyzeRequest{Network: string(src)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ar.Record.Status != verdictjson.StatusOK {
		t.Fatalf("record = %+v, want a complete verdict", ar.Record)
	}
	if ar.Record.Su == nil || ar.Record.Sa == nil || ar.Record.Sc == nil {
		t.Fatalf("record = %+v, want all three predicates decided", ar.Record)
	}
	if *ar.Record.Su || *ar.Record.Sa || !*ar.Record.Sc {
		t.Errorf("verdict (Su=%v Sa=%v Sc=%v), want (false,false,true)",
			*ar.Record.Su, *ar.Record.Sa, *ar.Record.Sc)
	}
}

// TestShapeError routes a domain violation (explicit acyclic analysis of
// a cyclic network) to 422 with a status "error" record.
func TestShapeError(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cyclicNet := "process P { start s0; s0 a s0 }\nprocess Q { start t0; t0 a t0 }"
	resp, ar := postJSON(t, ts.URL, AnalyzeRequest{Network: cyclicNet, Mode: "acyclic"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422", resp.StatusCode)
	}
	if ar.Record.Status != verdictjson.StatusError || ar.Record.Error == "" {
		t.Errorf("record = %+v, want status error with a message", ar.Record)
	}
	if st := getStats(t, ts.URL); st.Errors != 1 || st.CacheEntries != 0 {
		t.Errorf("stats = errors=%d entries=%d, want 1/0", st.Errors, st.CacheEntries)
	}
}

// TestConcurrentIdenticalRequests hammers one network from many
// goroutines: every response must carry the same digest and verdict, and
// the cache must end with exactly one entry — the determinism the race
// detector checks from the memory side.
func TestConcurrentIdenticalRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	const clients = 16
	digests := make(chan string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, ar := postJSON(t, ts.URL, AnalyzeRequest{Network: netC})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status = %d", resp.StatusCode)
			}
			digests <- ar.Digest
		}()
	}
	wg.Wait()
	close(digests)
	first := ""
	for d := range digests {
		if first == "" {
			first = d
		} else if d != first {
			t.Errorf("digest mismatch: %s vs %s", first, d)
		}
	}
	st := getStats(t, ts.URL)
	if st.CacheEntries != 1 || st.Hits+st.Misses+st.Deduped != clients {
		t.Errorf("stats = entries=%d hits=%d misses=%d deduped=%d, want 1 entry and %d answers",
			st.CacheEntries, st.Hits, st.Misses, st.Deduped, clients)
	}
	if st.Misses < 1 {
		t.Errorf("misses = %d, want at least the first flight's run", st.Misses)
	}
}

// TestStatuszBeliefTotals requires completed predicates=all analyses to
// accumulate belief-engine counters under their class key, and
// predicates=reach analyses to stay invisible to the belief map.
func TestStatuszBeliefTotals(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	if resp, _ := postJSON(t, ts.URL, AnalyzeRequest{Network: netA}); resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze all: status %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL, AnalyzeRequest{Network: netB, Predicates: PredicatesReach}); resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze reach: status %d", resp.StatusCode)
	}
	st := getStats(t, ts.URL)
	bt, ok := st.Belief["acyclic/all"]
	if !ok {
		t.Fatalf("no belief totals for acyclic/all: %+v", st.Belief)
	}
	if bt.Analyses != 1 || bt.CtxStates == 0 || bt.Positions == 0 || bt.Workers == 0 {
		t.Fatalf("implausible belief totals: %+v", bt)
	}
	if _, ok := st.Belief["acyclic/reach"]; ok {
		t.Fatalf("reach class leaked belief totals: %+v", st.Belief)
	}
	// A cache hit must not re-count.
	if resp, _ := postJSON(t, ts.URL, AnalyzeRequest{Network: netA}); resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze repeat: status %d", resp.StatusCode)
	}
	if bt := getStats(t, ts.URL).Belief["acyclic/all"]; bt.Analyses != 1 {
		t.Fatalf("cache hit perturbed belief totals: %+v", bt)
	}
}

// TestPhilosophers20AllPredicates serves the 40-process philosophers20
// fixture with predicates=all under the fspd defaults (60s max timeout,
// no state budget). The raw joint space is astronomically past any
// budget; the C_20-orbit quotient and the witness probes decide all
// three predicates in milliseconds — the tentpole acceptance check.
func TestPhilosophers20AllPredicates(t *testing.T) {
	if testing.Short() {
		t.Skip("large fixture in -short mode")
	}
	src, err := os.ReadFile("../../testdata/philosophers20.fsp")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{MaxTimeout: 60 * time.Second})
	resp, ar := postJSON(t, ts.URL, AnalyzeRequest{Network: string(src)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ar.Record.Status != verdictjson.StatusOK {
		t.Fatalf("record = %+v, want a complete verdict", ar.Record)
	}
	if ar.Record.Su == nil || ar.Record.Sa == nil || ar.Record.Sc == nil {
		t.Fatalf("record = %+v, want all three predicates decided", ar.Record)
	}
	if *ar.Record.Su || *ar.Record.Sa || !*ar.Record.Sc {
		t.Errorf("verdict (Su=%v Sa=%v Sc=%v), want (false,false,true)",
			*ar.Record.Su, *ar.Record.Sa, *ar.Record.Sc)
	}
	// The run's symmetry yield is visible on /statusz: the ring's C_20
	// rotation group and the probes' raw-space visits.
	st := getStats(t, ts.URL)
	et, ok := st.Explore["cyclic/all"]
	if !ok {
		t.Fatalf("no explore totals for cyclic/all: %+v", st.Explore)
	}
	if et.GroupOrder != 20 || et.ProbeStates == 0 {
		t.Errorf("explore totals = %+v, want groupOrder 20 and probe activity", et)
	}
}

// TestPhilosophers12AllPredicates serves the 24-process philosophers12
// fixture with predicates=all under the fspd defaults (60s max timeout,
// no state budget): the antichain-pruned belief engine must decide S_a
// on the ~531k-state context well inside the deadline, and the verdict
// must be the ring's usual (Su=false, Sa=false, Sc=true).
func TestPhilosophers12AllPredicates(t *testing.T) {
	if testing.Short() {
		t.Skip("large fixture in -short mode")
	}
	src, err := os.ReadFile("../../testdata/philosophers12.fsp")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{MaxTimeout: 60 * time.Second})
	resp, ar := postJSON(t, ts.URL, AnalyzeRequest{Network: string(src)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ar.Record.Status != verdictjson.StatusOK {
		t.Fatalf("record = %+v, want a complete verdict", ar.Record)
	}
	if ar.Record.Su == nil || ar.Record.Sa == nil || ar.Record.Sc == nil {
		t.Fatalf("record = %+v, want all three predicates decided", ar.Record)
	}
	if *ar.Record.Su || *ar.Record.Sa || !*ar.Record.Sc {
		t.Errorf("verdict (Su=%v Sa=%v Sc=%v), want (false,false,true)",
			*ar.Record.Su, *ar.Record.Sa, *ar.Record.Sc)
	}
}
