package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"
)

func postBatch(t *testing.T, url string, breq BatchRequest) (*http.Response, BatchResponse) {
	t.Helper()
	body, err := json.Marshal(breq)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/analyze/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var bresp BatchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&bresp); err != nil {
			t.Fatalf("decoding batch response: %v", err)
		}
	}
	return resp, bresp
}

// overshootRE matches the wall-clock overshoot a deadline-stopped
// governor embeds in the partial reason.
var overshootRE = regexp.MustCompile(`[^ ]+ past the deadline`)

// normalizeResp re-marshals a response with the partial's elapsed field
// and the reason's overshoot zeroed — the only wall-clock-dependent
// content in a verdict. Everything else must match byte for byte.
func normalizeResp(t *testing.T, ar AnalyzeResponse) []byte {
	t.Helper()
	if ar.Record.Partial != nil {
		p := *ar.Record.Partial
		p.Elapsed = ""
		ar.Record.Partial = &p
		ar.Record.Reason = overshootRE.ReplaceAllString(ar.Record.Reason, "Xs past the deadline")
	}
	b, err := json.Marshal(ar)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestBatchMatchesSingleCalls is the batch contract: the response to a
// batch equals the responses to the same requests issued singly in the
// same order against an identically configured fresh server — cached
// flags, duplicate collapsing, warnings, and partials included.
func TestBatchMatchesSingleCalls(t *testing.T) {
	_, batchTS := newTestServer(t, Config{Workers: 2})
	_, singleTS := newTestServer(t, Config{Workers: 2})

	items := []AnalyzeRequest{
		{Network: netA},
		{Network: netB, Lint: true},
		{Network: netA},                 // duplicate: cached=true like a repeat call
		{Network: netAReformatted},      // same canonical network: also cached
		{Network: netC, Timeout: "1ns"}, // deadline at first poll: partial
		{Network: netN(9), Predicates: "reach"},
	}
	resp, bresp := postBatch(t, batchTS.URL, BatchRequest{Items: items})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	if len(bresp.Items) != len(items) {
		t.Fatalf("batch returned %d items, want %d", len(bresp.Items), len(items))
	}
	if bresp.Uniques != 4 {
		t.Errorf("uniques = %d, want 4 (netA and its reformatting collapse)", bresp.Uniques)
	}
	for i, req := range items {
		resp, single := postJSON(t, singleTS.URL, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("item %d single status %d", i, resp.StatusCode)
		}
		got, want := normalizeResp(t, bresp.Items[i]), normalizeResp(t, single)
		if !bytes.Equal(got, want) {
			t.Errorf("item %d batch != single:\nbatch:  %s\nsingle: %s", i, got, want)
		}
	}
	if bresp.Items[4].Record.Status != "partial" {
		t.Errorf("item 4 status = %q, want partial", bresp.Items[4].Record.Status)
	}

	// The batch must have run the same analyses as the singles. (Hits
	// differ by design: in-batch duplicates collapse before the cache,
	// so they surface as cached items without charging a lookup.)
	bs, ss := getStats(t, batchTS.URL), getStats(t, singleTS.URL)
	if bs.Misses != ss.Misses || bs.Requests != ss.Requests {
		t.Errorf("batch stats misses/requests = %d/%d, singles = %d/%d",
			bs.Misses, bs.Requests, ss.Misses, ss.Requests)
	}
	if bs.Batches != 1 || bs.BatchItems != int64(len(items)) {
		t.Errorf("batches/batchItems = %d/%d, want 1/%d", bs.Batches, bs.BatchItems, len(items))
	}
}

func TestBatchPerItemErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, bresp := postBatch(t, ts.URL, BatchRequest{Items: []AnalyzeRequest{
		{Network: "process P { broken !"},
		{Network: netA, Mode: "sideways"},
		{Network: netA, Timeout: "not-a-duration"},
		{Network: netA},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d, want 200 with per-item records", resp.StatusCode)
	}
	for i, wantFrag := range []string{"parsing network", "unknown mode", "bad timeout", ""} {
		rec := bresp.Items[i].Record
		if wantFrag == "" {
			if rec.Status != "ok" {
				t.Errorf("item %d = %+v, want ok", i, rec)
			}
			continue
		}
		if rec.Status != "error" || !strings.Contains(rec.Error, wantFrag) {
			t.Errorf("item %d = %+v, want error containing %q", i, rec, wantFrag)
		}
	}
	if bresp.Uniques != 1 {
		t.Errorf("uniques = %d, want 1 (only the valid item routes)", bresp.Uniques)
	}
}

func TestBatchRejectionsBecomeItemErrors(t *testing.T) {
	h := newBlockHook()
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Hook: h})
	_ = s

	// Park one single analysis inside the governor: it holds the only
	// worker slot and one of the two admission tickets.
	codes := postAsync(t, ts.URL, netN(50))
	<-h.entered

	// Three distinct uncached items compete for the one remaining
	// admission ticket: exactly one gets it, two are turned into
	// per-item queue-full records.
	type batchResult struct {
		resp  *http.Response
		bresp BatchResponse
	}
	results := make(chan batchResult, 1)
	go func() {
		body, _ := json.Marshal(BatchRequest{Items: []AnalyzeRequest{
			{Network: netN(51)}, {Network: netN(52)}, {Network: netN(53)},
		}})
		resp, err := http.Post(ts.URL+"/v1/analyze/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Error(err)
			results <- batchResult{}
			return
		}
		defer resp.Body.Close()
		var bresp BatchResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&bresp); err != nil {
				t.Error(err)
			}
		}
		results <- batchResult{resp: resp, bresp: bresp}
	}()

	// The two rejections happen immediately; then free the pool so the
	// admitted item (and the parked single) can finish.
	waitStats(t, ts.URL, func(st Stats) bool { return st.Rejected == 2 })
	close(h.release)

	res := <-results
	if res.resp == nil || res.resp.StatusCode != http.StatusOK {
		t.Fatalf("batch response = %+v, want 200", res.resp)
	}
	if <-codes != http.StatusOK {
		t.Fatal("parked single did not complete")
	}
	ok, rejected := 0, 0
	for _, item := range res.bresp.Items {
		switch {
		case item.Record.Status == "ok":
			ok++
		case strings.Contains(item.Record.Error, "queue is full"):
			rejected++
		default:
			t.Errorf("unexpected item record %+v", item.Record)
		}
	}
	if ok != 1 || rejected != 2 {
		t.Errorf("ok/rejected items = %d/%d, want 1/2", ok, rejected)
	}
}

func TestBodyCaps(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 128, MaxBatchBytes: 1024, MaxBatchItems: 2})

	big := netA + "\n# " + strings.Repeat("x", 256)
	resp, err := http.Post(ts.URL+"/v1/analyze", "text/plain", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized analyze body: status %d, want 413", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/v1/lint", "text/plain", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized lint body: status %d, want 413", resp.StatusCode)
	}

	// In a batch, an oversized item is a per-item record, not a 413.
	resp, bresp := postBatch(t, ts.URL, BatchRequest{Items: []AnalyzeRequest{
		{Network: netA}, {Network: big},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch with oversized item: status %d", resp.StatusCode)
	}
	if bresp.Items[0].Record.Status != "ok" {
		t.Errorf("normal item = %+v", bresp.Items[0].Record)
	}
	if bresp.Items[1].Record.Status != "error" || !strings.Contains(bresp.Items[1].Record.Error, "too large") {
		t.Errorf("oversized item = %+v, want body-too-large error", bresp.Items[1].Record)
	}

	// Whole-batch caps stay hard 413s.
	if resp, _ := postBatch(t, ts.URL, BatchRequest{Items: []AnalyzeRequest{
		{Network: netA}, {Network: netB}, {Network: netC},
	}}); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("over item cap: status %d, want 413", resp.StatusCode)
	}
	body, _ := json.Marshal(BatchRequest{Items: []AnalyzeRequest{{Network: strings.Repeat("y", 2048)}}})
	resp, err = http.Post(ts.URL+"/v1/analyze/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("over batch byte cap: status %d, want 413", resp.StatusCode)
	}

	// One under the cap still works.
	if resp, _ := postJSON(t, ts.URL, AnalyzeRequest{Network: netA}); resp.StatusCode != http.StatusOK {
		t.Errorf("under-cap analyze: status %d, want 200", resp.StatusCode)
	}
	if resp, _ := postBatch(t, ts.URL, BatchRequest{}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", resp.StatusCode)
	}
}

func TestVerdictMalformedDigest(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, bad := range []string{
		"zzz",
		strings.Repeat("0", 63),
		strings.Repeat("0", 65),
		strings.ToUpper(strings.Repeat("ab", 32)),
	} {
		resp, err := http.Get(ts.URL + "/v1/verdict/" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("verdict %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestVerdictReadThroughAfterEviction pins the L2 semantics on the
// lookup endpoint itself: a digest evicted from the LRU but still on
// disk is served (and promoted back into memory) by GET /v1/verdict.
func TestVerdictReadThroughAfterEviction(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{Workers: 1, CacheEntries: 1, Store: StoreConfig{Dir: dir}})

	_, first := postJSON(t, ts.URL, AnalyzeRequest{Network: netA})
	if resp, _ := postJSON(t, ts.URL, AnalyzeRequest{Network: netB}); resp.StatusCode != http.StatusOK {
		t.Fatal("second analyze failed")
	}

	resp, err := http.Get(ts.URL + "/v1/verdict/" + first.Digest)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evicted digest lookup: status %d, want 200 via read-through", resp.StatusCode)
	}
	var got AnalyzeResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(first.Record)
	b, _ := json.Marshal(got.Record)
	if !bytes.Equal(a, b) {
		t.Errorf("read-through record differs:\n%s\n%s", a, b)
	}
	st := getStats(t, ts.URL)
	if st.DiskHits != 1 {
		t.Errorf("diskHits = %d, want 1", st.DiskHits)
	}
	// Promotion put it back in the 1-entry LRU: the next lookup is pure
	// memory.
	resp2, err := http.Get(ts.URL + "/v1/verdict/" + first.Digest)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if st := getStats(t, ts.URL); st.DiskHits != 1 {
		t.Errorf("diskHits after promoted lookup = %d, want still 1", st.DiskHits)
	}
}

// TestBatchClientGone: a batch whose client disconnects mid-run must
// not leak goroutines or write to a dead connection; the work itself
// completes and lands in the cache.
func TestBatchClientGone(t *testing.T) {
	h := newBlockHook()
	_, ts := newTestServer(t, Config{Workers: 1, Hook: h})

	body, _ := json.Marshal(BatchRequest{Items: []AnalyzeRequest{{Network: netN(60)}}})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/analyze/batch", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 200 * time.Millisecond}
	if _, err := client.Do(req); err == nil {
		t.Fatal("batch returned before release, want client timeout")
	}
	close(h.release)

	// The abandoned run still finishes and populates the cache: the next
	// request for the same network is a hit.
	waitStats(t, ts.URL, func(st Stats) bool { return st.Misses == 1 })
	if _, ar := postJSON(t, ts.URL, AnalyzeRequest{Network: netN(60)}); !ar.Cached {
		t.Error("verdict of abandoned batch not cached")
	}
}
