package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"fspnet/internal/verdictjson"
)

// Digest is the content address of one analysis request: the SHA-256 of
// the canonical fsplang text (`fsplang.Format` output, which satisfies
// Format∘Parse∘Format = Format) followed by the resolved request
// parameters. Two requests that differ only in whitespace, comments, or
// state naming order of the same canonical network therefore share a
// digest, and a cached verdict answers both.
func Digest(canonical string, process int, mode, predicates string) string {
	h := sha256.New()
	h.Write([]byte(canonical))
	fmt.Fprintf(h, "\x00p=%d\x00mode=%s\x00pred=%s", process, mode, predicates)
	return hex.EncodeToString(h.Sum(nil))
}

// cache is a bounded LRU of completed verdict records keyed by Digest.
// Only StatusOK records are stored: a partial verdict is a function of
// the request's budget, not of the network alone, and a later request
// with a looser budget may still complete.
type cache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	evictions uint64
}

type cacheEntry struct {
	key string
	rec verdictjson.Record
}

func newCache(capacity int) *cache {
	if capacity <= 0 {
		capacity = 1024
	}
	return &cache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the record for key and refreshes its recency.
func (c *cache) get(key string) (verdictjson.Record, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return verdictjson.Record{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).rec, true
}

// add inserts (or refreshes) key → rec, evicting the least recently used
// entry when the cache is full.
func (c *cache) add(key string, rec verdictjson.Record) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).rec = rec
		return
	}
	if c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		if oldest != nil {
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(*cacheEntry).key)
			c.evictions++
		}
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, rec: rec})
}

// len reports the number of cached verdicts.
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// evicted reports how many entries have been evicted since start.
func (c *cache) evicted() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}
