package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
)

// Digest is the content address of one analysis request: the SHA-256 of
// the canonical fsplang text (`fsplang.Format` output, which satisfies
// Format∘Parse∘Format = Format) followed by the resolved request
// parameters. Two requests that differ only in whitespace, comments, or
// state naming order of the same canonical network therefore share a
// digest, and a cached verdict answers both.
func Digest(canonical string, process int, mode, predicates string) string {
	h := sha256.New()
	h.Write([]byte(canonical))
	fmt.Fprintf(h, "\x00p=%d\x00mode=%s\x00pred=%s", process, mode, predicates)
	return hex.EncodeToString(h.Sum(nil))
}

// LintDigest is the content address of a lint result: the SHA-256 of the
// same canonical text Digest hashes, under a distinct domain separator —
// lint results depend on nothing but the canonical network.
func LintDigest(canonical string) string {
	h := sha256.New()
	h.Write([]byte(canonical))
	h.Write([]byte("\x00lint"))
	return hex.EncodeToString(h.Sum(nil))
}

// lru is a bounded, mutex-guarded least-recently-used cache keyed by
// digest strings. The server keeps one for completed verdict records and
// one for speclint diagnostics; both key on the canonical network text,
// so results are a pure function of the key and an entry can never go
// stale.
type lru[V any] struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	evictions uint64
}

type lruEntry[V any] struct {
	key string
	val V
}

func newLRU[V any](capacity int) *lru[V] {
	if capacity <= 0 {
		capacity = 1024
	}
	return &lru[V]{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the value for key and refreshes its recency.
func (c *lru[V]) get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry[V]).val, true
}

// add inserts (or refreshes) key → val, evicting the least recently used
// entry when the cache is full. Eviction is memory-only: the persistent
// verdict store keeps its copy, and the read-through path restores an
// evicted digest on its next request.
func (c *lru[V]) add(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry[V]).val = val
		return
	}
	if c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		if oldest != nil {
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(*lruEntry[V]).key)
			c.evictions++
		}
	}
	c.items[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: val})
}

// len reports the number of cached values.
func (c *lru[V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// evicted reports how many entries have been evicted since start.
func (c *lru[V]) evicted() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}
