package serve

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fspnet/internal/explore"
	"fspnet/internal/game/belief"
)

// Stats is one /statusz snapshot: monotone counters since process start,
// the current gauges, and per-predicate-class latency quantiles. All
// counters tally POST /v1/analyze traffic; GET /v1/verdict digest
// lookups refresh LRU recency but perturb no counter.
type Stats struct {
	// Requests counts POST /v1/analyze requests accepted for processing
	// (including ones later rejected by admission control).
	Requests int64 `json:"requests"`
	// Hits counts requests answered from the verdict cache (memory or
	// disk read-through).
	Hits int64 `json:"hits"`
	// DiskHits counts the subset of lookups the persistent store answered
	// after the LRU had evicted the digest — the read-through path.
	DiskHits int64 `json:"diskHits"`
	// Misses counts requests that ran an analysis to completion and
	// populated the cache.
	Misses int64 `json:"misses"`
	// Deduped counts requests that joined an identical in-flight analysis
	// instead of starting their own — the single-flight path. A deduped
	// request increments neither Hits nor Misses; the flight's leader
	// accounts for the one run.
	Deduped int64 `json:"deduped"`
	// Evictions counts verdicts dropped from memory by the LRU bound; the
	// persistent store keeps its copy for read-through.
	Evictions int64 `json:"evictions"`
	// Batches counts POST /v1/analyze/batch requests; BatchItems the items
	// they carried. Each valid item also counts into Requests.
	Batches    int64 `json:"batches"`
	BatchItems int64 `json:"batchItems"`
	// Rejected counts requests turned away with 429 by admission control.
	Rejected int64 `json:"rejected"`
	// Canceled counts requests whose client disconnected mid-analysis.
	Canceled int64 `json:"canceled"`
	// Partials counts governed runs stopped early (deadline, budget,
	// drain) that returned a partial verdict.
	Partials int64 `json:"partials"`
	// Errors counts analyses that failed outside the governor.
	Errors int64 `json:"errors"`
	// Inflight is the number of analyses running right now.
	Inflight int64 `json:"inflight"`
	// Queued is the number of admitted requests waiting for a worker.
	Queued int64 `json:"queued"`
	// CacheEntries is the current verdict cache population.
	CacheEntries int `json:"cacheEntries"`
	// Lints counts POST /v1/lint requests.
	Lints int64 `json:"lints"`
	// LintHits counts lint answers served from the lint cache, including
	// warnings attached to /v1/analyze responses.
	LintHits int64 `json:"lintHits"`
	// LintMisses counts lint runs that computed diagnostics and populated
	// the lint cache.
	LintMisses int64 `json:"lintMisses"`
	// LintEntries is the current lint cache population.
	LintEntries int `json:"lintEntries"`
	// LintEvictions counts lint diagnostics dropped by the LRU bound.
	LintEvictions int64 `json:"lintEvictions"`
	// Store reports the persistent verdict store's health and on-disk
	// shape; state "disabled" means no cache directory is configured.
	Store *StoreStats `json:"store"`
	// Uptime is wall time since the server was built.
	Uptime string `json:"uptime"`
	// Runtime is the Go runtime's view of this process, sampled at
	// snapshot time — the fields fspload runs correlate with latency.
	Runtime RuntimeStats `json:"runtime"`
	// Latency maps "<mode>/<predicates>" (e.g. "cyclic/all",
	// "acyclic/reach") to quantiles over the most recent completed
	// analyses of that class. Cache hits are not included — they measure
	// the map lookup, not the solver.
	Latency map[string]Quantiles `json:"latency,omitempty"`
	// Belief maps "<mode>/all" to running totals of the S_a belief-engine
	// counters of completed analyses of that class. predicates=reach
	// classes never run the belief engine and report nothing.
	Belief map[string]BeliefTotals `json:"belief,omitempty"`
	// Explore maps "<mode>/<predicates>" to running totals of the S_u/S_c
	// explore-engine counters of completed analyses of that class,
	// including the symmetry-reduction yield (orbit hits, states the
	// representatives stand for, probe visits).
	Explore map[string]ExploreTotals `json:"explore,omitempty"`
}

// RuntimeStats is the process-level runtime sample attached to every
// /statusz snapshot (fspd and fsprouter alike): scheduler shape and heap
// pressure, so a load run can tell queueing delay from GC pressure.
type RuntimeStats struct {
	// Goroutines is the live goroutine count.
	Goroutines int `json:"goroutines"`
	// Gomaxprocs is the scheduler's processor limit.
	Gomaxprocs int `json:"gomaxprocs"`
	// HeapInuseBytes and HeapAllocBytes are runtime.MemStats.HeapInuse and
	// .HeapAlloc; SysBytes is total memory obtained from the OS.
	HeapInuseBytes uint64 `json:"heapInuseBytes"`
	HeapAllocBytes uint64 `json:"heapAllocBytes"`
	SysBytes       uint64 `json:"sysBytes"`
	// NumGC counts completed GC cycles since process start.
	NumGC uint32 `json:"numGC"`
}

// ReadRuntime samples the Go runtime. Exported so cmd/fsprouter's status
// aggregator reports the router process with the same fields as its
// workers.
func ReadRuntime() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeStats{
		Goroutines:     runtime.NumGoroutine(),
		Gomaxprocs:     runtime.GOMAXPROCS(0),
		HeapInuseBytes: ms.HeapInuse,
		HeapAllocBytes: ms.HeapAlloc,
		SysBytes:       ms.Sys,
		NumGC:          ms.NumGC,
	}
}

// BeliefTotals accumulates belief-engine counters over one class's
// completed analyses; Workers and GroupOrder are the most recent run's
// values (configuration echoes, not sums).
type BeliefTotals struct {
	Analyses      int64 `json:"analyses"`
	CtxStates     int64 `json:"ctxStates"`
	Beliefs       int64 `json:"beliefs"`
	Positions     int64 `json:"positions"`
	AntichainHits int64 `json:"antichainHits"`
	Pruned        int64 `json:"pruned"`
	Workers       int   `json:"workers"`
	// GroupOrder echoes the last run's dist-stabilizer subgroup order;
	// SymHits sums context canonicalization hits and ProbeStates the raw
	// vectors the witness probes visited.
	GroupOrder  int   `json:"groupOrder"`
	SymHits     int64 `json:"symHits"`
	ProbeStates int64 `json:"probeStates"`
}

// ExploreTotals accumulates S_u/S_c explore-engine counters over one
// class's completed analyses; GroupOrder is the most recent run's
// discovered automorphism group order (an echo, not a sum).
type ExploreTotals struct {
	Analyses int64 `json:"analyses"`
	States   int64 `json:"states"`
	Moves    int64 `json:"moves"`
	// GroupOrder echoes the last run's automorphism group order; OrbitHits
	// sums successor canonicalizations that moved a vector, SymStates the
	// extra raw states the interned representatives stand for, and
	// ProbeStates the raw vectors the witness probes visited.
	GroupOrder  int   `json:"groupOrder"`
	OrbitHits   int64 `json:"orbitHits"`
	SymStates   int64 `json:"symStates"`
	ProbeStates int64 `json:"probeStates"`
}

// Quantiles summarize a latency sample window.
type Quantiles struct {
	Count int    `json:"count"` // samples currently in the window
	P50   string `json:"p50"`
	P90   string `json:"p90"`
	P99   string `json:"p99"`
}

// counters are the server's atomic tallies.
type counters struct {
	requests   atomic.Int64
	hits       atomic.Int64
	diskHits   atomic.Int64
	misses     atomic.Int64
	deduped    atomic.Int64
	rejected   atomic.Int64
	canceled   atomic.Int64
	partials   atomic.Int64
	errors     atomic.Int64
	inflight   atomic.Int64
	queued     atomic.Int64
	batches    atomic.Int64
	batchItems atomic.Int64

	lints      atomic.Int64
	lintHits   atomic.Int64
	lintMisses atomic.Int64
}

// latencyWindow is the per-class sample bound; old samples are
// overwritten ring-buffer style so quantiles track recent behavior.
const latencyWindow = 512

type latencyRing struct {
	buf  []time.Duration
	next int
	n    int
}

// latencyRecorder keeps one bounded ring of duration samples per
// "<mode>/<predicates>" class.
type latencyRecorder struct {
	mu    sync.Mutex
	rings map[string]*latencyRing
}

func newLatencyRecorder() *latencyRecorder {
	return &latencyRecorder{rings: make(map[string]*latencyRing)}
}

func (l *latencyRecorder) record(class string, d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	r := l.rings[class]
	if r == nil {
		r = &latencyRing{buf: make([]time.Duration, latencyWindow)}
		l.rings[class] = r
	}
	r.buf[r.next] = d
	r.next = (r.next + 1) % latencyWindow
	if r.n < latencyWindow {
		r.n++
	}
}

// snapshot computes the quantiles of every class's current window.
func (l *latencyRecorder) snapshot() map[string]Quantiles {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.rings) == 0 {
		return nil
	}
	out := make(map[string]Quantiles, len(l.rings))
	for class, r := range l.rings {
		samples := make([]time.Duration, r.n)
		copy(samples, r.buf[:r.n])
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		out[class] = Quantiles{
			Count: r.n,
			P50:   quantile(samples, 0.50).String(),
			P90:   quantile(samples, 0.90).String(),
			P99:   quantile(samples, 0.99).String(),
		}
	}
	return out
}

// p90 returns the 90th-percentile latency of class's current window, or
// 0 when the class has no samples yet. The 429 path turns it into a
// Retry-After hint: one p90 analysis from now, a slot is likely free.
func (l *latencyRecorder) p90(class string) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	r := l.rings[class]
	if r == nil || r.n == 0 {
		return 0
	}
	samples := make([]time.Duration, r.n)
	copy(samples, r.buf[:r.n])
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return quantile(samples, 0.90)
}

// beliefRecorder accumulates per-class belief-engine counters, the same
// class keys the latency recorder uses.
type beliefRecorder struct {
	mu     sync.Mutex
	totals map[string]BeliefTotals
}

func newBeliefRecorder() *beliefRecorder {
	return &beliefRecorder{totals: make(map[string]BeliefTotals)}
}

func (b *beliefRecorder) record(class string, st belief.Stats) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.totals[class]
	t.Analyses++
	t.CtxStates += int64(st.CtxStates)
	t.Beliefs += int64(st.Beliefs)
	t.Positions += int64(st.Positions)
	t.AntichainHits += int64(st.AntichainHits)
	t.Pruned += int64(st.Pruned)
	t.Workers = st.Workers
	t.GroupOrder = st.GroupOrder
	t.SymHits += int64(st.SymHits)
	t.ProbeStates += int64(st.ProbeStates)
	b.totals[class] = t
}

func (b *beliefRecorder) snapshot() map[string]BeliefTotals {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.totals) == 0 {
		return nil
	}
	out := make(map[string]BeliefTotals, len(b.totals))
	for class, t := range b.totals {
		out[class] = t
	}
	return out
}

// exploreRecorder accumulates per-class explore-engine counters, the
// same class keys the latency recorder uses.
type exploreRecorder struct {
	mu     sync.Mutex
	totals map[string]ExploreTotals
}

func newExploreRecorder() *exploreRecorder {
	return &exploreRecorder{totals: make(map[string]ExploreTotals)}
}

func (e *exploreRecorder) record(class string, st explore.Stats) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t := e.totals[class]
	t.Analyses++
	t.States += int64(st.States)
	t.Moves += st.Moves
	t.GroupOrder = st.GroupOrder
	t.OrbitHits += st.OrbitHits
	t.SymStates += st.SymStates
	t.ProbeStates += int64(st.ProbeStates)
	e.totals[class] = t
}

func (e *exploreRecorder) snapshot() map[string]ExploreTotals {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.totals) == 0 {
		return nil
	}
	out := make(map[string]ExploreTotals, len(e.totals))
	for class, t := range e.totals {
		out[class] = t
	}
	return out
}

// quantile returns the q-th quantile of sorted samples (nearest rank).
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx].Round(time.Microsecond)
}
