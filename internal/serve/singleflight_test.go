// Tests pinning the single-flight contract: concurrent identical cache
// misses share one governed solver run — one misses increment,
// byte-identical response bodies — while requests that differ in their
// limits, and followers that disconnect, never disturb the shared run.
// Run under -race via the package's normal test invocation.
package serve

import (
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// postRaw issues a raw-body analyze POST and returns the status code and
// the exact response bytes (the single-flight tests compare bodies, not
// decoded structs).
func postRaw(t *testing.T, url, net string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/analyze", "text/plain", strings.NewReader(net))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestSingleFlightDedup parks the first request for a network inside the
// governor, piles follower requests for the same network on top, and
// requires one solver run to answer everyone with the same bytes.
func TestSingleFlightDedup(t *testing.T) {
	hook := newBlockHook()
	_, ts := newTestServer(t, Config{Workers: 4, Hook: hook})
	const clients = 8

	type reply struct {
		code int
		body string
	}
	replies := make(chan reply, clients)
	post := func() {
		code, body := postRaw(t, ts.URL, netA)
		replies <- reply{code, string(body)}
	}
	go post()
	<-hook.entered // the leader is parked inside its analysis
	for i := 1; i < clients; i++ {
		go post()
	}
	// Every follower has joined the flight (none may start its own run:
	// Workers is 4, so a second run would enter the hook, not queue).
	waitStats(t, ts.URL, func(st Stats) bool { return st.Deduped == clients-1 })
	close(hook.release)

	first := reply{}
	for i := 0; i < clients; i++ {
		r := <-replies
		if r.code != http.StatusOK {
			t.Fatalf("reply %d: status %d, want 200", i, r.code)
		}
		if i == 0 {
			first = r
		} else if r.body != first.body {
			t.Errorf("reply %d body differs:\n%s\nvs\n%s", i, r.body, first.body)
		}
	}
	st := getStats(t, ts.URL)
	if st.Misses != 1 || st.Hits != 0 || st.Deduped != clients-1 {
		t.Errorf("stats = misses=%d hits=%d deduped=%d, want 1/0/%d",
			st.Misses, st.Hits, st.Deduped, clients-1)
	}
	if st.CacheEntries != 1 {
		t.Errorf("cache entries = %d, want 1", st.CacheEntries)
	}
}

// TestSingleFlightDistinctLimits sends the same network with different
// budgets: the limits are part of the dedup key, so both requests must
// run their own analysis.
func TestSingleFlightDistinctLimits(t *testing.T) {
	hook := newBlockHook()
	_, ts := newTestServer(t, Config{Workers: 2, Hook: hook})

	a := postAsync(t, ts.URL, netA)
	<-hook.entered
	b := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/analyze?budget=100000", "text/plain", strings.NewReader(netA))
		if err != nil {
			b <- -1
			return
		}
		resp.Body.Close()
		b <- resp.StatusCode
	}()
	// Both analyses are in flight at once: no dedup across budgets.
	waitStats(t, ts.URL, func(st Stats) bool { return st.Inflight == 2 })
	close(hook.release)
	for i, codes := range []chan int{a, b} {
		if code := <-codes; code != http.StatusOK {
			t.Errorf("request %d: status %d, want 200", i, code)
		}
	}
	st := getStats(t, ts.URL)
	if st.Deduped != 0 || st.Misses != 2 {
		t.Errorf("stats = deduped=%d misses=%d, want 0/2", st.Deduped, st.Misses)
	}
}

// TestSingleFlightFollowerCancel disconnects a follower mid-flight: the
// follower tallies as canceled, and the leader's run — which the follower
// merely observed — completes undisturbed.
func TestSingleFlightFollowerCancel(t *testing.T) {
	hook := newBlockHook()
	_, ts := newTestServer(t, Config{Workers: 1, Hook: hook})

	leader := postAsync(t, ts.URL, netA)
	<-hook.entered
	ctx, cancel := context.WithCancel(context.Background())
	followerErr := cancelablePost(t, ctx, ts.URL, netA)
	waitStats(t, ts.URL, func(st Stats) bool { return st.Deduped == 1 })

	cancel() // the follower walks away
	if err := <-followerErr; err == nil {
		t.Error("canceled follower returned no client-side error")
	}
	waitStats(t, ts.URL, func(st Stats) bool { return st.Canceled == 1 })

	close(hook.release)
	if code := <-leader; code != http.StatusOK {
		t.Fatalf("leader finished with %d, want 200", code)
	}
	st := getStats(t, ts.URL)
	if st.Misses != 1 || st.CacheEntries != 1 {
		t.Errorf("follower cancel disturbed the run: misses=%d entries=%d, want 1/1", st.Misses, st.CacheEntries)
	}
}

// TestSingleFlightLeaderDisconnect walks the leader's client away while a
// follower still wants the answer: the run must survive on the
// follower's behalf and deliver it the complete verdict.
func TestSingleFlightLeaderDisconnect(t *testing.T) {
	hook := newBlockHook()
	_, ts := newTestServer(t, Config{Workers: 1, Hook: hook})

	ctx, cancel := context.WithCancel(context.Background())
	leaderErr := cancelablePost(t, ctx, ts.URL, netA)
	<-hook.entered
	follower := postAsync(t, ts.URL, netA)
	waitStats(t, ts.URL, func(st Stats) bool { return st.Deduped == 1 })

	cancel() // the leader's client walks away; the follower keeps the run alive
	if err := <-leaderErr; err == nil {
		t.Error("canceled leader returned no client-side error")
	}
	close(hook.release)
	if code := <-follower; code != http.StatusOK {
		t.Fatalf("follower finished with %d, want 200", code)
	}
	st := getStats(t, ts.URL)
	if st.Misses != 1 || st.CacheEntries != 1 {
		t.Errorf("leader disconnect killed the shared run: misses=%d entries=%d, want 1/1", st.Misses, st.CacheEntries)
	}
}

// TestSingleFlightConcurrentStress is the -race workout: many goroutines,
// few distinct networks, no hook — every reply must be a 200 or a 429,
// the answer accounting must balance, and the detector must stay quiet
// across the flight map, the waiter counts, and the result publication.
func TestSingleFlightConcurrentStress(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	nets := []string{netA, netB, netC}
	const perNet = 12
	var wg sync.WaitGroup
	for _, net := range nets {
		for i := 0; i < perNet; i++ {
			wg.Add(1)
			go func(net string) {
				defer wg.Done()
				code, _ := postRaw(t, ts.URL, net)
				if code != http.StatusOK {
					t.Errorf("status %d, want 200", code)
				}
			}(net)
		}
	}
	wg.Wait()
	st := getStats(t, ts.URL)
	if got := st.Hits + st.Misses + st.Deduped; got != int64(len(nets))*perNet {
		t.Errorf("hits+misses+deduped = %d, want %d (stats %+v)", got, len(nets)*perNet, st)
	}
	if st.Misses < int64(len(nets)) {
		t.Errorf("misses = %d, want at least one per distinct network", st.Misses)
	}
	if st.CacheEntries != len(nets) {
		t.Errorf("cache entries = %d, want %d", st.CacheEntries, len(nets))
	}
}
