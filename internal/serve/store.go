package serve

import (
	"sync"
	"time"

	"fspnet/internal/store"
	"fspnet/internal/verdictjson"
)

// Store health states reported in /statusz. The store is an accelerator,
// never a dependency: every state serves full traffic, the states differ
// only in whether verdicts survive a restart.
const (
	// StoreOK: writes are reaching disk.
	StoreOK = "ok"
	// StoreDegraded: the disk failed at runtime; the server dropped to
	// memory-only caching and probes for recovery with backoff.
	StoreDegraded = "degraded"
	// StoreDisabled: no -cache-dir was configured; memory-only by choice.
	StoreDisabled = "disabled"
)

// Degraded-mode defaults.
const (
	// DefaultStoreFailThreshold is how many consecutive I/O failures
	// quarantine the store into degraded mode.
	DefaultStoreFailThreshold = 3
	// DefaultStoreReopenMin/Max bound the exponential reopen backoff.
	DefaultStoreReopenMin = time.Second
	DefaultStoreReopenMax = 2 * time.Minute
)

// StoreConfig wires a persistent verdict store under the in-memory LRU.
type StoreConfig struct {
	// Dir is the store directory; empty disables persistence entirely.
	Dir string
	// Options configures the underlying store (record cap, segment size,
	// fault hook).
	Options store.Options
	// FailThreshold is the consecutive-error count that quarantines the
	// store; ≤ 0 means DefaultStoreFailThreshold.
	FailThreshold int
	// ReopenMin and ReopenMax bound the reopen backoff after quarantine;
	// ≤ 0 means the defaults. Backoff doubles per failed reopen attempt
	// and resets on success.
	ReopenMin, ReopenMax time.Duration
}

// StoreStats is the /statusz view of the persistence layer.
type StoreStats struct {
	// State is StoreOK, StoreDegraded, or StoreDisabled.
	State string `json:"state"`
	// Records / Segments / Bytes describe the live on-disk set.
	Records  int   `json:"records"`
	Segments int   `json:"segments"`
	Bytes    int64 `json:"bytes"`
	// Replayed is the record count the last successful open recovered.
	Replayed int `json:"replayed"`
	// TruncatedBytes counts torn-tail bytes the last open repaired.
	TruncatedBytes int64 `json:"truncatedBytes"`
	// Compactions and Dropped mirror the store's compaction counters.
	Compactions int64 `json:"compactions"`
	Dropped     int64 `json:"dropped"`
	// IOErrors counts store operations that failed — failed writes (each
	// rolled back) and failed read-throughs alike.
	IOErrors int64 `json:"ioErrors"`
	// DroppedWrites counts write-throughs skipped while not StoreOK.
	DroppedWrites int64 `json:"droppedWrites"`
	// Quarantines counts transitions into degraded mode.
	Quarantines int64 `json:"quarantines"`
	// Reopens counts successful recoveries out of degraded mode.
	Reopens int64 `json:"reopens"`
	// LastError is the most recent store failure, empty when healthy.
	LastError string `json:"lastError,omitempty"`
}

// storeKeeper owns the Server's store handle and its failure policy:
// write-through on the miss path, quarantine after FailThreshold
// consecutive I/O errors, background reopen with exponential backoff. A
// store error never propagates to a request — the worst outcome of a
// dead disk is memory-only caching.
type storeKeeper struct {
	cfg  StoreConfig
	logf func(format string, args ...any)

	mu          sync.Mutex
	st          *store.Store // nil when disabled or quarantined
	state       string
	consecFails int
	backoff     time.Duration
	nextReopen  time.Time
	reopening   bool

	ioErrors      int64
	droppedWrites int64
	quarantines   int64
	reopens       int64
	lastErr       string

	// lastStats holds the stats snapshot of the most recent healthy store,
	// so /statusz keeps reporting the on-disk shape through a quarantine.
	lastStats store.Stats
}

// newStoreKeeper opens cfg.Dir (empty → disabled keeper). A failed
// initial open does not fail server construction: the keeper starts
// degraded and probes for the disk with backoff, the same policy as a
// runtime quarantine.
func newStoreKeeper(cfg StoreConfig, logf func(string, ...any)) *storeKeeper {
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = DefaultStoreFailThreshold
	}
	if cfg.ReopenMin <= 0 {
		cfg.ReopenMin = DefaultStoreReopenMin
	}
	if cfg.ReopenMax <= 0 {
		cfg.ReopenMax = DefaultStoreReopenMax
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	k := &storeKeeper{cfg: cfg, logf: logf, backoff: cfg.ReopenMin}
	if cfg.Dir == "" {
		k.state = StoreDisabled
		return k
	}
	st, err := store.Open(cfg.Dir, cfg.Options)
	if err != nil {
		k.state = StoreDegraded
		k.lastErr = err.Error()
		k.quarantines++
		k.nextReopen = time.Now().Add(k.backoff) //fsplint:ignore detrand reopen-backoff deadline
		k.logf("verdict store: open %s failed, starting degraded: %v", cfg.Dir, err)
		return k
	}
	k.st = st
	k.state = StoreOK
	k.lastStats = st.ReadStats()
	return k
}

// warmLoad replays the persisted verdicts into the cache, oldest first,
// so the LRU keeps the newest when the disk set exceeds the memory cap.
// Overflowing the cache during the load is harmless: eviction is
// memory-only and the read-through path restores the evicted digests on
// demand.
func (k *storeKeeper) warmLoad(cache *lru[verdictjson.Record]) int {
	k.mu.Lock()
	st := k.st
	k.mu.Unlock()
	if st == nil {
		return 0
	}
	n := 0
	if err := st.Range(func(digest string, rec verdictjson.Record) bool {
		cache.add(digest, rec)
		n++
		return true
	}); err != nil {
		k.logf("verdict store: warm load stopped: %v", err)
	}
	return n
}

// put write-throughs a freshly computed verdict. Failures are absorbed.
func (k *storeKeeper) put(digest string, rec verdictjson.Record) {
	k.withStore(func(st *store.Store) error { return st.Put(digest, rec) })
}

// get is the read-through under the LRU: it serves a digest that is
// still on disk after a memory eviction (or that another life of this
// process persisted). A miss is a clean false; an I/O failure counts
// toward quarantine exactly like a failed write and reports a miss, so
// a dying disk degrades to recomputation, never to request failures.
func (k *storeKeeper) get(digest string) (verdictjson.Record, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.st == nil {
		if k.state == StoreDegraded {
			k.maybeReopenLocked()
		}
		return verdictjson.Record{}, false
	}
	rec, ok, err := k.st.Get(digest)
	if err != nil {
		k.ioErrors++
		k.consecFails++
		k.lastErr = err.Error()
		if k.consecFails >= k.cfg.FailThreshold {
			k.quarantineLocked()
		}
		return verdictjson.Record{}, false
	}
	if ok {
		k.consecFails = 0
	}
	return rec, ok
}

// withStore runs op against the live store, applying the failure policy.
func (k *storeKeeper) withStore(op func(*store.Store) error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.st == nil {
		if k.state == StoreDegraded {
			k.droppedWrites++
			k.maybeReopenLocked()
		}
		return
	}
	// The store serializes internally; holding the keeper lock across the
	// call keeps the error accounting exact and is safe because the store
	// never calls back into the keeper.
	if err := op(k.st); err != nil {
		k.ioErrors++
		k.consecFails++
		k.lastErr = err.Error()
		if k.consecFails >= k.cfg.FailThreshold {
			k.quarantineLocked()
		}
		return
	}
	k.consecFails = 0
	k.lastStats = k.st.ReadStats()
}

// quarantineLocked drops to memory-only mode: close the handle, arm the
// reopen backoff. Callers hold k.mu.
func (k *storeKeeper) quarantineLocked() {
	k.logf("verdict store: quarantined after %d consecutive errors, caching in memory only: %s",
		k.consecFails, k.lastErr)
	if k.st != nil {
		k.lastStats = k.st.ReadStats()
		_ = k.st.Close()
		k.st = nil
	}
	k.state = StoreDegraded
	k.consecFails = 0
	k.quarantines++
	k.backoff = k.cfg.ReopenMin
	k.nextReopen = time.Now().Add(k.backoff) //fsplint:ignore detrand reopen-backoff deadline
}

// maybeReopenLocked starts one background reopen attempt when the
// backoff deadline has passed. Reopen is traffic-driven (checked on each
// dropped write) rather than timer-driven, so an idle degraded server
// spends nothing. Callers hold k.mu.
func (k *storeKeeper) maybeReopenLocked() {
	if k.reopening || time.Now().Before(k.nextReopen) { //fsplint:ignore detrand reopen-backoff deadline
		return
	}
	k.reopening = true
	go func() {
		st, err := store.Open(k.cfg.Dir, k.cfg.Options)
		k.mu.Lock()
		defer k.mu.Unlock()
		k.reopening = false
		if k.state != StoreDegraded {
			// Closed or reconfigured while we were probing.
			if st != nil {
				_ = st.Close()
			}
			return
		}
		if err != nil {
			k.lastErr = err.Error()
			k.backoff *= 2
			if k.backoff > k.cfg.ReopenMax {
				k.backoff = k.cfg.ReopenMax
			}
			k.nextReopen = time.Now().Add(k.backoff) //fsplint:ignore detrand reopen-backoff deadline
			return
		}
		k.st = st
		k.state = StoreOK
		k.reopens++
		k.backoff = k.cfg.ReopenMin
		k.lastErr = ""
		k.lastStats = st.ReadStats()
		k.logf("verdict store: reopened %s, persistence restored", k.cfg.Dir)
	}()
}

// snapshot builds the /statusz view.
func (k *storeKeeper) snapshot() *StoreStats {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := &StoreStats{
		State:         k.state,
		IOErrors:      k.ioErrors,
		DroppedWrites: k.droppedWrites,
		Quarantines:   k.quarantines,
		Reopens:       k.reopens,
		LastError:     k.lastErr,
	}
	st := k.lastStats
	if k.st != nil {
		st = k.st.ReadStats()
	}
	out.Records = st.Records
	out.Segments = st.Segments
	out.Bytes = st.Bytes
	out.Replayed = st.Replayed
	out.TruncatedBytes = st.TruncatedBytes
	out.Compactions = st.Compactions
	out.Dropped = st.Dropped
	return out
}

// close shuts the store down; further write-throughs are dropped.
func (k *storeKeeper) close() error {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.state = StoreDisabled
	if k.st == nil {
		return nil
	}
	err := k.st.Close()
	k.st = nil
	return err
}
