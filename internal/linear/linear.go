// Package linear implements Proposition 1: for networks in which every
// process is a linear FSP, the three success predicates coincide and can
// be decided in near-linear time via the matched-pair construction on the
// graph H of non-τ transitions.
package linear

import (
	"errors"
	"fmt"

	"fspnet/internal/fsp"
	"fspnet/internal/network"
)

// ErrNotLinear reports a process that is not a linear FSP.
var ErrNotLinear = errors.New("linear: process is not linear")

// Analyze decides the common value of S_u = S_a = S_c for the
// distinguished process dist of an all-linear network.
//
// Following the proof of Proposition 1: build H (one linear order of non-τ
// transitions per process), match the t-th occurrence of each action in
// one owner with the t-th occurrence in the other, iteratively delete
// unmatched transitions together with their successors, and finally test
// the matched-pair dependency graph H′ (restricted to predecessors of the
// distinguished process's pairs) for acyclicity.
func Analyze(n *network.Network, dist int) (bool, error) {
	m := n.Len()
	if dist < 0 || dist >= m {
		return false, fmt.Errorf("linear: distinguished index %d: %w", dist, network.ErrBadIndex)
	}
	// Extract per-process action sequences.
	seqs := make([][]fsp.Action, m)
	for i := 0; i < m; i++ {
		p := n.Process(i)
		if c := p.Classify(); c != fsp.ClassLinear {
			return false, fmt.Errorf("%s is %s: %w", p.Name(), c, ErrNotLinear)
		}
		seqs[i] = linearSequence(p)
	}
	// partner[a] = the two owners of action a.
	partner := make(map[fsp.Action][2]int)
	for i := 0; i < m; i++ {
		for _, a := range n.Process(i).Alphabet() {
			pr, ok := partner[a]
			if !ok {
				partner[a] = [2]int{i, -1}
			} else {
				pr[1] = i
				partner[a] = pr
			}
		}
	}
	other := func(a fsp.Action, i int) int {
		pr := partner[a]
		if pr[0] == i {
			return pr[1]
		}
		return pr[0]
	}

	// Deletion phase: alive[i] is the surviving prefix length of process i.
	alive := make([]int, m)
	for i := range alive {
		alive[i] = len(seqs[i])
	}
	countIn := func(i int, a fsp.Action, upto int) int {
		c := 0
		for k := 0; k < upto; k++ {
			if seqs[i][k] == a {
				c++
			}
		}
		return c
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < m; i++ {
			occ := make(map[fsp.Action]int)
			for k := 0; k < alive[i]; k++ {
				a := seqs[i][k]
				t := occ[a]
				occ[a] = t + 1
				j := other(a, i)
				if j < 0 || countIn(j, a, alive[j]) <= t {
					// Unmatched: delete this node and all successors.
					alive[i] = k
					changed = true
					break
				}
			}
		}
	}

	// S_c fails outright if any transition of the distinguished process
	// was deleted.
	if alive[dist] < len(seqs[dist]) {
		return false, nil
	}
	if len(seqs[dist]) == 0 {
		return true, nil // P is a lone leaf: trivially successful
	}

	// Build H′ on matched pairs. pairID[(i,k)] identifies the pair of the
	// k-th alive transition of process i; both owners share the ID.
	type slot struct{ i, k int }
	pairID := make(map[slot]int)
	nextID := 0
	for i := 0; i < m; i++ {
		occ := make(map[fsp.Action]int)
		for k := 0; k < alive[i]; k++ {
			a := seqs[i][k]
			t := occ[a]
			occ[a] = t + 1
			j := other(a, i)
			if j < i {
				continue // pair created from the smaller-index owner
			}
			id := nextID
			nextID++
			pairID[slot{i, k}] = id
			// t-th occurrence of a in j (within its alive prefix).
			kt := occurrencePosition(seqs[j], alive[j], a, t)
			pairID[slot{j, kt}] = id
		}
	}
	// Edges: consecutive alive transitions within each process.
	adj := make([][]int, nextID)
	radj := make([][]int, nextID)
	for i := 0; i < m; i++ {
		for k := 0; k+1 < alive[i]; k++ {
			u := pairID[slot{i, k}]
			v := pairID[slot{i, k + 1}]
			adj[u] = append(adj[u], v)
			radj[v] = append(radj[v], u)
		}
	}
	// Keep only pairs that are (reflexive-transitive) predecessors of a
	// pair involving the distinguished process.
	keep := make([]bool, nextID)
	var stack []int
	for k := 0; k < alive[dist]; k++ {
		id := pairID[slot{dist, k}]
		if !keep[id] {
			keep[id] = true
			stack = append(stack, id)
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range radj[v] {
			if !keep[u] {
				keep[u] = true
				stack = append(stack, u)
			}
		}
	}
	// H′ acyclic ⇔ success.
	return acyclicSub(adj, keep), nil
}

// linearSequence returns the non-τ action sequence along the unique path
// of a linear FSP.
func linearSequence(p *fsp.FSP) []fsp.Action {
	var seq []fsp.Action
	s := p.Start()
	for {
		out := p.Out(s)
		if len(out) == 0 {
			return seq
		}
		t := out[0]
		if t.Label != fsp.Tau {
			seq = append(seq, t.Label)
		}
		s = t.To
	}
}

// occurrencePosition returns the index of the t-th occurrence of a within
// the first upto entries of seq; it panics if absent, which the matching
// phase guarantees cannot happen.
func occurrencePosition(seq []fsp.Action, upto int, a fsp.Action, t int) int {
	c := 0
	for k := 0; k < upto; k++ {
		if seq[k] == a {
			if c == t {
				return k
			}
			c++
		}
	}
	panic("linear: matched occurrence not found")
}

// acyclicSub reports whether the subgraph induced by keep is acyclic.
func acyclicSub(adj [][]int, keep []bool) bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]byte, len(adj))
	type frame struct{ v, i int }
	for root := range adj {
		if !keep[root] || color[root] != white {
			continue
		}
		stack := []frame{{root, 0}}
		color[root] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			advanced := false
			for f.i < len(adj[f.v]) {
				w := adj[f.v][f.i]
				f.i++
				if !keep[w] {
					continue
				}
				if color[w] == gray {
					return false
				}
				if color[w] == white {
					color[w] = gray
					stack = append(stack, frame{w, 0})
					advanced = true
					break
				}
			}
			if !advanced && f.i >= len(adj[f.v]) {
				color[f.v] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return true
}
