package linear

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"fspnet/internal/fsp"
	"fspnet/internal/network"
	"fspnet/internal/success"
)

func TestAnalyzeHappyChain(t *testing.T) {
	// P0 -x- P1 -y- P2, every handshake possible in order.
	n := network.MustNew(
		fsp.Linear("P0", "x"),
		fsp.Linear("P1", "x", "y"),
		fsp.Linear("P2", "y"),
	)
	ok, err := Analyze(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("chain must succeed")
	}
}

func TestAnalyzeCrossingDeadlock(t *testing.T) {
	// P1 wants a then b; P2 wants b then a: classic circular wait.
	n := network.MustNew(
		fsp.Linear("P1", "a", "b"),
		fsp.Linear("P2", "b", "a"),
	)
	ok, err := Analyze(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("crossing handshakes deadlock: success must fail")
	}
}

func TestAnalyzeUnmatchedDeletion(t *testing.T) {
	// P1 wants two a-handshakes but P2 offers only one: the second is
	// deleted and P1 cannot finish.
	n := network.MustNew(
		fsp.Linear("P1", "a", "a"),
		fsp.Linear("P2", "a"),
	)
	ok, err := Analyze(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("P1's second a is unmatched: success must fail")
	}
	// From P2's side everything it wants does happen.
	ok2, err := Analyze(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ok2 {
		t.Error("P2's single a is matched: success must hold")
	}
}

func TestAnalyzeEmptyDistinguished(t *testing.T) {
	b := fsp.NewBuilder("P0")
	b.State("0")
	p0 := b.MustBuild()
	n := network.MustNew(p0, fsp.Linear("P1", "z"), fsp.Linear("P2", "z"))
	ok, err := Analyze(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("a lone leaf succeeds trivially")
	}
}

func TestAnalyzeRejectsNonLinear(t *testing.T) {
	tree := fsp.TreeFromPaths("T", []fsp.Action{"a"}, []fsp.Action{"b"})
	n := network.MustNew(tree, fsp.Linear("P1", "a", "b"))
	if _, err := Analyze(n, 0); !errors.Is(err, ErrNotLinear) {
		t.Errorf("err = %v, want ErrNotLinear", err)
	}
	if _, err := Analyze(n, 7); !errors.Is(err, network.ErrBadIndex) {
		t.Errorf("err = %v, want ErrBadIndex", err)
	}
}

// randomLinearNetwork builds a random all-linear tree network: random tree
// topology, one action per edge, each process a random interleaving of its
// incident actions (each used ≥ 1 times).
func randomLinearNetwork(r *rand.Rand, m int) *network.Network {
	parent := make([]int, m)
	incident := make([][]fsp.Action, m)
	for i := 1; i < m; i++ {
		parent[i] = r.Intn(i)
		a := fsp.Action(fmt.Sprintf("e%d", i))
		incident[i] = append(incident[i], a)
		incident[parent[i]] = append(incident[parent[i]], a)
	}
	procs := make([]*fsp.FSP, m)
	for i := 0; i < m; i++ {
		var seq []fsp.Action
		// Random multiset: every incident action 1–3 times, shuffled.
		for _, a := range incident[i] {
			for k := 0; k < 1+r.Intn(3); k++ {
				seq = append(seq, a)
			}
		}
		r.Shuffle(len(seq), func(x, y int) { seq[x], seq[y] = seq[y], seq[x] })
		procs[i] = fsp.Linear(fmt.Sprintf("P%d", i), seq...)
	}
	return network.MustNew(procs...)
}

func TestAnalyzeAgainstReference(t *testing.T) {
	r := rand.New(rand.NewSource(301))
	for i := 0; i < 60; i++ {
		m := 2 + r.Intn(3)
		n := randomLinearNetwork(r, m)
		dist := r.Intn(m)
		got, err := Analyze(n, dist)
		if err != nil {
			t.Fatal(err)
		}
		want, err := success.AnalyzeAcyclic(n, dist)
		if err != nil {
			t.Fatal(err)
		}
		if want.Su != want.Sa || want.Sa != want.Sc {
			t.Fatalf("iter %d: Proposition 1 equality violated by reference: %v", i, want)
		}
		if got != want.Sc {
			t.Fatalf("iter %d: Analyze=%v reference=%v (dist=%d)\n%s",
				i, got, want, dist, dumpNetwork(n))
		}
	}
}

func dumpNetwork(n *network.Network) string {
	out := ""
	for i := 0; i < n.Len(); i++ {
		out += n.Process(i).DOT()
	}
	return out
}
