package cluster

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// DefaultMaxInflight bounds the proxied requests a router carries at
// once. Past the bound the router sheds with 429 instead of queueing:
// the workers run their own admission control, so a queue here would
// only add a second, invisible queue in front of theirs.
const DefaultMaxInflight = 256

// errAllWorkersDown reports that every candidate on the ring either
// refused the connection or answered 503.
var errAllWorkersDown = errors.New("cluster: no reachable worker")

// Config wires a Cluster.
type Config struct {
	// Workers are the fspd base URLs (e.g. http://10.0.0.1:8080). Order
	// defines worker indices and must match across routers for the rings
	// to agree.
	Workers []string
	// VNodes is the virtual-node count per worker; ≤ 0 means
	// DefaultVNodes.
	VNodes int
	// MaxInflight bounds concurrently proxied requests; ≤ 0 means
	// DefaultMaxInflight.
	MaxInflight int
	// Health tunes the prober.
	Health HealthConfig
	// Client is the forwarding HTTP client; nil gets a default with a
	// sane dial timeout. Probes share it.
	Client *http.Client
	// Logf receives operational events; nil discards them.
	Logf func(format string, args ...any)
}

// Cluster owns the ring, the prober, and the forwarding path. It is the
// transport half of the router: given a digest and a request builder it
// finds the digest's home worker, fails over along the ring when the
// home is unreachable, and feeds the health tracker with the evidence.
type Cluster struct {
	cfg    Config
	ring   *Ring
	health *health
	client *http.Client

	inflight  chan struct{}
	failovers atomic.Int64
	errAll    atomic.Int64
}

// New builds the cluster and starts the health prober; Close stops it.
func New(cfg Config) (*Cluster, error) {
	ring, err := NewRing(cfg.Workers, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Minute}
	}
	c := &Cluster{
		cfg:      cfg,
		ring:     ring,
		client:   client,
		inflight: make(chan struct{}, cfg.MaxInflight),
	}
	c.health = newHealth(ring.Workers(), cfg.Health, client, cfg.Logf)
	return c, nil
}

// Close stops the prober. In-flight forwards complete normally.
func (c *Cluster) Close() { c.health.close() }

// Ring exposes the ring for tests and the batch splitter.
func (c *Cluster) Ring() *Ring { return c.ring }

// acquire takes an in-flight slot without blocking; the caller sheds
// load when it reports false.
func (c *Cluster) acquire() bool {
	select {
	case c.inflight <- struct{}{}:
		return true
	default:
		return false
	}
}

func (c *Cluster) release() { <-c.inflight }

// candidates returns digest's failover order with health applied:
// healthy workers in ring order first, then — as a last resort, when
// everything looks down — the ejected ones in ring order. skip maps
// worker indices the caller has already tried this request.
func (c *Cluster) candidates(digest string, skip map[int]bool) ([]int, error) {
	order, err := c.ring.Successors(digest)
	if err != nil {
		return nil, err
	}
	out := make([]int, 0, len(order))
	for pass := 0; pass < 2; pass++ {
		for _, wi := range order {
			if skip[wi] || c.health.isHealthy(wi) != (pass == 0) {
				continue
			}
			out = append(out, wi)
		}
	}
	return out, nil
}

// forward sends method path?query with body to digest's home worker,
// failing over along the ring on transport errors and 503s. Any other
// HTTP status — 200, a 429 with its Retry-After, a 422 — is the worker
// answering and is returned verbatim for the router to relay. The
// returned response's body is open; the caller owns it.
func (c *Cluster) forward(digest, method, pathAndQuery, contentType string, body []byte) (*http.Response, error) {
	cands, err := c.candidates(digest, nil)
	if err != nil {
		return nil, err
	}
	for _, wi := range cands {
		resp, err := c.forwardTo(wi, method, pathAndQuery, contentType, body)
		if err == nil {
			return resp, nil
		}
		c.failovers.Add(1)
	}
	c.errAll.Add(1)
	return nil, errAllWorkersDown
}

// forwardTo is one attempt against one worker. A transport error or a
// 503 counts against the worker's health and reports an error; any
// other status resets the worker's failure streak.
func (c *Cluster) forwardTo(wi int, method, pathAndQuery, contentType string, body []byte) (*http.Response, error) {
	url := c.ring.workers[wi] + pathAndQuery
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		c.health.reportFailure(wi, err)
		return nil, err
	}
	if resp.StatusCode == http.StatusServiceUnavailable {
		// The worker is up but shedding (draining). Treat it like an
		// outage for this request and let the ring route around it.
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		err := &statusError{code: resp.StatusCode}
		c.health.reportFailure(wi, err)
		return nil, err
	}
	c.health.reportSuccess(wi)
	return resp, nil
}
