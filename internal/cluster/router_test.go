package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"fspnet/internal/serve"
)

const (
	netA = "process P { start s0; s0 a s1 }\nprocess Q { start q0; q0 a q1 }"
	netB = "process P { start s0; s0 b s1 }\nprocess Q { start q0; q0 b q1 }"
	netC = "process P { start s0; s0 c s1; s1 d s2 }\nprocess Q { start q0; q0 c q1; q1 d q2 }"
)

// netN generates distinct single-action networks, so tests can mint as
// many digests as they need.
func netN(i int) string {
	return fmt.Sprintf("process P { start s0; s0 a%d s1 }\nprocess Q { start q0; q0 a%d q1 }", i, i)
}

// testWorker is an fspd worker on a real TCP listener, so tests can
// kill it (breaking live connections like a SIGKILL would) and restart
// it on the same address to exercise readmission.
type testWorker struct {
	t    *testing.T
	addr string
	cfg  serve.Config

	mu  sync.Mutex
	srv *http.Server
	s   *serve.Server
}

func newTestWorker(t *testing.T, cfg serve.Config) *testWorker {
	t.Helper()
	w := &testWorker{t: t, cfg: cfg}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w.addr = l.Addr().String()
	w.start(l)
	t.Cleanup(w.stop)
	return w
}

func (w *testWorker) url() string { return "http://" + w.addr }

func (w *testWorker) start(l net.Listener) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.s = serve.New(w.cfg)
	w.srv = &http.Server{Handler: w.s.Handler()}
	go w.srv.Serve(l) //nolint:errcheck
}

// stop kills the worker: the listener and every live connection close
// immediately, so in-flight forwards see a transport error.
func (w *testWorker) stop() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.srv == nil {
		return
	}
	w.srv.Close()
	w.s.Close()
	w.srv = nil
}

// restart rebinds the worker's original address with a fresh (cold
// cache) serve.Server.
func (w *testWorker) restart() {
	w.t.Helper()
	deadline := time.Now().Add(5 * time.Second) //fsplint:ignore detrand test poll deadline
	for {
		l, err := net.Listen("tcp", w.addr)
		if err == nil {
			w.start(l)
			return
		}
		if time.Now().After(deadline) { //fsplint:ignore detrand test poll deadline
			w.t.Fatalf("rebinding %s: %v", w.addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (w *testWorker) stats() serve.Stats {
	w.t.Helper()
	resp, err := http.Get(w.url() + "/statusz")
	if err != nil {
		w.t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		w.t.Fatal(err)
	}
	return st
}

// fastHealth is the probe policy for tests: quick cadence, two strikes,
// tight backoff so readmission happens within milliseconds of a
// restart.
func fastHealth() HealthConfig {
	return HealthConfig{
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  500 * time.Millisecond,
		FailThreshold: 2,
		BackoffMin:    10 * time.Millisecond,
		BackoffMax:    100 * time.Millisecond,
	}
}

func newTestRouter(t *testing.T, urls []string, mutate func(*RouterConfig)) (*Router, *httptest.Server) {
	t.Helper()
	cfg := RouterConfig{Cluster: Config{Workers: urls, Health: fastHealth()}}
	if mutate != nil {
		mutate(&cfg)
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() { ts.Close(); rt.Close() })
	return rt, ts
}

func postJSON(t *testing.T, url string, req serve.AnalyzeRequest) (*http.Response, serve.AnalyzeResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ar serve.AnalyzeResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusUnprocessableEntity {
		if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp, ar
}

func postBatch(t *testing.T, url string, breq serve.BatchRequest) (*http.Response, serve.BatchResponse) {
	t.Helper()
	body, err := json.Marshal(breq)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/analyze/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var bresp serve.BatchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&bresp); err != nil {
			t.Fatalf("decoding batch response: %v", err)
		}
	}
	return resp, bresp
}

// digestOf computes the digest the router will route req by.
func digestOf(t *testing.T, req serve.AnalyzeRequest) string {
	t.Helper()
	_, digest, err := serve.Canonicalize(&req)
	if err != nil {
		t.Fatal(err)
	}
	return digest
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second) //fsplint:ignore detrand test poll deadline
	for !cond() {
		if time.Now().After(deadline) { //fsplint:ignore detrand test poll deadline
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRouterShardsByDigest(t *testing.T) {
	w0 := newTestWorker(t, serve.Config{Workers: 1})
	w1 := newTestWorker(t, serve.Config{Workers: 1})
	rt, ts := newTestRouter(t, []string{w0.url(), w1.url()}, nil)

	nets := []string{netA, netB, netC, netN(1), netN(2), netN(3)}
	for _, n := range nets {
		resp, ar := postJSON(t, ts.URL, serve.AnalyzeRequest{Network: n})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("analyze %q: status %d", n, resp.StatusCode)
		}
		if ar.Cached {
			t.Errorf("first analyze of %q reported cached", n)
		}
		// The verdict must live on exactly the ring owner.
		owner, err := rt.Cluster().Ring().Owner(ar.Digest)
		if err != nil {
			t.Fatal(err)
		}
		for wi, w := range []*testWorker{w0, w1} {
			resp, err := http.Get(w.url() + "/v1/verdict/" + ar.Digest)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			want := http.StatusNotFound
			if wi == owner {
				want = http.StatusOK
			}
			if resp.StatusCode != want {
				t.Errorf("worker %d verdict %s: status %d, want %d (owner %d)", wi, ar.Digest, resp.StatusCode, want, owner)
			}
		}
	}

	// Re-analyzing everything must be all cache hits, wherever they live.
	for _, n := range nets {
		if _, ar := postJSON(t, ts.URL, serve.AnalyzeRequest{Network: n}); !ar.Cached {
			t.Errorf("second analyze of %q not cached", n)
		}
	}
	s0, s1 := w0.stats(), w1.stats()
	if got := s0.Misses + s1.Misses; got != int64(len(nets)) {
		t.Errorf("total misses = %d, want %d", got, len(nets))
	}
	if got := s0.Hits + s1.Hits; got != int64(len(nets)) {
		t.Errorf("total hits = %d, want %d", got, len(nets))
	}
	if s0.Misses == 0 || s1.Misses == 0 {
		t.Errorf("sharding collapsed: misses split %d/%d, want work on both workers", s0.Misses, s1.Misses)
	}
}

func TestRouterVerdictEndpoint(t *testing.T) {
	w0 := newTestWorker(t, serve.Config{Workers: 1})
	_, ts := newTestRouter(t, []string{w0.url()}, nil)

	resp, err := http.Get(ts.URL + "/v1/verdict/not-a-digest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed digest: status %d, want 400", resp.StatusCode)
	}

	unknown := testDigest(0)
	resp, err = http.Get(ts.URL + "/v1/verdict/" + unknown)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown digest: status %d, want 404", resp.StatusCode)
	}

	_, ar := postJSON(t, ts.URL, serve.AnalyzeRequest{Network: netA})
	resp, err = http.Get(ts.URL + "/v1/verdict/" + ar.Digest)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("known digest: status %d, want 200", resp.StatusCode)
	}
	var got serve.AnalyzeResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !got.Cached {
		t.Error("verdict lookup not marked cached")
	}
	a, _ := json.Marshal(ar.Record)
	b, _ := json.Marshal(got.Record)
	if !bytes.Equal(a, b) {
		t.Errorf("verdict record differs from analyze record:\n%s\n%s", a, b)
	}
}

func TestRouterFailoverAndReadmission(t *testing.T) {
	w0 := newTestWorker(t, serve.Config{Workers: 1})
	w1 := newTestWorker(t, serve.Config{Workers: 1})
	workers := []*testWorker{w0, w1}
	rt, ts := newTestRouter(t, []string{w0.url(), w1.url()}, nil)

	// Find a network owned by each worker so the kill is guaranteed to
	// orphan some digest.
	ownedBy := map[int]string{}
	for i := 0; len(ownedBy) < 2 && i < 100; i++ {
		n := netN(i)
		owner, err := rt.Cluster().Ring().Owner(digestOf(t, serve.AnalyzeRequest{Network: n}))
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := ownedBy[owner]; !ok {
			ownedBy[owner] = n
		}
	}
	if len(ownedBy) < 2 {
		t.Fatal("could not find digests for both workers")
	}

	const victim = 0
	workers[victim].stop()

	// The victim's digest must fail over to the survivor — first request,
	// no warmup, no error surfaced to the client.
	resp, ar := postJSON(t, ts.URL, serve.AnalyzeRequest{Network: ownedBy[victim]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze during outage: status %d, want 200 via failover", resp.StatusCode)
	}
	if ar.Record.Status != "ok" {
		t.Fatalf("failover verdict status = %q, want ok", ar.Record.Status)
	}
	if rt.Snapshot().Failovers == 0 {
		t.Error("failovers counter = 0 after a forward to a dead worker")
	}

	waitFor(t, "victim ejection", func() bool { return !rt.Snapshot().Workers[victim].Healthy })

	// Restart on the same address: the prober must readmit, and the
	// digest must route home again (the survivor's copy stays where it
	// is — no contradiction, just two truthful caches).
	workers[victim].restart()
	waitFor(t, "victim readmission", func() bool {
		ws := rt.Snapshot().Workers[victim]
		return ws.Healthy && ws.Readmissions >= 1
	})
	before := workers[victim].stats().Requests
	resp, ar2 := postJSON(t, ts.URL, serve.AnalyzeRequest{Network: ownedBy[victim]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze after readmission: status %d", resp.StatusCode)
	}
	if got := workers[victim].stats().Requests; got != before+1 {
		t.Errorf("readmitted worker requests = %d, want %d (traffic must return home)", got, before+1)
	}
	// Same digest, same verdict, wherever it was computed.
	a, _ := json.Marshal(ar.Record)
	b, _ := json.Marshal(ar2.Record)
	if !bytes.Equal(a, b) {
		t.Errorf("verdict changed across failover/readmission:\n%s\n%s", a, b)
	}
}

func TestRouterKillWorkerMidLoad(t *testing.T) {
	w0 := newTestWorker(t, serve.Config{Workers: 2})
	w1 := newTestWorker(t, serve.Config{Workers: 2})
	rt, ts := newTestRouter(t, []string{w0.url(), w1.url()}, nil)
	_ = rt

	corpus := make([]string, 8)
	for i := range corpus {
		corpus[i] = netN(i)
	}

	type answer struct {
		digest string
		rec    []byte
		status int
		err    error
	}
	const loaders = 4
	const perLoader = 30
	answers := make(chan answer, loaders*perLoader)
	var wg sync.WaitGroup
	for l := 0; l < loaders; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			for i := 0; i < perLoader; i++ {
				body, _ := json.Marshal(serve.AnalyzeRequest{Network: corpus[(l+i)%len(corpus)]})
				resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
				if err != nil {
					answers <- answer{err: err}
					continue
				}
				var ar serve.AnalyzeResponse
				decErr := json.NewDecoder(resp.Body).Decode(&ar)
				resp.Body.Close()
				if decErr != nil {
					answers <- answer{err: decErr}
					continue
				}
				rec, _ := json.Marshal(ar.Record)
				answers <- answer{digest: ar.Digest, rec: rec, status: resp.StatusCode}
			}
		}(l)
	}

	// Kill one worker while the load is running.
	time.Sleep(50 * time.Millisecond)
	w0.stop()
	wg.Wait()
	close(answers)

	// Zero verdict errors, and no contradiction: every answer for a
	// digest is byte-identical no matter which worker produced it.
	byDigest := map[string][]byte{}
	for a := range answers {
		if a.err != nil {
			t.Fatalf("request failed during worker kill: %v", a.err)
		}
		if a.status != http.StatusOK {
			t.Fatalf("status %d during worker kill, want 200", a.status)
		}
		if prev, ok := byDigest[a.digest]; ok {
			if !bytes.Equal(prev, a.rec) {
				t.Fatalf("verdict contradiction for %s:\n%s\n%s", a.digest, prev, a.rec)
			}
			continue
		}
		byDigest[a.digest] = a.rec
	}
	if len(byDigest) != len(corpus) {
		t.Errorf("distinct digests = %d, want %d", len(byDigest), len(corpus))
	}
}

// overshootRE matches the wall-clock overshoot a deadline-stopped
// governor embeds in the partial reason ("… 27µs past the deadline").
var overshootRE = regexp.MustCompile(`[^ ]+ past the deadline`)

// normalize re-marshals a response with the partial elapsed field and
// the reason's deadline overshoot zeroed: the only nondeterministic
// content (wall-clock measured inside the governor) in an otherwise
// bit-reproducible verdict.
func normalize(t *testing.T, ar serve.AnalyzeResponse) []byte {
	t.Helper()
	if ar.Record.Partial != nil {
		p := *ar.Record.Partial
		p.Elapsed = ""
		ar.Record.Partial = &p
		ar.Record.Reason = overshootRE.ReplaceAllString(ar.Record.Reason, "Xs past the deadline")
	}
	b, err := json.Marshal(ar)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRouterBatchMatchesSingleCalls(t *testing.T) {
	// Two identical clusters: one serves the batch, the other the same
	// items as single calls in the same order. The per-item responses
	// must agree exactly (modulo the partial elapsed wall-clock), cached
	// flags and duplicate handling included.
	mkCluster := func() (string, []*testWorker) {
		w0 := newTestWorker(t, serve.Config{Workers: 2})
		w1 := newTestWorker(t, serve.Config{Workers: 2})
		_, ts := newTestRouter(t, []string{w0.url(), w1.url()}, nil)
		return ts.URL, []*testWorker{w0, w1}
	}
	batchURL, _ := mkCluster()
	singleURL, _ := mkCluster()

	items := []serve.AnalyzeRequest{
		{Network: netA},
		{Network: netB, Lint: true},
		{Network: netA},                   // duplicate: cached=true
		{Network: netC, Timeout: "1ns"},   // deadline at first poll: partial
		{Network: "process P { broken !"}, // parse error: per-item record
		{Network: netN(7), Predicates: "reach"},
	}

	resp, bresp := postBatch(t, batchURL, serve.BatchRequest{Items: items})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	if len(bresp.Items) != len(items) {
		t.Fatalf("batch returned %d items, want %d", len(bresp.Items), len(items))
	}
	if bresp.Uniques != 4 { // netA, netB, netC+timeout, netN(7); parse error never routes
		t.Errorf("uniques = %d, want 4", bresp.Uniques)
	}

	for i, req := range items {
		resp, single := postJSON(t, singleURL, req)
		if i == 4 {
			// The parse error: a single call answers 400 with an error
			// envelope; the batch reports it as a per-item error record in
			// the same slot.
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("item %d single status = %d, want 400", i, resp.StatusCode)
			}
			if bresp.Items[i].Record.Status != "error" || bresp.Items[i].Record.Error == "" {
				t.Errorf("item %d batch record = %+v, want error record", i, bresp.Items[i].Record)
			}
			continue
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("item %d single status = %d", i, resp.StatusCode)
		}
		got := normalize(t, bresp.Items[i])
		want := normalize(t, single)
		if !bytes.Equal(got, want) {
			t.Errorf("item %d batch != single:\nbatch:  %s\nsingle: %s", i, got, want)
		}
	}
	// The partial really was a partial, or the equivalence above proved
	// nothing about partial forwarding.
	if bresp.Items[3].Record.Status != "partial" {
		t.Errorf("item 3 status = %q, want partial", bresp.Items[3].Record.Status)
	}
}

func TestRouterBodyCaps(t *testing.T) {
	w0 := newTestWorker(t, serve.Config{Workers: 1})
	_, ts := newTestRouter(t, []string{w0.url()}, func(cfg *RouterConfig) {
		cfg.MaxBodyBytes = 128
		cfg.MaxBatchBytes = 1024
		cfg.MaxBatchItems = 2
	})

	big := netA + "\n# " + strings.Repeat("x", 256)
	resp, err := http.Post(ts.URL+"/v1/analyze", "text/plain", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized single body: status %d, want 413", resp.StatusCode)
	}

	resp, bresp := postBatch(t, ts.URL, serve.BatchRequest{Items: []serve.AnalyzeRequest{
		{Network: netA}, {Network: big},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch with oversized item: status %d", resp.StatusCode)
	}
	if bresp.Items[0].Record.Status != "ok" {
		t.Errorf("normal item status = %q", bresp.Items[0].Record.Status)
	}
	if bresp.Items[1].Record.Status != "error" || !strings.Contains(bresp.Items[1].Record.Error, "too large") {
		t.Errorf("oversized item record = %+v, want body-too-large error", bresp.Items[1].Record)
	}

	resp, _ = postBatch(t, ts.URL, serve.BatchRequest{Items: []serve.AnalyzeRequest{
		{Network: netA}, {Network: netB}, {Network: netC},
	}})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("over item cap: status %d, want 413", resp.StatusCode)
	}

	huge := serve.BatchRequest{Items: []serve.AnalyzeRequest{{Network: strings.Repeat("y", 2048)}}}
	body, _ := json.Marshal(huge)
	resp, err = http.Post(ts.URL+"/v1/analyze/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("over batch byte cap: status %d, want 413", resp.StatusCode)
	}
}

func TestRouterStatusAggregation(t *testing.T) {
	w0 := newTestWorker(t, serve.Config{Workers: 1})
	w1 := newTestWorker(t, serve.Config{Workers: 1})
	rt, ts := newTestRouter(t, []string{w0.url(), w1.url()}, nil)

	nets := []string{netA, netB, netC, netA}
	for _, n := range nets {
		if resp, _ := postJSON(t, ts.URL, serve.AnalyzeRequest{Network: n}); resp.StatusCode != http.StatusOK {
			t.Fatalf("analyze failed: %d", resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var st RouterStats
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("decoding router statusz: %v\n%s", err, raw)
	}
	if len(st.Workers) != 2 {
		t.Fatalf("workers = %d, want 2", len(st.Workers))
	}
	for i, ws := range st.Workers {
		if !ws.Reachable || !ws.Healthy || ws.Stats == nil {
			t.Errorf("worker %d = %+v, want reachable+healthy with stats", i, ws)
		}
		if ws.Stats != nil && ws.Stats.Runtime.Goroutines <= 0 {
			t.Errorf("worker %d runtime goroutines = %d", i, ws.Stats.Runtime.Goroutines)
		}
	}
	if st.Totals.Requests != 4 || st.Totals.Hits != 1 || st.Totals.Misses != 3 {
		t.Errorf("totals = %+v, want requests 4 hits 1 misses 3", st.Totals)
	}
	if want := 0.25; st.Totals.HitRate != want {
		t.Errorf("hit rate = %v, want %v", st.Totals.HitRate, want)
	}
	if st.Requests != 4 || st.Proxied != 4 {
		t.Errorf("router requests/proxied = %d/%d, want 4/4", st.Requests, st.Proxied)
	}
	if st.Runtime.Goroutines <= 0 || st.Runtime.Gomaxprocs <= 0 {
		t.Errorf("router runtime = %+v, want live sample", st.Runtime)
	}
	if rt.Snapshot().Failovers != 0 {
		t.Errorf("failovers = %d with all workers up", rt.Snapshot().Failovers)
	}
}

func TestRouterLintRoutes(t *testing.T) {
	w0 := newTestWorker(t, serve.Config{Workers: 1})
	w1 := newTestWorker(t, serve.Config{Workers: 1})
	_, ts := newTestRouter(t, []string{w0.url(), w1.url()}, nil)

	lint := func() (int, struct {
		Digest string `json:"digest"`
		Cached bool   `json:"cached"`
	}) {
		resp, err := http.Post(ts.URL+"/v1/lint", "text/plain", strings.NewReader(netA))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var lr struct {
			Digest string `json:"digest"`
			Cached bool   `json:"cached"`
		}
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode, lr
	}
	code, first := lint()
	if code != http.StatusOK || first.Digest == "" {
		t.Fatalf("lint: status %d resp %+v", code, first)
	}
	if first.Cached {
		t.Error("first lint reported cached")
	}
	// Same canonical text → same lint digest → same worker → cache hit.
	code, second := lint()
	if code != http.StatusOK || !second.Cached {
		t.Errorf("second lint: status %d cached %v, want cached hit", code, second.Cached)
	}
}

func TestRouterCapacityShedding(t *testing.T) {
	w0 := newTestWorker(t, serve.Config{Workers: 1})
	rt, ts := newTestRouter(t, []string{w0.url()}, func(cfg *RouterConfig) {
		cfg.Cluster.MaxInflight = 1
	})

	// Occupy the single forwarding slot directly, then watch the router
	// shed instead of queueing.
	if !rt.cluster.acquire() {
		t.Fatal("could not take the only slot")
	}
	resp, _ := postJSON(t, ts.URL, serve.AnalyzeRequest{Network: netA})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d with no free slots, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	rt.cluster.release()
	if resp, _ := postJSON(t, ts.URL, serve.AnalyzeRequest{Network: netA}); resp.StatusCode != http.StatusOK {
		t.Errorf("status %d after slot freed, want 200", resp.StatusCode)
	}
}

func TestRouterAllWorkersDown(t *testing.T) {
	w0 := newTestWorker(t, serve.Config{Workers: 1})
	rt, ts := newTestRouter(t, []string{w0.url()}, nil)
	w0.stop()

	resp, _ := postJSON(t, ts.URL, serve.AnalyzeRequest{Network: netA})
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("single with dead cluster: status %d, want 502", resp.StatusCode)
	}
	if rt.Snapshot().Errors == 0 {
		t.Error("errors counter = 0 after exhausting the ring")
	}

	// A batch degrades to per-item error records, not a dropped request.
	resp, bresp := postBatch(t, ts.URL, serve.BatchRequest{Items: []serve.AnalyzeRequest{{Network: netA}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch with dead cluster: status %d, want 200 with error records", resp.StatusCode)
	}
	if bresp.Items[0].Record.Status != "error" || !strings.Contains(bresp.Items[0].Record.Error, "no reachable worker") {
		t.Errorf("batch item = %+v, want no-reachable-worker error record", bresp.Items[0].Record)
	}
}
