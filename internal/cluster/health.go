package cluster

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// Health-prober defaults. The probe cadence is deliberately quick and
// the ejection threshold low: a router that keeps sending traffic to a
// dead worker pays a connection-timeout per request, so the sooner the
// ring routes around it the better. Readmission is probe-driven only —
// a worker must answer /healthz before it sees traffic again.
const (
	DefaultProbeInterval = time.Second
	DefaultProbeTimeout  = 2 * time.Second
	DefaultFailThreshold = 3
	DefaultBackoffMin    = 500 * time.Millisecond
	DefaultBackoffMax    = 30 * time.Second
)

// HealthConfig tunes the prober.
type HealthConfig struct {
	// ProbeInterval is how often a healthy worker's /healthz is checked.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe request.
	ProbeTimeout time.Duration
	// FailThreshold is the consecutive-failure count (probes and forwards
	// both count) that ejects a worker from rotation.
	FailThreshold int
	// BackoffMin and BackoffMax bound the probe backoff for an ejected
	// worker: doubling per failed probe, reset on readmission.
	BackoffMin, BackoffMax time.Duration
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = DefaultProbeInterval
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = DefaultProbeTimeout
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = DefaultFailThreshold
	}
	if c.BackoffMin <= 0 {
		c.BackoffMin = DefaultBackoffMin
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = DefaultBackoffMax
	}
	return c
}

// workerState is one worker's health record. healthy starts true: the
// router gives every configured worker the benefit of the doubt until
// evidence arrives, so a cold cluster routes immediately.
type workerState struct {
	url          string
	healthy      bool
	consecFails  int
	backoff      time.Duration
	nextProbe    time.Time
	lastErr      string
	ejections    int64
	readmissions int64
}

// health tracks per-worker liveness from two evidence streams: the
// background /healthz prober and transport failures reported by the
// forwarding path. Both feed the same consecutive-failure counter;
// FailThreshold failures eject the worker, and only a successful probe
// readmits it.
type health struct {
	cfg    HealthConfig
	client *http.Client
	logf   func(format string, args ...any)

	mu      sync.Mutex
	workers []workerState

	stop chan struct{}
	done chan struct{}
}

func newHealth(workers []string, cfg HealthConfig, client *http.Client, logf func(string, ...any)) *health {
	h := &health{
		cfg:     cfg.withDefaults(),
		client:  client,
		logf:    logf,
		workers: make([]workerState, len(workers)),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for i, url := range workers {
		h.workers[i] = workerState{url: url, healthy: true, backoff: h.cfg.BackoffMin}
	}
	go h.probeLoop()
	return h
}

func (h *health) close() {
	close(h.stop)
	<-h.done
}

// isHealthy reports whether worker wi is in rotation.
func (h *health) isHealthy(wi int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.workers[wi].healthy
}

// reportFailure records a transport-level forwarding failure against
// worker wi. HTTP-level responses (429, 422, even 500) are the worker
// answering and do not count — only failures to get an answer at all.
func (h *health) reportFailure(wi int, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	w := &h.workers[wi]
	w.lastErr = err.Error()
	w.consecFails++
	if w.healthy && w.consecFails >= h.cfg.FailThreshold {
		h.ejectLocked(wi)
	}
}

// reportSuccess records a successful forward: the worker is demonstrably
// serving, so the failure streak resets. It does not readmit an ejected
// worker — that stays probe-driven so a last-resort forward that happens
// to land does not flap the ring.
func (h *health) reportSuccess(wi int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	w := &h.workers[wi]
	if w.healthy {
		w.consecFails = 0
		w.lastErr = ""
	}
}

// ejectLocked takes worker wi out of rotation and arms the probe
// backoff. Callers hold h.mu.
func (h *health) ejectLocked(wi int) {
	w := &h.workers[wi]
	w.healthy = false
	w.ejections++
	w.backoff = h.cfg.BackoffMin
	w.nextProbe = time.Now().Add(w.backoff) //fsplint:ignore detrand probe-backoff deadline
	h.logf("cluster: ejected worker %s after %d consecutive failures: %s", w.url, w.consecFails, w.lastErr)
}

// probeLoop drives the background /healthz checks: healthy workers on
// the fixed cadence, ejected workers on their exponential backoff.
func (h *health) probeLoop() {
	defer close(h.done)
	ticker := time.NewTicker(h.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		h.probeDue()
		select {
		case <-h.stop:
			return
		case <-ticker.C:
		}
	}
}

// probeDue probes every worker whose turn has come. Probes run
// sequentially — worker counts are small and a wedged worker only
// delays the others by ProbeTimeout.
func (h *health) probeDue() {
	h.mu.Lock()
	now := time.Now() //fsplint:ignore detrand probe scheduling
	due := make([]int, 0, len(h.workers))
	for i := range h.workers {
		w := &h.workers[i]
		if w.healthy || !now.Before(w.nextProbe) {
			due = append(due, i)
		}
	}
	h.mu.Unlock()

	for _, wi := range due {
		h.probeOne(wi)
	}
}

// probeOne issues a single /healthz check against worker wi and applies
// the verdict: success resets the failure streak and readmits an
// ejected worker; failure advances the streak (ejecting past the
// threshold) and, for an already-ejected worker, doubles the backoff.
func (h *health) probeOne(wi int) {
	h.mu.Lock()
	url := h.workers[wi].url
	h.mu.Unlock()

	err := h.checkHealthz(url)

	h.mu.Lock()
	defer h.mu.Unlock()
	w := &h.workers[wi]
	if err == nil {
		w.consecFails = 0
		w.lastErr = ""
		w.backoff = h.cfg.BackoffMin
		if !w.healthy {
			w.healthy = true
			w.readmissions++
			h.logf("cluster: readmitted worker %s", w.url)
		}
		return
	}
	w.lastErr = err.Error()
	w.consecFails++
	if w.healthy {
		if w.consecFails >= h.cfg.FailThreshold {
			h.ejectLocked(wi)
		}
		return
	}
	w.backoff *= 2
	if w.backoff > h.cfg.BackoffMax {
		w.backoff = h.cfg.BackoffMax
	}
	w.nextProbe = time.Now().Add(w.backoff) //fsplint:ignore detrand probe-backoff deadline
}

// checkHealthz is one GET /healthz round trip; any answer other than a
// 200 is a failure (a draining fspd answers 503 to shed traffic early).
func (h *health) checkHealthz(url string) error {
	ctx, cancel := context.WithTimeout(context.Background(), h.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &statusError{code: resp.StatusCode}
	}
	return nil
}

type statusError struct{ code int }

func (e *statusError) Error() string {
	return "healthz returned status " + http.StatusText(e.code)
}

// snapshotWorker copies worker wi's state for /statusz.
func (h *health) snapshotWorker(wi int) workerState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.workers[wi]
}
