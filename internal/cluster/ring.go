// Package cluster is the fspd scale-out tier: a consistent-hash ring
// that shards the verdict-digest space over a set of fspd workers, a
// health prober that ejects and readmits workers, and an HTTP router
// (cmd/fsprouter) that fronts the workers with the same API surface a
// single fspd exposes.
//
// Sharding is by content address: every request canonicalizes to the
// same SHA-256 digest the workers use as their verdict-cache key, so a
// digest has exactly one home worker and the cluster-wide cache is the
// disjoint union of the workers' caches — no duplication, no
// cross-worker invalidation, and cache capacity scales linearly with
// worker count.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"

	"fspnet/internal/serve"
)

// DefaultVNodes is the virtual-node count per worker. 64 points per
// worker keeps the expected load imbalance across a handful of workers
// within a few percent while the ring stays small enough to scan.
const DefaultVNodes = 64

// Ring is an immutable consistent-hash ring over worker indices. Points
// live in the same 64-bit space the verdict digests map into, so a
// digest's position — and therefore its owner — is a pure function of
// the digest and the worker list. Rebuilding the ring with the same
// workers in the same order yields the identical ring.
type Ring struct {
	workers []string
	points  []ringPoint // sorted by (hash, worker): deterministic scan order
}

type ringPoint struct {
	hash   uint64
	worker int
}

// NewRing builds the ring. workers are base URLs (order defines worker
// indices); vnodes ≤ 0 means DefaultVNodes.
func NewRing(workers []string, vnodes int) (*Ring, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one worker")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{
		workers: append([]string(nil), workers...),
		points:  make([]ringPoint, 0, len(workers)*vnodes),
	}
	for wi, url := range r.workers {
		for v := 0; v < vnodes; v++ {
			sum := sha256.Sum256([]byte(url + "\x00vnode\x00" + strconv.Itoa(v)))
			r.points = append(r.points, ringPoint{hash: binary.BigEndian.Uint64(sum[:8]), worker: wi})
		}
	}
	// Sorted hash points, ties broken by worker index: the scan order is
	// fully determined by the inputs, never by map iteration or insertion
	// accidents.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].worker < r.points[j].worker
	})
	return r, nil
}

// Workers returns the worker base URLs in index order.
func (r *Ring) Workers() []string { return append([]string(nil), r.workers...) }

// digestPoint maps a verdict digest onto the ring: the first 16 hex
// characters of the SHA-256 digest read as a big-endian uint64 — the
// same leading bytes the workers' cache keys carry, so ring placement
// and cache addressing agree by construction.
func digestPoint(digest string) (uint64, error) {
	if !serve.WellFormedDigest(digest) {
		return 0, fmt.Errorf("cluster: malformed digest %q", digest)
	}
	return strconv.ParseUint(digest[:16], 16, 64)
}

// Owner returns the index of the worker that owns digest: the worker of
// the first ring point at or clockwise after the digest's position.
func (r *Ring) Owner(digest string) (int, error) {
	order, err := r.Successors(digest)
	if err != nil {
		return 0, err
	}
	return order[0], nil
}

// Successors returns every worker index in deterministic failover
// order: the owner first, then each distinct worker in the order its
// first point appears walking the ring clockwise from the digest. The
// router tries this list front to back when workers are down, so any
// two routers with the same worker list agree on where a digest lands
// after any set of ejections.
func (r *Ring) Successors(digest string) ([]int, error) {
	h, err := digestPoint(digest)
	if err != nil {
		return nil, err
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	order := make([]int, 0, len(r.workers))
	seen := make([]bool, len(r.workers))
	for i := 0; i < len(r.points) && len(order) < len(r.workers); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.worker] {
			seen[p.worker] = true
			order = append(order, p.worker)
		}
	}
	return order, nil
}
